// Package mmfs is a production-quality Go reproduction of "Designing
// File Systems for Digital Video and Audio" (P. Venkat Rangan and
// Harrick M. Vin, SOSP 1991): a multimedia file system that stores
// continuous media as immutable strands placed by constrained block
// allocation, services concurrent real-time requests under the paper's
// admission control algorithm, and edits multimedia ropes copy-free
// with bounded scattering-maintenance copying.
//
// The implementation lives under internal/:
//
//   - internal/core — the mountable file system facade (Format/Open,
//     RECORD/PLAY/STOP/PAUSE/RESUME, INSERT/REPLACE/SUBSTRING/CONCATE/
//     DELETE, interests-based GC, integrated text files)
//   - internal/continuity — the analytical model (Eqs. 1–20)
//   - internal/msm — the Multimedia Storage Manager (service rounds,
//     admission control, k transitions, violation detection)
//   - internal/rope, internal/strand, internal/layout — the data model
//   - internal/disk, internal/alloc, internal/sim — the simulated
//     storage substrate
//   - internal/server, internal/client, internal/wire — the MRS
//     network protocol
//   - internal/experiments — regenerates every quantitative artifact
//     of the paper
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go
// regenerate each table and figure; run them with
//
//	go test -bench=. -benchmem
package mmfs
