// Videomail: the paper's motivating "video and audio mail" service
// (§1.1) over the client/server split of §5 — an MRS daemon on
// loopback TCP, clients using the rope stub library.
//
// Alice records a video-only message and a separate audio narration,
// merges them with the paper's REPLACE idiom ("replaces the
// non-existent video component of Rope4 with the video component of
// Rope5"), grants Bob access, and Bob plays the merged mail and saves
// an attached text note — all through the network protocol.
//
// Run with: go run ./examples/videomail
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mmfs/internal/client"
	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/rope"
	"mmfs/internal/server"
)

func main() {
	// Bring up the MRS daemon on loopback.
	fs, err := core.Format(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(fs)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Join the serve goroutine on exit: Close (registered later, so it
	// runs first) shuts the listener, Serve returns, Wait releases.
	var served sync.WaitGroup
	served.Add(1)
	defer served.Wait()
	go func() { defer served.Done(); _ = srv.Serve(lis) }()
	defer srv.Close()
	fmt.Printf("MRS serving on %s\n", lis.Addr())

	alice, err := client.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()

	// Alice records her 4-second video message (camera only)…
	const seconds = 4
	videoMail, _, err := alice.RecordClip("alice",
		media.NewVideoSource(30*seconds, 18000, 30, 11), nil, false)
	if err != nil {
		log.Fatal(err)
	}
	// …then a separate narration track (microphone only), as the
	// paper's merge example assumes: "video and audio strands
	// recorded separately".
	narration, _, err := alice.RecordClip("alice",
		nil, media.NewAudioSource(10*seconds, 800, 10, 0.35, 15, 12), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice recorded video rope %d and narration rope %d\n", videoMail, narration)

	// Merge: REPLACE the (non-existent) audio component of the video
	// rope with the narration's audio, generating block-level
	// correspondence between the strands.
	dur := time.Duration(seconds) * time.Second
	if _, err := alice.Replace("alice", videoMail, rope.AudioOnly, 0, dur, narration, 0, dur); err != nil {
		log.Fatal(err)
	}
	info, err := alice.Info(videoMail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged mail rope %d: video=%v audio=%v, %v\n",
		videoMail, info.HasVideo, info.HasAudio, info.Length)

	// Attach a text note (stored in the gaps between media blocks)
	// and grant Bob playback access.
	if err := alice.TextWrite("mail-1.txt", []byte("Hi Bob — demo of the new file system! — Alice")); err != nil {
		log.Fatal(err)
	}
	if err := alice.SetAccess("alice", videoMail, []string{"bob"}, nil); err != nil {
		log.Fatal(err)
	}

	// The narration rope is no longer needed on its own; deleting it
	// must NOT reclaim the audio strand, which the mail now shares.
	if n, err := alice.DeleteRope("alice", narration); err != nil {
		log.Fatal(err)
	} else if n != 0 {
		log.Fatalf("GC reclaimed %d shared strand(s)!", n)
	}
	fmt.Println("narration rope deleted; shared audio strand survives (interests GC)")

	// Bob reads his mail.
	bob, err := client.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()
	res, err := bob.Play("bob", videoMail, rope.AudioVisual, 0, 0, 2, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob played the mail: %d blocks, %d continuity violation(s)\n", res.Blocks, res.Violations)
	note, err := bob.TextRead("mail-1.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob's note: %s\n", note)

	// Mallory, however, is not on the access list.
	mallory, err := client.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer mallory.Close()
	if _, err := mallory.Play("mallory", videoMail, rope.AudioVisual, 0, 0, 2, ""); err != nil {
		fmt.Printf("mallory denied: %v\n", err)
	} else {
		log.Fatal("access control failed")
	}
}
