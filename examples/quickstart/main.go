// Quickstart: format a multimedia file system, RECORD a 5-second
// audio+video rope, PLAY it back with continuity checking, and verify
// the retrieved frames bit-for-bit.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

func main() {
	// Format a fresh file system on the default simulated disk
	// (1 GB class, 3600 RPM, pipelined retrieval architecture).
	fs, err := core.Format(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dev := fs.Device()
	fmt.Printf("formatted: r_dt=%.1f Mbit/s, l_max_seek=%.1f ms, placement scattering=%.1f ms\n",
		dev.TransferRate/1e6, dev.MaxAccess*1000, fs.TargetScattering()*1000)

	// RECORD: 5 seconds of NTSC-class video (30 frame/s, 18 KB
	// compressed frames) plus telephone audio with silence
	// elimination. The continuity model derives each strand's
	// granularity and scattering bound (§3).
	const seconds = 5
	sess, err := fs.Record(core.RecordSpec{
		Creator:            "quickstart",
		Video:              media.NewVideoSource(30*seconds, 18000, 30, 1),
		Audio:              media.NewAudioSource(10*seconds, 800, 10, 0.3, 20, 2),
		SilenceElimination: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs.Manager().RunUntilDone() // drive the virtual clock
	r, err := sess.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded rope %d: %v, strands %v\n", r.ID, r.Length(), r.Strands())

	// PLAY the whole rope: one retrieval request per medium, admitted
	// together, serviced in rounds (§3.4). Zero violations means every
	// block reached its display device by its playback deadline.
	h, err := fs.Play("quickstart", r.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		log.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	viol, err := fs.PlayViolations(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("playback complete: %d continuity violation(s)\n", viol)

	// Verify the data path: fetch the video units and check the
	// stamped frame sequence numbers.
	units, err := fs.FetchUnits("quickstart", r.ID, rope.VideoOnly, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, u := range units {
		if err := media.ValidateFrameSeq(u, uint64(i)); err != nil {
			log.Fatalf("frame %d corrupt: %v", i, err)
		}
	}
	fmt.Printf("verified %d video frames bit-for-bit\n", len(units))

	// Persist the metadata and remount.
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fs2, err := core.Open(fs.Disk(), fs.Options())
	if err != nil {
		log.Fatal(err)
	}
	r2, ok := fs2.Ropes().Get(r.ID)
	if !ok {
		log.Fatal("rope lost across remount")
	}
	fmt.Printf("remounted: rope %d still %v\n", r2.ID, r2.Length())
}
