// Newsstation: the paper's "news distribution … and entertainment"
// scenario (§1.1) — a video server admitting as many concurrent
// viewers as the admission control algorithm allows.
//
// A news library of clips is recorded; viewers then arrive one at a
// time. Each admission runs Eq. 18's transient-safe algorithm, growing
// the blocks-per-round k stepwise, until the device saturates at
// Eq. 17's n_max and further viewers are turned away — while every
// admitted viewer plays with zero continuity violations.
//
// Run with: go run ./examples/newsstation
package main

import (
	"fmt"
	"log"
	"time"

	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

func main() {
	fs, err := core.Format(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Build the news library: five 30-second clips.
	fmt.Println("recording the news library…")
	var library []rope.ID
	for i := 0; i < 5; i++ {
		sess, err := fs.Record(core.RecordSpec{
			Creator: "station",
			Video:   media.NewVideoSource(30*30, 18000, 30, int64(100+i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		fs.Manager().RunUntilDone()
		r, err := sess.Finish()
		if err != nil {
			log.Fatal(err)
		}
		library = append(library, r.ID)
		fmt.Printf("  clip %d: rope %d (%v)\n", i+1, r.ID, r.Length())
	}

	// Fresh manager for the serving phase; viewers arrive every two
	// seconds of virtual time.
	mgr := fs.NewManager()
	var handles []core.PlayHandle
	admitted, rejected := 0, 0
	for viewer := 0; viewer < 8; viewer++ {
		clip := library[viewer%len(library)]
		// Buffer provisioning is renegotiated by the admission
		// algorithm itself as k grows (§3.3.2's 2k rule); each
		// viewer only asks for a modest anti-jitter read-ahead.
		h, err := fs.Play("station", clip, rope.VideoOnly, 0, 0, msm.PlanOptions{
			ReadAhead: maxInt(2, mgr.K()),
		})
		if err != nil {
			rejected++
			fmt.Printf("viewer %d REJECTED: %v\n", viewer+1, err)
			continue
		}
		admitted++
		handles = append(handles, h)
		fmt.Printf("viewer %d admitted on clip %d (k now %d, %d active)\n",
			viewer+1, clip, mgr.K(), mgr.ActiveRequests())
		mgr.RunFor(2 * time.Second)
	}

	// Let all admitted streams play out and audit continuity.
	mgr.RunUntilDone()
	totalViol := 0
	for _, h := range handles {
		v, err := fs.PlayViolations(h)
		if err != nil {
			log.Fatal(err)
		}
		totalViol += v
	}
	st := mgr.Stats()
	fmt.Printf("\nserved %d viewer(s), rejected %d\n", admitted, rejected)
	fmt.Printf("service rounds: %d, transition steps: %d, blocks fetched: %d\n",
		st.Rounds, st.TransitionSteps, st.BlocksFetched)
	fmt.Printf("continuity violations across all admitted viewers: %d\n", totalViol)
	if totalViol != 0 {
		log.Fatal("admission control failed to protect continuity")
	}
	fmt.Println("every admitted viewer played continuously; the device turned the rest away")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
