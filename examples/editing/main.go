// Editing: a copy-free editing session over huge media objects —
// the paper's §4 walk-through. SUBSTRING and CONCATE build a highlight
// reel from two source recordings without copying media data (beyond
// the bounded scattering-maintenance copies of §4.2); INSERT splices a
// clip mid-rope exactly as in Figure 9; interests-based garbage
// collection reclaims strands only when the last referencing rope
// disappears.
//
// Run with: go run ./examples/editing
package main

import (
	"fmt"
	"log"
	"time"

	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

func main() {
	fs, err := core.Format(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	record := func(name string, seconds int, seed int64) *rope.Rope {
		sess, err := fs.Record(core.RecordSpec{
			Creator:            "editor",
			Video:              media.NewVideoSource(30*seconds, 18000, 30, seed),
			Audio:              media.NewAudioSource(10*seconds, 800, 10, 0.3, 20, seed+1),
			SilenceElimination: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fs.Manager().RunUntilDone()
		r, err := sess.Finish()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %s: rope %d (%v), %d interval(s)\n", name, r.ID, r.Length(), len(r.Intervals))
		return r
	}

	interview := record("interview", 12, 42)
	broll := record("b-roll", 6, 77)
	occupancyAfterRecord := fs.Occupancy()

	// Pull two highlights out of the interview — pure pointer
	// manipulation, no media copied.
	h1, _, err := fs.Substring("editor", interview.ID, rope.AudioVisual, 2*time.Second, 3*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	h2, _, err := fs.Substring("editor", interview.ID, rope.AudioVisual, 8*time.Second, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("highlights: rope %d (%v) and rope %d (%v) — substrings share the interview's strands\n",
		h1.ID, h1.Length(), h2.ID, h2.Length())

	// Stitch the reel: highlight1 + highlight2, then INSERT 2 s of
	// b-roll at the seam (Figure 9's operation).
	reel, res, err := fs.Concate("editor", h1.ID, h2.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CONCATE → rope %d (%v); junction smoothing copied %d block(s) into fresh strands (Eqs. 19–20)\n",
		reel.ID, reel.Length(), res.CopiedBlocks())
	res, err = fs.Insert("editor", reel.ID, 3*time.Second, rope.AudioVisual, broll.ID, time.Second, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("INSERT b-roll at 3s → %v, %d interval(s), %d block(s) copied\n",
		reel.Length(), len(reel.Intervals), res.CopiedBlocks())

	// Occupancy barely moved: editing manipulated pointers, not data.
	fmt.Printf("disk occupancy: %.2f%% after recording → %.2f%% after the whole edit session\n",
		occupancyAfterRecord*100, fs.Occupancy()*100)

	// The edited rope must still satisfy the continuity requirement.
	mgr := fs.NewManager()
	_ = mgr
	h, err := fs.Play("editor", reel.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		log.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	viol, err := fs.PlayViolations(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edited reel playback: %d continuity violation(s)\n", viol)

	// Retire the sources. The interview's strands survive as long as
	// any highlight references them; the b-roll's strands survive in
	// the reel.
	strandsBefore := fs.Strands().Len()
	for _, id := range []rope.ID{interview.ID, broll.ID, h1.ID, h2.ID} {
		reclaimed, err := fs.DeleteRope("editor", id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deleted rope %d → %d strand(s) reclaimed\n", id, len(reclaimed))
	}
	fmt.Printf("strands: %d → %d (the reel keeps what it references alive)\n",
		strandsBefore, fs.Strands().Len())

	// Finally delete the reel itself: everything unreferenced goes.
	reclaimed, err := fs.DeleteRope("editor", reel.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted the reel → %d strand(s) reclaimed, %d strand(s) remain, occupancy %.2f%%\n",
		len(reclaimed), fs.Strands().Len(), fs.Occupancy()*100)
}
