// Archive: long-lived operation of the file system — the §6.2
// extensions working together. A small archive station records
// variable-rate news footage day after day, retires old material,
// fragments its disk, hits the point where constrained placement
// fails, reorganizes (Compact), verifies itself with the integrity
// checker, and keeps synchronized-text triggers on its ropes.
//
// Run with: go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"time"

	"mmfs/internal/core"
	"mmfs/internal/disk"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

func main() {
	// A deliberately small disk so churn fragments it quickly.
	g := disk.Geometry{
		Cylinders:       200,
		Surfaces:        2,
		SectorsPerTrack: 32,
		SectorSize:      512,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         25 * time.Millisecond,
		Heads:           1,
	}
	fs, err := core.Format(core.Options{Geometry: g, TargetCylinders: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive disk: %d KB\n", g.CapacityBytes()>>10)

	// Day after day: record variable-rate footage (§6.2's VBR —
	// intra frames at 4 KB, difference frames around 1 KB), retire
	// old items.
	recordDay := func(day int) *rope.Rope {
		sess, err := fs.Record(core.RecordSpec{
			Creator: "archivist",
			Video:   media.NewVBRVideoSource(60, 4096, 1024, 10, 30, int64(day)),
		})
		if err != nil {
			log.Fatal(err)
		}
		fs.Manager().RunUntilDone()
		r, err := sess.Finish()
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	var live []*rope.Rope
	day := 0
	for fs.Occupancy() < 0.90 && day < 500 {
		day++
		r := recordDay(day)
		if err := fs.AddTrigger("archivist", r.ID, 0, fmt.Sprintf("day %d: lead story", day)); err != nil {
			log.Fatal(err)
		}
		live = append(live, r)
	}
	// Retire every other item: the freed space is scattered in
	// block-sized holes between the survivors.
	var survivors []*rope.Rope
	for i, r := range live {
		if i%2 == 0 {
			if _, err := fs.DeleteRope("archivist", r.ID); err != nil {
				log.Fatal(err)
			}
			continue
		}
		survivors = append(survivors, r)
	}
	live = survivors
	fmt.Printf("after %d days of churn: occupancy %.0f%%, %d live item(s)\n",
		day, fs.Occupancy()*100, len(live))

	// The disk is now fragmented; a large-block master recording
	// fails partway.
	tryMaster := func(seed int64) (*rope.Rope, error) {
		sess, err := fs.Record(core.RecordSpec{
			Creator: "archivist",
			Video:   media.NewVideoSource(120, 18000, 30, seed), // 54 KB blocks
		})
		if err != nil {
			return nil, err
		}
		fs.Manager().RunUntilDone()
		return sess.Finish()
	}
	// Constrained-placement failure surfaces as a truncated capture:
	// the recorder drops blocks it cannot place (and logs them as
	// violations), exactly like a capture device with nowhere to put
	// its data.
	const wantLen = 4 * time.Second
	m1, err := tryMaster(9000)
	if err != nil {
		log.Fatal(err)
	}
	if m1.Length() >= wantLen {
		fmt.Println("master recording unexpectedly fit; disk not fragmented enough")
	} else {
		fmt.Printf("master recording truncated on the fragmented disk: %v of %v captured\n", m1.Length(), wantLen)
	}
	if _, err := fs.DeleteRope("archivist", m1.ID); err != nil {
		log.Fatal(err)
	}

	// §6.2: reorganize. Compact consolidates the scattered holes.
	rep, err := fs.Compact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Compact(): moved %d strand(s), largest free run %d → %d sectors\n",
		rep.Moved, rep.LargestFreeRunBefore, rep.LargestFreeRunAfter)

	master, err := tryMaster(9001)
	if err != nil {
		log.Fatalf("master recording still fails after compaction: %v", err)
	}
	if master.Length() < wantLen {
		log.Fatalf("master recording still truncated after compaction: %v of %v", master.Length(), wantLen)
	}
	fmt.Printf("master recording succeeded after compaction: rope %d (%v)\n", master.ID, master.Length())

	// Everything still plays — including the relocated archive items.
	for _, r := range live {
		h, err := fs.Play("archivist", r.ID, rope.VideoOnly, 0, 0, msm.PlanOptions{ReadAhead: 2})
		if err != nil {
			log.Fatalf("rope %d: %v", r.ID, err)
		}
		fs.Manager().RunUntilDone()
		if v, _ := fs.PlayViolations(h); v != 0 {
			log.Fatalf("rope %d violated continuity %d time(s) after compaction", r.ID, v)
		}
		trigs, err := fs.Triggers("archivist", r.ID)
		if err != nil || len(trigs) != 1 {
			log.Fatalf("rope %d lost its trigger: %v %v", r.ID, trigs, err)
		}
	}
	fmt.Printf("all %d archive items play clean and keep their triggers\n", len(live))

	// Finally: the integrity checker agrees the disk is consistent.
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	if problems := fs.Check(); len(problems) != 0 {
		for _, p := range problems {
			fmt.Println("  fsck:", p)
		}
		log.Fatal("integrity check failed")
	}
	fmt.Println("fsck: file system clean")
}
