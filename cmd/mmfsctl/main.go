// Command mmfsctl is a command-line client for mmfsd, built on the
// rope stub library (internal/client). It records synthetic clips,
// plays and edits ropes, and manages text files.
//
// Usage:
//
//	mmfsctl [-addr host:port] [-seed n] <command> [args]
//
// Commands:
//
//	list                                    list rope IDs
//	info <rope>                             describe a rope
//	record <seconds> [video] [audio]        record a synthetic clip
//	play <rope> <medium> [start] [dur]      play and report continuity
//	insert <base> <pos> <medium> <with> <wstart> <wdur>
//	replace <base> <medium> <bstart> <bdur> <with> <wstart> <wdur>
//	substring <base> <medium> <start> <dur>
//	concat <rope1> <rope2>
//	delete <base> <medium> <start> <dur>
//	rm <rope>                               delete a rope
//	stats                                   server statistics
//	rebuild <spindle>                       replace a failed mirror spindle and rebuild it online
//	metrics                                 dump the server metrics registry (Prometheus text)
//	text-put <name> <contents…>
//	text-get <name>
//	text-ls
//	check                                   run the integrity checker
//	trigger <rope> <at> <text…>             attach synchronized text
//	triggers <rope>                         list triggers
//	flatten <rope>                          merge strands (§6.2)
//
// Media are "av", "video"/"v", or "audio"/"a"; times accept Go
// duration syntax ("1.5s", "500ms").
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mmfs/internal/client"
	"mmfs/internal/continuity"
	"mmfs/internal/media"
	"mmfs/internal/rope"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmfsctl [-addr host:port] <list|info|record|play|insert|replace|substring|concat|delete|rm|stats|rebuild|metrics|check|trigger|triggers|flatten|text-put|text-get|text-ls> [args]")
	os.Exit(2)
}

func parseMedium(s string) (rope.Medium, error) {
	switch strings.ToLower(s) {
	case "av", "audiovisual", "both":
		return rope.AudioVisual, nil
	case "video", "v":
		return rope.VideoOnly, nil
	case "audio", "a":
		return rope.AudioOnly, nil
	}
	return 0, fmt.Errorf("unknown medium %q (want av, video, or audio)", s)
}

func parseRope(s string) (rope.ID, error) {
	n, err := strconv.ParseUint(s, 10, 64)
	return rope.ID(n), err
}

func parseDur(s string) (time.Duration, error) { return time.ParseDuration(s) }

func die(err error) {
	fmt.Fprintf(os.Stderr, "mmfsctl: %v\n", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "mmfsd address")
	user := flag.String("user", "operator", "user identity for access control")
	seedFlag := flag.Int64("seed", 0, "deterministic seed for synthetic record sources (0 derives one from the current time)")
	class := flag.String("class", "default", "QoS class for play: premium, standard, best-effort, or default (the server's configured default)")
	timeout := flag.Duration("timeout", 0, "dial and per-RPC timeout (0 disables)")
	retries := flag.Int("retries", 0, "transport-failure retries with capped exponential backoff (0 disables)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c, err := client.DialOptions(*addr, client.Options{
		DialTimeout: *timeout,
		RPCTimeout:  *timeout,
		Retries:     *retries,
	})
	if err != nil {
		die(err)
	}
	defer c.Close()

	switch args[0] {
	case "list":
		ids, err := c.ListRopes()
		if err != nil {
			die(err)
		}
		for _, id := range ids {
			info, err := c.Info(id)
			if err != nil {
				die(err)
			}
			fmt.Printf("rope %d: %v, creator %s, %d interval(s), video=%v audio=%v\n",
				id, info.Length, info.Creator, info.Intervals, info.HasVideo, info.HasAudio)
		}
	case "info":
		if len(args) != 2 {
			usage()
		}
		id, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		info, err := c.Info(id)
		if err != nil {
			die(err)
		}
		fmt.Printf("rope %d\n  creator:   %s\n  length:    %v\n  intervals: %d\n  media:     video=%v audio=%v\n  strands:   %d\n",
			id, info.Creator, info.Length, info.Intervals, info.HasVideo, info.HasAudio, info.Strands)
	case "record":
		if len(args) < 2 {
			usage()
		}
		seconds, err := strconv.Atoi(strings.TrimSuffix(args[1], "s"))
		if err != nil || seconds < 1 {
			die(fmt.Errorf("bad duration %q (whole seconds)", args[1]))
		}
		wantVideo, wantAudio := true, true
		if len(args) > 2 {
			wantVideo, wantAudio = false, false
			for _, a := range args[2:] {
				switch a {
				case "video", "v":
					wantVideo = true
				case "audio", "a":
					wantAudio = true
				default:
					usage()
				}
			}
		}
		var v, a media.Source
		seed := *seedFlag
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		if wantVideo {
			v = media.NewVideoSource(30*seconds, 18000, 30, seed)
		}
		if wantAudio {
			a = media.NewAudioSource(10*seconds, 800, 10, 0.3, 20, seed+1)
		}
		id, length, err := c.RecordClip(*user, v, a, wantAudio)
		if err != nil {
			die(err)
		}
		fmt.Printf("recorded rope %d (%v)\n", id, length)
	case "play":
		if len(args) < 3 {
			usage()
		}
		id, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		m, err := parseMedium(args[2])
		if err != nil {
			die(err)
		}
		var start, dur time.Duration
		if len(args) > 3 {
			if start, err = parseDur(args[3]); err != nil {
				die(err)
			}
		}
		if len(args) > 4 {
			if dur, err = parseDur(args[4]); err != nil {
				die(err)
			}
		}
		res, err := c.Play(*user, id, m, start, dur, 2, *class)
		if err != nil {
			die(err)
		}
		fmt.Printf("played rope %d (%s): %d blocks, startup %v, %d continuity violation(s)",
			id, res.Class, res.Blocks, res.Startup, res.Violations)
		if res.CacheHits > 0 {
			fmt.Printf(", %d block(s) from cache", res.CacheHits)
		}
		if res.Stride > 1 || res.ShedBlocks > 0 {
			fmt.Printf(", load-shed at stride %d (%d block(s) skipped)", res.Stride, res.ShedBlocks)
		}
		fmt.Println()
	case "insert":
		if len(args) != 7 {
			usage()
		}
		base, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		pos, err := parseDur(args[2])
		if err != nil {
			die(err)
		}
		m, err := parseMedium(args[3])
		if err != nil {
			die(err)
		}
		with, err := parseRope(args[4])
		if err != nil {
			die(err)
		}
		ws, err := parseDur(args[5])
		if err != nil {
			die(err)
		}
		wd, err := parseDur(args[6])
		if err != nil {
			die(err)
		}
		copied, err := c.Insert(*user, base, pos, m, with, ws, wd)
		if err != nil {
			die(err)
		}
		fmt.Printf("inserted; scattering maintenance copied %d block(s)\n", copied)
	case "replace":
		if len(args) != 8 {
			usage()
		}
		base, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		m, err := parseMedium(args[2])
		if err != nil {
			die(err)
		}
		bs, err := parseDur(args[3])
		if err != nil {
			die(err)
		}
		bd, err := parseDur(args[4])
		if err != nil {
			die(err)
		}
		with, err := parseRope(args[5])
		if err != nil {
			die(err)
		}
		ws, err := parseDur(args[6])
		if err != nil {
			die(err)
		}
		wd, err := parseDur(args[7])
		if err != nil {
			die(err)
		}
		copied, err := c.Replace(*user, base, m, bs, bd, with, ws, wd)
		if err != nil {
			die(err)
		}
		fmt.Printf("replaced; scattering maintenance copied %d block(s)\n", copied)
	case "substring":
		if len(args) != 5 {
			usage()
		}
		base, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		m, err := parseMedium(args[2])
		if err != nil {
			die(err)
		}
		start, err := parseDur(args[3])
		if err != nil {
			die(err)
		}
		dur, err := parseDur(args[4])
		if err != nil {
			die(err)
		}
		id, err := c.Substring(*user, base, m, start, dur)
		if err != nil {
			die(err)
		}
		fmt.Printf("substring is rope %d\n", id)
	case "concat":
		if len(args) != 3 {
			usage()
		}
		r1, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		r2, err := parseRope(args[2])
		if err != nil {
			die(err)
		}
		id, copied, err := c.Concate(*user, r1, r2)
		if err != nil {
			die(err)
		}
		fmt.Printf("concatenation is rope %d; copied %d block(s)\n", id, copied)
	case "delete":
		if len(args) != 5 {
			usage()
		}
		base, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		m, err := parseMedium(args[2])
		if err != nil {
			die(err)
		}
		start, err := parseDur(args[3])
		if err != nil {
			die(err)
		}
		dur, err := parseDur(args[4])
		if err != nil {
			die(err)
		}
		copied, err := c.DeleteRange(*user, base, m, start, dur)
		if err != nil {
			die(err)
		}
		fmt.Printf("deleted; scattering maintenance copied %d block(s)\n", copied)
	case "rm":
		if len(args) != 2 {
			usage()
		}
		id, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		n, err := c.DeleteRope(*user, id)
		if err != nil {
			die(err)
		}
		fmt.Printf("rope %d deleted; %d strand(s) reclaimed\n", id, n)
	case "stats":
		st, err := c.Stats()
		if err != nil {
			die(err)
		}
		fmt.Printf("occupancy:       %.1f%%\nstrands:         %d\nropes:           %d\nservice rounds:  %d\nk (blocks/round): %d\nactive requests: %d\n",
			st.Occupancy*100, st.Strands, st.Ropes, st.Rounds, st.K, st.ActiveRequests)
		if st.CacheCapacity > 0 {
			fmt.Printf("cache:           %d/%d KiB, %d interval(s), %d cache-served play(s), %d hit(s)\n",
				st.CacheBytes>>10, st.CacheCapacity>>10, st.CacheIntervals, st.CacheServed, st.CacheHits)
		}
		if st.Retries > 0 || st.DegradedBlocks > 0 || st.FaultStops > 0 {
			fmt.Printf("faults:          %d retried read(s), %d degraded block(s), %d stream(s) stopped\n",
				st.Retries, st.DegradedBlocks, st.FaultStops)
		}
		for i, cs := range st.Classes {
			if cs.Active == 0 {
				continue
			}
			fmt.Printf("qos %-12s %d active, %d degraded, %.1f units/s effective\n",
				continuity.Class(i).String()+":", cs.Active, cs.Degraded, cs.EffectiveRate)
		}
		if st.Promotions > 0 || st.LoadDemotions > 0 || st.ShedBlocks > 0 {
			fmt.Printf("qos shedding:    %d promotion(s), %d demotion(s), %d block(s) shed\n",
				st.Promotions, st.LoadDemotions, st.ShedBlocks)
		}
		if len(st.SpindleStates) > 0 {
			fmt.Printf("mirror health:   %s\n", strings.Join(st.SpindleStates, " "))
			if st.RebuildTotal > 0 {
				fmt.Printf("rebuild:         %d/%d chunk(s) (%d copied lifetime)\n",
					st.RebuildDone, st.RebuildTotal, st.RebuildBlocks)
			} else if st.RebuildBlocks > 0 {
				fmt.Printf("rebuild:         idle (%d chunk(s) copied lifetime)\n", st.RebuildBlocks)
			}
		}
	case "rebuild":
		if len(args) != 2 {
			usage()
		}
		spindle, err := strconv.Atoi(args[1])
		if err != nil || spindle < 0 {
			die(fmt.Errorf("bad spindle %q", args[1]))
		}
		state, blocks, err := c.Rebuild(spindle)
		if err != nil {
			die(err)
		}
		fmt.Printf("spindle %d rebuilt: state %s, %d repair chunk(s) copied lifetime\n", spindle, state, blocks)
	case "metrics":
		snap, err := c.Metrics()
		if err != nil {
			die(err)
		}
		if err := snap.WritePrometheus(os.Stdout); err != nil {
			die(err)
		}
	case "text-put":
		if len(args) < 3 {
			usage()
		}
		if err := c.TextWrite(args[1], []byte(strings.Join(args[2:], " "))); err != nil {
			die(err)
		}
	case "text-get":
		if len(args) != 2 {
			usage()
		}
		data, err := c.TextRead(args[1])
		if err != nil {
			die(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case "trigger":
		if len(args) < 4 {
			usage()
		}
		id, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		at, err := parseDur(args[2])
		if err != nil {
			die(err)
		}
		if err := c.AddTrigger(*user, id, at, strings.Join(args[3:], " ")); err != nil {
			die(err)
		}
	case "triggers":
		if len(args) != 2 {
			usage()
		}
		id, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		trigs, err := c.Triggers(*user, id)
		if err != nil {
			die(err)
		}
		for _, trig := range trigs {
			fmt.Printf("%8v  %s\n", trig.At, trig.Text)
		}
	case "flatten":
		if len(args) != 2 {
			usage()
		}
		id, err := parseRope(args[1])
		if err != nil {
			die(err)
		}
		n, err := c.Flatten(*user, id)
		if err != nil {
			die(err)
		}
		fmt.Printf("flattened; %d strand(s) reclaimed\n", n)
	case "check":
		problems, err := c.Check()
		if err != nil {
			die(err)
		}
		if len(problems) == 0 {
			fmt.Println("file system clean")
		} else {
			for _, p := range problems {
				fmt.Println(p)
			}
			os.Exit(1)
		}
	case "text-ls":
		names, err := c.TextList()
		if err != nil {
			die(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	default:
		usage()
	}
}
