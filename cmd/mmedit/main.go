// Command mmedit is the rope editor of the prototype — the
// command-line analogue of the paper's window-based multimedia editor
// (Figure 12). It operates on an embedded multimedia file system and
// exposes the full §4.1 operation set over named ropes, reading a
// script from a file or standard input.
//
// Script language (one command per line, '#' comments):
//
//	record <name> <seconds>s [av|video|audio]   record a synthetic clip
//	play <name> [av|video|audio] [start dur]    play, report continuity
//	substring <new> <name> <medium> <start> <dur>
//	insert <name> <pos> <medium> <with> <wstart> <wdur>
//	replace <name> <medium> <bstart> <bdur> <with> <wstart> <wdur>
//	concat <new> <name1> <name2>
//	delete <name> <medium> <start> <dur>
//	rm <name>
//	info <name>
//	list
//	stats
//	trigger <name> <at> <text…>                 attach synchronized text
//	triggers <name>                             list triggers
//	flatten <name>                              merge all strands into one per medium
//
// Example session (the Figure 9 INSERT):
//
//	record rope1 4s av
//	record rope2 2s av
//	insert rope1 2s av rope2 0s 1s
//	play rope1 av
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// editor holds the session state: the embedded file system and the
// name → rope binding table.
type editor struct {
	fs    *core.FS
	names map[string]rope.ID
	user  string
	seed  int64
}

func (e *editor) lookup(name string) (rope.ID, error) {
	id, ok := e.names[name]
	if !ok {
		return 0, fmt.Errorf("no rope named %q", name)
	}
	return id, nil
}

func parseMedium(s string) (rope.Medium, error) {
	switch strings.ToLower(s) {
	case "av", "both", "audiovisual":
		return rope.AudioVisual, nil
	case "video", "v":
		return rope.VideoOnly, nil
	case "audio", "a":
		return rope.AudioOnly, nil
	}
	return 0, fmt.Errorf("unknown medium %q", s)
}

func (e *editor) exec(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "record":
		return e.record(args)
	case "play":
		return e.play(args)
	case "substring":
		return e.substring(args)
	case "insert":
		return e.insert(args)
	case "replace":
		return e.replace(args)
	case "concat":
		return e.concat(args)
	case "delete":
		return e.delete(args)
	case "rm":
		return e.rm(args)
	case "info":
		return e.info(args)
	case "list":
		return e.list()
	case "stats":
		return e.stats()
	case "trigger":
		return e.trigger(args)
	case "triggers":
		return e.triggers(args)
	case "flatten":
		return e.flatten(args)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func (e *editor) record(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("record <name> <seconds>s [av|video|audio]")
	}
	name := args[0]
	seconds, err := strconv.Atoi(strings.TrimSuffix(args[1], "s"))
	if err != nil || seconds < 1 {
		return fmt.Errorf("bad duration %q", args[1])
	}
	m := rope.AudioVisual
	if len(args) > 2 {
		if m, err = parseMedium(args[2]); err != nil {
			return err
		}
	}
	spec := core.RecordSpec{Creator: e.user, SilenceElimination: true}
	e.seed++
	if m == rope.AudioVisual || m == rope.VideoOnly {
		spec.Video = media.NewVideoSource(30*seconds, 18000, 30, e.seed)
	}
	if m == rope.AudioVisual || m == rope.AudioOnly {
		spec.Audio = media.NewAudioSource(10*seconds, 800, 10, 0.3, 20, e.seed+1000)
	}
	sess, err := e.fs.Record(spec)
	if err != nil {
		return err
	}
	e.fs.Manager().RunUntilDone()
	r, err := sess.Finish()
	if err != nil {
		return err
	}
	e.names[name] = r.ID
	fmt.Printf("  %s = rope %d (%v)\n", name, r.ID, r.Length())
	return nil
}

func (e *editor) play(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("play <name> [medium] [start dur]")
	}
	id, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	m := rope.AudioVisual
	if len(args) > 1 {
		if m, err = parseMedium(args[1]); err != nil {
			return err
		}
	}
	var start, dur time.Duration
	if len(args) > 2 {
		if start, err = time.ParseDuration(args[2]); err != nil {
			return err
		}
	}
	if len(args) > 3 {
		if dur, err = time.ParseDuration(args[3]); err != nil {
			return err
		}
	}
	h, err := e.fs.Play(e.user, id, m, start, dur, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		return err
	}
	e.fs.Manager().RunUntilDone()
	viol, err := e.fs.PlayViolations(h)
	if err != nil {
		return err
	}
	fmt.Printf("  played %s (%v): %d continuity violation(s)\n", args[0], m, viol)
	return nil
}

func (e *editor) substring(args []string) error {
	if len(args) != 5 {
		return fmt.Errorf("substring <new> <name> <medium> <start> <dur>")
	}
	base, err := e.lookup(args[1])
	if err != nil {
		return err
	}
	m, err := parseMedium(args[2])
	if err != nil {
		return err
	}
	start, err := time.ParseDuration(args[3])
	if err != nil {
		return err
	}
	dur, err := time.ParseDuration(args[4])
	if err != nil {
		return err
	}
	out, _, err := e.fs.Substring(e.user, base, m, start, dur)
	if err != nil {
		return err
	}
	e.names[args[0]] = out.ID
	fmt.Printf("  %s = rope %d (%v)\n", args[0], out.ID, out.Length())
	return nil
}

func (e *editor) insert(args []string) error {
	if len(args) != 6 {
		return fmt.Errorf("insert <name> <pos> <medium> <with> <wstart> <wdur>")
	}
	base, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	pos, err := time.ParseDuration(args[1])
	if err != nil {
		return err
	}
	m, err := parseMedium(args[2])
	if err != nil {
		return err
	}
	with, err := e.lookup(args[3])
	if err != nil {
		return err
	}
	ws, err := time.ParseDuration(args[4])
	if err != nil {
		return err
	}
	wd, err := time.ParseDuration(args[5])
	if err != nil {
		return err
	}
	res, err := e.fs.Insert(e.user, base, pos, m, with, ws, wd)
	if err != nil {
		return err
	}
	fmt.Printf("  inserted; %d block(s) copied for scattering maintenance\n", res.CopiedBlocks())
	return nil
}

func (e *editor) replace(args []string) error {
	if len(args) != 7 {
		return fmt.Errorf("replace <name> <medium> <bstart> <bdur> <with> <wstart> <wdur>")
	}
	base, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	m, err := parseMedium(args[1])
	if err != nil {
		return err
	}
	bs, err := time.ParseDuration(args[2])
	if err != nil {
		return err
	}
	bd, err := time.ParseDuration(args[3])
	if err != nil {
		return err
	}
	with, err := e.lookup(args[4])
	if err != nil {
		return err
	}
	ws, err := time.ParseDuration(args[5])
	if err != nil {
		return err
	}
	wd, err := time.ParseDuration(args[6])
	if err != nil {
		return err
	}
	res, err := e.fs.Replace(e.user, base, m, bs, bd, with, ws, wd)
	if err != nil {
		return err
	}
	fmt.Printf("  replaced; %d block(s) copied for scattering maintenance\n", res.CopiedBlocks())
	return nil
}

func (e *editor) concat(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("concat <new> <name1> <name2>")
	}
	r1, err := e.lookup(args[1])
	if err != nil {
		return err
	}
	r2, err := e.lookup(args[2])
	if err != nil {
		return err
	}
	out, res, err := e.fs.Concate(e.user, r1, r2)
	if err != nil {
		return err
	}
	e.names[args[0]] = out.ID
	fmt.Printf("  %s = rope %d (%v); %d block(s) copied\n", args[0], out.ID, out.Length(), res.CopiedBlocks())
	return nil
}

func (e *editor) delete(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("delete <name> <medium> <start> <dur>")
	}
	base, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	m, err := parseMedium(args[1])
	if err != nil {
		return err
	}
	start, err := time.ParseDuration(args[2])
	if err != nil {
		return err
	}
	dur, err := time.ParseDuration(args[3])
	if err != nil {
		return err
	}
	res, err := e.fs.DeleteRange(e.user, base, m, start, dur)
	if err != nil {
		return err
	}
	fmt.Printf("  deleted; %d block(s) copied for scattering maintenance\n", res.CopiedBlocks())
	return nil
}

func (e *editor) rm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("rm <name>")
	}
	id, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	reclaimed, err := e.fs.DeleteRope(e.user, id)
	if err != nil {
		return err
	}
	delete(e.names, args[0])
	fmt.Printf("  removed %s; %d strand(s) reclaimed\n", args[0], len(reclaimed))
	return nil
}

func (e *editor) info(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info <name>")
	}
	id, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	r, ok := e.fs.Ropes().Get(id)
	if !ok {
		return fmt.Errorf("rope %d vanished", id)
	}
	hasVideo, hasAudio := r.Components()
	fmt.Printf("  rope %d (%s): length %v, %d interval(s), video=%v audio=%v, strands %v\n",
		r.ID, args[0], r.Length(), len(r.Intervals), hasVideo, hasAudio, r.Strands())
	for i, iv := range r.Intervals {
		v, a := "-", "-"
		if iv.Video != nil {
			v = fmt.Sprintf("S%d@%d", iv.Video.Strand, iv.Video.StartUnit)
		}
		if iv.Audio != nil {
			a = fmt.Sprintf("S%d@%d", iv.Audio.Strand, iv.Audio.StartUnit)
		}
		fmt.Printf("    interval %d: %v video=%s audio=%s\n", i, iv.Duration, v, a)
	}
	return nil
}

func (e *editor) list() error {
	names := make([]string, 0, len(e.names))
	for n := range e.names {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r, ok := e.fs.Ropes().Get(e.names[n])
		if !ok {
			continue
		}
		fmt.Printf("  %s = rope %d (%v)\n", n, r.ID, r.Length())
	}
	return nil
}

func (e *editor) trigger(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("trigger <name> <at> <text…>")
	}
	id, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	at, err := time.ParseDuration(args[1])
	if err != nil {
		return err
	}
	if err := e.fs.AddTrigger(e.user, id, at, strings.Join(args[2:], " ")); err != nil {
		return err
	}
	fmt.Printf("  trigger set at %v\n", at)
	return nil
}

func (e *editor) triggers(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("triggers <name>")
	}
	id, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	trigs, err := e.fs.Triggers(e.user, id)
	if err != nil {
		return err
	}
	for _, trig := range trigs {
		fmt.Printf("  %8v  %s\n", trig.At, trig.Text)
	}
	return nil
}

func (e *editor) flatten(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("flatten <name>")
	}
	id, err := e.lookup(args[0])
	if err != nil {
		return err
	}
	res, err := e.fs.Flatten(e.user, id)
	if err != nil {
		return err
	}
	fmt.Printf("  flattened; %d strand(s) reclaimed\n", len(res.Reclaimed))
	return nil
}

func (e *editor) stats() error {
	st := e.fs.Manager().Stats()
	fmt.Printf("  occupancy %.1f%%, %d strand(s), %d rope(s), %d round(s) serviced, k=%d\n",
		e.fs.Occupancy()*100, e.fs.Strands().Len(), e.fs.Ropes().Len(), st.Rounds, e.fs.Manager().K())
	return nil
}

func main() {
	script := flag.String("f", "", "script file (default: stdin)")
	user := flag.String("user", "editor", "user identity")
	flag.Parse()

	fs, err := core.Format(core.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmedit: %v\n", err)
		os.Exit(1)
	}
	e := &editor{fs: fs, names: make(map[string]rope.ID), user: *user, seed: 1}

	in := os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmedit: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fmt.Printf("> %s\n", line)
		if err := e.exec(line); err != nil {
			fmt.Fprintf(os.Stderr, "mmedit: line %d: %v\n", lineNo, err)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "mmedit: %v\n", err)
		os.Exit(1)
	}
}
