// Command mmfsd is the Multimedia Rope Server daemon: it formats (or
// reuses) a simulated multimedia disk and serves the rope protocol
// over TCP, playing the role of the paper's SPARCstation MRS fronting
// the PC-AT storage manager (§5).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/core"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/obs"
	"mmfs/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		cylinders = flag.Int("cylinders", 1200, "disk cylinders")
		surfaces  = flag.Int("surfaces", 8, "disk surfaces per cylinder")
		sectors   = flag.Int("sectors", 56, "sectors per track")
		rpm       = flag.Float64("rpm", 3600, "spindle speed")
		heads     = flag.Int("heads", 1, "independent head assemblies (degree of concurrency)")
		target    = flag.Int("target-cylinders", 32, "placement policy: max cylinders between successive strand blocks")
		cachemb   = flag.Int("cachemb", 0, "interval cache size in MiB (0 disables caching)")
		metrics   = flag.String("metrics-addr", "", "observability HTTP listen address serving /metrics (Prometheus text) and /trace (service-round JSON); empty disables")
		scenario  = flag.String("fault-scenario", "off", "fault-injection scenario (e.g. \"seed=42,readerr=0.02,slow=0.05x4,bad=100+50\"); \"off\" disables")
		connTO    = flag.Duration("conn-timeout", 0, "per-connection idle read and response write deadline (0 disables)")
		maxConns  = flag.Int("max-conns", 0, "max concurrent client connections; excess are refused with a busy error (0 = unlimited)")
		disks     = flag.Int("disks", 1, "independent spindles p; >1 stripes strands across a disk array with one concurrent sub-round and per-spindle admission each round")
		stripe    = flag.Int("stripe", 0, "striping unit in cylinders (must divide -cylinders); 0 picks cylinders/10")
		faultSp   = flag.Int("fault-spindle", 0, "spindle the fault scenario wraps when -disks > 1 (single-spindle degradation)")
		mirror    = flag.Bool("mirror", false, "pair the array's spindles into mirror groups: capacity halves, a whole-spindle loss degrades to the twin and REBUILD restores redundancy online")
		rbRate    = flag.Int("rebuild-rate", 0, "max rebuild/rebalance chunks (spindle cylinders) copied per service round (0 = built-in default)")
		qosMax    = flag.Int("qos-max-stride", 0, "QoS load shedding: max sub-sampling stride for standard/best-effort plays under overload (≥2 enables, 0 keeps admission binary accept/reject)")
		qosDef    = flag.String("qos-default", "standard", "QoS class for PLAY requests that do not name one: premium, standard, or best-effort")
	)
	flag.Parse()

	sc, err := fault.ParseScenario(*scenario)
	if err != nil {
		log.Fatalf("mmfsd: %v", err)
	}
	defClass, err := continuity.ParseClass(*qosDef)
	if err != nil {
		log.Fatalf("mmfsd: %v", err)
	}

	g := disk.Geometry{
		Cylinders:       *cylinders,
		Surfaces:        *surfaces,
		SectorsPerTrack: *sectors,
		SectorSize:      2048,
		RPM:             *rpm,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         30 * time.Millisecond,
		Heads:           *heads,
	}
	fs, err := core.Format(core.Options{
		Geometry: g, TargetCylinders: *target, CacheMB: *cachemb, Fault: sc,
		Disks: *disks, Stripe: *stripe, FaultSpindle: *faultSp,
		Mirror: *mirror, RebuildRate: *rbRate,
		QoSMaxStride: *qosMax, QoSDefault: defClass,
	})
	if err != nil {
		log.Fatalf("mmfsd: format: %v", err)
	}
	dev := fs.Device()
	lg := fs.Disk().Geometry()
	fmt.Printf("mmfsd: %d MB disk, r_dt %.1f Mbit/s, l_max_seek %.1f ms, placement ≤ %d cylinders\n",
		lg.CapacityBytes()>>20, dev.TransferRate/1e6, dev.MaxAccess*1000, *target)
	if a := fs.Array(); a != nil {
		if a.Mirrored() {
			fmt.Printf("mmfsd: %d-spindle mirrored array (%d pairs), stripe %d cylinders — survives any single-spindle loss; rebuild rate %d chunk(s)/round\n",
				a.Spindles(), a.Spindles()/2, a.StripeCylinders(), fs.Manager().RebuildRate())
		} else {
			fmt.Printf("mmfsd: %d-spindle striped array, stripe %d cylinders (admission per spindle: up to %d× the single-disk population)\n",
				a.Spindles(), a.StripeCylinders(), a.Spindles())
		}
	}
	if *cachemb > 0 {
		fmt.Printf("mmfsd: interval cache %d MiB (trailing plays of a rope are served from memory)\n", *cachemb)
	}
	if sc.Active() {
		fmt.Printf("mmfsd: fault injection %s (degradation ladder: retry, zero-fill, stop)\n", sc)
	}
	if *qosMax >= 2 {
		fmt.Printf("mmfsd: QoS load shedding enabled (default class %s, max stride %d)\n", defClass, *qosMax)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mmfsd: listen: %v", err)
	}
	fmt.Printf("mmfsd: serving on %s\n", lis.Addr())

	var mlis net.Listener
	var metricsWG sync.WaitGroup
	if *metrics != "" {
		mlis, err = net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("mmfsd: metrics listen: %v", err)
		}
		fmt.Printf("mmfsd: metrics on http://%s/metrics (trace at /trace)\n", mlis.Addr())
		metricsWG.Add(1)
		go func() {
			defer metricsWG.Done()
			if err := http.Serve(mlis, obs.Handler(fs.Metrics(), fs.Trace())); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("mmfsd: metrics serve: %v", err)
			}
		}()
	}

	srv := server.New(fs)
	srv.Logf = log.Printf
	srv.ReadTimeout = *connTO
	srv.WriteTimeout = *connTO
	srv.MaxConns = *maxConns
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		<-sig
		fmt.Println("\nmmfsd: draining connections")
		if mlis != nil {
			_ = mlis.Close()
		}
		// Graceful drain: in-flight requests get their responses, new
		// connections are refused, and Close returns once every
		// connection handler has exited.
		_ = srv.Close()
		fmt.Println("mmfsd: shutdown complete")
		close(drained)
	}()
	if err := srv.Serve(lis); err != nil {
		log.Fatalf("mmfsd: serve: %v", err)
	}
	// Serve returns nil only when the drain path closed the listener;
	// wait for the drain itself to finish before exiting the process.
	// The drain closes the metrics listener, which unblocks the
	// metrics goroutine; join it so its final log line is not lost.
	<-drained
	metricsWG.Wait()
}
