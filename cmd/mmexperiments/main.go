// Command mmexperiments regenerates the paper's quantitative artifacts
// (Figure 4, the continuity equations' frontiers, Eq. 17's n_max, the
// Eq. 18 transition, the Eq. 19/20 editing copy bounds, read-ahead,
// silence elimination, fast-forward, and the HDTV motivating
// arithmetic) and prints each as a table with paper-vs-measured notes.
//
// Usage:
//
//	mmexperiments             # run everything
//	mmexperiments -exp f4     # run one experiment
//	mmexperiments -list       # list experiment IDs
//	mmexperiments -seed 1000  # offset the seeded chaos workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"mmfs/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment (f4, e1, e2, e3, e46, nmax, trans, edit, ra, sil, hdtv, ff, vbr, scan, reorg, ic, ft, stripe, qos, rebuild)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Int64("seed", 0, "offset for the seeded chaos workloads (EXP-FT, EXP-STRIPE, EXP-QOS, EXP-REBUILD); 0 keeps the default seeds")
	flag.Parse()

	experiments.SetSeedBase(*seed)
	if *list {
		for _, id := range []string{"f4", "e1", "e2", "e3", "e46", "nmax", "trans", "edit", "ra", "sil", "hdtv", "ff", "vbr", "scan", "reorg", "ic", "ft", "stripe", "qos", "rebuild"} {
			fmt.Println(id)
		}
		return
	}
	if *exp != "" {
		run, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mmexperiments: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		experiments.Render(os.Stdout, run())
		return
	}
	for _, r := range experiments.All() {
		experiments.Render(os.Stdout, r)
	}
}
