package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Regression gating. Wall-clock ns/op is compared too, but the primary
// gate is the deterministic simulated-disk metrics (disk busy time,
// blocks transferred, cache hit ratio): virtual time does not vary
// with CI runner load, so a change there is a real behavioural change,
// not noise.
//
// lowerBetterPrefixes selects metrics where an increase beyond the
// tolerance is a regression; higherBetter selects metrics where a
// decrease is.
var (
	lowerBetterPrefixes = []string{"disk_busy", "disk_blocks", "allocs/op"}
	higherBetter        = map[string]bool{"cache_hit_pct": true, "n_admitted": true}
)

// loadReport reads a benchjson report from disk.
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func lowerBetter(metric string) bool {
	for _, p := range lowerBetterPrefixes {
		if strings.HasPrefix(metric, p) {
			return true
		}
	}
	return false
}

// compareReports diffs cur against base and returns one line per
// regression beyond the tolerance (0.15 = 15%). A benchmark missing
// from cur is a regression (coverage lost); one missing from base is
// ignored (new benchmarks cannot regress). A non-empty subset
// restricts the gate to benchmarks whose name starts with it (and
// skips the cross-suite summary), so a fast CI job can gate one
// benchmark family against the full committed baseline.
func compareReports(base, cur Report, tol float64, subset string) []string {
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	var regs []string
	worse := func(name, metric string, b, c float64) {
		// A zero baseline cannot be scaled by a tolerance; any
		// measurable value is an infinite-ratio regression.
		if b == 0 {
			if c > 0 {
				regs = append(regs, fmt.Sprintf("%s: %s grew from 0 to %g", name, metric, c))
			}
			return
		}
		if c > b*(1+tol) {
			regs = append(regs, fmt.Sprintf("%s: %s regressed %.1f%% (%g -> %g, tolerance %.0f%%)",
				name, metric, (c/b-1)*100, b, c, tol*100))
		}
	}
	for _, bb := range base.Benchmarks {
		if subset != "" && !strings.HasPrefix(bb.Name, subset) {
			continue
		}
		cb, ok := curBy[bb.Name]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: missing from new report", bb.Name))
			continue
		}
		// A baseline written with -strip-wallclock records no ns/op
		// (wall clock is meaningless across heterogeneous runners);
		// only compare it when the baseline has it.
		if bb.NsPerOp > 0 {
			worse(bb.Name, "ns/op", bb.NsPerOp, cb.NsPerOp)
		}
		// Walk metrics in sorted order so the regression report reads
		// the same from run to run.
		metrics := make([]string, 0, len(bb.Metrics))
		for metric := range bb.Metrics {
			metrics = append(metrics, metric)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			bv := bb.Metrics[metric]
			cv, ok := cb.Metrics[metric]
			if !ok {
				continue
			}
			switch {
			case lowerBetter(metric):
				worse(bb.Name, metric, bv, cv)
			case higherBetter[metric]:
				if bv > 0 && cv < bv*(1-tol) {
					regs = append(regs, fmt.Sprintf("%s: %s dropped %.1f%% (%g -> %g, tolerance %.0f%%)",
						bb.Name, metric, (1-cv/bv)*100, bv, cv, tol*100))
				}
			}
		}
	}
	if subset == "" && base.Summary != nil && cur.Summary != nil {
		worse("summary", "disk_busy_ms", base.Summary.DiskBusyMs, cur.Summary.DiskBusyMs)
		worse("summary", "disk_blocks", base.Summary.DiskBlocks, cur.Summary.DiskBlocks)
		if b, c := base.Summary.CacheHitPct, cur.Summary.CacheHitPct; b > 0 && c < b*(1-tol) {
			regs = append(regs, fmt.Sprintf("summary: cache_hit_pct dropped %.1f%% (%g -> %g, tolerance %.0f%%)",
				(1-c/b)*100, b, c, tol*100))
		}
	}
	return regs
}

// summarize aggregates the simulated-disk metrics across benchmarks so
// CI can gate on one pair of numbers per run.
func summarize(rep *Report) {
	var s Summary
	var hitSum float64
	var hitN int
	for _, b := range rep.Benchmarks {
		for metric, v := range b.Metrics {
			switch {
			case strings.HasPrefix(metric, "disk_busy"):
				s.DiskBusyMs += v
			case strings.HasPrefix(metric, "disk_blocks"):
				s.DiskBlocks += v
			case metric == "cache_hit_pct":
				hitSum += v
				hitN++
			}
		}
	}
	if hitN > 0 {
		s.CacheHitPct = hitSum / float64(hitN)
	}
	if s != (Summary{}) {
		rep.Summary = &s
	}
}
