package main

import (
	"strings"
	"testing"
)

func report(busy float64) Report {
	return Report{
		Benchmarks: []Benchmark{
			{Name: "BenchmarkPlaybackRound", N: 1, NsPerOp: 1e6, Metrics: map[string]float64{
				"disk_busy_ms/op": busy,
				"disk_blocks/op":  40,
			}},
			{Name: "BenchmarkCachedConcurrentPlayback", N: 1, NsPerOp: 2e6, Metrics: map[string]float64{
				"disk_blocks":   100,
				"cache_hit_pct": 60,
				"n_admitted":    8,
			}},
		},
		Summary: &Summary{DiskBusyMs: busy, DiskBlocks: 140, CacheHitPct: 60},
	}
}

// TestSyntheticDiskBusyRegression is the CI gate's proof: a 20%
// increase in simulated disk busy time must fail a 15%-tolerance
// compare, and an identical report must pass.
func TestSyntheticDiskBusyRegression(t *testing.T) {
	base := report(100)
	if regs := compareReports(base, report(100), 0.15, ""); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %v", regs)
	}
	regs := compareReports(base, report(120), 0.15, "")
	if len(regs) == 0 {
		t.Fatal("20%% disk-busy regression passed a 15%% tolerance")
	}
	found := false
	for _, r := range regs {
		if strings.Contains(r, "disk_busy_ms") && strings.Contains(r, "regressed 20.0%") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no disk_busy regression line in %v", regs)
	}
	// 20% is inside a 25% tolerance.
	if regs := compareReports(base, report(120), 0.25, ""); len(regs) != 0 {
		t.Fatalf("20%% regression flagged at 25%% tolerance: %v", regs)
	}
}

func TestCompareDirections(t *testing.T) {
	base := report(100)

	cur := report(100)
	cur.Benchmarks[1].Metrics["cache_hit_pct"] = 40 // -33%: higher-is-better drop
	cur.Summary.CacheHitPct = 40
	if regs := compareReports(base, cur, 0.15, ""); len(regs) != 2 {
		// Per-benchmark metric and the summary mirror of it.
		t.Fatalf("hit-ratio drop: got %v", regs)
	}

	cur = report(100)
	cur.Benchmarks[0].NsPerOp = 1e6 * 1.5
	if regs := compareReports(base, cur, 0.15, ""); len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("ns/op regression: got %v", regs)
	}

	// Improvements in lower-better metrics never flag.
	cur = report(50)
	cur.Benchmarks[0].NsPerOp = 1
	if regs := compareReports(base, cur, 0.15, ""); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}

	// A wallclock-stripped baseline (ns/op = 0) never gates on ns/op.
	stripped := report(100)
	for i := range stripped.Benchmarks {
		stripped.Benchmarks[i].NsPerOp = 0
	}
	if regs := compareReports(stripped, report(100), 0.15, ""); len(regs) != 0 {
		t.Fatalf("stripped baseline flagged ns/op: %v", regs)
	}

	// A benchmark disappearing from the new report is lost coverage.
	cur = report(100)
	cur.Benchmarks = cur.Benchmarks[:1]
	if regs := compareReports(base, cur, 0.15, ""); len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing benchmark: got %v", regs)
	}

	// Zero baseline growing to nonzero is an infinite-ratio regression.
	cur = report(100)
	base.Benchmarks[0].Metrics["disk_busy_ms/op"] = 0
	base.Summary.DiskBusyMs = 0
	if regs := compareReports(base, cur, 0.15, ""); len(regs) != 2 {
		t.Fatalf("zero-baseline growth: got %v", regs)
	}
}

// TestAllocGateAndSubset proves the allocation gate: allocs/op is a
// lower-better metric whose zero baseline flags any growth, and
// -subset restricts the gate to one benchmark family.
func TestAllocGateAndSubset(t *testing.T) {
	base := report(100)
	base.Benchmarks[0].Metrics["allocs/op"] = 0

	cur := report(100)
	cur.Benchmarks[0].Metrics["allocs/op"] = 2
	regs := compareReports(base, cur, 0.15, "")
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") || !strings.Contains(regs[0], "grew from 0") {
		t.Fatalf("alloc growth past a zero baseline: got %v", regs)
	}

	// The same growth inside the subset still flags.
	if regs := compareReports(base, cur, 0.15, "BenchmarkPlaybackRound"); len(regs) != 1 {
		t.Fatalf("alloc growth under subset: got %v", regs)
	}

	// A regression outside the subset is out of the gate's scope.
	cur = report(100)
	cur.Benchmarks[1].Metrics["cache_hit_pct"] = 40
	cur.Summary.CacheHitPct = 40
	if regs := compareReports(base, cur, 0.15, "BenchmarkPlaybackRound"); len(regs) != 0 {
		t.Fatalf("subset leaked an out-of-scope regression: %v", regs)
	}
}

func TestSummarize(t *testing.T) {
	rep := Report{Benchmarks: []Benchmark{
		{Name: "A", Metrics: map[string]float64{"disk_busy_ms/op": 10, "disk_blocks/op": 4}},
		{Name: "B", Metrics: map[string]float64{"disk_blocks": 100, "cache_hit_pct": 80}},
		{Name: "C", Metrics: map[string]float64{"cache_hit_pct": 40, "n_max": 16}},
	}}
	summarize(&rep)
	if rep.Summary == nil {
		t.Fatal("no summary")
	}
	if rep.Summary.DiskBusyMs != 10 || rep.Summary.DiskBlocks != 104 || rep.Summary.CacheHitPct != 60 {
		t.Fatalf("summary %+v", *rep.Summary)
	}

	empty := Report{Benchmarks: []Benchmark{{Name: "D"}}}
	summarize(&empty)
	if empty.Summary != nil {
		t.Fatalf("summary on metric-free report: %+v", *empty.Summary)
	}
}

func TestParseLineSummaryInputs(t *testing.T) {
	b, ok := parseLine("BenchmarkPlaybackRound-8  1  123456 ns/op  12.5 disk_busy_ms/op  40.0 disk_blocks/op")
	if !ok || b.Name != "BenchmarkPlaybackRound" || b.NsPerOp != 123456 {
		t.Fatalf("parse: %+v %v", b, ok)
	}
	if b.Metrics["disk_busy_ms/op"] != 12.5 || b.Metrics["disk_blocks/op"] != 40 {
		t.Fatalf("metrics: %v", b.Metrics)
	}
}
