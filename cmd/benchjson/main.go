// Command benchjson converts `go test -bench` output on stdin into a
// JSON file, so benchmark runs (and the experiment metrics they report
// via b.ReportMetric, e.g. disk_blocks and cache_hit_pct) can be
// archived and diffed across commits. Driven by `make bench`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary aggregates the deterministic simulated-disk metrics across
// all benchmarks in a report: total virtual disk busy milliseconds,
// total blocks transferred, and the mean interval-cache hit ratio.
// These come from the simulation's virtual clock, so they are stable
// across CI runners and safe to gate regressions on.
type Summary struct {
	DiskBusyMs  float64 `json:"disk_busy_ms"`
	DiskBlocks  float64 `json:"disk_blocks"`
	CacheHitPct float64 `json:"cache_hit_pct,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	Date       string      `json:"date"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Summary    *Summary    `json:"summary,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	compare := flag.Bool("compare", false, "compare two report files (baseline new) instead of reading bench output")
	tolerance := flag.Float64("tolerance", 0.15, "relative regression tolerance for -compare")
	stripWallclock := flag.Bool("strip-wallclock", false, "omit ns/op from the written report (for committed baselines: wall clock is not comparable across runners, the simulated-disk metrics are)")
	subset := flag.String("subset", "", "with -compare, gate only benchmarks whose name has this prefix")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-tolerance 0.15] baseline.json new.json")
			os.Exit(2)
		}
		base, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		cur, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		regs := compareReports(base, cur, *tolerance, *subset)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d benchmarks within %.0f%% of baseline\n", len(cur.Benchmarks), *tolerance*100)
		return
	}

	rep := Report{Date: time.Now().Format("2006-01-02")}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	summarize(&rep)
	if *stripWallclock {
		for i := range rep.Benchmarks {
			rep.Benchmarks[i].NsPerOp = 0
		}
	}
	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), path)
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  10  123 ns/op  4.0 disk_blocks  75.0 cache_hit_pct
//
// i.e. a name, the iteration count, then value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix go test appends.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[fields[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
