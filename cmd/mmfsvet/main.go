// Command mmfsvet is the multichecker driver for the mmfs analyzer
// suite. It loads the packages matching its arguments (default ./...),
// runs every analyzer that applies to each package, and prints one
// line per finding:
//
//	path/file.go:line:col: [analyzer] message
//
// Flags:
//
//	-v            list the packages and analyzers as they run
//	-json FILE    also write the findings as a JSON array to FILE
//	              (written even when the tree is clean, so CI always
//	              has an artifact to upload)
//	-github       emit GitHub Actions ::error workflow commands so
//	              findings annotate the PR diff
//
// The exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when loading or analysis failed. Individual findings
// are suppressed with a `//lint:ignore <analyzer> reason` comment on
// the flagged line or the line above it; DESIGN.md documents the
// checked invariants.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mmfs/internal/analysis"
	"mmfs/internal/analysis/all"
)

// finding is the JSON shape of one diagnostic, stable for CI tooling.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	analyzers := all.Analyzers()
	verbose := flag.Bool("v", false, "list the packages and analyzers as they run")
	jsonPath := flag.String("json", "", "write findings as a JSON array to this file")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mmfsvet [-v] [-json file] [-github] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmfsvet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		for _, pkg := range pkgs {
			var applied []string
			for _, a := range analyzers {
				if a.AppliesTo(pkg.Path) {
					applied = append(applied, a.Name)
				}
			}
			fmt.Fprintf(os.Stderr, "mmfsvet: %s: %v\n", pkg.Path, applied)
		}
	}
	diags, err := analysis.RunAll(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmfsvet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		findings = append(findings, finding{
			File:     name,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		if *github {
			fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(findings, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmfsvet: writing %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
