// Command mmfsvet is the multichecker driver for the mmfs analyzer
// suite. It loads the packages matching its arguments (default ./...),
// runs every analyzer that applies to each package, and prints one
// line per finding:
//
//	path/file.go:line:col: [analyzer] message
//
// The exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 when loading or analysis failed. Individual findings
// are suppressed with a `//lint:ignore <analyzer> reason` comment on
// the flagged line or the line above it; DESIGN.md documents the five
// checked invariants.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mmfs/internal/analysis"
	"mmfs/internal/analysis/lockguard"
	"mmfs/internal/analysis/noerrdrop"
	"mmfs/internal/analysis/simclock"
	"mmfs/internal/analysis/unitsafety"
	"mmfs/internal/analysis/wireswitch"
)

// analyzers is the suite run over every loaded package (each analyzer
// still scopes itself via PathPrefixes).
var analyzers = []*analysis.Analyzer{
	unitsafety.Analyzer,
	lockguard.Analyzer,
	wireswitch.Analyzer,
	noerrdrop.Analyzer,
	simclock.Analyzer,
}

func main() {
	verbose := flag.Bool("v", false, "list the packages and analyzers as they run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mmfsvet [-v] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmfsvet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		for _, pkg := range pkgs {
			var applied []string
			for _, a := range analyzers {
				if a.AppliesTo(pkg.Path) {
					applied = append(applied, a.Name)
				}
			}
			fmt.Fprintf(os.Stderr, "mmfsvet: %s: %v\n", pkg.Path, applied)
		}
	}
	diags, err := analysis.RunAll(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmfsvet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
