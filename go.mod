module mmfs

go 1.22
