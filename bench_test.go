package mmfs

// bench_test.go regenerates every quantitative artifact of Rangan &
// Vin (SOSP '91) as a benchmark — one benchmark per experiment ID of
// DESIGN.md §4 — plus micro-benchmarks of the hot paths (disk model,
// allocator, admission math, index lookups, block retrieval, plan
// compilation, wire codec). Experiment benchmarks report headline
// numbers via b.ReportMetric so `go test -bench=.` reproduces the
// paper's tables' key values alongside the timing.

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/core"
	"mmfs/internal/disk"
	"mmfs/internal/experiments"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
	"mmfs/internal/strand"
	"mmfs/internal/wire"
)

// --- Experiment benchmarks: one per table/figure -------------------

func cellFloat(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// BenchmarkFigure4KvsN regenerates Figure 4 (EXP-F4): the k-versus-n
// curve of the admission control algorithm, analytic and simulated.
func BenchmarkFigure4KvsN(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.F4()
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(len(res.Rows)), "n_max")
	b.ReportMetric(cellFloat(b, last[2]), "k_transient@n_max")
	b.ReportMetric(cellFloat(b, last[3]), "k_simulated@n_max")
}

// BenchmarkSequentialContinuity regenerates Eq. 1's frontier (EXP-E1).
func BenchmarkSequentialContinuity(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.E1Sequential()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][3]), "max_lds_ms@q1")
}

// BenchmarkPipelinedContinuity regenerates Eq. 2's frontier (EXP-E2).
func BenchmarkPipelinedContinuity(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.E2Pipelined()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][3]), "max_lds_ms@q1")
	b.ReportMetric(cellFloat(b, res.Rows[0][6]), "viol_past_bound@q1")
}

// BenchmarkConcurrentContinuity regenerates Eq. 3's frontier (EXP-E3).
func BenchmarkConcurrentContinuity(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.E3Concurrent()
	}
	b.ReportMetric(cellFloat(b, res.Rows[1][2]), "max_lds_ms@p2q3")
}

// BenchmarkMixedMedia regenerates Eqs. 4–6 (EXP-E46).
func BenchmarkMixedMedia(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.E46MixedMedia()
	}
	b.ReportMetric(float64(len(res.Rows)), "layout_rows")
}

// BenchmarkNMax regenerates Eq. 17 (EXP-N17).
func BenchmarkNMax(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.NMax()
	}
	b.ReportMetric(cellFloat(b, res.Rows[1][4]), "n_max_default")
}

// BenchmarkTransition regenerates the Eq. 18 transition contrast
// (EXP-TR).
func BenchmarkTransition(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Transition()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][4]), "viol_stepwise")
	b.ReportMetric(cellFloat(b, res.Rows[1][4]), "viol_naive")
}

// BenchmarkEditCopy regenerates Eqs. 19–20 (EXP-ED).
func BenchmarkEditCopy(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.EditCopy()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][3]), "copied_sparse_fwd")
}

// BenchmarkReadAhead regenerates the §3.3.2 provisioning sweep
// (EXP-RA).
func BenchmarkReadAhead(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.ReadAhead()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][4]), "viol_underprovisioned")
	b.ReportMetric(cellFloat(b, res.Rows[len(res.Rows)-1][4]), "viol_provisioned")
}

// BenchmarkSilence regenerates §4's silence elimination (EXP-SIL).
func BenchmarkSilence(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Silence()
	}
	b.ReportMetric(cellFloat(b, res.Rows[len(res.Rows)-1][5]), "saved_pct@80")
}

// BenchmarkHDTVMotivation regenerates §3's motivating arithmetic
// (EXP-HDTV).
func BenchmarkHDTVMotivation(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.HDTV()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][2]), "random_gbps")
	b.ReportMetric(cellFloat(b, res.Rows[2][2]), "constrained_gbps")
}

// BenchmarkFastForward regenerates §3.3.2's fast-forward analysis
// (EXP-FF).
func BenchmarkFastForward(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.FastForward()
	}
	b.ReportMetric(float64(len(res.Rows)), "speed_rows")
}

// --- Micro-benchmarks: hot paths -----------------------------------

// BenchmarkDiskAccessModel measures the seek/latency/transfer
// computation at the heart of every timed access.
func BenchmarkDiskAccessModel(b *testing.B) {
	d := disk.MustNew(disk.DefaultGeometry())
	spc := d.Geometry().SectorsPerCylinder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.PeekServiceTime(0, (i%1000)*spc, 9)
	}
}

// BenchmarkTimedBlockRead measures the full timed read path, the inner
// loop of every service round.
func BenchmarkTimedBlockRead(b *testing.B) {
	d := disk.MustNew(disk.DefaultGeometry())
	payload := make([]byte, 9*2048)
	spc := d.Geometry().SectorsPerCylinder()
	for c := 0; c < 64; c++ {
		if err := d.WriteAt(c*16*spc, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Read(0, (i%64)*16*spc, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstrainedAllocation measures constrained placement plus
// free, the write path's allocation cost.
func BenchmarkConstrainedAllocation(b *testing.B) {
	g := disk.DefaultGeometry()
	a, err := alloc.New(g, 64)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := a.AllocateNearCylinder(600, 9)
	if err != nil {
		b.Fatal(err)
	}
	c := alloc.Constraint{MinCylinders: 1, MaxCylinders: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := a.AllocateConstrained(prev, 9, c)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(run)
	}
}

// BenchmarkAdmissionControl measures the α/β/γ + k computation run on
// every admission decision.
func BenchmarkAdmissionControl(b *testing.B) {
	g := disk.DefaultGeometry()
	adm := continuity.Admission{
		MaxAccess:    continuity.Seconds(g.MaxAccessTime()),
		TransferRate: g.TransferRateBits(),
	}
	m := continuity.NTSCVideo()
	reqs := make([]continuity.Request, 4)
	for i := range reqs {
		reqs[i] = continuity.Request{Granularity: 3, UnitBits: m.UnitBits, Rate: m.Rate, Scattering: 0.011}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := adm.KTransient(reqs); !ok {
			b.Fatal("unserviceable")
		}
	}
}

// BenchmarkIndexBuildLoad measures the 3-level index round trip for a
// 1000-block strand.
func BenchmarkIndexBuildLoad(b *testing.B) {
	d := disk.MustNew(disk.DefaultGeometry())
	entries := make([]layout.PrimaryEntry, 1000)
	for i := range entries {
		entries[i] = layout.PrimaryEntry{Sector: uint32(10000 + i*16), SectorCount: 9}
	}
	h := layout.Header{StrandID: 1, Medium: layout.Video, RateMilli: 30000, UnitBits: 144000, Granularity: 3, UnitCount: 3000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := 1000
		ix, err := layout.BuildIndex(h, entries, 2048, func(n int) (int, error) {
			lba := next
			next += n
			return lba, nil
		}, d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := layout.LoadIndex(d, int(ix.HeaderRun.Sector), int(ix.HeaderRun.SectorCount), 2048); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFS builds a small file system with one recorded AV rope.
func benchFS(b *testing.B) (*core.FS, *rope.Rope) {
	b.Helper()
	fs, err := core.Format(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := fs.Record(core.RecordSpec{
		Creator: "bench",
		Video:   media.NewVideoSource(300, 18000, 30, 1),
		Audio:   media.NewAudioSource(100, 800, 10, 0.3, 20, 2),
	})
	if err != nil {
		b.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	r, err := sess.Finish()
	if err != nil {
		b.Fatal(err)
	}
	return fs, r
}

// BenchmarkRopePlanCompile measures compiling a rope into an MSM
// playback plan.
func BenchmarkRopePlanCompile(b *testing.B) {
	fs, r := benchFS(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Ropes().CompilePlay(fs.Disk(), r, rope.VideoOnly, 0, r.Length(), msm.PlanOptions{ReadAhead: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaybackRound measures the service-round loop two ways.
// The full variant is one complete 10-second playback simulation per
// op (admission + service rounds + deadline accounting), reporting the
// simulated disk work per play so cache wins elsewhere in the suite
// have a disk-bound baseline. The steady variant times single service
// rounds on a warmed manager — admission, plan compilation, and
// re-admission all happen off the clock — and its allocs/op must be
// zero: that is the real-time path discipline the allocpath analyzer
// enforces statically, verified dynamically and gated in CI.
func BenchmarkPlaybackRound(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		fs, r := benchFS(b)
		before := fs.Disk().Stats()
		snap0 := fs.Metrics().Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mgr := fs.NewManager()
			plan, err := fs.Ropes().CompilePlay(fs.Disk(), r, rope.VideoOnly, 0, r.Length(), msm.PlanOptions{ReadAhead: 2})
			if err != nil {
				b.Fatal(err)
			}
			id, _, err := mgr.AdmitPlay(plan)
			if err != nil {
				b.Fatal(err)
			}
			mgr.RunUntilDone()
			if v, _ := mgr.Violations(id); len(v) != 0 {
				b.Fatal("violations in benchmark playback")
			}
		}
		b.StopTimer()
		after := fs.Disk().Stats()
		b.ReportMetric(float64((after.BusyTime()-before.BusyTime()).Milliseconds())/float64(b.N), "disk_busy_ms/op")
		b.ReportMetric(float64(after.Reads-before.Reads)/float64(b.N), "disk_blocks/op")
		// The same work as seen by the observability registry: obs-sourced
		// values must track the raw disk stats, and archiving both lets the
		// CI compare catch a divergence between the two accountings.
		snap1 := fs.Metrics().Snapshot()
		r0, _ := snap0.Counter("mmfs_rounds_total")
		r1, _ := snap1.Counter("mmfs_rounds_total")
		b.ReportMetric(float64(r1-r0)/float64(b.N), "rounds/op")
		b0, _ := snap0.Counter("mmfs_disk_busy_ns_total")
		b1, _ := snap1.Counter("mmfs_disk_busy_ns_total")
		b.ReportMetric(float64(b1-b0)/1e6/float64(b.N), "obs_disk_busy_ms/op")
	})
	b.Run("steady", func(b *testing.B) {
		fs, r := benchFS(b)
		admit := func(b *testing.B) *msm.Manager {
			mgr := fs.NewManager()
			plan, err := fs.Ropes().CompilePlay(fs.Disk(), r, rope.VideoOnly, 0, r.Length(), msm.PlanOptions{ReadAhead: 2})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := mgr.AdmitPlay(plan); err != nil {
				b.Fatal(err)
			}
			// Warm the scratch arenas (block buffer, round scratch,
			// trace ring) so the measured rounds run at steady state.
			for i := 0; i < 4; i++ {
				if !mgr.RunRound() {
					b.Fatal("playback drained during warm-up")
				}
			}
			return mgr
		}
		mgr := admit(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !mgr.RunRound() {
				// The play drained: re-admit off the clock.
				b.StopTimer()
				mgr = admit(b)
				b.StartTimer()
			}
		}
	})
}

// BenchmarkCachedConcurrentPlayback plays one rope four times at once
// (a leader plus three staggered followers), with and without the
// interval cache, and reports how much disk work the cache removes at
// an equal stream count.
func BenchmarkCachedConcurrentPlayback(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mb   int
	}{{"cache", 16}, {"nocache", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			var admitted, diskBlocks, hitPct, obsHitPct float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs, err := core.Format(core.Options{CacheMB: cfg.mb})
				if err != nil {
					b.Fatal(err)
				}
				sess, err := fs.Record(core.RecordSpec{
					Creator: "bench",
					Video:   media.NewVideoSource(300, 18000, 30, 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				fs.Manager().RunUntilDone()
				r, err := sess.Finish()
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				mgr := fs.NewManager()
				before := fs.Disk().Stats()
				var ids []msm.RequestID
				for p := 0; p < 4; p++ {
					plan, err := fs.Ropes().CompilePlay(fs.Disk(), r, rope.VideoOnly, 0, r.Length(), msm.PlanOptions{ReadAhead: 2})
					if err != nil {
						b.Fatal(err)
					}
					id, _, err := mgr.AdmitPlay(plan)
					if err != nil {
						b.Fatal(err)
					}
					ids = append(ids, id)
					mgr.RunFor(400 * time.Millisecond)
				}
				mgr.RunUntilDone()
				for _, id := range ids {
					if v, _ := mgr.Violations(id); len(v) != 0 {
						b.Fatal("violations in cached concurrent playback")
					}
				}
				st := mgr.Stats()
				after := fs.Disk().Stats()
				admitted += float64(len(ids))
				diskBlocks += float64(after.Reads - before.Reads)
				if st.BlocksFetched > 0 {
					hitPct += 100 * float64(st.CacheHits) / float64(st.BlocksFetched)
				}
				// Hit ratio as the observability registry reports it
				// (the fs is fresh per iteration, so the counters cover
				// exactly this iteration's work).
				snap := fs.Metrics().Snapshot()
				oh, _ := snap.Counter("mmfs_round_cache_hits_total")
				of, _ := snap.Counter("mmfs_blocks_fetched_total")
				if of > 0 {
					obsHitPct += 100 * float64(oh) / float64(of)
				}
			}
			n := float64(b.N)
			b.ReportMetric(admitted/n, "n_admitted")
			b.ReportMetric(diskBlocks/n, "disk_blocks")
			b.ReportMetric(hitPct/n, "cache_hit_pct")
			b.ReportMetric(obsHitPct/n, "obs_hit_pct")
		})
	}
}

// BenchmarkEditInsert measures the INSERT operation including
// scattering maintenance and GC.
func BenchmarkEditInsert(b *testing.B) {
	fs, r1 := benchFS(b)
	sess, err := fs.Record(core.RecordSpec{
		Creator: "bench",
		Video:   media.NewVideoSource(60, 18000, 30, 3),
	})
	if err != nil {
		b.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	r2, err := sess.Finish()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Insert("bench", r1.ID, 0, rope.VideoOnly, r2.ID, 0, r2.Length()); err != nil {
			b.Fatal(err)
		}
		// Undo so the rope stays the same size across iterations.
		if _, err := fs.DeleteRange("bench", r1.ID, rope.AudioVisual, 0, r2.Length()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrandWrite measures the recording write path (allocation +
// timed write) per media block.
func BenchmarkStrandWrite(b *testing.B) {
	g := disk.DefaultGeometry()
	d := disk.MustNew(g)
	a, err := alloc.New(g, 64)
	if err != nil {
		b.Fatal(err)
	}
	st := strand.NewStore(d, a)
	payload := media.FramePayload(1, 0, 18000)
	b.SetBytes(18000)
	b.ResetTimer()
	i := 0
	for i < b.N {
		w, err := strand.NewWriter(d, a, strand.WriterConfig{
			ID: st.NewID(), Medium: layout.Video, Rate: 30, UnitBytes: 18000, Granularity: 1,
			Constraint:    alloc.Constraint{MinCylinders: 1, MaxCylinders: 32},
			StartCylinder: (i * 131) % g.Cylinders,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 256 && i < b.N; j++ {
			if _, err := w.Append(media.Unit{Seq: uint64(j), Payload: payload}); err != nil {
				b.Fatal(err)
			}
			i++
		}
		w.Abort() // release space so the disk never fills
	}
}

// BenchmarkWireCodec measures request encode + decode for a PLAY call.
func BenchmarkWireCodec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := wire.NewEncoder().Str("user").U64(7).U16(1).I64(0).I64(5e9).U32(2)
		body := wire.Request(wire.OpPlay, e.Bytes())
		op, payload, err := wire.ParseRequest(body)
		if err != nil || op != wire.OpPlay {
			b.Fatal("parse")
		}
		d := wire.NewDecoder(payload)
		_ = d.Str()
		_ = d.U64()
		_ = d.U16()
		_ = d.I64()
		_ = d.I64()
		_ = d.U32()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

// BenchmarkVBRCompression regenerates the §6.2 variable-rate
// compression extension (EXP-VBR).
func BenchmarkVBRCompression(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.VBR()
	}
	for _, row := range res.Rows {
		if row[0] == "storage gain" {
			b.ReportMetric(cellFloat(b, strings.TrimSuffix(row[2], "×")), "storage_gain_x")
		}
	}
}

// BenchmarkScanOrdering regenerates the §6.2 seek-ordered servicing
// ablation (EXP-SCAN).
func BenchmarkScanOrdering(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Scan()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][3]), "seek_ms_zigzag")
	b.ReportMetric(cellFloat(b, res.Rows[2][3]), "seek_ms_cscan")
}

// BenchmarkReorganization regenerates the §6.2 storage reorganization
// scenario (EXP-REORG).
func BenchmarkReorganization(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Reorg()
	}
	b.ReportMetric(cellFloat(b, res.Rows[0][3]), "blocks_before")
	b.ReportMetric(cellFloat(b, res.Rows[1][3]), "blocks_after")
}

// BenchmarkIntegrityCheck measures the full fsck pass over a populated
// file system.
func BenchmarkIntegrityCheck(b *testing.B) {
	fs, _ := benchFS(b)
	if err := fs.Sync(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if problems := fs.Check(); len(problems) != 0 {
			b.Fatalf("fsck: %v", problems)
		}
	}
}

// --- Striped-array benchmarks --------------------------------------

// stripedBench builds a p-spindle array rig with stripe-group-aligned
// video strands: per spindle, `per` strands of `frames` frames, each
// starting `gap` spindle-local cylinders after the previous.
type stripedBench struct {
	arr *disk.Array
	a   *alloc.Allocator
	dev continuity.Device
	p   int
}

func newStripedBench(b *testing.B, g disk.Geometry, p, stripe int) *stripedBench {
	b.Helper()
	devs := make([]disk.Device, p)
	for i := range devs {
		devs[i] = disk.MustNew(g)
	}
	arr, err := disk.NewArray(devs, stripe)
	if err != nil {
		b.Fatal(err)
	}
	a, err := alloc.New(arr.Geometry(), 64)
	if err != nil {
		b.Fatal(err)
	}
	lg := arr.Geometry()
	return &stripedBench{
		arr: arr, a: a, p: p,
		dev: continuity.Device{
			TransferRate: lg.TransferRateBits(),
			MaxAccess:    continuity.Seconds(lg.MaxAccessTime()),
			MinAccess:    continuity.Seconds(lg.MinAccessTime()),
		},
	}
}

// newMirroredBench is newStripedBench over a mirrored array: p/2
// redundancy pairs, logical capacity halved, whole-spindle loss
// survivable.
func newMirroredBench(b *testing.B, g disk.Geometry, p, stripe int) *stripedBench {
	b.Helper()
	devs := make([]disk.Device, p)
	for i := range devs {
		devs[i] = disk.MustNew(g)
	}
	arr, err := disk.NewMirroredArray(devs, stripe)
	if err != nil {
		b.Fatal(err)
	}
	a, err := alloc.New(arr.Geometry(), 64)
	if err != nil {
		b.Fatal(err)
	}
	lg := arr.Geometry()
	return &stripedBench{
		arr: arr, a: a, p: p,
		dev: continuity.Device{
			TransferRate: lg.TransferRateBits(),
			MaxAccess:    continuity.Seconds(lg.MaxAccessTime()),
			MinAccess:    continuity.Seconds(lg.MinAccessTime()),
		},
	}
}

// record writes one strand onto the given spindle starting at the given
// spindle-local cylinder of a stripe-group (stripe cylinders wide).
func (sb *stripedBench) record(b *testing.B, cfg strand.WriterConfig, spindle, localCyl, stripe, units int, payload int) *strand.Strand {
	b.Helper()
	cfg.StartCylinder = (localCyl/stripe*sb.p+spindle)*stripe + localCyl%stripe
	return sb.write(b, cfg, units, payload, int64(1000*spindle+localCyl))
}

// recordMirrored writes one strand into the within'th stripe group
// whose balanced steering prefers the given spindle of a mirrored
// array: pair spindle/2, slot spindle%2 + 2*within.
func (sb *stripedBench) recordMirrored(b *testing.B, cfg strand.WriterConfig, spindle, within, units, payload int) *strand.Strand {
	b.Helper()
	group := (spindle%2+2*within)*sb.arr.MirrorGroups() + spindle/2
	cfg.StartCylinder = group * sb.arr.StripeCylinders()
	return sb.write(b, cfg, units, payload, int64(1000*spindle+within))
}

// write appends units payload-byte units to a fresh strand at
// cfg.StartCylinder.
func (sb *stripedBench) write(b *testing.B, cfg strand.WriterConfig, units, payload int, seed int64) *strand.Strand {
	b.Helper()
	w, err := strand.NewWriter(sb.arr, sb.a, cfg)
	if err != nil {
		b.Fatal(err)
	}
	src := media.NewVideoSource(units, payload, cfg.Rate, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			b.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStripedRound saturates a 4-spindle striped array with the
// per-spindle n_max on every spindle — 4× the single-disk admissible
// population — and plays the whole set to completion per op. The
// scaling_x metric (admitted / single-spindle n_max) is the headline:
// the committed baseline gates it at 4.0, and the benchmark itself
// fails below 3.6× (the 10%-of-ideal floor).
func BenchmarkStripedRound(b *testing.B) {
	const p, stripe = 4, 120
	sb := newStripedBench(b, disk.DefaultGeometry(), p, stripe)
	adm := continuity.AdmissionFor(sb.dev)
	scattering := continuity.Seconds(sb.arr.Geometry().AccessTime(32))
	nmax := adm.NMax(continuity.Request{
		Name: "video", Granularity: 3, UnitBits: 18000 * 8, Rate: 30,
		Scattering: scattering,
	})
	total := p * nmax
	cfg := strand.WriterConfig{
		Medium: layout.Video, Rate: 30, UnitBytes: 18000, Granularity: 3,
		Constraint: alloc.Constraint{MinCylinders: 1, MaxCylinders: 32},
	}
	plans := make([]msm.PlayPlan, total)
	for j := range plans {
		cfg.ID = strand.ID(j + 1)
		s := sb.record(b, cfg, j%p, (j/p)*stripe, stripe, 300, 18000)
		plan, err := msm.PlanStrandPlay(sb.arr, s, msm.PlanOptions{
			ReadAhead: 1, Buffers: 16, Scattering: scattering,
		})
		if err != nil {
			b.Fatal(err)
		}
		plans[j] = plan
	}
	before := sb.arr.Stats()
	var admitted, violations, rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr := msm.New(sb.arr, adm)
		ids := make([]msm.RequestID, 0, total)
		for _, plan := range plans {
			id, _, err := mgr.AdmitPlay(plan)
			if err != nil {
				b.Fatalf("admission lost capacity at n=%d: %v", len(ids), err)
			}
			ids = append(ids, id)
		}
		mgr.RunUntilDone()
		admitted += float64(len(ids))
		for _, id := range ids {
			v, err := mgr.Violations(id)
			if err != nil {
				b.Fatal(err)
			}
			violations += float64(len(v))
		}
		rounds += float64(mgr.Stats().Rounds)
	}
	b.StopTimer()
	after := sb.arr.Stats()
	n := float64(b.N)
	scaling := admitted / n / float64(nmax)
	b.ReportMetric(float64(nmax), "nmax_single")
	b.ReportMetric(admitted/n, "n_admitted")
	b.ReportMetric(scaling, "scaling_x")
	b.ReportMetric(violations/n, "viol")
	b.ReportMetric(rounds/n, "rounds/op")
	b.ReportMetric(float64(after.Reads-before.Reads)/n, "disk_blocks/op")
	if scaling < 3.6 {
		b.Fatalf("aggregate admission scaled only %.2f× the single-disk n_max (want ≥ 3.6×)", scaling)
	}
	if violations != 0 {
		b.Fatalf("%v continuity violations at p·n_max", violations)
	}
}

// BenchmarkRound1000Streams times single service rounds with 1000
// concurrently admitted streams on a 4-spindle array — 250 per spindle,
// a population far past any single disk — using a scaled-down geometry
// (fast spindles, 2 KB blocks at 1 unit/s) so the per-spindle Eq. 18
// admits the load with k=3. Like BenchmarkPlaybackRound/steady, the
// measured rounds run on a warmed manager and the allocs/op figure is
// the CI-gated invariant: the parallel sub-round fan-out must not
// allocate in steady state. The -race CI subset runs this benchmark
// once to exercise the lane goroutines under the race detector.
func BenchmarkRound1000Streams(b *testing.B) {
	const (
		p, stripe = 4, 500
		perSp     = 250
		units     = 240 // 240 one-sector blocks ≈ 8 local cylinders
	)
	g := disk.Geometry{
		Cylinders: 2000, Surfaces: 1, SectorsPerTrack: 32, SectorSize: 2048,
		RPM: 36000, MinSeek: 200 * time.Microsecond, MaxSeek: 5 * time.Millisecond, Heads: 1,
	}
	sb := newStripedBench(b, g, p, stripe)
	adm := continuity.AdmissionFor(sb.dev)
	scattering := continuity.Seconds(sb.arr.Geometry().AccessTime(1))
	tmpl := continuity.Request{
		Name: "lite", Granularity: 1, UnitBits: 2048 * 8, Rate: 1,
		Scattering: scattering,
	}
	reqs := make([]continuity.Request, perSp)
	for i := range reqs {
		reqs[i] = tmpl
	}
	k, ok := adm.KTransient(reqs)
	if !ok {
		b.Fatalf("no feasible k for %d streams per spindle", perSp)
	}
	// One contiguous strand per spindle; each is played 250 times over
	// (the plays are independent streams to admission and servicing —
	// no interval cache is attached, so nothing is deduplicated).
	plans := make([]msm.PlayPlan, 0, p*perSp)
	for sp := 0; sp < p; sp++ {
		s := sb.record(b, strand.WriterConfig{
			ID: strand.ID(sp + 1), Medium: layout.Video, Rate: 1,
			UnitBytes: 2048, Granularity: 1,
			Constraint: alloc.Constraint{MaxCylinders: 1}, // contiguous: minimal l_ds
		}, sp, 0, stripe, units, 2048)
		plan, err := msm.PlanStrandPlay(sb.arr, s, msm.PlanOptions{
			ReadAhead: k, Buffers: 2 * k, Scattering: scattering,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < perSp; i++ {
			plans = append(plans, plan)
		}
	}
	admit := func(b *testing.B) *msm.Manager {
		mgr := msm.New(sb.arr, adm)
		// Forced k with no stepwise transitions: the full population is
		// admitted at virtual time zero so warmed rounds run at the
		// steady-state operating point.
		mgr.SetPolicy(msm.NaiveJump)
		mgr.ForceK(k)
		for i, plan := range plans {
			if _, _, err := mgr.AdmitPlay(plan); err != nil {
				b.Fatalf("stream %d: %v", i, err)
			}
			mgr.ForceK(k)
		}
		for i := 0; i < 4; i++ {
			if !mgr.RunRound() {
				b.Fatal("population drained during warm-up")
			}
		}
		return mgr
	}
	mgr := admit(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !mgr.RunRound() {
			b.StopTimer()
			mgr = admit(b)
			b.StartTimer()
		}
	}
	b.StopTimer()
	st := mgr.Stats()
	b.ReportMetric(float64(len(plans)), "streams")
	b.ReportMetric(float64(k), "k")
	b.ReportMetric(float64(st.BlocksFetched)/float64(st.Rounds), "blocks/round")
	if st.Violations != 0 {
		b.Fatalf("%d continuity violations", st.Violations)
	}
}

// BenchmarkQoSClassPass times steady service rounds with the QoS
// class pass enabled and a population that keeps it working: the
// round depth is forced to the tightest k at which the standard-class
// streams fit only if the best-effort riders run degraded, so the
// first class pass sheds the riders and every later round's promotion
// pass re-sorts the population and re-probes their strides against a
// still-full Eq. 18 budget — the most expensive steady-state shape the
// pass has. Like the other steady-round benchmarks the allocs/op
// figure is the CI-gated invariant: the class pass must run off the
// manager's scratch arenas.
func BenchmarkQoSClassPass(b *testing.B) {
	const (
		p, stripe = 4, 500
		units     = 1920 // 240 16 KB blocks ≈ 60 local cylinders
		nBE       = 2    // best-effort riders per spindle
		kTight    = 3    // the BenchmarkRound1000Streams operating depth
	)
	g := disk.Geometry{
		Cylinders: 2000, Surfaces: 1, SectorsPerTrack: 32, SectorSize: 2048,
		RPM: 36000, MinSeek: 200 * time.Microsecond, MaxSeek: 5 * time.Millisecond, Heads: 1,
	}
	sb := newStripedBench(b, g, p, stripe)
	adm := continuity.AdmissionFor(sb.dev)
	scattering := continuity.Seconds(sb.arr.Geometry().AccessTime(1))
	// Unlike BenchmarkRound1000Streams' seek-dominated 2 KB/1 Hz
	// streams, these are transfer-dominated (16 KB blocks at 16
	// units/s): sub-sampling a stream then frees real Eq. 18 capacity,
	// which is what gives the class pass a shedding operating point.
	tmpl := continuity.Request{
		Name: "lite", Granularity: 8, UnitBits: 2048 * 8, Rate: 16,
		Scattering: scattering,
	}
	// feasible probes one spindle's Eq. 18 set: n full-rate streams
	// plus nBE riders at the given stride (0 = riders absent).
	feasible := func(n, k, beStride int) bool {
		set := make([]continuity.Request, 0, n+nBE)
		for i := 0; i < n; i++ {
			set = append(set, tmpl)
		}
		if beStride > 0 {
			for i := 0; i < nBE; i++ {
				set = append(set, continuity.Degraded(tmpl, beStride))
			}
		}
		return adm.FeasibleTransient(set, k)
	}
	// Fill the spindle: nStd is one below the largest full-rate
	// population Eq. 18 takes at kTight, so the slack left fits the two
	// riders only sub-sampled — full rate would need nStd+2 > max — and
	// the warm-up class pass must shed them.
	nStd := 1
	for feasible(nStd+2, kTight, 0) {
		nStd++
	}
	if feasible(nStd, kTight, 1) || !feasible(nStd, kTight, continuity.DefaultMaxStride) {
		b.Fatalf("no shedding operating point at k=%d, n=%d", kTight, nStd)
	}
	plans := make([]msm.PlayPlan, 0, p*(nStd+nBE))
	for sp := 0; sp < p; sp++ {
		s := sb.record(b, strand.WriterConfig{
			ID: strand.ID(sp + 1), Medium: layout.Video, Rate: 16,
			UnitBytes: 2048, Granularity: 8,
			Constraint: alloc.Constraint{MaxCylinders: 1}, // contiguous: minimal l_ds
		}, sp, 0, stripe, units, 2048)
		for i := 0; i < nStd+nBE; i++ {
			class := continuity.Standard
			if i >= nStd {
				class = continuity.BestEffort
			}
			plan, err := msm.PlanStrandPlay(sb.arr, s, msm.PlanOptions{
				ReadAhead: kTight, Buffers: 2 * kTight, Scattering: scattering,
				Class: class,
			})
			if err != nil {
				b.Fatal(err)
			}
			plans = append(plans, plan)
		}
	}
	admit := func(b *testing.B) *msm.Manager {
		mgr := msm.New(sb.arr, adm)
		mgr.SetPolicy(msm.NaiveJump)
		mgr.SetQoS(msm.QoSPolicy{MaxStride: continuity.DefaultMaxStride})
		for i, plan := range plans {
			if _, _, err := mgr.AdmitPlay(plan); err != nil {
				b.Fatalf("stream %d (class %v): %v", i, plan.Class, err)
			}
		}
		mgr.ForceK(kTight)
		for i := 0; i < 4; i++ {
			if !mgr.RunRound() {
				b.Fatal("population drained during warm-up")
			}
		}
		if mgr.QoSStats()[continuity.BestEffort].Degraded == 0 {
			b.Fatal("no best-effort stream degraded at k_tight: the class pass has nothing to probe")
		}
		return mgr
	}
	mgr := admit(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !mgr.RunRound() {
			b.StopTimer()
			mgr = admit(b)
			b.StartTimer()
		}
	}
	b.StopTimer()
	st := mgr.Stats()
	b.ReportMetric(float64(len(plans)), "streams")
	b.ReportMetric(float64(kTight), "k")
	b.ReportMetric(float64(st.LoadDemotions), "demotions")
	b.ReportMetric(float64(st.Promotions), "promotions")
	// Shedding is the only violation this population may record: every
	// entry must be a CauseLoadShed from the warm-up demotions, never a
	// missed deadline.
	if st.Violations != st.LoadDemotions {
		b.Fatalf("%d violations vs %d load demotions: deadline misses in a feasible QoS set",
			st.Violations, st.LoadDemotions)
	}
}

// BenchmarkRebuildRound times steady service rounds while an online
// rebuild is in flight: a 4-spindle mirrored array carries 200 live
// streams on its healthy pair while the repair engine copies a dead
// spindle's cylinders from the twin in each round's leftover slack
// (rate-capped at 1 chunk/round so the rebuild spans many rounds).
// Like the other steady-round benchmarks the allocs/op figure is the
// CI-gated invariant: the repair step must run off the chunk buffer
// StartRebuild sized up front, and a rebuild-active round must not
// allocate. When a rebuild completes mid-measurement the spindle is
// re-killed and a fresh rebuild started off-timer.
func BenchmarkRebuildRound(b *testing.B) {
	const (
		p, stripe = 4, 500
		perSp     = 100 // streams per healthy-pair spindle
		units     = 240 // 240 one-sector blocks ≈ 8 local cylinders
		srcUnits  = 960 // rebuild source on pair 0: ≈ 30 spindle cylinders
		victim    = 1
	)
	g := disk.Geometry{
		Cylinders: 2000, Surfaces: 1, SectorsPerTrack: 32, SectorSize: 2048,
		RPM: 36000, MinSeek: 200 * time.Microsecond, MaxSeek: 5 * time.Millisecond, Heads: 1,
	}
	sb := newMirroredBench(b, g, p, stripe)
	adm := continuity.AdmissionFor(sb.dev)
	scattering := continuity.Seconds(sb.arr.Geometry().AccessTime(1))
	tmpl := continuity.Request{
		Name: "lite", Granularity: 1, UnitBits: 2048 * 8, Rate: 1,
		Scattering: scattering,
	}
	reqs := make([]continuity.Request, perSp)
	for i := range reqs {
		reqs[i] = tmpl
	}
	k, ok := adm.KTransient(reqs)
	if !ok {
		b.Fatalf("no feasible k for %d streams per spindle", perSp)
	}
	// The rebuild source: 30 cylinders of data on pair 0, played by
	// just nSrc streams. The bulk stream load rides on the healthy
	// pair 1, so killing, rebuilding, and re-killing spindle 1 never
	// changes the admission picture the mid-measurement re-populations
	// run against — while the nSrc twin-lane streams keep lane 0's
	// Eq. 18 retry slack positive, which is the budget the repair step
	// charges its copies against (an idle lane has zero slack and
	// would starve the rebuild).
	src := sb.recordMirrored(b, strand.WriterConfig{
		ID: strand.ID(99), Medium: layout.Video, Rate: 1,
		UnitBytes: 2048, Granularity: 1,
		Constraint: alloc.Constraint{MaxCylinders: 1},
	}, 0, 0, srcUnits, 2048)
	srcPlan, err := msm.PlanStrandPlay(sb.arr, src, msm.PlanOptions{
		ReadAhead: k, Buffers: 2 * k, Scattering: scattering,
	})
	if err != nil {
		b.Fatal(err)
	}
	const nSrc = 2
	plans := make([]msm.PlayPlan, 0, 2*perSp+nSrc)
	for i := 0; i < nSrc; i++ {
		plans = append(plans, srcPlan)
	}
	for sp := 2; sp < p; sp++ {
		s := sb.recordMirrored(b, strand.WriterConfig{
			ID: strand.ID(sp + 1), Medium: layout.Video, Rate: 1,
			UnitBytes: 2048, Granularity: 1,
			Constraint: alloc.Constraint{MaxCylinders: 1},
		}, sp, 0, units, 2048)
		plan, err := msm.PlanStrandPlay(sb.arr, s, msm.PlanOptions{
			ReadAhead: k, Buffers: 2 * k, Scattering: scattering,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < perSp; i++ {
			plans = append(plans, plan)
		}
	}
	mgr := msm.New(sb.arr, adm)
	mgr.SetRebuildRate(1)
	populate := func(b *testing.B) {
		mgr.SetPolicy(msm.NaiveJump)
		mgr.ForceK(k)
		for i, plan := range plans {
			if _, _, err := mgr.AdmitPlay(plan); err != nil {
				b.Fatalf("stream %d: %v", i, err)
			}
			mgr.ForceK(k)
		}
	}
	// warm absorbs the one-off work of the latest transition (admission
	// arenas, the resteer renegotiation after a kill) off-timer.
	warm := func(b *testing.B, n int) {
		for i := 0; i < n; i++ {
			if !mgr.RunRound() {
				populate(b)
			}
		}
	}
	// kill replaces the victim with a factory-fresh disk and starts the
	// online rebuild, like Manager.Rebuild — but it pre-materializes
	// the replacement's cylinder pages first: a simulated disk's
	// backing page allocates once on first write (see disk.page's
	// allocpath pragma), and the gated invariant is the service
	// round's own zero-alloc hot path, not the simulator's lazy
	// backing store.
	zeros := make([]byte, sb.arr.RepairBufferSectors()*g.SectorSize)
	mat := sb.arr.Spindle(sb.arr.Twin(victim)).(interface{ CylinderMaterialized(int) bool })
	spc := g.SectorsPerCylinder()
	kill := func(b *testing.B) {
		sb.arr.SetSpindleState(victim, disk.Dead)
		fresh := disk.MustNew(g)
		for c := 0; c < g.Cylinders; c++ {
			if mat.CylinderMaterialized(c) {
				if err := fresh.WriteAt(c*spc, zeros); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := sb.arr.ReplaceSpindle(victim, fresh); err != nil {
			b.Fatal(err)
		}
		if err := mgr.StartRebuild(victim); err != nil {
			b.Fatal(err)
		}
	}
	populate(b)
	warm(b, 4)
	kill(b)
	warm(b, 2)
	rebuilds := 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !mgr.RepairActive() {
			b.StopTimer()
			rebuilds++
			kill(b)
			warm(b, 1)
			b.StartTimer()
		}
		if !mgr.RunRound() {
			b.StopTimer()
			populate(b)
			b.StartTimer()
		}
	}
	b.StopTimer()
	st := mgr.Stats()
	if st.RebuildBlocks == 0 {
		b.Fatal("no repair chunks copied: the measured rounds were not rebuild-active")
	}
	b.ReportMetric(float64(len(plans)), "streams")
	b.ReportMetric(float64(k), "k")
	b.ReportMetric(float64(st.RebuildBlocks)/float64(st.Rounds), "chunks/round")
	b.ReportMetric(float64(rebuilds), "rebuilds")
	if st.Violations != 0 {
		b.Fatalf("%d continuity violations during online rebuild", st.Violations)
	}
}
