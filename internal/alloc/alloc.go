package alloc

import (
	"errors"
	"fmt"
	"time"

	"mmfs/internal/disk"
)

// ErrNoSpace reports that no placement satisfying the request exists.
// For constrained allocations this may mean the disk needs
// reorganization (§6.2 of the paper) rather than being full.
var ErrNoSpace = errors.New("alloc: no placement satisfies the request")

// Run is a contiguous extent of sectors.
type Run struct {
	LBA     int
	Sectors int
}

// End is the first sector past the run.
func (r Run) End() int { return r.LBA + r.Sectors }

// Stats counts allocator activity.
type Stats struct {
	Allocs            uint64
	Frees             uint64
	ConstrainedAllocs uint64
	ConstrainedFails  uint64
	SectorsAllocated  uint64
	SectorsFreed      uint64
}

// Allocator manages sector occupancy for one disk and implements both
// unconstrained (first-fit) allocation for metadata and text files and
// constrained allocation for media blocks, where the cylinder distance
// between successive blocks of a strand must fall within the bounds
// derived from the scattering parameter.
//
// Allocator is not safe for concurrent use; the storage manager
// serializes access.
type Allocator struct {
	geom  disk.Geometry
	bm    *bitmap
	stats Stats
}

// New creates an allocator for the geometry with the first reserved
// sectors (metadata region) pre-allocated.
func New(g disk.Geometry, reserved int) (*Allocator, error) {
	total := g.TotalSectors()
	if reserved < 0 || reserved > total {
		return nil, fmt.Errorf("alloc: reserved %d outside [0,%d]", reserved, total)
	}
	a := &Allocator{geom: g, bm: newBitmap(total)}
	if reserved > 0 {
		a.bm.setRange(0, reserved)
	}
	return a, nil
}

// Geometry returns the geometry the allocator was built for.
func (a *Allocator) Geometry() disk.Geometry { return a.geom }

// Stats returns a snapshot of the counters.
func (a *Allocator) Stats() Stats { return a.stats }

// TotalSectors is the managed capacity in sectors.
func (a *Allocator) TotalSectors() int { return a.bm.n }

// FreeSectors is the number of unallocated sectors.
func (a *Allocator) FreeSectors() int { return a.bm.n - a.bm.used }

// Occupancy is the allocated fraction of the disk in [0,1]. The
// editing copy bounds switch from Eq. 19 to Eq. 20 as this approaches
// one.
func (a *Allocator) Occupancy() float64 {
	return float64(a.bm.used) / float64(a.bm.n)
}

// Allocate finds a free contiguous run of n sectors anywhere on the
// disk (first fit), for index blocks, superblocks, and text files —
// which thereby land in the gaps constrained media allocation leaves.
func (a *Allocator) Allocate(n int) (Run, error) {
	if n < 1 {
		return Run{}, fmt.Errorf("alloc: allocate %d sectors", n)
	}
	lo := a.bm.findRun(0, a.bm.n, n)
	if lo < 0 {
		return Run{}, fmt.Errorf("%w: %d contiguous sectors", ErrNoSpace, n)
	}
	a.bm.setRange(lo, n)
	a.stats.Allocs++
	a.stats.SectorsAllocated += uint64(n)
	return Run{LBA: lo, Sectors: n}, nil
}

// AllocateAt claims a specific run, failing if any sector is taken.
// Format-time layout and tests use it.
func (a *Allocator) AllocateAt(lba, n int) (Run, error) {
	if !a.bm.freeRunAt(lba, n) {
		return Run{}, fmt.Errorf("%w: [%d,%d) not free", ErrNoSpace, lba, lba+n)
	}
	a.bm.setRange(lba, n)
	a.stats.Allocs++
	a.stats.SectorsAllocated += uint64(n)
	return Run{LBA: lba, Sectors: n}, nil
}

// Free releases a run.
func (a *Allocator) Free(r Run) {
	a.bm.clearRange(r.LBA, r.Sectors)
	a.stats.Frees++
	a.stats.SectorsFreed += uint64(r.Sectors)
}

// Constraint bounds the placement of the next block of a strand
// relative to the previous one, in cylinders of actuator travel. It is
// the spatial image of the scattering parameter's time bounds
// [l_lower, l_upper] under the disk's seek model.
type Constraint struct {
	// MinCylinders is the smallest allowed cylinder distance (from
	// the lower scattering bound that the editing algorithm needs).
	MinCylinders int
	// MaxCylinders is the largest allowed cylinder distance (from
	// the continuity equations' upper bound).
	MaxCylinders int
}

// ConstraintFromScattering converts time-valued scattering bounds to a
// cylinder-distance constraint using the geometry's seek model.
// lUpper must admit at least the minimum access; lLower below it
// clamps to distance 1 (blocks of one strand never share a cylinder,
// so each inter-block access pays at least one seek).
func ConstraintFromScattering(g disk.Geometry, lLower, lUpper time.Duration) (Constraint, error) {
	maxD := g.MaxDistanceWithin(lUpper)
	if maxD < 1 {
		return Constraint{}, fmt.Errorf("alloc: scattering upper bound %v below minimum access time %v", lUpper, g.MinAccessTime())
	}
	minD := 1
	if lLower > g.MinAccessTime() {
		d := g.MaxDistanceWithin(lLower)
		// The smallest distance whose access time is ≥ lLower.
		if d >= 1 && g.AccessTime(d) < lLower {
			d++
		}
		if d < 1 {
			d = 1
		}
		minD = d
	}
	if minD > maxD {
		return Constraint{}, fmt.Errorf("alloc: scattering bounds invert: min distance %d > max distance %d", minD, maxD)
	}
	return Constraint{MinCylinders: minD, MaxCylinders: maxD}, nil
}

// AllocateConstrained places a media block of n sectors whose cylinder
// distance from the cylinder of prev (the strand's previous block)
// falls within c. Forward placement (ascending cylinders) is preferred
// at the smallest admissible distance — keeping the strand sweeping in
// one direction and leaving maximal gaps — falling back to backward
// placement, then to larger distances, before failing with ErrNoSpace.
func (a *Allocator) AllocateConstrained(prev Run, n int, c Constraint) (Run, error) {
	if n < 1 {
		return Run{}, fmt.Errorf("alloc: allocate %d sectors", n)
	}
	if c.MinCylinders < 0 || c.MaxCylinders < c.MinCylinders {
		return Run{}, fmt.Errorf("alloc: bad constraint %+v", c)
	}
	prevCyl := a.geom.CylinderOf(prev.LBA)
	a.stats.ConstrainedAllocs++
	for dist := c.MinCylinders; dist <= c.MaxCylinders; dist++ {
		for _, cyl := range []int{prevCyl + dist, prevCyl - dist} {
			if cyl < 0 || cyl >= a.geom.Cylinders {
				continue
			}
			if lo := a.findRunInCylinder(cyl, n); lo >= 0 {
				a.bm.setRange(lo, n)
				a.stats.Allocs++
				a.stats.SectorsAllocated += uint64(n)
				return Run{LBA: lo, Sectors: n}, nil
			}
			if dist == 0 {
				break // +0 and −0 are the same cylinder
			}
		}
	}
	a.stats.ConstrainedFails++
	return Run{}, fmt.Errorf("%w: %d sectors within %d..%d cylinders of cylinder %d",
		ErrNoSpace, n, c.MinCylinders, c.MaxCylinders, prevCyl)
}

// findRunInCylinder finds a free run of n sectors starting within the
// cylinder (it may spill into following cylinders when a block is
// larger than a cylinder), or -1.
func (a *Allocator) findRunInCylinder(cyl, n int) int {
	spc := a.geom.SectorsPerCylinder()
	lo := cyl * spc
	hi := lo + spc + n - 1 // allow a run starting in-cylinder to spill over
	if hi > a.bm.n {
		hi = a.bm.n
	}
	start := a.bm.findRun(lo, hi, n)
	if start < 0 || start >= lo+spc {
		return -1
	}
	return start
}

// AllocateNearCylinder places a run of n sectors as close as possible
// to the target cylinder, searching outward. The first block of a
// strand and redistribution copies during editing use it.
func (a *Allocator) AllocateNearCylinder(target, n int) (Run, error) {
	if n < 1 {
		return Run{}, fmt.Errorf("alloc: allocate %d sectors", n)
	}
	for dist := 0; dist < a.geom.Cylinders; dist++ {
		for _, cyl := range []int{target + dist, target - dist} {
			if cyl < 0 || cyl >= a.geom.Cylinders {
				continue
			}
			if lo := a.findRunInCylinder(cyl, n); lo >= 0 {
				a.bm.setRange(lo, n)
				a.stats.Allocs++
				a.stats.SectorsAllocated += uint64(n)
				return Run{LBA: lo, Sectors: n}, nil
			}
			if dist == 0 {
				break
			}
		}
	}
	return Run{}, fmt.Errorf("%w: %d sectors near cylinder %d", ErrNoSpace, n, target)
}

// MarshalBitmap serializes the occupancy bitmap for persistence in the
// metadata region.
func (a *Allocator) MarshalBitmap() []byte { return a.bm.marshal() }

// UnmarshalBitmap restores the occupancy bitmap.
func (a *Allocator) UnmarshalBitmap(data []byte) error { return a.bm.unmarshal(data) }

// InUse reports whether the sector is allocated; tests and the
// integrity checker use it.
func (a *Allocator) InUse(sector int) bool { return a.bm.get(sector) }
