package alloc

// Scratch helpers: the sanctioned way for rt:hotpath code (see
// DESIGN.md "Real-time path discipline") to grow or refill reusable
// buffers. The allocpath analyzer treats calls into this package as
// escapes from its no-allocation rule — the contract being that every
// helper here reuses the caller's backing array when capacity allows,
// so a steady-state service round settles to zero allocations after
// its first few laps warm the scratch slices up to capacity.

// Append appends one element, reusing s's backing array when it has
// room. It takes a single value rather than being variadic: a variadic
// signature would materialize an argument slice at every call site,
// which is exactly the garbage this package exists to avoid.
func Append[T any](s []T, v T) []T {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
		s[len(s)-1] = v
		return s
	}
	//lint:ignore allocpath scratch arena growth: amortized to zero once warm
	return append(s, v)
}

// Grow returns a slice of length n, reusing s's backing array when
// cap(s) >= n. Contents are unspecified; use Zeroed when the caller
// needs cleared elements.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	//lint:ignore allocpath scratch arena growth: amortized to zero once warm
	return make([]T, n)
}

// Zeroed returns a slice of length n with every element set to the
// zero value, reusing s's backing array when capacity allows.
func Zeroed[T any](s []T, n int) []T {
	s = Grow(s, n)
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// AppendBytes appends src to dst, reusing dst's backing array when it
// has room. It is the hot-path replacement for growing variadic
// append(dst, src...) spreads.
func AppendBytes(dst, src []byte) []byte {
	if len(dst)+len(src) <= cap(dst) {
		n := len(dst)
		dst = dst[:n+len(src)]
		copy(dst[n:], src)
		return dst
	}
	//lint:ignore allocpath scratch arena growth: amortized to zero once warm
	return append(dst, src...)
}

// CopyBytes copies src into dst's backing array (growing it only when
// needed) and returns the filled slice. It is the hot-path replacement
// for append([]byte(nil), src...)-style defensive copies.
func CopyBytes(dst, src []byte) []byte {
	dst = Grow(dst, len(src))
	copy(dst, src)
	return dst
}
