// Package alloc implements constrained block allocation (§3 of Rangan
// & Vin): media blocks of a strand are placed so that the access time
// between successive blocks stays within the strand's scattering
// bounds, while the gaps between them remain available for other
// strands and for conventional text files ("a common file server can …
// integrate the functions of both a conventional text file server and
// a multimedia file server by … using the gaps between successive
// blocks of a media strand to store text files").
package alloc

import "fmt"

// bitmap tracks sector occupancy; a set bit means allocated.
type bitmap struct {
	words []uint64
	n     int // number of valid bits
	used  int // number of set bits
}

func newBitmap(n int) *bitmap {
	return &bitmap{words: make([]uint64, (n+63)/64), n: n}
}

func (b *bitmap) get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (b *bitmap) set(i int) {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.used++
	}
}

func (b *bitmap) clear(i int) {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.used--
	}
}

// setRange marks [lo, lo+n) allocated; it panics if any bit is already
// set, catching double allocation early.
func (b *bitmap) setRange(lo, n int) {
	for i := lo; i < lo+n; i++ {
		if b.get(i) {
			panic(fmt.Sprintf("alloc: double allocation of sector %d", i))
		}
		b.set(i)
	}
}

// clearRange marks [lo, lo+n) free; freeing a free sector panics,
// catching double frees.
func (b *bitmap) clearRange(lo, n int) {
	for i := lo; i < lo+n; i++ {
		if !b.get(i) {
			panic(fmt.Sprintf("alloc: double free of sector %d", i))
		}
		b.clear(i)
	}
}

// freeRunAt reports whether [lo, lo+n) is entirely free and in range.
func (b *bitmap) freeRunAt(lo, n int) bool {
	if lo < 0 || lo+n > b.n {
		return false
	}
	for i := lo; i < lo+n; i++ {
		if b.get(i) {
			return false
		}
	}
	return true
}

// findRun returns the first index of a free run of length n within
// [lo, hi), or -1.
func (b *bitmap) findRun(lo, hi, n int) int {
	if hi > b.n {
		hi = b.n
	}
	run := 0
	for i := lo; i < hi; i++ {
		if b.get(i) {
			run = 0
			continue
		}
		run++
		if run == n {
			return i - n + 1
		}
	}
	return -1
}

// marshal serializes the bitmap's words as little-endian bytes.
func (b *bitmap) marshal() []byte {
	out := make([]byte, len(b.words)*8)
	for i, w := range b.words {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return out
}

// unmarshal restores the bitmap from marshal's output, recounting the
// used bits.
func (b *bitmap) unmarshal(data []byte) error {
	if len(data) < len(b.words)*8 {
		return fmt.Errorf("alloc: bitmap data %d bytes, need %d", len(data), len(b.words)*8)
	}
	b.used = 0
	for i := range b.words {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(data[i*8+j]) << (8 * j)
		}
		b.words[i] = w
	}
	for i := 0; i < b.n; i++ {
		if b.get(i) {
			b.used++
		}
	}
	return nil
}
