package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mmfs/internal/disk"
)

func testGeometry() disk.Geometry {
	return disk.Geometry{
		Cylinders:       100,
		Surfaces:        2,
		SectorsPerTrack: 16,
		SectorSize:      512,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         30 * time.Millisecond,
	}
}

func newAlloc(t *testing.T, reserved int) *Allocator {
	t.Helper()
	a, err := New(testGeometry(), reserved)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestReservedRegion(t *testing.T) {
	a := newAlloc(t, 10)
	for i := 0; i < 10; i++ {
		if !a.InUse(i) {
			t.Fatalf("reserved sector %d free", i)
		}
	}
	r, err := a.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.LBA < 10 {
		t.Fatalf("allocation at %d intrudes on reserved region", r.LBA)
	}
}

func TestAllocateFreeCycle(t *testing.T) {
	a := newAlloc(t, 0)
	total := a.FreeSectors()
	r1, err := a.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreeSectors() != total-24 {
		t.Fatalf("free %d, want %d", a.FreeSectors(), total-24)
	}
	a.Free(r1)
	a.Free(r2)
	if a.FreeSectors() != total {
		t.Fatal("free sectors not restored")
	}
	st := a.Stats()
	if st.Allocs != 2 || st.Frees != 2 || st.SectorsAllocated != 24 || st.SectorsFreed != 24 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newAlloc(t, 0)
	r, err := a.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(r)
}

func TestAllocateAt(t *testing.T) {
	a := newAlloc(t, 0)
	if _, err := a.AllocateAt(50, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocateAt(52, 4); err == nil {
		t.Fatal("overlapping AllocateAt accepted")
	}
	if _, err := a.AllocateAt(a.TotalSectors()-2, 4); err == nil {
		t.Fatal("out-of-range AllocateAt accepted")
	}
}

func TestExhaustion(t *testing.T) {
	a := newAlloc(t, 0)
	for {
		if _, err := a.Allocate(64); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("wrong error: %v", err)
			}
			break
		}
	}
	if a.Occupancy() < 0.95 {
		t.Fatalf("gave up at %.0f%% occupancy", a.Occupancy()*100)
	}
}

func TestConstrainedAllocationRespectsDistance(t *testing.T) {
	g := testGeometry()
	a := newAlloc(t, 0)
	prev, err := a.AllocateNearCylinder(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := Constraint{MinCylinders: 5, MaxCylinders: 12}
	for i := 0; i < 12; i++ {
		run, err := a.AllocateConstrained(prev, 4, c)
		if err != nil {
			t.Fatal(err)
		}
		d := g.CylinderOf(run.LBA) - g.CylinderOf(prev.LBA)
		if d < 0 {
			d = -d
		}
		if d < c.MinCylinders || d > c.MaxCylinders {
			t.Fatalf("block %d at distance %d outside [%d,%d]", i, d, c.MinCylinders, c.MaxCylinders)
		}
		prev = run
	}
}

func TestConstrainedPrefersSmallestForwardDistance(t *testing.T) {
	g := testGeometry()
	a := newAlloc(t, 0)
	prev, err := a.AllocateNearCylinder(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	run, err := a.AllocateConstrained(prev, 2, Constraint{MinCylinders: 3, MaxCylinders: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CylinderOf(run.LBA); got != 13 {
		t.Fatalf("block placed at cylinder %d, want 13 (forward, min distance)", got)
	}
}

func TestConstrainedFailsWhenBandFull(t *testing.T) {
	g := testGeometry()
	a := newAlloc(t, 0)
	spc := g.SectorsPerCylinder()
	prev, err := a.AllocateNearCylinder(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fill cylinders 48, 49, 51, 52 completely.
	for _, cyl := range []int{48, 49, 51, 52} {
		if _, err := a.AllocateAt(cyl*spc, spc); err != nil {
			t.Fatal(err)
		}
	}
	_, err = a.AllocateConstrained(prev, 2, Constraint{MinCylinders: 1, MaxCylinders: 2})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	if a.Stats().ConstrainedFails != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestConstraintFromScattering(t *testing.T) {
	g := testGeometry()
	// A generous bound admits many cylinders.
	c, err := ConstraintFromScattering(g, g.MinAccessTime(), g.MaxAccessTime())
	if err != nil {
		t.Fatal(err)
	}
	if c.MinCylinders != 1 || c.MaxCylinders != g.Cylinders-1 {
		t.Fatalf("constraint %+v", c)
	}
	// A bound below the minimum access time is unusable.
	if _, err := ConstraintFromScattering(g, 0, g.AvgRotationalLatency()/2); err == nil {
		t.Fatal("impossible scattering bound accepted")
	}
	// The realized access time of the max distance must respect the bound.
	bound := g.AccessTime(25)
	c, err = ConstraintFromScattering(g, 0, bound)
	if err != nil {
		t.Fatal(err)
	}
	if g.AccessTime(c.MaxCylinders) > bound {
		t.Fatalf("distance %d violates bound", c.MaxCylinders)
	}
}

func TestAllocateNearCylinderSearchesOutward(t *testing.T) {
	g := testGeometry()
	a := newAlloc(t, 0)
	spc := g.SectorsPerCylinder()
	// Fill cylinder 30 fully; a near allocation should land at 29 or 31.
	if _, err := a.AllocateAt(30*spc, spc); err != nil {
		t.Fatal(err)
	}
	run, err := a.AllocateNearCylinder(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	cyl := g.CylinderOf(run.LBA)
	if cyl != 29 && cyl != 31 {
		t.Fatalf("near allocation landed at cylinder %d", cyl)
	}
}

func TestBitmapMarshalRoundTrip(t *testing.T) {
	a := newAlloc(t, 7)
	var runs []Run
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		r, err := a.Allocate(1 + rng.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	a.Free(runs[10])
	a.Free(runs[20])
	data := a.MarshalBitmap()

	b, err := New(testGeometry(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBitmap(data); err != nil {
		t.Fatal(err)
	}
	if b.FreeSectors() != a.FreeSectors() {
		t.Fatalf("free %d vs %d after round trip", b.FreeSectors(), a.FreeSectors())
	}
	for i := 0; i < a.TotalSectors(); i++ {
		if a.InUse(i) != b.InUse(i) {
			t.Fatalf("sector %d differs after round trip", i)
		}
	}
	if err := b.UnmarshalBitmap(data[:4]); err == nil {
		t.Fatal("truncated bitmap accepted")
	}
}

// Property: occupancy always equals allocated/total across random
// alloc/free sequences, and no two live runs overlap.
func TestAllocatorInvariantsQuick(t *testing.T) {
	g := testGeometry()
	f := func(seed int64) bool {
		a, err := New(g, 5)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var live []Run
		allocated := 5
		for step := 0; step < 60; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				a.Free(live[i])
				allocated -= live[i].Sectors
				live = append(live[:i], live[i+1:]...)
				continue
			}
			n := 1 + rng.Intn(12)
			r, err := a.Allocate(n)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				return false
			}
			// No overlap with live runs.
			for _, o := range live {
				if r.LBA < o.End() && o.LBA < r.End() {
					return false
				}
			}
			live = append(live, r)
			allocated += n
		}
		return a.TotalSectors()-a.FreeSectors() == allocated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBadArguments(t *testing.T) {
	a := newAlloc(t, 0)
	if _, err := a.Allocate(0); err == nil {
		t.Fatal("zero-sector allocation accepted")
	}
	if _, err := a.AllocateConstrained(Run{LBA: 0, Sectors: 1}, 1, Constraint{MinCylinders: 5, MaxCylinders: 2}); err == nil {
		t.Fatal("inverted constraint accepted")
	}
	if _, err := New(testGeometry(), -1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}
