package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestGeometryValidate(t *testing.T) {
	good := DefaultGeometry()
	if err := good.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	cases := []func(*Geometry){
		func(g *Geometry) { g.Cylinders = 0 },
		func(g *Geometry) { g.Surfaces = 0 },
		func(g *Geometry) { g.SectorsPerTrack = 0 },
		func(g *Geometry) { g.SectorSize = 0 },
		func(g *Geometry) { g.RPM = 0 },
		func(g *Geometry) { g.MinSeek = -time.Millisecond },
		func(g *Geometry) { g.MaxSeek = g.MinSeek - time.Millisecond },
	}
	for i, mutate := range cases {
		g := DefaultGeometry()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	g := DefaultGeometry()
	if got := g.TotalSectors(); got != 1200*8*56 {
		t.Fatalf("total sectors %d", got)
	}
	if got := g.CapacityBytes(); got != int64(g.TotalSectors())*2048 {
		t.Fatalf("capacity %d", got)
	}
	// 3600 RPM = 60 rev/s → one revolution every 16.67 ms.
	sec := float64(time.Second)
	wantRot := time.Duration(sec / 60)
	if got := g.RotationTime(); got != wantRot {
		t.Fatalf("rotation time %v, want %v", got, wantRot)
	}
	if got := g.AvgRotationalLatency(); got != g.RotationTime()/2 {
		t.Fatalf("avg latency %v", got)
	}
	// Transfer rate: 56 sectors × 2048 B × 8 bit × 60 rev/s.
	want := float64(56*2048*8) * 60
	if got := g.TransferRateBits(); got != want {
		t.Fatalf("transfer rate %g, want %g", got, want)
	}
	// A full-track transfer takes one rotation (modulo the per-sector
	// integer truncation of SectorTime).
	if got, rot := g.TransferTime(56), g.RotationTime(); got < rot-time.Microsecond || got > rot {
		t.Fatalf("full-track transfer %v, want ≈ one rotation %v", got, rot)
	}
}

func TestSeekTimeModel(t *testing.T) {
	g := DefaultGeometry()
	if g.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	if g.SeekTime(1) != g.MinSeek {
		t.Fatalf("single-cylinder seek %v, want %v", g.SeekTime(1), g.MinSeek)
	}
	if g.SeekTime(g.Cylinders-1) != g.MaxSeek {
		t.Fatalf("full-stroke seek %v, want %v", g.SeekTime(g.Cylinders-1), g.MaxSeek)
	}
	if g.SeekTime(-5) != g.SeekTime(5) {
		t.Fatal("seek time must be symmetric in distance")
	}
	// Beyond full stroke clamps.
	if g.SeekTime(10*g.Cylinders) != g.MaxSeek {
		t.Fatal("seek beyond disk should clamp to max")
	}
	// Monotone non-decreasing in distance.
	prev := time.Duration(0)
	for d := 0; d < g.Cylinders; d += 7 {
		s := g.SeekTime(d)
		if s < prev {
			t.Fatalf("seek time decreased at distance %d: %v < %v", d, s, prev)
		}
		prev = s
	}
}

func TestMaxDistanceWithinInvertsAccessTime(t *testing.T) {
	g := DefaultGeometry()
	f := func(rawDist int) bool {
		dist := rawDist % g.Cylinders
		if dist < 0 {
			dist = -dist
		}
		budget := g.AccessTime(dist)
		got := g.MaxDistanceWithin(budget)
		// got must satisfy the budget and be at least dist.
		return got >= dist && g.AccessTime(got) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if g.MaxDistanceWithin(0) != -1 {
		t.Fatal("zero budget cannot cover the rotational latency")
	}
	if g.MaxDistanceWithin(time.Hour) != g.Cylinders-1 {
		t.Fatal("huge budget should cover the full stroke")
	}
}

func TestCHSRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw int) bool {
		lba := raw % g.TotalSectors()
		if lba < 0 {
			lba = -lba
		}
		chs := g.ToCHS(lba)
		if chs.Cylinder < 0 || chs.Cylinder >= g.Cylinders ||
			chs.Surface < 0 || chs.Surface >= g.Surfaces ||
			chs.Sector < 0 || chs.Sector >= g.SectorsPerTrack {
			return false
		}
		return g.ToLBA(chs) == lba && g.CylinderOf(lba) == chs.Cylinder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveLBAsAreSeekFree(t *testing.T) {
	g := DefaultGeometry()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		lba := rng.Intn(g.TotalSectors() - 1)
		a, b := g.ToCHS(lba), g.ToCHS(lba+1)
		if b.Cylinder != a.Cylinder && b.Cylinder != a.Cylinder+1 {
			t.Fatalf("lba %d→%d jumps cylinder %d→%d", lba, lba+1, a.Cylinder, b.Cylinder)
		}
	}
}

func TestAccessTimeBounds(t *testing.T) {
	g := DefaultGeometry()
	if g.MinAccessTime() >= g.MaxAccessTime() {
		t.Fatal("min access must be below max access")
	}
	if g.MaxAccessTime() != g.SeekTime(g.Cylinders-1)+g.AvgRotationalLatency() {
		t.Fatal("max access mismatch")
	}
}

func TestArrayGeometry(t *testing.T) {
	g := ArrayGeometry(8)
	if g.Heads != 8 {
		t.Fatalf("heads %d", g.Heads)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
