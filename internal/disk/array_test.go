package disk_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mmfs/internal/disk"
	"mmfs/internal/fault"
)

// arrayGeom keeps array-test spindles tiny: 8 groups of 4 cylinders.
func arrayGeom() disk.Geometry {
	return disk.Geometry{
		Cylinders:       32,
		Surfaces:        2,
		SectorsPerTrack: 16,
		SectorSize:      512,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         30 * time.Millisecond,
		Heads:           1,
	}
}

func newTestArray(t *testing.T, p, stripe int) *disk.Array {
	t.Helper()
	spindles := make([]disk.Device, p)
	for i := range spindles {
		spindles[i] = disk.MustNew(arrayGeom())
	}
	a, err := disk.NewArray(spindles, stripe)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return a
}

func TestArrayValidation(t *testing.T) {
	if _, err := disk.NewArray(nil, 4); err == nil {
		t.Fatal("empty spindle list accepted")
	}
	// Stripe unit must divide the per-spindle cylinder count.
	if _, err := disk.NewArray([]disk.Device{disk.MustNew(arrayGeom())}, 5); err == nil {
		t.Fatal("non-dividing stripe unit accepted")
	}
	if _, err := disk.NewArray([]disk.Device{disk.MustNew(arrayGeom())}, 0); err == nil {
		t.Fatal("zero stripe unit accepted")
	}
	// Mismatched geometries must be rejected.
	g2 := arrayGeom()
	g2.SectorsPerTrack = 8
	_, err := disk.NewArray([]disk.Device{disk.MustNew(arrayGeom()), disk.MustNew(g2)}, 4)
	if err == nil {
		t.Fatal("mismatched spindle geometries accepted")
	}
}

func TestArrayLogicalGeometry(t *testing.T) {
	const p, stripe = 4, 4
	a := newTestArray(t, p, stripe)
	g := a.Geometry()
	phys := arrayGeom()
	if g.Cylinders != p*phys.Cylinders {
		t.Fatalf("logical cylinders = %d, want %d", g.Cylinders, p*phys.Cylinders)
	}
	if a.Heads() != p || g.Heads != p {
		t.Fatalf("Heads() = %d / geometry Heads = %d, want %d", a.Heads(), g.Heads, p)
	}
	// The continuity parameters the admission controller reads must be
	// one spindle's, not scaled by p: full-stroke seek saturates at
	// MaxSeek and the transfer rate is per-actuator.
	if g.MaxAccessTime() != phys.MaxAccessTime() {
		t.Fatalf("logical MaxAccessTime %v != physical %v", g.MaxAccessTime(), phys.MaxAccessTime())
	}
	if g.TransferRateBits() != phys.TransferRateBits() {
		t.Fatalf("logical TransferRateBits %g != physical %g", g.TransferRateBits(), phys.TransferRateBits())
	}
}

// TestArrayAddressRoundTrip checks block → (spindle, local sector) →
// block over every sector of a small array, and that the spindle
// assignment deals stripe groups round-robin.
func TestArrayAddressRoundTrip(t *testing.T) {
	const p, stripe = 3, 4
	a := newTestArray(t, p, stripe)
	g := a.Geometry()
	spc := g.SectorsPerCylinder()
	groupSec := stripe * spc
	counts := make([]int, p)
	for lba := 0; lba < g.TotalSectors(); lba++ {
		sp, local := a.Locate(lba)
		if want := (lba / groupSec) % p; sp != want {
			t.Fatalf("lba %d: spindle %d, want %d", lba, sp, want)
		}
		if local < 0 || local >= arrayGeom().TotalSectors() {
			t.Fatalf("lba %d: local %d outside spindle", lba, local)
		}
		if back := a.ToLogical(sp, local); back != lba {
			t.Fatalf("lba %d: round-trip through (%d,%d) gave %d", lba, sp, local, back)
		}
		counts[sp]++
	}
	for sp, n := range counts {
		if n != arrayGeom().TotalSectors() {
			t.Fatalf("spindle %d mapped %d sectors, want %d", sp, n, arrayGeom().TotalSectors())
		}
	}
	// Consecutive groups on one spindle must be locally adjacent, so a
	// logically sequential strand stays sequential per spindle.
	for group := 0; group+p < g.Cylinders/stripe; group++ {
		lba := group * groupSec
		sp, local := a.Locate(lba)
		spNext, localNext := a.Locate(lba + p*groupSec)
		if spNext != sp || localNext != local+groupSec {
			t.Fatalf("group %d: next group on spindle %d at %d, want spindle %d at %d",
				group, spNext, localNext, sp, local+groupSec)
		}
	}
}

func TestArraySpindleRange(t *testing.T) {
	const p, stripe = 2, 4
	a := newTestArray(t, p, stripe)
	groupSec := stripe * a.Geometry().SectorsPerCylinder()
	if sp, ok := a.SpindleRange(0, groupSec); !ok || sp != 0 {
		t.Fatalf("whole first group: spindle %d ok %v, want 0 true", sp, ok)
	}
	if sp, ok := a.SpindleRange(groupSec, 1); !ok || sp != 1 {
		t.Fatalf("second group start: spindle %d ok %v, want 1 true", sp, ok)
	}
	if _, ok := a.SpindleRange(groupSec-1, 2); ok {
		t.Fatal("boundary-crossing access reported single-spindle")
	}
}

// TestArrayDataRoundTrip writes across a group boundary and reads back
// through every read path, checking the bytes land on (and come back
// from) the owning spindles.
func TestArrayDataRoundTrip(t *testing.T) {
	const p, stripe = 2, 4
	a := newTestArray(t, p, stripe)
	g := a.Geometry()
	ss := g.SectorSize
	groupSec := stripe * g.SectorsPerCylinder()

	// Six sectors straddling the first group boundary: 3 on spindle 0,
	// 3 on spindle 1.
	start := groupSec - 3
	data := make([]byte, 6*ss)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := a.WriteAt(start, data); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got, err := a.ReadAt(start, 6)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadAt returned different bytes than written")
	}
	// The tail must physically live at spindle 1's local start.
	sp1 := a.Spindle(1).(*disk.Disk)
	tail, err := sp1.ReadAt(0, 3)
	if err != nil {
		t.Fatalf("spindle ReadAt: %v", err)
	}
	if !bytes.Equal(tail, data[3*ss:]) {
		t.Fatal("crossing write did not land on the second spindle")
	}

	buf := make([]byte, 6*ss)
	tInto, err := a.ReadInto(0, start, 6, buf)
	if err != nil {
		t.Fatalf("ReadInto: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("ReadInto returned different bytes than written")
	}
	if tInto <= 0 {
		t.Fatalf("crossing read charged %v, want > 0", tInto)
	}
	rdData, tRead, err := a.Read(0, start, 6)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(rdData, data) || tRead <= 0 {
		t.Fatalf("Read mismatch (t=%v)", tRead)
	}
}

// TestArrayTimedRouting checks that a single-group timed access charges
// exactly the owning spindle's service time and moves only its head.
func TestArrayTimedRouting(t *testing.T) {
	const p, stripe = 4, 4
	a := newTestArray(t, p, stripe)
	g := a.Geometry()
	groupSec := stripe * g.SectorsPerCylinder()

	// Group 2 lives on spindle 2.
	lba := 2 * groupSec
	want := a.Spindle(2).PeekServiceTime(0, 0, 8)
	if got := a.PeekServiceTime(0, lba, 8); got != want {
		t.Fatalf("PeekServiceTime = %v, want spindle charge %v", got, want)
	}
	buf := make([]byte, 8*g.SectorSize)
	tGot, err := a.ReadInto(0, lba, 8, buf)
	if err != nil {
		t.Fatalf("ReadInto: %v", err)
	}
	if tGot != want {
		t.Fatalf("ReadInto charged %v, want %v", tGot, want)
	}
	for i := 0; i < p; i++ {
		st := a.Spindle(i).Stats()
		if i == 2 {
			if st.Reads != 1 {
				t.Fatalf("spindle 2 saw %d reads, want 1", st.Reads)
			}
			continue
		}
		if st.Reads != 0 || a.Spindle(i).HeadCylinder(0) != 0 {
			t.Fatalf("idle spindle %d moved (reads=%d head=%d)", i, st.Reads, a.Spindle(i).HeadCylinder(0))
		}
	}
	if total := a.Stats(); total.Reads != 1 || total.SectorsRead != 8 {
		t.Fatalf("aggregate stats = %+v, want 1 read of 8 sectors", total)
	}
	// HeadCylinder reports in logical cylinders: spindle 2's head sits
	// on its local cylinder 0..., whose logical home is group 2.
	if hc := a.HeadCylinder(2); g.CylinderOf(lba) != hc {
		t.Fatalf("HeadCylinder(2) = %d, want %d", hc, g.CylinderOf(lba))
	}
}

// TestArrayIndependentHeads covers the p-way service-time paths: each
// spindle's actuator position is independent, so the same logical
// access costs less on a spindle whose head is already nearby.
func TestArrayIndependentHeads(t *testing.T) {
	const p, stripe = 2, 4
	a := newTestArray(t, p, stripe)
	g := a.Geometry()
	groupSec := stripe * g.SectorsPerCylinder()

	// Park spindle 0 far from its group-0 data; spindle 1 stays home.
	a.Spindle(0).(*disk.Disk).ParkHead(0, arrayGeom().Cylinders-1)
	far := a.PeekServiceTime(0, 0, 4)          // spindle 0, head far away
	near := a.PeekServiceTime(0, groupSec, 4)  // spindle 1, head at home
	if far <= near {
		t.Fatalf("far-head access %v not costlier than near-head %v", far, near)
	}
}

// TestArrayFaultWrappedSpindle wraps one spindle in a fault scenario:
// addressing must round-trip through the wrapper, faults must hit only
// accesses routed to that spindle, and the other spindles stay clean.
func TestArrayFaultWrappedSpindle(t *testing.T) {
	const p, stripe = 2, 4
	phys := arrayGeom()
	base := []*disk.Disk{disk.MustNew(phys), disk.MustNew(phys)}
	fd := fault.New(base[1], fault.Scenario{Seed: 7})
	a, err := disk.NewArray([]disk.Device{base[0], fd}, stripe)
	if err != nil {
		t.Fatalf("NewArray over fault-wrapped spindle: %v", err)
	}
	g := a.Geometry()
	groupSec := stripe * g.SectorsPerCylinder()

	// Round-trip addressing through the wrapped spindle.
	lba := groupSec + 5 // group 1 → spindle 1 (the wrapped one)
	sp, local := a.Locate(lba)
	if sp != 1 {
		t.Fatalf("lba %d on spindle %d, want 1", lba, sp)
	}
	if back := a.ToLogical(sp, local); back != lba {
		t.Fatalf("round-trip gave %d, want %d", back, lba)
	}
	data := make([]byte, 2*g.SectorSize)
	for i := range data {
		data[i] = 0xA5
	}
	if err := a.WriteAt(lba, data); err != nil {
		t.Fatalf("WriteAt through wrapper: %v", err)
	}
	got, err := a.ReadAt(lba, 2)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadAt through wrapper: %v", err)
	}

	// A forced transient fault fires only for the wrapped spindle.
	fd.FailNextReads(1)
	buf := make([]byte, 2*g.SectorSize)
	if _, err := a.ReadInto(0, 0, 2, buf); err != nil {
		t.Fatalf("read on healthy spindle hit the fault: %v", err)
	}
	if _, err := a.ReadInto(0, lba, 2, buf); !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("read on wrapped spindle: err = %v, want ErrTransient", err)
	}
	// The retry (fault consumed) succeeds and returns the data.
	if _, err := a.ReadInto(0, lba, 2, buf); err != nil {
		t.Fatalf("retry after transient: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("retry returned different bytes than written")
	}
	if fs := fd.FaultStats(); fs.ReadErrors != 1 {
		t.Fatalf("wrapped spindle counted %d read errors, want 1", fs.ReadErrors)
	}
}
