// Package disk implements the storage substrate of the multimedia file
// system: a sector-addressed disk simulator with an explicit seek,
// rotation, and transfer-time model, and optional multi-head (p-way)
// concurrency as required by the paper's "concurrent architecture"
// (Rangan & Vin, SOSP '91, §3.1).
//
// The paper's continuity equations consume exactly the parameters this
// model exposes: the data transfer rate r_dt, the bounded inter-block
// access time (the scattering parameter l_ds), and the maximum
// seek-plus-latency time l_max_seek. All service times are virtual
// (time.Duration on a sim.Clock), making experiments deterministic.
package disk

import (
	"fmt"
	"time"
)

// Geometry describes the physical shape and timing of a simulated disk.
type Geometry struct {
	// Cylinders is the number of seek positions (n_cyl in the paper).
	Cylinders int
	// Surfaces is the number of recording surfaces per cylinder
	// (tracks per cylinder).
	Surfaces int
	// SectorsPerTrack is the number of fixed-size sectors on each track.
	SectorsPerTrack int
	// SectorSize is the sector payload in bytes.
	SectorSize int
	// RPM is the spindle speed in revolutions per minute.
	RPM float64
	// MinSeek is the time to seek between adjacent cylinders
	// (l_min_seek in the paper's buffering analysis).
	MinSeek time.Duration
	// MaxSeek is the full-stroke seek time.
	MaxSeek time.Duration
	// Heads is the number of independent head assemblies that can be
	// in flight concurrently (the paper's degree of concurrency p).
	// Values < 1 are treated as 1.
	Heads int
}

// Validate reports an error if the geometry is not usable.
func (g Geometry) Validate() error {
	switch {
	case g.Cylinders < 1:
		return fmt.Errorf("disk: geometry needs at least 1 cylinder, have %d", g.Cylinders)
	case g.Surfaces < 1:
		return fmt.Errorf("disk: geometry needs at least 1 surface, have %d", g.Surfaces)
	case g.SectorsPerTrack < 1:
		return fmt.Errorf("disk: geometry needs at least 1 sector per track, have %d", g.SectorsPerTrack)
	case g.SectorSize < 1:
		return fmt.Errorf("disk: geometry needs positive sector size, have %d", g.SectorSize)
	case g.RPM <= 0:
		return fmt.Errorf("disk: geometry needs positive RPM, have %g", g.RPM)
	case g.MinSeek < 0 || g.MaxSeek < 0:
		return fmt.Errorf("disk: negative seek times (%v, %v)", g.MinSeek, g.MaxSeek)
	case g.MaxSeek < g.MinSeek:
		return fmt.Errorf("disk: max seek %v below min seek %v", g.MaxSeek, g.MinSeek)
	}
	return nil
}

// TotalSectors is the disk capacity in sectors.
func (g Geometry) TotalSectors() int {
	return g.Cylinders * g.Surfaces * g.SectorsPerTrack
}

// CapacityBytes is the disk capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.TotalSectors()) * int64(g.SectorSize)
}

// SectorsPerCylinder is the number of sectors under one seek position.
func (g Geometry) SectorsPerCylinder() int {
	return g.Surfaces * g.SectorsPerTrack
}

// RotationTime is the duration of one platter revolution.
func (g Geometry) RotationTime() time.Duration {
	return time.Duration(60 / g.RPM * float64(time.Second))
}

// AvgRotationalLatency is half a revolution: the expected wait for the
// target sector to come under the head. The simulator charges this
// deterministic average on every discontiguous access, which is the
// same simplification the paper's model makes by folding latency into
// the scattering parameter.
func (g Geometry) AvgRotationalLatency() time.Duration {
	return g.RotationTime() / 2
}

// SectorTime is the time to transfer one sector past the head.
func (g Geometry) SectorTime() time.Duration {
	return g.RotationTime() / time.Duration(g.SectorsPerTrack)
}

// TransferRateBits is the sustained media transfer rate r_dt in
// bits/second (Table 1 of the paper).
func (g Geometry) TransferRateBits() float64 {
	return float64(g.SectorsPerTrack*g.SectorSize*8) * g.RPM / 60
}

// SeekTime is the time to move the actuator across dist cylinders,
// using a linear model between MinSeek (one cylinder) and MaxSeek
// (full stroke). A zero-distance seek is free.
func (g Geometry) SeekTime(dist int) time.Duration {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	if g.Cylinders <= 2 || dist == 1 {
		return g.MinSeek
	}
	maxDist := g.Cylinders - 1
	if dist > maxDist {
		dist = maxDist
	}
	span := g.MaxSeek - g.MinSeek
	frac := float64(dist-1) / float64(maxDist-1)
	return g.MinSeek + time.Duration(float64(span)*frac)
}

// AccessTime is the positioning cost (seek + average rotational
// latency) for a head moving dist cylinders. This is the quantity the
// paper bounds with the scattering parameter l_ds.
func (g Geometry) AccessTime(dist int) time.Duration {
	return g.SeekTime(dist) + g.AvgRotationalLatency()
}

// MaxAccessTime is the worst-case positioning cost, the paper's
// l_max_seek ("maximum seek (and latency) time").
func (g Geometry) MaxAccessTime() time.Duration {
	return g.SeekTime(g.Cylinders-1) + g.AvgRotationalLatency()
}

// MinAccessTime is the smallest positioning cost charged for a
// discontiguous access: a one-cylinder seek plus average latency.
func (g Geometry) MinAccessTime() time.Duration {
	return g.MinSeek + g.AvgRotationalLatency()
}

// TransferTime is the time to transfer n sectors once positioned.
// Track and cylinder switches during a sequential run are assumed free,
// consistent with the model's single transfer-rate parameter.
func (g Geometry) TransferTime(n int) time.Duration {
	return time.Duration(n) * g.SectorTime()
}

// MaxDistanceWithin reports the largest cylinder distance whose access
// time (seek + average latency) does not exceed budget. It reports -1
// if even a zero-distance access (average latency alone) exceeds the
// budget, and Cylinders-1 if the budget covers a full-stroke access.
// Constrained allocation uses this to convert the time-valued
// scattering bound into a placement bound in cylinders.
func (g Geometry) MaxDistanceWithin(budget time.Duration) int {
	if budget < g.AvgRotationalLatency() {
		return -1
	}
	lo, hi := 0, g.Cylinders-1
	// Binary search for the largest dist with AccessTime(dist) <= budget.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.AccessTime(mid) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if g.AccessTime(lo) > budget {
		return -1
	}
	return lo
}

// CHS identifies a sector by cylinder, surface (head), and sector
// index within the track.
type CHS struct {
	Cylinder int
	Surface  int
	Sector   int
}

// ToCHS converts a linear block address to cylinder/surface/sector.
// The mapping fills a whole cylinder before moving the actuator, so
// consecutive LBAs are seek-free.
func (g Geometry) ToCHS(lba int) CHS {
	spc := g.SectorsPerCylinder()
	cyl := lba / spc
	rem := lba % spc
	return CHS{Cylinder: cyl, Surface: rem / g.SectorsPerTrack, Sector: rem % g.SectorsPerTrack}
}

// ToLBA converts cylinder/surface/sector to a linear block address.
func (g Geometry) ToLBA(c CHS) int {
	return c.Cylinder*g.SectorsPerCylinder() + c.Surface*g.SectorsPerTrack + c.Sector
}

// CylinderOf reports the cylinder holding the given linear address.
func (g Geometry) CylinderOf(lba int) int {
	return lba / g.SectorsPerCylinder()
}

// DefaultGeometry models a disk of the early-90s server class the
// paper targets, scaled so that experiments hold several minutes of
// compressed NTSC video: 1 GiB-class, 3600 RPM, 16 ms average seek.
func DefaultGeometry() Geometry {
	return Geometry{
		Cylinders:       1200,
		Surfaces:        8,
		SectorsPerTrack: 56,
		SectorSize:      2048,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         30 * time.Millisecond,
		Heads:           1,
	}
}

// ArrayGeometry returns DefaultGeometry with p independent head
// assemblies, the substrate for the paper's concurrent architecture.
func ArrayGeometry(p int) Geometry {
	g := DefaultGeometry()
	g.Heads = p
	return g
}
