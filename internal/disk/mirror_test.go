package disk_test

import (
	"bytes"
	"testing"

	"mmfs/internal/disk"
	"mmfs/internal/fault"
)

func newMirrorArray(t *testing.T, p, stripe int) (*disk.Array, []*disk.Disk) {
	t.Helper()
	raw := make([]*disk.Disk, p)
	spindles := make([]disk.Device, p)
	for i := range spindles {
		raw[i] = disk.MustNew(arrayGeom())
		spindles[i] = raw[i]
	}
	a, err := disk.NewMirroredArray(spindles, stripe)
	if err != nil {
		t.Fatalf("NewMirroredArray: %v", err)
	}
	return a, raw
}

func TestMirrorValidation(t *testing.T) {
	mk := func(n int) []disk.Device {
		s := make([]disk.Device, n)
		for i := range s {
			s[i] = disk.MustNew(arrayGeom())
		}
		return s
	}
	if _, err := disk.NewMirroredArray(mk(3), 4); err == nil {
		t.Fatal("odd spindle count accepted")
	}
	if _, err := disk.NewMirroredArray(mk(0), 4); err == nil {
		t.Fatal("empty spindle list accepted")
	}
	if _, err := disk.NewMirroredArray(mk(4), 5); err == nil {
		t.Fatal("non-dividing stripe unit accepted")
	}
}

func TestMirrorGeometryHalvesCapacity(t *testing.T) {
	a, _ := newMirrorArray(t, 4, 4)
	phys := arrayGeom()
	g := a.Geometry()
	if g.Cylinders != phys.Cylinders*2 {
		t.Fatalf("logical cylinders = %d, want %d (p/2 spindles' worth)", g.Cylinders, phys.Cylinders*2)
	}
	if a.Heads() != 4 || g.Heads != 4 {
		t.Fatalf("heads = %d/%d, want 4 (all actuators steerable)", a.Heads(), g.Heads)
	}
	if !a.Mirrored() || a.MirrorGroups() != 2 {
		t.Fatalf("Mirrored/MirrorGroups = %v/%d", a.Mirrored(), a.MirrorGroups())
	}
}

// Writes must land on both twins at the same local address; reads must
// steer inside the owning pair only.
func TestMirrorWriteDuplication(t *testing.T) {
	a, raw := newMirrorArray(t, 4, 4)
	spc := arrayGeom().SectorsPerCylinder()
	ss := arrayGeom().SectorSize
	// One sector per stripe group across the logical space.
	groups := a.Geometry().Cylinders / a.StripeCylinders()
	for g := 0; g < groups; g++ {
		lba := g * a.StripeCylinders() * spc
		data := bytes.Repeat([]byte{byte(g + 1)}, ss)
		if _, err := a.Write(0, lba, data); err != nil {
			t.Fatalf("write group %d: %v", g, err)
		}
		pair := g % 2
		slot := g / 2
		local := slot * a.StripeCylinders() * spc
		for tw := 0; tw < 2; tw++ {
			b, err := raw[2*pair+tw].ReadAt(local, 1)
			if err != nil {
				t.Fatalf("twin read: %v", err)
			}
			if b[0] != byte(g+1) {
				t.Fatalf("group %d twin %d holds %d, want %d", g, tw, b[0], g+1)
			}
		}
		// The steered read must come back from the owning pair.
		sp, _ := a.Locate(lba)
		if sp/2 != pair {
			t.Fatalf("group %d steered to spindle %d outside pair %d", g, sp, pair)
		}
		got, err := a.ReadAt(lba, 1)
		if err != nil || got[0] != byte(g+1) {
			t.Fatalf("steered read: %v %v", got[0], err)
		}
	}
}

// Balanced steering must deal alternate slots of a pair to alternate
// twins so both actuators carry read load.
func TestMirrorSteeringBalances(t *testing.T) {
	a, _ := newMirrorArray(t, 2, 4)
	spc := arrayGeom().SectorsPerCylinder()
	seen := [2]bool{}
	groups := a.Geometry().Cylinders / a.StripeCylinders()
	for g := 0; g < groups; g++ {
		sp, _ := a.Locate(g * a.StripeCylinders() * spc)
		seen[sp] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("steering uses only one twin: %v", seen)
	}
}

// A dead twin's slots must re-steer to the survivor after
// RefreshSteering, and back after it returns to health.
func TestMirrorDeadSteersToTwin(t *testing.T) {
	a, _ := newMirrorArray(t, 2, 4)
	spc := arrayGeom().SectorsPerCylinder()
	a.SetSpindleState(1, disk.Dead)
	if !a.RefreshSteering() {
		t.Fatal("RefreshSteering reported no change after a death")
	}
	groups := a.Geometry().Cylinders / a.StripeCylinders()
	for g := 0; g < groups; g++ {
		if sp, _ := a.Locate(g * a.StripeCylinders() * spc); sp != 0 {
			t.Fatalf("group %d still steered to dead spindle %d", g, sp)
		}
	}
	a.SetSpindleState(1, disk.Healthy)
	if !a.RefreshSteering() {
		t.Fatal("RefreshSteering reported no change after recovery")
	}
	seen := [2]bool{}
	for g := 0; g < groups; g++ {
		sp, _ := a.Locate(g * a.StripeCylinders() * spc)
		seen[sp] = true
	}
	if !seen[1] {
		t.Fatal("recovered twin receives no reads")
	}
}

// The health machine must walk Healthy → Suspect → Dead on consecutive
// read errors driven through the fault layer, and a clean read must
// clear Suspect.
func TestMirrorHealthStateMachine(t *testing.T) {
	g := arrayGeom()
	fd := fault.New(disk.MustNew(g), fault.Scenario{})
	twin := disk.MustNew(g)
	a, err := disk.NewMirroredArray([]disk.Device{fd, twin}, 4)
	if err != nil {
		t.Fatalf("NewMirroredArray: %v", err)
	}
	spc := g.SectorsPerCylinder()
	buf := make([]byte, g.SectorSize)
	// Group 1 steers to spindle 1 under balanced steering... slot 1 is
	// odd, so pick a slot that steers to spindle 0 (the faulty one).
	lba := 0 // group 0, slot 0 → spindle 0
	if sp, _ := a.Locate(lba); sp != 0 {
		t.Fatalf("setup: lba 0 steered to %d", sp)
	}
	read := func() error {
		_, err := a.ReadInto(0, lba, 1, buf)
		return err
	}
	fd.FailNextReads(4)
	for i := 0; i < 4; i++ {
		if read() == nil {
			t.Fatal("injected fault did not surface")
		}
	}
	if st := a.SpindleState(0); st != disk.Suspect {
		t.Fatalf("after 4 errors state = %s, want suspect", st)
	}
	// A clean read clears Suspect.
	if err := read(); err != nil {
		t.Fatalf("clean read: %v", err)
	}
	if st := a.SpindleState(0); st != disk.Healthy {
		t.Fatalf("after clean read state = %s, want healthy", st)
	}
	// Eight consecutive errors kill it.
	fd.FailNextReads(8)
	for i := 0; i < 8; i++ {
		read()
	}
	if st := a.SpindleState(0); st != disk.Dead {
		t.Fatalf("after 8 errors state = %s, want dead", st)
	}
	_ = spc
}

// Rebuild must reconstruct a replaced spindle's contents from its twin
// and return it to Healthy; unwritten cylinders are skipped for free.
func TestMirrorRebuild(t *testing.T) {
	a, raw := newMirrorArray(t, 2, 4)
	g := arrayGeom()
	spc := g.SectorsPerCylinder()
	ss := g.SectorSize
	// Write a pattern into the first two stripe groups.
	for i := 0; i < 2*a.StripeCylinders(); i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, ss)
		if err := a.WriteAt(i*spc, data[:ss]); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	}
	a.SetSpindleState(1, disk.Dead)
	a.RefreshSteering()
	// Hot-swap spindle 1 and rebuild it from spindle 0.
	repl := disk.MustNew(g)
	if err := a.ReplaceSpindle(1, repl); err != nil {
		t.Fatalf("ReplaceSpindle: %v", err)
	}
	if err := a.StartRebuild(1); err != nil {
		t.Fatalf("StartRebuild: %v", err)
	}
	if st := a.SpindleState(1); st != disk.Rebuilding {
		t.Fatalf("state = %s, want rebuilding", st)
	}
	buf := make([]byte, a.RepairBufferSectors()*ss)
	chunks := 0
	for {
		if _, ok := a.PeekRepairChunk(); !ok {
			break
		}
		if _, done, err := a.RepairChunk(buf); err != nil {
			t.Fatalf("RepairChunk: %v", err)
		} else if done {
			break
		}
		chunks++
		if chunks > g.Cylinders {
			t.Fatal("rebuild did not terminate")
		}
	}
	if a.RepairActive() {
		t.Fatal("repair still active after completion")
	}
	if st := a.SpindleState(1); st != disk.Healthy {
		t.Fatalf("state = %s, want healthy after rebuild", st)
	}
	// Only the materialized cylinders should have been copied.
	wantChunks := 2 * a.StripeCylinders()
	if chunks > wantChunks {
		t.Fatalf("copied %d chunks, want <= %d (unwritten cylinders skip free)", chunks, wantChunks)
	}
	// The rebuilt twin holds the pattern.
	for i := 0; i < 2*a.StripeCylinders(); i++ {
		b, err := repl.ReadAt(i*spc, 1)
		if err != nil || b[0] != byte(i+1) {
			t.Fatalf("rebuilt cylinder %d holds %d (%v), want %d", i, b[0], err, i+1)
		}
	}
	_ = raw
}

// AddMirrorPair + rebalance must migrate stripe groups to the widened
// mapping while every logical address keeps its contents, and the
// logical capacity must grow by one spindle's worth.
func TestMirrorHotAddRebalance(t *testing.T) {
	a, _ := newMirrorArray(t, 2, 4)
	g := arrayGeom()
	spc := g.SectorsPerCylinder()
	ss := g.SectorSize
	oldCyls := a.Geometry().Cylinders
	// Fill every old logical cylinder's first sector with its index.
	for c := 0; c < oldCyls; c++ {
		data := bytes.Repeat([]byte{byte(c + 1)}, ss)
		if err := a.WriteAt(c*spc, data); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	}
	if err := a.AddMirrorPair(disk.MustNew(g), disk.MustNew(g)); err != nil {
		t.Fatalf("AddMirrorPair: %v", err)
	}
	if got := a.Geometry().Cylinders; got != oldCyls*2 {
		t.Fatalf("capacity after hot-add = %d cylinders, want %d", got, oldCyls*2)
	}
	// Data is still readable from the old homes before any migration.
	for c := 0; c < oldCyls; c++ {
		b, err := a.ReadAt(c*spc, 1)
		if err != nil || b[0] != byte(c+1) {
			t.Fatalf("pre-rebalance cylinder %d holds %d (%v)", c, b[0], err)
		}
	}
	if err := a.StartRebalance(); err != nil {
		t.Fatalf("StartRebalance: %v", err)
	}
	buf := make([]byte, a.RepairBufferSectors()*ss)
	for i := 0; ; i++ {
		if _, ok := a.PeekRepairChunk(); !ok {
			break
		}
		if _, done, err := a.RepairChunk(buf); err != nil {
			t.Fatalf("RepairChunk: %v", err)
		} else if done {
			break
		}
		if i > 4*oldCyls {
			t.Fatal("rebalance did not terminate")
		}
	}
	if a.RepairActive() {
		t.Fatal("repair still active after rebalance")
	}
	// Every logical address still reads its pattern, now via the
	// widened mapping, and the new pair carries some of the load.
	seenNew := false
	for c := 0; c < oldCyls; c++ {
		b, err := a.ReadAt(c*spc, 1)
		if err != nil || b[0] != byte(c+1) {
			t.Fatalf("post-rebalance cylinder %d holds %d (%v)", c, b[0], err)
		}
		if sp, _ := a.Locate(c * spc); sp >= 2 {
			seenNew = true
		}
	}
	if !seenNew {
		t.Fatal("no stripe group migrated onto the added pair")
	}
	// The grown address space is writable end to end.
	top := (a.Geometry().Cylinders - 1) * spc
	data := bytes.Repeat([]byte{0xEE}, ss)
	if err := a.WriteAt(top, data); err != nil {
		t.Fatalf("write to grown space: %v", err)
	}
	b, err := a.ReadAt(top, 1)
	if err != nil || b[0] != 0xEE {
		t.Fatalf("read back from grown space: %v %v", b[0], err)
	}
}

// Guard-rail checks on the repair API.
func TestMirrorRepairValidation(t *testing.T) {
	a, _ := newMirrorArray(t, 2, 4)
	if err := a.StartRebuild(0); err == nil {
		t.Fatal("rebuild of a healthy spindle accepted")
	}
	if err := a.StartRebuild(5); err == nil {
		t.Fatal("out-of-range rebuild target accepted")
	}
	plain := newTestArray(t, 2, 4)
	if err := plain.StartRebuild(0); err == nil {
		t.Fatal("rebuild on a non-mirrored array accepted")
	}
	if err := plain.AddMirrorPair(disk.MustNew(arrayGeom()), disk.MustNew(arrayGeom())); err == nil {
		t.Fatal("hot-add on a non-mirrored array accepted")
	}
	if err := a.StartRebalance(); err == nil {
		t.Fatal("rebalance with no pending expansion accepted")
	}
	// Abort drops a rebuild target back to Dead.
	a.SetSpindleState(1, disk.Dead)
	if err := a.StartRebuild(1); err != nil {
		t.Fatalf("StartRebuild: %v", err)
	}
	a.AbortRepair()
	if st := a.SpindleState(1); st != disk.Dead {
		t.Fatalf("after abort state = %s, want dead", st)
	}
	if a.RepairActive() {
		t.Fatal("repair active after abort")
	}
}
