package disk

import (
	"fmt"
	"time"
)

// The repair engine: a cursor-driven background copier over a mirrored
// array. One engine serves two jobs —
//
//   - rebuild: reconstruct a Dead (or hot-swapped) spindle from its
//     mirror twin, one spindle cylinder per chunk;
//   - rebalance: after AddMirrorPair, migrate stripe groups from their
//     pre-expansion homes to the post-expansion mapping, one cylinder
//     per chunk, closing the ROADMAP hot-add leftover.
//
// The engine itself only moves the cursor; pacing is the MSM's job. It
// peeks the next chunk's source-read cost and charges it against the
// round's measured slack (k·γ − n·α − n·k·β), so repair I/O never
// displaces an admitted stream's reads. Cylinders never written on the
// source (nil pages read as zeros on both twins) are skipped for free,
// so repair time scales with data stored, not raw capacity.
//
// All repair methods are single-threaded by the same convention as the
// rest of Array: the MSM drives them from round boundaries, never from
// inside a parallel sub-round.

type repairKind uint8

const (
	repairNone repairKind = iota
	repairRebuild
	repairRebalance
)

type repairState struct {
	kind   repairKind
	target int // rebuild: spindle being reconstructed; -1 otherwise
	cyl    int // rebuild: next local cylinder to copy on the target
	group  int // rebalance: logical stripe group being migrated
	inCyl  int // rebalance: next cylinder within that group
	total  int // chunk count for progress reporting
	done   int // chunks completed (free skips included)
}

type cylinderMaterializer interface{ CylinderMaterialized(int) bool }

// ReplaceSpindle swaps in a new device for spindle i — the hot swap of
// a failed drive. The replacement starts Dead (its platters hold
// nothing valid) until StartRebuild copies the twin's contents over.
func (a *Array) ReplaceSpindle(i int, d Device) error {
	if !a.mirrored {
		return fmt.Errorf("disk: spindle replacement requires a mirrored array")
	}
	if i < 0 || i >= len(a.spindles) {
		return fmt.Errorf("disk: replacement spindle %d out of range [0,%d)", i, len(a.spindles))
	}
	if a.repair.kind == repairRebuild && a.repair.target == i {
		return fmt.Errorf("disk: spindle %d is being rebuilt; abort the repair first", i)
	}
	g := d.Geometry()
	g.Heads = a.phys.Heads
	if g != a.phys {
		return fmt.Errorf("disk: replacement spindle geometry differs from the array's")
	}
	a.spindles[i] = d
	a.health[i] = spindleHealth{state: Dead}
	return nil
}

// StartRebuild begins reconstructing spindle target from its mirror
// twin. The target must be Dead — either killed by the health machine
// or freshly swapped in via ReplaceSpindle — and the twin readable.
func (a *Array) StartRebuild(target int) error {
	if !a.mirrored {
		return fmt.Errorf("disk: rebuild requires a mirrored array")
	}
	if a.repair.kind != repairNone {
		return fmt.Errorf("disk: a repair is already running")
	}
	if target < 0 || target >= len(a.spindles) {
		return fmt.Errorf("disk: rebuild target %d out of range [0,%d)", target, len(a.spindles))
	}
	if st := a.health[target].state; st != Dead {
		return fmt.Errorf("disk: rebuild target %d is %s, want dead", target, st)
	}
	if !readable(a.health[a.Twin(target)].state) {
		return fmt.Errorf("disk: spindle %d's mirror twin is not readable", target)
	}
	a.health[target] = spindleHealth{state: Rebuilding}
	a.repair = repairState{kind: repairRebuild, target: target, total: a.phys.Cylinders}
	return nil
}

// AddMirrorPair grows a mirrored array by one pair. The new spindles
// must match the existing geometry. Existing stripe groups keep their
// logical addresses, but most acquire a new physical home under the
// widened group%(p/2) mapping; until StartRebalance migrates them they
// are still served from (and written at) their old homes via the moved
// bitmap. Growing the spindle count invalidates per-spindle service
// state — callers rebuild the MSM (core.FS.NewManager) afterwards.
func (a *Array) AddMirrorPair(d0, d1 Device) error {
	if !a.mirrored {
		return fmt.Errorf("disk: hot-add requires a mirrored array")
	}
	if a.repair.kind != repairNone {
		return fmt.Errorf("disk: a repair is already running")
	}
	if a.moved != nil {
		return fmt.Errorf("disk: previous expansion not yet rebalanced")
	}
	for _, d := range []Device{d0, d1} {
		g := d.Geometry()
		g.Heads = a.phys.Heads
		if g != a.phys {
			return fmt.Errorf("disk: added spindle geometry differs from the array's")
		}
	}
	oldMg := a.mg
	oldGroups := a.logical.Cylinders / a.sc
	a.spindles = append(a.spindles, d0, d1)
	a.mg++
	a.logical.Cylinders = a.phys.Cylinders * a.mg
	a.logical.Heads = len(a.spindles)
	a.health = append(a.health, spindleHealth{}, spindleHealth{})
	a.steer = append(a.steer, steerBoth)
	a.oldMg = oldMg
	a.moved = make([]bool, oldGroups)
	for g := range a.moved {
		// Groups whose pair and slot coincide under both mappings
		// need no migration; only the first oldMg groups qualify.
		a.moved[g] = g%oldMg == g%a.mg && g/oldMg == g/a.mg
	}
	return nil
}

// StartRebalance begins migrating stripe groups to their
// post-expansion homes. Migration order is ascending group index,
// which guarantees a group's destination slot has already been vacated
// by the time it is written (the old occupant of slot s on pair q is
// group s·oldMg+q < s·mg+q, already moved).
func (a *Array) StartRebalance() error {
	if a.repair.kind != repairNone {
		return fmt.Errorf("disk: a repair is already running")
	}
	if a.moved == nil {
		return fmt.Errorf("disk: no pending expansion; call AddMirrorPair first")
	}
	movers := 0
	for _, m := range a.moved {
		if !m {
			movers++
		}
	}
	a.repair = repairState{kind: repairRebalance, target: -1, total: movers * a.sc}
	return nil
}

// RepairActive reports whether a rebuild or rebalance is in progress.
func (a *Array) RepairActive() bool { return a.repair.kind != repairNone }

// RebuildTarget reports the spindle being rebuilt, or -1.
func (a *Array) RebuildTarget() int {
	if a.repair.kind != repairRebuild {
		return -1
	}
	return a.repair.target
}

// RepairProgress reports chunks completed and the total chunk count
// (both zero when no repair is active).
func (a *Array) RepairProgress() (done, total int) {
	if a.repair.kind == repairNone {
		return 0, 0
	}
	return a.repair.done, a.repair.total
}

// RepairBufferSectors reports the chunk buffer size RepairChunk needs:
// one spindle cylinder.
func (a *Array) RepairBufferSectors() int { return a.spc }

// AbortRepair cancels a running repair. A rebuild target drops back to
// Dead (its copy is incomplete); a rebalance keeps the groups already
// migrated and can be restarted with StartRebalance.
func (a *Array) AbortRepair() {
	if a.repair.kind == repairRebuild {
		a.health[a.repair.target] = spindleHealth{state: Dead}
	}
	a.repair = repairState{target: -1}
}

func (a *Array) finishRepair() {
	switch a.repair.kind {
	case repairRebuild:
		a.health[a.repair.target] = spindleHealth{state: Healthy}
	case repairRebalance:
		a.moved = nil
		a.oldMg = 0
	}
	a.repair = repairState{target: -1}
}

// PeekRepairChunk estimates the source-read cost of the next chunk —
// the charge the MSM weighs against round slack — or ok=false when no
// chunk remains (a repair whose cursor has reached the end is
// finalized here, so callers see completion without copying).
func (a *Array) PeekRepairChunk() (time.Duration, bool) {
	switch a.repair.kind {
	case repairRebuild:
		a.advanceRebuildCursor()
		if a.repair.cyl >= a.phys.Cylinders {
			a.finishRepair()
			return 0, false
		}
		src := a.Twin(a.repair.target)
		return a.spindles[src].PeekServiceTime(0, a.repair.cyl*a.spc, a.spc), true
	case repairRebalance:
		a.advanceRebalanceCursor()
		if a.repair.group >= len(a.moved) {
			a.finishRepair()
			return 0, false
		}
		g := a.repair.group
		srcSp := a.readSpindle(g%a.oldMg, g/a.oldMg)
		srcLocal := ((g/a.oldMg)*a.sc + a.repair.inCyl) * a.spc
		return a.spindles[srcSp].PeekServiceTime(0, srcLocal, a.spc), true
	}
	return 0, false
}

// RepairChunk copies the next chunk (one spindle cylinder), returning
// the timed charge (source read, plus destination writes for a
// rebalance — a rebuild target is idle, so its write is free
// parallelism) and done=true when the repair completed. buf must hold
// RepairBufferSectors() sectors.
func (a *Array) RepairChunk(buf []byte) (t time.Duration, done bool, err error) {
	switch a.repair.kind {
	case repairRebuild:
		return a.rebuildChunk(buf)
	case repairRebalance:
		return a.rebalanceChunk(buf)
	}
	return 0, true, nil
}

// advanceRebuildCursor skips cylinders with no materialized data on
// the source twin; both twins read such cylinders as zeros, so they
// complete for free.
func (a *Array) advanceRebuildCursor() {
	cm, ok := a.spindles[a.Twin(a.repair.target)].(cylinderMaterializer)
	for a.repair.cyl < a.phys.Cylinders {
		if !ok || cm.CylinderMaterialized(a.repair.cyl) {
			return
		}
		a.repair.cyl++
		a.repair.done++
	}
}

func (a *Array) rebuildChunk(buf []byte) (time.Duration, bool, error) {
	a.advanceRebuildCursor()
	if a.repair.cyl >= a.phys.Cylinders {
		a.finishRepair()
		return 0, true, nil
	}
	tgt, src := a.repair.target, a.Twin(a.repair.target)
	local := a.repair.cyl * a.spc
	t, err := a.spindles[src].ReadInto(0, local, a.spc, buf)
	a.observeRead(src, 0, t, err)
	if err != nil {
		return t, false, err
	}
	if _, err := a.spindles[tgt].Write(0, local, buf); err != nil {
		return t, false, err
	}
	a.repair.cyl++
	a.repair.done++
	a.advanceRebuildCursor()
	if a.repair.cyl >= a.phys.Cylinders {
		a.finishRepair()
		return t, true, nil
	}
	return t, false, nil
}

// advanceRebalanceCursor skips groups already at their new homes and
// source cylinders with no materialized data (the destination then
// reads the same zeros the source would have).
func (a *Array) advanceRebalanceCursor() {
	for a.repair.group < len(a.moved) {
		g := a.repair.group
		if a.moved[g] {
			a.repair.group++
			a.repair.inCyl = 0
			continue
		}
		srcSp := a.readSpindle(g%a.oldMg, g/a.oldMg)
		cm, ok := a.spindles[srcSp].(cylinderMaterializer)
		for a.repair.inCyl < a.sc {
			localCyl := (g/a.oldMg)*a.sc + a.repair.inCyl
			if !ok || cm.CylinderMaterialized(localCyl) {
				return
			}
			a.repair.inCyl++
			a.repair.done++
		}
		a.moved[g] = true
		a.repair.group++
		a.repair.inCyl = 0
	}
}

func (a *Array) rebalanceChunk(buf []byte) (time.Duration, bool, error) {
	a.advanceRebalanceCursor()
	if a.repair.group >= len(a.moved) {
		a.finishRepair()
		return 0, true, nil
	}
	g, c := a.repair.group, a.repair.inCyl
	srcSp := a.readSpindle(g%a.oldMg, g/a.oldMg)
	srcLocal := ((g/a.oldMg)*a.sc + c) * a.spc
	t, err := a.spindles[srcSp].ReadInto(0, srcLocal, a.spc, buf)
	a.observeRead(srcSp, 0, t, err)
	if err != nil {
		return t, false, err
	}
	dstPair, dstSlot := g%a.mg, g/a.mg
	dstLocal := (dstSlot*a.sc + c) * a.spc
	wt, err := a.writePair(dstPair, dstLocal, buf)
	if err != nil {
		return t, false, err
	}
	a.repair.inCyl++
	a.repair.done++
	if a.repair.inCyl == a.sc {
		a.moved[g] = true
		a.repair.group++
		a.repair.inCyl = 0
	}
	a.advanceRebalanceCursor()
	if a.repair.group >= len(a.moved) {
		a.finishRepair()
		return t + wt, true, nil
	}
	return t + wt, false, nil
}
