package disk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// smallGeometry keeps test disks tiny.
func smallGeometry() Geometry {
	return Geometry{
		Cylinders:       64,
		Surfaces:        2,
		SectorsPerTrack: 16,
		SectorSize:      512,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         30 * time.Millisecond,
		Heads:           2,
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := MustNew(smallGeometry())
	payload := make([]byte, 3*512)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := d.WriteAt(100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAt(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestPartialSectorWritePads(t *testing.T) {
	d := MustNew(smallGeometry())
	if err := d.WriteAt(5, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAt(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("payload %q", got[:5])
	}
	for _, b := range got[5:] {
		if b != 0 {
			t.Fatal("padding not zeroed")
		}
	}
}

func TestUnwrittenSectorsReadZero(t *testing.T) {
	d := MustNew(smallGeometry())
	got, err := d.ReadAt(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh disk returned nonzero data")
		}
	}
}

func TestCrossCylinderIO(t *testing.T) {
	g := smallGeometry()
	d := MustNew(g)
	spc := g.SectorsPerCylinder()
	// A write spanning three cylinders.
	lba := 2*spc - 3
	payload := make([]byte, (spc+6)*g.SectorSize)
	rng := rand.New(rand.NewSource(7))
	rng.Read(payload)
	if err := d.WriteAt(lba, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadAt(lba, spc+6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-cylinder round trip mismatch")
	}
}

func TestRangeChecks(t *testing.T) {
	d := MustNew(smallGeometry())
	total := d.Geometry().TotalSectors()
	if _, err := d.ReadAt(total, 1); err == nil {
		t.Fatal("read past end accepted")
	}
	if _, err := d.ReadAt(-1, 1); err == nil {
		t.Fatal("negative LBA accepted")
	}
	if err := d.WriteAt(total-1, make([]byte, 2*512)); err == nil {
		t.Fatal("write past end accepted")
	}
	if _, _, err := d.Read(0, total-1, 2); err == nil {
		t.Fatal("timed read past end accepted")
	}
}

func TestTimedReadChargesSeekLatencyTransfer(t *testing.T) {
	g := smallGeometry()
	d := MustNew(g)
	d.ParkHead(0, 0)
	spc := g.SectorsPerCylinder()
	targetCyl := 10
	_, dur, err := d.Read(0, targetCyl*spc, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := g.SeekTime(10) + g.AvgRotationalLatency() + g.TransferTime(4)
	if dur != want {
		t.Fatalf("service time %v, want %v", dur, want)
	}
	if d.HeadCylinder(0) != targetCyl {
		t.Fatalf("head at %d, want %d", d.HeadCylinder(0), targetCyl)
	}
	// A second read at the same cylinder pays no seek.
	_, dur2, err := d.Read(0, targetCyl*spc+8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want2 := g.AvgRotationalLatency() + g.TransferTime(1)
	if dur2 != want2 {
		t.Fatalf("same-cylinder service %v, want %v", dur2, want2)
	}
}

func TestReadContiguousSkipsPositioning(t *testing.T) {
	g := smallGeometry()
	d := MustNew(g)
	_, _, err := d.Read(0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, dur, err := d.ReadContiguous(0, 102, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dur != g.TransferTime(2) {
		t.Fatalf("contiguous read charged %v, want transfer-only %v", dur, g.TransferTime(2))
	}
}

func TestWriteTimeEqualsReadTime(t *testing.T) {
	// The paper's first simplifying assumption (§3).
	g := smallGeometry()
	d1 := MustNew(g)
	d2 := MustNew(g)
	payload := make([]byte, 4*g.SectorSize)
	wt, err := d1.Write(0, 300, payload)
	if err != nil {
		t.Fatal(err)
	}
	_, rt, err := d2.Read(0, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if wt != rt {
		t.Fatalf("write %v vs read %v", wt, rt)
	}
}

func TestIndependentHeads(t *testing.T) {
	g := smallGeometry()
	d := MustNew(g)
	spc := g.SectorsPerCylinder()
	if _, _, err := d.Read(0, 5*spc, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read(1, 50*spc, 1); err != nil {
		t.Fatal(err)
	}
	if d.HeadCylinder(0) != 5 || d.HeadCylinder(1) != 50 {
		t.Fatalf("heads at %d/%d, want 5/50", d.HeadCylinder(0), d.HeadCylinder(1))
	}
}

func TestPeekServiceTimeDoesNotMoveHead(t *testing.T) {
	g := smallGeometry()
	d := MustNew(g)
	spc := g.SectorsPerCylinder()
	before := d.HeadCylinder(0)
	peek := d.PeekServiceTime(0, 30*spc, 2)
	if d.HeadCylinder(0) != before {
		t.Fatal("peek moved the head")
	}
	_, actual, err := d.Read(0, 30*spc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if peek != actual {
		t.Fatalf("peek %v vs actual %v", peek, actual)
	}
}

func TestStatsAccumulate(t *testing.T) {
	g := smallGeometry()
	d := MustNew(g)
	if _, _, err := d.Read(0, 10, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, 400, make([]byte, g.SectorSize)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.SectorsRead != 2 || st.SectorsWritten != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BusyTime() <= 0 {
		t.Fatal("busy time not accumulated")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("reset did not clear stats")
	}
}

func TestZero(t *testing.T) {
	d := MustNew(smallGeometry())
	if err := d.WriteAt(7, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.Zero(7, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadAt(7, 1)
	for _, b := range got {
		if b != 0 {
			t.Fatal("zero left data behind")
		}
	}
}

func TestParkHeadClamps(t *testing.T) {
	d := MustNew(smallGeometry())
	d.ParkHead(0, -5)
	if d.HeadCylinder(0) != 0 {
		t.Fatal("negative park not clamped")
	}
	d.ParkHead(0, 9999)
	if d.HeadCylinder(0) != d.Geometry().Cylinders-1 {
		t.Fatal("oversized park not clamped")
	}
}

// Property: any sequence of in-range writes followed by reads returns
// exactly the bytes written, regardless of placement and overlap
// order (later writes win).
func TestWriteReadQuick(t *testing.T) {
	g := smallGeometry()
	f := func(seed int64) bool {
		d := MustNew(g)
		rng := rand.New(rand.NewSource(seed))
		shadow := make([]byte, g.CapacityBytes())
		for i := 0; i < 20; i++ {
			n := 1 + rng.Intn(8)
			lba := rng.Intn(g.TotalSectors() - n)
			payload := make([]byte, n*g.SectorSize)
			rng.Read(payload)
			if err := d.WriteAt(lba, payload); err != nil {
				return false
			}
			copy(shadow[lba*g.SectorSize:], payload)
		}
		for i := 0; i < 20; i++ {
			n := 1 + rng.Intn(8)
			lba := rng.Intn(g.TotalSectors() - n)
			got, err := d.ReadAt(lba, n)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, shadow[lba*g.SectorSize:(lba+n)*g.SectorSize]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	g := smallGeometry()
	g.Cylinders = 0
	if _, err := New(g); err == nil {
		t.Fatal("bad geometry accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad geometry")
		}
	}()
	MustNew(g)
}
