package disk

import (
	"fmt"
	"time"
)

// Mirrored redundancy mode for Array: spindles are paired into mirror
// groups (spindles 2g and 2g+1 form pair g), both twins hold identical
// data at identical local addresses, and the array survives the loss of
// either twin of every pair. Capacity halves — the logical geometry
// advertises p/2 spindles' worth of cylinders — but read bandwidth
// keeps all p actuators because steering deals alternate stripe-group
// slots to alternate twins.
//
// Each spindle carries a health state machine driven by the timed read
// path's error and latency signals (virtual-clock based; no wall time):
//
//	Healthy --4 consecutive errors / 16 consecutive outliers--> Suspect
//	Suspect --clean read--> Healthy
//	Suspect --8 consecutive errors--> Dead
//	Dead    --StartRebuild--> Rebuilding --copy complete--> Healthy
//
// Health fields are single-owner by convention: spindle i's counters
// are written only by the goroutine servicing spindle i's reads (the
// MSM's per-spindle lane during parallel sub-rounds, the sole caller
// otherwise). Steering reads them only from single-threaded context —
// RefreshSteering between rounds — and the steering table is frozen
// during parallel sub-rounds, so a mid-round health transition never
// redirects a lane onto another lane's spindle. The round in which a
// spindle dies therefore still degrades up to one k-window per victim
// stream; the re-steer takes effect at the next round boundary.

// SpindleState is one spindle's position in the mirror health state
// machine.
type SpindleState uint8

const (
	// Healthy spindles serve their steering share of reads.
	Healthy SpindleState = iota
	// Suspect spindles have accumulated consecutive errors or latency
	// outliers; steering shifts most load to the twin but keeps
	// probing so a clean read can clear the state.
	Suspect
	// Dead spindles are never read; their stripe groups steer wholly
	// to the twin, and only StartRebuild (after ReplaceSpindle for a
	// physical swap) can bring them back.
	Dead
	// Rebuilding spindles are being reconstructed from their twin;
	// they absorb duplicated writes (to keep copied chunks coherent)
	// but serve no reads until the copy completes.
	Rebuilding
)

func (s SpindleState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Rebuilding:
		return "rebuilding"
	}
	return "unknown"
}

// Health state-machine thresholds. All counts are consecutive: any
// clean read resets them.
const (
	// suspectAfterErrs consecutive read errors mark a spindle Suspect.
	suspectAfterErrs = 4
	// deadAfterErrs consecutive read errors mark it Dead.
	deadAfterErrs = 8
	// suspectAfterSlow consecutive latency outliers mark it Suspect;
	// latency alone never kills a spindle.
	suspectAfterSlow = 16
	// latencyOutlierFactor: a timed read slower than this multiple of
	// its PeekServiceTime estimate counts as an outlier.
	latencyOutlierFactor = 4
)

type spindleHealth struct {
	state      SpindleState
	consecErrs int
	consecSlow int
}

// steerMode is one mirror pair's frozen read-steering decision.
type steerMode uint8

const (
	// steerBoth deals alternate slots to alternate twins (the static
	// balanced split; also the fallback when neither twin is readable,
	// so the error surfaces instead of being masked).
	steerBoth steerMode = iota
	// steerTo0 / steerTo1 send every read to that twin (the other is
	// Dead or Rebuilding).
	steerTo0
	steerTo1
	// steerFavor0 / steerFavor1 send most reads to the named healthy
	// twin but probe the Suspect twin every fourth slot, so a clean
	// probe can clear the Suspect state.
	steerFavor0
	steerFavor1
)

func readable(s SpindleState) bool { return s == Healthy || s == Suspect }

// NewMirroredArray builds a mirrored array: an even number of spindles
// paired into p/2 mirror groups, each pair holding two copies of its
// stripe groups. Geometry and stripe-unit rules match NewArray.
func NewMirroredArray(spindles []Device, stripeCylinders int) (*Array, error) {
	if len(spindles) < 2 || len(spindles)%2 != 0 {
		return nil, fmt.Errorf("disk: mirrored array needs an even spindle count >= 2, have %d", len(spindles))
	}
	a, err := NewArray(spindles, stripeCylinders)
	if err != nil {
		return nil, err
	}
	a.mirrored = true
	a.mg = len(spindles) / 2
	a.logical.Cylinders = a.phys.Cylinders * a.mg
	a.health = make([]spindleHealth, len(spindles))
	a.steer = make([]steerMode, a.mg)
	a.repair = repairState{target: -1}
	return a, nil
}

// MustNewMirroredArray is NewMirroredArray but panics on invalid
// configuration; for tests and fixed experiment setups.
func MustNewMirroredArray(spindles []Device, stripeCylinders int) *Array {
	a, err := NewMirroredArray(spindles, stripeCylinders)
	if err != nil {
		panic(err)
	}
	return a
}

// Mirrored reports whether the array runs the mirrored redundancy
// layout.
func (a *Array) Mirrored() bool { return a.mirrored }

// MirrorGroups reports the number of mirror pairs (p/2; 0 when not
// mirrored).
func (a *Array) MirrorGroups() int { return a.mg }

// Twin reports the mirror twin of spindle i.
func (a *Array) Twin(i int) int { return i ^ 1 }

// SpindleState reports spindle i's health state. Non-mirrored arrays
// report every spindle Healthy.
func (a *Array) SpindleState(i int) SpindleState {
	if !a.mirrored {
		return Healthy
	}
	return a.health[i].state
}

// SetSpindleState forces spindle i's health state, clearing its strike
// counters: the operator's (and tests') hook for marking a drive dead
// without waiting for the error thresholds. Call RefreshSteering (or
// let the MSM's next round do it) afterwards.
func (a *Array) SetSpindleState(i int, s SpindleState) {
	if !a.mirrored {
		return
	}
	a.health[i] = spindleHealth{state: s}
}

// homeOf maps a logical stripe group to its (mirror pair, local slot).
// During a pending rebalance after AddMirrorPair, groups not yet moved
// still live at their pre-expansion home.
//
// rt:hotpath
func (a *Array) homeOf(group int) (pair, slot int) {
	if a.moved != nil && group < len(a.moved) && !a.moved[group] {
		return group % a.oldMg, group / a.oldMg
	}
	return group % a.mg, group / a.mg
}

// readSpindle applies the pair's frozen steering decision to one slot.
//
// rt:hotpath
func (a *Array) readSpindle(pair, slot int) int {
	base := 2 * pair
	switch a.steer[pair] {
	case steerTo0:
		return base
	case steerTo1:
		return base + 1
	case steerFavor0:
		if slot&3 == 3 {
			return base + 1
		}
		return base
	case steerFavor1:
		if slot&3 == 3 {
			return base
		}
		return base + 1
	default:
		return base + (slot & 1)
	}
}

// RefreshSteering recomputes the per-pair steering table from the
// current health states and reports whether any entry changed. The MSM
// calls it from the single-threaded partition phase at each round
// boundary; between calls the table is frozen, which is what makes the
// lanes' concurrent Locate calls race-free against health transitions.
func (a *Array) RefreshSteering() (changed bool) {
	if !a.mirrored {
		return false
	}
	for pair := range a.steer {
		m := a.steerFor(pair)
		if m != a.steer[pair] {
			a.steer[pair] = m
			changed = true
		}
	}
	return changed
}

func (a *Array) steerFor(pair int) steerMode {
	s0 := a.health[2*pair].state
	s1 := a.health[2*pair+1].state
	r0, r1 := readable(s0), readable(s1)
	switch {
	case r0 && !r1:
		return steerTo0
	case r1 && !r0:
		return steerTo1
	case s0 == Healthy && s1 == Suspect:
		return steerFavor0
	case s1 == Healthy && s0 == Suspect:
		return steerFavor1
	default:
		return steerBoth
	}
}

// observeRead feeds one timed read's outcome into the owning spindle's
// health counters. Single-owner: called only from the goroutine
// servicing spindle sp (see the package comment above).
//
// rt:hotpath
func (a *Array) observeRead(sp int, est, t time.Duration, err error) {
	h := &a.health[sp]
	switch {
	case err != nil:
		h.consecSlow = 0
		h.consecErrs++
		if h.state == Healthy && h.consecErrs >= suspectAfterErrs {
			h.state = Suspect
		}
		if h.state == Suspect && h.consecErrs >= deadAfterErrs {
			h.state = Dead
		}
	case est > 0 && t > est*latencyOutlierFactor:
		h.consecErrs = 0
		h.consecSlow++
		if h.state == Healthy && h.consecSlow >= suspectAfterSlow {
			h.state = Suspect
		}
	default:
		h.consecErrs, h.consecSlow = 0, 0
		if h.state == Suspect {
			h.state = Healthy
		}
	}
}

// readSpan performs one group-contained timed read on spindle sp,
// recording the outcome in the health state machine when mirrored.
//
// rt:hotpath
func (a *Array) readSpan(sp, local, count int, dst []byte) (time.Duration, error) {
	if !a.mirrored {
		return a.spindles[sp].ReadInto(0, local, count, dst)
	}
	est := a.spindles[sp].PeekServiceTime(0, local, count)
	t, err := a.spindles[sp].ReadInto(0, local, count, dst)
	a.observeRead(sp, est, t, err)
	return t, err
}

// readSpanContiguous mirrors readSpan for the continuing-transfer path.
// Contiguous transfers have no seek/rotation baseline, so only errors
// feed the health machine (est = 0 disables the outlier check).
func (a *Array) readSpanContiguous(sp, local, count int) ([]byte, time.Duration, error) {
	if !a.mirrored {
		return a.spindles[sp].ReadContiguous(0, local, count)
	}
	b, t, err := a.spindles[sp].ReadContiguous(0, local, count)
	a.observeRead(sp, 0, t, err)
	return b, t, err
}

// writeSpan duplicates one group-contained timed write onto both twins
// of the owning pair, charging the slower copy (the twins seek in
// parallel). A Dead twin is skipped — its contents are reconstructed
// wholesale by rebuild — and a Rebuilding twin is written through so
// chunks already copied stay coherent. During a rebalance, a write to
// the group currently being migrated also lands at the new home, so
// cylinders copied before the write don't go stale.
func (a *Array) writeSpan(lba, local int, data []byte) (time.Duration, error) {
	group := lba / a.groupSec
	pair, _ := a.homeOf(group)
	t, err := a.writePair(pair, local, data)
	if err != nil {
		return 0, err
	}
	if a.repair.kind == repairRebalance && group == a.repair.group {
		dstPair, dstSlot := group%a.mg, group/a.mg
		dstLocal := (dstSlot*a.sc)*a.spc + local%(a.sc*a.spc)
		if _, err := a.writePair(dstPair, dstLocal, data); err != nil {
			return 0, err
		}
	}
	return t, nil
}

// writePair writes data at the pair-local address on every writable
// twin of the pair, returning the slower charge.
func (a *Array) writePair(pair, local int, data []byte) (time.Duration, error) {
	var max time.Duration
	var firstErr error
	wrote := false
	for tw := 0; tw < 2; tw++ {
		sp := 2*pair + tw
		if a.health[sp].state == Dead {
			continue
		}
		t, err := a.spindles[sp].Write(0, local, data)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		wrote = true
		if t > max {
			max = t
		}
	}
	if !wrote {
		if firstErr != nil {
			return 0, firstErr
		}
		//lint:ignore allocpath double-failure path is cold
		return 0, fmt.Errorf("disk: mirror pair %d has no writable spindle", pair)
	}
	return max, nil
}

// writeSpanAt is writeSpan for the untimed path.
func (a *Array) writeSpanAt(lba, local int, data []byte) error {
	group := lba / a.groupSec
	pair, _ := a.homeOf(group)
	if err := a.writePairAt(pair, local, data); err != nil {
		return err
	}
	if a.repair.kind == repairRebalance && group == a.repair.group {
		dstPair, dstSlot := group%a.mg, group/a.mg
		dstLocal := (dstSlot*a.sc)*a.spc + local%(a.sc*a.spc)
		return a.writePairAt(dstPair, dstLocal, data)
	}
	return nil
}

func (a *Array) writePairAt(pair, local int, data []byte) error {
	var firstErr error
	wrote := false
	for tw := 0; tw < 2; tw++ {
		sp := 2*pair + tw
		if a.health[sp].state == Dead {
			continue
		}
		if err := a.spindles[sp].WriteAt(local, data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		wrote = true
	}
	if !wrote {
		if firstErr != nil {
			return firstErr
		}
		return fmt.Errorf("disk: mirror pair %d has no writable spindle", pair)
	}
	return nil
}
