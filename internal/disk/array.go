package disk

import (
	"fmt"
	"time"

	"mmfs/internal/obs"
)

// Array is a Device composed of p underlying spindles with the strand
// media blocks striped across them, the substrate for the paper's
// concurrent retrieval architecture of degree p (§3.1). Each spindle is
// an independent Device — typically a *Disk, optionally wrapped in an
// internal/fault scenario so one degraded spindle degrades only the
// streams striped onto it.
//
// Striping is by cylinder group: the array exposes a logical geometry
// identical to one spindle's but with p times the cylinders, and
// logical cylinders are dealt to spindles in runs of StripeCylinders()
// ("groups") round-robin. Consecutive groups assigned to the same
// spindle are physically adjacent there, so a strand laid out by
// constrained allocation on the logical geometry advances each spindle's
// head ~one local cylinder per block it stores on that spindle — the
// per-spindle scattering bound survives striping.
//
// An access that stays inside one group costs exactly what the owning
// spindle charges. Accesses crossing a group boundary are split into
// per-group spans and charge the sum of the span times (a sequential
// hand-off); the storage manager keeps such accesses off the parallel
// lanes, so only metadata and the rare boundary-crossing run pays it.
//
// Like *Disk, an Array is not safe for arbitrary concurrent use — but
// accesses routed to distinct spindles touch disjoint state, which is
// precisely the discipline the MSM's per-spindle round lanes follow.
type Array struct {
	spindles []Device
	phys     Geometry // one spindle's geometry
	logical  Geometry // what the array advertises: p× the cylinders
	sc       int      // stripe unit in cylinders
	spc      int      // sectors per cylinder (same on every spindle)
	groupSec int      // sectors per stripe group: sc * spc

	// Mirrored redundancy mode (see mirror.go). When mirrored, the
	// p spindles form mg = p/2 pairs, logical capacity is mg spindles'
	// worth, and reads steer between twins by the frozen steer table.
	mirrored bool
	mg       int // mirror pairs (p/2; 0 when not mirrored)
	health   []spindleHealth
	steer    []steerMode

	// Hot-add expansion state (see repair.go): until a rebalance
	// migrates them, stripe groups with moved[g]==false still live at
	// their pre-expansion home computed with oldMg pairs.
	oldMg int
	moved []bool

	repair repairState
}

var _ Device = (*Array)(nil)
var _ Store = (*Array)(nil)

// NewArray builds an array over the given spindles with a stripe unit
// of stripeCylinders. All spindles must share one geometry, and the
// stripe unit must divide the per-spindle cylinder count so that every
// group is whole.
func NewArray(spindles []Device, stripeCylinders int) (*Array, error) {
	if len(spindles) < 1 {
		return nil, fmt.Errorf("disk: array needs at least 1 spindle")
	}
	phys := spindles[0].Geometry()
	for i, sp := range spindles[1:] {
		g := sp.Geometry()
		g.Heads = phys.Heads
		if g != phys {
			return nil, fmt.Errorf("disk: spindle %d geometry differs from spindle 0", i+1)
		}
	}
	if stripeCylinders < 1 {
		return nil, fmt.Errorf("disk: stripe unit must be >= 1 cylinder, have %d", stripeCylinders)
	}
	if phys.Cylinders%stripeCylinders != 0 {
		return nil, fmt.Errorf("disk: stripe unit %d does not divide %d cylinders per spindle",
			stripeCylinders, phys.Cylinders)
	}
	logical := phys
	logical.Cylinders = phys.Cylinders * len(spindles)
	logical.Heads = len(spindles)
	return &Array{
		spindles: spindles,
		phys:     phys,
		logical:  logical,
		sc:       stripeCylinders,
		spc:      phys.SectorsPerCylinder(),
		groupSec: stripeCylinders * phys.SectorsPerCylinder(),
	}, nil
}

// MustNewArray is NewArray but panics on invalid configuration; for
// tests and fixed experiment setups.
func MustNewArray(spindles []Device, stripeCylinders int) *Array {
	a, err := NewArray(spindles, stripeCylinders)
	if err != nil {
		panic(err)
	}
	return a
}

// Geometry returns the array's logical geometry: one spindle's shape
// with Cylinders multiplied by the spindle count and Heads = p. Its
// MaxAccessTime and TransferRateBits equal a single spindle's, which is
// what makes the per-spindle continuity equations read straight off it.
func (a *Array) Geometry() Geometry { return a.logical }

// Heads reports the degree of concurrency p: one independent actuator
// per spindle.
func (a *Array) Heads() int { return len(a.spindles) }

// Spindles reports the number of spindles p.
func (a *Array) Spindles() int { return len(a.spindles) }

// Spindle returns spindle i's device; the MSM's per-spindle lanes
// address their spindle through it.
func (a *Array) Spindle(i int) Device { return a.spindles[i] }

// StripeCylinders reports the stripe unit in logical cylinders.
func (a *Array) StripeCylinders() int { return a.sc }

// Locate maps a logical sector address to (spindle, local address on
// that spindle).
//
// rt:hotpath
func (a *Array) Locate(lba int) (spindle, local int) {
	cyl := lba / a.spc
	off := lba % a.spc
	group := cyl / a.sc
	inGroup := cyl % a.sc
	if a.mirrored {
		pair, slot := a.homeOf(group)
		localCyl := slot*a.sc + inGroup
		return a.readSpindle(pair, slot), localCyl*a.spc + off
	}
	p := len(a.spindles)
	localCyl := (group/p)*a.sc + inGroup
	return group % p, localCyl*a.spc + off
}

// ToLogical maps a spindle-local sector address back to the logical
// address space; it inverts Locate. For a mirrored array both twins
// map to the same logical address, and the post-expansion mapping is
// used during a pending rebalance.
func (a *Array) ToLogical(spindle, local int) int {
	cyl := local / a.spc
	off := local % a.spc
	localGroup := cyl / a.sc
	inGroup := cyl % a.sc
	var group int
	if a.mirrored {
		group = localGroup*a.mg + spindle/2
	} else {
		group = localGroup*len(a.spindles) + spindle
	}
	return (group*a.sc+inGroup)*a.spc + off
}

// SpindleOf reports the spindle owning the logical sector address.
func (a *Array) SpindleOf(lba int) int {
	sp, _ := a.Locate(lba)
	return sp
}

// SpindleRange reports the spindle that can service the whole access
// [lba, lba+n) on its own, or ok=false when the access crosses a stripe
// group boundary and must be split across spindles. The MSM uses it to
// decide whether a request's next blocks belong on a parallel lane.
//
// rt:hotpath
func (a *Array) SpindleRange(lba, n int) (spindle int, ok bool) {
	first := lba / a.groupSec
	last := first
	if n > 1 {
		last = (lba + n - 1) / a.groupSec
	}
	sp, _ := a.Locate(lba)
	return sp, first == last
}

// HeadCylinder reports the logical cylinder under spindle h's actuator.
func (a *Array) HeadCylinder(h int) int {
	localCyl := a.spindles[h].HeadCylinder(0)
	localGroup := localCyl / a.sc
	inGroup := localCyl % a.sc
	if a.mirrored {
		return (localGroup*a.mg+h/2)*a.sc + inGroup
	}
	return (localGroup*len(a.spindles)+h)*a.sc + inGroup
}

// Stats returns the sum of every spindle's counters; BusyTime() over it
// is aggregate spindle-busy time, not wall time (p spindles working in
// parallel accumulate p seconds of busy time per second of round).
func (a *Array) Stats() Stats {
	var sum Stats
	for _, sp := range a.spindles {
		s := sp.Stats()
		sum.Reads += s.Reads
		sum.Writes += s.Writes
		sum.SectorsRead += s.SectorsRead
		sum.SectorsWritten += s.SectorsWritten
		sum.Seeks += s.Seeks
		sum.SeekTime += s.SeekTime
		sum.RotationTime += s.RotationTime
		sum.TransferTime += s.TransferTime
	}
	return sum
}

func (a *Array) checkRange(lba, n int) error {
	if n < 0 || lba < 0 || lba+n > a.logical.TotalSectors() {
		//lint:ignore allocpath range errors abort the access; the error path is cold
		return fmt.Errorf("disk: array access [%d,%d) outside %d sectors", lba, lba+n, a.logical.TotalSectors())
	}
	return nil
}

// span is one group-contained slice of an access: count sectors at
// local on spindle sp, covering the caller's sectors [done, done+count).
func (a *Array) spanAt(lba, n, done int) (sp, local, count int) {
	cur := lba + done
	sp, local = a.Locate(cur)
	count = a.groupSec - cur%a.groupSec
	if count > n-done {
		count = n - done
	}
	return sp, local, count
}

// ReadInto is the allocation-free timed read: data lands in dst (at
// least n sectors long), and the returned service time is the owning
// spindle's charge — or, for a boundary-crossing access, the sum of the
// per-span charges.
//
// rt:hotpath
func (a *Array) ReadInto(h, lba, n int, dst []byte) (time.Duration, error) {
	if err := a.checkRange(lba, n); err != nil {
		return 0, err
	}
	ss := a.logical.SectorSize
	var total time.Duration
	for done := 0; done < n; {
		sp, local, count := a.spanAt(lba, n, done)
		t, err := a.readSpan(sp, local, count, dst[done*ss:(done+count)*ss])
		if err != nil {
			return 0, err
		}
		total += t
		done += count
	}
	return total, nil
}

// Read performs a timed read of n sectors at the logical address,
// allocating the buffer. See ReadInto for the timing model.
func (a *Array) Read(h, lba, n int) ([]byte, time.Duration, error) {
	if err := a.checkRange(lba, n); err != nil {
		return nil, 0, err
	}
	buf := make([]byte, n*a.logical.SectorSize)
	t, err := a.ReadInto(h, lba, n, buf)
	if err != nil {
		return nil, 0, err
	}
	return buf, t, nil
}

// ReadContiguous performs a timed read continuing the owning spindle's
// previous transfer: each span charges only transfer time.
func (a *Array) ReadContiguous(h, lba, n int) ([]byte, time.Duration, error) {
	if err := a.checkRange(lba, n); err != nil {
		return nil, 0, err
	}
	ss := a.logical.SectorSize
	buf := make([]byte, n*ss)
	var total time.Duration
	for done := 0; done < n; {
		sp, local, count := a.spanAt(lba, n, done)
		b, t, err := a.readSpanContiguous(sp, local, count)
		if err != nil {
			return nil, 0, err
		}
		copy(buf[done*ss:], b)
		total += t
		done += count
	}
	return buf, total, nil
}

// Write performs a timed write at the logical address; spans charge the
// owning spindles and the total is their sum.
func (a *Array) Write(h, lba int, data []byte) (time.Duration, error) {
	ss := a.logical.SectorSize
	n := (len(data) + ss - 1) / ss
	if err := a.checkRange(lba, n); err != nil {
		return 0, err
	}
	var total time.Duration
	for done := 0; done < n; {
		sp, local, count := a.spanAt(lba, n, done)
		hi := (done + count) * ss
		if hi > len(data) {
			hi = len(data)
		}
		var t time.Duration
		var err error
		if a.mirrored {
			t, err = a.writeSpan(lba+done, local, data[done*ss:hi])
		} else {
			t, err = a.spindles[sp].Write(0, local, data[done*ss:hi])
		}
		if err != nil {
			return 0, err
		}
		total += t
		done += count
	}
	return total, nil
}

// PeekServiceTime estimates the access cost without moving heads or
// touching statistics.
func (a *Array) PeekServiceTime(h, lba, n int) time.Duration {
	var total time.Duration
	for done := 0; done < n; {
		sp, local, count := a.spanAt(lba, n, done)
		total += a.spindles[sp].PeekServiceTime(0, local, count)
		done += count
	}
	return total
}

// ReadAt copies n sectors at the logical address without charging time.
func (a *Array) ReadAt(lba, n int) ([]byte, error) {
	if err := a.checkRange(lba, n); err != nil {
		return nil, err
	}
	ss := a.logical.SectorSize
	buf := make([]byte, n*ss)
	for done := 0; done < n; {
		sp, local, count := a.spanAt(lba, n, done)
		b, err := a.spindles[sp].ReadAt(local, count)
		if err != nil {
			return nil, err
		}
		copy(buf[done*ss:], b)
		done += count
	}
	return buf, nil
}

// WriteAt stores data at the logical address without charging time.
func (a *Array) WriteAt(lba int, data []byte) error {
	ss := a.logical.SectorSize
	n := (len(data) + ss - 1) / ss
	if err := a.checkRange(lba, n); err != nil {
		return err
	}
	for done := 0; done < n; {
		sp, local, count := a.spanAt(lba, n, done)
		hi := (done + count) * ss
		if hi > len(data) {
			hi = len(data)
		}
		var err error
		if a.mirrored {
			err = a.writeSpanAt(lba+done, local, data[done*ss:hi])
		} else {
			err = a.spindles[sp].WriteAt(local, data[done*ss:hi])
		}
		if err != nil {
			return err
		}
		done += count
	}
	return nil
}

// ResetStats clears every spindle's counters (where the spindle
// supports it; fault-wrapped spindles forward to their base disk).
func (a *Array) ResetStats() {
	for _, sp := range a.spindles {
		if r, ok := sp.(interface{ ResetStats() }); ok {
			r.ResetStats()
		}
	}
}

// SetReadLatencyHistogram installs the read-latency histogram on every
// spindle that supports instrumentation, so the array's reads land in
// one mmfs_disk_read_seconds series.
func (a *Array) SetReadLatencyHistogram(h *obs.Histogram) {
	for _, sp := range a.spindles {
		if s, ok := sp.(interface{ SetReadLatencyHistogram(*obs.Histogram) }); ok {
			s.SetReadLatencyHistogram(h)
		}
	}
}

// SetWriteLatencyHistogram mirrors SetReadLatencyHistogram for the
// timed write path.
func (a *Array) SetWriteLatencyHistogram(h *obs.Histogram) {
	for _, sp := range a.spindles {
		if s, ok := sp.(interface{ SetWriteLatencyHistogram(*obs.Histogram) }); ok {
			s.SetWriteLatencyHistogram(h)
		}
	}
}
