package disk

import (
	"fmt"
	"time"

	"mmfs/internal/obs"
)

// Stats accumulates operation counters for a disk.
type Stats struct {
	Reads          uint64
	Writes         uint64
	SectorsRead    uint64
	SectorsWritten uint64
	Seeks          uint64
	SeekTime       time.Duration
	RotationTime   time.Duration
	TransferTime   time.Duration
}

// BusyTime is the total time the disk spent positioning and
// transferring.
func (s Stats) BusyTime() time.Duration {
	return s.SeekTime + s.RotationTime + s.TransferTime
}

// Device is the media-path disk surface: everything the strand layer,
// the storage manager, and the plan compilers need from a disk. *Disk
// implements it directly; internal/fault wraps one to inject
// deterministic failures without the layers above knowing.
type Device interface {
	Geometry() Geometry
	Heads() int
	HeadCylinder(h int) int
	Stats() Stats
	// Timed data path (virtual service times drive the round clock).
	Read(h, lba, n int) ([]byte, time.Duration, error)
	// ReadInto is Read without the buffer allocation: dst must hold
	// n sectors. It is the rt:hotpath entry point (see allocpath).
	ReadInto(h, lba, n int, dst []byte) (time.Duration, error)
	ReadContiguous(h, lba, n int) ([]byte, time.Duration, error)
	Write(h, lba int, data []byte) (time.Duration, error)
	PeekServiceTime(h, lba, n int) time.Duration
	// Untimed data path (metadata, verification, editing copies).
	ReadAt(lba, n int) ([]byte, error)
	WriteAt(lba int, data []byte) error
}

// Store is the whole-filesystem disk surface: the media-path Device
// plus the maintenance hooks core.FS needs to run over either a single
// *Disk or a striped *Array without caring which it has.
type Store interface {
	Device
	ResetStats()
	SetReadLatencyHistogram(*obs.Histogram)
	SetWriteLatencyHistogram(*obs.Histogram)
}

// headState tracks one independent actuator.
type headState struct {
	cylinder int
}

// Disk is an in-memory simulated disk: a sector store plus a timing
// model. All data-plane methods are untimed; the timing methods return
// the virtual service time of an access so callers (the storage
// manager's service rounds) can advance the simulation clock.
//
// Disk is not safe for concurrent use; the storage manager serializes
// access, which mirrors a real single-ported drive.
type Disk struct {
	geom Geometry
	// pages holds sector data one cylinder at a time, allocated on
	// first write so that large simulated disks cost memory only for
	// the sectors actually used. A nil page reads as zeros.
	pages [][]byte
	heads []headState
	stats Stats
	// readLatency, when set, receives every timed read's service time
	// in seconds (the mmfs_disk_read_seconds series).
	readLatency *obs.Histogram
	// writeLatency mirrors readLatency for the timed write path (the
	// mmfs_disk_write_seconds series).
	writeLatency *obs.Histogram
}

var _ Device = (*Disk)(nil)
var _ Store = (*Disk)(nil)

// New creates a zero-filled disk with the given geometry.
func New(g Geometry) (*Disk, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	nh := g.Heads
	if nh < 1 {
		nh = 1
	}
	d := &Disk{
		geom:  g,
		pages: make([][]byte, g.Cylinders),
		heads: make([]headState, nh),
	}
	return d, nil
}

// MustNew is New but panics on invalid geometry; for tests and fixed
// experiment configurations.
func MustNew(g Geometry) *Disk {
	d, err := New(g)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the disk's geometry.
func (d *Disk) Geometry() Geometry { return d.geom }

// Heads reports the number of independent actuators (p).
func (d *Disk) Heads() int { return len(d.heads) }

// Stats returns a snapshot of the accumulated counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats clears the accumulated counters.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// SetReadLatencyHistogram installs an observability histogram that
// every timed read reports its virtual service time to, in seconds.
// nil disables the instrumentation.
func (d *Disk) SetReadLatencyHistogram(h *obs.Histogram) { d.readLatency = h }

// SetWriteLatencyHistogram installs an observability histogram that
// every timed write reports its virtual service time to, in seconds.
// nil disables the instrumentation.
func (d *Disk) SetWriteLatencyHistogram(h *obs.Histogram) { d.writeLatency = h }

// HeadCylinder reports the current cylinder of head h.
func (d *Disk) HeadCylinder(h int) int { return d.heads[h].cylinder }

// ParkHead moves head h to the given cylinder without charging time;
// experiments use it to establish worst- or best-case starting
// positions.
func (d *Disk) ParkHead(h, cylinder int) {
	if cylinder < 0 {
		cylinder = 0
	}
	if cylinder >= d.geom.Cylinders {
		cylinder = d.geom.Cylinders - 1
	}
	d.heads[h].cylinder = cylinder
}

func (d *Disk) checkRange(lba, n int) error {
	if n < 0 || lba < 0 || lba+n > d.geom.TotalSectors() {
		//lint:ignore allocpath range errors abort the access; the error path is cold
		return fmt.Errorf("disk: access [%d,%d) outside %d sectors", lba, lba+n, d.geom.TotalSectors())
	}
	return nil
}

// page returns cylinder cyl's backing store, allocating it when
// materialize is true; a nil return reads as zeros.
// CylinderMaterialized reports whether the cylinder has ever been
// written. A nil page reads as zeros, and mirror twins materialize in
// lockstep (writes are duplicated), so the repair engine can skip
// unmaterialized cylinders without copying anything.
func (d *Disk) CylinderMaterialized(cyl int) bool {
	return cyl >= 0 && cyl < len(d.pages) && d.pages[cyl] != nil
}

func (d *Disk) page(cyl int, materialize bool) []byte {
	if d.pages[cyl] == nil && materialize {
		//lint:ignore allocpath a cylinder page materializes once; steady-state rounds hit warm pages
		d.pages[cyl] = make([]byte, d.geom.SectorsPerCylinder()*d.geom.SectorSize)
	}
	return d.pages[cyl]
}

// ReadAt copies n sectors starting at lba into a fresh buffer without
// charging time. Use Read for the timed path.
func (d *Disk) ReadAt(lba, n int) ([]byte, error) {
	if err := d.checkRange(lba, n); err != nil {
		return nil, err
	}
	ss := d.geom.SectorSize
	spc := d.geom.SectorsPerCylinder()
	buf := make([]byte, n*ss)
	for done := 0; done < n; {
		cur := lba + done
		cyl := cur / spc
		inCyl := cur % spc
		span := spc - inCyl
		if span > n-done {
			span = n - done
		}
		if p := d.page(cyl, false); p != nil {
			copy(buf[done*ss:], p[inCyl*ss:(inCyl+span)*ss])
		}
		done += span
	}
	return buf, nil
}

// ReadAtInto copies n sectors starting at lba into dst without
// charging time or allocating; dst must have room for n sectors.
func (d *Disk) ReadAtInto(lba, n int, dst []byte) error {
	if err := d.checkRange(lba, n); err != nil {
		return err
	}
	ss := d.geom.SectorSize
	spc := d.geom.SectorsPerCylinder()
	if len(dst) < n*ss {
		//lint:ignore allocpath short-buffer errors abort the access; the error path is cold
		return fmt.Errorf("disk: ReadAtInto buffer holds %d bytes, need %d", len(dst), n*ss)
	}
	for done := 0; done < n; {
		cur := lba + done
		cyl := cur / spc
		inCyl := cur % spc
		span := spc - inCyl
		if span > n-done {
			span = n - done
		}
		seg := dst[done*ss : (done+span)*ss]
		if p := d.page(cyl, false); p != nil {
			copy(seg, p[inCyl*ss:(inCyl+span)*ss])
		} else {
			// Unmaterialized cylinders read as zeros; dst may hold
			// stale bytes from its previous lap around the scratch
			// arena.
			for i := range seg {
				seg[i] = 0
			}
		}
		done += span
	}
	return nil
}

// WriteAt stores data (padded to whole sectors with zeros) at lba
// without charging time. Use Write for the timed path.
func (d *Disk) WriteAt(lba int, data []byte) error {
	n := (len(data) + d.geom.SectorSize - 1) / d.geom.SectorSize
	if err := d.checkRange(lba, n); err != nil {
		return err
	}
	ss := d.geom.SectorSize
	spc := d.geom.SectorsPerCylinder()
	padded := data
	if len(data) != n*ss {
		//lint:ignore allocpath padding happens only for partial-sector writes; block flushes are sector-aligned
		padded = make([]byte, n*ss)
		copy(padded, data)
	}
	for done := 0; done < n; {
		cur := lba + done
		cyl := cur / spc
		inCyl := cur % spc
		span := spc - inCyl
		if span > n-done {
			span = n - done
		}
		p := d.page(cyl, true)
		copy(p[inCyl*ss:(inCyl+span)*ss], padded[done*ss:(done+span)*ss])
		done += span
	}
	return nil
}

// serviceTime charges the positioning and transfer costs of an access
// by head h to lba for n sectors, moves the head, and updates stats.
func (d *Disk) serviceTime(h, lba, n int, contiguous bool) time.Duration {
	hs := &d.heads[h]
	target := d.geom.CylinderOf(lba)
	var t time.Duration
	if !contiguous {
		dist := target - hs.cylinder
		if dist < 0 {
			dist = -dist
		}
		st := d.geom.SeekTime(dist)
		rot := d.geom.AvgRotationalLatency()
		d.stats.Seeks++
		d.stats.SeekTime += st
		d.stats.RotationTime += rot
		t += st + rot
	}
	xfer := d.geom.TransferTime(n)
	d.stats.TransferTime += xfer
	t += xfer
	// Leave the head at the cylinder holding the last sector accessed.
	if n > 0 {
		hs.cylinder = d.geom.CylinderOf(lba + n - 1)
	} else {
		hs.cylinder = target
	}
	return t
}

// Read performs a timed read by head h of n sectors at lba, returning
// the data and the service time (seek + average rotational latency +
// transfer). A read that continues exactly where the head left off
// would still pay latency here; use ReadContiguous for run
// continuation.
func (d *Disk) Read(h, lba, n int) ([]byte, time.Duration, error) {
	if err := d.checkRange(lba, n); err != nil {
		return nil, 0, err
	}
	t := d.serviceTime(h, lba, n, false)
	d.stats.Reads++
	d.stats.SectorsRead += uint64(n)
	if d.readLatency != nil {
		d.readLatency.Observe(t.Seconds())
	}
	buf, err := d.ReadAt(lba, n)
	if err != nil {
		return nil, 0, err
	}
	return buf, t, nil
}

// ReadInto is the allocation-free variant of Read: the same timing
// and stats, with the data landing in the caller's buffer (at least
// n sectors long). The msm service round uses it so steady-state
// playback recycles one scratch buffer per manager.
//
// rt:hotpath
func (d *Disk) ReadInto(h, lba, n int, dst []byte) (time.Duration, error) {
	if err := d.checkRange(lba, n); err != nil {
		return 0, err
	}
	t := d.serviceTime(h, lba, n, false)
	d.stats.Reads++
	d.stats.SectorsRead += uint64(n)
	if d.readLatency != nil {
		d.readLatency.Observe(t.Seconds())
	}
	if err := d.ReadAtInto(lba, n, dst); err != nil {
		return 0, err
	}
	return t, nil
}

// ReadContiguous performs a timed read that is physically contiguous
// with the head's previous transfer: only transfer time is charged.
func (d *Disk) ReadContiguous(h, lba, n int) ([]byte, time.Duration, error) {
	if err := d.checkRange(lba, n); err != nil {
		return nil, 0, err
	}
	t := d.serviceTime(h, lba, n, true)
	d.stats.Reads++
	d.stats.SectorsRead += uint64(n)
	if d.readLatency != nil {
		d.readLatency.Observe(t.Seconds())
	}
	buf, err := d.ReadAt(lba, n)
	if err != nil {
		return nil, 0, err
	}
	return buf, t, nil
}

// Write performs a timed write by head h of data at lba, returning the
// service time. Disk write and read times are assumed equal, the
// paper's first simplifying assumption (§3).
func (d *Disk) Write(h, lba int, data []byte) (time.Duration, error) {
	n := (len(data) + d.geom.SectorSize - 1) / d.geom.SectorSize
	if err := d.checkRange(lba, n); err != nil {
		return 0, err
	}
	t := d.serviceTime(h, lba, n, false)
	d.stats.Writes++
	d.stats.SectorsWritten += uint64(n)
	if d.writeLatency != nil {
		d.writeLatency.Observe(t.Seconds())
	}
	if err := d.WriteAt(lba, data); err != nil {
		return 0, err
	}
	return t, nil
}

// PeekServiceTime computes the service time head h would pay to access
// n sectors at lba, without moving the head or updating statistics.
func (d *Disk) PeekServiceTime(h, lba, n int) time.Duration {
	target := d.geom.CylinderOf(lba)
	dist := target - d.heads[h].cylinder
	if dist < 0 {
		dist = -dist
	}
	return d.geom.SeekTime(dist) + d.geom.AvgRotationalLatency() + d.geom.TransferTime(n)
}

// Zero clears n sectors at lba without charging time.
func (d *Disk) Zero(lba, n int) error {
	if err := d.checkRange(lba, n); err != nil {
		return err
	}
	return d.WriteAt(lba, make([]byte, n*d.geom.SectorSize))
}
