package continuity

import "testing"

func TestClassStringParseRoundTrip(t *testing.T) {
	for _, c := range []Class{BestEffort, Standard, Premium} {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("ParseClass(%q) = %v", c.String(), got)
		}
	}
	for _, alias := range []struct {
		in   string
		want Class
	}{{"be", BestEffort}, {"besteffort", BestEffort}, {"std", Standard}, {"prem", Premium}} {
		got, err := ParseClass(alias.in)
		if err != nil || got != alias.want {
			t.Fatalf("ParseClass(%q) = %v, %v", alias.in, got, err)
		}
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Fatal("ParseClass accepted an unknown class")
	}
	if s := Class(9).String(); s != "class(9)" {
		t.Fatalf("out-of-range String() = %q", s)
	}
}

func TestClassOrdering(t *testing.T) {
	if !(BestEffort < Standard && Standard < Premium) {
		t.Fatal("class lattice order broken: want best-effort < standard < premium")
	}
}

func TestDegradedScalesDiskChargeOnly(t *testing.T) {
	r := videoRequest()
	d := Degraded(r, 4)
	if d.UnitBits != r.UnitBits/4 {
		t.Fatalf("unit bits %g, want %g", d.UnitBits, r.UnitBits/4)
	}
	if d.Scattering != r.Scattering/4 {
		t.Fatalf("scattering %g, want %g", d.Scattering, r.Scattering/4)
	}
	// The display-rate term γ must not move: deadlines are unchanged.
	if d.BlockDuration() != r.BlockDuration() {
		t.Fatalf("block duration moved: %g → %g", r.BlockDuration(), d.BlockDuration())
	}
	if got := Degraded(r, 1); got != r {
		t.Fatal("stride 1 must be the identity")
	}
	if got := Degraded(r, 0); got != r {
		t.Fatal("stride 0 must be the identity")
	}
}

// Degrading a population must strictly widen Eq. 18's slack and raise
// the admissible population: that is the whole point of load shedding.
func TestDegradedWidensSlack(t *testing.T) {
	a := AdmissionFor(testDevice())
	nmax := a.NMax(videoRequest())
	full := repeatReq(videoRequest(), nmax)
	k, ok := a.KTransient(full)
	if !ok {
		t.Fatal("full population infeasible")
	}
	shed := make([]Request, nmax)
	for i := range shed {
		shed[i] = Degraded(videoRequest(), 2)
	}
	if a.SlackSeconds(shed, k) <= a.SlackSeconds(full, k) {
		t.Fatal("degrading the population did not widen the slack")
	}
	// The saturated full-rate set rejects one more stream, but the
	// same set with every stream shed at stride 2 accepts it.
	if d := a.Admit(full, k, videoRequest()); d.Admitted {
		t.Fatal("n_max+1 full-rate stream admitted")
	}
	if d := a.Admit(shed, k, Degraded(videoRequest(), 2)); !d.Admitted {
		t.Fatalf("degraded overflow stream rejected: %s", d.Reason)
	}
}

func TestFeasibleTransientMatchesKTransient(t *testing.T) {
	a := AdmissionFor(testDevice())
	reqs := repeatReq(videoRequest(), 4)
	k, ok := a.KTransient(reqs)
	if !ok {
		t.Fatal("infeasible")
	}
	if !a.FeasibleTransient(reqs, k) {
		t.Fatalf("KTransient's own k=%d not feasible", k)
	}
	if k > 1 && a.FeasibleTransient(reqs, k-1) {
		t.Fatalf("k=%d feasible below KTransient's minimum %d", k-1, k)
	}
	if a.FeasibleTransient(reqs, 0) {
		t.Fatal("k=0 reported feasible")
	}
}

func TestClassAwareAdmit(t *testing.T) {
	a := AdmissionFor(testDevice())
	nmax := a.NMax(videoRequest())
	full := repeatReq(videoRequest(), nmax)
	k, _ := a.KTransient(full)
	ca := ClassAware{A: a}
	set := [][]Request{full}

	for _, tc := range []struct {
		name  string
		class Class
	}{{"best-effort degrades", BestEffort}, {"standard degrades", Standard}} {
		t.Run(tc.name, func(t *testing.T) {
			d := ca.Admit(set, 0, k, videoRequest(), tc.class)
			if !d.Admitted {
				t.Fatalf("rejected: %s", d.Reason)
			}
			if d.Stride < 2 || d.Stride > DefaultMaxStride {
				t.Fatalf("stride = %d outside (1, %d]", d.Stride, DefaultMaxStride)
			}
			// The stride must be minimal: one notch less must not fit.
			if half := a.Admit(full, k, Degraded(videoRequest(), d.Stride/2)); half.Admitted {
				t.Fatalf("stride %d admitted but %d would have sufficed", d.Stride, d.Stride/2)
			}
		})
	}
	t.Run("premium rejects rather than degrade", func(t *testing.T) {
		d := ca.Admit(set, 0, k, videoRequest(), Premium)
		if d.Admitted || d.Stride != 0 {
			t.Fatalf("admitted=%v stride=%d, want rejection", d.Admitted, d.Stride)
		}
	})

	// With room to spare, every class is admitted at full rate.
	few := repeatReq(videoRequest(), 1)
	kFew, _ := a.KTransient(few)
	for _, c := range []Class{BestEffort, Standard, Premium} {
		d := ca.Admit([][]Request{few}, 0, kFew, videoRequest(), c)
		if !d.Admitted || d.Stride != 1 {
			t.Fatalf("class %v under light load: admitted=%v stride=%d", c, d.Admitted, d.Stride)
		}
	}
}

// Past MaxStride the controller gives up: a population so oversubscribed
// that even 1/MaxStride sub-sampling cannot fit is rejected.
func TestClassAwareMaxStrideBound(t *testing.T) {
	a := AdmissionFor(testDevice())
	nmax := a.NMax(videoRequest())
	// 3× oversubscribed at full rate: the modest stride-2 relief the
	// tightened MaxStride allows cannot make Eq. 18 hold.
	ca := ClassAware{A: a, MaxStride: 2}
	d := ca.Admit([][]Request{repeatReq(videoRequest(), 3*nmax)}, 0, 4, videoRequest(), BestEffort)
	if d.Admitted {
		t.Fatal("admitted into a population beyond MaxStride relief")
	}
	if ca.maxStride() != 2 {
		t.Fatalf("maxStride() = %d", ca.maxStride())
	}
	if (ClassAware{A: a}).maxStride() != DefaultMaxStride {
		t.Fatal("zero MaxStride should default")
	}
}

// On a striped array the class-aware controller degrades against the
// candidate's home spindle only: a full spindle triggers shedding even
// when the other spindles are idle, exactly as Striped.Admit rejects.
func TestClassAwareStriped(t *testing.T) {
	a := AdmissionFor(testDevice())
	nmax := a.NMax(videoRequest())
	full := repeatReq(videoRequest(), nmax)
	k, _ := a.KTransient(full)
	ca := ClassAware{A: a, P: 2}
	set := [][]Request{full, nil}
	if d := ca.Admit(set, 0, k, videoRequest(), BestEffort); !d.Admitted || d.Stride < 2 {
		t.Fatalf("full spindle: admitted=%v stride=%d (%s)", d.Admitted, d.Stride, d.Reason)
	}
	if d := ca.Admit(set, 1, k, videoRequest(), BestEffort); !d.Admitted || d.Stride != 1 {
		t.Fatalf("idle spindle: admitted=%v stride=%d (%s)", d.Admitted, d.Stride, d.Reason)
	}
}
