package continuity

// This file lifts §3.4's admission control onto the paper's concurrent
// retrieval architecture (§3.1, degree p). With strand blocks striped
// across p independently scheduled spindles, each spindle runs its own
// sub-round over the requests resident on it, so Eq. 18
//
//	n·α + n·k·β ≤ k·γ
//
// must hold per spindle with n the spindle-resident population — and
// the aggregate stream bound becomes p times the single-spindle n_max
// of Eq. 17. One k governs every spindle's sub-round (the sub-rounds
// join into one logical round), which is sound because transient
// feasibility is monotone in k: for an admitted set, γ − n·β > 0, so
// n·α ≤ k·(γ − n·β) at some k holds at every larger k. Raising k for
// the spindle that needs it therefore never breaks the others, and the
// stepwise transition's intermediate k values stay feasible everywhere.

// Striped evaluates per-spindle admission for an array of degree P.
type Striped struct {
	// A is the per-spindle admission controller: its device parameters
	// (l_max_seek, r_dt) describe one spindle, which the array's
	// logical geometry preserves.
	A Admission
	// P is the degree of concurrency (spindle count).
	P int
}

// NMax is the aggregate stream bound: P spindles each carrying up to
// the single-spindle n_max of Eq. 17 for the template request.
func (s Striped) NMax(template Request) int {
	return s.P * s.A.NMax(template)
}

// Admit decides admission for a disk-bound candidate on an array.
// perSpindle lists the disk-bound requests currently resident on each
// spindle (cache-served followers excluded by the caller). spindle is
// the candidate's home — the spindle holding its first media block —
// or negative when the placement is unknown (records, repositioned
// plays), in which case the candidate must fit on every spindle.
//
// The returned K is the global round granularity: the maximum of the
// per-spindle Eq. 18 solutions, with Steps rebuilt from kOld so the
// caller's stepwise transition covers the whole array.
func (s Striped) Admit(perSpindle [][]Request, spindle, kOld int, candidate Request) Decision {
	if spindle >= len(perSpindle) {
		return Decision{Reason: "striped admission: spindle index out of range"}
	}
	if spindle >= 0 {
		return s.A.Admit(perSpindle[spindle], kOld, candidate)
	}
	var out Decision
	for sp, set := range perSpindle {
		d := s.A.Admit(set, kOld, candidate)
		if !d.Admitted {
			return d
		}
		if sp == 0 || d.K > out.K {
			out = d
		}
	}
	return out
}

// SlackPerSpindle evaluates Eq. 18's measured slack k·γ − n·α − n·k·β
// for each spindle's resident set at the shared k: the per-spindle
// in-round retry budgets. The minimum entry is the array-wide bound a
// conservative caller can charge cross-spindle work against.
func (s Striped) SlackPerSpindle(dst []float64, perSpindle [][]Request, k int) []float64 {
	dst = dst[:0]
	for _, set := range perSpindle {
		dst = append(dst, s.A.SlackSeconds(set, k))
	}
	return dst
}
