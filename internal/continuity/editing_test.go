package continuity

import (
	"testing"
	"testing/quick"
)

func TestCopyBoundFormulas(t *testing.T) {
	// Eq. 19: C = l_max/(2·l_lower); Eq. 20: C = l_max/l_lower.
	sparse, err := CopyBound(SparseDisk, 0.040, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	if sparse != 2 {
		t.Fatalf("sparse bound %d, want 2", sparse)
	}
	dense, err := CopyBound(DenseDisk, 0.040, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	if dense != 4 {
		t.Fatalf("dense bound %d, want 4", dense)
	}
	// Fractional ratios round up.
	if c, _ := CopyBound(DenseDisk, 0.041, 0.010); c != 5 {
		t.Fatalf("ceil broken: %d", c)
	}
}

func TestCopyBoundErrors(t *testing.T) {
	if _, err := CopyBound(SparseDisk, 0.04, 0); err == nil {
		t.Fatal("zero lower bound accepted")
	}
	if _, err := CopyBound(SparseDisk, 0.04, -0.01); err == nil {
		t.Fatal("negative lower bound accepted")
	}
	if _, err := CopyBound(SparseDisk, -0.01, 0.01); err == nil {
		t.Fatal("negative max seek accepted")
	}
}

func TestDenseIsTwiceSparse(t *testing.T) {
	// Property: the dense bound is always at least the sparse bound,
	// and at most one block more than twice it (from the ceilings).
	f := func(rawMax, rawLower uint16) bool {
		maxSeek := float64(rawMax%1000+1) / 1000
		lower := float64(rawLower%100+1) / 1000
		s, err1 := CopyBound(SparseDisk, maxSeek, lower)
		d, err2 := CopyBound(DenseDisk, maxSeek, lower)
		if err1 != nil || err2 != nil {
			return false
		}
		return d >= s && d <= 2*s+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanJunctionCopyPicksCheaperSide(t *testing.T) {
	// The preceding strand has a looser lower bound, so its tail is
	// cheaper to copy: min(C_a, C_b) = C_a (§4.2).
	p, err := PlanJunctionCopy(SparseDisk, 0.040, 0.020, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CopyPreceding {
		t.Fatal("should copy the preceding strand's tail")
	}
	if p.Blocks != p.CA || p.CA > p.CB {
		t.Fatalf("plan %+v", p)
	}
	// Symmetric case.
	p, err = PlanJunctionCopy(SparseDisk, 0.040, 0.005, 0.020)
	if err != nil {
		t.Fatal(err)
	}
	if p.CopyPreceding {
		t.Fatal("should copy the following strand's head")
	}
	if p.Blocks != p.CB {
		t.Fatalf("plan %+v", p)
	}
}

func TestPlanJunctionCopyErrors(t *testing.T) {
	if _, err := PlanJunctionCopy(SparseDisk, 0.04, 0, 0.01); err == nil {
		t.Fatal("bad preceding bound accepted")
	}
	if _, err := PlanJunctionCopy(SparseDisk, 0.04, 0.01, 0); err == nil {
		t.Fatal("bad following bound accepted")
	}
}

func TestOccupancyString(t *testing.T) {
	if SparseDisk.String() != "sparse" || DenseDisk.String() != "dense" {
		t.Fatal("occupancy names")
	}
}

func TestSwitchReadAhead(t *testing.T) {
	m := NTSCVideo() // 30 frames/s
	// h = ⌈l_max · R/q⌉: 38.3 ms of blocks at 10 blocks/s (q=3).
	if h := SwitchReadAhead(0.0383, 3, m); h != 1 {
		t.Fatalf("h = %d, want 1", h)
	}
	// Long-stroke device, single-frame blocks: 158 ms × 30 blk/s.
	if h := SwitchReadAhead(0.158, 1, m); h != 5 {
		t.Fatalf("h = %d, want 5", h)
	}
	if h := SwitchReadAhead(0, 1, m); h != 0 {
		t.Fatalf("h = %d, want 0", h)
	}
}

func TestAvgContinuity(t *testing.T) {
	ac := AvgContinuity{K: 4, Config: Config{Arch: Pipelined}}
	if ac.ReadAheadBlocks() != 4 || ac.Buffers() != 8 {
		t.Fatal("pipelined average-continuity provisioning")
	}
	m := NTSCVideo()
	d := testDevice()
	bound, _ := MaxScattering(ac.Config, 3, m, d)
	if !ac.GroupFeasible(3, bound/2, m, d) {
		t.Fatal("group feasibility below bound")
	}
	if ac.GroupFeasible(3, bound*2, m, d) {
		t.Fatal("group feasibility above bound")
	}
}

func TestFastForwardModel(t *testing.T) {
	m := NTSCVideo()
	d := testDevice()
	cfg := Config{Arch: Pipelined}
	const q = 3
	lds := 0.011

	normal := FastForward{Speed: 1}
	if !normal.Feasible(cfg, q, lds, m, d) {
		t.Fatal("normal speed infeasible")
	}
	// Without skipping, the effective rate scales.
	noSkip := FastForward{Speed: 2}
	if em := noSkip.EffectiveMedia(m); em.Rate != 60 {
		t.Fatalf("effective rate %g", em.Rate)
	}
	if noSkip.EffectiveScattering(lds) != lds {
		t.Fatal("no-skip must not stretch scattering")
	}
	if noSkip.BufferMultiplier() != 2 {
		t.Fatal("no-skip buffer multiplier")
	}
	// With skipping, the rate is unchanged but scattering stretches.
	skip := FastForward{Speed: 3, Skip: true}
	if em := skip.EffectiveMedia(m); em.Rate != 30 {
		t.Fatalf("skip effective rate %g", em.Rate)
	}
	if got := skip.EffectiveScattering(lds); got != 3*lds {
		t.Fatalf("skip scattering %g", got)
	}
	if skip.BufferMultiplier() != 1 {
		t.Fatal("skip buffer multiplier")
	}
	// Somewhere past the device's limit, no-skip fails while skip
	// survives (the §3.3.2 crossover).
	found := false
	for speed := 2.0; speed <= 32; speed *= 2 {
		ns := FastForward{Speed: speed}
		sk := FastForward{Speed: speed, Skip: true}
		if !ns.Feasible(cfg, q, lds, m, d) && sk.Feasible(cfg, q, lds, m, d) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no crossover speed found")
	}
}

func TestSlowMotionAccumulationRate(t *testing.T) {
	m := NTSCVideo()
	// q=3 → 10 blocks/s; half speed consumes 5 → accumulates 5.
	if got := SlowMotionAccumulationRate(3, m, 0.5); got != 5 {
		t.Fatalf("accumulation %g", got)
	}
	if got := SlowMotionAccumulationRate(3, m, 1); got != 0 {
		t.Fatalf("full speed accumulates %g", got)
	}
}
