package continuity

import "fmt"

// This file adds quality-of-service classes to §3.4's admission
// control. The paper's algorithm answers accept/reject; under overload
// the interesting answer is "accept, at reduced quality". The lever is
// §3.3.2's fast-forward-with-skipping machinery run at 1× display
// time: fetching only every stride-th block of a strand and holding
// each fetched block on screen for the whole stride cuts the stream's
// disk charge by ~1/stride while its display clock — and therefore its
// deadlines — stay untouched. A class lattice orders who degrades
// first: best-effort before standard, and premium never.

// Class is a stream's quality-of-service class. Higher values take
// priority: under overload, lower classes are degraded (sub-sampled or
// served cache-only) before higher ones, and freed capacity promotes
// degraded streams back in descending class order.
type Class uint8

const (
	// BestEffort streams are the first demoted under load and the
	// last promoted back.
	BestEffort Class = iota
	// Standard streams degrade only after every best-effort stream
	// has been pushed to its maximum stride.
	Standard
	// Premium streams are never degraded by load: admission either
	// finds them full-rate capacity (shedding lower classes if
	// needed) or rejects them outright.
	Premium

	// NumClasses sizes per-class tables.
	NumClasses = 3
)

// String returns the class's canonical flag spelling.
func (c Class) String() string {
	switch c {
	case BestEffort:
		return "best-effort"
	case Standard:
		return "standard"
	case Premium:
		return "premium"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass parses a canonical class spelling.
func ParseClass(s string) (Class, error) {
	switch s {
	case "best-effort", "besteffort", "be":
		return BestEffort, nil
	case "standard", "std":
		return Standard, nil
	case "premium", "prem":
		return Premium, nil
	}
	return BestEffort, fmt.Errorf("continuity: unknown QoS class %q (want premium, standard, or best-effort)", s)
}

// Degraded returns the admission-control view of a request load-shed
// at the given sub-sampling stride: only every stride-th block is
// fetched, and each fetched block stands in for the stride's worth of
// display time. The per-block transfer and intra-strand positioning
// charges scale by 1/stride (the stream touches the disk that much
// less per round), while the worst-case switch cost in α and the
// display-rate term γ are deliberately left at full strength — a
// degraded stream still costs one inter-strand switch per round and
// still displays at its recorded rate.
func Degraded(r Request, stride int) Request {
	if stride <= 1 {
		return r
	}
	s := float64(stride)
	r.UnitBits /= s
	r.Scattering /= s
	return r
}

// FeasibleTransient is the exported form of Eq. 18's test
// n·α + n·k·β ≤ k·γ: whether the request set is serviceable at k with
// transient-safe headroom. The per-round QoS promotion/demotion pass
// uses it to probe candidate stride assignments against the measured
// slack without re-running the full admission algorithm.
func (a Admission) FeasibleTransient(reqs []Request, k int) bool {
	return a.feasibleTransient(reqs, k)
}

// DefaultMaxStride bounds load shedding: a stream sub-sampled past
// 1/8th of its blocks is closer to a slideshow than a video, so beyond
// this the controller rejects rather than degrades further.
const DefaultMaxStride = 8

// ClassAware layers the QoS class lattice over a base admission
// controller (single device) or a striped array of degree P. It is the
// degradation-side counterpart of CacheAware: where CacheAware admits
// overflow load for free when the cache can serve it (the first-line
// degraded mode — a cache-only follower costs no disk time at all),
// ClassAware admits overflow load at a sub-sampling stride when the
// disk must still be touched.
type ClassAware struct {
	// A is the per-spindle (or single-device) admission controller.
	A Admission
	// P is the spindle count; values < 2 mean a single device.
	P int
	// MaxStride bounds the sub-sampling stride offered to degraded
	// streams; 0 means DefaultMaxStride.
	MaxStride int
}

func (c ClassAware) maxStride() int {
	if c.MaxStride < 2 {
		return DefaultMaxStride
	}
	return c.MaxStride
}

// admitFull runs the base (full-rate) admission for the candidate.
func (c ClassAware) admitFull(perSpindle [][]Request, spindle, kOld int, candidate Request) Decision {
	if c.P > 1 {
		return Striped{A: c.A, P: c.P}.Admit(perSpindle, spindle, kOld, candidate)
	}
	return c.A.Admit(perSpindle[0], kOld, candidate)
}

// Admit runs the class-ordered admission negotiation. perSpindle lists
// the disk-bound requests resident on each spindle — with requests that
// are already degraded listed at their Degraded() charge — and spindle
// locates the candidate as in Striped.Admit (a single device passes
// one set and spindle 0). The candidate is tried at full rate first;
// if Eq. 18 has no room and the class tolerates load shedding
// (standard or best-effort), it is retried at doubling sub-sampling
// strides up to MaxStride. The returned Decision's Stride records the
// admitted quality: 1 is full rate. Premium candidates are never
// degraded here — making room for them by demoting lower classes is
// the storage manager's job, since it owns the live stream table.
func (c ClassAware) Admit(perSpindle [][]Request, spindle, kOld int, candidate Request, class Class) Decision {
	d := c.admitFull(perSpindle, spindle, kOld, candidate)
	if d.Admitted {
		d.Stride = 1
		return d
	}
	if class > Standard {
		return d
	}
	for s := 2; s <= c.maxStride(); s *= 2 {
		if dd := c.admitFull(perSpindle, spindle, kOld, Degraded(candidate, s)); dd.Admitted {
			dd.Stride = s
			return dd
		}
	}
	return d
}
