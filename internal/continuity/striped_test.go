package continuity

import "testing"

func TestStripedNMaxAggregate(t *testing.T) {
	a := AdmissionFor(testDevice())
	tmpl := videoRequest()
	single := a.NMax(tmpl)
	for _, p := range []int{1, 2, 4} {
		s := Striped{A: a, P: p}
		if got := s.NMax(tmpl); got != p*single {
			t.Fatalf("p=%d: aggregate n_max = %d, want %d", p, got, p*single)
		}
	}
}

func TestStripedAdmitPerSpindle(t *testing.T) {
	a := AdmissionFor(testDevice())
	tmpl := videoRequest()
	nmax := a.NMax(tmpl)
	s := Striped{A: a, P: 2}

	// Spindle 0 saturated, spindle 1 empty: a candidate homed on
	// spindle 1 is admitted, one homed on spindle 0 is refused.
	sets := [][]Request{repeatReq(tmpl, nmax), nil}
	if d := s.Admit(sets, 1, 1, tmpl); !d.Admitted {
		t.Fatalf("empty spindle refused: %s", d.Reason)
	}
	if d := s.Admit(sets, 0, 1, tmpl); d.Admitted {
		t.Fatal("saturated spindle admitted past n_max")
	}
	// Unknown placement must fit on every spindle: refused while one
	// spindle is saturated, admitted when both have room.
	if d := s.Admit(sets, -1, 1, tmpl); d.Admitted {
		t.Fatal("unknown placement admitted despite a saturated spindle")
	}
	balanced := [][]Request{repeatReq(tmpl, nmax-1), repeatReq(tmpl, nmax-2)}
	d := s.Admit(balanced, -1, 1, tmpl)
	if !d.Admitted {
		t.Fatalf("unknown placement refused with room everywhere: %s", d.Reason)
	}
	// The global K is the max of the per-spindle solutions — here the
	// fuller spindle 0 dominates — and Steps walk from kOld to K.
	d0 := a.Admit(balanced[0], 1, tmpl)
	d1 := a.Admit(balanced[1], 1, tmpl)
	want := d0.K
	if d1.K > want {
		want = d1.K
	}
	if d.K != want {
		t.Fatalf("global K = %d, want max(per-spindle) = %d", d.K, want)
	}
	if len(d.Steps) > 0 && d.Steps[len(d.Steps)-1] != d.K {
		t.Fatalf("steps end at %d, want %d", d.Steps[len(d.Steps)-1], d.K)
	}
	if d := s.Admit(sets, 2, 1, tmpl); d.Admitted || d.Reason == "" {
		t.Fatal("out-of-range spindle index accepted")
	}
}

// TestStripedKMonotone pins the property the shared-k design relies
// on: a set feasible at k stays feasible at every larger k, so raising
// the global k for one spindle cannot break another.
func TestStripedKMonotone(t *testing.T) {
	a := AdmissionFor(testDevice())
	tmpl := videoRequest()
	nmax := a.NMax(tmpl)
	set := repeatReq(tmpl, nmax)
	k, ok := a.KTransient(set)
	if !ok {
		t.Fatal("n_max set infeasible")
	}
	for dk := 0; dk <= 16; dk++ {
		if a.SlackSeconds(set, k+dk) < 0 {
			t.Fatalf("slack negative at k=%d", k+dk)
		}
	}
}

func TestStripedSlackPerSpindle(t *testing.T) {
	a := AdmissionFor(testDevice())
	tmpl := videoRequest()
	s := Striped{A: a, P: 2}
	sets := [][]Request{repeatReq(tmpl, 2), repeatReq(tmpl, 4)}
	k, ok := a.KTransient(sets[1])
	if !ok {
		t.Fatal("set infeasible")
	}
	var scratch []float64
	got := s.SlackPerSpindle(scratch, sets, k)
	if len(got) != 2 {
		t.Fatalf("%d entries, want 2", len(got))
	}
	// The lighter spindle has more slack left in the same round.
	if got[0] <= got[1] {
		t.Fatalf("slack on 2 streams (%g) not above slack on 4 (%g)", got[0], got[1])
	}
	for sp, sl := range got {
		if want := a.SlackSeconds(sets[sp], k); sl != want {
			t.Fatalf("spindle %d slack %g, want %g", sp, sl, want)
		}
	}
}
