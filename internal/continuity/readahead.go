package continuity

import "math"

// This file implements the rest of §3.3.2: anti-jitter read-ahead for
// average-case continuity, the read-ahead needed before the disk
// switches away during slow-motion playback, and the continuity and
// buffering effects of fast-forward.

// SwitchReadAhead is §3.3.2's h: when buffers fill during slow-motion
// (or pause) the disk switches to another task, after which its head
// may sit anywhere, so resuming pays up to l_max_seek. To keep the
// display from starving across the switch, the disk must have read
// ahead an additional
//
//	h = ⌈ l_max_seek · (R/q) ⌉
//
// blocks, where R/q is the rate at which blocks are played back.
func SwitchReadAhead(maxSeek float64, q int, m Media) int {
	blocksPerSecond := m.Rate / float64(q)
	h := int(math.Ceil(maxSeek * blocksPerSecond))
	if h < 0 {
		h = 0
	}
	return h
}

// AvgContinuity describes relaxed, average-case continuity (§3.3.1):
// instead of requiring every block to arrive by its deadline, the
// requirement is satisfied over groups of K successive blocks, with an
// anti-jitter delay (read-ahead of K blocks) absorbing seek and
// scheduling variation within each group.
type AvgContinuity struct {
	// K is the group size over which continuity is averaged.
	K int
	// Config is the retrieval architecture.
	Config Config
}

// ReadAheadBlocks is the read-ahead needed before playback starts:
// K for sequential and pipelined, p·K for concurrent (§3.3.2).
func (ac AvgContinuity) ReadAheadBlocks() int { return ac.Config.ReadAhead(ac.K) }

// Buffers is the buffer count: equal to the read-ahead for sequential
// and concurrent, and twice it for pipelined (one set holding blocks
// being displayed, one set receiving transfers) — §3.3.2.
func (ac AvgContinuity) Buffers() int { return ac.Config.AvgBuffers(ac.K) }

// GroupFeasible reports whether a group of K blocks can be retrieved
// within the playback duration of the previous group of K blocks:
// K·(l_ds + q·s/r_dt) ≤ K·(q/R) for pipelined, with the architecture
// adjustments of Eqs. 1–3 applied per block. Because both sides scale
// by K, the group test equals the strict per-block test on averages;
// the value of K lies in absorbing jitter, which the simulator
// (internal/msm) measures.
func (ac AvgContinuity) GroupFeasible(q int, lds float64, m Media, d Device) bool {
	return Feasible(ac.Config, q, lds, m, d)
}

// FastForward describes accelerated playback at Speed× the recording
// rate (§3.3.2). Without skipping, every block is still displayed, so
// both the continuity requirement (blocks must arrive Speed× faster)
// and the buffering requirement grow. With skipping, only one of every
// ⌈Speed⌉ blocks is retrieved and displayed, so the block arrival rate
// is unchanged but the disk must hop over skipped blocks, stretching
// the inter-retrieved-block separation to ⌈Speed⌉·l_ds: only the
// continuity requirement grows.
type FastForward struct {
	Speed float64
	Skip  bool
}

// EffectiveMedia is the medium as the continuity equations see it
// during fast-forward: without skipping, the playback rate is
// Speed·R; with skipping, the rate is unchanged.
func (ff FastForward) EffectiveMedia(m Media) Media {
	if !ff.Skip {
		m.Rate *= ff.Speed
	}
	return m
}

// EffectiveScattering is the scattering parameter as seen during
// fast-forward: skipping hops over ⌈Speed⌉−1 blocks, so successive
// retrieved blocks are up to ⌈Speed⌉ scattering gaps apart.
func (ff FastForward) EffectiveScattering(lds float64) float64 {
	if !ff.Skip {
		return lds
	}
	return math.Ceil(ff.Speed) * lds
}

// Feasible reports whether continuous fast-forward at this speed is
// possible for a strand stored at (q, lds) under cfg.
func (ff FastForward) Feasible(cfg Config, q int, lds float64, m Media, d Device) bool {
	return Feasible(cfg, q, ff.EffectiveScattering(lds), ff.EffectiveMedia(m), d)
}

// BufferMultiplier is the growth in buffering relative to normal-rate
// playback: Speed× without skipping (blocks arrive faster than the
// original-rate display device frees buffers at the fastest required
// display rate), 1× with skipping (§3.3.2).
func (ff FastForward) BufferMultiplier() float64 {
	if ff.Skip {
		return 1
	}
	return ff.Speed
}

// SlowMotionAccumulationRate is the rate (blocks/second) at which
// retrieved blocks accumulate in buffers during slow-motion playback
// at factor slow < 1 of the recording rate, when retrieval proceeds at
// the full continuity-satisfying rate: retrieval delivers R/q blocks
// per second while display consumes slow·R/q (§3.3.2: continuity
// "over-satisfied … leading to accumulation of media blocks in
// buffers").
func SlowMotionAccumulationRate(q int, m Media, slow float64) float64 {
	full := m.Rate / float64(q)
	return full - slow*full
}
