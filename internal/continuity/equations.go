package continuity

import (
	"fmt"
	"math"
)

// Arch selects one of the three retrieval architectures of §3.1.
type Arch int

const (
	// Pipelined overlaps the read of one block with the display of
	// the previous one, using two device buffers (Figure 2, Eq. 2).
	// It is the zero value: the architecture the paper's prototype
	// uses and the default everywhere in this implementation.
	Pipelined Arch = iota
	// Sequential serializes disk read and display: each block is
	// fully transferred, then fully displayed, before the next read
	// begins (Figure 1, Eq. 1).
	Sequential
	// Concurrent issues p disk reads in parallel into p device
	// buffers (Figure 3, Eq. 3).
	Concurrent
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case Sequential:
		return "sequential"
	case Pipelined:
		return "pipelined"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// Config is an architecture plus its degree of concurrency.
type Config struct {
	Arch Arch
	// P is the degree of concurrency (number of parallel disk
	// accesses) for the Concurrent architecture; ignored otherwise.
	P int
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if c.Arch == Concurrent && c.P < 2 {
		return fmt.Errorf("continuity: concurrent architecture needs p ≥ 2, have %d", c.P)
	}
	if c.Arch != Sequential && c.Arch != Pipelined && c.Arch != Concurrent {
		return fmt.Errorf("continuity: unknown architecture %d", int(c.Arch))
	}
	return nil
}

// StrictBuffers is the number of device buffers needed to satisfy the
// strict continuity requirement: 1 (sequential), 2 (pipelined), or p
// (concurrent) — §3.3.2.
func (c Config) StrictBuffers() int {
	switch c.Arch {
	case Sequential:
		return 1
	case Pipelined:
		return 2
	default:
		return c.P
	}
}

// AvgBuffers is the number of buffers needed when continuity is
// satisfied over an average of k successive blocks: k (sequential),
// 2k (pipelined), or pk (concurrent) — §3.3.2.
func (c Config) AvgBuffers(k int) int {
	switch c.Arch {
	case Sequential:
		return k
	case Pipelined:
		return 2 * k
	default:
		return c.P * k
	}
}

// ReadAhead is the read-ahead depth (in blocks) needed to satisfy
// continuity over an average of k blocks: k for sequential and
// pipelined, pk for concurrent — §3.3.2.
func (c Config) ReadAhead(k int) int {
	if c.Arch == Concurrent {
		return c.P * k
	}
	return k
}

// ReadTime is the total delay to read one block of q units from disk:
// l_ds + q·s/r_dt (the paper's "total delay to read a video block").
func ReadTime(q int, m Media, lds float64, d Device) float64 {
	return lds + d.TransferTime(m.BlockBits(q))
}

// Feasible evaluates the continuity requirement of §3.1 for a single
// strand of medium m stored at granularity q with scattering parameter
// lds on device d:
//
//	Sequential (Eq. 1):  l_ds + q·s/r_dt + q·s/R_dp ≤ q/R
//	Pipelined  (Eq. 2):  l_ds + q·s/r_dt            ≤ q/R
//	Concurrent (Eq. 3):  l_ds + q·s/r_dt ≤ (p−1)·q/R
func Feasible(cfg Config, q int, lds float64, m Media, d Device) bool {
	return Slack(cfg, q, lds, m, d) >= 0
}

// Slack is the margin (seconds) by which the continuity requirement is
// satisfied; negative means infeasible. The equality point (zero
// slack) is the paper's "automatic synchronization" condition (§3.2):
// the effective access time per block equals its playback duration.
func Slack(cfg Config, q int, lds float64, m Media, d Device) float64 {
	read := ReadTime(q, m, lds, d)
	play := m.PlaybackDuration(q)
	switch cfg.Arch {
	case Sequential:
		return play - read - m.DisplayTime(q)
	case Pipelined:
		return play - read
	default:
		return float64(cfg.P-1)*play - read
	}
}

// MaxScattering solves the continuity equation for the largest
// scattering parameter l_ds (seconds) permitting continuous retrieval
// of medium m at granularity q (§3.3.4: "the upper bound of the
// scattering parameter is obtained by direct substitution in the
// continuity equations"). The second result is false when no
// non-negative scattering works, i.e. the device cannot sustain the
// medium at this granularity even with contiguous blocks.
func MaxScattering(cfg Config, q int, m Media, d Device) (float64, bool) {
	play := m.PlaybackDuration(q)
	xfer := d.TransferTime(m.BlockBits(q))
	var lds float64
	switch cfg.Arch {
	case Sequential:
		lds = play - xfer - m.DisplayTime(q)
	case Pipelined:
		lds = play - xfer
	default:
		lds = float64(cfg.P-1)*play - xfer
	}
	if lds < 0 {
		return lds, false
	}
	return lds, true
}

// MinGranularity finds the smallest granularity q (units/block) whose
// continuity equation is satisfied with scattering parameter lds. The
// second result is false when no granularity works: larger blocks only
// help when the per-unit budget is positive, so infeasibility at any q
// implies infeasibility at all q.
func MinGranularity(cfg Config, lds float64, m Media, d Device) (int, bool) {
	// Per-unit slack: each unit contributes (1/R − s/r_dt − [s/R_dp])
	// [scaled by (p−1) on the playback side for concurrent]; the block
	// must amortize the constant cost lds.
	perUnit := perUnitBudget(cfg, m, d)
	if perUnit <= 0 {
		return 0, false
	}
	q := int(math.Ceil(lds / perUnit))
	if q < 1 {
		q = 1
	}
	// Guard against floating-point edge: ensure feasibility, walking
	// up at most a few steps.
	for !Feasible(cfg, q, lds, m, d) {
		q++
		if q > 1<<30 {
			return 0, false
		}
	}
	return q, true
}

func perUnitBudget(cfg Config, m Media, d Device) float64 {
	playPerUnit := 1 / m.Rate
	xferPerUnit := d.TransferTime(m.UnitBits)
	switch cfg.Arch {
	case Sequential:
		disp := 0.0
		if m.DisplayRate != 0 {
			disp = m.UnitBits / m.DisplayRate
		}
		return playPerUnit - xferPerUnit - disp
	case Pipelined:
		return playPerUnit - xferPerUnit
	default:
		return float64(cfg.P-1)*playPerUnit - xferPerUnit
	}
}

// GranularityFromBuffers applies §3.3.4's device-buffer rule for
// direct (disk-to-device) transfer: with an internal display buffer of
// f frames, sequential retrieval admits q ≤ f, pipelined q ≤ f/2, and
// p-concurrent q ≤ f/p. It returns the largest admissible granularity.
func GranularityFromBuffers(cfg Config, deviceBufferUnits int) int {
	if deviceBufferUnits < 1 {
		return 0
	}
	switch cfg.Arch {
	case Sequential:
		return deviceBufferUnits
	case Pipelined:
		return deviceBufferUnits / 2
	default:
		return deviceBufferUnits / cfg.P
	}
}

// Derivation bundles the outcome of the §3.3.4 procedure for one
// strand: choose the granularity from the device buffers, then obtain
// the scattering bound by substitution.
type Derivation struct {
	Config        Config
	Media         Media
	Device        Device
	Granularity   int     // q: units per block
	MaxScattering float64 // upper bound on l_ds (seconds)
	// MinScattering is the lower bound on l_ds imposed by the editing
	// algorithm (§6.1: "the algorithm that bounds the amount of
	// copying necessary during editing operations defines the lower
	// bound"); the caller chooses it, defaulting to the device's
	// minimum realizable access time.
	MinScattering float64
}

// Derive performs the §3.3.4 determination: granularity from the
// display device's internal buffer size (in units), then the
// scattering upper bound by substitution in the continuity equation.
// The scattering lower bound defaults to the device's MinAccess.
func Derive(cfg Config, deviceBufferUnits int, m Media, d Device) (Derivation, error) {
	if err := cfg.Validate(); err != nil {
		return Derivation{}, err
	}
	if err := m.Validate(); err != nil {
		return Derivation{}, err
	}
	if err := d.Validate(); err != nil {
		return Derivation{}, err
	}
	q := GranularityFromBuffers(cfg, deviceBufferUnits)
	if q < 1 {
		return Derivation{}, fmt.Errorf("continuity: device buffer of %d units admits no granularity under %v", deviceBufferUnits, cfg.Arch)
	}
	lds, ok := MaxScattering(cfg, q, m, d)
	if !ok {
		return Derivation{}, fmt.Errorf("continuity: medium %q (%.3g bit/s) infeasible at q=%d on device with r_dt=%.3g bit/s under %v",
			m.Name, m.BitRate(), q, d.TransferRate, cfg.Arch)
	}
	min := d.MinAccess
	if min > lds {
		min = lds
	}
	return Derivation{
		Config:        cfg,
		Media:         m,
		Device:        d,
		Granularity:   q,
		MaxScattering: lds,
		MinScattering: min,
	}, nil
}

// BlockDuration is the playback duration of one block under this
// derivation.
func (dv Derivation) BlockDuration() float64 {
	return dv.Media.PlaybackDuration(dv.Granularity)
}

// BlockBits is the size of one media block in bits.
func (dv Derivation) BlockBits() float64 {
	return dv.Media.BlockBits(dv.Granularity)
}
