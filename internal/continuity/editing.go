package continuity

import (
	"fmt"
	"math"
)

// This file implements §4.2: maintenance of the scattering parameter
// while editing. Editing operations make a rope a sequence of
// intervals of immutable strands; within each interval the scattering
// parameter is bounded, but the hop from the last block of one
// interval to the first block of the next may exceed the bound. The
// paper bounds the number of blocks that must be copied (into a fresh
// strand, preserving immutability) to smooth such a junction:
//
//	sparse disk (Eq. 19):  C_b = l_max_seek / (2·l_lower)
//	dense  disk (Eq. 20):  C_b = l_max_seek / l_lower
//
// where l_lower is the lower bound on the destination strand's
// scattering parameter. The symmetric C_a redistributes the tail of
// the preceding strand instead; the editor copies min(C_a, C_b).

// Occupancy describes how full the disk region around a junction is,
// selecting which copy bound applies.
type Occupancy int

const (
	// SparseDisk means free space is plentiful near the junction, so
	// redistributed blocks can be placed mid-gap (Eq. 19).
	SparseDisk Occupancy = iota
	// DenseDisk means the disk is nearly full and redistribution must
	// reuse the strands' own slots (Eq. 20).
	DenseDisk
)

// String names the occupancy regime.
func (o Occupancy) String() string {
	if o == SparseDisk {
		return "sparse"
	}
	return "dense"
}

// CopyBound is the maximum number of blocks of the following strand
// that must be copied to guarantee the junction's separation satisfies
// the scattering bounds: Eq. 19 (sparse) or Eq. 20 (dense). lLower is
// the lower bound on the strand's scattering parameter in seconds;
// maxSeek is l_max_seek. A non-positive lLower would make the bound
// meaningless, so it is an error.
func CopyBound(occ Occupancy, maxSeek, lLower float64) (int, error) {
	if lLower <= 0 {
		return 0, fmt.Errorf("continuity: scattering lower bound %g must be positive for the editing copy bound", lLower)
	}
	if maxSeek < 0 {
		return 0, fmt.Errorf("continuity: negative max seek %g", maxSeek)
	}
	m := maxSeek / lLower
	var c float64
	if occ == SparseDisk {
		c = m / 2
	} else {
		c = m
	}
	n := int(math.Ceil(c))
	if n < 0 {
		n = 0
	}
	return n, nil
}

// JunctionCopyPlan chooses which side of an edit junction to
// redistribute: the last C_a blocks of the preceding strand or the
// first C_b blocks of the following strand — "in practice, the actual
// number of blocks that needs to be copied is the minimum of C_a and
// C_b" (§4.2).
type JunctionCopyPlan struct {
	// CopyPreceding is true when the tail of the preceding strand is
	// the cheaper side to copy.
	CopyPreceding bool
	// Blocks is the number of blocks to copy, min(C_a, C_b).
	Blocks int
	// CA and CB are the per-side bounds.
	CA, CB int
}

// PlanJunctionCopy computes the copy plan for a junction between a
// preceding strand with scattering lower bound aLower and a following
// strand with lower bound bLower, under the given occupancy.
func PlanJunctionCopy(occ Occupancy, maxSeek, aLower, bLower float64) (JunctionCopyPlan, error) {
	ca, err := CopyBound(occ, maxSeek, aLower)
	if err != nil {
		return JunctionCopyPlan{}, fmt.Errorf("preceding strand: %w", err)
	}
	cb, err := CopyBound(occ, maxSeek, bLower)
	if err != nil {
		return JunctionCopyPlan{}, fmt.Errorf("following strand: %w", err)
	}
	p := JunctionCopyPlan{CA: ca, CB: cb}
	if ca < cb {
		p.CopyPreceding = true
		p.Blocks = ca
	} else {
		p.Blocks = cb
	}
	return p, nil
}
