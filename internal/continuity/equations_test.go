package continuity

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// testDevice is a disk of the paper's class: ~55 Mbit/s transfer,
// 38 ms worst-case access.
func testDevice() Device {
	return Device{TransferRate: 55e6, MaxAccess: 0.0383, MinAccess: 0.0103}
}

func TestMediaValidate(t *testing.T) {
	if err := NTSCVideo().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TelephoneAudio().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := HDTVVideo().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Media{
		{Name: "x", UnitBits: 0, Rate: 30},
		{Name: "x", UnitBits: 8, Rate: 0},
		{Name: "x", UnitBits: 8, Rate: 30, DisplayRate: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad media %d accepted", i)
		}
	}
}

func TestDeviceValidate(t *testing.T) {
	if err := testDevice().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Device{
		{TransferRate: 0, MaxAccess: 1},
		{TransferRate: 1, MaxAccess: -1},
		{TransferRate: 1, MaxAccess: 0.1, MinAccess: 0.2},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad device %d accepted", i)
		}
	}
}

func TestMediaQuantities(t *testing.T) {
	m := Media{Name: "v", UnitBits: 1000, Rate: 25, DisplayRate: 50000}
	if m.BitRate() != 25000 {
		t.Fatalf("bit rate %g", m.BitRate())
	}
	if m.BlockBits(4) != 4000 {
		t.Fatalf("block bits %g", m.BlockBits(4))
	}
	if m.PlaybackDuration(5) != 0.2 {
		t.Fatalf("playback %g", m.PlaybackDuration(5))
	}
	if m.DisplayTime(4) != 4000.0/50000 {
		t.Fatalf("display %g", m.DisplayTime(4))
	}
	m.DisplayRate = 0
	if m.DisplayTime(4) != 0 {
		t.Fatal("unmodeled display path must cost zero")
	}
}

func TestArchOrderingOfScatteringBounds(t *testing.T) {
	// For any granularity, pipelined admits at least as much
	// scattering as sequential, and concurrent (p≥2) at least as
	// much as pipelined.
	m := NTSCVideo()
	d := testDevice()
	for q := 1; q <= 32; q *= 2 {
		seq, okS := MaxScattering(Config{Arch: Sequential}, q, m, d)
		pipe, okP := MaxScattering(Config{Arch: Pipelined}, q, m, d)
		conc, okC := MaxScattering(Config{Arch: Concurrent, P: 2}, q, m, d)
		if !okS || !okP || !okC {
			t.Fatalf("q=%d: unexpected infeasibility", q)
		}
		if !(seq <= pipe && pipe <= conc) {
			t.Fatalf("q=%d: bounds not ordered: seq %g pipe %g conc %g", q, seq, pipe, conc)
		}
	}
}

func TestFeasibleMatchesMaxScattering(t *testing.T) {
	// Property: Feasible is true exactly up to MaxScattering.
	m := NTSCVideo()
	d := testDevice()
	cfgs := []Config{{Arch: Sequential}, {Arch: Pipelined}, {Arch: Concurrent, P: 4}}
	f := func(rawQ uint8, rawFrac uint8, rawCfg uint8) bool {
		q := int(rawQ)%32 + 1
		cfg := cfgs[int(rawCfg)%len(cfgs)]
		bound, ok := MaxScattering(cfg, q, m, d)
		if !ok {
			return true
		}
		// Stay strictly below the bound: frac = 1.0 would probe the
		// float boundary itself, where Feasible may round either way.
		frac := float64(rawFrac) / 256 // in [0,1)
		below := bound * frac
		above := bound + 0.001 + bound*frac
		return Feasible(cfg, q, below, m, d) && !Feasible(cfg, q, above, m, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSlackSignAgreement(t *testing.T) {
	m := NTSCVideo()
	d := testDevice()
	cfg := Config{Arch: Pipelined}
	bound, _ := MaxScattering(cfg, 3, m, d)
	if s := Slack(cfg, 3, bound, m, d); math.Abs(s) > 1e-9 {
		t.Fatalf("slack at the bound should be ~0, got %g", s)
	}
	if s := Slack(cfg, 3, bound/2, m, d); s <= 0 {
		t.Fatal("slack below bound should be positive")
	}
	if s := Slack(cfg, 3, bound*2, m, d); s >= 0 {
		t.Fatal("slack above bound should be negative")
	}
}

func TestInfeasibleMediumOnSlowDevice(t *testing.T) {
	// HDTV at 2.5 Gbit/s cannot run on a 55 Mbit/s device.
	m := HDTVVideo()
	d := testDevice()
	if _, ok := MaxScattering(Config{Arch: Pipelined}, 4, m, d); ok {
		t.Fatal("HDTV feasible on a 55 Mbit/s disk?")
	}
	if _, ok := MinGranularity(Config{Arch: Pipelined}, 0.001, m, d); ok {
		t.Fatal("no granularity can save an oversubscribed device")
	}
}

func TestMinGranularityInvertsFeasibility(t *testing.T) {
	m := NTSCVideo()
	d := testDevice()
	cfg := Config{Arch: Pipelined}
	for _, lds := range []float64{0.001, 0.01, 0.02, 0.0383} {
		q, ok := MinGranularity(cfg, lds, m, d)
		if !ok {
			t.Fatalf("lds=%g infeasible", lds)
		}
		if !Feasible(cfg, q, lds, m, d) {
			t.Fatalf("q=%d not feasible at lds=%g", q, lds)
		}
		if q > 1 && Feasible(cfg, q-1, lds, m, d) {
			t.Fatalf("q=%d not minimal at lds=%g", q, lds)
		}
	}
}

func TestGranularityFromBuffers(t *testing.T) {
	cases := []struct {
		cfg  Config
		buf  int
		want int
	}{
		{Config{Arch: Sequential}, 6, 6},
		{Config{Arch: Pipelined}, 6, 3},
		{Config{Arch: Concurrent, P: 3}, 6, 2},
		{Config{Arch: Pipelined}, 0, 0},
	}
	for i, c := range cases {
		if got := GranularityFromBuffers(c.cfg, c.buf); got != c.want {
			t.Errorf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

func TestBufferRules(t *testing.T) {
	// §3.3.2: strict 1/2/p buffers; average k/2k/pk; read-ahead k/k/pk.
	seq := Config{Arch: Sequential}
	pipe := Config{Arch: Pipelined}
	conc := Config{Arch: Concurrent, P: 5}
	if seq.StrictBuffers() != 1 || pipe.StrictBuffers() != 2 || conc.StrictBuffers() != 5 {
		t.Fatal("strict buffer rule")
	}
	if seq.AvgBuffers(7) != 7 || pipe.AvgBuffers(7) != 14 || conc.AvgBuffers(7) != 35 {
		t.Fatal("average buffer rule")
	}
	if seq.ReadAhead(7) != 7 || pipe.ReadAhead(7) != 7 || conc.ReadAhead(7) != 35 {
		t.Fatal("read-ahead rule")
	}
}

func TestDerive(t *testing.T) {
	m := NTSCVideo()
	d := testDevice()
	dv, err := Derive(Config{Arch: Pipelined}, 6, m, d)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Granularity != 3 {
		t.Fatalf("granularity %d, want 3 (pipelined, 6-frame buffer)", dv.Granularity)
	}
	want := m.PlaybackDuration(3) - d.TransferTime(m.BlockBits(3))
	if math.Abs(dv.MaxScattering-want) > 1e-12 {
		t.Fatalf("scattering %g, want %g", dv.MaxScattering, want)
	}
	if dv.MinScattering != d.MinAccess {
		t.Fatalf("min scattering %g", dv.MinScattering)
	}
	if dv.BlockDuration() != m.PlaybackDuration(3) {
		t.Fatal("block duration")
	}
	// Errors propagate.
	if _, err := Derive(Config{Arch: Concurrent, P: 1}, 6, m, d); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := Derive(Config{Arch: Pipelined}, 1, m, d); err == nil {
		t.Fatal("buffer too small for pipelined q ≥ 1 accepted")
	}
	if _, err := Derive(Config{Arch: Pipelined}, 6, HDTVVideo(), d); err == nil {
		t.Fatal("infeasible medium accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Arch: Concurrent, P: 1}).Validate(); err == nil {
		t.Fatal("concurrent p=1 accepted")
	}
	if err := (Config{Arch: Arch(9)}).Validate(); err == nil {
		t.Fatal("unknown arch accepted")
	}
	if err := (Config{Arch: Pipelined}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestArchString(t *testing.T) {
	if Sequential.String() != "sequential" || Pipelined.String() != "pipelined" || Concurrent.String() != "concurrent" {
		t.Fatal("arch names")
	}
}

func TestSecondsDurationRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		d := time.Duration(raw) * time.Microsecond
		if d < 0 {
			d = -d
		}
		return Duration(Seconds(d)) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
