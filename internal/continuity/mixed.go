package continuity

import (
	"fmt"
	"math"
)

// This file implements §3.3.3: storing multiple media strands — the
// continuity equations for one audio plus one video component under
// homogeneous blocks (Eqs. 4 and 5), and the heterogeneous-block /
// adjacent-placement case they reduce to (Eq. 6). The paper derives
// these for the pipelined architecture; that is what is modeled here.

// AVLayout selects how one audio and one video component share disk
// blocks (§1.1, §3.3.3).
type AVLayout int

const (
	// HomogeneousBlocks stores each medium in its own blocks; the
	// file system maintains explicit temporal relationships.
	HomogeneousBlocks AVLayout = iota
	// HeterogeneousBlocks stores both media within the same block,
	// giving implicit inter-media synchronization at the cost of
	// combining on storage and separating on retrieval.
	HeterogeneousBlocks
)

// String names the layout.
func (l AVLayout) String() string {
	if l == HomogeneousBlocks {
		return "homogeneous"
	}
	return "heterogeneous"
}

// AVDurationRatio is the paper's n: the playback duration of an audio
// block divided by that of a video block. An audio block is retrieved
// once every n video blocks.
func AVDurationRatio(qv int, video Media, qa int, audio Media) float64 {
	return audio.PlaybackDuration(qa) / video.PlaybackDuration(qv)
}

// AVSlack evaluates the mixed audio+video continuity requirement for
// pipelined retrieval, returning the slack in seconds (negative means
// infeasible).
//
// Homogeneous blocks with audio/video duration ratio n (Eq. 4): over
// the playback of n video blocks the disk must deliver n video blocks
// and one audio block, each access paying the scattering parameter:
//
//	(n+1)·l_ds + n·q_v·s_v/r_dt + q_a·s_a/r_dt ≤ n·q_v/R_v
//
// With n = 1 this is Eq. 5. Heterogeneous blocks — or homogeneous
// blocks scattered so the audio block is adjacent to its video block
// (l_ds = 0 between them) — reduce to Eq. 6:
//
//	l_ds + (q_v·s_v + q_a·s_a)/r_dt ≤ q_v/R_v
func AVSlack(layout AVLayout, qv int, video Media, qa int, audio Media, lds float64, d Device) float64 {
	switch layout {
	case HomogeneousBlocks:
		n := AVDurationRatio(qv, video, qa, audio)
		read := (n+1)*lds +
			d.TransferTime(n*video.BlockBits(qv)) +
			d.TransferTime(audio.BlockBits(qa))
		return n*video.PlaybackDuration(qv) - read
	default:
		read := lds + d.TransferTime(video.BlockBits(qv)+audio.BlockBits(qa))
		return video.PlaybackDuration(qv) - read
	}
}

// AVFeasible reports whether the mixed audio+video continuity
// requirement holds. The comparison carries a picosecond tolerance:
// AVMaxScattering solves the linear slack equation by division and
// AVSlack re-multiplies, so the solved bound can land a few ULPs below
// exact zero slack without being infeasible in any physical sense.
func AVFeasible(layout AVLayout, qv int, video Media, qa int, audio Media, lds float64, d Device) bool {
	const eps = 1e-12 // seconds
	return AVSlack(layout, qv, video, qa, audio, lds, d) >= -eps
}

// AVMaxScattering solves the mixed-media continuity equation for the
// largest admissible scattering parameter. The second result is false
// when even contiguous blocks cannot sustain the pair.
func AVMaxScattering(layout AVLayout, qv int, video Media, qa int, audio Media, d Device) (float64, bool) {
	var lds float64
	switch layout {
	case HomogeneousBlocks:
		n := AVDurationRatio(qv, video, qa, audio)
		budget := n*video.PlaybackDuration(qv) -
			d.TransferTime(n*video.BlockBits(qv)) -
			d.TransferTime(audio.BlockBits(qa))
		lds = budget / (n + 1)
	default:
		lds = video.PlaybackDuration(qv) -
			d.TransferTime(video.BlockBits(qv)+audio.BlockBits(qa))
	}
	if lds < 0 {
		return lds, false
	}
	return lds, true
}

// MatchedAudioGranularity returns the audio granularity q_a whose block
// duration equals that of a video block of granularity q_v (the n = 1
// case of Eq. 5, and the natural pairing for heterogeneous blocks).
func MatchedAudioGranularity(qv int, video Media, audio Media) int {
	qa := int(math.Round(video.PlaybackDuration(qv) * audio.Rate))
	if qa < 1 {
		qa = 1
	}
	return qa
}

// AVDerivation is the outcome of deriving a mixed audio+video layout.
type AVDerivation struct {
	Layout         AVLayout
	VideoGran      int
	AudioGran      int
	DurationRatio  float64
	MaxScattering  float64
	VideoBlockBits float64
	AudioBlockBits float64
}

// DeriveAV derives the scattering bound for storing one audio and one
// video strand under the given layout, with the audio granularity
// matched to dRatio video-block durations (dRatio ≥ 1).
func DeriveAV(layout AVLayout, qv int, video, audio Media, dRatio float64, d Device) (AVDerivation, error) {
	if qv < 1 {
		return AVDerivation{}, fmt.Errorf("continuity: video granularity %d < 1", qv)
	}
	if dRatio < 1 {
		return AVDerivation{}, fmt.Errorf("continuity: audio/video duration ratio %g < 1", dRatio)
	}
	qa := int(math.Round(dRatio * video.PlaybackDuration(qv) * audio.Rate))
	if qa < 1 {
		qa = 1
	}
	lds, ok := AVMaxScattering(layout, qv, video, qa, audio, d)
	if !ok {
		return AVDerivation{}, fmt.Errorf("continuity: audio+video pair infeasible under %v layout (deficit %.3g s)", layout, lds)
	}
	return AVDerivation{
		Layout:         layout,
		VideoGran:      qv,
		AudioGran:      qa,
		DurationRatio:  AVDurationRatio(qv, video, qa, audio),
		MaxScattering:  lds,
		VideoBlockBits: video.BlockBits(qv),
		AudioBlockBits: audio.BlockBits(qa),
	}, nil
}
