package continuity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAVDurationRatio(t *testing.T) {
	video := NTSCVideo()      // 30 units/s
	audio := TelephoneAudio() // 8000 units/s
	qv, qa := 3, 800          // 0.1 s video block, 0.1 s audio block
	if n := AVDurationRatio(qv, video, qa, audio); n != 1 {
		t.Fatalf("ratio %g, want 1", n)
	}
	if n := AVDurationRatio(qv, video, 2*qa, audio); n != 2 {
		t.Fatalf("ratio %g, want 2", n)
	}
}

func TestMatchedAudioGranularity(t *testing.T) {
	video := NTSCVideo()
	audio := TelephoneAudio()
	if qa := MatchedAudioGranularity(3, video, audio); qa != 800 {
		t.Fatalf("matched q_a %d, want 800", qa)
	}
	// Tiny video blocks still yield at least one sample.
	fast := Media{Name: "v", UnitBits: 8, Rate: 1e9}
	if qa := MatchedAudioGranularity(1, fast, audio); qa != 1 {
		t.Fatalf("matched q_a %d, want clamp to 1", qa)
	}
}

func TestHeterogeneousDominatesHomogeneous(t *testing.T) {
	// Eq. 6's single scattering gap always beats Eq. 5's two gaps:
	// the heterogeneous bound is at least the homogeneous n=1 bound.
	video := NTSCVideo()
	audio := TelephoneAudio()
	d := testDevice()
	for _, qv := range []int{1, 2, 3, 6, 12} {
		qa := MatchedAudioGranularity(qv, video, audio)
		hom, okH := AVMaxScattering(HomogeneousBlocks, qv, video, qa, audio, d)
		het, okT := AVMaxScattering(HeterogeneousBlocks, qv, video, qa, audio, d)
		if !okH || !okT {
			t.Fatalf("qv=%d infeasible", qv)
		}
		if het < hom {
			t.Fatalf("qv=%d: heterogeneous bound %g below homogeneous %g", qv, het, hom)
		}
	}
}

func TestEq5ReducesToEq4AtN1(t *testing.T) {
	// With n = 1 the homogeneous equation is exactly Eq. 5:
	// 2·l_ds + (q_v·s_v + q_a·s_a)/r_dt ≤ q_v/R_v.
	video := NTSCVideo()
	audio := TelephoneAudio()
	d := testDevice()
	qv := 3
	qa := MatchedAudioGranularity(qv, video, audio)
	bound, ok := AVMaxScattering(HomogeneousBlocks, qv, video, qa, audio, d)
	if !ok {
		t.Fatal("infeasible")
	}
	want := (video.PlaybackDuration(qv) - d.TransferTime(video.BlockBits(qv)+audio.BlockBits(qa))) / 2
	if math.Abs(bound-want) > 1e-12 {
		t.Fatalf("n=1 homogeneous bound %g, want Eq. 5's %g", bound, want)
	}
}

func TestAVFeasibleMatchesBound(t *testing.T) {
	video := NTSCVideo()
	audio := TelephoneAudio()
	d := testDevice()
	f := func(rawQ uint8, rawLayout bool, rawFrac uint8) bool {
		qv := int(rawQ)%12 + 1
		layout := HomogeneousBlocks
		if rawLayout {
			layout = HeterogeneousBlocks
		}
		qa := MatchedAudioGranularity(qv, video, audio)
		bound, ok := AVMaxScattering(layout, qv, video, qa, audio, d)
		if !ok {
			return true
		}
		frac := float64(rawFrac) / 255
		return AVFeasible(layout, qv, video, qa, audio, bound*frac, d) &&
			!AVFeasible(layout, qv, video, qa, audio, bound+0.001, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargerAudioBlocksRelaxHomogeneousBound(t *testing.T) {
	// Growing n (audio blocks covering more video blocks) amortizes
	// the extra audio gap, monotonically relaxing the bound.
	video := NTSCVideo()
	audio := TelephoneAudio()
	d := testDevice()
	qv := 3
	prev := -1.0
	for _, n := range []float64{1, 2, 4, 8} {
		dv, err := DeriveAV(HomogeneousBlocks, qv, video, audio, n, d)
		if err != nil {
			t.Fatal(err)
		}
		if dv.MaxScattering <= prev {
			t.Fatalf("bound not increasing at n=%g: %g ≤ %g", n, dv.MaxScattering, prev)
		}
		prev = dv.MaxScattering
	}
}

func TestDeriveAVErrors(t *testing.T) {
	video := NTSCVideo()
	audio := TelephoneAudio()
	d := testDevice()
	if _, err := DeriveAV(HomogeneousBlocks, 0, video, audio, 1, d); err == nil {
		t.Fatal("qv=0 accepted")
	}
	if _, err := DeriveAV(HomogeneousBlocks, 3, video, audio, 0.5, d); err == nil {
		t.Fatal("ratio < 1 accepted")
	}
	slow := Device{TransferRate: 1e3, MaxAccess: 0.01}
	if _, err := DeriveAV(HomogeneousBlocks, 3, video, audio, 1, slow); err == nil {
		t.Fatal("infeasible pair accepted")
	}
}

func TestAVLayoutString(t *testing.T) {
	if HomogeneousBlocks.String() != "homogeneous" || HeterogeneousBlocks.String() != "heterogeneous" {
		t.Fatal("layout names")
	}
}
