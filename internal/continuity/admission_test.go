package continuity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// videoRequest is the standard admission-test request: NTSC video,
// q = 3, 11 ms scattering.
func videoRequest() Request {
	m := NTSCVideo()
	return Request{Name: "v", Granularity: 3, UnitBits: m.UnitBits, Rate: m.Rate, Scattering: 0.011}
}

func repeatReq(r Request, n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = r
	}
	return out
}

func TestRequestQuantities(t *testing.T) {
	r := videoRequest()
	if r.BlockBits() != 3*144000 {
		t.Fatalf("block bits %g", r.BlockBits())
	}
	if r.BlockDuration() != 0.1 {
		t.Fatalf("block duration %g", r.BlockDuration())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{Granularity: 0, UnitBits: 8, Rate: 30},
		{Granularity: 1, UnitBits: 0, Rate: 30},
		{Granularity: 1, UnitBits: 8, Rate: 0},
		{Granularity: 1, UnitBits: 8, Rate: 30, Scattering: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestAlphaBetaGamma(t *testing.T) {
	a := AdmissionFor(testDevice())
	reqs := repeatReq(videoRequest(), 3)
	xfer := 3 * 144000 / 55e6
	if got, want := a.Alpha(reqs), 0.0383+xfer; !close(got, want) {
		t.Fatalf("α = %g, want %g", got, want)
	}
	if got, want := a.Beta(reqs), 0.011+xfer; !close(got, want) {
		t.Fatalf("β = %g, want %g", got, want)
	}
	if got := a.Gamma(reqs); got != 0.1 {
		t.Fatalf("γ = %g", got)
	}
	// α ≥ β always, since l_max_seek ≥ l_ds.
	if a.Alpha(reqs) < a.Beta(reqs) {
		t.Fatal("α < β")
	}
	// Gamma of mixed rates is the fastest (minimum duration).
	mixed := append(repeatReq(videoRequest(), 1), Request{Granularity: 1, UnitBits: 8, Rate: 100, Scattering: 0.01})
	if got := a.Gamma(mixed); got != 0.01 {
		t.Fatalf("mixed γ = %g", got)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestKSteadySatisfiesEq15Minimally(t *testing.T) {
	a := AdmissionFor(testDevice())
	for n := 1; n <= 5; n++ {
		reqs := repeatReq(videoRequest(), n)
		k, ok := a.KSteady(reqs)
		if !ok {
			t.Fatalf("n=%d unserviceable", n)
		}
		if !a.FeasibleK(reqs, k) {
			t.Fatalf("n=%d: KSteady=%d violates Eq. 15", n, k)
		}
		if k > 1 && a.FeasibleK(reqs, k-1) {
			t.Fatalf("n=%d: KSteady=%d not minimal", n, k)
		}
	}
}

func TestKTransientAtLeastKSteady(t *testing.T) {
	a := AdmissionFor(testDevice())
	for n := 1; n <= 5; n++ {
		reqs := repeatReq(videoRequest(), n)
		ks, _ := a.KSteady(reqs)
		kt, ok := a.KTransient(reqs)
		if !ok {
			t.Fatalf("n=%d unserviceable", n)
		}
		if kt < ks {
			t.Fatalf("n=%d: transient k %d below steady k %d", n, kt, ks)
		}
		// Eq. 18 holds at kt: n·α + n·kt·β ≤ kt·γ.
		lhs := float64(n)*a.Alpha(reqs) + float64(n)*float64(kt)*a.Beta(reqs)
		if lhs > float64(kt)*a.Gamma(reqs)+1e-12 {
			t.Fatalf("n=%d: Eq. 18 violated at kt=%d", n, kt)
		}
	}
}

func TestKMonotoneInN(t *testing.T) {
	a := AdmissionFor(testDevice())
	prev := 0
	for n := 1; ; n++ {
		reqs := repeatReq(videoRequest(), n)
		k, ok := a.KSteady(reqs)
		if !ok {
			if n < 2 {
				t.Fatal("device cannot serve even one stream")
			}
			break
		}
		if k < prev {
			t.Fatalf("k decreased from %d to %d at n=%d (Figure 4 is non-decreasing)", prev, k, n)
		}
		prev = k
		if n > 100 {
			t.Fatal("runaway n")
		}
	}
}

func TestNMaxBoundary(t *testing.T) {
	a := AdmissionFor(testDevice())
	tmpl := videoRequest()
	nmax := a.NMax(tmpl)
	if nmax < 1 {
		t.Fatalf("nmax = %d", nmax)
	}
	if _, ok := a.KSteady(repeatReq(tmpl, nmax)); !ok {
		t.Fatalf("n = n_max = %d should be serviceable", nmax)
	}
	if _, ok := a.KSteady(repeatReq(tmpl, nmax+1)); ok {
		t.Fatalf("n = n_max+1 = %d should be unserviceable", nmax+1)
	}
}

func TestNMaxZeroBeta(t *testing.T) {
	a := Admission{MaxAccess: 0, TransferRate: 1e12}
	r := Request{Granularity: 1, UnitBits: 1e-9, Rate: 1, Scattering: 0}
	if got := a.NMax(r); got < 1<<30 {
		t.Fatalf("near-zero β should admit unbounded requests, got %d", got)
	}
}

func TestAdmitDecisions(t *testing.T) {
	a := AdmissionFor(testDevice())
	tmpl := videoRequest()
	// First admission from empty at k=1.
	dec := a.Admit(nil, 1, tmpl)
	if !dec.Admitted {
		t.Fatalf("first request rejected: %s", dec.Reason)
	}
	if dec.K < 1 {
		t.Fatalf("k = %d", dec.K)
	}
	// Admission beyond n_max is rejected with a reason.
	nmax := a.NMax(tmpl)
	dec = a.Admit(repeatReq(tmpl, nmax), 10, tmpl)
	if dec.Admitted {
		t.Fatal("admission beyond n_max accepted")
	}
	if dec.Reason == "" {
		t.Fatal("rejection carries no reason")
	}
	// Invalid candidate is rejected.
	dec = a.Admit(nil, 1, Request{})
	if dec.Admitted {
		t.Fatal("invalid request admitted")
	}
}

func TestAdmitTransitionSteps(t *testing.T) {
	a := AdmissionFor(testDevice())
	tmpl := videoRequest()
	current := repeatReq(tmpl, 3)
	kOld, _ := a.KTransient(current)
	dec := a.Admit(current, kOld, tmpl)
	if !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	if dec.K <= kOld {
		t.Skip("device fast enough that k does not grow; nothing to step")
	}
	// Steps must be exactly kOld+1 .. K.
	if len(dec.Steps) != dec.K-kOld {
		t.Fatalf("steps %v for %d→%d", dec.Steps, kOld, dec.K)
	}
	for i, s := range dec.Steps {
		if s != kOld+1+i {
			t.Fatalf("step %d is %d, want %d", i, s, kOld+1+i)
		}
	}
}

func TestStartupDelayPositive(t *testing.T) {
	a := AdmissionFor(testDevice())
	reqs := repeatReq(videoRequest(), 3)
	k, _ := a.KTransient(reqs)
	d := a.StartupDelay(reqs, []int{k - 1, k}, k)
	if d <= 0 {
		t.Fatalf("startup delay %g", d)
	}
	// More steps means longer startup.
	d2 := a.StartupDelay(reqs, []int{k - 2, k - 1, k}, k)
	if d2 <= d {
		t.Fatal("startup delay should grow with transition length")
	}
}

// Property: over random heterogeneous request sets, KSteady (when it
// exists) always satisfies Eq. 15 and its predecessor does not; and
// RoundTime is linear in k.
func TestAdmissionQuick(t *testing.T) {
	a := AdmissionFor(testDevice())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{
				Name:        "r",
				Granularity: 1 + rng.Intn(6),
				UnitBits:    float64(1000 * (1 + rng.Intn(200))),
				Rate:        float64(5 * (1 + rng.Intn(10))),
				Scattering:  0.002 + rng.Float64()*0.02,
			}
		}
		k, ok := a.KSteady(reqs)
		if !ok {
			return true
		}
		if !a.FeasibleK(reqs, k) {
			return false
		}
		if k > 1 && a.FeasibleK(reqs, k-1) {
			return false
		}
		// Linearity of RoundTime in k.
		r1 := a.RoundTime(reqs, 2) - a.RoundTime(reqs, 1)
		r2 := a.RoundTime(reqs, 3) - a.RoundTime(reqs, 2)
		return close(r1, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRequestSet(t *testing.T) {
	a := AdmissionFor(testDevice())
	if k, ok := a.KSteady(nil); !ok || k != 0 {
		t.Fatalf("empty set: k=%d ok=%v", k, ok)
	}
	if a.RoundTime(nil, 5) != 0 {
		t.Fatal("empty round should cost nothing")
	}
}
