package continuity

import (
	"testing"
	"testing/quick"
)

func vbrProfile() VBRProfile {
	return VBRProfile{Rate: 30, PeakUnitBits: 36000 * 8, AvgUnitBits: 14400 * 8}
}

func TestVBRProfileMedia(t *testing.T) {
	p := vbrProfile()
	if p.PeakMedia("v").UnitBits != p.PeakUnitBits || p.AvgMedia("v").UnitBits != p.AvgUnitBits {
		t.Fatal("profile media sizes")
	}
	if p.PeakMedia("v").Rate != 30 || p.AvgMedia("v").Rate != 30 {
		t.Fatal("profile media rates")
	}
	if g := p.CompressionGain(); g != 2.5 {
		t.Fatalf("gain %g, want 2.5", g)
	}
	if (VBRProfile{PeakUnitBits: 1}).CompressionGain() != 1 {
		t.Fatal("zero-average gain should clamp to 1")
	}
}

func TestVBRMaxScatteringOrdering(t *testing.T) {
	p := vbrProfile()
	d := testDevice()
	cfg := Config{Arch: Pipelined}
	peak, avg, ok := VBRMaxScattering(cfg, 3, p, d)
	if !ok {
		t.Fatal("infeasible")
	}
	if peak < 0 {
		t.Fatal("peak unexpectedly infeasible on this device")
	}
	// Average provisioning always admits at least as much scattering.
	if avg < peak {
		t.Fatalf("avg bound %g below peak bound %g", avg, peak)
	}
}

func TestVBRPeakInfeasibleAvgFeasible(t *testing.T) {
	// A device fast enough for the average rate but not the peak.
	p := vbrProfile()
	// Peak bit rate: 36000*8*30 = 8.64 Mbit/s; avg: 3.456 Mbit/s.
	d := Device{TransferRate: 5e6, MaxAccess: 0.04}
	peak, avg, ok := VBRMaxScattering(Config{Arch: Pipelined}, 3, p, d)
	if !ok {
		t.Fatal("avg should be feasible at 5 Mbit/s")
	}
	if peak >= 0 {
		t.Fatalf("peak bound %g should be infeasible at 5 Mbit/s", peak)
	}
	if avg <= 0 {
		t.Fatalf("avg bound %g", avg)
	}
	// And a device too slow even for the average.
	_, _, ok = VBRMaxScattering(Config{Arch: Pipelined}, 3, p, Device{TransferRate: 1e6, MaxAccess: 0.04})
	if ok {
		t.Fatal("1 Mbit/s device should be infeasible")
	}
}

func TestVBRBurstReadAhead(t *testing.T) {
	p := vbrProfile()
	d := testDevice()
	h1 := VBRBurstReadAhead(3, p, d, 1)
	if h1 < 1 {
		t.Fatalf("h = %d", h1)
	}
	// Longer bursts need at least as much read-ahead.
	prev := 0
	for burst := 1; burst <= 8; burst++ {
		h := VBRBurstReadAhead(3, p, d, burst)
		if h < prev {
			t.Fatalf("read-ahead decreased at burst %d", burst)
		}
		prev = h
	}
	// Degenerate inputs clamp to 1.
	if VBRBurstReadAhead(3, VBRProfile{Rate: 30, PeakUnitBits: 8, AvgUnitBits: 8}, d, 4) != 1 {
		t.Fatal("zero overshoot should need 1 block")
	}
	if VBRBurstReadAhead(3, p, d, 0) != 1 {
		t.Fatal("zero burst should need 1 block")
	}
}

// Property: the average-based bound equals the fixed-rate bound of a
// medium with the average unit size — VBR analysis is consistent with
// the CBR equations it extends.
func TestVBRConsistentWithCBRQuick(t *testing.T) {
	d := testDevice()
	cfg := Config{Arch: Pipelined}
	f := func(rawQ, rawAvg uint8) bool {
		q := int(rawQ)%8 + 1
		avgBits := float64(rawAvg+1) * 1000
		p := VBRProfile{Rate: 30, PeakUnitBits: avgBits * 2, AvgUnitBits: avgBits}
		_, avg, okV := VBRMaxScattering(cfg, q, p, d)
		cbr, okC := MaxScattering(cfg, q, Media{Name: "c", UnitBits: avgBits, Rate: 30}, d)
		if okV != okC {
			return false
		}
		if !okV {
			return true
		}
		return avg == cbr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
