package continuity

import (
	"fmt"
	"math"
)

// This file implements §3.4: servicing multiple requests. The file
// system proceeds in rounds, transferring k consecutive blocks for
// each of the n active requests before switching to the next. The
// admission control algorithm decides whether a new request can be
// accepted without violating the continuity of any existing request,
// and the transition protocol (Eq. 18) grows k one step at a time so
// that transient rounds also stay continuous.

// Request describes one active storage or retrieval request as the
// admission controller sees it: the granularity, unit size, recording
// rate, and scattering parameter of the strand it touches.
type Request struct {
	// Name identifies the request in diagnostics.
	Name string
	// Granularity is q_i, units (frames/samples) per block.
	Granularity int
	// UnitBits is s_i, bits per unit.
	UnitBits float64
	// Rate is R_i, units per second.
	Rate float64
	// Scattering is the strand's scattering parameter l_ds,i in
	// seconds (the bounded inter-block access time within the
	// strand).
	Scattering float64
}

// RequestFor builds a Request from a derivation.
func RequestFor(name string, dv Derivation) Request {
	return Request{
		Name:        name,
		Granularity: dv.Granularity,
		UnitBits:    dv.Media.UnitBits,
		Rate:        dv.Media.Rate,
		Scattering:  dv.MaxScattering,
	}
}

// BlockBits is q_i·s_i, the request's block size in bits.
func (r Request) BlockBits() float64 { return float64(r.Granularity) * r.UnitBits }

// BlockDuration is q_i/R_i, the playback duration of one of the
// request's blocks (the per-request term on the right-hand side of
// Eq. 11).
func (r Request) BlockDuration() float64 { return float64(r.Granularity) / r.Rate }

// Validate reports an error for an unusable request description.
func (r Request) Validate() error {
	switch {
	case r.Granularity < 1:
		//lint:ignore allocpath validation failures reject the request; the error path is cold
		return fmt.Errorf("continuity: request %q granularity %d < 1", r.Name, r.Granularity)
	case r.UnitBits <= 0:
		//lint:ignore allocpath validation failures reject the request; the error path is cold
		return fmt.Errorf("continuity: request %q unit size %g ≤ 0", r.Name, r.UnitBits)
	case r.Rate <= 0:
		//lint:ignore allocpath validation failures reject the request; the error path is cold
		return fmt.Errorf("continuity: request %q rate %g ≤ 0", r.Name, r.Rate)
	case r.Scattering < 0:
		//lint:ignore allocpath validation failures reject the request; the error path is cold
		return fmt.Errorf("continuity: request %q scattering %g < 0", r.Name, r.Scattering)
	}
	return nil
}

// Admission is the admission controller for one storage device. It
// carries the two device constants the round analysis needs.
type Admission struct {
	// MaxAccess is l_max_seek: the worst-case inter-strand switch
	// cost assumed when the server moves between requests (§3.4:
	// "there is no guarantee on the relative positions of two
	// strands belonging to two requests").
	MaxAccess float64
	// TransferRate is r_dt in bits/second.
	TransferRate float64
}

// AdmissionFor builds an Admission from a device description.
func AdmissionFor(d Device) Admission {
	return Admission{MaxAccess: d.MaxAccess, TransferRate: d.TransferRate}
}

// avgBlockXfer is the mean block transfer time avg(q_i·s_i)/r_dt over
// the requests.
func (a Admission) avgBlockXfer(reqs []Request) float64 {
	if len(reqs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range reqs {
		sum += r.BlockBits()
	}
	return sum / float64(len(reqs)) / a.TransferRate
}

// Alpha is Eq. 12: α = l_max_seek + avg(q·s)/r_dt, the worst-case time
// to switch to a request and transfer its first block of the round.
func (a Admission) Alpha(reqs []Request) float64 {
	return a.MaxAccess + a.avgBlockXfer(reqs)
}

// Beta is Eq. 13: β = avg(l_ds) + avg(q·s)/r_dt, the steady per-block
// service time within a request's run of k blocks.
func (a Admission) Beta(reqs []Request) float64 {
	if len(reqs) == 0 {
		return 0
	}
	var lds float64
	for _, r := range reqs {
		lds += r.Scattering
	}
	return lds/float64(len(reqs)) + a.avgBlockXfer(reqs)
}

// Gamma is Eq. 14: γ = min_i(q_i/R_i), the playback duration of the
// request with the fastest display rate.
func (a Admission) Gamma(reqs []Request) float64 {
	if len(reqs) == 0 {
		return math.Inf(1)
	}
	g := math.Inf(1)
	for _, r := range reqs {
		if d := r.BlockDuration(); d < g {
			g = d
		}
	}
	return g
}

// RoundTime is the left-hand side of Eq. 15: the worst-case time to
// service one round of n requests at k blocks each,
// n·α + n·(k−1)·β.
func (a Admission) RoundTime(reqs []Request, k int) float64 {
	n := float64(len(reqs))
	return n*a.Alpha(reqs) + n*float64(k-1)*a.Beta(reqs)
}

// FeasibleK is Eq. 15: servicing the round at k blocks per request
// must not exceed the playback duration of k blocks of the fastest
// request, n·α + n·(k−1)·β ≤ k·γ.
func (a Admission) FeasibleK(reqs []Request, k int) bool {
	if k < 1 {
		return false
	}
	return a.RoundTime(reqs, k) <= float64(k)*a.Gamma(reqs)
}

// KSteady is Eq. 16: the minimum k satisfying steady-state continuity,
// k ≥ n(α−β)/(γ−n·β). The second result is false when γ ≤ n·β, i.e.
// the request set is not serviceable at any k (Eq. 17's bound is
// exceeded). The paper notes the minimum k is desirable because k also
// sets the startup delay of new requests.
func (a Admission) KSteady(reqs []Request) (int, bool) {
	n := float64(len(reqs))
	if n == 0 {
		return 0, true
	}
	alpha, beta, gamma := a.Alpha(reqs), a.Beta(reqs), a.Gamma(reqs)
	den := gamma - n*beta
	if den <= 0 {
		return 0, false
	}
	k := int(math.Ceil(n * (alpha - beta) / den))
	if k < 1 {
		k = 1
	}
	for !a.FeasibleK(reqs, k) { // absorb rounding at the boundary
		k++
	}
	return k, true
}

// KTransient is Eq. 18: the minimum k satisfying
// n·α + n·k·β ≤ k·γ, which charges the round for k+1 block-times so
// that stepping from k to k+1 never exceeds the playback duration of
// the k blocks buffered by the previous round. Growing k by 1 under
// this bound yields an admission algorithm that "guarantees both
// transient and steady state continuity".
func (a Admission) KTransient(reqs []Request) (int, bool) {
	n := float64(len(reqs))
	if n == 0 {
		return 0, true
	}
	alpha, beta, gamma := a.Alpha(reqs), a.Beta(reqs), a.Gamma(reqs)
	den := gamma - n*beta
	if den <= 0 {
		return 0, false
	}
	k := int(math.Ceil(n * alpha / den))
	if k < 1 {
		k = 1
	}
	for !a.feasibleTransient(reqs, k) {
		k++
	}
	return k, true
}

// SlackSeconds is the virtual time the transient-safe bound (Eq. 18)
// leaves unused in one round of n requests at k blocks each:
// k·γ − (n·α + n·k·β), clamped at zero. The admission test charges
// every access its worst case, so an admitted population always leaves
// this much measured slack per round; the storage manager's
// fault-tolerant service path spends it on in-round retries without
// endangering any admitted stream's continuity.
func (a Admission) SlackSeconds(reqs []Request, k int) float64 {
	if len(reqs) == 0 || k < 1 {
		return 0
	}
	n := float64(len(reqs))
	s := float64(k)*a.Gamma(reqs) - (n*a.Alpha(reqs) + n*float64(k)*a.Beta(reqs))
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	return s
}

// feasibleTransient checks n·α + n·k·β ≤ k·γ.
func (a Admission) feasibleTransient(reqs []Request, k int) bool {
	if k < 1 {
		return false
	}
	n := float64(len(reqs))
	return n*a.Alpha(reqs)+n*float64(k)*a.Beta(reqs) <= float64(k)*a.Gamma(reqs)
}

// NMax is Eq. 17: the maximum number of simultaneous requests the file
// system can service, n_max = ⌈γ/β⌉ − 1, evaluated for a homogeneous
// population described by the template request.
func (a Admission) NMax(template Request) int {
	reqs := []Request{template}
	beta := a.Beta(reqs)
	gamma := a.Gamma(reqs)
	if beta <= 0 {
		return math.MaxInt32
	}
	n := int(math.Ceil(gamma/beta)) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// Decision records the outcome of an admission test.
type Decision struct {
	// Admitted reports whether the request set is serviceable.
	Admitted bool
	// K is the steady-state blocks-per-round after the transition
	// (Eq. 18's k for the new set), 0 if rejected.
	K int
	// Steps is the sequence of k values the server must pass
	// through, one round (at least) each, to reach K from the
	// current k without transient discontinuity. Empty when k need
	// not change.
	Steps []int
	// Reason explains a rejection.
	Reason string
	// CacheServed reports that the request was admitted as an
	// interval-cache follower: it charges no disk time (no α/β terms),
	// so it is excluded from the request sets of later Eq. 15/18
	// evaluations until demoted.
	CacheServed bool
	// Stride is the sub-sampling stride the request was admitted at
	// under QoS load shedding (ClassAware.Admit): 1 is full rate, a
	// larger value means only every Stride-th block is fetched and
	// the stream's disk charge is the Degraded() view. Zero when the
	// deciding controller was not class-aware, or on rejection.
	Stride int
}

// Admit runs the paper's admission control algorithm: given the
// currently serviced requests (with current blocks-per-round kOld) and
// a candidate, it determines whether the expanded set is serviceable
// and, if so, the stepwise k transition plan (kOld+1, kOld+2, …, kNew)
// that preserves continuity during the transition.
func (a Admission) Admit(current []Request, kOld int, candidate Request) Decision {
	if err := candidate.Validate(); err != nil {
		return Decision{Reason: err.Error()}
	}
	//lint:ignore allocpath admission is a per-request control event, not per-round work
	next := make([]Request, 0, len(current)+1)
	//lint:ignore allocpath admission is a per-request control event, not per-round work
	next = append(next, current...)
	//lint:ignore allocpath admission is a per-request control event, not per-round work
	next = append(next, candidate)
	kNew, ok := a.KTransient(next)
	if !ok {
		//lint:ignore allocpath admission is a per-request control event, not per-round work
		return Decision{Reason: fmt.Sprintf("γ ≤ n·β for n=%d: device saturated (n_max exceeded)", len(next))}
	}
	d := Decision{Admitted: true, K: kNew}
	if kNew > kOld {
		for k := kOld + 1; k <= kNew; k++ {
			//lint:ignore allocpath admission is a per-request control event, not per-round work
			d.Steps = append(d.Steps, k)
		}
	}
	return d
}

// StartupDelay estimates the worst-case delay before a newly admitted
// request's playback can begin: the transition rounds plus one full
// round of k blocks for all n requests (the paper: "larger the value
// of k, larger is the startup time for a new request").
func (a Admission) StartupDelay(reqs []Request, steps []int, k int) float64 {
	var t float64
	for _, s := range steps {
		t += a.RoundTime(reqs, s)
	}
	return t + a.RoundTime(reqs, k)
}
