package continuity

// This file extends §3.4's admission control with interval-cache
// awareness. The paper's bound n_max = ⌈γ/β⌉ − 1 (Eq. 17) charges
// every request a full per-block disk service time β, which is
// pessimistic for the popular-content workload where many viewers play
// the same rope seconds apart: a trailing request served entirely from
// the blocks a leading request just fetched performs no disk work at
// all. The cache-aware controller therefore evaluates Eq. 18
//
//	n_d·α + n_d·k·β ≤ k·γ
//
// over the *disk-bound* request population n_d only. A fully
// cache-served follower joins at the current k without a transition
// (it adds no term to the left-hand side), letting the total admitted
// population n exceed n_max while the stepwise-k transition still
// protects every disk-bound stream. The admission is conditional: if
// the interval later breaks — the leader stops, pauses, or a FF/REW
// repositioning changes the follower's rate or range — the follower is
// demoted back through this controller's full (disk-charging) path,
// and paused destructively if that fails.

// CacheAware layers interval-cache awareness over a base admission
// controller.
type CacheAware struct {
	// A is the device's base admission controller (Eq. 12–18).
	A Admission
}

// Admit decides admission for a candidate. diskBound must list only
// the requests actually charging the disk — cache-served followers are
// excluded by the caller — and cacheServed tells whether the candidate
// will be fully served from the cache. A cache-served candidate is
// validated and admitted at the unchanged kOld; a disk-bound candidate
// goes through the base controller against the disk-bound set.
func (c CacheAware) Admit(diskBound []Request, kOld int, candidate Request, cacheServed bool) Decision {
	if !cacheServed {
		return c.A.Admit(diskBound, kOld, candidate)
	}
	if err := candidate.Validate(); err != nil {
		return Decision{Reason: err.Error()}
	}
	return Decision{Admitted: true, K: kOld, CacheServed: true}
}
