// Package continuity implements the analytical model of Rangan & Vin
// (SOSP '91): the continuity equations relating disk and device
// characteristics to media recording rates (Eqs. 1–6), the derivation
// of storage granularity and the scattering parameter (§3.3.4),
// buffering and read-ahead rules (§3.3.2), the admission control
// algorithm for multiple concurrent requests (Eqs. 7–18), and the
// bounds on copying during rope editing (Eqs. 19–20).
//
// All quantities use the paper's units (Table 1): rates in units/second
// or bits/second, sizes in bits, times in float64 seconds.
package continuity

import (
	"fmt"
	"math"
	"time"
)

// Media describes one medium's recording and display characteristics.
// For video, Rate is R_vr (frames/s) and UnitBits is s_vf (bits/frame);
// for audio, Rate is R_as (samples/s) and UnitBits is s_as
// (bits/sample).
type Media struct {
	// Name identifies the medium in diagnostics ("video", "audio").
	Name string
	// UnitBits is the size of one frame or sample in bits.
	UnitBits float64
	// Rate is the recording (and synchronous playback) rate in
	// units/second.
	Rate float64
	// DisplayRate is the display-path consumption rate R_dp in
	// bits/second (decompression plus digital-to-analog conversion).
	// Zero means the display path is not a bottleneck and display
	// time is treated as zero, as in the pipelined and concurrent
	// equations.
	DisplayRate float64
}

// Validate reports an error if the media description is unusable.
func (m Media) Validate() error {
	if m.UnitBits <= 0 {
		return fmt.Errorf("continuity: media %q has non-positive unit size %g", m.Name, m.UnitBits)
	}
	if m.Rate <= 0 {
		return fmt.Errorf("continuity: media %q has non-positive rate %g", m.Name, m.Rate)
	}
	if m.DisplayRate < 0 {
		return fmt.Errorf("continuity: media %q has negative display rate %g", m.Name, m.DisplayRate)
	}
	return nil
}

// BitRate is the medium's recording bandwidth in bits/second.
func (m Media) BitRate() float64 { return m.UnitBits * m.Rate }

// BlockBits is the size in bits of a block holding q units.
func (m Media) BlockBits(q int) float64 { return float64(q) * m.UnitBits }

// PlaybackDuration is the playback (= recording) duration of a block
// of q units: q/R (the right-hand side of the continuity equations).
func (m Media) PlaybackDuration(q int) float64 { return float64(q) / m.Rate }

// DisplayTime is the time to display a block of q units through the
// display path: q·s/R_dp, or zero when the display path is unmodeled.
func (m Media) DisplayTime(q int) float64 {
	if m.DisplayRate == 0 {
		return 0
	}
	return m.BlockBits(q) / m.DisplayRate
}

// NTSCVideo models the paper's UVC hardware: 480×200 pixels at 12 bits
// of color, digitized and compressed in real time at NTSC rate. The
// board's compressed output is modeled at 8:1, giving 144 000 bits
// (18 KB) per frame at 30 frames/s (~4.3 Mbit/s). The display rate
// models a decompression path with 4× headroom over real time.
func NTSCVideo() Media {
	const rawBits = 480 * 200 * 12
	return Media{
		Name:        "video",
		UnitBits:    rawBits / 8,
		Rate:        30,
		DisplayRate: 4 * (rawBits / 8) * 30,
	}
}

// TelephoneAudio models the paper's audio hardware: 8 KBytes/second of
// 8-bit samples (8 kHz μ-law class).
func TelephoneAudio() Media {
	return Media{
		Name:        "audio",
		UnitBits:    8,
		Rate:        8000,
		DisplayRate: 0,
	}
}

// HDTVVideo models the paper's motivating example of an HDTV-quality
// strand requiring data transfer rates of up to 2.5 Gigabit/s
// (uncompressed, 60 frames/s).
func HDTVVideo() Media {
	const bitRate = 2.5e9
	const rate = 60
	return Media{
		Name:     "hdtv",
		UnitBits: bitRate / rate,
		Rate:     rate,
	}
}

// Device carries the disk characteristics the model consumes.
type Device struct {
	// TransferRate is r_dt, the rate of data transfer from disk in
	// bits/second.
	TransferRate float64
	// MaxAccess is l_max_seek: the worst-case seek plus rotational
	// latency between any two blocks, in seconds.
	MaxAccess float64
	// MinAccess is the smallest positioning cost charged for a
	// discontiguous access, in seconds. It lower-bounds realizable
	// scattering parameters.
	MinAccess float64
}

// Validate reports an error if the device description is unusable.
func (d Device) Validate() error {
	if d.TransferRate <= 0 {
		return fmt.Errorf("continuity: device has non-positive transfer rate %g", d.TransferRate)
	}
	if d.MaxAccess < 0 || d.MinAccess < 0 {
		return fmt.Errorf("continuity: device has negative access times (%g, %g)", d.MaxAccess, d.MinAccess)
	}
	if d.MaxAccess < d.MinAccess {
		return fmt.Errorf("continuity: device max access %g below min access %g", d.MaxAccess, d.MinAccess)
	}
	return nil
}

// TransferTime is the time to transfer bits at r_dt.
func (d Device) TransferTime(bits float64) float64 { return bits / d.TransferRate }

// Seconds converts a time.Duration to the model's float64 seconds.
func Seconds(t time.Duration) float64 { return t.Seconds() }

// Duration converts model seconds to a time.Duration, rounding to the
// nearest nanosecond.
func Duration(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}
