package continuity

// This file models §6.2's variable-rate compression extension: "We are
// extending the continuity equations to incorporate such effects of
// compression algorithms." With variable frame sizes the continuity
// equations can be evaluated against two profiles:
//
//   - peak provisioning: every block is assumed to hold peak-size
//     units. The resulting scattering bound guarantees strict per-block
//     continuity, exactly like the fixed-size analysis — but wastes the
//     bound's headroom on the (common) small blocks.
//
//   - average provisioning: blocks are assumed to hold mean-size
//     units. The resulting bound is looser (blocks may be placed
//     farther apart; more streams admit), and continuity holds over
//     averages: a burst of peak-size blocks can transiently exceed the
//     per-block budget, so the §3.3.2 anti-jitter read-ahead (k blocks
//     of buffering) is required to absorb it.

// VBRProfile summarizes a variable-rate medium.
type VBRProfile struct {
	// Rate is the unit (frame) rate in units/second.
	Rate float64
	// PeakUnitBits is the largest unit size in bits.
	PeakUnitBits float64
	// AvgUnitBits is the long-run mean unit size in bits.
	AvgUnitBits float64
}

// PeakMedia is the medium as peak provisioning sees it.
func (p VBRProfile) PeakMedia(name string) Media {
	return Media{Name: name + "-peak", UnitBits: p.PeakUnitBits, Rate: p.Rate}
}

// AvgMedia is the medium as average provisioning sees it.
func (p VBRProfile) AvgMedia(name string) Media {
	return Media{Name: name + "-avg", UnitBits: p.AvgUnitBits, Rate: p.Rate}
}

// CompressionGain is the storage (and bandwidth) ratio between peak
// and average provisioning; the fraction 1 − 1/gain of a
// peak-provisioned store is reclaimed by variable-rate storage.
func (p VBRProfile) CompressionGain() float64 {
	if p.AvgUnitBits == 0 {
		return 1
	}
	return p.PeakUnitBits / p.AvgUnitBits
}

// VBRMaxScattering evaluates the continuity equation under both
// provisioning profiles, returning the peak-based (strict) and
// average-based (anti-jitter-buffered) scattering bounds. ok is false
// when even average provisioning is infeasible.
func VBRMaxScattering(cfg Config, q int, p VBRProfile, d Device) (peak, avg float64, ok bool) {
	avg, okAvg := MaxScattering(cfg, q, p.AvgMedia("vbr"), d)
	if !okAvg {
		return 0, avg, false
	}
	peak, okPeak := MaxScattering(cfg, q, p.PeakMedia("vbr"), d)
	if !okPeak {
		// Peak-infeasible but average-feasible: strict per-block
		// provisioning impossible, buffered average provisioning
		// still works.
		peak = -1
	}
	return peak, avg, true
}

// VBRBurstReadAhead is the read-ahead (in blocks) that lets
// average-provisioned playback ride out the worst burst of consecutive
// peak-size blocks: each peak block overshoots the average-block read
// time by (peak−avg)·q/r_dt seconds, and a burst of `burst` of them
// must be absorbed by pre-buffered playback time.
func VBRBurstReadAhead(q int, p VBRProfile, d Device, burst int) int {
	overshoot := d.TransferTime(float64(q) * (p.PeakUnitBits - p.AvgUnitBits))
	if overshoot <= 0 || burst <= 0 {
		return 1
	}
	blockDur := float64(q) / p.Rate
	need := float64(burst) * overshoot / blockDur
	h := int(need) + 1
	if h < 1 {
		h = 1
	}
	return h
}
