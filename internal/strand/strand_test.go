package strand

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/media"
)

func testGeometry() disk.Geometry {
	return disk.Geometry{
		Cylinders:       200,
		Surfaces:        4,
		SectorsPerTrack: 32,
		SectorSize:      512,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         30 * time.Millisecond,
	}
}

type rig struct {
	d  *disk.Disk
	a  *alloc.Allocator
	st *Store
}

func newRig(t *testing.T) *rig {
	t.Helper()
	g := testGeometry()
	d := disk.MustNew(g)
	a, err := alloc.New(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{d: d, a: a, st: NewStore(d, a)}
}

// writeVideo records a strand of `frames` frames at granularity q.
func (r *rig) writeVideo(t *testing.T, frames, frameBytes, q int, seed int64) *Strand {
	t.Helper()
	w, err := NewWriter(r.d, r.a, WriterConfig{
		ID:          r.st.NewID(),
		Medium:      layout.Video,
		Rate:        30,
		UnitBytes:   frameBytes,
		Granularity: q,
		Constraint:  alloc.Constraint{MinCylinders: 1, MaxCylinders: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVideoSource(frames, frameBytes, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	r.st.Put(s)
	return s
}

func TestWriterReaderRoundTrip(t *testing.T) {
	r := newRig(t)
	s := r.writeVideo(t, 30, 1024, 3, 5)
	if s.UnitCount() != 30 || s.NumBlocks() != 10 {
		t.Fatalf("units %d blocks %d", s.UnitCount(), s.NumBlocks())
	}
	rd := NewReader(r.d, s)
	for f := uint64(0); f < 30; f++ {
		got, err := rd.Unit(f)
		if err != nil {
			t.Fatal(err)
		}
		want := media.FramePayload(5, f, 1024)
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d corrupted", f)
		}
	}
}

func TestPartialFinalBlock(t *testing.T) {
	r := newRig(t)
	s := r.writeVideo(t, 32, 1024, 3, 6) // 10 full blocks + 2 frames
	if s.UnitCount() != 32 {
		t.Fatalf("unit count %d", s.UnitCount())
	}
	if s.NumBlocks() != 11 {
		t.Fatalf("blocks %d, want 11", s.NumBlocks())
	}
	rd := NewReader(r.d, s)
	// The last block's payload is trimmed to 2 frames.
	data, _, silent, err := rd.ReadBlock(0, 10)
	if err != nil || silent {
		t.Fatalf("read: %v silent=%v", err, silent)
	}
	if len(data) != 2*1024 {
		t.Fatalf("tail block payload %d bytes, want %d", len(data), 2*1024)
	}
	if _, err := rd.Unit(31); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Unit(32); err == nil {
		t.Fatal("unit past end accepted")
	}
}

func TestScatterTimesRespectConstraint(t *testing.T) {
	r := newRig(t)
	s := r.writeVideo(t, 60, 1024, 3, 7)
	g := r.d.Geometry()
	bound := g.AccessTime(16)
	for i, st := range s.ScatterTimes(g) {
		if st > bound {
			t.Fatalf("gap %d: %v exceeds constraint bound %v", i, st, bound)
		}
	}
	if s.MaxScatterTime(g) > bound {
		t.Fatal("max scatter exceeds bound")
	}
}

func TestTimedReadBlockMatchesDiskModel(t *testing.T) {
	r := newRig(t)
	s := r.writeVideo(t, 9, 1024, 3, 8)
	rd := NewReader(r.d, s)
	peek, err := rd.PeekBlockTime(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, actual, _, err := rd.ReadBlock(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if peek != actual {
		t.Fatalf("peek %v vs actual %v", peek, actual)
	}
}

func TestSilenceBlocksInWriter(t *testing.T) {
	r := newRig(t)
	det := media.DefaultSilenceDetector()
	w, err := NewWriter(r.d, r.a, WriterConfig{
		ID:          r.st.NewID(),
		Medium:      layout.Audio,
		Rate:        10,
		UnitBytes:   200,
		Granularity: 2,
		Constraint:  alloc.Constraint{MinCylinders: 1, MaxCylinders: 16},
		Silence:     &det,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewAudioSource(40, 200, 10, 0.5, 10, 9)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	r.st.Put(s)
	silent := 0
	for i := 0; i < s.NumBlocks(); i++ {
		e, _ := s.Block(i)
		if e.Silent() {
			silent++
		}
	}
	if silent == 0 || silent == s.NumBlocks() {
		t.Fatalf("silent blocks %d of %d", silent, s.NumBlocks())
	}
	// Silent blocks read back as fill, with zero disk time.
	rd := NewReader(r.d, s)
	for i := 0; i < s.NumBlocks(); i++ {
		e, _ := s.Block(i)
		if !e.Silent() {
			continue
		}
		data, dur, isSilent, err := rd.ReadBlock(0, i)
		if err != nil || !isSilent || dur != 0 {
			t.Fatalf("silence read: err=%v silent=%v dur=%v", err, isSilent, dur)
		}
		for _, b := range data {
			if b != SilenceFill(layout.Audio) {
				t.Fatal("silence fill mismatch")
			}
		}
	}
}

func TestWriterValidation(t *testing.T) {
	r := newRig(t)
	bad := []WriterConfig{
		{ID: Nil, Rate: 30, UnitBytes: 10, Granularity: 1},
		{ID: 1, Rate: 0, UnitBytes: 10, Granularity: 1},
		{ID: 1, Rate: 30, UnitBytes: 0, Granularity: 1},
		{ID: 1, Rate: 30, UnitBytes: 10, Granularity: 0},
	}
	for i, cfg := range bad {
		if _, err := NewWriter(r.d, r.a, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Wrong unit size rejected at append.
	w, err := NewWriter(r.d, r.a, WriterConfig{ID: 1, Medium: layout.Video, Rate: 30, UnitBytes: 10, Granularity: 1,
		Constraint: alloc.Constraint{MinCylinders: 1, MaxCylinders: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(media.Unit{Payload: make([]byte, 11)}); err == nil {
		t.Fatal("wrong-size unit accepted")
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	if _, err := w.Append(media.Unit{Payload: make([]byte, 10)}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestWriterAbortFreesSectors(t *testing.T) {
	r := newRig(t)
	free := r.a.FreeSectors()
	w, err := NewWriter(r.d, r.a, WriterConfig{ID: r.st.NewID(), Medium: layout.Video, Rate: 30,
		UnitBytes: 512, Granularity: 1, Constraint: alloc.Constraint{MinCylinders: 1, MaxCylinders: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(media.Unit{Seq: uint64(i), Payload: make([]byte, 512)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Abort()
	if r.a.FreeSectors() != free {
		t.Fatalf("abort leaked %d sectors", free-r.a.FreeSectors())
	}
}

func TestStoreRemoveFreesEverything(t *testing.T) {
	r := newRig(t)
	free := r.a.FreeSectors()
	s := r.writeVideo(t, 30, 1024, 3, 11)
	if r.a.FreeSectors() >= free {
		t.Fatal("strand occupies nothing?")
	}
	if err := r.st.Remove(s.ID()); err != nil {
		t.Fatal(err)
	}
	if r.a.FreeSectors() != free {
		t.Fatalf("remove leaked %d sectors", free-r.a.FreeSectors())
	}
	if err := r.st.Remove(s.ID()); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestStoreMarshalUnmarshalRoundTrip(t *testing.T) {
	r := newRig(t)
	s1 := r.writeVideo(t, 12, 1024, 3, 12)
	s2 := r.writeVideo(t, 21, 512, 3, 13)
	data := r.st.Marshal()

	st2 := NewStore(r.d, r.a)
	if err := st2.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Fatalf("restored %d strands", st2.Len())
	}
	for _, want := range []*Strand{s1, s2} {
		got, ok := st2.Get(want.ID())
		if !ok {
			t.Fatalf("strand %d lost", want.ID())
		}
		if got.UnitCount() != want.UnitCount() || got.NumBlocks() != want.NumBlocks() ||
			got.Granularity() != want.Granularity() || got.Rate() != want.Rate() {
			t.Fatalf("strand %d metadata mismatch", want.ID())
		}
	}
	// New IDs continue past the restored watermark.
	if id := st2.NewID(); id <= s2.ID() {
		t.Fatalf("next ID %d not past %d", id, s2.ID())
	}
	if err := st2.Unmarshal(data[:4]); err == nil {
		t.Fatal("truncated table accepted")
	}
}

func TestStoreDuplicatePutPanics(t *testing.T) {
	r := newRig(t)
	s := r.writeVideo(t, 3, 512, 1, 14)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate put did not panic")
		}
	}()
	r.st.Put(s)
}

func TestUnitRangeQuick(t *testing.T) {
	r := newRig(t)
	s := r.writeVideo(t, 50, 512, 4, 15)
	f := func(raw uint16) bool {
		u := uint64(raw) % 50
		blk, off, err := s.UnitRange(u)
		if err != nil {
			return false
		}
		return uint64(blk)*4+uint64(off) == u && off < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.UnitRange(50); err == nil {
		t.Fatal("out-of-range unit accepted")
	}
}

func TestBuildFromEntries(t *testing.T) {
	r := newRig(t)
	src := r.writeVideo(t, 12, 1024, 3, 16)
	// Copy the first two blocks to fresh locations.
	rd := NewReader(r.d, src)
	var entries []layout.PrimaryEntry
	for b := 0; b < 2; b++ {
		payload, silent, err := rd.BlockPayload(b)
		if err != nil || silent {
			t.Fatal(err)
		}
		run, err := r.a.AllocateNearCylinder(100, len(payload)/r.d.Geometry().SectorSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.d.WriteAt(run.LBA, payload); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, layout.PrimaryEntry{Sector: uint32(run.LBA), SectorCount: uint32(run.Sectors)})
	}
	copyStrand, err := r.st.BuildFromEntries(BuildMeta{
		ID: r.st.NewID(), Medium: layout.Video, Rate: 30, UnitBytes: 1024, Granularity: 3, UnitCount: 6,
	}, entries)
	if err != nil {
		t.Fatal(err)
	}
	crd := NewReader(r.d, copyStrand)
	for u := uint64(0); u < 6; u++ {
		got, err := crd.Unit(u)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rd.Unit(u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("copied unit %d differs", u)
		}
	}
}

func TestBlockSectors(t *testing.T) {
	r := newRig(t)
	s := r.writeVideo(t, 6, 1000, 3, 17)
	// 3 × 1000 bytes over 512-byte sectors → 6 sectors.
	if got := s.BlockSectors(512); got != 6 {
		t.Fatalf("block sectors %d", got)
	}
	if s.Duration() != 0.2 {
		t.Fatalf("duration %g", s.Duration())
	}
}
