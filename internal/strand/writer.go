package strand

import (
	"encoding/binary"
	"fmt"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/media"
)

// WriterConfig parameterizes recording of one strand.
type WriterConfig struct {
	// ID is the strand's unique ID (assigned by the store).
	ID ID
	// Medium is the strand's media kind.
	Medium layout.Medium
	// Rate is the recording rate in units/second.
	Rate float64
	// UnitBytes is the size of one unit in bytes.
	UnitBytes int
	// Granularity is the storage granularity q in units per block,
	// from the continuity derivation.
	Granularity int
	// Variable enables variable-rate compression support (§6.2):
	// units may have any size up to UnitBytes (the peak), blocks
	// shrink to their content, and each unit is stored with a length
	// prefix.
	Variable bool
	// Constraint bounds the placement of successive blocks (the
	// scattering parameter mapped to cylinders).
	Constraint alloc.Constraint
	// Silence, if non-nil, enables silence detection and elimination
	// for audio strands (§4).
	Silence *media.SilenceDetector
	// StartCylinder hints where the strand's first block should
	// land; recording spreads strands across the disk by varying it.
	StartCylinder int
	// Head selects the disk head assembly used for timed writes.
	Head int
}

func (c WriterConfig) validate() error {
	switch {
	case c.ID == Nil:
		return fmt.Errorf("strand: writer needs a non-nil strand ID")
	case c.Rate <= 0:
		return fmt.Errorf("strand: writer rate %g ≤ 0", c.Rate)
	case c.UnitBytes < 1:
		return fmt.Errorf("strand: writer unit size %d < 1 byte", c.UnitBytes)
	case c.Granularity < 1:
		return fmt.Errorf("strand: writer granularity %d < 1", c.Granularity)
	}
	return nil
}

// Writer records one strand: it accumulates units into blocks of
// Granularity units, places each block by constrained allocation,
// performs the timed disk write, and on Close builds the 3-level
// index. The strand becomes immutable the moment Close returns.
type Writer struct {
	cfg     WriterConfig
	d       disk.Device
	a       *alloc.Allocator
	pending []media.Unit
	entries []layout.PrimaryEntry
	// blockBuf is the reusable flush assembly buffer; valid only
	// during one flush.
	blockBuf []byte
	units    uint64
	prev     alloc.Run
	havePrev bool
	closed   bool
}

// NewWriter starts recording a strand.
func NewWriter(d disk.Device, a *alloc.Allocator, cfg WriterConfig) (*Writer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Writer{cfg: cfg, d: d, a: a}, nil
}

// Append adds one unit to the strand. When a full block of
// Granularity units has accumulated it is flushed; the returned
// duration is the disk service time of that flush (zero when no block
// was written). Recording and playback have symmetric continuity
// requirements (§3's assumptions), so the storage manager charges
// these times against the same per-round budget as reads.
func (w *Writer) Append(u media.Unit) (time.Duration, error) {
	if w.closed {
		//lint:ignore allocpath malformed appends abort the request; the error path is cold
		return 0, fmt.Errorf("strand %d: append after close", w.cfg.ID)
	}
	if w.cfg.Variable {
		if len(u.Payload) < 1 || len(u.Payload) > w.cfg.UnitBytes {
			//lint:ignore allocpath malformed appends abort the request; the error path is cold
			return 0, fmt.Errorf("strand %d: variable unit %d is %d bytes, want 1..%d", w.cfg.ID, u.Seq, len(u.Payload), w.cfg.UnitBytes)
		}
	} else if len(u.Payload) != w.cfg.UnitBytes {
		//lint:ignore allocpath malformed appends abort the request; the error path is cold
		return 0, fmt.Errorf("strand %d: unit %d is %d bytes, want %d", w.cfg.ID, u.Seq, len(u.Payload), w.cfg.UnitBytes)
	}
	w.pending = alloc.Append(w.pending, u)
	w.units++
	if len(w.pending) < w.cfg.Granularity {
		return 0, nil
	}
	return w.flush()
}

// flush writes the pending block (or records a silence holder).
func (w *Writer) flush() (time.Duration, error) {
	if len(w.pending) == 0 {
		return 0, nil
	}
	//lint:ignore allocpath the deferred reset captures only the receiver; escape analysis keeps it on the stack
	defer func() { w.pending = w.pending[:0] }()

	if w.cfg.Silence != nil && w.allPendingSilent() {
		// §4: no audio data is stored for a silent block; a NULL
		// pointer in the primary block represents the delay.
		//lint:ignore allocpath the index is the strand's durable state; it must grow
		w.entries = append(w.entries, layout.SilenceEntry())
		return 0, nil
	}

	// Assemble the block into the reusable scratch buffer; Write
	// copies it into the disk's backing store before returning.
	buf := w.blockBuf[:0]
	if w.cfg.Variable {
		// Self-describing block: a 32-bit length prefixes each unit.
		for _, u := range w.pending {
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(u.Payload)))
			buf = alloc.AppendBytes(buf, hdr[:])
			buf = alloc.AppendBytes(buf, u.Payload)
		}
	} else {
		for _, u := range w.pending {
			buf = alloc.AppendBytes(buf, u.Payload)
		}
	}
	w.blockBuf = buf
	ss := w.d.Geometry().SectorSize
	nsec := (len(buf) + ss - 1) / ss
	run, err := w.allocateBlock(nsec)
	if err != nil {
		// The pending units are lost with the failed block; keep the
		// unit count consistent with what lands on disk.
		w.units -= uint64(len(w.pending))
		return 0, err
	}
	t, err := w.d.Write(w.cfg.Head, run.LBA, buf)
	if err != nil {
		w.a.Free(run)
		w.units -= uint64(len(w.pending))
		return 0, err
	}
	//lint:ignore allocpath the index is the strand's durable state; it must grow
	w.entries = append(w.entries, layout.PrimaryEntry{Sector: uint32(run.LBA), SectorCount: uint32(run.Sectors)})
	w.prev = run
	w.havePrev = true
	return t, nil
}

func (w *Writer) allPendingSilent() bool {
	for _, u := range w.pending {
		if !w.cfg.Silence.Silent(u.Payload) {
			return false
		}
	}
	return true
}

func (w *Writer) allocateBlock(nsec int) (alloc.Run, error) {
	if !w.havePrev {
		return w.a.AllocateNearCylinder(w.cfg.StartCylinder, nsec)
	}
	return w.a.AllocateConstrained(w.prev, nsec, w.cfg.Constraint)
}

// Close flushes any partial final block, builds the index, and
// returns the completed immutable strand. A partial block is padded
// on disk but the header's unit count preserves the true length.
func (w *Writer) Close() (*Strand, error) {
	if w.closed {
		return nil, fmt.Errorf("strand %d: double close", w.cfg.ID)
	}
	w.closed = true
	if len(w.pending) > 0 {
		if _, err := w.flush(); err != nil {
			return nil, err
		}
	}
	var flags uint8
	if w.cfg.Variable {
		flags |= layout.FlagVariable
	}
	h := layout.Header{
		StrandID:    uint64(w.cfg.ID),
		Medium:      w.cfg.Medium,
		Flags:       flags,
		RateMilli:   uint64(w.cfg.Rate * 1000),
		UnitBits:    uint32(w.cfg.UnitBytes * 8),
		Granularity: uint32(w.cfg.Granularity),
		UnitCount:   w.units,
	}
	ix, err := layout.BuildIndex(h, w.entries, w.d.Geometry().SectorSize, w.allocMeta, w.d)
	if err != nil {
		return nil, err
	}
	return FromIndex(ix), nil
}

// Abort releases everything the writer has allocated; used when a
// RECORD request is stopped by an error.
func (w *Writer) Abort() {
	w.closed = true
	for _, e := range w.entries {
		if e.Silent() {
			continue
		}
		w.a.Free(alloc.Run{LBA: int(e.Sector), Sectors: int(e.SectorCount)})
	}
	w.entries = nil
	w.pending = nil
}

func (w *Writer) allocMeta(sectors int) (int, error) {
	r, err := w.a.Allocate(sectors)
	if err != nil {
		return 0, err
	}
	return r.LBA, nil
}

// UnitsWritten reports how many units have been appended so far.
func (w *Writer) UnitsWritten() uint64 { return w.units }

// BlocksWritten reports how many blocks (including silence holders)
// have been emitted so far.
func (w *Writer) BlocksWritten() int { return len(w.entries) }
