package strand

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
)

// Store is the strand registry of one file system: it assigns unique
// IDs, keeps loaded strands, and persists the (ID → header block)
// table so strands survive unmount. Reclamation is driven from above
// by the interests-based garbage collector (internal/gc); Remove here
// frees the strand's media and index sectors.
type Store struct {
	d       disk.Device
	a       *alloc.Allocator
	strands map[ID]*Strand
	nextID  ID
}

// NewStore creates an empty registry over the disk and allocator.
func NewStore(d disk.Device, a *alloc.Allocator) *Store {
	return &Store{d: d, a: a, strands: make(map[ID]*Strand), nextID: 1}
}

// NewID reserves the next unique strand ID.
func (st *Store) NewID() ID {
	id := st.nextID
	st.nextID++
	return id
}

// Put registers a completed strand. Registering a duplicate ID is a
// programming error and panics.
func (st *Store) Put(s *Strand) {
	if _, ok := st.strands[s.ID()]; ok {
		panic(fmt.Sprintf("strand: duplicate ID %d", s.ID()))
	}
	st.strands[s.ID()] = s
	if s.ID() >= st.nextID {
		st.nextID = s.ID() + 1
	}
}

// Get looks up a strand by ID.
func (st *Store) Get(id ID) (*Strand, bool) {
	s, ok := st.strands[id]
	return s, ok
}

// MustGet looks up a strand that is known to exist.
func (st *Store) MustGet(id ID) *Strand {
	s, ok := st.strands[id]
	if !ok {
		panic(fmt.Sprintf("strand: unknown ID %d", id))
	}
	return s
}

// Len reports the number of registered strands.
func (st *Store) Len() int { return len(st.strands) }

// IDs lists registered strand IDs in ascending order.
func (st *Store) IDs() []ID {
	out := make([]ID, 0, len(st.strands))
	for id := range st.strands {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Remove unregisters the strand and frees its media blocks and index
// blocks. The caller (the garbage collector) guarantees no rope still
// references it.
func (st *Store) Remove(id ID) error {
	s, ok := st.strands[id]
	if !ok {
		return fmt.Errorf("strand: remove of unknown ID %d", id)
	}
	for _, r := range s.MediaRuns() {
		st.a.Free(r)
	}
	for _, r := range s.MetaRuns() {
		st.a.Free(r)
	}
	delete(st.strands, id)
	return nil
}

// tableEntrySize is the marshaled size of one strand-table entry.
const tableEntrySize = 8 + 4 + 4

// Marshal serializes the registry table (ID, header location) plus the
// next-ID watermark.
func (st *Store) Marshal() []byte {
	ids := st.IDs()
	buf := make([]byte, 8+4+len(ids)*tableEntrySize)
	binary.LittleEndian.PutUint64(buf, uint64(st.nextID))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(ids)))
	o := 12
	for _, id := range ids {
		s := st.strands[id]
		binary.LittleEndian.PutUint64(buf[o:], uint64(id))
		binary.LittleEndian.PutUint32(buf[o+8:], s.ix.HeaderRun.Sector)
		binary.LittleEndian.PutUint32(buf[o+12:], s.ix.HeaderRun.SectorCount)
		o += tableEntrySize
	}
	return buf
}

// Unmarshal restores the registry by loading each strand's index from
// disk.
func (st *Store) Unmarshal(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("strand: table truncated at %d bytes", len(data))
	}
	st.nextID = ID(binary.LittleEndian.Uint64(data))
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if 12+n*tableEntrySize > len(data) {
		return fmt.Errorf("strand: table claims %d entries beyond %d bytes", n, len(data))
	}
	st.strands = make(map[ID]*Strand, n)
	o := 12
	for i := 0; i < n; i++ {
		id := ID(binary.LittleEndian.Uint64(data[o:]))
		hlba := int(binary.LittleEndian.Uint32(data[o+8:]))
		hsec := int(binary.LittleEndian.Uint32(data[o+12:]))
		o += tableEntrySize
		ix, err := layout.LoadIndex(st.d, hlba, hsec, st.d.Geometry().SectorSize)
		if err != nil {
			return fmt.Errorf("strand %d: %w", id, err)
		}
		if ID(ix.Header.StrandID) != id {
			return fmt.Errorf("strand table names %d but header says %d", id, ix.Header.StrandID)
		}
		st.strands[id] = FromIndex(ix)
	}
	return nil
}

// BuildMeta describes the identity of a strand assembled from
// already-written blocks (the editing path: redistribution copies).
type BuildMeta struct {
	ID          ID
	Medium      layout.Medium
	Rate        float64
	UnitBytes   int
	Granularity int
	UnitCount   uint64
	Variable    bool
}

// BuildFromEntries constructs and registers a strand over media blocks
// that are already on disk (and already allocated), building a fresh
// index. Rope editing uses it to create the small copied strands the
// scattering-maintenance algorithm produces (§4.2: "copying creates a
// new strand containing only the copied blocks").
func (st *Store) BuildFromEntries(meta BuildMeta, entries []layout.PrimaryEntry) (*Strand, error) {
	var flags uint8
	if meta.Variable {
		flags |= layout.FlagVariable
	}
	h := layout.Header{
		StrandID:    uint64(meta.ID),
		Medium:      meta.Medium,
		Flags:       flags,
		RateMilli:   uint64(meta.Rate * 1000),
		UnitBits:    uint32(meta.UnitBytes * 8),
		Granularity: uint32(meta.Granularity),
		UnitCount:   meta.UnitCount,
	}
	ix, err := layout.BuildIndex(h, entries, st.d.Geometry().SectorSize, func(n int) (int, error) {
		r, err := st.a.Allocate(n)
		if err != nil {
			return 0, err
		}
		return r.LBA, nil
	}, st.d)
	if err != nil {
		return nil, err
	}
	s := FromIndex(ix)
	st.Put(s)
	return s, nil
}
