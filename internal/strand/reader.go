package strand

import (
	"encoding/binary"
	"fmt"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
)

// SilenceFill is the payload byte used to reconstruct eliminated
// silent blocks at playback: the 8-bit audio midpoint for audio, zero
// for video (video strands never contain silence holders in practice).
func SilenceFill(m layout.Medium) byte {
	if m == layout.Audio {
		return 128
	}
	return 0
}

// Reader retrieves a strand's media blocks from disk. Timed reads are
// the continuity-bearing path used by the storage manager's service
// rounds; untimed unit access serves verification and editing.
type Reader struct {
	s *Strand
	d disk.Device
}

// NewReader creates a reader over the strand.
func NewReader(d disk.Device, s *Strand) *Reader { return &Reader{s: s, d: d} }

// Strand returns the strand being read.
func (r *Reader) Strand() *Strand { return r.s }

// ReadBlock performs the timed read of media block i by head h,
// returning the block payload (trimmed to the real unit count for the
// final partial block), the disk service time, and whether the block
// was a silence holder (service time zero — a delay holder consumes
// playback time but no disk time). On a disk error the returned t is
// the service time the failed access still cost; the storage manager
// charges it against the round before retrying.
func (r *Reader) ReadBlock(h, i int) (data []byte, t time.Duration, silent bool, err error) {
	e, err := r.s.Block(i)
	if err != nil {
		return nil, 0, false, err
	}
	n := r.blockPayloadBytes(i)
	if e.Silent() {
		buf := make([]byte, n)
		fill := SilenceFill(r.s.Medium())
		for j := range buf {
			buf[j] = fill
		}
		return buf, 0, true, nil
	}
	raw, t, err := r.d.Read(h, int(e.Sector), int(e.SectorCount))
	if err != nil {
		return nil, t, false, err
	}
	if r.s.Variable() {
		// Variable-rate blocks are self-describing; return them raw.
		return raw, t, false, nil
	}
	return raw[:n], t, false, nil
}

// ReadBlockInto is ReadBlock recycling the caller's scratch buffer:
// *buf is grown (via the alloc scratch arena) to the block's full
// sector span, refilled, and the returned slice aliases it trimmed to
// the payload. Steady-state service rounds reuse one buffer per
// manager, which is what keeps BenchmarkPlaybackRound at zero
// allocations per round.
//
// rt:hotpath
func (r *Reader) ReadBlockInto(h, i int, buf *[]byte) (data []byte, t time.Duration, silent bool, err error) {
	e, err := r.s.Block(i)
	if err != nil {
		return nil, 0, false, err
	}
	n := r.blockPayloadBytes(i)
	if e.Silent() {
		b := alloc.Grow(*buf, n)
		*buf = b
		fill := SilenceFill(r.s.Medium())
		for j := range b {
			b[j] = fill
		}
		return b, 0, true, nil
	}
	sectors := int(e.SectorCount)
	ss := r.d.Geometry().SectorSize
	b := alloc.Grow(*buf, sectors*ss)
	*buf = b
	t, err = r.d.ReadInto(h, int(e.Sector), sectors, b)
	if err != nil {
		return nil, t, false, err
	}
	if r.s.Variable() {
		// Variable-rate blocks are self-describing; return them raw.
		return b, t, false, nil
	}
	return b[:n], t, false, nil
}

// PeekBlockTime reports the service time head h would pay to read
// block i from its current position, without moving the head. Silence
// holders cost zero.
func (r *Reader) PeekBlockTime(h, i int) (time.Duration, error) {
	e, err := r.s.Block(i)
	if err != nil {
		return 0, err
	}
	if e.Silent() {
		return 0, nil
	}
	return r.d.PeekServiceTime(h, int(e.Sector), int(e.SectorCount)), nil
}

// blockPayloadBytes is the number of meaningful bytes in block i: a
// full block for all but a trailing partial block.
func (r *Reader) blockPayloadBytes(i int) int {
	q := uint64(r.s.Granularity())
	full := q * uint64(i)
	remaining := r.s.UnitCount() - full
	if remaining > q {
		remaining = q
	}
	return int(remaining) * r.s.UnitBytes()
}

// Unit fetches one unit's payload by global unit number, untimed.
// Units inside eliminated silent blocks come back as silence fill.
func (r *Reader) Unit(u uint64) ([]byte, error) {
	blk, off, err := r.s.UnitRange(u)
	if err != nil {
		return nil, err
	}
	e, err := r.s.Block(blk)
	if err != nil {
		return nil, err
	}
	ub := r.s.UnitBytes()
	if e.Silent() {
		buf := make([]byte, ub)
		fill := SilenceFill(r.s.Medium())
		for j := range buf {
			buf[j] = fill
		}
		return buf, nil
	}
	raw, err := r.d.ReadAt(int(e.Sector), int(e.SectorCount))
	if err != nil {
		return nil, err
	}
	if r.s.Variable() {
		return parseVariableUnit(raw, off, r.s.ID(), u)
	}
	lo := off * ub
	if lo+ub > len(raw) {
		return nil, fmt.Errorf("strand %d: unit %d beyond block payload", r.s.ID(), u)
	}
	return raw[lo : lo+ub], nil
}

// parseVariableUnit walks a variable-rate block's length-prefixed
// units to the off-th one.
func parseVariableUnit(raw []byte, off int, id ID, u uint64) ([]byte, error) {
	o := 0
	for i := 0; ; i++ {
		if o+4 > len(raw) {
			return nil, fmt.Errorf("strand %d: unit %d beyond variable block payload", id, u)
		}
		n := int(binary.LittleEndian.Uint32(raw[o:]))
		o += 4
		if o+n > len(raw) {
			return nil, fmt.Errorf("strand %d: corrupt variable block (unit %d claims %d bytes)", id, u, n)
		}
		if i == off {
			return raw[o : o+n], nil
		}
		o += n
	}
}

// BlockPayload fetches the full payload of block i untimed; rope
// editing uses it when copying blocks to fresh locations.
func (r *Reader) BlockPayload(i int) ([]byte, bool, error) {
	e, err := r.s.Block(i)
	if err != nil {
		return nil, false, err
	}
	if e.Silent() {
		return nil, true, nil
	}
	raw, err := r.d.ReadAt(int(e.Sector), int(e.SectorCount))
	if err != nil {
		return nil, false, err
	}
	return raw, false, nil
}
