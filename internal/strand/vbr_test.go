package strand

import (
	"bytes"
	"testing"

	"mmfs/internal/alloc"
	"mmfs/internal/layout"
	"mmfs/internal/media"
)

// writeVBR records a variable-rate strand through the writer.
func (r *rig) writeVBR(t *testing.T, frames, peak, diff, gop, q int, seed int64) *Strand {
	t.Helper()
	w, err := NewWriter(r.d, r.a, WriterConfig{
		ID:          r.st.NewID(),
		Medium:      layout.Video,
		Rate:        30,
		UnitBytes:   peak,
		Granularity: q,
		Variable:    true,
		Constraint:  alloc.Constraint{MinCylinders: 1, MaxCylinders: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVBRVideoSource(frames, peak, diff, gop, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	r.st.Put(s)
	return s
}

func TestVBRRoundTrip(t *testing.T) {
	r := newRig(t)
	const frames, peak, diff, gop, q = 60, 8192, 2048, 10, 3
	s := r.writeVBR(t, frames, peak, diff, gop, q, 99)
	if !s.Variable() {
		t.Fatal("strand not flagged variable")
	}
	if s.UnitCount() != frames {
		t.Fatalf("units %d", s.UnitCount())
	}
	rd := NewReader(r.d, s)
	for f := uint64(0); f < frames; f++ {
		got, err := rd.Unit(f)
		if err != nil {
			t.Fatalf("unit %d: %v", f, err)
		}
		want := media.VBRFramePayload(99, f, peak, diff, gop)
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %d bytes vs %d expected", f, len(got), len(want))
		}
	}
}

func TestVBRBlocksShrinkToContent(t *testing.T) {
	r := newRig(t)
	const frames, peak, diff, gop, q = 60, 8192, 2048, 10, 3
	s := r.writeVBR(t, frames, peak, diff, gop, q, 7)
	ss := r.d.Geometry().SectorSize
	peakBlockSectors := (q*(peak+4) + ss - 1) / ss
	smaller := 0
	total := 0
	for i := 0; i < s.NumBlocks(); i++ {
		e, _ := s.Block(i)
		total += int(e.SectorCount)
		if int(e.SectorCount) < peakBlockSectors {
			smaller++
		}
	}
	if smaller == 0 {
		t.Fatal("no block smaller than peak provisioning")
	}
	// Storage must be well below peak provisioning (gop 10 at 4:1
	// peak:diff ratio → ~2.7:1 gain).
	if total >= s.NumBlocks()*peakBlockSectors*2/3 {
		t.Fatalf("VBR stored %d sectors, peak provisioning %d: no meaningful gain",
			total, s.NumBlocks()*peakBlockSectors)
	}
}

func TestVBRSurvivesStoreRoundTrip(t *testing.T) {
	r := newRig(t)
	s := r.writeVBR(t, 30, 4096, 1024, 5, 3, 11)
	data := r.st.Marshal()
	st2 := NewStore(r.d, r.a)
	if err := st2.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get(s.ID())
	if !ok {
		t.Fatal("strand lost")
	}
	if !got.Variable() {
		t.Fatal("variable flag lost across persistence")
	}
	rd := NewReader(r.d, got)
	u, err := rd.Unit(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(u, media.VBRFramePayload(11, 7, 4096, 1024, 5)) {
		t.Fatal("unit corrupted after reload")
	}
}

func TestVBRRejectsOversizedUnit(t *testing.T) {
	r := newRig(t)
	w, err := NewWriter(r.d, r.a, WriterConfig{
		ID: r.st.NewID(), Medium: layout.Video, Rate: 30, UnitBytes: 1000,
		Granularity: 1, Variable: true,
		Constraint: alloc.Constraint{MinCylinders: 1, MaxCylinders: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(media.Unit{Payload: make([]byte, 1001)}); err == nil {
		t.Fatal("unit above peak accepted")
	}
	if _, err := w.Append(media.Unit{Payload: nil}); err == nil {
		t.Fatal("empty unit accepted")
	}
	if _, err := w.Append(media.Unit{Payload: make([]byte, 500)}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVBRSourceDeterministic(t *testing.T) {
	a := media.NewVBRVideoSource(20, 4096, 1024, 5, 30, 3)
	b := media.NewVBRVideoSource(20, 4096, 1024, 5, 30, 3)
	for {
		ua, oka := a.Next()
		ub, okb := b.Next()
		if oka != okb {
			t.Fatal("length divergence")
		}
		if !oka {
			break
		}
		if !bytes.Equal(ua.Payload, ub.Payload) {
			t.Fatalf("frame %d differs", ua.Seq)
		}
	}
	// Intra frames hit the peak exactly on the GOP boundary.
	if media.VBRFrameSize(3, 0, 4096, 1024, 5) != 4096 {
		t.Fatal("frame 0 not intra")
	}
	if media.VBRFrameSize(3, 5, 4096, 1024, 5) != 4096 {
		t.Fatal("frame 5 not intra")
	}
	if media.VBRFrameSize(3, 1, 4096, 1024, 5) >= 4096 {
		t.Fatal("difference frame at peak size")
	}
	// Average tracks the GOP mixture.
	src := media.NewVBRVideoSource(20, 4096, 1024, 5, 30, 3)
	want := (4096.0 + 4*1024.0) / 5
	if got := src.AvgBytes(); got != want {
		t.Fatalf("avg %g want %g", got, want)
	}
	if !media.IsVariable(src) {
		t.Fatal("VBR source not variable")
	}
	if media.IsVariable(media.NewVideoSource(1, 100, 30, 1)) {
		t.Fatal("CBR source claims variable")
	}
}
