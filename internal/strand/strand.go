// Package strand implements the paper's strand abstraction: "an
// immutable sequence of continuously recorded audio samples or video
// frames" (§2). A strand's media blocks are placed by constrained
// allocation so the scattering parameter stays within bounds, and are
// located through the 3-level index of internal/layout. Immutability
// "is necessary to simplify the process of garbage collection": all
// editing happens above, in internal/rope, by manipulating pointers to
// strand intervals.
package strand

import (
	"fmt"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
)

// ID uniquely identifies a strand within one file system.
type ID uint64

// Nil is the absent-strand ID (the paper: "a NULL ID indicates the
// absence of that media in the rope").
const Nil ID = 0

// Strand is a loaded, immutable media strand.
type Strand struct {
	ix *layout.Index
}

// FromIndex wraps a resolved index as a strand.
func FromIndex(ix *layout.Index) *Strand { return &Strand{ix: ix} }

// ID returns the strand's unique ID.
func (s *Strand) ID() ID { return ID(s.ix.Header.StrandID) }

// Medium reports whether the strand holds video frames or audio
// samples.
func (s *Strand) Medium() layout.Medium { return s.ix.Header.Medium }

// Rate is the recording rate in units/second (Figure 6's frameRate).
func (s *Strand) Rate() float64 { return s.ix.Header.Rate() }

// Granularity is the storage granularity in units per media block.
func (s *Strand) Granularity() int { return int(s.ix.Header.Granularity) }

// UnitBits is the size of one unit in bits.
func (s *Strand) UnitBits() int { return int(s.ix.Header.UnitBits) }

// UnitBytes is the size of one unit in bytes (unit sizes are whole
// bytes in this implementation); for variable-rate strands it is the
// peak unit size.
func (s *Strand) UnitBytes() int { return int(s.ix.Header.UnitBits) / 8 }

// Variable reports whether the strand stores variable-size units
// (variable-rate compression, §6.2).
func (s *Strand) Variable() bool { return s.ix.Header.Flags&layout.FlagVariable != 0 }

// UnitCount is the total number of recorded units, including units in
// eliminated silent blocks (Figure 6's frameCount).
func (s *Strand) UnitCount() uint64 { return s.ix.Header.UnitCount }

// NumBlocks is the number of media blocks including silence holders.
func (s *Strand) NumBlocks() int { return s.ix.NumBlocks() }

// Duration is the strand's playback duration in seconds.
func (s *Strand) Duration() float64 { return float64(s.UnitCount()) / s.Rate() }

// Block returns the index entry for media block i.
func (s *Strand) Block(i int) (layout.PrimaryEntry, error) { return s.ix.Block(i) }

// BlockSectors is the size of a full (non-silent) media block in
// sectors for the given sector size.
func (s *Strand) BlockSectors(sectorSize int) int {
	bytes := s.Granularity() * s.UnitBytes()
	return (bytes + sectorSize - 1) / sectorSize
}

// Index exposes the underlying index; the store and GC use it.
func (s *Strand) Index() *layout.Index { return s.ix }

// MediaRuns lists the disk runs of all non-silent media blocks.
func (s *Strand) MediaRuns() []alloc.Run {
	var runs []alloc.Run
	for _, e := range s.ix.Entries {
		if e.Silent() {
			continue
		}
		runs = append(runs, alloc.Run{LBA: int(e.Sector), Sectors: int(e.SectorCount)})
	}
	return runs
}

// MetaRuns lists the disk runs of the index blocks (header, secondary,
// primary).
func (s *Strand) MetaRuns() []alloc.Run {
	runs := []alloc.Run{{LBA: int(s.ix.HeaderRun.Sector), Sectors: int(s.ix.HeaderRun.SectorCount)}}
	for _, m := range s.ix.MetaRuns {
		runs = append(runs, alloc.Run{LBA: int(m.Sector), Sectors: int(m.SectorCount)})
	}
	return runs
}

// ScatterTimes reports the positioning time (seek + average rotational
// latency) between each pair of successive non-silent media blocks —
// the realized scattering parameters, which must lie within the
// strand's derived bounds. Experiments verify layout correctness with
// it.
func (s *Strand) ScatterTimes(g disk.Geometry) []time.Duration {
	var out []time.Duration
	prev := -1
	for _, e := range s.ix.Entries {
		if e.Silent() {
			continue
		}
		cyl := g.CylinderOf(int(e.Sector))
		if prev >= 0 {
			d := cyl - prev
			if d < 0 {
				d = -d
			}
			out = append(out, g.AccessTime(d))
		}
		prev = cyl
	}
	return out
}

// MaxScatterTime is the largest realized inter-block access time, or
// zero for strands with fewer than two stored blocks.
func (s *Strand) MaxScatterTime(g disk.Geometry) time.Duration {
	var max time.Duration
	for _, t := range s.ScatterTimes(g) {
		if t > max {
			max = t
		}
	}
	return max
}

// UnitRange describes which media block holds unit u and at what
// offset.
func (s *Strand) UnitRange(u uint64) (block int, offset int, err error) {
	if u >= s.UnitCount() {
		return 0, 0, fmt.Errorf("strand %d: unit %d outside %d units", s.ID(), u, s.UnitCount())
	}
	q := uint64(s.Granularity())
	return int(u / q), int(u % q), nil
}
