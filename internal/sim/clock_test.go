package sim

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(0)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("clock at %v, want 5ms", c.Now())
	}
	c.AdvanceTo(7 * time.Millisecond)
	if c.Now() != 7*time.Millisecond {
		t.Fatalf("clock at %v, want 7ms", c.Now())
	}
	c.AdvanceTo(7 * time.Millisecond) // same instant is a no-op
}

func TestClockPanicsOnBackwardsTime(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	mustPanic(t, func() { c.Advance(-time.Nanosecond) })
	mustPanic(t, func() { c.AdvanceTo(999 * time.Millisecond) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(30*time.Millisecond, "c", func(*Engine) { got = append(got, "c") })
	e.Schedule(10*time.Millisecond, "a", func(*Engine) { got = append(got, "a") })
	e.Schedule(20*time.Millisecond, "b", func(*Engine) { got = append(got, "b") })
	e.Run()
	want := "abc"
	if s := join(got); s != want {
		t.Fatalf("order %q, want %q", s, want)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("engine at %v", e.Now())
	}
	if e.Processed != 3 {
		t.Fatalf("processed %d", e.Processed)
	}
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s
	}
	return out
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var got []string
	for _, name := range []string{"1", "2", "3", "4"} {
		name := name
		e.Schedule(time.Millisecond, name, func(*Engine) { got = append(got, name) })
	}
	e.Run()
	if s := join(got); s != "1234" {
		t.Fatalf("simultaneous events ran %q, want FIFO", s)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Millisecond, "x", func(*Engine) { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("cancel of pending event reported false")
	}
	if e.Cancel(ev) {
		t.Fatal("double cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(nil) {
		t.Fatal("cancel(nil) reported true")
	}
}

func TestEngineEventsScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		if count < 10 {
			en.After(time.Millisecond, "tick", tick)
		}
	}
	e.After(time.Millisecond, "tick", tick)
	e.Run()
	if count != 10 {
		t.Fatalf("ticked %d times, want 10", count)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("engine at %v, want 10ms", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		e.Schedule(d, "e", func(*Engine) { fired = append(fired, d) })
	}
	e.RunUntil(12 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by 12ms, want 2", len(fired))
	}
	if e.Now() != 12*time.Millisecond {
		t.Fatalf("engine at %v, want 12ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d total, want 4", len(fired))
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Millisecond, "a", func(*Engine) {})
	e.Run()
	mustPanic(t, func() { e.Schedule(0, "late", func(*Engine) {}) })
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("step on empty queue reported work")
	}
}
