// Package sim provides the virtual time base and discrete-event engine
// that every timed component of the file system (disk, display devices,
// service rounds) runs on. Simulated time is decoupled from wall-clock
// time so that experiments are deterministic and fast.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time zero, ready to use.
type Clock struct {
	now time.Duration
}

// Now reports the current virtual time as an offset from the start of
// the simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. It panics if d is negative:
// virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to t. Moving to the current time is
// a no-op; moving backwards panics.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before current time %v", t, c.now))
	}
	c.now = t
}

// Event is a scheduled callback in an Engine. The callback receives the
// engine so it can schedule further events.
type Event struct {
	At   time.Duration
	Name string
	Fn   func(*Engine)

	index int // heap index
	seq   uint64
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine: a virtual clock plus a
// time-ordered event queue. Events scheduled for the same instant run
// in the order they were scheduled.
type Engine struct {
	clock Clock
	queue eventQueue
	seq   uint64

	// Processed counts events that have been dispatched.
	Processed uint64
}

// NewEngine returns an engine with an empty queue at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the engine's current virtual time.
func (e *Engine) Now() time.Duration { return e.clock.Now() }

// Schedule enqueues fn to run at absolute virtual time at. Scheduling
// in the past panics. The returned event can be cancelled.
func (e *Engine) Schedule(at time.Duration, name string, fn func(*Engine)) *Event {
	if at < e.clock.Now() {
		panic(fmt.Sprintf("sim: Schedule %q at %v before current time %v", name, at, e.clock.Now()))
	}
	e.seq++
	ev := &Event{At: at, Name: name, Fn: fn, seq: e.seq}
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, name string, fn func(*Engine)) *Event {
	return e.Schedule(e.clock.Now()+d, name, fn)
}

// Cancel removes ev from the queue if it has not yet fired. It reports
// whether the event was pending.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	return true
}

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Step dispatches the earliest pending event, advancing the clock to
// its time. It reports false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.clock.AdvanceTo(ev.At)
	e.Processed++
	ev.Fn(e)
	return true
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with times ≤ deadline, then advances the
// clock to the deadline (if it is ahead of the last event).
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.clock.Now() < deadline {
		e.clock.AdvanceTo(deadline)
	}
}
