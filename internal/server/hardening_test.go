package server

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mmfs/internal/client"
	"mmfs/internal/core"
	"mmfs/internal/wire"
)

// startHardenedServer brings up a server with the given edge policy and
// returns its address plus the server for direct inspection.
func startHardenedServer(t *testing.T, configure func(*Server)) (*Server, string) {
	t.Helper()
	fs, err := core.Format(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(fs)
	if configure != nil {
		configure(srv)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, lis.Addr().String()
}

// TestMaxConnsRejectsExcess verifies the connection cap: the excess
// connection is answered with one ErrServerBusy frame, and the slot
// frees up when an admitted connection leaves.
func TestMaxConnsRejectsExcess(t *testing.T) {
	srv, addr := startHardenedServer(t, func(s *Server) { s.MaxConns = 1 })

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.ListRopes(); err != nil {
		t.Fatalf("first connection: %v", err)
	}

	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err) // TCP accept succeeds; the refusal is a response frame
	}
	_, err = c2.ListRopes()
	if err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("over-limit connection got %v, want server busy", err)
	}
	c2.Close()

	if got := srv.reg.Counter("mmfs_server_rejected_conns_total").Value(); got == 0 {
		t.Fatal("rejection not counted")
	}

	// Freeing the admitted connection reopens the slot.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c3.ListRopes()
		c3.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadTimeoutDropsIdleConn verifies an idle connection is dropped
// once its per-frame read deadline expires.
func TestReadTimeoutDropsIdleConn(t *testing.T) {
	_, addr := startHardenedServer(t, func(s *Server) { s.ReadTimeout = 50 * time.Millisecond })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing: the server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection was not dropped")
	}
}

// TestGracefulDrain verifies Close lets an in-flight request finish and
// deliver its response, while idle connections are released promptly.
func TestGracefulDrain(t *testing.T) {
	srv, addr := startHardenedServer(t, nil)

	// One idle connection that would block Close forever without the
	// deadline nudge.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	// One connection with a request racing the drain.
	busy, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	// Let both handlers register before draining.
	time.Sleep(20 * time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	respErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		if err := wire.WriteFrame(busy, wire.Request(wire.OpListRopes, nil)); err != nil {
			respErr <- err
			return
		}
		frame, err := wire.ReadFrame(busy)
		if err != nil {
			respErr <- err
			return
		}
		_, err = wire.ParseResponse(frame)
		respErr <- err
	}()

	done := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain within 5s")
	}
	wg.Wait()
	// The in-flight request either completed with its response (the
	// graceful path) or was sent after the drain cut the connection —
	// but it must never hang.
	select {
	case <-respErr:
	default:
		t.Fatal("in-flight request left unresolved")
	}

	// Post-drain connections are refused outright.
	late, err := net.Dial("tcp", addr)
	if err == nil {
		late.Close()
	}
}

// TestDrainRefusesNewConns verifies a connection arriving during the
// drain window is refused with ErrServerBusy rather than wedged.
func TestDrainRefusesNewConns(t *testing.T) {
	srv, addr := startHardenedServer(t, nil)
	_ = addr
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if ok := srv.registerConn(nil); ok {
		t.Fatal("draining server admitted a connection")
	}
}
