package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mmfs/internal/client"
	"mmfs/internal/media"
	"mmfs/internal/rope"
	"mmfs/internal/wire"
)

func TestServerSurvivesMalformedFrames(t *testing.T) {
	_, _, addr := startServerAddr(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	expectError := func(payload []byte, what string) {
		t.Helper()
		if err := wire.WriteFrame(conn, payload); err != nil {
			t.Fatal(err)
		}
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("%s: connection died: %v", what, err)
		}
		if _, err := wire.ParseResponse(frame); err == nil {
			t.Fatalf("%s produced a success response", what)
		}
	}
	expectError([]byte{7}, "runt frame")
	expectError(wire.Request(wire.Op(9999), nil), "unknown opcode")
	expectError(wire.Request(wire.OpPlay, []byte{1, 2}), "truncated body")
	expectError(wire.Request(wire.OpRecordAppend, wire.NewEncoder().U64(999).U16(1).U32(1).Blob([]byte("x")).Bytes()), "append to unknown session")

	// The connection still serves valid requests afterwards.
	if err := wire.WriteFrame(conn, wire.Request(wire.OpListRopes, nil)); err != nil {
		t.Fatal(err)
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ParseResponse(frame); err != nil {
		t.Fatalf("valid request after garbage failed: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	// Multiple clients hammer the server at once; the server lock
	// must serialize cleanly with no lost updates or corruption.
	cMain, _, addr := startServerAddr(t)
	id, _, err := cMain.RecordClip("owner", media.NewVideoSource(60, 18000, 30, 31), nil, false)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c2, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c2.Close()
			for i := 0; i < 5; i++ {
				if _, err := c2.Info(id); err != nil {
					errs <- fmt.Errorf("worker %d info: %w", w, err)
					return
				}
				res, err := c2.Play("owner", id, rope.VideoOnly, 0, 0, 2, "")
				if err != nil {
					errs <- fmt.Errorf("worker %d play: %w", w, err)
					return
				}
				if res.Violations != 0 {
					errs <- fmt.Errorf("worker %d: %d violations", w, res.Violations)
					return
				}
				if err := c2.TextWrite(fmt.Sprintf("w%d-%d", w, i), []byte("x")); err != nil {
					errs <- fmt.Errorf("worker %d text: %w", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errs:
		t.Fatal(err)
	case <-done:
	}

	names, err := cMain.TextList()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 20 {
		t.Fatalf("%d text files, want 20", len(names))
	}
	problems, err := cMain.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("fsck after concurrent load: %v", problems)
	}
}

func TestRecordSessionUploadInBatches(t *testing.T) {
	c, _ := startServer(t)
	sess, err := c.RecordStart("batch", &client.MediumSpec{UnitBytes: 18000, Rate: 30}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVideoSource(200, 18000, 30, 41) // > one append batch
	var units [][]byte
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		units = append(units, u.Payload)
	}
	if err := sess.Append(rope.VideoOnly, units); err != nil {
		t.Fatal(err)
	}
	id, length, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if length.Seconds() < 6.6 || length.Seconds() > 6.7 {
		t.Fatalf("length %v, want 200/30 s", length)
	}
	// Finishing twice must fail (the session is gone).
	if _, _, err := sess.Finish(); err == nil {
		t.Fatal("double finish accepted")
	}
	got, err := c.Fetch("batch", id, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("fetched %d units", len(got))
	}
}

func TestNetworkHeterogeneousRecord(t *testing.T) {
	c, _ := startServer(t)
	sess, err := c.RecordStartHeterogeneous("het",
		&client.MediumSpec{UnitBytes: 18000, Rate: 30},
		&client.MediumSpec{UnitBytes: 800, Rate: 15})
	if err != nil {
		t.Fatal(err)
	}
	push := func(m rope.Medium, src media.Source) {
		t.Helper()
		var units [][]byte
		for {
			u, ok := src.Next()
			if !ok {
				break
			}
			units = append(units, u.Payload)
		}
		if err := sess.Append(m, units); err != nil {
			t.Fatal(err)
		}
	}
	push(rope.VideoOnly, media.NewVideoSource(60, 18000, 30, 51))
	push(rope.AudioOnly, media.NewAudioSource(30, 800, 15, 0, 1, 52))
	id, length, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if length.Seconds() != 2 {
		t.Fatalf("length %v", length)
	}
	info, err := c.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strands != 1 {
		t.Fatalf("heterogeneous rope has %d strands, want 1", info.Strands)
	}
	res, err := c.Play("het", id, rope.AudioVisual, 0, 0, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d violations", res.Violations)
	}
	units, err := c.Fetch("het", id, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame, audio, err := media.SplitAV(units[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := media.ValidateFrameSeq(frame, 0); err != nil {
		t.Fatal(err)
	}
	if len(audio) != 400 {
		t.Fatalf("audio share %d", len(audio))
	}
}

func TestNetworkTriggersAndFlatten(t *testing.T) {
	c, _ := startServer(t)
	r1, _, err := c.RecordClip("ed", media.NewVideoSource(120, 18000, 30, 61), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := c.RecordClip("ed", media.NewVideoSource(60, 18000, 30, 62), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddTrigger("ed", r1, 2*time.Second, "chapter two"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("ed", r1, time.Second, rope.VideoOnly, r2, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	trigs, err := c.Triggers("ed", r1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trigs) != 1 || trigs[0].Text != "chapter two" {
		t.Fatalf("triggers %v", trigs)
	}
	// The insert shifted the trigger's media moment from 2s to 3s.
	if trigs[0].At < 2900*time.Millisecond || trigs[0].At > 3*time.Second {
		t.Fatalf("trigger at %v, want ≈ 3s", trigs[0].At)
	}

	info, err := c.Info(r1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Intervals < 3 {
		t.Fatalf("%d intervals before flatten", info.Intervals)
	}
	if _, err := c.Flatten("ed", r1); err != nil {
		t.Fatal(err)
	}
	info, err = c.Info(r1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Intervals != 1 {
		t.Fatalf("%d intervals after flatten", info.Intervals)
	}
	res, err := c.Play("ed", r1, rope.VideoOnly, 0, 0, 2, "")
	if err != nil || res.Violations != 0 {
		t.Fatalf("post-flatten play: %v, %d violations", err, res.Violations)
	}
	problems, err := c.Check()
	if err != nil || len(problems) != 0 {
		t.Fatalf("fsck: %v %v", problems, err)
	}
}
