package server

import (
	"strings"
	"testing"

	"mmfs/internal/media"
	"mmfs/internal/obs"
	"mmfs/internal/rope"
	"mmfs/internal/wire"
)

// TestSnapshotWireRoundTrip exercises EncodeSnapshot/DecodeSnapshot on
// a registry holding every metric kind, including labeled series and a
// histogram with observations straddling its bounds.
func TestSnapshotWireRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("mmfs_rounds_total").Add(7)
	reg.Counter(`mmfs_requests_total{op="Play"}`).Add(3)
	reg.Gauge("mmfs_k").Set(-2)
	h := reg.Histogram("mmfs_disk_read_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	e := wire.NewEncoder()
	wire.EncodeSnapshot(e, reg.Snapshot())
	d := wire.NewDecoder(e.Bytes())
	got := wire.DecodeSnapshot(d)
	if d.Err() != nil {
		t.Fatalf("decode: %v", d.Err())
	}

	if v, ok := got.Counter("mmfs_rounds_total"); !ok || v != 7 {
		t.Fatalf("rounds counter = %d, %v; want 7, true", v, ok)
	}
	if v, ok := got.Counter(`mmfs_requests_total{op="Play"}`); !ok || v != 3 {
		t.Fatalf("labeled counter = %d, %v; want 3, true", v, ok)
	}
	if v, ok := got.Gauge("mmfs_k"); !ok || v != -2 {
		t.Fatalf("gauge = %d, %v; want -2, true", v, ok)
	}
	if len(got.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(got.Histograms))
	}
	hv := got.Histograms[0]
	if hv.Name != "mmfs_disk_read_seconds" || hv.Count != 3 || hv.Sum != 5.055 {
		t.Fatalf("histogram %+v", hv)
	}
	if len(hv.Buckets) != 2 || hv.Buckets[0] != 1 || hv.Buckets[1] != 2 {
		t.Fatalf("buckets %v, want [1 2]", hv.Buckets)
	}
}

// TestDecodeSnapshotTruncated checks the decoder reports truncation via
// its sticky error instead of hanging or panicking.
func TestDecodeSnapshotTruncated(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a").Inc()
	e := wire.NewEncoder()
	wire.EncodeSnapshot(e, reg.Snapshot())
	d := wire.NewDecoder(e.Bytes()[:3])
	wire.DecodeSnapshot(d)
	if d.Err() == nil {
		t.Fatal("truncated snapshot decoded without error")
	}
}

// TestMetricsOverWire drives real work through the server and checks
// the METRICS op reflects it: per-op request counters, the storage
// manager's round/block series, and the disk read histogram.
func TestMetricsOverWire(t *testing.T) {
	c, fs := startServer(t)
	id, _, err := c.RecordClip("venkat", media.NewVideoSource(60, 18000, 30, 41), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Play("venkat", id, rope.VideoOnly, 0, 0, 2, ""); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if v, ok := snap.Counter(`mmfs_requests_total{op="Play"}`); !ok || v != 1 {
		t.Fatalf("play request counter = %d, %v; want 1", v, ok)
	}
	rounds, ok := snap.Counter("mmfs_rounds_total")
	if !ok || rounds == 0 {
		t.Fatalf("rounds counter = %d, %v; want > 0", rounds, ok)
	}
	if rounds != fs.Manager().Stats().Rounds {
		t.Fatalf("rounds counter %d != manager stats %d", rounds, fs.Manager().Stats().Rounds)
	}
	blocks, _ := snap.Counter("mmfs_blocks_fetched_total")
	if blocks != fs.Manager().Stats().BlocksFetched {
		t.Fatalf("blocks counter %d != manager stats %d", blocks, fs.Manager().Stats().BlocksFetched)
	}
	busy, _ := snap.Counter("mmfs_disk_busy_ns_total")
	if busy == 0 {
		t.Fatal("disk busy counter is zero after playback")
	}
	var hist *obs.HistogramValue
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "mmfs_disk_read_seconds" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil || hist.Count == 0 {
		t.Fatalf("disk read histogram missing or empty: %+v", snap.Histograms)
	}

	// The same work must be visible in the trace ring.
	trs := fs.Trace().Snapshot()
	if len(trs) == 0 {
		t.Fatal("trace ring empty after playback")
	}
	var traced uint64
	for _, tr := range trs {
		traced += tr.BlocksRead
	}
	if traced != blocks {
		t.Fatalf("trace blocks %d != counter %d", traced, blocks)
	}

	// And the snapshot must render as Prometheus text.
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mmfs_rounds_total counter",
		"# TYPE mmfs_disk_read_seconds histogram",
		`mmfs_disk_read_seconds_bucket{le="+Inf"}`,
		// The METRICS request itself is in flight while the snapshot
		// is taken.
		"mmfs_server_inflight_requests 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
