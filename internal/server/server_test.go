package server

import (
	"net"
	"testing"
	"time"

	"mmfs/internal/client"
	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/rope"
)

// startServer brings up a server on loopback and returns a connected
// client.
func startServer(t *testing.T) (*client.Client, *core.FS) {
	c, fs, _ := startServerAddr(t)
	return c, fs
}

// startServerAddr additionally exposes the listen address so tests can
// open further connections.
func startServerAddr(t *testing.T) (*client.Client, *core.FS, string) {
	t.Helper()
	fs, err := core.Format(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(fs)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	c, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, fs, lis.Addr().String()
}

func TestNetworkRecordPlayFetch(t *testing.T) {
	c, _ := startServer(t)
	video := media.NewVideoSource(60, 18000, 30, 9001)
	audio := media.NewAudioSource(20, 800, 10, 0.3, 4, 9002)
	id, length, err := c.RecordClip("venkat", video, audio, true)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if length != 2*time.Second {
		t.Fatalf("length %v, want 2s", length)
	}

	info, err := c.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasVideo || !info.HasAudio || info.Creator != "venkat" {
		t.Fatalf("info %+v", info)
	}

	res, err := c.Play("venkat", id, rope.AudioVisual, 0, 0, 2, "")
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	if res.Violations != 0 {
		t.Fatalf("remote playback had %d violations", res.Violations)
	}
	if res.Blocks == 0 {
		t.Fatal("remote playback retrieved no blocks")
	}

	// Fetch the video units back and verify payload integrity.
	units, err := c.Fetch("venkat", id, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if len(units) != 60 {
		t.Fatalf("fetched %d units, want 60", len(units))
	}
	for i, u := range units {
		if err := media.ValidateFrameSeq(u, uint64(i)); err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
	}
}

func TestNetworkEditingAndText(t *testing.T) {
	c, _ := startServer(t)
	r1, _, err := c.RecordClip("venkat", media.NewVideoSource(90, 18000, 30, 1), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := c.RecordClip("venkat", media.NewVideoSource(60, 18000, 30, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Insert("venkat", r1, time.Second, rope.VideoOnly, r2, 0, time.Second); err != nil {
		t.Fatalf("insert: %v", err)
	}
	info, err := c.Info(r1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Length != 4*time.Second {
		t.Fatalf("post-insert length %v, want 4s", info.Length)
	}

	sub, err := c.Substring("venkat", r1, rope.VideoOnly, 0, time.Second)
	if err != nil {
		t.Fatalf("substring: %v", err)
	}
	cat, _, err := c.Concate("venkat", sub, r2)
	if err != nil {
		t.Fatalf("concate: %v", err)
	}
	catInfo, err := c.Info(cat)
	if err != nil {
		t.Fatal(err)
	}
	if catInfo.Length != 3*time.Second {
		t.Fatalf("concat length %v, want 3s", catInfo.Length)
	}

	ids, err := c.ListRopes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("listed %d ropes, want 4", len(ids))
	}

	// Text files share the disk.
	if err := c.TextWrite("README", []byte("media gaps hold text")); err != nil {
		t.Fatalf("text write: %v", err)
	}
	data, err := c.TextRead("README")
	if err != nil {
		t.Fatalf("text read: %v", err)
	}
	if string(data) != "media gaps hold text" {
		t.Fatalf("text round trip got %q", data)
	}
	names, err := c.TextList()
	if err != nil || len(names) != 1 {
		t.Fatalf("text list %v, %v", names, err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ropes != 4 || st.Strands == 0 {
		t.Fatalf("stats %+v", st)
	}

	// Access control crosses the wire.
	if err := c.SetAccess("venkat", r1, []string{"harrick"}, []string{"harrick"}); err != nil {
		t.Fatalf("set access: %v", err)
	}
	if _, err := c.Play("mallory", r1, rope.VideoOnly, 0, 0, 2, ""); err == nil {
		t.Fatal("expected access error for user outside PlayAccess")
	}
	if res, err := c.Play("harrick", r1, rope.VideoOnly, 0, 0, 2, ""); err != nil {
		t.Fatalf("play denied for listed user: %v", err)
	} else if res.Violations != 0 {
		t.Fatalf("playback had %d violations", res.Violations)
	}
	if err := c.SetAccess("mallory", r1, nil, nil); err == nil {
		t.Fatal("non-creator changed access lists")
	}
}

func TestNetworkCheck(t *testing.T) {
	c, _ := startServer(t)
	if _, _, err := c.RecordClip("venkat", media.NewVideoSource(30, 18000, 30, 77), nil, false); err != nil {
		t.Fatal(err)
	}
	problems, err := c.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("fsck over the wire found: %v", problems)
	}
}
