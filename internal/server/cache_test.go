package server

import (
	"net"
	"sync"
	"testing"

	"mmfs/internal/client"
	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/rope"
)

// TestConcurrentCachedPlays replays one rope from many connections at
// once against a cache-enabled file system. Plays serialize on the
// server's file system lock, but the framing layer (and its pooled
// reply encoders) runs concurrently — this is the -race exercise for
// the encoder free list — and every play after the first should be fed
// by the interval cache's LRU residue.
func TestConcurrentCachedPlays(t *testing.T) {
	fs, err := core.Format(core.Options{CacheMB: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(fs)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	defer func() { _ = srv.Close() }()
	addr := lis.Addr().String()

	c0, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c0.Close() }()
	video := media.NewVideoSource(120, 18000, 30, 4242)
	id, _, err := c0.RecordClip("anita", video, nil, false)
	if err != nil {
		t.Fatalf("record: %v", err)
	}

	const players = 6
	var wg sync.WaitGroup
	results := make([]client.PlayResult, players)
	errs := make([]error, players)
	for i := 0; i < players; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer func() { _ = c.Close() }()
			results[i], errs[i] = c.Play("anita", id, rope.VideoOnly, 0, 0, 2, "")
		}(i)
	}
	wg.Wait()

	var hits int
	for i := 0; i < players; i++ {
		if errs[i] != nil {
			t.Fatalf("play %d: %v", i, errs[i])
		}
		if results[i].Violations != 0 {
			t.Fatalf("play %d: %d violations", i, results[i].Violations)
		}
		if results[i].Blocks == 0 {
			t.Fatalf("play %d retrieved no blocks", i)
		}
		hits += results[i].CacheHits
	}
	if hits == 0 {
		t.Fatal("no play was served from the interval cache")
	}
	st, err := c0.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 || st.CacheCapacity != 8<<20 {
		t.Fatalf("server cache stats not reported: %+v", st)
	}
}
