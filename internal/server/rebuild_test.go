package server

import (
	"net"
	"strings"
	"testing"

	"mmfs/internal/client"
	"mmfs/internal/core"
	"mmfs/internal/disk"
	"mmfs/internal/media"
	"mmfs/internal/rope"
)

// startMirroredServer brings up a server over a mirrored 4-spindle
// array and returns a connected client.
func startMirroredServer(t *testing.T) (*client.Client, *core.FS) {
	t.Helper()
	fs, err := core.Format(core.Options{Disks: 4, Mirror: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(fs)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	c, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, fs
}

// TestRebuildOp exercises the REBUILD wire op end to end: a rope is
// recorded on a mirrored array, a spindle is declared dead, the remote
// rebuild restores it to Healthy, and the rope still plays cleanly.
func TestRebuildOp(t *testing.T) {
	c, fs := startMirroredServer(t)
	video := media.NewVideoSource(60, 18000, 30, 4242)
	id, _, err := c.RecordClip("venkat", video, nil, false)
	if err != nil {
		t.Fatalf("record: %v", err)
	}

	// Rebuilding a healthy spindle must be refused, not silently no-op.
	if _, _, err := c.Rebuild(1); err == nil {
		t.Fatal("rebuild of a healthy spindle succeeded")
	}

	fs.Array().SetSpindleState(1, disk.Dead)
	state, blocks, err := c.Rebuild(1)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if state != "healthy" {
		t.Fatalf("rebuilt spindle state %q, want healthy", state)
	}
	if blocks == 0 {
		t.Fatal("rebuild copied no repair chunks")
	}

	res, err := c.Play("venkat", id, rope.VideoOnly, 0, 0, 2, "")
	if err != nil {
		t.Fatalf("play after rebuild: %v", err)
	}
	if res.Violations != 0 {
		t.Fatalf("playback after rebuild had %d violations", res.Violations)
	}
}

// TestStatsMirrorSection checks the STATS payload's mirror-resilience
// tail: per-spindle health over a mirrored array and the lifetime
// repair-chunk count after a rebuild.
func TestStatsMirrorSection(t *testing.T) {
	c, fs := startMirroredServer(t)
	video := media.NewVideoSource(30, 18000, 30, 4243)
	if _, _, err := c.RecordClip("venkat", video, nil, false); err != nil {
		t.Fatalf("record: %v", err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SpindleStates) != 4 {
		t.Fatalf("stats reported %d spindle states, want 4", len(st.SpindleStates))
	}
	for i, s := range st.SpindleStates {
		if s != "healthy" {
			t.Fatalf("spindle %d state %q, want healthy", i, s)
		}
	}
	if st.RebuildBlocks != 0 || st.RebuildTotal != 0 {
		t.Fatalf("idle array reports rebuild activity: %+v", st)
	}

	fs.Array().SetSpindleState(1, disk.Dead)
	if st, err = c.Stats(); err != nil {
		t.Fatal(err)
	}
	if st.SpindleStates[1] != "dead" {
		t.Fatalf("dead spindle reported %q", st.SpindleStates[1])
	}

	if _, _, err := c.Rebuild(1); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if st, err = c.Stats(); err != nil {
		t.Fatal(err)
	}
	if st.SpindleStates[1] != "healthy" {
		t.Fatalf("rebuilt spindle reported %q", st.SpindleStates[1])
	}
	if st.RebuildBlocks == 0 {
		t.Fatal("stats lost the lifetime repair-chunk count")
	}
	if got := strings.Join(st.SpindleStates, " "); got != "healthy healthy healthy healthy" {
		t.Fatalf("spindle states %q", got)
	}
}

// TestStatsNoMirrorSection checks the section degrades on a plain
// single-disk server: zero spindle states, zero rebuild counters.
func TestStatsNoMirrorSection(t *testing.T) {
	c, _ := startServer(t)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SpindleStates) != 0 || st.RebuildBlocks != 0 || st.RebuildTotal != 0 {
		t.Fatalf("unmirrored server leaked mirror stats: %+v", st)
	}
}
