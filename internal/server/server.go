// Package server implements the Multimedia Rope Server (MRS) network
// front end: the device-independent layer of the paper's two-layer
// architecture (§5.2), accepting rope operations over the wire
// protocol and executing them against the core file system (which
// embeds the device-specific Multimedia Storage Manager).
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/obs"
	"mmfs/internal/rope"
	"mmfs/internal/wire"
)

// mediaBuf accumulates one medium's units uploaded by a client before
// RecordFinish replays them through the storage manager.
type mediaBuf struct {
	unitBytes int
	rate      float64
	units     []media.Unit
}

// recordSession is an in-progress client upload.
type recordSession struct {
	creator string
	silence bool
	hetero  bool
	video   *mediaBuf
	audio   *mediaBuf
}

// ErrServerBusy is returned to a client whose connection is refused
// because the server is at its MaxConns limit or draining.
var ErrServerBusy = errors.New("server: busy")

// Server serves the MRS protocol over a listener. All file system
// access is serialized: the simulated disk is single-ported and the
// storage manager's virtual clock is global, exactly like the
// prototype's single PC-AT storage manager.
type Server struct {
	mu       sync.Mutex
	fs       *core.FS
	sessions map[uint64]*recordSession // guarded by mu
	nextSess uint64                    // guarded by mu

	lis      net.Listener          // guarded by mu
	conns    map[net.Conn]struct{} // guarded by mu
	wg       sync.WaitGroup
	closed   bool // guarded by mu
	draining bool // guarded by mu

	// reg is the file system's metrics registry; inflight counts
	// requests between frame parse and response write (it is the only
	// server metric mutated outside mu — the gauge is atomic).
	reg      *obs.Registry
	inflight *obs.Gauge
	openConn *obs.Gauge
	opCount  map[wire.Op]*obs.Counter // guarded by mu
	errCount *obs.Counter
	rejected *obs.Counter

	// Logf, when non-nil, receives operational log lines (abnormal
	// connection teardown and the like). It must be set before Serve
	// and is read without the lock thereafter.
	Logf func(format string, args ...any)

	// ReadTimeout, when positive, bounds how long a connection may sit
	// between requests: the per-frame read deadline is refreshed before
	// each request, so an idle or wedged client is dropped rather than
	// holding its slot forever. Set before Serve.
	ReadTimeout time.Duration
	// WriteTimeout, when positive, bounds each response write; a client
	// that stops draining its socket cannot wedge the server. Set
	// before Serve.
	WriteTimeout time.Duration
	// MaxConns, when positive, caps concurrent connections; excess
	// connections receive one ErrServerBusy response frame and are
	// closed. Set before Serve.
	MaxConns int
}

// New creates a server over a mounted file system.
func New(fs *core.FS) *Server {
	reg := fs.Metrics()
	return &Server{
		fs:       fs,
		sessions: make(map[uint64]*recordSession),
		nextSess: 1,
		conns:    make(map[net.Conn]struct{}),
		reg:      reg,
		inflight: reg.Gauge("mmfs_server_inflight_requests"),
		openConn: reg.Gauge("mmfs_server_open_conns"),
		opCount:  make(map[wire.Op]*obs.Counter),
		errCount: reg.Counter("mmfs_server_errors_total"),
		rejected: reg.Counter("mmfs_server_rejected_conns_total"),
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and drains gracefully: connections mid-request
// finish their request and have the response delivered, idle
// connections are nudged out of their blocking read, and Close returns
// once every connection handler has exited.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	// Expire the read deadline of every open connection: a handler
	// blocked waiting for the next request returns immediately, while a
	// handler mid-request is untouched until it re-enters the read.
	for _, c := range conns {
		//lint:ignore simclock,noerrdrop connection deadlines guard real network I/O; a failed set means the conn is already dead
		_ = c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	return err
}

// isDraining reports whether Close has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// registerConn admits a connection into the conn table; false means
// the server is full or draining and the connection must be refused.
func (s *Server) registerConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || (s.MaxConns > 0 && len(s.conns) >= s.MaxConns) {
		return false
	}
	s.conns[conn] = struct{}{}
	s.openConn.Set(int64(len(s.conns)))
	return true
}

// unregisterConn removes a connection from the conn table.
func (s *Server) unregisterConn(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
	s.openConn.Set(int64(len(s.conns)))
}

// logf writes one operational log line through Logf, if set.
func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.registerConn(conn) {
		// Over MaxConns (or draining): refuse with one error frame so
		// the client's first call fails with a diagnosis instead of a
		// silent hangup.
		s.rejected.Inc()
		if s.WriteTimeout > 0 {
			//lint:ignore simclock,noerrdrop connection deadlines guard real network I/O; a failed set means the conn is already dead
			_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		//lint:ignore noerrdrop best-effort refusal notice; the deferred Close is the real remedy
		_ = wire.WriteFrame(conn, wire.ErrResponse(ErrServerBusy))
		return
	}
	defer s.unregisterConn(conn)
	for {
		if s.ReadTimeout > 0 {
			//lint:ignore simclock,noerrdrop connection deadlines guard real network I/O; a failed set means the conn is already dead
			_ = conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		// Checked after the deadline refresh: either this sees the
		// drain and returns, or Close's expired-deadline nudge lands
		// after the refresh and unblocks the read below — never a
		// lingering connection.
		if s.isDraining() {
			return
		}
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !s.isDraining() {
				// Connection torn down mid-frame (or idle past the
				// read deadline): surface it so a misbehaving client
				// or network is not silent.
				s.logf("server: %v: reading frame: %v", conn.RemoteAddr(), err)
			}
			return
		}
		op, body, err := wire.ParseRequest(frame)
		var resp []byte
		if err != nil {
			resp = wire.ErrResponse(err)
		} else {
			resp = s.handle(op, body)
		}
		if s.WriteTimeout > 0 {
			//lint:ignore simclock,noerrdrop connection deadlines guard real network I/O; a failed set means the conn is already dead
			_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := wire.WriteFrame(conn, resp); err != nil {
			return
		}
		if s.isDraining() {
			// Graceful drain: the in-flight request got its response;
			// end the connection instead of accepting another.
			return
		}
	}
}

// handle dispatches one request under the file system lock and returns
// the framed response. The reply encoder comes from the wire free
// list; OKResponse copies the body before the encoder is recycled.
func (s *Server) handle(op wire.Op, body []byte) []byte {
	s.inflight.Inc()
	defer s.inflight.Dec()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.countOp(op)
	d := wire.NewDecoder(body)
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	var err error
	switch op {
	case wire.OpRecordStart:
		err = s.recordStart(d, e)
	case wire.OpRecordAppend:
		err = s.recordAppend(d, e)
	case wire.OpRecordFinish:
		// recordFinish and play drive the storage manager's virtual
		// clock to completion under s.mu: the paper's storage manager
		// is single-ported (§5.2), so all FS access is serialized by
		// design. Lock sharding is ROADMAP item 4.
		//lint:ignore blockinglock single-ported storage manager serializes FS access by design
		err = s.recordFinish(d, e)
	case wire.OpPlay:
		//lint:ignore blockinglock single-ported storage manager serializes FS access by design
		err = s.play(d, e)
	case wire.OpFetch:
		err = s.fetch(d, e)
	case wire.OpInsert:
		err = s.insert(d, e)
	case wire.OpReplace:
		err = s.replace(d, e)
	case wire.OpSubstring:
		err = s.substring(d, e)
	case wire.OpConcate:
		err = s.concate(d, e)
	case wire.OpDeleteRange:
		err = s.deleteRange(d, e)
	case wire.OpDeleteRope:
		err = s.deleteRope(d, e)
	case wire.OpRopeInfo:
		err = s.ropeInfo(d, e)
	case wire.OpListRopes:
		err = s.listRopes(d, e)
	case wire.OpStats:
		err = s.stats(d, e)
	case wire.OpTextWrite:
		err = s.textWrite(d, e)
	case wire.OpTextRead:
		err = s.textRead(d, e)
	case wire.OpTextList:
		err = s.textList(d, e)
	case wire.OpSetAccess:
		err = s.setAccess(d, e)
	case wire.OpCheck:
		err = s.check(d, e)
	case wire.OpAddTrigger:
		err = s.addTrigger(d, e)
	case wire.OpTriggers:
		err = s.triggers(d, e)
	case wire.OpFlatten:
		//lint:ignore blockinglock the server intentionally runs every op to completion under s.mu; disk time is virtual (see the mutex doc)
		err = s.flatten(d, e)
	case wire.OpMetrics:
		err = s.metrics(d, e)
	case wire.OpRebuild:
		//lint:ignore blockinglock the rebuild runs the virtual clock to completion under s.mu, like recordFinish and play
		err = s.rebuild(d, e)
	default:
		s.errCount.Inc()
		return wire.ErrResponse(fmt.Errorf("server: unknown op %v", op))
	}
	if err == nil && d.Err() != nil {
		err = fmt.Errorf("server: malformed %v request: %w", op, d.Err())
	}
	if err != nil {
		s.errCount.Inc()
		return wire.ErrResponse(err)
	}
	return wire.OKResponse(e.Bytes())
}

// countOp increments the per-op request counter. The caller must hold
// s.mu (the counter map is populated lazily as ops arrive).
func (s *Server) countOp(op wire.Op) {
	c := s.opCount[op]
	if c == nil {
		c = s.reg.Counter(fmt.Sprintf("mmfs_requests_total{op=%q}", op))
		s.opCount[op] = c
	}
	c.Inc()
}

// metrics encodes a snapshot of every registered metric. The caller
// must hold s.mu.
func (s *Server) metrics(d *wire.Decoder, e *wire.Encoder) error {
	wire.EncodeSnapshot(e, s.reg.Snapshot())
	return nil
}

// DecodeMedium maps the wire medium code to a rope selector.
func DecodeMedium(code uint16) (rope.Medium, error) {
	switch code {
	case 0:
		return rope.AudioVisual, nil
	case 1:
		return rope.VideoOnly, nil
	case 2:
		return rope.AudioOnly, nil
	}
	return 0, fmt.Errorf("server: unknown medium code %d", code)
}

// EncodeMedium maps a rope selector to its wire code.
func EncodeMedium(m rope.Medium) uint16 {
	switch m {
	case rope.VideoOnly:
		return 1
	case rope.AudioOnly:
		return 2
	default:
		return 0
	}
}

// recordStart opens an upload session. The caller must hold s.mu.
func (s *Server) recordStart(d *wire.Decoder, e *wire.Encoder) error {
	creator := d.Str()
	hasVideo := d.Bool()
	vUnitBytes := d.U32()
	vRate := d.F64()
	hasAudio := d.Bool()
	aUnitBytes := d.U32()
	aRate := d.F64()
	silence := d.Bool()
	hetero := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if !hasVideo && !hasAudio {
		return fmt.Errorf("server: RECORD needs at least one medium")
	}
	if hetero && (!hasVideo || !hasAudio) {
		return fmt.Errorf("server: heterogeneous RECORD needs both media")
	}
	sess := &recordSession{creator: creator, silence: silence, hetero: hetero}
	if hasVideo {
		sess.video = &mediaBuf{unitBytes: int(vUnitBytes), rate: vRate}
	}
	if hasAudio {
		sess.audio = &mediaBuf{unitBytes: int(aUnitBytes), rate: aRate}
	}
	id := s.nextSess
	s.nextSess++
	s.sessions[id] = sess
	e.U64(id)
	return nil
}

// recordAppend buffers uploaded units. The caller must hold s.mu.
func (s *Server) recordAppend(d *wire.Decoder, e *wire.Encoder) error {
	id := d.U64()
	mediumCode := d.U16()
	count := d.U32()
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("server: unknown record session %d", id)
	}
	var buf *mediaBuf
	switch mediumCode {
	case 1:
		buf = sess.video
	case 2:
		buf = sess.audio
	default:
		return fmt.Errorf("server: append needs a single medium, got code %d", mediumCode)
	}
	if buf == nil {
		return fmt.Errorf("server: session %d does not record that medium", id)
	}
	for i := uint32(0); i < count; i++ {
		payload := d.Blob()
		if d.Err() != nil {
			return d.Err()
		}
		if len(payload) != buf.unitBytes {
			return fmt.Errorf("server: unit of %d bytes, session expects %d", len(payload), buf.unitBytes)
		}
		buf.units = append(buf.units, media.Unit{Seq: uint64(len(buf.units)), Payload: payload})
	}
	return nil
}

// recordFinish replays a session through the storage manager. The
// caller must hold s.mu.
func (s *Server) recordFinish(d *wire.Decoder, e *wire.Encoder) error {
	id := d.U64()
	sess, ok := s.sessions[id]
	if !ok {
		return fmt.Errorf("server: unknown record session %d", id)
	}
	delete(s.sessions, id)
	spec := core.RecordSpec{Creator: sess.creator, SilenceElimination: sess.silence, Heterogeneous: sess.hetero}
	if sess.video != nil {
		spec.Video = media.NewSliceSource(sess.video.units, sess.video.rate, sess.video.unitBytes)
	}
	if sess.audio != nil {
		spec.Audio = media.NewSliceSource(sess.audio.units, sess.audio.rate, sess.audio.unitBytes)
	}
	rec, err := s.fs.Record(spec)
	if err != nil {
		return err
	}
	s.fs.Manager().RunUntilDone()
	r, err := rec.Finish()
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U64(uint64(r.ID)).I64(int64(r.Length()))
	return nil
}

func (s *Server) play(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	id := rope.ID(d.U64())
	medium, err := DecodeMedium(d.U16())
	if err != nil {
		return err
	}
	start := time.Duration(d.I64())
	dur := time.Duration(d.I64())
	readAhead := int(d.U32())
	className := d.Str()
	if d.Err() != nil {
		return d.Err()
	}
	class := s.fs.Options().QoSDefault
	if className != "" && className != "default" {
		if class, err = continuity.ParseClass(className); err != nil {
			return err
		}
	}
	h, err := s.fs.Play(user, id, medium, start, dur, msm.PlanOptions{ReadAhead: readAhead, Class: class})
	if err != nil {
		return err
	}
	s.fs.Manager().RunUntilDone()
	violations, err := s.fs.PlayViolations(h)
	if err != nil {
		return err
	}
	var blocks, cacheHits, shed int
	stride := 1
	var startAt time.Duration
	for _, req := range h.Requests() {
		p, err := s.fs.Manager().Progress(req)
		if err != nil {
			return err
		}
		blocks += p.BlocksServed
		cacheHits += p.CacheHits
		shed += p.ShedBlocks
		if p.Stride > stride {
			stride = p.Stride
		}
		if p.StartTime > startAt {
			startAt = p.StartTime
		}
	}
	e.U32(uint32(violations)).U32(uint32(blocks)).I64(int64(startAt)).U32(uint32(cacheHits)).
		// QoS section: the class the request ran under, the final
		// sub-sampling stride (worst across the handle's media), and the
		// blocks skipped by load shedding.
		Str(class.String()).U16(uint16(stride)).U32(uint32(shed))
	return nil
}

func (s *Server) fetch(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	id := rope.ID(d.U64())
	medium, err := DecodeMedium(d.U16())
	if err != nil {
		return err
	}
	start := time.Duration(d.I64())
	dur := time.Duration(d.I64())
	if d.Err() != nil {
		return d.Err()
	}
	units, err := s.fs.FetchUnits(user, id, medium, start, dur)
	if err != nil {
		return err
	}
	e.U32(uint32(len(units)))
	for _, u := range units {
		e.Blob(u)
	}
	return nil
}

func (s *Server) insert(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	base := rope.ID(d.U64())
	pos := time.Duration(d.I64())
	medium, err := DecodeMedium(d.U16())
	if err != nil {
		return err
	}
	with := rope.ID(d.U64())
	wStart := time.Duration(d.I64())
	wDur := time.Duration(d.I64())
	if d.Err() != nil {
		return d.Err()
	}
	res, err := s.fs.Insert(user, base, pos, medium, with, wStart, wDur)
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U32(uint32(res.CopiedBlocks()))
	return nil
}

func (s *Server) replace(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	base := rope.ID(d.U64())
	medium, err := DecodeMedium(d.U16())
	if err != nil {
		return err
	}
	bStart := time.Duration(d.I64())
	bDur := time.Duration(d.I64())
	with := rope.ID(d.U64())
	wStart := time.Duration(d.I64())
	wDur := time.Duration(d.I64())
	if d.Err() != nil {
		return d.Err()
	}
	res, err := s.fs.Replace(user, base, medium, bStart, bDur, with, wStart, wDur)
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U32(uint32(res.CopiedBlocks()))
	return nil
}

func (s *Server) substring(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	base := rope.ID(d.U64())
	medium, err := DecodeMedium(d.U16())
	if err != nil {
		return err
	}
	start := time.Duration(d.I64())
	dur := time.Duration(d.I64())
	if d.Err() != nil {
		return d.Err()
	}
	out, _, err := s.fs.Substring(user, base, medium, start, dur)
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U64(uint64(out.ID))
	return nil
}

func (s *Server) concate(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	r1 := rope.ID(d.U64())
	r2 := rope.ID(d.U64())
	if d.Err() != nil {
		return d.Err()
	}
	out, res, err := s.fs.Concate(user, r1, r2)
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U64(uint64(out.ID)).U32(uint32(res.CopiedBlocks()))
	return nil
}

func (s *Server) deleteRange(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	base := rope.ID(d.U64())
	medium, err := DecodeMedium(d.U16())
	if err != nil {
		return err
	}
	start := time.Duration(d.I64())
	dur := time.Duration(d.I64())
	if d.Err() != nil {
		return d.Err()
	}
	res, err := s.fs.DeleteRange(user, base, medium, start, dur)
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U32(uint32(res.CopiedBlocks()))
	return nil
}

func (s *Server) deleteRope(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	id := rope.ID(d.U64())
	if d.Err() != nil {
		return d.Err()
	}
	reclaimed, err := s.fs.DeleteRope(user, id)
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U32(uint32(len(reclaimed)))
	return nil
}

func (s *Server) ropeInfo(d *wire.Decoder, e *wire.Encoder) error {
	id := rope.ID(d.U64())
	if d.Err() != nil {
		return d.Err()
	}
	r, ok := s.fs.Ropes().Get(id)
	if !ok {
		return fmt.Errorf("server: unknown rope %d", id)
	}
	hasVideo, hasAudio := r.Components()
	e.Str(r.Creator).
		I64(int64(r.Length())).
		U32(uint32(len(r.Intervals))).
		Bool(hasVideo).
		Bool(hasAudio).
		U32(uint32(len(r.Strands())))
	return nil
}

func (s *Server) listRopes(d *wire.Decoder, e *wire.Encoder) error {
	ids := s.fs.Ropes().IDs()
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.U64(uint64(id))
	}
	return nil
}

func (s *Server) stats(d *wire.Decoder, e *wire.Encoder) error {
	mgr := s.fs.Manager()
	st := mgr.Stats()
	e.F64(s.fs.Occupancy()).
		U32(uint32(s.fs.Strands().Len())).
		U32(uint32(s.fs.Ropes().Len())).
		U64(st.Rounds).
		U32(uint32(mgr.K())).
		U32(uint32(mgr.ActiveRequests())).
		// Interval-cache section: live cache-served followers, lifetime
		// hit count, then the cache's own occupancy snapshot (zeros
		// when caching is disabled).
		U32(uint32(mgr.CacheServed())).
		U64(st.CacheHits)
	var bytes, capacity uint64
	var intervals uint32
	if c := mgr.Cache(); c != nil {
		cs := c.Stats()
		bytes, capacity = uint64(cs.Bytes), uint64(cs.Capacity)
		intervals = uint32(cs.Intervals)
	}
	e.U64(bytes).U64(capacity).U32(intervals)
	// Fault-tolerance section: the degradation ladder's tier counters.
	e.U64(st.Retries).U64(st.DegradedBlocks).U64(st.FaultStops)
	// QoS section: per-class live populations (best-effort, standard,
	// premium) and the lifetime shedding counters.
	qs := mgr.QoSStats()
	for c := 0; c < continuity.NumClasses; c++ {
		e.U32(uint32(qs[c].Active)).U32(uint32(qs[c].Degraded)).F64(qs[c].EffectiveRate)
	}
	e.U64(st.Promotions).U64(st.LoadDemotions).U64(st.ShedBlocks)
	// Mirror-resilience section: per-spindle health over a mirrored
	// array (spindle count 0 when mirroring is off, so the section stays
	// fixed-shape), the running repair's chunk cursor, and the lifetime
	// repair-chunk count.
	arr := s.fs.Array()
	if arr != nil && arr.Mirrored() {
		e.U32(uint32(arr.Spindles()))
		for i := 0; i < arr.Spindles(); i++ {
			e.U16(uint16(arr.SpindleState(i)))
		}
	} else {
		e.U32(0)
	}
	done, total := mgr.RepairProgress()
	e.U32(uint32(done)).U32(uint32(total)).U64(st.RebuildBlocks)
	return nil
}

// rebuild replaces a failed spindle of a mirrored array with a fresh
// device and drives the online rebuild to completion under the virtual
// clock, returning the spindle's final state and the lifetime repair-
// chunk count. The caller must hold s.mu.
func (s *Server) rebuild(d *wire.Decoder, e *wire.Encoder) error {
	spindle := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	mgr := s.fs.Manager()
	if err := mgr.Rebuild(spindle); err != nil {
		return err
	}
	mgr.RunUntilDone()
	arr := s.fs.Array()
	e.Str(arr.SpindleState(spindle).String()).U64(mgr.Stats().RebuildBlocks)
	return nil
}

func (s *Server) textWrite(d *wire.Decoder, e *wire.Encoder) error {
	name := d.Str()
	data := d.Blob()
	if d.Err() != nil {
		return d.Err()
	}
	if err := s.fs.Text().Write(name, data); err != nil {
		return err
	}
	return s.fs.Sync()
}

func (s *Server) textRead(d *wire.Decoder, e *wire.Encoder) error {
	name := d.Str()
	if d.Err() != nil {
		return d.Err()
	}
	data, err := s.fs.Text().Read(name)
	if err != nil {
		return err
	}
	e.Blob(data)
	return nil
}

func (s *Server) setAccess(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	id := rope.ID(d.U64())
	nPlay := d.U32()
	play := make([]string, 0, nPlay)
	for i := uint32(0); i < nPlay; i++ {
		play = append(play, d.Str())
	}
	nEdit := d.U32()
	edit := make([]string, 0, nEdit)
	for i := uint32(0); i < nEdit; i++ {
		edit = append(edit, d.Str())
	}
	if d.Err() != nil {
		return d.Err()
	}
	r, ok := s.fs.Ropes().Get(id)
	if !ok {
		return fmt.Errorf("server: unknown rope %d", id)
	}
	if user != r.Creator {
		return fmt.Errorf("server: only the creator may change access lists of rope %d", id)
	}
	r.PlayAccess = play
	r.EditAccess = edit
	return s.fs.Sync()
}

func (s *Server) addTrigger(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	id := rope.ID(d.U64())
	at := time.Duration(d.I64())
	text := d.Str()
	if d.Err() != nil {
		return d.Err()
	}
	if err := s.fs.AddTrigger(user, id, at, text); err != nil {
		return err
	}
	return s.fs.Sync()
}

func (s *Server) triggers(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	id := rope.ID(d.U64())
	if d.Err() != nil {
		return d.Err()
	}
	trigs, err := s.fs.Triggers(user, id)
	if err != nil {
		return err
	}
	e.U32(uint32(len(trigs)))
	for _, t := range trigs {
		e.I64(int64(t.At))
		e.Str(t.Text)
	}
	return nil
}

func (s *Server) flatten(d *wire.Decoder, e *wire.Encoder) error {
	user := d.Str()
	id := rope.ID(d.U64())
	if d.Err() != nil {
		return d.Err()
	}
	res, err := s.fs.Flatten(user, id)
	if err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	e.U32(uint32(len(res.Reclaimed)))
	return nil
}

func (s *Server) check(d *wire.Decoder, e *wire.Encoder) error {
	if err := s.fs.Sync(); err != nil {
		return err
	}
	problems := s.fs.Check()
	e.U32(uint32(len(problems)))
	for _, p := range problems {
		e.Str(p.Kind)
		e.Str(p.Detail)
	}
	return nil
}

func (s *Server) textList(d *wire.Decoder, e *wire.Encoder) error {
	names := s.fs.Text().List()
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.Str(n)
	}
	return nil
}
