package rope

import (
	"testing"
	"time"

	"mmfs/internal/msm"
)

// distantRopes records two single-interval video ropes whose strands
// live in distant disk regions, so their CONCATE junction exceeds the
// placement bound.
func distantRopes(t *testing.T, r *rig) (*Rope, *Rope) {
	t.Helper()
	// record() spreads start cylinders by seed.
	a := r.record(t, 2, 1) // near cylinder 37
	b := r.record(t, 2, 7) // near cylinder 259
	return a, b
}

func TestSmoothRopeCopiesBoundedBlocks(t *testing.T) {
	r := newRig(t)
	a, b := distantRopes(t, r)
	cat, err := r.rs.Concate("t", a, b)
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(r.d, r.a, r.rs, 16)
	reports, err := ed.SmoothRope(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("distant junction not smoothed")
	}
	g := r.d.Geometry()
	for _, rep := range reports {
		if rep.Copied == 0 {
			t.Fatalf("report with zero copies: %+v", rep)
		}
		if rep.NewStrand == 0 {
			t.Fatal("no copy strand recorded")
		}
		// The copied blocks live in a registered, immutable strand.
		if _, ok := r.ss.Get(rep.NewStrand); !ok {
			t.Fatalf("copy strand %d not registered", rep.NewStrand)
		}
		// Prediction: copies ≈ ceil((dist-max)/(max-1)), never more
		// than a healthy multiple on an empty disk.
		if rep.Copied > rep.DistCylinders {
			t.Fatalf("copied %d blocks for a %d-cylinder junction", rep.Copied, rep.DistCylinders)
		}
	}
	// After smoothing, every junction hop within each medium is
	// within the bound.
	for _, m := range []Medium{VideoOnly, AudioOnly} {
		ivs := cat.Intervals
		for i := 0; i+1 < len(ivs); i++ {
			cylA, constrained, err := ed.junctionEnds(cat, m, i)
			if err != nil {
				t.Fatal(err)
			}
			if !constrained {
				continue
			}
			next := ivs[i+1].Component(m)
			ns, _ := r.ss.Get(next.Strand)
			q := uint64(ns.Granularity())
			// First non-silent block of the next interval.
			for blk := int(next.StartUnit / q); blk < ns.NumBlocks(); blk++ {
				e, _ := ns.Block(blk)
				if e.Silent() {
					continue
				}
				d := g.CylinderOf(int(e.Sector)) - cylA
				if d < 0 {
					d = -d
				}
				if d > 16 {
					t.Fatalf("%v junction %d still %d cylinders wide", m, i, d)
				}
				break
			}
		}
	}
	// Interests include the fresh copy strands.
	for _, rep := range reports {
		if r.in.Count(rep.NewStrand) == 0 {
			t.Fatalf("copy strand %d has no interest", rep.NewStrand)
		}
	}
}

func TestSmoothRopeIdempotent(t *testing.T) {
	r := newRig(t)
	a, b := distantRopes(t, r)
	cat, err := r.rs.Concate("t", a, b)
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(r.d, r.a, r.rs, 16)
	if _, err := ed.SmoothRope(cat); err != nil {
		t.Fatal(err)
	}
	again, err := ed.SmoothRope(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second smoothing still copied: %+v", again)
	}
}

func TestSmoothRopeNoWorkWithinBounds(t *testing.T) {
	r := newRig(t)
	a := r.record(t, 2, 1)
	// Substring + reassembly of the same strand region: junctions are
	// contiguous in the strand and need no copying.
	sub1, err := r.rs.Substring("t", a, AudioVisual, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := r.rs.Substring("t", a, AudioVisual, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := r.rs.Concate("t", sub1, sub2)
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(r.d, r.a, r.rs, 16)
	reports, err := ed.SmoothRope(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("contiguous junction smoothed: %+v", reports)
	}
}

func TestSmoothedRopeCompilesAndBounds(t *testing.T) {
	r := newRig(t)
	a, b := distantRopes(t, r)
	cat, err := r.rs.Concate("t", a, b)
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(r.d, r.a, r.rs, 16)
	if _, err := ed.SmoothRope(cat); err != nil {
		t.Fatal(err)
	}
	plan, err := r.rs.CompilePlay(r.d, cat, VideoOnly, 0, cat.Length(), msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The compiled plan's measured scattering respects the policy
	// bound (plus the policy's realized access time).
	bound := r.d.Geometry().AccessTime(16)
	if got := msm.MaxPlanScatter(r.d, plan.Blocks); got > bound {
		t.Fatalf("plan scattering %v exceeds policy bound %v", got, bound)
	}
}

func TestEditorBounds(t *testing.T) {
	r := newRig(t)
	ed := NewEditor(r.d, r.a, r.rs, 16)
	s, d, err := ed.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 || d < s {
		t.Fatalf("bounds %d/%d", s, d)
	}
}
