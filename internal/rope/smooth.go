package rope

import (
	"fmt"
	"math"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/strand"
)

// Editor maintains the scattering parameter while editing (§4.2).
// After rope operations create junctions between strand intervals, the
// hop from the last block of one interval to the first block of the
// next may exceed the scattering bound; the editor copies a bounded
// number of blocks (Eqs. 19/20) of the following strand into a fresh
// strand, redistributed "equally in the region" between the junction
// ends, so that every inter-block access stays within bounds.
type Editor struct {
	d     disk.Device
	a     *alloc.Allocator
	ropes *Store
	// MaxCylinders is the placement policy's scattering upper bound
	// expressed in cylinders: no two successive blocks of a played
	// sequence may be farther apart.
	MaxCylinders int
	// DenseThreshold is the disk occupancy above which the dense
	// copy bound (Eq. 20) is reported instead of the sparse one.
	DenseThreshold float64
}

// NewEditor creates an editor with the given placement policy.
func NewEditor(d disk.Device, a *alloc.Allocator, ropes *Store, maxCylinders int) *Editor {
	return &Editor{d: d, a: a, ropes: ropes, MaxCylinders: maxCylinders, DenseThreshold: 0.85}
}

// JunctionReport describes one smoothed (or checked) junction.
type JunctionReport struct {
	// Medium is the component the junction belongs to.
	Medium Medium
	// Interval is the index of the interval following the junction.
	Interval int
	// DistCylinders is the junction's pre-smoothing cylinder
	// distance.
	DistCylinders int
	// Copied is the number of non-silent blocks copied.
	Copied int
	// NewStrand is the fresh strand holding the copies (Nil when no
	// copying was needed).
	NewStrand strand.ID
	// BoundSparse and BoundDense are the analytic copy bounds of
	// Eqs. 19 and 20 for this device, for comparison.
	BoundSparse, BoundDense int
}

// Bounds computes the analytic copy bounds (Eqs. 19/20) under the
// editor's placement policy: l_lower is the minimum realizable access
// time (adjacent-cylinder seek plus latency) and l_max_seek the
// worst-case access.
func (e *Editor) Bounds() (sparse, dense int, err error) {
	g := e.d.Geometry()
	maxSeek := continuity.Seconds(g.MaxAccessTime())
	lLower := continuity.Seconds(g.MinAccessTime())
	sparse, err = continuity.CopyBound(continuity.SparseDisk, maxSeek, lLower)
	if err != nil {
		return 0, 0, err
	}
	dense, err = continuity.CopyBound(continuity.DenseDisk, maxSeek, lLower)
	if err != nil {
		return 0, 0, err
	}
	return sparse, dense, nil
}

// SmoothRope walks every junction of every medium in the rope and
// smooths those whose hop exceeds the placement bound. It returns a
// report per smoothed junction. The rope's interval list is patched in
// place; interests are re-synced.
func (e *Editor) SmoothRope(r *Rope) ([]JunctionReport, error) {
	var reports []JunctionReport
	for _, m := range []Medium{VideoOnly, AudioOnly} {
		// Junction indices shift as smoothing splits intervals, so
		// walk with an explicit index over the live list.
		for i := 0; i+1 < len(r.Intervals); i++ {
			rep, smoothed, err := e.smoothJunction(r, m, i)
			if err != nil {
				return reports, err
			}
			if smoothed {
				reports = append(reports, rep)
			}
		}
	}
	e.ropes.SyncInterests(r)
	return reports, nil
}

// junctionEnds finds the disk cylinders at a junction: the last
// non-silent block of interval i's component and the first non-silent
// block of interval i+1's component. ok is false when the junction
// imposes no constraint (missing component or all-silent range).
func (e *Editor) junctionEnds(r *Rope, m Medium, i int) (cylA int, ok bool, err error) {
	prev := r.Intervals[i].Component(m)
	next := r.Intervals[i+1].Component(m)
	if prev == nil || next == nil || prev.Strand == strand.Nil || next.Strand == strand.Nil {
		return 0, false, nil
	}
	ps, found := e.ropes.strands.Get(prev.Strand)
	if !found {
		return 0, false, fmt.Errorf("rope %d: unknown strand %d", r.ID, prev.Strand)
	}
	units, err := e.ropes.unitsIn(prev, r.Intervals[i].Duration)
	if err != nil {
		return 0, false, err
	}
	if units == 0 {
		return 0, false, nil
	}
	lastUnit := prev.StartUnit + units - 1
	if lastUnit >= ps.UnitCount() {
		lastUnit = ps.UnitCount() - 1
	}
	q := uint64(ps.Granularity())
	g := e.d.Geometry()
	for b := int(lastUnit / q); b >= int(prev.StartUnit/q); b-- {
		entry, err := ps.Block(b)
		if err != nil {
			return 0, false, err
		}
		if !entry.Silent() {
			return g.CylinderOf(int(entry.Sector)), true, nil
		}
	}
	return 0, false, nil // all silence: no seek constraint
}

// smoothJunction checks and, if needed, smooths the junction between
// intervals i and i+1 for medium m.
func (e *Editor) smoothJunction(r *Rope, m Medium, i int) (JunctionReport, bool, error) {
	cylA, constrained, err := e.junctionEnds(r, m, i)
	if err != nil || !constrained {
		return JunctionReport{}, false, err
	}
	next := r.Intervals[i+1].Component(m)
	ns, found := e.ropes.strands.Get(next.Strand)
	if !found {
		return JunctionReport{}, false, fmt.Errorf("rope %d: unknown strand %d", r.ID, next.Strand)
	}
	g := e.d.Geometry()
	q := uint64(ns.Granularity())
	nextUnits, err := e.ropes.unitsIn(next, r.Intervals[i+1].Duration)
	if err != nil {
		return JunctionReport{}, false, err
	}
	if nextUnits == 0 {
		return JunctionReport{}, false, nil
	}
	rawFirst := int(next.StartUnit / q)
	lastUnit := next.StartUnit + nextUnits - 1
	if lastUnit >= ns.UnitCount() {
		lastUnit = ns.UnitCount() - 1
	}
	rawLast := int(lastUnit / q)

	// First non-silent block of the next range.
	firstNS := -1
	for b := rawFirst; b <= rawLast; b++ {
		entry, err := ns.Block(b)
		if err != nil {
			return JunctionReport{}, false, err
		}
		if !entry.Silent() {
			firstNS = b
			break
		}
	}
	if firstNS < 0 {
		return JunctionReport{}, false, nil // all silence
	}
	eFirst, err := ns.Block(firstNS)
	if err != nil {
		return JunctionReport{}, false, err
	}
	dist := absInt(g.CylinderOf(int(eFirst.Sector)) - cylA)
	if dist <= e.MaxCylinders {
		return JunctionReport{}, false, nil // within bounds already
	}

	// Choose the copy prefix length c (in raw blocks) such that the
	// copied non-silent blocks, redistributed equally between cylA
	// and the first surviving block, make every gap ≤ MaxCylinders.
	copiedNS := 0
	var c int
	anchorCyl := -1
	for c = 1; rawFirst+c <= rawLast+1; c++ {
		entry, err := ns.Block(rawFirst + c - 1)
		if err != nil {
			return JunctionReport{}, false, err
		}
		if !entry.Silent() {
			copiedNS++
		}
		if rawFirst+c > rawLast {
			anchorCyl = -1 // everything in range copied
			break
		}
		// Anchor: first surviving non-silent block.
		a := -1
		for b := rawFirst + c; b <= rawLast; b++ {
			en, err := ns.Block(b)
			if err != nil {
				return JunctionReport{}, false, err
			}
			if !en.Silent() {
				a = b
				break
			}
		}
		if a < 0 {
			anchorCyl = -1
			break
		}
		ea, err := ns.Block(a)
		if err != nil {
			return JunctionReport{}, false, err
		}
		anchorCyl = g.CylinderOf(int(ea.Sector))
		if copiedNS > 0 {
			gap := int(math.Ceil(float64(absInt(anchorCyl-cylA)) / float64(copiedNS+1)))
			if gap <= e.MaxCylinders {
				break
			}
		}
	}

	// Place the copies evenly between cylA and the anchor.
	newID := e.ropes.strands.NewID()
	var entries []layout.PrimaryEntry
	nsIdx := 0
	rd := strand.NewReader(e.d, ns)
	for b := 0; b < c; b++ {
		payload, silent, err := rd.BlockPayload(rawFirst + b)
		if err != nil {
			return JunctionReport{}, false, err
		}
		if silent {
			entries = append(entries, layout.SilenceEntry())
			continue
		}
		blockSectors := (len(payload) + g.SectorSize - 1) / g.SectorSize
		nsIdx++
		var target int
		if anchorCyl >= 0 {
			target = cylA + int(math.Round(float64(nsIdx)*float64(anchorCyl-cylA)/float64(copiedNS+1)))
		} else {
			step := e.MaxCylinders / 2
			if step < 1 {
				step = 1
			}
			target = cylA + nsIdx*step
		}
		run, err := e.a.AllocateNearCylinder(clampCyl(target, g.Cylinders), blockSectors)
		if err != nil {
			return JunctionReport{}, false, fmt.Errorf("rope %d: smoothing: %w", r.ID, err)
		}
		if err := e.d.WriteAt(run.LBA, payload); err != nil {
			e.a.Free(run)
			return JunctionReport{}, false, err
		}
		entries = append(entries, layout.PrimaryEntry{Sector: uint32(run.LBA), SectorCount: uint32(run.Sectors)})
	}

	unitsCovered := uint64(c) * q
	if avail := ns.UnitCount() - uint64(rawFirst)*q; unitsCovered > avail {
		unitsCovered = avail
	}
	copyStrand, err := e.ropes.strands.BuildFromEntries(strand.BuildMeta{
		ID:          newID,
		Medium:      ns.Medium(),
		Rate:        ns.Rate(),
		UnitBytes:   ns.UnitBytes(),
		Granularity: ns.Granularity(),
		UnitCount:   unitsCovered,
		Variable:    ns.Variable(),
	}, entries)
	if err != nil {
		return JunctionReport{}, false, err
	}

	// Patch the interval list: the covered prefix of interval i+1 now
	// references the copy strand.
	offset := next.StartUnit - uint64(rawFirst)*q
	coveredPlay := unitsCovered - offset
	intervalUnits := nextUnits
	iv := r.Intervals[i+1]
	if coveredPlay >= intervalUnits {
		r.Intervals[i+1].setComponent(m, &ComponentRef{Strand: copyStrand.ID(), StartUnit: offset})
	} else {
		d1 := continuity.Duration(float64(coveredPlay) / ns.Rate())
		a, b, err := e.ropes.splitInterval(iv, d1)
		if err != nil {
			return JunctionReport{}, false, err
		}
		a.setComponent(m, &ComponentRef{Strand: copyStrand.ID(), StartUnit: offset})
		r.Intervals = append(r.Intervals[:i+1], append([]Interval{a, b}, r.Intervals[i+2:]...)...)
	}
	e.ropes.SyncInterests(r)

	sparse, dense, err := e.Bounds()
	if err != nil {
		return JunctionReport{}, false, err
	}
	return JunctionReport{
		Medium:        m,
		Interval:      i + 1,
		DistCylinders: dist,
		Copied:        copiedNS,
		NewStrand:     copyStrand.ID(),
		BoundSparse:   sparse,
		BoundDense:    dense,
	}, true, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func clampCyl(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}
