package rope

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"mmfs/internal/strand"
)

// This file persists the rope registry: a compact little-endian binary
// encoding of every rope's Figure 8 structure, written into the file
// system's metadata region at sync time.

const ropeTableMagic = 0x4d4d5254 // "MMRT"

func putString(w *bytes.Buffer, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	w.Write(n[:])
	w.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if int(n) > r.Len() {
		return "", fmt.Errorf("rope: string length %d beyond buffer", n)
	}
	buf := make([]byte, n)
	if _, err := r.Read(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func putStrings(w *bytes.Buffer, list []string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(list)))
	w.Write(n[:])
	for _, s := range list {
		putString(w, s)
	}
}

func getStrings(r *bytes.Reader) ([]string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := getString(r)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func putRef(w *bytes.Buffer, ref *ComponentRef) {
	if ref == nil {
		binary.Write(w, binary.LittleEndian, uint64(strand.Nil))
		binary.Write(w, binary.LittleEndian, uint64(0))
		return
	}
	binary.Write(w, binary.LittleEndian, uint64(ref.Strand))
	binary.Write(w, binary.LittleEndian, ref.StartUnit)
}

func getRef(r *bytes.Reader) (*ComponentRef, error) {
	var sid, start uint64
	if err := binary.Read(r, binary.LittleEndian, &sid); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &start); err != nil {
		return nil, err
	}
	if strand.ID(sid) == strand.Nil {
		return nil, nil
	}
	return &ComponentRef{Strand: strand.ID(sid), StartUnit: start}, nil
}

// Marshal serializes the whole rope registry.
func (s *Store) Marshal() []byte {
	var w bytes.Buffer
	binary.Write(&w, binary.LittleEndian, uint32(ropeTableMagic))
	binary.Write(&w, binary.LittleEndian, uint64(s.nextID))
	binary.Write(&w, binary.LittleEndian, uint32(len(s.ropes)))
	for _, id := range s.IDs() {
		r := s.ropes[id]
		binary.Write(&w, binary.LittleEndian, uint64(r.ID))
		putString(&w, r.Creator)
		putStrings(&w, r.PlayAccess)
		putStrings(&w, r.EditAccess)
		binary.Write(&w, binary.LittleEndian, uint32(len(r.Intervals)))
		for _, iv := range r.Intervals {
			putRef(&w, iv.Video)
			putRef(&w, iv.Audio)
			binary.Write(&w, binary.LittleEndian, int64(iv.Duration))
			binary.Write(&w, binary.LittleEndian, uint32(len(iv.Corr)))
			for _, c := range iv.Corr {
				binary.Write(&w, binary.LittleEndian, c.AudioBlock)
				binary.Write(&w, binary.LittleEndian, c.VideoBlock)
			}
			binary.Write(&w, binary.LittleEndian, uint32(len(iv.Triggers)))
			for _, t := range iv.Triggers {
				binary.Write(&w, binary.LittleEndian, t.VideoBlock)
				binary.Write(&w, binary.LittleEndian, t.AudioBlock)
				putString(&w, t.Text)
			}
		}
	}
	return w.Bytes()
}

// Unmarshal restores the rope registry and rebuilds the interests
// table.
func (s *Store) Unmarshal(data []byte) error {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != ropeTableMagic {
		return fmt.Errorf("rope: bad table magic %#x", magic)
	}
	var next uint64
	if err := binary.Read(r, binary.LittleEndian, &next); err != nil {
		return err
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	s.ropes = make(map[ID]*Rope, count)
	s.lastStrands = make(map[ID][]strand.ID, count)
	s.nextID = ID(next)
	for i := uint32(0); i < count; i++ {
		var id uint64
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return err
		}
		rp := &Rope{ID: ID(id)}
		var err error
		if rp.Creator, err = getString(r); err != nil {
			return err
		}
		if rp.PlayAccess, err = getStrings(r); err != nil {
			return err
		}
		if rp.EditAccess, err = getStrings(r); err != nil {
			return err
		}
		var nIv uint32
		if err := binary.Read(r, binary.LittleEndian, &nIv); err != nil {
			return err
		}
		rp.Intervals = make([]Interval, nIv)
		for j := uint32(0); j < nIv; j++ {
			iv := &rp.Intervals[j]
			if iv.Video, err = getRef(r); err != nil {
				return err
			}
			if iv.Audio, err = getRef(r); err != nil {
				return err
			}
			var dur int64
			if err := binary.Read(r, binary.LittleEndian, &dur); err != nil {
				return err
			}
			iv.Duration = time.Duration(dur)
			var nc uint32
			if err := binary.Read(r, binary.LittleEndian, &nc); err != nil {
				return err
			}
			iv.Corr = make([]Correspondence, nc)
			for k := range iv.Corr {
				if err := binary.Read(r, binary.LittleEndian, &iv.Corr[k].AudioBlock); err != nil {
					return err
				}
				if err := binary.Read(r, binary.LittleEndian, &iv.Corr[k].VideoBlock); err != nil {
					return err
				}
			}
			var nt uint32
			if err := binary.Read(r, binary.LittleEndian, &nt); err != nil {
				return err
			}
			iv.Triggers = make([]Trigger, nt)
			for k := range iv.Triggers {
				if err := binary.Read(r, binary.LittleEndian, &iv.Triggers[k].VideoBlock); err != nil {
					return err
				}
				if err := binary.Read(r, binary.LittleEndian, &iv.Triggers[k].AudioBlock); err != nil {
					return err
				}
				if iv.Triggers[k].Text, err = getString(r); err != nil {
					return err
				}
			}
		}
		s.ropes[rp.ID] = rp
		s.SyncInterests(rp)
	}
	return nil
}
