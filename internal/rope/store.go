package rope

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mmfs/internal/gc"
	"mmfs/internal/strand"
)

// Store is the rope registry of one file system. It owns rope
// identity, resolves component refs against the strand store, and
// keeps the interests table in sync with the ropes' strand references
// so the garbage collector can reclaim unreferenced strands.
type Store struct {
	strands   *strand.Store
	interests *gc.Interests
	ropes     map[ID]*Rope
	// lastStrands remembers each rope's strand set at the last sync,
	// so edits can release interests the rope no longer holds.
	lastStrands map[ID][]strand.ID
	nextID      ID
}

// NewStore creates an empty rope registry.
func NewStore(ss *strand.Store, in *gc.Interests) *Store {
	return &Store{
		strands:     ss,
		interests:   in,
		ropes:       make(map[ID]*Rope),
		lastStrands: make(map[ID][]strand.ID),
		nextID:      1,
	}
}

// Strands exposes the strand store ropes resolve against.
func (s *Store) Strands() *strand.Store { return s.strands }

// Interests exposes the interests table.
func (s *Store) Interests() *gc.Interests { return s.interests }

// Create registers a new empty rope owned by creator.
func (s *Store) Create(creator string) *Rope {
	r := &Rope{ID: s.nextID, Creator: creator}
	s.nextID++
	s.ropes[r.ID] = r
	return r
}

// Get looks a rope up by ID.
func (s *Store) Get(id ID) (*Rope, bool) {
	r, ok := s.ropes[id]
	return r, ok
}

// Len reports the number of registered ropes.
func (s *Store) Len() int { return len(s.ropes) }

// IDs lists rope IDs ascending.
func (s *Store) IDs() []ID {
	out := make([]ID, 0, len(s.ropes))
	for id := range s.ropes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Remove deletes a rope and releases its interests; a following GC
// collection reclaims any strands now unreferenced.
func (s *Store) Remove(id ID) error {
	r, ok := s.ropes[id]
	if !ok {
		return fmt.Errorf("rope: delete of unknown rope %d", id)
	}
	for _, sid := range s.lastStrands[id] {
		s.interests.Release(uint64(id), sid)
	}
	delete(s.lastStrands, id)
	delete(s.ropes, r.ID)
	return nil
}

// SyncInterests reconciles the interests table with the rope's current
// strand references. Every operation that changes an interval list
// must call it.
func (s *Store) SyncInterests(r *Rope) {
	cur := r.Strands()
	curSet := make(map[strand.ID]bool, len(cur))
	for _, sid := range cur {
		curSet[sid] = true
		s.interests.Register(uint64(r.ID), sid)
	}
	for _, sid := range s.lastStrands[r.ID] {
		if !curSet[sid] {
			s.interests.Release(uint64(r.ID), sid)
		}
	}
	s.lastStrands[r.ID] = cur
}

// ReplaceStrandRefs rewrites every rope reference from the old strand
// to the new one (used when reorganization relocates a strand's
// blocks; the unit numbering is preserved, so StartUnit fields carry
// over unchanged). Interests move with the references.
func (s *Store) ReplaceStrandRefs(old, new strand.ID) int {
	replaced := 0
	for _, r := range s.ropes {
		touched := false
		for i := range r.Intervals {
			if v := r.Intervals[i].Video; v != nil && v.Strand == old {
				v.Strand = new
				touched = true
				replaced++
			}
			if a := r.Intervals[i].Audio; a != nil && a.Strand == old {
				a.Strand = new
				touched = true
				replaced++
			}
		}
		if touched {
			s.SyncInterests(r)
		}
	}
	return replaced
}

// rate resolves a component ref's recording rate (units/second).
func (s *Store) rate(ref *ComponentRef) (float64, error) {
	st, ok := s.strands.Get(ref.Strand)
	if !ok {
		return 0, fmt.Errorf("rope: component references unknown strand %d", ref.Strand)
	}
	return st.Rate(), nil
}

// unitsIn converts a duration to a unit count at the ref's rate.
func (s *Store) unitsIn(ref *ComponentRef, d time.Duration) (uint64, error) {
	rate, err := s.rate(ref)
	if err != nil {
		return 0, err
	}
	return uint64(math.Round(d.Seconds() * rate)), nil
}

// advance returns a copy of ref moved forward by d of playback.
func (s *Store) advance(ref *ComponentRef, d time.Duration) (*ComponentRef, error) {
	if ref == nil {
		return nil, nil
	}
	units, err := s.unitsIn(ref, d)
	if err != nil {
		return nil, err
	}
	out := *ref
	out.StartUnit += units
	return &out, nil
}

// splitInterval cuts iv into [0,d) and [d,Duration), advancing the
// second part's component refs.
func (s *Store) splitInterval(iv Interval, d time.Duration) (Interval, Interval, error) {
	a := iv.clone()
	b := iv.clone()
	a.Duration = d
	b.Duration = iv.Duration - d
	var err error
	if b.Video, err = s.advance(iv.Video, d); err != nil {
		return Interval{}, Interval{}, err
	}
	if b.Audio, err = s.advance(iv.Audio, d); err != nil {
		return Interval{}, Interval{}, err
	}
	// Correspondence entries mark the interval start and stay with
	// the first part. Triggers are anchored to media blocks, so each
	// follows the part that contains its block (block numbers are
	// strand-absolute and need no rewriting).
	b.Corr = nil
	a.Triggers, b.Triggers = nil, nil
	for _, trig := range iv.Triggers {
		off, err := s.triggerOffset(&iv, trig)
		if err != nil {
			return Interval{}, Interval{}, err
		}
		if off < d {
			a.Triggers = append(a.Triggers, trig)
		} else {
			b.Triggers = append(b.Triggers, trig)
		}
	}
	return a, b, nil
}

// splitAt ensures an interval boundary exists exactly at offset t and
// returns the index of the interval beginning at t (len(Intervals)
// when t equals the rope length).
func (s *Store) splitAt(r *Rope, t time.Duration) (int, error) {
	if t < 0 || t > r.Length() {
		return 0, fmt.Errorf("rope %d: offset %v outside length %v", r.ID, t, r.Length())
	}
	var acc time.Duration
	for i := range r.Intervals {
		if acc == t {
			return i, nil
		}
		end := acc + r.Intervals[i].Duration
		if t < end {
			a, b, err := s.splitInterval(r.Intervals[i], t-acc)
			if err != nil {
				return 0, err
			}
			r.Intervals = append(r.Intervals[:i], append([]Interval{a, b}, r.Intervals[i+1:]...)...)
			return i + 1, nil
		}
		acc = end
	}
	return len(r.Intervals), nil
}

// Slice extracts a deep copy of the rope's [start, start+dur) range,
// restricted to the selected media; it is the read-only view editing
// and data fetch build on.
func (s *Store) Slice(r *Rope, m Medium, start, dur time.Duration) ([]Interval, error) {
	return s.slice(r, m, start, dur)
}

// slice extracts a deep copy of the rope's [start, start+dur) range,
// restricted to the selected media (unselected components come back
// nil).
func (s *Store) slice(r *Rope, m Medium, start, dur time.Duration) ([]Interval, error) {
	if err := r.validateRange(start, dur); err != nil {
		return nil, err
	}
	var out []Interval
	var acc time.Duration
	end := start + dur
	for _, iv := range r.Intervals {
		ivEnd := acc + iv.Duration
		lo := maxDur(acc, start)
		hi := minDur(ivEnd, end)
		if hi > lo {
			part := iv.clone()
			var err error
			if part.Video, err = s.advance(iv.Video, lo-acc); err != nil {
				return nil, err
			}
			if part.Audio, err = s.advance(iv.Audio, lo-acc); err != nil {
				return nil, err
			}
			part.Duration = hi - lo
			switch m {
			case VideoOnly:
				part.Audio = nil
			case AudioOnly:
				part.Video = nil
			}
			out = append(out, part)
		}
		acc = ivEnd
		if acc >= end {
			break
		}
	}
	return out, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
