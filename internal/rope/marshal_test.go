package rope

import (
	"testing"
	"time"
)

func TestRopeTableMarshalRoundTrip(t *testing.T) {
	r := newRig(t)
	r1 := r.record(t, 3, 40)
	r1.Creator = "alice"
	r1.PlayAccess = []string{"bob", "carol"}
	r1.EditAccess = []string{"bob"}
	r1.Intervals[0].Triggers = []Trigger{{VideoBlock: 3, AudioBlock: 1, Text: "slide 1: overview"}}
	r2 := r.record(t, 2, 41)
	// Some editing so interval lists are non-trivial.
	if err := r.rs.Insert(r1, time.Second, AudioVisual, r2, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.rs.Delete(r1, AudioOnly, 0, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.rs.RefreshCorrespondence(r1); err != nil {
		t.Fatal(err)
	}

	data := r.rs.Marshal()
	rs2 := NewStore(r.ss, r.in)
	if err := rs2.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	if rs2.Len() != 2 {
		t.Fatalf("restored %d ropes", rs2.Len())
	}
	got, ok := rs2.Get(r1.ID)
	if !ok {
		t.Fatal("rope 1 lost")
	}
	if got.Creator != "alice" || len(got.PlayAccess) != 2 || len(got.EditAccess) != 1 {
		t.Fatalf("identity lost: %+v", got)
	}
	if got.Length() != r1.Length() {
		t.Fatalf("length %v vs %v", got.Length(), r1.Length())
	}
	if len(got.Intervals) != len(r1.Intervals) {
		t.Fatalf("intervals %d vs %d", len(got.Intervals), len(r1.Intervals))
	}
	for i := range got.Intervals {
		a, b := got.Intervals[i], r1.Intervals[i]
		if a.Duration != b.Duration {
			t.Fatalf("interval %d duration", i)
		}
		if (a.Video == nil) != (b.Video == nil) || (a.Audio == nil) != (b.Audio == nil) {
			t.Fatalf("interval %d component presence", i)
		}
		if a.Video != nil && *a.Video != *b.Video {
			t.Fatalf("interval %d video ref", i)
		}
		if len(a.Corr) != len(b.Corr) || len(a.Triggers) != len(b.Triggers) {
			t.Fatalf("interval %d sync info", i)
		}
	}
	if got.Intervals[0].Triggers[0].Text != "slide 1: overview" {
		t.Fatal("trigger text lost")
	}
	// The restored store continues numbering past the old ropes.
	nr := rs2.Create("x")
	if nr.ID <= r2.ID {
		t.Fatalf("new rope ID %d collides", nr.ID)
	}
	// Interests are rebuilt for restored ropes.
	truth := make(map[uint64][]interface{})
	_ = truth
	for _, id := range rs2.IDs() {
		rp, _ := rs2.Get(id)
		for _, sid := range rp.Strands() {
			if r.in.Count(sid) == 0 {
				t.Fatalf("restored rope %d strand %d has no interest", id, sid)
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	r := newRig(t)
	if err := r.rs.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	data := r.rs.Marshal()
	data[0] ^= 0xff
	if err := r.rs.Unmarshal(data); err == nil {
		t.Fatal("bad magic accepted")
	}
}
