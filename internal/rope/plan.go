package rope

import (
	"fmt"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// CompilePlay compiles one medium of a rope's [start, start+dur) range
// into an MSM playback plan: one planned block per covered media
// block, with pure-delay blocks standing in for intervals where the
// medium is absent. Playing a whole multimedia rope issues one such
// plan per medium, started simultaneously — the block-level
// correspondence plus equal recording rates then keep the media in
// sync (§4: "the block-level correspondence and the recording rate
// information together maintain inter-media synchronization").
func (s *Store) CompilePlay(d disk.Device, r *Rope, m Medium, start, dur time.Duration, opts msm.PlanOptions) (msm.PlayPlan, error) {
	if m == AudioVisual {
		return msm.PlayPlan{}, fmt.Errorf("rope: compile one medium at a time")
	}
	if err := r.validateRange(start, dur); err != nil {
		return msm.PlayPlan{}, err
	}
	part, err := s.slice(r, m, start, dur)
	if err != nil {
		return msm.PlayPlan{}, err
	}
	var blocks []msm.PlannedBlock
	var tmpl *strand.Strand
	for _, iv := range part {
		ref := iv.Component(m)
		if ref == nil || ref.Strand == strand.Nil {
			blocks = append(blocks, msm.PlannedBlock{Reader: nil, Duration: iv.Duration})
			continue
		}
		st, ok := s.strands.Get(ref.Strand)
		if !ok {
			return msm.PlayPlan{}, fmt.Errorf("rope %d: unknown strand %d", r.ID, ref.Strand)
		}
		if tmpl == nil {
			tmpl = st
		}
		units, err := s.unitsIn(ref, iv.Duration)
		if err != nil {
			return msm.PlayPlan{}, err
		}
		var avail uint64
		if ref.StartUnit < st.UnitCount() {
			avail = st.UnitCount() - ref.StartUnit
		}
		if units > avail {
			units = avail
		}
		if units == 0 {
			// Duration rounding can leave a sub-unit residue (or a
			// ref exactly at the strand end); preserve the timing
			// with a pure delay so later intervals keep their
			// deadlines.
			blocks = append(blocks, msm.PlannedBlock{Reader: nil, Duration: iv.Duration})
			continue
		}
		expanded, err := msm.ExpandInterval(d, st, ref.StartUnit, units)
		if err != nil {
			return msm.PlayPlan{}, err
		}
		blocks = append(blocks, expanded...)
	}
	if tmpl == nil {
		return msm.PlayPlan{}, fmt.Errorf("rope %d has no %v component in [%v, %v)", r.ID, m, start, start+dur)
	}
	adm := continuity.Request{
		Name:        fmt.Sprintf("rope-%d-%v", r.ID, m),
		Granularity: tmpl.Granularity(),
		UnitBits:    float64(tmpl.UnitBits()),
		Rate:        tmpl.Rate(),
	}
	return msm.PlanBlocksPlay(d, fmt.Sprintf("play-rope-%d-%v", r.ID, m), blocks, adm, opts)
}

// Components reports which media the rope actually contains.
func (r *Rope) Components() (hasVideo, hasAudio bool) {
	for i := range r.Intervals {
		if r.Intervals[i].Video != nil {
			hasVideo = true
		}
		if r.Intervals[i].Audio != nil {
			hasAudio = true
		}
	}
	return hasVideo, hasAudio
}
