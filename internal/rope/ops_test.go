package rope

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
	"mmfs/internal/gc"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

// rig builds a rope store over real recorded strands.
type rig struct {
	d  *disk.Disk
	a  *alloc.Allocator
	ss *strand.Store
	in *gc.Interests
	rs *Store
}

func newRig(t *testing.T) *rig {
	t.Helper()
	g := disk.Geometry{
		Cylinders: 300, Surfaces: 4, SectorsPerTrack: 32, SectorSize: 512,
		RPM: 3600, MinSeek: 2 * time.Millisecond, MaxSeek: 25 * time.Millisecond,
	}
	d := disk.MustNew(g)
	a, err := alloc.New(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	ss := strand.NewStore(d, a)
	in := gc.New()
	return &rig{d: d, a: a, ss: ss, in: in, rs: NewStore(ss, in)}
}

// record creates an AV rope: video at 30 units/s (q=3) and audio at
// 10 units/s (q=2), for `seconds` seconds.
func (r *rig) record(t *testing.T, seconds int, seed int64) *Rope {
	t.Helper()
	write := func(m layout.Medium, rate float64, unitBytes, q, units int) strand.ID {
		w, err := strand.NewWriter(r.d, r.a, strand.WriterConfig{
			ID: r.ss.NewID(), Medium: m, Rate: rate, UnitBytes: unitBytes, Granularity: q,
			Constraint:    alloc.Constraint{MinCylinders: 1, MaxCylinders: 16},
			StartCylinder: int(seed*37) % 280,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < units; i++ {
			if _, err := w.Append(media.Unit{Seq: uint64(i), Payload: media.FramePayload(seed, uint64(i), unitBytes)}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		r.ss.Put(s)
		return s.ID()
	}
	vid := write(layout.Video, 30, 600, 3, 30*seconds)
	aud := write(layout.Audio, 10, 800, 2, 10*seconds)
	rp := r.rs.Create("test")
	rp.Intervals = []Interval{{
		Video:    &ComponentRef{Strand: vid},
		Audio:    &ComponentRef{Strand: aud},
		Duration: time.Duration(seconds) * time.Second,
	}}
	r.rs.SyncInterests(rp)
	return rp
}

func TestInsertGrowsLengthAndSplits(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 4, 1)
	with := r.record(t, 2, 2)
	if err := r.rs.Insert(base, 2*time.Second, AudioVisual, with, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if base.Length() != 5*time.Second {
		t.Fatalf("length %v", base.Length())
	}
	if len(base.Intervals) != 3 {
		t.Fatalf("%d intervals", len(base.Intervals))
	}
	// The tail interval's refs are advanced 2 s into the original
	// strands: 60 video units, 20 audio units.
	tail := base.Intervals[2]
	if tail.Video.StartUnit != 60 || tail.Audio.StartUnit != 20 {
		t.Fatalf("tail refs %d/%d", tail.Video.StartUnit, tail.Audio.StartUnit)
	}
	// The with rope is untouched.
	if with.Length() != 2*time.Second || len(with.Intervals) != 1 {
		t.Fatal("with rope mutated")
	}
}

func TestInsertAtEndsAndErrors(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 2, 3)
	with := r.record(t, 2, 4)
	if err := r.rs.Insert(base, 0, AudioVisual, with, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.rs.Insert(base, base.Length(), AudioVisual, with, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if base.Length() != 4*time.Second {
		t.Fatalf("length %v", base.Length())
	}
	if err := r.rs.Insert(base, 99*time.Second, AudioVisual, with, 0, time.Second); err == nil {
		t.Fatal("insert past end accepted")
	}
	if err := r.rs.Insert(base, 0, AudioVisual, with, 0, 99*time.Second); err == nil {
		t.Fatal("with-range past end accepted")
	}
}

func TestDeleteAVSplicesOut(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 5, 5)
	if err := r.rs.Delete(base, AudioVisual, time.Second, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if base.Length() != 3*time.Second {
		t.Fatalf("length %v", base.Length())
	}
	// The second interval starts 3 s into the strands.
	tail := base.Intervals[1]
	if tail.Video.StartUnit != 90 || tail.Audio.StartUnit != 30 {
		t.Fatalf("tail refs %d/%d", tail.Video.StartUnit, tail.Audio.StartUnit)
	}
}

func TestDeleteSingleMediumPreservesTiming(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 4, 6)
	if err := r.rs.Delete(base, AudioOnly, time.Second, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if base.Length() != 4*time.Second {
		t.Fatalf("length changed to %v", base.Length())
	}
	// Middle interval has video but no audio.
	var sawGap bool
	var acc time.Duration
	for _, iv := range base.Intervals {
		if acc >= time.Second && acc < 3*time.Second {
			if iv.Audio != nil {
				t.Fatal("audio survived inside deleted range")
			}
			if iv.Video == nil {
				t.Fatal("video lost")
			}
			sawGap = true
		}
		acc += iv.Duration
	}
	if !sawGap {
		t.Fatal("no gap interval found")
	}
}

func TestSubstringSharesStrands(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 4, 7)
	sub, err := r.rs.Substring("tester", base, AudioVisual, time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Length() != 2*time.Second {
		t.Fatalf("substring length %v", sub.Length())
	}
	if sub.Intervals[0].Video.Strand != base.Intervals[0].Video.Strand {
		t.Fatal("substring does not share the video strand")
	}
	if sub.Intervals[0].Video.StartUnit != 30 {
		t.Fatalf("substring video ref %d", sub.Intervals[0].Video.StartUnit)
	}
	// Both ropes hold interests in the shared strand.
	if got := r.in.Count(base.Intervals[0].Video.Strand); got != 2 {
		t.Fatalf("shared strand has %d interests", got)
	}
}

func TestSubstringSingleMedium(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 3, 8)
	sub, err := r.rs.Substring("tester", base, VideoOnly, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Intervals[0].Audio != nil {
		t.Fatal("audio leaked into video-only substring")
	}
	if sub.Intervals[0].Video == nil {
		t.Fatal("video missing")
	}
}

func TestConcate(t *testing.T) {
	r := newRig(t)
	r1 := r.record(t, 2, 9)
	r2 := r.record(t, 3, 10)
	cat, err := r.rs.Concate("tester", r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Length() != 5*time.Second {
		t.Fatalf("length %v", cat.Length())
	}
	if len(cat.Intervals) != 2 {
		t.Fatalf("%d intervals", len(cat.Intervals))
	}
	// Sources untouched, strands shared.
	if r1.Length() != 2*time.Second || r2.Length() != 3*time.Second {
		t.Fatal("sources mutated")
	}
}

func TestReplaceSingleMediumMergesTimelines(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 4, 11)
	with := r.record(t, 4, 12)
	origVideo := base.Intervals[0].Video.Strand
	if err := r.rs.Replace(base, AudioOnly, time.Second, 2*time.Second, with, 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if base.Length() != 4*time.Second {
		t.Fatalf("length %v", base.Length())
	}
	// Inside [1s,3s): video from base, audio from with.
	var acc time.Duration
	for _, iv := range base.Intervals {
		if acc >= time.Second && acc < 3*time.Second {
			if iv.Video.Strand != origVideo {
				t.Fatal("video replaced too")
			}
			if iv.Audio.Strand == 0 || iv.Audio.Strand == base.Intervals[0].Audio.Strand {
				t.Fatal("audio not replaced")
			}
			if len(iv.Corr) == 0 {
				t.Fatal("correspondence not regenerated")
			}
		}
		acc += iv.Duration
	}
	// Mismatched durations rejected.
	if err := r.rs.Replace(base, AudioOnly, 0, time.Second, with, 0, 2*time.Second); err == nil {
		t.Fatal("mismatched single-medium replace accepted")
	}
}

func TestReplaceAVChangesLength(t *testing.T) {
	r := newRig(t)
	base := r.record(t, 4, 13)
	with := r.record(t, 3, 14)
	if err := r.rs.Replace(base, AudioVisual, time.Second, time.Second, with, 0, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if base.Length() != 6*time.Second {
		t.Fatalf("length %v, want 6s", base.Length())
	}
}

func TestRemoveReleasesInterests(t *testing.T) {
	r := newRig(t)
	rp := r.record(t, 2, 15)
	strands := rp.Strands()
	if err := r.rs.Remove(rp.ID); err != nil {
		t.Fatal(err)
	}
	for _, s := range strands {
		if r.in.Count(s) != 0 {
			t.Fatalf("strand %d still has interests", s)
		}
	}
	if err := r.rs.Remove(rp.ID); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestInterestsAlwaysMatchRopes(t *testing.T) {
	// Property: after random editing sequences, the incremental
	// interests table matches ground truth recomputed from the ropes.
	r := newRig(t)
	ropes := []*Rope{r.record(t, 4, 20), r.record(t, 4, 21), r.record(t, 4, 22)}
	rng := rand.New(rand.NewSource(33))
	for step := 0; step < 60; step++ {
		a := ropes[rng.Intn(len(ropes))]
		b := ropes[rng.Intn(len(ropes))]
		switch rng.Intn(4) {
		case 0:
			if a.Length() > time.Second && b.Length() >= time.Second {
				pos := time.Duration(rng.Int63n(int64(a.Length())))
				_ = r.rs.Insert(a, pos, AudioVisual, b, 0, time.Second)
			}
		case 1:
			if a.Length() > 2*time.Second {
				_ = r.rs.Delete(a, AudioVisual, time.Second, time.Second)
			}
		case 2:
			if a.Length() >= time.Second {
				sub, err := r.rs.Substring("t", a, AudioVisual, 0, time.Second)
				if err == nil {
					ropes = append(ropes, sub)
				}
			}
		case 3:
			cat, err := r.rs.Concate("t", a, b)
			if err == nil {
				ropes = append(ropes, cat)
			}
		}
	}
	truth := make(map[uint64][]strand.ID)
	for _, id := range r.rs.IDs() {
		rp, _ := r.rs.Get(id)
		truth[uint64(id)] = rp.Strands()
	}
	if err := r.in.Audit(truth); err != nil {
		t.Fatal(err)
	}
}

// Property: rope length algebra — insert adds, AV delete subtracts,
// substring/concat compose.
func TestLengthAlgebraQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := newRigQuick(seed)
		if r == nil {
			return false
		}
		base := r.recordQuick(4, seed)
		with := r.recordQuick(3, seed+1)
		rng := rand.New(rand.NewSource(seed))
		expect := base.Length()
		for step := 0; step < 10; step++ {
			switch rng.Intn(2) {
			case 0:
				pos := time.Duration(rng.Int63n(int64(base.Length()) + 1))
				d := 500 * time.Millisecond
				if err := r.rs.Insert(base, pos, AudioVisual, with, 0, d); err != nil {
					return false
				}
				expect += d
			case 1:
				if base.Length() < time.Second {
					continue
				}
				start := time.Duration(rng.Int63n(int64(base.Length() - 500*time.Millisecond)))
				d := 500 * time.Millisecond
				if err := r.rs.Delete(base, AudioVisual, start, d); err != nil {
					return false
				}
				expect -= d
			}
			if base.Length() != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// newRigQuick/recordQuick are panic-free variants for quick.Check.
func newRigQuick(seed int64) *rig {
	g := disk.Geometry{
		Cylinders: 300, Surfaces: 4, SectorsPerTrack: 32, SectorSize: 512,
		RPM: 3600, MinSeek: 2 * time.Millisecond, MaxSeek: 25 * time.Millisecond,
	}
	d := disk.MustNew(g)
	a, err := alloc.New(g, 8)
	if err != nil {
		return nil
	}
	ss := strand.NewStore(d, a)
	in := gc.New()
	return &rig{d: d, a: a, ss: ss, in: in, rs: NewStore(ss, in)}
}

func (r *rig) recordQuick(seconds int, seed int64) *Rope {
	write := func(m layout.Medium, rate float64, unitBytes, q, units int) strand.ID {
		w, err := strand.NewWriter(r.d, r.a, strand.WriterConfig{
			ID: r.ss.NewID(), Medium: m, Rate: rate, UnitBytes: unitBytes, Granularity: q,
			Constraint: alloc.Constraint{MinCylinders: 1, MaxCylinders: 16},
		})
		if err != nil {
			panic(err)
		}
		for i := 0; i < units; i++ {
			if _, err := w.Append(media.Unit{Seq: uint64(i), Payload: make([]byte, unitBytes)}); err != nil {
				panic(err)
			}
		}
		s, err := w.Close()
		if err != nil {
			panic(err)
		}
		r.ss.Put(s)
		return s.ID()
	}
	vid := write(layout.Video, 30, 600, 3, 30*seconds)
	aud := write(layout.Audio, 10, 800, 2, 10*seconds)
	rp := r.rs.Create("q")
	rp.Intervals = []Interval{{
		Video:    &ComponentRef{Strand: vid},
		Audio:    &ComponentRef{Strand: aud},
		Duration: time.Duration(seconds) * time.Second,
	}}
	r.rs.SyncInterests(rp)
	return rp
}

func TestAccessChecks(t *testing.T) {
	r := newRig(t)
	rp := r.record(t, 2, 30)
	rp.Creator = "alice"
	rp.PlayAccess = []string{"bob"}
	rp.EditAccess = []string{"carol"}
	if !rp.CanPlay("alice") || !rp.CanPlay("bob") || rp.CanPlay("dave") {
		t.Fatal("play access")
	}
	if !rp.CanEdit("alice") || !rp.CanEdit("carol") || rp.CanEdit("bob") {
		t.Fatal("edit access")
	}
	open := &Rope{Creator: "x"}
	if !open.CanPlay("anyone") || !open.CanEdit("anyone") {
		t.Fatal("empty lists must mean open access")
	}
}

func TestMediumHelpers(t *testing.T) {
	if AudioVisual.String() != "audiovisual" || VideoOnly.String() != "video" || AudioOnly.String() != "audio" {
		t.Fatal("names")
	}
}

func TestRefreshCorrespondence(t *testing.T) {
	r := newRig(t)
	rp := r.record(t, 2, 31)
	if err := r.rs.Delete(rp, AudioVisual, 500*time.Millisecond, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.rs.RefreshCorrespondence(rp); err != nil {
		t.Fatal(err)
	}
	tail := rp.Intervals[len(rp.Intervals)-1]
	if len(tail.Corr) != 1 {
		t.Fatal("no correspondence on tail interval")
	}
	// Tail starts 1 s in: video unit 30 / q 3 = block 10; audio unit
	// 10 / q 2 = block 5.
	if tail.Corr[0].VideoBlock != 10 || tail.Corr[0].AudioBlock != 5 {
		t.Fatalf("correspondence %+v", tail.Corr[0])
	}
}
