package rope

import (
	"fmt"
	"sort"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/strand"
)

// This file implements Figure 8's trigger information: "Text to be
// synchronized with audio/video". A trigger names the video and audio
// block numbers at which its text fires, exactly as the rope data
// structure prescribes; playback-side tooling converts block numbers
// back to offsets.

// TriggerAt is a resolved trigger: text and the rope-relative time it
// fires.
type TriggerAt struct {
	At   time.Duration
	Text string
}

// AddTrigger attaches text at offset `at` of the rope, recording the
// block-level positions of both media per Figure 8. Triggers are
// stored on the interval containing the offset.
func (s *Store) AddTrigger(r *Rope, at time.Duration, text string) error {
	if at < 0 || at >= r.Length() {
		return fmt.Errorf("rope %d: trigger at %v outside length %v", r.ID, at, r.Length())
	}
	var acc time.Duration
	for i := range r.Intervals {
		iv := &r.Intervals[i]
		if at >= acc+iv.Duration {
			acc += iv.Duration
			continue
		}
		off := at - acc
		trig := Trigger{Text: text}
		blockAt := func(ref *ComponentRef) (uint32, error) {
			if ref == nil || ref.Strand == strand.Nil {
				return 0, nil
			}
			st, ok := s.strands.Get(ref.Strand)
			if !ok {
				return 0, fmt.Errorf("rope %d: unknown strand %d", r.ID, ref.Strand)
			}
			units, err := s.unitsIn(ref, off)
			if err != nil {
				return 0, err
			}
			return uint32((ref.StartUnit + units) / uint64(st.Granularity())), nil
		}
		var err error
		if trig.VideoBlock, err = blockAt(iv.Video); err != nil {
			return err
		}
		if trig.AudioBlock, err = blockAt(iv.Audio); err != nil {
			return err
		}
		iv.Triggers = append(iv.Triggers, trig)
		return nil
	}
	return fmt.Errorf("rope %d: trigger offset %v not located", r.ID, at)
}

// Triggers resolves every trigger of the rope to a rope-relative time,
// sorted ascending. The resolution uses the video block number when
// the interval has video, else the audio block number — the same
// correspondence rule playback uses to fire synchronized text.
func (s *Store) Triggers(r *Rope) ([]TriggerAt, error) {
	var out []TriggerAt
	var acc time.Duration
	for i := range r.Intervals {
		iv := &r.Intervals[i]
		for _, trig := range iv.Triggers {
			at, err := s.triggerOffset(iv, trig)
			if err != nil {
				return nil, fmt.Errorf("rope %d interval %d: %w", r.ID, i, err)
			}
			out = append(out, TriggerAt{At: acc + at, Text: trig.Text})
		}
		acc += iv.Duration
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// triggerOffset converts a trigger's block position back to an offset
// within the interval.
func (s *Store) triggerOffset(iv *Interval, trig Trigger) (time.Duration, error) {
	resolve := func(ref *ComponentRef, block uint32) (time.Duration, bool, error) {
		if ref == nil || ref.Strand == strand.Nil {
			return 0, false, nil
		}
		st, ok := s.strands.Get(ref.Strand)
		if !ok {
			return 0, false, fmt.Errorf("unknown strand %d", ref.Strand)
		}
		blockUnit := uint64(block) * uint64(st.Granularity())
		if blockUnit < ref.StartUnit {
			blockUnit = ref.StartUnit
		}
		secs := float64(blockUnit-ref.StartUnit) / st.Rate()
		return continuity.Duration(secs), true, nil
	}
	if at, ok, err := resolve(iv.Video, trig.VideoBlock); err != nil || ok {
		return clampDur(at, iv.Duration), err
	}
	at, _, err := resolve(iv.Audio, trig.AudioBlock)
	return clampDur(at, iv.Duration), err
}

func clampDur(d, max time.Duration) time.Duration {
	if d > max {
		return max
	}
	return d
}
