package rope

import (
	"testing"
	"time"
)

func TestTriggerRoundTrip(t *testing.T) {
	r := newRig(t)
	rp := r.record(t, 4, 60)
	for _, c := range []struct {
		at   time.Duration
		text string
	}{
		{0, "title card"},
		{1500 * time.Millisecond, "slide 2"},
		{3900 * time.Millisecond, "credits"},
	} {
		if err := r.rs.AddTrigger(rp, c.at, c.text); err != nil {
			t.Fatalf("trigger at %v: %v", c.at, err)
		}
	}
	got, err := r.rs.Triggers(rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d triggers", len(got))
	}
	// Block-level quantization: resolved times land on block
	// boundaries (video q=3 at 30 fps → 100 ms grid) at or below the
	// requested offsets, in order.
	wants := []time.Duration{0, 1500 * time.Millisecond, 3900 * time.Millisecond}
	for i, trig := range got {
		if trig.At > wants[i] || wants[i]-trig.At > 100*time.Millisecond {
			t.Fatalf("trigger %d at %v, want within one block of %v", i, trig.At, wants[i])
		}
	}
	if got[0].Text != "title card" || got[2].Text != "credits" {
		t.Fatalf("texts %v", got)
	}
}

func TestTriggerSurvivesEditing(t *testing.T) {
	r := newRig(t)
	rp := r.record(t, 4, 61)
	if err := r.rs.AddTrigger(rp, 3*time.Second, "late marker"); err != nil {
		t.Fatal(err)
	}
	// Insert a second of content at t=1s: the trigger's interval
	// shifts but its block anchor (and thus the strand-relative
	// moment it marks) stays with the media.
	with := r.record(t, 2, 62)
	if err := r.rs.Insert(rp, time.Second, AudioVisual, with, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := r.rs.Triggers(rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d triggers after insert", len(got))
	}
	// The marked media moment moved from 3 s to 4 s of rope time.
	if got[0].At < 3900*time.Millisecond || got[0].At > 4*time.Second {
		t.Fatalf("trigger resolved at %v, want ≈ 4s", got[0].At)
	}
}

func TestTriggerOutOfRange(t *testing.T) {
	r := newRig(t)
	rp := r.record(t, 2, 63)
	if err := r.rs.AddTrigger(rp, 2*time.Second, "x"); err == nil {
		t.Fatal("trigger at rope end accepted")
	}
	if err := r.rs.AddTrigger(rp, -time.Second, "x"); err == nil {
		t.Fatal("negative trigger accepted")
	}
}

func TestTriggerMarshalRoundTrip(t *testing.T) {
	r := newRig(t)
	rp := r.record(t, 2, 64)
	if err := r.rs.AddTrigger(rp, 500*time.Millisecond, "persisted"); err != nil {
		t.Fatal(err)
	}
	data := r.rs.Marshal()
	rs2 := NewStore(r.ss, r.in)
	if err := rs2.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	restored, _ := rs2.Get(rp.ID)
	got, err := rs2.Triggers(restored)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Text != "persisted" {
		t.Fatalf("triggers after restore: %v", got)
	}
}
