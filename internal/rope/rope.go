// Package rope implements the paper's multimedia rope abstraction
// (§4): "a collection of multiple strands (of same or different
// medium) tied together by synchronization information". Ropes are the
// mutable, editable objects of the file system; the strands they
// reference are immutable, so every editing operation manipulates
// pointers to strand intervals rather than copying media data — except
// for the small, bounded copying that maintains the scattering
// parameter at interval junctions (§4.2, implemented in smooth.go).
package rope

import (
	"fmt"
	"time"

	"mmfs/internal/strand"
)

// ID uniquely identifies a rope within one file system.
type ID uint64

// Correspondence is Figure 8's block-level correspondence entry,
// "used to synchronize the start of playback of all the media at
// strand interval boundaries".
type Correspondence struct {
	AudioBlock uint32
	VideoBlock uint32
}

// Trigger is Figure 8's trigger information: text synchronized with a
// video/audio block pair.
type Trigger struct {
	VideoBlock uint32
	AudioBlock uint32
	Text       string
}

// ComponentRef points one interval's medium at a position inside an
// immutable strand.
type ComponentRef struct {
	// Strand is the referenced strand; Nil means the medium is
	// absent for this interval (silence / blank).
	Strand strand.ID
	// StartUnit is the first referenced unit within the strand.
	StartUnit uint64
}

// Interval is one entry of a rope's interval list: up to one video and
// one audio component playing simultaneously for Duration. An edited
// rope "contains a list of pointers to intervals of strands".
type Interval struct {
	// Video is the video component, nil when absent.
	Video *ComponentRef
	// Audio is the audio component, nil when absent.
	Audio *ComponentRef
	// Duration is the interval's playback time.
	Duration time.Duration
	// Corr is the block-level correspondence information for this
	// interval.
	Corr []Correspondence
	// Triggers is the synchronized-text trigger list.
	Triggers []Trigger
}

// Component returns the ref for the medium, or nil.
func (iv *Interval) Component(m Medium) *ComponentRef {
	switch m {
	case VideoOnly:
		return iv.Video
	case AudioOnly:
		return iv.Audio
	}
	return nil
}

// setComponent stores the ref for a single medium.
func (iv *Interval) setComponent(m Medium, ref *ComponentRef) {
	switch m {
	case VideoOnly:
		iv.Video = ref
	case AudioOnly:
		iv.Audio = ref
	default:
		panic("rope: setComponent requires a single medium")
	}
}

// clone deep-copies the interval.
func (iv Interval) clone() Interval {
	out := iv
	if iv.Video != nil {
		v := *iv.Video
		out.Video = &v
	}
	if iv.Audio != nil {
		a := *iv.Audio
		out.Audio = &a
	}
	out.Corr = append([]Correspondence(nil), iv.Corr...)
	out.Triggers = append([]Trigger(nil), iv.Triggers...)
	return out
}

// Medium selects which media an operation applies to (§4.1: "Any of
// the editing operations may be performed on any subset of media
// constituting a rope").
type Medium int

const (
	// AudioVisual selects both media.
	AudioVisual Medium = iota
	// VideoOnly selects the video component.
	VideoOnly
	// AudioOnly selects the audio component.
	AudioOnly
)

// String names the selector.
func (m Medium) String() string {
	switch m {
	case VideoOnly:
		return "video"
	case AudioOnly:
		return "audio"
	default:
		return "audiovisual"
	}
}

// Rope is the Figure 8 data structure: identity, creator, access
// lists, and the interval list. (Figure 8's per-component recording
// rates and granularities live on the strands themselves and are
// resolved through the strand store, so they cannot diverge.)
type Rope struct {
	// ID is the rope's unique ID.
	ID ID
	// Creator identifies who recorded or derived the rope.
	Creator string
	// PlayAccess and EditAccess are user/group identification lists;
	// empty means everyone.
	PlayAccess []string
	EditAccess []string
	// Intervals is the interval list, played in order.
	Intervals []Interval
}

// Length is the rope's playback duration (Figure 8's Length, here
// derived so it cannot go stale).
func (r *Rope) Length() time.Duration {
	var sum time.Duration
	for _, iv := range r.Intervals {
		sum += iv.Duration
	}
	return sum
}

// CanPlay reports whether the user may play the rope.
func (r *Rope) CanPlay(user string) bool { return r.allowed(user, r.PlayAccess) }

// CanEdit reports whether the user may edit the rope.
func (r *Rope) CanEdit(user string) bool { return r.allowed(user, r.EditAccess) }

func (r *Rope) allowed(user string, list []string) bool {
	if user == r.Creator || len(list) == 0 {
		return true
	}
	for _, u := range list {
		if u == user {
			return true
		}
	}
	return false
}

// Strands lists the distinct strand IDs the rope references.
func (r *Rope) Strands() []strand.ID {
	seen := make(map[strand.ID]bool)
	var out []strand.ID
	add := func(ref *ComponentRef) {
		if ref == nil || ref.Strand == strand.Nil || seen[ref.Strand] {
			return
		}
		seen[ref.Strand] = true
		out = append(out, ref.Strand)
	}
	for i := range r.Intervals {
		add(r.Intervals[i].Video)
		add(r.Intervals[i].Audio)
	}
	return out
}

// clone deep-copies the rope's interval list into a new rope shell.
func (r *Rope) cloneIntervals() []Interval {
	out := make([]Interval, len(r.Intervals))
	for i, iv := range r.Intervals {
		out[i] = iv.clone()
	}
	return out
}

// normalize drops zero-duration intervals and merges nothing else
// (adjacent intervals with contiguous refs could be merged, but
// keeping them separate preserves edit history and costs only index
// entries).
func (r *Rope) normalize() {
	out := r.Intervals[:0]
	for _, iv := range r.Intervals {
		if iv.Duration > 0 {
			out = append(out, iv)
		}
	}
	r.Intervals = out
}

// validateRange checks an edit range against the rope length.
func (r *Rope) validateRange(start, dur time.Duration) error {
	if start < 0 || dur < 0 || start+dur > r.Length() {
		return fmt.Errorf("rope %d: range [%v, %v+%v) outside length %v", r.ID, start, start, dur, r.Length())
	}
	return nil
}
