package client_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mmfs/internal/client"
	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/rope"
	"mmfs/internal/server"
)

// startServer brings up a server on loopback and returns its address.
func startServer(t *testing.T) string {
	t.Helper()
	fs, err := core.Format(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(fs)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	return lis.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestConcurrentSharedClient hammers one client from many goroutines.
// The client serializes calls on its mutex, so every RPC must complete
// without interleaving frames; run with -race to check the guard.
func TestConcurrentSharedClient(t *testing.T) {
	addr := startServer(t)
	c := dial(t, addr)
	id, _, err := c.RecordClip("t", media.NewVideoSource(30, 18000, 30, 1), nil, false)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const callsEach = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := c.Stats(); err != nil {
						errs <- fmt.Errorf("stats: %w", err)
						return
					}
				case 1:
					info, err := c.Info(id)
					if err != nil {
						errs <- fmt.Errorf("info: %w", err)
						return
					}
					if info.Length != time.Second {
						errs <- fmt.Errorf("info length %v, want 1s", info.Length)
						return
					}
				case 2:
					ids, err := c.ListRopes()
					if err != nil {
						errs <- fmt.Errorf("list: %w", err)
						return
					}
					if len(ids) == 0 {
						errs <- fmt.Errorf("list returned no ropes")
						return
					}
				case 3:
					units, err := c.Fetch("t", id, rope.VideoOnly, 0, 0)
					if err != nil {
						errs <- fmt.Errorf("fetch: %w", err)
						return
					}
					if len(units) != 30 {
						errs <- fmt.Errorf("fetched %d units, want 30", len(units))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentConnections drives several independent connections at
// once, exercising the server's session table under -race.
func TestConcurrentConnections(t *testing.T) {
	addr := startServer(t)
	const conns = 4
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			id, _, err := c.RecordClip("t", media.NewVideoSource(30, 18000, 30, int64(i+1)), nil, false)
			if err != nil {
				errs <- fmt.Errorf("conn %d record: %w", i, err)
				return
			}
			res, err := c.Play("t", id, rope.VideoOnly, 0, 0, 2, "")
			if err != nil {
				errs <- fmt.Errorf("conn %d play: %w", i, err)
				return
			}
			if res.Blocks == 0 {
				errs <- fmt.Errorf("conn %d played no blocks", i)
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every connection's rope must have landed.
	c := dial(t, addr)
	ids, err := c.ListRopes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != conns {
		t.Fatalf("listed %d ropes, want %d", len(ids), conns)
	}
}

// TestCloseInterruptsCall covers the documented Close contract: closing
// a client while another goroutine is mid-call must not race or hang.
func TestCloseInterruptsCall(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := c.Stats(); err != nil {
				return // connection closed under us, as intended
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("call still blocked 5s after Close")
	}
}
