package client_test

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mmfs/internal/client"
	"mmfs/internal/wire"
)

// emptyListResponse is a valid OpListRopes reply with zero ropes.
func emptyListResponse() []byte {
	return wire.OKResponse(wire.NewEncoder().U32(0).Bytes())
}

// TestRetryRedialsAfterTornConnection verifies the capped-backoff
// retry: the first connection is torn down before any response, and
// the client redials and completes the call on the second.
func TestRetryRedialsAfterTornConnection(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		// First connection: hang up before answering anything.
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		conn.Close()
		// Second connection: serve normally.
		conn, err = lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			frame, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			if _, _, err := wire.ParseRequest(frame); err != nil {
				return
			}
			if err := wire.WriteFrame(conn, emptyListResponse()); err != nil {
				return
			}
		}
	}()

	c, err := client.DialOptions(lis.Addr().String(), client.Options{
		DialTimeout: 2 * time.Second,
		RPCTimeout:  2 * time.Second,
		Retries:     3,
		Backoff:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, err := c.ListRopes()
	if err != nil {
		t.Fatalf("call did not survive the torn connection: %v", err)
	}
	if len(ids) != 0 {
		t.Fatalf("unexpected ropes: %v", ids)
	}
}

// TestRPCTimeoutExpires verifies a server that accepts but never
// responds cannot wedge the client: the call fails with a timeout.
func TestRPCTimeoutExpires(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(io.Discard, conn) // read forever, answer never
			}()
		}
	}()

	c, err := client.DialOptions(lis.Addr().String(), client.Options{RPCTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.ListRopes()
	if err == nil {
		t.Fatal("call against a mute server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("got %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestServerErrorsNotRetried verifies only transport failures are
// retried: a server-side error response is final, and the request is
// not re-executed.
func TestServerErrorsNotRetried(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var requests atomic.Int32
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			if _, err := wire.ReadFrame(conn); err != nil {
				return
			}
			requests.Add(1)
			if err := wire.WriteFrame(conn, wire.ErrResponse(errors.New("nope"))); err != nil {
				return
			}
		}
	}()

	c, err := client.DialOptions(lis.Addr().String(), client.Options{Retries: 3, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ListRopes(); err == nil {
		t.Fatal("error response reported as success")
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("request executed %d times, want exactly 1", got)
	}
}
