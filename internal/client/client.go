// Package client is the rope stub library of the paper's prototype:
// "applications are compiled with a rope stub library which uses
// remote procedure calls to contact the MRS" (§5.2). Every method maps
// one-to-one onto a wire operation.
package client

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/media"
	"mmfs/internal/obs"
	"mmfs/internal/rope"
	"mmfs/internal/wire"
)

// Options harden a dialed client against a slow or flapping server.
// The zero value preserves the original behavior: no timeouts, no
// retries.
type Options struct {
	// DialTimeout bounds each connection attempt; 0 means no limit.
	DialTimeout time.Duration
	// RPCTimeout bounds one full request/response round trip; 0 means
	// no limit.
	RPCTimeout time.Duration
	// Retries is how many times a transport-level failure (dial error,
	// torn connection, timeout) is retried after redialing. Server-side
	// errors are never retried — the server answered. Note a retry
	// re-sends the request: a non-idempotent op whose response was lost
	// in flight may execute twice.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 50ms when Retries > 0).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 2s).
	MaxBackoff time.Duration
}

// withDefaults fills the backoff defaults in.
func (o Options) withDefaults() Options {
	if o.Retries > 0 {
		if o.Backoff <= 0 {
			o.Backoff = 50 * time.Millisecond
		}
		if o.MaxBackoff <= 0 {
			o.MaxBackoff = 2 * time.Second
		}
	}
	return o
}

// Client is a connection to an MRS server. Safe for concurrent use;
// requests are serialized on the connection.
type Client struct {
	mu sync.Mutex
	// conn carries one framed RPC at a time. guarded by mu
	conn net.Conn
	// addr is non-empty for dialed clients and enables redial-on-retry;
	// NewFromConn clients have no address to go back to.
	addr string
	opts Options
}

// Dial connects to an MRS server with no timeouts or retries.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to an MRS server with the given hardening
// options.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, addr: addr, opts: opts}, nil
}

// dial makes one connection attempt under the dial timeout.
func dial(addr string, opts Options) (net.Conn, error) {
	if opts.DialTimeout > 0 {
		return net.DialTimeout("tcp", addr, opts.DialTimeout)
	}
	return net.Dial("tcp", addr)
}

// NewFromConn wraps an existing connection (tests use net.Pipe). The
// client cannot redial, so transport failures are not retried.
func NewFromConn(conn net.Conn) *Client { return &Client{conn: conn} }

// Close tears the connection down.
func (c *Client) Close() error {
	//lint:ignore lockguard Close must interrupt an in-flight call, so it bypasses mu; net.Conn.Close is safe concurrently
	conn := c.conn
	if conn == nil {
		return nil // mid-redial: nothing to tear down
	}
	return conn.Close()
}

// call performs one RPC round trip, redialing and retrying transport
// failures under the client's Options.
func (c *Client) call(op wire.Op, body []byte) (*wire.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := wire.Request(op, body)
	backoff := c.opts.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			// A previous attempt tore the connection down; redial
			// before re-sending.
			var conn net.Conn
			conn, err = dial(c.addr, c.opts)
			if conn != nil {
				c.conn = conn
			}
		}
		if c.conn != nil {
			var d *wire.Decoder
			// The stub is a blocking RPC client: mu serializes whole
			// calls on the shared conn, so the round trip (bounded by
			// RPCTimeout deadlines) must happen inside the lock.
			//lint:ignore blockinglock mu exists to serialize entire RPCs on one conn
			d, err = c.roundTrip(req)
			if err == nil {
				return d, nil
			}
			if c.addr != "" && retryable(err) {
				// The connection is suspect after any transport
				// failure; the redial above replaces it.
				c.conn.Close()
				c.conn = nil
			}
		}
		if c.addr == "" || attempt >= c.opts.Retries || !retryable(err) {
			return nil, err
		}
		// Retry backoff stays under mu for the same reason: a second
		// caller must not interleave a request into a half-recovered
		// connection mid-retry.
		//lint:ignore blockinglock mu exists to serialize entire RPCs on one conn
		time.Sleep(backoff)
		if backoff *= 2; backoff > c.opts.MaxBackoff {
			backoff = c.opts.MaxBackoff
		}
	}
}

// roundTrip writes one request frame and reads its response under the
// RPC timeout. The caller must hold c.mu.
func (c *Client) roundTrip(req []byte) (*wire.Decoder, error) {
	if c.opts.RPCTimeout > 0 {
		//lint:ignore noerrdrop a failed deadline set means a dead conn, which the write below surfaces
		_ = c.conn.SetDeadline(time.Now().Add(c.opts.RPCTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	frame, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	resp, err := wire.ParseResponse(frame)
	if err != nil {
		return nil, err
	}
	return wire.NewDecoder(resp), nil
}

// retryable reports whether an error is transport-level (the request
// may never have reached the server) as opposed to a server-side
// response, which must not be re-executed.
func retryable(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// mediumCode converts a rope selector to its wire encoding.
func mediumCode(m rope.Medium) uint16 {
	switch m {
	case rope.VideoOnly:
		return 1
	case rope.AudioOnly:
		return 2
	default:
		return 0
	}
}

// RecordSession is an in-progress remote RECORD.
type RecordSession struct {
	c  *Client
	id uint64
}

// MediumSpec describes one recorded medium.
type MediumSpec struct {
	// UnitBytes is the unit size in bytes.
	UnitBytes int
	// Rate is the capture rate in units/second.
	Rate float64
}

// RecordStart begins a remote RECORD; pass nil for an absent medium.
func (c *Client) RecordStart(creator string, video, audio *MediumSpec, silenceElimination bool) (*RecordSession, error) {
	return c.recordStart(creator, video, audio, silenceElimination, false)
}

// RecordStartHeterogeneous begins a remote RECORD using §3.3.3's
// heterogeneous-block storage: both media land in one strand of
// composite units.
func (c *Client) RecordStartHeterogeneous(creator string, video, audio *MediumSpec) (*RecordSession, error) {
	return c.recordStart(creator, video, audio, false, true)
}

func (c *Client) recordStart(creator string, video, audio *MediumSpec, silenceElimination, hetero bool) (*RecordSession, error) {
	e := wire.NewEncoder().Str(creator)
	if video != nil {
		e.Bool(true).U32(uint32(video.UnitBytes)).F64(video.Rate)
	} else {
		e.Bool(false).U32(0).F64(0)
	}
	if audio != nil {
		e.Bool(true).U32(uint32(audio.UnitBytes)).F64(audio.Rate)
	} else {
		e.Bool(false).U32(0).F64(0)
	}
	e.Bool(silenceElimination)
	e.Bool(hetero)
	d, err := c.call(wire.OpRecordStart, e.Bytes())
	if err != nil {
		return nil, err
	}
	id := d.U64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return &RecordSession{c: c, id: id}, nil
}

// Append uploads captured units for one medium (VideoOnly or
// AudioOnly).
func (s *RecordSession) Append(m rope.Medium, units [][]byte) error {
	const batch = 64
	for len(units) > 0 {
		n := len(units)
		if n > batch {
			n = batch
		}
		e := wire.NewEncoder().U64(s.id).U16(mediumCode(m)).U32(uint32(n))
		for _, u := range units[:n] {
			e.Blob(u)
		}
		if _, err := s.c.call(wire.OpRecordAppend, e.Bytes()); err != nil {
			return err
		}
		units = units[n:]
	}
	return nil
}

// Finish completes the RECORD, returning the new rope's ID and length.
func (s *RecordSession) Finish() (rope.ID, time.Duration, error) {
	d, err := s.c.call(wire.OpRecordFinish, wire.NewEncoder().U64(s.id).Bytes())
	if err != nil {
		return 0, 0, err
	}
	id := rope.ID(d.U64())
	length := time.Duration(d.I64())
	return id, length, d.Err()
}

// RecordClip uploads and records a whole clip from in-memory sources
// in one call; a convenience for examples and tests.
func (c *Client) RecordClip(creator string, video, audio media.Source, silenceElimination bool) (rope.ID, time.Duration, error) {
	var vSpec, aSpec *MediumSpec
	if video != nil {
		vSpec = &MediumSpec{UnitBytes: video.UnitBytes(), Rate: video.Rate()}
	}
	if audio != nil {
		aSpec = &MediumSpec{UnitBytes: audio.UnitBytes(), Rate: audio.Rate()}
	}
	sess, err := c.RecordStart(creator, vSpec, aSpec, silenceElimination)
	if err != nil {
		return 0, 0, err
	}
	drain := func(m rope.Medium, src media.Source) error {
		var units [][]byte
		for {
			u, ok := src.Next()
			if !ok {
				break
			}
			units = append(units, u.Payload)
		}
		return sess.Append(m, units)
	}
	if video != nil {
		if err := drain(rope.VideoOnly, video); err != nil {
			return 0, 0, err
		}
	}
	if audio != nil {
		if err := drain(rope.AudioOnly, audio); err != nil {
			return 0, 0, err
		}
	}
	return sess.Finish()
}

// PlayResult summarizes a remote playback run.
type PlayResult struct {
	// Violations is the number of continuity violations observed.
	Violations int
	// Blocks is the number of media blocks retrieved.
	Blocks int
	// Startup is the virtual time at which display began.
	Startup time.Duration
	// CacheHits is the number of blocks served from the server's
	// interval cache instead of the disk.
	CacheHits int
	// Class is the QoS class the server ran the request under.
	Class string
	// Stride is the final sub-sampling stride: 1 is full rate, s > 1
	// means only every s-th block was fetched under load shedding.
	Stride int
	// ShedBlocks is the number of blocks skipped by load shedding.
	ShedBlocks int
}

// Play runs a remote PLAY to completion and returns its continuity
// statistics. class names the QoS class ("premium", "standard",
// "best-effort"); "" or "default" uses the server's configured default.
func (c *Client) Play(user string, id rope.ID, m rope.Medium, start, dur time.Duration, readAhead int, class string) (PlayResult, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(id)).U16(mediumCode(m)).I64(int64(start)).I64(int64(dur)).U32(uint32(readAhead)).Str(class)
	d, err := c.call(wire.OpPlay, e.Bytes())
	if err != nil {
		return PlayResult{}, err
	}
	res := PlayResult{
		Violations: int(d.U32()),
		Blocks:     int(d.U32()),
		Startup:    time.Duration(d.I64()),
		CacheHits:  int(d.U32()),
		Class:      d.Str(),
		Stride:     int(d.U16()),
		ShedBlocks: int(d.U32()),
	}
	return res, d.Err()
}

// Fetch retrieves one medium's unit payloads for an interval.
func (c *Client) Fetch(user string, id rope.ID, m rope.Medium, start, dur time.Duration) ([][]byte, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(id)).U16(mediumCode(m)).I64(int64(start)).I64(int64(dur))
	d, err := c.call(wire.OpFetch, e.Bytes())
	if err != nil {
		return nil, err
	}
	n := d.U32()
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.Blob())
	}
	return out, d.Err()
}

// Insert performs a remote INSERT, returning the number of blocks the
// scattering-maintenance algorithm copied.
func (c *Client) Insert(user string, base rope.ID, pos time.Duration, m rope.Medium, with rope.ID, withStart, withDur time.Duration) (int, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(base)).I64(int64(pos)).U16(mediumCode(m)).
		U64(uint64(with)).I64(int64(withStart)).I64(int64(withDur))
	d, err := c.call(wire.OpInsert, e.Bytes())
	if err != nil {
		return 0, err
	}
	copied := int(d.U32())
	return copied, d.Err()
}

// Replace performs a remote REPLACE.
func (c *Client) Replace(user string, base rope.ID, m rope.Medium, baseStart, baseDur time.Duration, with rope.ID, withStart, withDur time.Duration) (int, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(base)).U16(mediumCode(m)).
		I64(int64(baseStart)).I64(int64(baseDur)).
		U64(uint64(with)).I64(int64(withStart)).I64(int64(withDur))
	d, err := c.call(wire.OpReplace, e.Bytes())
	if err != nil {
		return 0, err
	}
	copied := int(d.U32())
	return copied, d.Err()
}

// Substring performs a remote SUBSTRING, returning the new rope ID.
func (c *Client) Substring(user string, base rope.ID, m rope.Medium, start, dur time.Duration) (rope.ID, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(base)).U16(mediumCode(m)).I64(int64(start)).I64(int64(dur))
	d, err := c.call(wire.OpSubstring, e.Bytes())
	if err != nil {
		return 0, err
	}
	id := rope.ID(d.U64())
	return id, d.Err()
}

// Concate performs a remote CONCATE, returning the new rope ID and the
// blocks copied at the junction.
func (c *Client) Concate(user string, r1, r2 rope.ID) (rope.ID, int, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(r1)).U64(uint64(r2))
	d, err := c.call(wire.OpConcate, e.Bytes())
	if err != nil {
		return 0, 0, err
	}
	id := rope.ID(d.U64())
	copied := int(d.U32())
	return id, copied, d.Err()
}

// DeleteRange performs a remote DELETE of a media interval.
func (c *Client) DeleteRange(user string, base rope.ID, m rope.Medium, start, dur time.Duration) (int, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(base)).U16(mediumCode(m)).I64(int64(start)).I64(int64(dur))
	d, err := c.call(wire.OpDeleteRange, e.Bytes())
	if err != nil {
		return 0, err
	}
	copied := int(d.U32())
	return copied, d.Err()
}

// DeleteRope removes a rope, returning how many strands were
// reclaimed.
func (c *Client) DeleteRope(user string, id rope.ID) (int, error) {
	e := wire.NewEncoder().Str(user).U64(uint64(id))
	d, err := c.call(wire.OpDeleteRope, e.Bytes())
	if err != nil {
		return 0, err
	}
	n := int(d.U32())
	return n, d.Err()
}

// RopeInfo describes a stored rope.
type RopeInfo struct {
	Creator   string
	Length    time.Duration
	Intervals int
	HasVideo  bool
	HasAudio  bool
	Strands   int
}

// Info fetches a rope's summary.
func (c *Client) Info(id rope.ID) (RopeInfo, error) {
	d, err := c.call(wire.OpRopeInfo, wire.NewEncoder().U64(uint64(id)).Bytes())
	if err != nil {
		return RopeInfo{}, err
	}
	info := RopeInfo{
		Creator:   d.Str(),
		Length:    time.Duration(d.I64()),
		Intervals: int(d.U32()),
		HasVideo:  d.Bool(),
		HasAudio:  d.Bool(),
		Strands:   int(d.U32()),
	}
	return info, d.Err()
}

// ListRopes lists stored rope IDs.
func (c *Client) ListRopes() ([]rope.ID, error) {
	d, err := c.call(wire.OpListRopes, nil)
	if err != nil {
		return nil, err
	}
	n := d.U32()
	out := make([]rope.ID, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, rope.ID(d.U64()))
	}
	return out, d.Err()
}

// ServerStats summarizes the file system behind the server.
type ServerStats struct {
	Occupancy      float64
	Strands        int
	Ropes          int
	Rounds         uint64
	K              int
	ActiveRequests int
	// CacheServed is the number of live requests currently fed by the
	// interval cache rather than the disk.
	CacheServed int
	// CacheHits is the lifetime count of blocks served from the cache.
	CacheHits uint64
	// CacheBytes/CacheCapacity are the cache's occupancy and size in
	// bytes (both zero when caching is disabled).
	CacheBytes    uint64
	CacheCapacity uint64
	// CacheIntervals is the number of leader→follower intervals
	// currently formed.
	CacheIntervals int
	// Retries, DegradedBlocks, and FaultStops are the fault-tolerance
	// ladder's lifetime tier counters: in-round re-reads, zero-fill
	// deliveries, and streams stopped after consecutive degradation.
	Retries        uint64
	DegradedBlocks uint64
	FaultStops     uint64
	// Classes is the per-QoS-class live stream population, indexed by
	// continuity.Class (best-effort, standard, premium).
	Classes [continuity.NumClasses]QoSClassStats
	// Promotions, LoadDemotions, and ShedBlocks are the QoS layer's
	// lifetime counters: streams promoted back toward full rate,
	// demotion events (admission-time shedding plus round-pass
	// demotions), and blocks skipped by sub-sampling.
	Promotions    uint64
	LoadDemotions uint64
	ShedBlocks    uint64
	// SpindleStates is the per-spindle health of a mirrored array
	// ("healthy", "suspect", "dead", "rebuilding"); empty when the
	// server does not mirror.
	SpindleStates []string
	// RebuildDone and RebuildTotal are the running rebuild/rebalance's
	// chunk cursor; both zero when no repair is active.
	RebuildDone  int
	RebuildTotal int
	// RebuildBlocks is the lifetime count of repair chunks copied.
	RebuildBlocks uint64
}

// QoSClassStats summarizes one QoS class's live streams on the server.
type QoSClassStats struct {
	// Active is the class's live PLAY requests.
	Active int
	// Degraded is the subset currently load-shed (stride > 1).
	Degraded int
	// EffectiveRate is the mean delivered unit rate across the class's
	// live plays, 0 when the class is idle.
	EffectiveRate float64
}

// Stats fetches server statistics.
func (c *Client) Stats() (ServerStats, error) {
	d, err := c.call(wire.OpStats, nil)
	if err != nil {
		return ServerStats{}, err
	}
	st := ServerStats{
		Occupancy:      d.F64(),
		Strands:        int(d.U32()),
		Ropes:          int(d.U32()),
		Rounds:         d.U64(),
		K:              int(d.U32()),
		ActiveRequests: int(d.U32()),
		CacheServed:    int(d.U32()),
		CacheHits:      d.U64(),
		CacheBytes:     d.U64(),
		CacheCapacity:  d.U64(),
		CacheIntervals: int(d.U32()),
		Retries:        d.U64(),
		DegradedBlocks: d.U64(),
		FaultStops:     d.U64(),
	}
	for c := 0; c < continuity.NumClasses; c++ {
		st.Classes[c] = QoSClassStats{
			Active:        int(d.U32()),
			Degraded:      int(d.U32()),
			EffectiveRate: d.F64(),
		}
	}
	st.Promotions = d.U64()
	st.LoadDemotions = d.U64()
	st.ShedBlocks = d.U64()
	if n := d.U32(); n > 0 && d.Err() == nil {
		st.SpindleStates = make([]string, 0, n)
		for i := uint32(0); i < n; i++ {
			st.SpindleStates = append(st.SpindleStates, disk.SpindleState(d.U16()).String())
		}
	}
	st.RebuildDone = int(d.U32())
	st.RebuildTotal = int(d.U32())
	st.RebuildBlocks = d.U64()
	return st, d.Err()
}

// Rebuild replaces failed spindle spindle of the server's mirrored
// array with a fresh device and runs the online rebuild to completion,
// returning the spindle's final health state and the server's lifetime
// repair-chunk count.
func (c *Client) Rebuild(spindle int) (string, uint64, error) {
	d, err := c.call(wire.OpRebuild, wire.NewEncoder().U32(uint32(spindle)).Bytes())
	if err != nil {
		return "", 0, err
	}
	state := d.Str()
	blocks := d.U64()
	return state, blocks, d.Err()
}

// Metrics fetches a snapshot of every metric the server's
// observability registry holds.
func (c *Client) Metrics() (obs.Snapshot, error) {
	d, err := c.call(wire.OpMetrics, nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	s := wire.DecodeSnapshot(d)
	return s, d.Err()
}

// SetAccess replaces a rope's play and edit access lists; only the
// creator may call it. Empty lists mean open access.
func (c *Client) SetAccess(user string, id rope.ID, play, edit []string) error {
	e := wire.NewEncoder().Str(user).U64(uint64(id)).U32(uint32(len(play)))
	for _, p := range play {
		e.Str(p)
	}
	e.U32(uint32(len(edit)))
	for _, p := range edit {
		e.Str(p)
	}
	_, err := c.call(wire.OpSetAccess, e.Bytes())
	return err
}

// AddTrigger attaches synchronized text at an offset of a rope
// (Figure 8's trigger information).
func (c *Client) AddTrigger(user string, id rope.ID, at time.Duration, text string) error {
	e := wire.NewEncoder().Str(user).U64(uint64(id)).I64(int64(at)).Str(text)
	_, err := c.call(wire.OpAddTrigger, e.Bytes())
	return err
}

// TriggerAt is a resolved synchronized-text trigger.
type TriggerAt struct {
	At   time.Duration
	Text string
}

// Triggers lists a rope's triggers with resolved rope-relative times.
func (c *Client) Triggers(user string, id rope.ID) ([]TriggerAt, error) {
	d, err := c.call(wire.OpTriggers, wire.NewEncoder().Str(user).U64(uint64(id)).Bytes())
	if err != nil {
		return nil, err
	}
	n := d.U32()
	out := make([]TriggerAt, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, TriggerAt{At: time.Duration(d.I64()), Text: d.Str()})
	}
	return out, d.Err()
}

// Flatten merges an edited rope's media into fresh single strands
// (§6.2's strand merging), returning how many old strands were
// reclaimed.
func (c *Client) Flatten(user string, id rope.ID) (int, error) {
	d, err := c.call(wire.OpFlatten, wire.NewEncoder().Str(user).U64(uint64(id)).Bytes())
	if err != nil {
		return 0, err
	}
	n := int(d.U32())
	return n, d.Err()
}

// Check runs the server-side integrity checker (fsck) and returns its
// findings as "kind: detail" strings; empty means clean.
func (c *Client) Check() ([]string, error) {
	d, err := c.call(wire.OpCheck, nil)
	if err != nil {
		return nil, err
	}
	n := d.U32()
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		kind := d.Str()
		detail := d.Str()
		out = append(out, kind+": "+detail)
	}
	return out, d.Err()
}

// TextWrite stores a conventional text file in the media gaps.
func (c *Client) TextWrite(name string, data []byte) error {
	_, err := c.call(wire.OpTextWrite, wire.NewEncoder().Str(name).Blob(data).Bytes())
	return err
}

// TextRead fetches a text file.
func (c *Client) TextRead(name string) ([]byte, error) {
	d, err := c.call(wire.OpTextRead, wire.NewEncoder().Str(name).Bytes())
	if err != nil {
		return nil, err
	}
	data := d.Blob()
	return data, d.Err()
}

// TextList lists text files.
func (c *Client) TextList() ([]string, error) {
	d, err := c.call(wire.OpTextList, nil)
	if err != nil {
		return nil, err
	}
	n := d.U32()
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.Str())
	}
	return out, d.Err()
}
