// Package layout implements the on-disk organization of a media
// strand (Figures 5 and 6 of Rangan & Vin): a 3-level index in which a
// Header Block points to Secondary Blocks, each Secondary Block points
// to Primary Blocks, and each Primary Block maps media block numbers
// to raw disk addresses. The structure "permits large strand sizes,
// and random as well as concurrent access to strands".
//
// Silence elimination (§4) is represented exactly as the paper
// prescribes: "We use NULL pointers in the primary blocks of a strand
// to indicate silence for the duration of a block."
package layout

import (
	"encoding/binary"
	"fmt"

	"mmfs/internal/disk"
)

// NullSector is the NULL pointer value marking a silent (delay-holder)
// media block that occupies no disk space.
const NullSector = ^uint32(0)

// headerMagic identifies a strand header block on disk.
const headerMagic = 0x4d4d4853 // "MMHS"

// PrimaryEntry is one Primary Block entry (Figure 6): the position and
// length of one media block. A Sector of NullSector denotes silence
// for the duration of the block.
type PrimaryEntry struct {
	// Sector is the media block's position on disk (LBA).
	Sector uint32
	// SectorCount is the media block's length in sectors.
	SectorCount uint32
}

// Silent reports whether the entry is a silence delay holder.
func (e PrimaryEntry) Silent() bool { return e.Sector == NullSector }

// SilenceEntry is the delay holder placed for an eliminated silent
// block.
func SilenceEntry() PrimaryEntry { return PrimaryEntry{Sector: NullSector} }

// primaryEntrySize is the encoded size of a PrimaryEntry.
const primaryEntrySize = 8

// SecondaryEntry is one Secondary Block entry (Figure 6): a pointer to
// a Primary Block together with the range of media block numbers it
// covers.
type SecondaryEntry struct {
	// StartBlock is the first media block number mapped by the
	// Primary Block.
	StartBlock uint32
	// BlockCount is the number of media blocks mapped.
	BlockCount uint32
	// Sector is the Primary Block's position on disk.
	Sector uint32
	// SectorCount is the Primary Block's length in sectors.
	SectorCount uint32
}

// secondaryEntrySize is the encoded size of a SecondaryEntry.
const secondaryEntrySize = 16

// Medium distinguishes the two strand media kinds.
type Medium uint8

const (
	// Video strands hold frames.
	Video Medium = iota
	// Audio strands hold samples.
	Audio
	// Mixed strands hold heterogeneous blocks: composite units
	// carrying a video frame together with its share of audio
	// samples (§3.3.3's heterogeneous-block scheme, which "provides
	// implicit inter-media synchronization").
	Mixed
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case Video:
		return "video"
	case Audio:
		return "audio"
	default:
		return "mixed"
	}
}

// Header flag bits.
const (
	// FlagVariable marks a strand whose units have variable sizes
	// (variable-rate compression, the paper's §6.2 extension). Media
	// blocks of such strands carry a 32-bit length prefix before each
	// unit, and UnitBits records the maximum (peak) unit size.
	FlagVariable uint8 = 1 << 0
)

// Header is the strand Header Block (Figure 6): the rate of recording,
// the number of secondary blocks, the total number of frames, and the
// array of pointers to Secondary Blocks. The identity and granularity
// fields beyond Figure 6 carry what the prototype kept in its strand
// registry.
type Header struct {
	// StrandID is the strand's unique ID.
	StrandID uint64
	// Medium is the strand's media kind.
	Medium Medium
	// Flags carries format bits (FlagVariable).
	Flags uint8
	// RateMilli is the recording rate in units/second ×1000
	// (Figure 6's frameRate, with sub-Hz precision for audio-derived
	// rates).
	RateMilli uint64
	// UnitBits is the size of one frame or sample in bits; for
	// variable-rate strands it is the peak unit size.
	UnitBits uint32
	// Granularity is the storage granularity: units per media block.
	Granularity uint32
	// UnitCount is Figure 6's frameCount: total recorded units.
	UnitCount uint64
	// BlockCount is the number of media blocks (including silence
	// delay holders).
	BlockCount uint32
	// Secondaries are the pointers to the Secondary Blocks
	// (Figure 6's secondaryArray), as sector runs.
	Secondaries []SecondaryRun
}

// SecondaryRun locates one Secondary Block.
type SecondaryRun struct {
	Sector      uint32
	SectorCount uint32
}

// Rate is the recording rate in units/second.
func (h Header) Rate() float64 { return float64(h.RateMilli) / 1000 }

// headerFixedSize is the encoded size of the fixed part of a Header.
const headerFixedSize = 4 + 8 + 1 + 1 + 8 + 4 + 4 + 8 + 4 + 4 // magic..secondaryCount

// EncodeHeader serializes the header into whole sectors of the given
// size. It fails if the secondary array does not fit in one header
// block of maxSectors sectors.
func EncodeHeader(h Header, sectorSize, maxSectors int) ([]byte, error) {
	need := headerFixedSize + len(h.Secondaries)*8
	if need > sectorSize*maxSectors {
		return nil, fmt.Errorf("layout: header needs %d bytes, block holds %d", need, sectorSize*maxSectors)
	}
	sectors := (need + sectorSize - 1) / sectorSize
	buf := make([]byte, sectors*sectorSize)
	o := 0
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(buf[o:], v); o += 4 }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[o:], v); o += 8 }
	put32(headerMagic)
	put64(h.StrandID)
	buf[o] = byte(h.Medium)
	o++
	buf[o] = h.Flags
	o++
	put64(h.RateMilli)
	put32(h.UnitBits)
	put32(h.Granularity)
	put64(h.UnitCount)
	put32(h.BlockCount)
	put32(uint32(len(h.Secondaries)))
	for _, s := range h.Secondaries {
		put32(s.Sector)
		put32(s.SectorCount)
	}
	return buf, nil
}

// DecodeHeader parses a header block.
func DecodeHeader(data []byte) (Header, error) {
	if len(data) < headerFixedSize {
		return Header{}, fmt.Errorf("layout: header block truncated at %d bytes", len(data))
	}
	o := 0
	get32 := func() uint32 { v := binary.LittleEndian.Uint32(data[o:]); o += 4; return v }
	get64 := func() uint64 { v := binary.LittleEndian.Uint64(data[o:]); o += 8; return v }
	if m := get32(); m != headerMagic {
		return Header{}, fmt.Errorf("layout: bad header magic %#x", m)
	}
	var h Header
	h.StrandID = get64()
	h.Medium = Medium(data[o])
	o++
	h.Flags = data[o]
	o++
	h.RateMilli = get64()
	h.UnitBits = get32()
	h.Granularity = get32()
	h.UnitCount = get64()
	h.BlockCount = get32()
	n := int(get32())
	if headerFixedSize+n*8 > len(data) {
		return Header{}, fmt.Errorf("layout: header claims %d secondaries beyond block", n)
	}
	h.Secondaries = make([]SecondaryRun, n)
	for i := range h.Secondaries {
		h.Secondaries[i].Sector = get32()
		h.Secondaries[i].SectorCount = get32()
	}
	return h, nil
}

// EncodePrimary serializes primary entries into whole sectors.
func EncodePrimary(entries []PrimaryEntry, sectorSize int) []byte {
	need := len(entries) * primaryEntrySize
	sectors := (need + sectorSize - 1) / sectorSize
	if sectors == 0 {
		sectors = 1
	}
	buf := make([]byte, sectors*sectorSize)
	for i, e := range entries {
		binary.LittleEndian.PutUint32(buf[i*primaryEntrySize:], e.Sector)
		binary.LittleEndian.PutUint32(buf[i*primaryEntrySize+4:], e.SectorCount)
	}
	return buf
}

// DecodePrimary parses n primary entries from a primary block.
func DecodePrimary(data []byte, n int) ([]PrimaryEntry, error) {
	if n*primaryEntrySize > len(data) {
		return nil, fmt.Errorf("layout: primary block holds %d bytes, need %d entries", len(data), n)
	}
	out := make([]PrimaryEntry, n)
	for i := range out {
		out[i].Sector = binary.LittleEndian.Uint32(data[i*primaryEntrySize:])
		out[i].SectorCount = binary.LittleEndian.Uint32(data[i*primaryEntrySize+4:])
	}
	return out, nil
}

// EncodeSecondary serializes secondary entries into whole sectors,
// prefixed with the entry count.
func EncodeSecondary(entries []SecondaryEntry, sectorSize int) []byte {
	need := 4 + len(entries)*secondaryEntrySize
	sectors := (need + sectorSize - 1) / sectorSize
	if sectors == 0 {
		sectors = 1
	}
	buf := make([]byte, sectors*sectorSize)
	binary.LittleEndian.PutUint32(buf, uint32(len(entries)))
	for i, e := range entries {
		o := 4 + i*secondaryEntrySize
		binary.LittleEndian.PutUint32(buf[o:], e.StartBlock)
		binary.LittleEndian.PutUint32(buf[o+4:], e.BlockCount)
		binary.LittleEndian.PutUint32(buf[o+8:], e.Sector)
		binary.LittleEndian.PutUint32(buf[o+12:], e.SectorCount)
	}
	return buf
}

// DecodeSecondary parses a secondary block.
func DecodeSecondary(data []byte) ([]SecondaryEntry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("layout: secondary block truncated at %d bytes", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if 4+n*secondaryEntrySize > len(data) {
		return nil, fmt.Errorf("layout: secondary block claims %d entries beyond %d bytes", n, len(data))
	}
	out := make([]SecondaryEntry, n)
	for i := range out {
		o := 4 + i*secondaryEntrySize
		out[i].StartBlock = binary.LittleEndian.Uint32(data[o:])
		out[i].BlockCount = binary.LittleEndian.Uint32(data[o+4:])
		out[i].Sector = binary.LittleEndian.Uint32(data[o+8:])
		out[i].SectorCount = binary.LittleEndian.Uint32(data[o+12:])
	}
	return out, nil
}

// PrimaryEntriesPerBlock is the fan-out of a one-sector Primary Block.
func PrimaryEntriesPerBlock(sectorSize int) int { return sectorSize / primaryEntrySize }

// SecondaryEntriesPerBlock is the fan-out of a one-sector Secondary
// Block.
func SecondaryEntriesPerBlock(sectorSize int) int {
	return (sectorSize - 4) / secondaryEntrySize
}

// Sink abstracts the metadata write path so the index builder can run
// against the disk or a capture buffer in tests.
type Sink interface {
	WriteAt(lba int, data []byte) error
}

// Source abstracts the metadata read path.
type Source interface {
	ReadAt(lba, n int) ([]byte, error)
}

var (
	_ Sink   = (*disk.Disk)(nil)
	_ Source = (*disk.Disk)(nil)
)
