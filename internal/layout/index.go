package layout

import (
	"fmt"
)

// Index is a strand's fully resolved 3-level index: the header, every
// primary entry in block-number order, and the locations of the index
// blocks themselves (so garbage collection can reclaim them along with
// the media blocks).
type Index struct {
	// Header is the decoded Header Block.
	Header Header
	// Entries maps media block number → disk address (or silence).
	Entries []PrimaryEntry
	// HeaderRun locates the Header Block on disk.
	HeaderRun SecondaryRun
	// MetaRuns locates every Secondary and Primary Block.
	MetaRuns []SecondaryRun
}

// Block returns the primary entry for media block i.
func (ix *Index) Block(i int) (PrimaryEntry, error) {
	if i < 0 || i >= len(ix.Entries) {
		//lint:ignore allocpath an out-of-range block is a planning bug; the error path is cold
		return PrimaryEntry{}, fmt.Errorf("layout: block %d outside strand of %d blocks", i, len(ix.Entries))
	}
	return ix.Entries[i], nil
}

// NumBlocks is the number of media blocks (including silence holders).
func (ix *Index) NumBlocks() int { return len(ix.Entries) }

// AllocFunc reserves a run of sectors for an index block and returns
// its starting LBA. The layout package stays ignorant of allocation
// policy; internal/strand passes the allocator's first-fit method.
type AllocFunc func(sectors int) (int, error)

// BuildIndex writes the 3-level index for the given header metadata
// and primary entries: Primary Blocks first, then Secondary Blocks
// pointing at them, then the Header Block pointing at the Secondary
// Blocks. Index writes are metadata-path operations and are untimed
// (continuity concerns only media block transfers).
func BuildIndex(h Header, entries []PrimaryEntry, sectorSize int, alloc AllocFunc, sink Sink) (*Index, error) {
	if sectorSize < primaryEntrySize {
		return nil, fmt.Errorf("layout: sector size %d below entry size", sectorSize)
	}
	h.BlockCount = uint32(len(entries))

	ix := &Index{Entries: entries}

	// Level 1: primary blocks.
	pfan := PrimaryEntriesPerBlock(sectorSize)
	var secEntries []SecondaryEntry
	for start := 0; start < len(entries); start += pfan {
		end := start + pfan
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		buf := EncodePrimary(chunk, sectorSize)
		nsec := len(buf) / sectorSize
		lba, err := alloc(nsec)
		if err != nil {
			return nil, fmt.Errorf("layout: primary block: %w", err)
		}
		if err := sink.WriteAt(lba, buf); err != nil {
			return nil, err
		}
		ix.MetaRuns = append(ix.MetaRuns, SecondaryRun{Sector: uint32(lba), SectorCount: uint32(nsec)})
		secEntries = append(secEntries, SecondaryEntry{
			StartBlock:  uint32(start),
			BlockCount:  uint32(len(chunk)),
			Sector:      uint32(lba),
			SectorCount: uint32(nsec),
		})
	}
	// A strand with zero blocks still gets an empty index so it can
	// be loaded and garbage collected uniformly.

	// Level 2: secondary blocks.
	sfan := SecondaryEntriesPerBlock(sectorSize)
	var secondaries []SecondaryRun
	for start := 0; start < len(secEntries) || (start == 0 && len(secEntries) == 0); start += sfan {
		end := start + sfan
		if end > len(secEntries) {
			end = len(secEntries)
		}
		buf := EncodeSecondary(secEntries[start:end], sectorSize)
		nsec := len(buf) / sectorSize
		lba, err := alloc(nsec)
		if err != nil {
			return nil, fmt.Errorf("layout: secondary block: %w", err)
		}
		if err := sink.WriteAt(lba, buf); err != nil {
			return nil, err
		}
		run := SecondaryRun{Sector: uint32(lba), SectorCount: uint32(nsec)}
		ix.MetaRuns = append(ix.MetaRuns, run)
		secondaries = append(secondaries, run)
		if len(secEntries) == 0 {
			break
		}
	}

	// Level 3: header block.
	h.Secondaries = secondaries
	buf, err := EncodeHeader(h, sectorSize, 8)
	if err != nil {
		return nil, err
	}
	nsec := len(buf) / sectorSize
	lba, err := alloc(nsec)
	if err != nil {
		return nil, fmt.Errorf("layout: header block: %w", err)
	}
	if err := sink.WriteAt(lba, buf); err != nil {
		return nil, err
	}
	ix.Header = h
	ix.HeaderRun = SecondaryRun{Sector: uint32(lba), SectorCount: uint32(nsec)}
	return ix, nil
}

// LoadIndex reads and resolves a strand index from its header block
// address.
func LoadIndex(src Source, headerLBA, headerSectors, sectorSize int) (*Index, error) {
	hbuf, err := src.ReadAt(headerLBA, headerSectors)
	if err != nil {
		return nil, err
	}
	h, err := DecodeHeader(hbuf)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Header:    h,
		HeaderRun: SecondaryRun{Sector: uint32(headerLBA), SectorCount: uint32(headerSectors)},
	}
	ix.Entries = make([]PrimaryEntry, 0, h.BlockCount)
	for _, srun := range h.Secondaries {
		sbuf, err := src.ReadAt(int(srun.Sector), int(srun.SectorCount))
		if err != nil {
			return nil, err
		}
		ses, err := DecodeSecondary(sbuf)
		if err != nil {
			return nil, err
		}
		ix.MetaRuns = append(ix.MetaRuns, srun)
		for _, se := range ses {
			pbuf, err := src.ReadAt(int(se.Sector), int(se.SectorCount))
			if err != nil {
				return nil, err
			}
			pes, err := DecodePrimary(pbuf, int(se.BlockCount))
			if err != nil {
				return nil, err
			}
			if int(se.StartBlock) != len(ix.Entries) {
				return nil, fmt.Errorf("layout: secondary entry starts at block %d, expected %d", se.StartBlock, len(ix.Entries))
			}
			ix.MetaRuns = append(ix.MetaRuns, SecondaryRun{Sector: se.Sector, SectorCount: se.SectorCount})
			ix.Entries = append(ix.Entries, pes...)
		}
	}
	if len(ix.Entries) != int(h.BlockCount) {
		return nil, fmt.Errorf("layout: index resolves %d blocks, header claims %d", len(ix.Entries), h.BlockCount)
	}
	return ix, nil
}
