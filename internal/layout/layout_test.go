package layout

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

const sectorSize = 512

func TestPrimaryEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%60 + 1
		rng := rand.New(rand.NewSource(seed))
		in := make([]PrimaryEntry, n)
		for i := range in {
			if rng.Intn(5) == 0 {
				in[i] = SilenceEntry()
			} else {
				in[i] = PrimaryEntry{Sector: rng.Uint32() % 1e6, SectorCount: 1 + rng.Uint32()%32}
			}
		}
		buf := EncodePrimary(in, sectorSize)
		if len(buf)%sectorSize != 0 {
			return false
		}
		out, err := DecodePrimary(buf, n)
		if err != nil {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
			if in[i].Silent() != out[i].Silent() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN) % 25
		rng := rand.New(rand.NewSource(seed))
		in := make([]SecondaryEntry, n)
		for i := range in {
			in[i] = SecondaryEntry{
				StartBlock:  rng.Uint32() % 1e5,
				BlockCount:  1 + rng.Uint32()%256,
				Sector:      rng.Uint32() % 1e6,
				SectorCount: 1 + rng.Uint32()%4,
			}
		}
		buf := EncodeSecondary(in, sectorSize)
		out, err := DecodeSecondary(buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	h := Header{
		StrandID:    42,
		Medium:      Audio,
		RateMilli:   8000_000,
		UnitBits:    8,
		Granularity: 512,
		UnitCount:   123456,
		BlockCount:  242,
		Secondaries: []SecondaryRun{{Sector: 99, SectorCount: 1}, {Sector: 180, SectorCount: 2}},
	}
	buf, err := EncodeHeader(h, sectorSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.StrandID != h.StrandID || got.Medium != h.Medium || got.RateMilli != h.RateMilli ||
		got.UnitBits != h.UnitBits || got.Granularity != h.Granularity ||
		got.UnitCount != h.UnitCount || got.BlockCount != h.BlockCount {
		t.Fatalf("header mismatch: %+v vs %+v", got, h)
	}
	if len(got.Secondaries) != 2 || got.Secondaries[1] != h.Secondaries[1] {
		t.Fatalf("secondaries %+v", got.Secondaries)
	}
	if got.Rate() != 8000 {
		t.Fatalf("rate %g", got.Rate())
	}
}

func TestHeaderDecodeRejectsCorruption(t *testing.T) {
	h := Header{StrandID: 1, Medium: Video, RateMilli: 30000, UnitBits: 8, Granularity: 1}
	buf, err := EncodeHeader(h, sectorSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff // magic
	if _, err := DecodeHeader(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	if _, err := DecodeHeader(buf[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestHeaderTooManySecondaries(t *testing.T) {
	h := Header{StrandID: 1, Secondaries: make([]SecondaryRun, 10000)}
	if _, err := EncodeHeader(h, sectorSize, 1); err == nil {
		t.Fatal("oversized header accepted")
	}
}

// memSink is an in-memory Sink/Source for index tests.
type memSink struct {
	sectors map[int][]byte
}

func newMemSink() *memSink { return &memSink{sectors: make(map[int][]byte)} }

func (m *memSink) WriteAt(lba int, data []byte) error {
	for o := 0; o < len(data); o += sectorSize {
		end := o + sectorSize
		if end > len(data) {
			end = len(data)
		}
		sec := make([]byte, sectorSize)
		copy(sec, data[o:end])
		m.sectors[lba+o/sectorSize] = sec
	}
	return nil
}

func (m *memSink) ReadAt(lba, n int) ([]byte, error) {
	out := make([]byte, n*sectorSize)
	for i := 0; i < n; i++ {
		if sec, ok := m.sectors[lba+i]; ok {
			copy(out[i*sectorSize:], sec)
		}
	}
	return out, nil
}

// seqAlloc hands out ascending sector runs.
type seqAlloc struct{ next int }

func (s *seqAlloc) alloc(n int) (int, error) {
	lba := s.next
	s.next += n
	return lba, nil
}

func buildAndLoad(t *testing.T, nBlocks int) (*Index, *Index) {
	t.Helper()
	sink := newMemSink()
	al := &seqAlloc{next: 1000}
	entries := make([]PrimaryEntry, nBlocks)
	for i := range entries {
		if i%7 == 3 {
			entries[i] = SilenceEntry()
		} else {
			entries[i] = PrimaryEntry{Sector: uint32(10000 + i*16), SectorCount: 9}
		}
	}
	h := Header{StrandID: 5, Medium: Video, RateMilli: 30000, UnitBits: 144000, Granularity: 3, UnitCount: uint64(3 * nBlocks)}
	built, err := BuildIndex(h, entries, sectorSize, al.alloc, sink)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(sink, int(built.HeaderRun.Sector), int(built.HeaderRun.SectorCount), sectorSize)
	if err != nil {
		t.Fatal(err)
	}
	return built, loaded
}

func TestIndexBuildLoadRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 65, 200, 1000} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			built, loaded := buildAndLoad(t, n)
			if loaded.NumBlocks() != n {
				t.Fatalf("loaded %d blocks, want %d", loaded.NumBlocks(), n)
			}
			for i := 0; i < n; i++ {
				a, _ := built.Block(i)
				b, err := loaded.Block(i)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("block %d differs: %+v vs %+v", i, a, b)
				}
			}
			if loaded.Header.UnitCount != built.Header.UnitCount {
				t.Fatal("unit count lost")
			}
		})
	}
}

func TestIndexMultiLevelFanOut(t *testing.T) {
	// 512-byte sectors: 64 primary entries per PB, 31 secondary
	// entries per SB. 64*31 = 1984 blocks forces a second secondary
	// block.
	built, loaded := buildAndLoad(t, 2500)
	if len(built.Header.Secondaries) < 2 {
		t.Fatalf("expected ≥ 2 secondary blocks, got %d", len(built.Header.Secondaries))
	}
	e, err := loaded.Block(2499)
	if err != nil {
		t.Fatal(err)
	}
	if e.Silent() {
		t.Fatal("unexpected silence at tail")
	}
}

func TestIndexBlockOutOfRange(t *testing.T) {
	_, loaded := buildAndLoad(t, 10)
	if _, err := loaded.Block(10); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, err := loaded.Block(-1); err == nil {
		t.Fatal("negative block accepted")
	}
}

func TestFanOutHelpers(t *testing.T) {
	if got := PrimaryEntriesPerBlock(sectorSize); got != 64 {
		t.Fatalf("primary fan-out %d", got)
	}
	if got := SecondaryEntriesPerBlock(sectorSize); got != 31 {
		t.Fatalf("secondary fan-out %d", got)
	}
}

func TestMediumString(t *testing.T) {
	if Video.String() != "video" || Audio.String() != "audio" {
		t.Fatal("medium names")
	}
}
