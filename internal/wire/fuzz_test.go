package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameRoundTrip checks that any payload surviving WriteFrame is
// read back verbatim by ReadFrame.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte("a frame body"))
	f.Add(bytes.Repeat([]byte{0xff}, 4096))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Skip() // only the >maxFrame guard can fire
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame after WriteFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame round trip: wrote %d bytes, read %d", len(payload), len(got))
		}
	})
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must
// never panic nor hand back an oversized frame.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 0, 0, 'a', 'b', 'c', 'd'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		frame, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if len(frame) > maxFrame {
			t.Fatalf("ReadFrame returned %d bytes, above the %d limit", len(frame), maxFrame)
		}
	})
}

// FuzzRequestRoundTrip checks Request/ParseRequest inversion and that
// ParseRequest tolerates arbitrary input.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint16(1), []byte("body"))
	f.Add(uint16(0xffff), []byte(nil))
	f.Fuzz(func(t *testing.T, op uint16, body []byte) {
		gotOp, gotBody, err := ParseRequest(Request(Op(op), body))
		if err != nil {
			t.Fatalf("ParseRequest of a well-formed request: %v", err)
		}
		if gotOp != Op(op) || !bytes.Equal(gotBody, body) {
			t.Fatalf("request round trip: op %v body %d bytes, got op %v body %d bytes",
				Op(op), len(body), gotOp, len(gotBody))
		}
		// Arbitrary bytes must parse or error, never panic.
		if _, _, err := ParseRequest(body); err == nil && len(body) < 2 {
			t.Fatalf("ParseRequest accepted a %d-byte frame", len(body))
		}
	})
}

// FuzzEncodeDecodeRoundTrip encodes one value of every wire primitive
// and checks the decoder returns them bit-exactly, in order.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint32(2), uint64(3), int64(-4), 5.5, true, "six", []byte{7})
	f.Add(uint16(0), uint32(0), uint64(0), int64(0), math.Inf(-1), false, "", []byte(nil))
	f.Add(uint16(65535), uint32(1<<31), uint64(1)<<63, int64(math.MinInt64), math.NaN(), true, "µ†ƒ-8", bytes.Repeat([]byte{1}, 100))
	f.Fuzz(func(t *testing.T, u16 uint16, u32 uint32, u64 uint64, i64 int64, f64 float64, b bool, s string, blob []byte) {
		body := NewEncoder().
			U16(u16).U32(u32).U64(u64).I64(i64).F64(f64).Bool(b).Str(s).Blob(blob).
			Bytes()
		d := NewDecoder(body)
		if got := d.U16(); got != u16 {
			t.Fatalf("U16: %d != %d", got, u16)
		}
		if got := d.U32(); got != u32 {
			t.Fatalf("U32: %d != %d", got, u32)
		}
		if got := d.U64(); got != u64 {
			t.Fatalf("U64: %d != %d", got, u64)
		}
		if got := d.I64(); got != i64 {
			t.Fatalf("I64: %d != %d", got, i64)
		}
		if got := d.F64(); math.Float64bits(got) != math.Float64bits(f64) {
			t.Fatalf("F64: %v != %v", got, f64)
		}
		if got := d.Bool(); got != b {
			t.Fatalf("Bool: %v != %v", got, b)
		}
		if got := d.Str(); got != s {
			t.Fatalf("Str: %q != %q", got, s)
		}
		if got := d.Blob(); !bytes.Equal(got, blob) {
			t.Fatalf("Blob: %d bytes != %d bytes", len(got), len(blob))
		}
		if err := d.Err(); err != nil {
			t.Fatalf("decode error after full round trip: %v", err)
		}
	})
}

// FuzzDecoderRobustness drives every decoder accessor over arbitrary
// bodies: the sticky-error contract must hold and nothing may panic.
func FuzzDecoderRobustness(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(NewEncoder().Str("x").U64(9).Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		d := NewDecoder(body)
		d.Str()
		d.U16()
		d.Blob()
		d.F64()
		d.Bool()
		d.I64()
		d.U32()
		d.U64()
		// An empty Str/Blob still costs its 4-byte length prefix.
		if d.Err() == nil && len(body) < 4+2+4+8+1+8+4+8 {
			t.Fatalf("decoder consumed more fields than %d bytes can hold", len(body))
		}
	})
}
