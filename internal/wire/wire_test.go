package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), make([]byte, 10000)}
	rand.New(rand.NewSource(1)).Read(payloads[3])
	for _, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatal("frame payload mismatch")
		}
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	// Forge a length prefix beyond the limit.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameShortRead(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	short := bytes.NewReader(buf.Bytes()[:7])
	if _, err := ReadFrame(short); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short frame error %v", err)
	}
}

func TestEncoderDecoderSymmetry(t *testing.T) {
	e := NewEncoder().
		U16(7).U32(42).U64(1 << 40).I64(-5).F64(3.25).
		Bool(true).Bool(false).
		Str("strand").Blob([]byte{9, 8, 7})
	d := NewDecoder(e.Bytes())
	if d.U16() != 7 || d.U32() != 42 || d.U64() != 1<<40 || d.I64() != -5 || d.F64() != 3.25 {
		t.Fatal("numeric round trip")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip")
	}
	if d.Str() != "strand" || !bytes.Equal(d.Blob(), []byte{9, 8, 7}) {
		t.Fatal("string/blob round trip")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestDecoderErrorSticks(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.U32() // underflow
	if d.Err() == nil {
		t.Fatal("underflow not detected")
	}
	if d.U64() != 0 || d.Str() != "" || d.Blob() != nil || d.Bool() {
		t.Fatal("post-error reads must return zero values")
	}
}

func TestBlobLengthBeyondBody(t *testing.T) {
	e := NewEncoder().U32(1000) // claims 1000 bytes, provides none
	d := NewDecoder(e.Bytes())
	if d.Blob() != nil || d.Err() == nil {
		t.Fatal("over-long blob accepted")
	}
}

func TestRequestResponseFraming(t *testing.T) {
	req := Request(OpPlay, []byte("body"))
	op, body, err := ParseRequest(req)
	if err != nil || op != OpPlay || string(body) != "body" {
		t.Fatalf("request parse: %v %v %q", err, op, body)
	}
	if _, _, err := ParseRequest([]byte{1}); err == nil {
		t.Fatal("runt request accepted")
	}

	ok := OKResponse([]byte("result"))
	body, err = ParseResponse(ok)
	if err != nil || string(body) != "result" {
		t.Fatalf("ok response: %v %q", err, body)
	}
	er := ErrResponse(errors.New("boom"))
	if _, err = ParseResponse(er); err == nil || err.Error() != "mmfs server: boom" {
		t.Fatalf("error response: %v", err)
	}
	if _, err := ParseResponse([]byte{0}); err == nil {
		t.Fatal("runt response accepted")
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpRecordStart, OpRecordAppend, OpRecordFinish, OpPlay, OpFetch,
		OpInsert, OpReplace, OpSubstring, OpConcate, OpDeleteRange, OpDeleteRope,
		OpRopeInfo, OpListRopes, OpStats, OpTextWrite, OpTextRead, OpTextList, OpSetAccess,
		OpCheck, OpAddTrigger, OpTriggers, OpFlatten}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate op name %q", s)
		}
		seen[s] = true
	}
	if Op(999).String() != "Op(999)" {
		t.Fatal("unknown op formatting")
	}
}

// Property: any (string, blob, numbers) tuple survives an
// encode/decode round trip.
func TestCodecQuick(t *testing.T) {
	f := func(s string, b []byte, u uint64, i int64, fl float64, tf bool) bool {
		e := NewEncoder().Str(s).Blob(b).U64(u).I64(i).F64(fl).Bool(tf)
		d := NewDecoder(e.Bytes())
		gs := d.Str()
		gb := d.Blob()
		if gb == nil {
			gb = []byte{}
		}
		want := b
		if want == nil {
			want = []byte{}
		}
		return gs == s && bytes.Equal(gb, want) && d.U64() == u && d.I64() == i &&
			(d.F64() == fl || (fl != fl)) && d.Bool() == tf && d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: frames survive concatenated streams — multiple frames
// written back to back read out in order.
func TestFrameStreamQuick(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		var want [][]byte
		for i := 0; i < n; i++ {
			p := make([]byte, rng.Intn(256))
			rng.Read(p)
			want = append(want, p)
			if err := WriteFrame(&buf, p); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			got, err := ReadFrame(&buf)
			if err != nil || !bytes.Equal(got, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
