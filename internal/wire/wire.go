// Package wire defines the RPC protocol between the Multimedia Rope
// Server (the device-independent layer clients link against via the
// rope stub library) and the file system, mirroring the paper's
// prototype in which "applications are compiled with a rope stub
// library which uses remote procedure calls to contact the MRS"
// (§5.2). The original ran over TCP/IP sockets between SPARCstations
// and PC-ATs; this implementation speaks a length-prefixed binary
// framing over any net.Conn.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Op identifies a request type.
type Op uint16

// Protocol operations (§4.1's interface plus housekeeping).
const (
	OpRecordStart Op = iota + 1
	OpRecordAppend
	OpRecordFinish
	OpPlay
	OpFetch
	OpInsert
	OpReplace
	OpSubstring
	OpConcate
	OpDeleteRange
	OpDeleteRope
	OpRopeInfo
	OpListRopes
	OpStats
	OpTextWrite
	OpTextRead
	OpTextList
	OpSetAccess
	OpCheck
	OpAddTrigger
	OpTriggers
	OpFlatten
	OpMetrics
	OpRebuild
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpRecordStart:
		return "RecordStart"
	case OpRecordAppend:
		return "RecordAppend"
	case OpRecordFinish:
		return "RecordFinish"
	case OpPlay:
		return "Play"
	case OpFetch:
		return "Fetch"
	case OpInsert:
		return "Insert"
	case OpReplace:
		return "Replace"
	case OpSubstring:
		return "Substring"
	case OpConcate:
		return "Concate"
	case OpDeleteRange:
		return "DeleteRange"
	case OpDeleteRope:
		return "DeleteRope"
	case OpRopeInfo:
		return "RopeInfo"
	case OpListRopes:
		return "ListRopes"
	case OpStats:
		return "Stats"
	case OpTextWrite:
		return "TextWrite"
	case OpTextRead:
		return "TextRead"
	case OpTextList:
		return "TextList"
	case OpSetAccess:
		return "SetAccess"
	case OpCheck:
		return "Check"
	case OpAddTrigger:
		return "AddTrigger"
	case OpTriggers:
		return "Triggers"
	case OpFlatten:
		return "Flatten"
	case OpMetrics:
		return "Metrics"
	case OpRebuild:
		return "Rebuild"
	}
	return fmt.Sprintf("Op(%d)", uint16(o))
}

// maxFrame bounds a frame so a corrupt length prefix cannot force a
// huge allocation.
const maxFrame = 256 << 20

// WriteFrame sends one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame receives one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Encoder builds a request or response body.
type Encoder struct {
	buf bytes.Buffer
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Reset empties the encoder for reuse, keeping its buffer capacity.
func (e *Encoder) Reset() { e.buf.Reset() }

// encPool recycles encoders across server replies; a channel free list
// keeps this dependency-free and safe for concurrent handlers. The
// bound caps idle memory, not concurrency: when the pool is empty,
// GetEncoder simply allocates.
var encPool = make(chan *Encoder, 16)

// GetEncoder returns an empty encoder from the pool, or a new one.
func GetEncoder() *Encoder {
	select {
	case e := <-encPool:
		e.Reset()
		return e
	default:
		return NewEncoder()
	}
}

// PutEncoder returns an encoder to the pool for reuse. The caller must
// not retain the encoder or any slice returned by Bytes afterwards
// (frame the body with OKResponse, which copies, before releasing).
func PutEncoder(e *Encoder) {
	if e == nil {
		return
	}
	select {
	case encPool <- e:
	default:
	}
}

// Bytes returns the encoded body.
func (e *Encoder) Bytes() []byte { return e.buf.Bytes() }

// U16 appends a uint16.
func (e *Encoder) U16(v uint16) *Encoder {
	binary.Write(&e.buf, binary.LittleEndian, v)
	return e
}

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	binary.Write(&e.buf, binary.LittleEndian, v)
	return e
}

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	binary.Write(&e.buf, binary.LittleEndian, v)
	return e
}

// I64 appends an int64 (durations in nanoseconds).
func (e *Encoder) I64(v int64) *Encoder {
	binary.Write(&e.buf, binary.LittleEndian, v)
	return e
}

// F64 appends a float64.
func (e *Encoder) F64(v float64) *Encoder {
	binary.Write(&e.buf, binary.LittleEndian, v)
	return e
}

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) *Encoder {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf.WriteByte(b)
	return e
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) *Encoder {
	e.U32(uint32(len(s)))
	e.buf.WriteString(s)
	return e
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) *Encoder {
	e.U32(uint32(len(b)))
	e.buf.Write(b)
	return e
}

// Decoder parses a request or response body; the first decode error
// sticks and subsequent calls return zero values.
type Decoder struct {
	r   *bytes.Reader
	err error
}

// NewDecoder wraps a body.
func NewDecoder(body []byte) *Decoder { return &Decoder{r: bytes.NewReader(body)} }

// Err reports the first decode error.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) read(v any) {
	if d.err == nil {
		d.err = binary.Read(d.r, binary.LittleEndian, v)
	}
}

// U16 reads a uint16.
func (d *Decoder) U16() uint16 { var v uint16; d.read(&v); return v }

// U32 reads a uint32.
func (d *Decoder) U32() uint32 { var v uint32; d.read(&v); return v }

// U64 reads a uint64.
func (d *Decoder) U64() uint64 { var v uint64; d.read(&v); return v }

// I64 reads an int64.
func (d *Decoder) I64() int64 { var v int64; d.read(&v); return v }

// F64 reads a float64.
func (d *Decoder) F64() float64 { var v float64; d.read(&v); return v }

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return false
	}
	return b != 0
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.Blob()) }

// Blob reads a length-prefixed byte slice.
func (d *Decoder) Blob() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.r.Len() {
		d.err = fmt.Errorf("wire: blob length %d beyond body", n)
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return nil
	}
	return buf
}

// Request assembles an op + body into a frame payload.
func Request(op Op, body []byte) []byte {
	out := make([]byte, 2+len(body))
	binary.LittleEndian.PutUint16(out, uint16(op))
	copy(out[2:], body)
	return out
}

// ParseRequest splits a frame payload into op + body.
func ParseRequest(frame []byte) (Op, []byte, error) {
	if len(frame) < 2 {
		return 0, nil, fmt.Errorf("wire: request frame of %d bytes", len(frame))
	}
	return Op(binary.LittleEndian.Uint16(frame)), frame[2:], nil
}

// Response status codes.
const (
	StatusOK  uint16 = 0
	StatusErr uint16 = 1
)

// OKResponse frames a successful response body.
func OKResponse(body []byte) []byte {
	out := make([]byte, 2+len(body))
	binary.LittleEndian.PutUint16(out, StatusOK)
	copy(out[2:], body)
	return out
}

// ErrResponse frames an error response.
func ErrResponse(err error) []byte {
	msg := err.Error()
	out := make([]byte, 2+4+len(msg))
	binary.LittleEndian.PutUint16(out, StatusErr)
	binary.LittleEndian.PutUint32(out[2:], uint32(len(msg)))
	copy(out[6:], msg)
	return out
}

// ParseResponse splits a response frame into body or error.
func ParseResponse(frame []byte) ([]byte, error) {
	if len(frame) < 2 {
		return nil, fmt.Errorf("wire: response frame of %d bytes", len(frame))
	}
	status := binary.LittleEndian.Uint16(frame)
	if status == StatusOK {
		return frame[2:], nil
	}
	d := NewDecoder(frame[2:])
	msg := d.Str()
	if d.Err() != nil {
		return nil, fmt.Errorf("wire: malformed error response")
	}
	return nil, fmt.Errorf("mmfs server: %s", msg)
}
