package wire

import "mmfs/internal/obs"

// EncodeSnapshot appends a metrics snapshot to e: the METRICS response
// body. The layout is three length-prefixed sections (counters, gauges,
// histograms), each entry carrying its full series name.
func EncodeSnapshot(e *Encoder, s obs.Snapshot) {
	e.U32(uint32(len(s.Counters)))
	for _, c := range s.Counters {
		e.Str(c.Name)
		e.U64(c.Value)
	}
	e.U32(uint32(len(s.Gauges)))
	for _, g := range s.Gauges {
		e.Str(g.Name)
		e.I64(g.Value)
	}
	e.U32(uint32(len(s.Histograms)))
	for _, h := range s.Histograms {
		e.Str(h.Name)
		e.U32(uint32(len(h.Uppers)))
		for i := range h.Uppers {
			e.F64(h.Uppers[i])
			e.U64(h.Buckets[i])
		}
		e.U64(h.Count)
		e.F64(h.Sum)
	}
}

// DecodeSnapshot reads a METRICS response body. Check d.Err after.
func DecodeSnapshot(d *Decoder) obs.Snapshot {
	var s obs.Snapshot
	for i, n := 0, int(d.U32()); i < n && d.Err() == nil; i++ {
		s.Counters = append(s.Counters, obs.CounterValue{Name: d.Str(), Value: d.U64()})
	}
	for i, n := 0, int(d.U32()); i < n && d.Err() == nil; i++ {
		s.Gauges = append(s.Gauges, obs.GaugeValue{Name: d.Str(), Value: d.I64()})
	}
	for i, n := 0, int(d.U32()); i < n && d.Err() == nil; i++ {
		h := obs.HistogramValue{Name: d.Str()}
		for j, nb := 0, int(d.U32()); j < nb && d.Err() == nil; j++ {
			h.Uppers = append(h.Uppers, d.F64())
			h.Buckets = append(h.Buckets, d.U64())
		}
		h.Count = d.U64()
		h.Sum = d.F64()
		s.Histograms = append(s.Histograms, h)
	}
	return s
}
