// Fixture for the detmap analyzer: map iteration order must not escape
// into emitted bytes or returned slices without a sort.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mmfs/internal/wire"
)

func badPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order escapes into fmt.Printf output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badFprint(w io.Writer, m map[string]int) {
	for k := range m { // want `map iteration order escapes into fmt.Fprintln output`
		fmt.Fprintln(w, k)
	}
}

func badWireEncode(m map[string]uint64) []byte {
	e := wire.NewEncoder()
	for k, v := range m { // want `map iteration order escapes into a wire encoding via Encoder`
		e.Str(k).U64(v)
	}
	return e.Bytes()
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order escapes into a stream via WriteString`
		b.WriteString(k)
	}
	return b.String()
}

func badReturnedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order escapes into the returned slice out`
		out = append(out, k)
	}
	return out
}

func okSortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func okAggregation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func okLocalAccumulation(m map[string]int) int {
	var tmp []int
	for _, v := range m {
		tmp = append(tmp, v)
	}
	return len(tmp)
}

func okMapToMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func suppressed(m map[string]int) {
	//lint:ignore detmap fixture proves the escape hatch
	for k := range m {
		fmt.Println(k)
	}
}
