// Fixture for the simclock analyzer: simulation-driven code must not
// read or wait on the wall clock; time.Duration arithmetic is fine.
package a

import "time"

func badNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func badSince(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since reads the wall clock`
}

func okArithmetic(d time.Duration) time.Duration {
	return d + 500*time.Millisecond
}

func okParse(s string) (time.Duration, error) {
	return time.ParseDuration(s)
}

func suppressed() time.Time {
	//lint:ignore simclock fixture proves the escape hatch
	return time.Now()
}
