// Package dep proves cross-package fact propagation: it holds no
// hot-path root, but its may-allocate summary is exported as a
// PathFact and absorbed by the root fixture package's hot path.
package dep

var buf []byte

// Fill allocates on behalf of callers.
func Fill(n int) {
	buf = make([]byte, n) // want `make on the real-time path, reached via a\.Hot → dep\.Fill —`
}
