// Fixture for the allocpath analyzer: heap allocations transitively
// reachable from rt:hotpath roots are reported with their call chain;
// the internal/alloc scratch arena and //lint:ignore are the escapes.
package a

import (
	"fmt"

	"mmfs/fixture/allocpath/dep"
	"mmfs/internal/alloc"
)

type pair struct{ x, y int }

var (
	sink    []int
	scratch []byte
	keep    *pair
	msg     string
	box     interface{}
	bs      []byte
)

// Hot is the fixture's hot-path root: every allocation it reaches —
// directly, through a same-package helper, or through the dep
// subpackage's exported facts — is reported at the offending site.
//
// rt:hotpath
func Hot(n int, s string, p pair) {
	sink = make([]int, n) // want `make on the real-time path, reached via a\.Hot —`
	sink = []int{n}       // want `slice literal on the real-time path, reached via a\.Hot —`
	helper()
	dep.Fill(n)
	f := func() {} // want `closure creation on the real-time path, reached via a\.Hot —`
	f()
	keep = &pair{}                   // want `heap-allocated &T\{\} literal on the real-time path, reached via a\.Hot —`
	msg = s + "!"                    // want `string concatenation on the real-time path, reached via a\.Hot —`
	box = interface{}(p)             // want `interface boxing on the real-time path, reached via a\.Hot —`
	bs = []byte(s)                   // want `string conversion on the real-time path, reached via a\.Hot —`
	fmt.Sprint(n)                    // want `call into fmt on the real-time path, reached via a\.Hot —`
	scratch = alloc.Grow(scratch, n) // the scratch arena is the sanctioned escape
	bounded(n)
}

func helper() {
	sink = append(sink, 1) // want `growing append on the real-time path, reached via a\.Hot → a\.helper —`
}

// bounded allocates nothing: index writes into existing storage.
func bounded(n int) {
	for i := 0; i < n && i < len(sink); i++ {
		sink[i] = i
	}
}

// Dies panics on a broken invariant; allocations feeding a panic are
// death-path work, not service-round work.
//
// rt:hotpath
func Dies(err error) {
	if err != nil {
		panic(fmt.Sprintf("fixture: %v", err))
	}
}

// Cold is neither a root nor reachable from one: no findings.
func Cold() {
	_ = make([]byte, 8)
	fmt.Sprint("cold")
}

// Suppressed proves the escape hatch.
//
// rt:hotpath
func Suppressed() {
	//lint:ignore allocpath fixture proves the escape hatch
	_ = make([]byte, 8)
}
