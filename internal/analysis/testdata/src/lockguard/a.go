// Fixture for the lockguard analyzer: fields annotated
// `// guarded by mu` may only be touched while the mutex is visibly
// held, by a *Locked method, or by a method documenting that the
// caller must hold it.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// total is the running sum.
	// guarded by mu
	total int
	free  int
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.total += c.n
}

func (c *counter) Bad() int {
	return c.n // want `Bad accesses field n \(guarded by mu\) without holding mu`
}

func (c *counter) BadWrite(v int) {
	c.total = v // want `BadWrite writes field total \(guarded by mu\) without holding mu`
}

// bump adds delta to the counter. The caller must hold c.mu.
func (c *counter) bump(delta int) { c.n += delta }

func (c *counter) totalLocked() int { return c.total }

func (c *counter) OkUnguarded() int { return c.free }

func (c *counter) OkMethodCall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump(1)
}

func (c *counter) Suppressed() int {
	//lint:ignore lockguard fixture proves the escape hatch
	return c.n
}

type rw struct {
	mu   sync.RWMutex
	data map[string]int // guarded by mu
}

func (r *rw) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k]
}

func (r *rw) BadLen() int {
	return len(r.data) // want `BadLen accesses field data \(guarded by mu\) without holding mu`
}

func (r *rw) BadWriteUnderRLock(k string, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.data[k] = v // want `BadWriteUnderRLock writes field data \(guarded by mu\) while holding only mu.RLock; writes need the exclusive Lock`
}

func (r *rw) BadStore(k string, v int) {
	r.data[k] = v // want `BadStore writes field data \(guarded by mu\) without holding mu`
}

func (r *rw) OkWrite(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data[k] = v
}

// gen publishes epoch under mu; readers tolerate staleness, so the
// `(read)` annotation licenses lock-free reads but not writes.
type gen struct {
	mu sync.Mutex
	// guarded by mu (read)
	epoch uint64
}

func (g *gen) OkLockFreeRead() uint64 { return g.epoch }

func (g *gen) OkGuardedWrite() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch++
}

func (g *gen) BadUnguardedWrite() {
	g.epoch++ // want `BadUnguardedWrite writes field epoch \(guarded by mu\) without holding mu`
}
