// Fixture for the blockinglock analyzer: channel ops, sleeps, waits,
// net I/O, and timed disk access must not be reachable while a mutex
// is visibly held.
package a

import (
	"io"
	"net"
	"sync"
	"time"

	"mmfs/internal/disk"
)

var (
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
)

func badSendHeld() {
	mu.Lock()
	ch <- 1 // want `channel send while holding mu`
	mu.Unlock()
}

func okSendAfterUnlock() {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

func badSleepDeferred() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding mu`
}

func badRecvReadLocked() {
	rw.RLock()
	defer rw.RUnlock()
	<-ch // want `channel receive while holding rw`
}

func badWaitHeld() {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait() // want `sync.WaitGroup.Wait while holding mu`
}

func blocksViaChannel() int { return <-ch }

func badPropagated() {
	mu.Lock()
	defer mu.Unlock()
	blocksViaChannel() // want `call to blocksViaChannel, which may block \(channel receive\) while holding mu`
}

func badDeviceHeld(d disk.Device, m *sync.Mutex) {
	m.Lock()
	defer m.Unlock()
	_, _, _ = d.Read(0, 0, 1) // want `timed disk access Read while holding m`
}

func badNetArgHeld(conn net.Conn, buf []byte) {
	mu.Lock()
	defer mu.Unlock()
	_, _ = io.ReadFull(conn, buf) // want `net I/O via io.ReadFull while holding mu`
}

func okSelectDefaultHeld() {
	mu.Lock()
	defer mu.Unlock()
	select {
	case <-ch: // the receive op itself is inside a non-blocking select clause
	default:
	}
}

func okGoroutineDoesNotInheritLock() {
	mu.Lock()
	defer mu.Unlock()
	go func() {
		<-ch
	}()
}

func okNoLock(conn net.Conn, buf []byte) {
	_, _ = io.ReadFull(conn, buf)
	wg.Wait()
}

func suppressed() {
	mu.Lock()
	defer mu.Unlock()
	//lint:ignore blockinglock fixture proves the escape hatch
	time.Sleep(time.Millisecond)
}
