// Cross-package half of the blockinglock fixture: the dep
// subpackage's exported BlockFact travels through the shared fact
// store and is reported against this package's critical section.
package a

import "mmfs/fixture/blockinglock/dep"

func badCrossPackageHeld() {
	mu.Lock()
	defer mu.Unlock()
	dep.Recv() // want `call to dep\.Recv, which may block \(channel receive\) while holding mu`
}

func okCrossPackageUnlocked() {
	mu.Lock()
	mu.Unlock()
	dep.Recv()
}
