// Package dep proves cross-package fact propagation: Recv's
// may-block summary is exported as a BlockFact and consumed by the
// root fixture package's critical sections.
package dep

// Ch feeds Recv.
var Ch chan int

// Recv blocks until a value arrives.
func Recv() int { return <-Ch }
