// Fixture for the boundedwork analyzer: loops reachable from
// rt:hotpath roots must be bounded by admitted state (slice iteration
// or an explicit condition), and no call chain may re-enter a root.
package a

import "mmfs/fixture/boundedwork/dep"

var (
	m  map[int]int
	ch chan int
	s  []int
	n  int
)

// Hot is the fixture's hot-path root.
//
// rt:hotpath
func Hot() {
	spin()
	mapWalk()
	chanDrain()
	dep.Walk()
	okBounded()
}

func spin() {
	for { // want `unconditional for loop on the real-time path, reached via a\.Hot → a\.spin —`
		break
	}
}

func mapWalk() {
	for k := range m { // want `range over map on the real-time path, reached via a\.Hot → a\.mapWalk —`
		_ = k
	}
}

func chanDrain() {
	for v := range ch { // want `range over channel on the real-time path, reached via a\.Hot → a\.chanDrain —`
		_ = v
	}
}

// okBounded iterates admitted state: slice loops are fine.
func okBounded() {
	for i := 0; i < len(s); i++ {
		n += s[i]
	}
	for _, v := range s {
		n += v
	}
}

// Cold is neither a root nor reachable from one: no findings.
func Cold() {
	for {
		break
	}
	for k := range m {
		_ = k
	}
}

// Suppressed proves the escape hatch.
//
// rt:hotpath
func Suppressed() {
	//lint:ignore boundedwork fixture proves the escape hatch
	for {
		break
	}
}

// HotRec is re-entered through step: unbounded recursion through a
// root, reported at the call that closes the cycle.
//
// rt:hotpath
func HotRec(d int) {
	if d > 0 {
		step(d)
	}
}

func step(d int) {
	HotRec(d - 1) // want `recursion: call re-enters hot-path root a\.HotRec \(a\.HotRec → a\.step → a\.HotRec\) —`
}
