// Package dep proves cross-package fact propagation: it holds no
// hot-path root, but its unbounded-loop summary is exported as a
// PathFact and absorbed by the root fixture package's hot path.
package dep

var m map[int]int

// Walk ranges a map on behalf of callers.
func Walk() {
	for k := range m { // want `range over map on the real-time path, reached via a\.Hot → dep\.Walk —`
		_ = k
	}
}
