// Fixture for the wireswitch analyzer: switches over internal/wire
// constant types must cover every declared constant; a default clause
// does not excuse a missing opcode.
package a

import "mmfs/internal/wire"

func full(op wire.Op) string {
	switch op {
	case wire.OpRecordStart, wire.OpRecordAppend, wire.OpRecordFinish:
		return "record"
	case wire.OpPlay, wire.OpFetch:
		return "read"
	case wire.OpInsert, wire.OpReplace, wire.OpSubstring, wire.OpConcate,
		wire.OpDeleteRange, wire.OpDeleteRope, wire.OpFlatten:
		return "edit"
	case wire.OpRopeInfo, wire.OpListRopes, wire.OpStats, wire.OpMetrics, wire.OpCheck:
		return "inspect"
	case wire.OpRebuild:
		return "repair"
	case wire.OpTextWrite, wire.OpTextRead, wire.OpTextList:
		return "text"
	case wire.OpSetAccess, wire.OpAddTrigger, wire.OpTriggers:
		return "meta"
	default:
		return "unknown"
	}
}

func partial(op wire.Op) bool {
	switch op { // want `switch over wire\.Op misses OpRecordAppend`
	case wire.OpRecordStart:
		return true
	default:
		return false
	}
}

func overUint(code uint16) bool {
	switch code { // not a wire named type: exempt
	case 0:
		return true
	}
	return false
}

func suppressed(op wire.Op) bool {
	//lint:ignore wireswitch fixture proves the escape hatch
	switch op {
	case wire.OpPlay:
		return true
	}
	return false
}
