// Fixture for the unitsafety analyzer: raw float64<->time.Duration
// conversions are unit bugs; the named Seconds/Duration converters and
// integer conversions are not.
package a

import "time"

func badToFloat(d time.Duration) float64 {
	return float64(d) // want `converted directly to float64`
}

func badToDuration(s float64) time.Duration {
	return time.Duration(s) // want `built directly from a float64`
}

func badBoth(d time.Duration, s float64) float64 {
	return float64(d) + float64(time.Duration(s)) // want `converted directly to float64` `built directly from a float64` `converted directly to float64`
}

// Seconds is the sanctioned converter boundary and stays exempt.
func Seconds(t time.Duration) float64 { return float64(t) }

// Duration is the sanctioned converter boundary and stays exempt.
func Duration(s float64) time.Duration { return time.Duration(s) }

func okMethod(d time.Duration) float64 { return d.Seconds() }

func okInteger(n int64) time.Duration { return time.Duration(n) }

func okConst() time.Duration { return 3 * time.Second }

func suppressed(d time.Duration) float64 {
	//lint:ignore unitsafety fixture proves the escape hatch
	return float64(d)
}
