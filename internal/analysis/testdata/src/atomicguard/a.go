// Fixture for the atomicguard analyzer: one synchronization discipline
// per field — atomic fields may not be accessed plainly nor doubly
// guarded by a mutex annotation.
package a

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	mu    sync.Mutex
	hits  uint64 // bumped with atomic.AddUint64
	plain uint64
}

func (c *counters) inc() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) badPlainRead() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere in this package`
}

func (c *counters) badPlainWrite() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere in this package`
}

func (c *counters) okAtomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) okPlainField() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plain
}

func (c *counters) suppressed() uint64 {
	//lint:ignore atomicguard fixture proves the escape hatch
	return c.hits
}

type mixedTyped struct {
	mu sync.Mutex
	n  atomic.Uint64 // guarded by mu // want `field n is atomic but annotated`
	ok atomic.Uint64
}

func (m *mixedTyped) use() uint64 { return m.n.Load() + m.ok.Load() }

type mixedFn struct {
	mu sync.Mutex
	v  int64 // guarded by mu // want `field v is atomic but annotated`
}

func (m *mixedFn) bump() {
	atomic.AddInt64(&m.v, 1)
}
