// Fixture for the deadlineguard analyzer: conn I/O must be preceded by
// a matching Set*Deadline on the same connection in the same function.
package a

import (
	"io"
	"net"
	"time"
)

func badRead(conn net.Conn, buf []byte) {
	_, _ = conn.Read(buf) // want `conn Read on conn has no preceding SetReadDeadline`
}

func badWrite(conn net.Conn, buf []byte) {
	_, _ = conn.Write(buf) // want `conn Write on conn has no preceding SetWriteDeadline`
}

func badHelper(conn net.Conn, buf []byte) {
	_, _ = io.ReadFull(conn, buf) // want `ReadFull I/O on conn has no preceding SetReadDeadline`
}

func badWrongSide(conn net.Conn, buf []byte) {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	_, _ = conn.Read(buf) // want `conn Read on conn has no preceding SetReadDeadline`
}

func badOtherConn(c1, c2 net.Conn, buf []byte) {
	_ = c1.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = c2.Read(buf) // want `conn Read on c2 has no preceding SetReadDeadline`
}

func okRead(conn net.Conn, buf []byte) {
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = conn.Read(buf)
}

func okConditionalDeadline(conn net.Conn, buf []byte, timeout time.Duration) {
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	_, _ = conn.Write(buf)
	_, _ = conn.Read(buf)
}

func okHelper(conn net.Conn, buf []byte) {
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = io.ReadFull(conn, buf)
}

func suppressed(conn net.Conn, buf []byte) {
	//lint:ignore deadlineguard fixture proves the escape hatch
	_, _ = conn.Read(buf)
}
