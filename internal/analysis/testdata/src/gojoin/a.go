// Fixture for the gojoin analyzer: every goroutine needs a visible
// join (WaitGroup Done) or shutdown path (channel receive, select,
// range over a channel).
package a

import (
	"fmt"
	"sync"
)

var (
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
)

func sideEffect() {}

func badFireAndForget() {
	go func() { // want `goroutine has no visible join or shutdown path`
		sideEffect()
	}()
}

func badCrossPackage() {
	go fmt.Println("x") // want `goroutine has no visible join or shutdown path`
}

func okWaitGroup() {
	wg.Add(1)
	go func() {
		defer wg.Done()
		sideEffect()
	}()
	wg.Wait()
}

func okDoneChannel() {
	go func() {
		<-done
	}()
}

func okSelectLoop() {
	go func() {
		for {
			select {
			case <-work:
				sideEffect()
			case <-done:
				return
			}
		}
	}()
}

func okRangeChannel() {
	go func() {
		for range work {
			sideEffect()
		}
	}()
}

func drainingWorker() {
	for range work {
		sideEffect()
	}
}

func okNamedWorker() {
	go drainingWorker()
}

func leakyWorker() { sideEffect() }

func badNamedWorker() {
	go leakyWorker() // want `goroutine has no visible join or shutdown path`
}

func suppressed() {
	//lint:ignore gojoin fixture proves the escape hatch
	go sideEffect()
}
