// Fixture for the noerrdrop analyzer: errors from first-party calls
// must be handled, not blanked or dropped on the floor.
package a

import (
	"fmt"
	"io"

	"mmfs/internal/wire"
)

func fail() error { return nil }

func pair() (int, error) { return 0, nil }

func badBlankValue() {
	err := fail()
	_ = err // want `error discarded via _`
}

func badBlankResult() int {
	n, _ := pair() // want `result 2 of pair is an error discarded via _`
	return n
}

func badBareCall() {
	fail() // want `call to fail discards its error result`
}

func badBareMethod(w *writerLike) {
	w.flush() // want `call to flush discards its error result`
}

func badFirstPartyImport(w io.Writer) {
	wire.WriteFrame(w, nil) // want `call to WriteFrame discards its error result`
}

type writerLike struct{}

func (w *writerLike) flush() error { return nil }

func okHandled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	return fmt.Errorf("n=%d", n)
}

func okNonError() {
	n, _ := pairIntBool()
	_ = n
}

func pairIntBool() (int, bool) { return 0, true }

func okStdlib() {
	fmt.Println("stdlib bare calls stay exempt")
}

func suppressed() {
	//lint:ignore noerrdrop fixture proves the escape hatch
	fail()
}
