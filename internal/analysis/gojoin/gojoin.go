// Package gojoin requires every `go` statement in first-party non-test
// code to have a visible join or shutdown path. A goroutine that
// nothing waits for and nothing can stop is a leak: under per-spindle
// round loops and a high-fanout HTTP edge the tree will spawn many
// more goroutines, and each one must be drainable for graceful
// shutdown (and for -race tests to terminate cleanly).
//
// A goroutine is considered joinable when its body (the function
// literal, or the same-package function it calls) contains any of:
//
//   - a sync.WaitGroup Done call (including deferred) — the WaitGroup
//     Add/Wait pair is the join;
//   - a channel receive, a select, or a range over a channel — the
//     done-channel / subscription shutdown idiom;
//   - a sync.Cond Wait — a registered drain wakes it.
//
// Goroutines calling cross-package functions the analyzer cannot see
// into are flagged; wrap them in a literal that signals completion, or
// opt out with //lint:ignore gojoin <reason> where the lifetime is
// genuinely process-long.
package gojoin

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmfs/internal/analysis"
)

// Analyzer flags go statements with no visible join/shutdown path.
var Analyzer = &analysis.Analyzer{
	Name: "gojoin",
	Doc: "flag `go` statements whose goroutine has no visible join or shutdown path " +
		"(WaitGroup Done, channel receive/select, or Cond wait in its body)",
	PathPrefixes: []string{analysis.ModulePath},
	Run:          run,
}

func run(pass *analysis.Pass) error {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if body := goBody(pass, g, decls); body == nil || !joinable(pass, body) {
				pass.Reportf(g.Pos(), "goroutine has no visible join or shutdown path; "+
					"pair it with a WaitGroup Add/Done, give it a done channel, or //lint:ignore gojoin for a process-long worker")
			}
			return true
		})
	}
	return nil
}

// goBody resolves the body the goroutine will run: the literal's, or
// the declaration of a same-package callee. nil when the callee is out
// of sight (cross-package or dynamic).
func goBody(pass *analysis.Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := analysis.Callee(pass.TypesInfo, g.Call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// joinable reports whether the body contains a recognized join or
// shutdown construct.
func joinable(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); ok {
				found = true
			}
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			recv := analysis.Receiver(pass.TypesInfo, n)
			if fn != nil && recv != nil {
				if pkg, typ := analysis.Named(recv); pkg == "sync" &&
					((typ == "WaitGroup" && fn.Name() == "Done") || (typ == "Cond" && fn.Name() == "Wait")) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
