package gojoin_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/gojoin"
)

func TestGoJoin(t *testing.T) {
	analysistest.Run(t, gojoin.Analyzer)
}
