// Package allocpath enforces the paper's real-time service contract
// at the allocation level: no heap allocation may be reachable from a
// `// rt:hotpath` function. The continuity guarantee (Eq. 18) bounds a
// round by disk service time; an allocation on that path invites GC
// pauses the admission math never accounted for.
//
// Each function gets a may-allocate summary seeded by intrinsic
// allocation sites — make/new, growing append, slice/map literals,
// &T{} composite pointers, closure creation, string concatenation and
// string<->[]byte conversions, interface boxing conversions, and any
// call into fmt or reflect (except under panic, a death path) — and
// closed over its calls: same-package callees by fixpoint, imported
// first-party callees through exported PathFacts, and interface calls
// through the join of the implementations loaded before the caller
// (disk.Device sees both *disk.Disk and *fault.Disk). A site
// transitively reachable from a hot-path root is reported at the
// allocating statement, with the call chain that reaches it.
//
// Escapes: calls into the internal/alloc scratch arena are sanctioned
// and never traversed, and a site can carry a reasoned
// //lint:ignore allocpath. Stdlib calls other than fmt/reflect are
// assumed allocation-free; the hot path must not lean on allocating
// stdlib helpers.
package allocpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmfs/internal/analysis"
)

// Analyzer reports heap allocations reachable from rt:hotpath roots.
var Analyzer = &analysis.Analyzer{
	Name: "allocpath",
	Doc: "flag heap allocations (make/new, growing append, literals, boxing, closures, " +
		"string concat, fmt/reflect) transitively reachable from // rt:hotpath roots",
	FactTypes: []analysis.Fact{&analysis.PathFact{}},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	return analysis.RunPath(pass, analysis.PathConfig{
		Seeds:    seeds,
		SkipCall: sanctioned,
		Advice:   "move it onto the internal/alloc scratch helpers, or //lint:ignore allocpath with the design reason",
	})
}

// sanctioned exempts the scratch arena: internal/alloc exists to give
// the hot path reusable buffers, so calls into it are the approved way
// off this analyzer's radar.
func sanctioned(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) bool {
	return callee.Pkg() != nil && callee.Pkg().Path() == analysis.ModulePath+"/internal/alloc"
}

// seeds collects the intrinsic allocation sites of one function body.
func seeds(pass *analysis.Pass, fd *ast.FuncDecl) []analysis.Site {
	info := pass.TypesInfo
	deathPath := panicArgCalls(info, fd.Body)
	var sites []analysis.Site
	add := func(pos token.Pos, what string) {
		sites = append(sites, analysis.Site{Pos: pos, What: what})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "closure creation")
			return false
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal")
				case *types.Map:
					add(n.Pos(), "map literal")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "heap-allocated &T{} literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Value == nil && isString(tv.Type) {
					add(n.Pos(), "string concatenation")
				}
			}
		case *ast.CallExpr:
			seedCall(info, n, deathPath, add)
		}
		return true
	})
	return sites
}

// seedCall classifies one call expression: allocating builtins,
// allocating conversions, and calls into fmt/reflect.
func seedCall(info *types.Info, call *ast.CallExpr, deathPath map[token.Pos]bool, add func(token.Pos, string)) {
	switch {
	case analysis.IsBuiltin(info, call, "make"):
		add(call.Pos(), "make")
	case analysis.IsBuiltin(info, call, "new"):
		add(call.Pos(), "new")
	case analysis.IsBuiltin(info, call, "append"):
		add(call.Pos(), "growing append")
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		switch {
		case from == nil:
		case stringSliceConv(from, to):
			add(call.Pos(), "string conversion")
		case boxingConv(from, to):
			add(call.Pos(), "interface boxing")
		}
		return
	}
	if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "reflect":
			if !deathPath[call.Pos()] {
				add(call.Pos(), "call into "+fn.Pkg().Path())
			}
		}
	}
}

// panicArgCalls records the calls appearing inside panic(...)
// arguments: a panic is the end of the real-time world anyway, so the
// customary panic(fmt.Sprintf(...)) idiom is not hot-path noise.
func panicArgCalls(info *types.Info, body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.IsBuiltin(info, call, "panic") {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					out[c.Pos()] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringSliceConv reports a string<->[]byte/[]rune conversion, which
// copies its operand into a fresh backing array.
func stringSliceConv(from, to types.Type) bool {
	_, fromSlice := from.Underlying().(*types.Slice)
	_, toSlice := to.Underlying().(*types.Slice)
	return (isString(from) && toSlice) || (fromSlice && isString(to))
}

// boxingConv reports an explicit conversion of a non-pointer-shaped
// concrete value to an interface type, which heap-allocates the boxed
// copy. Pointer-shaped values (pointers, channels, maps, funcs) fit in
// the interface word directly.
func boxingConv(from, to types.Type) bool {
	if !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}
