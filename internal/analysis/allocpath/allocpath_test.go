package allocpath_test

import (
	"testing"

	"mmfs/internal/analysis/allocpath"
	"mmfs/internal/analysis/analysistest"
)

func TestAllocPath(t *testing.T) {
	analysistest.Run(t, allocpath.Analyzer)
}
