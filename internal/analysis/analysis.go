// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary, just large enough to
// host the mmfsvet analyzers. The repo is deliberately stdlib-only, so
// instead of vendoring x/tools the framework loads packages itself
// (load.go) and hands each analyzer a Pass with parsed files and full
// type information.
//
// Diagnostics can be suppressed with a directive comment
//
//	//lint:ignore <analyzer> reason
//
// placed either on the flagged line or on the line immediately above
// it. The analyzer name "all" suppresses every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this repository's packages.
// Analyzers use it to recognize first-party code.
const ModulePath = "mmfs"

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// PathPrefixes restricts which packages the multichecker applies
	// the analyzer to (matched as import-path prefixes at path-segment
	// granularity). Empty means every package. Tests bypass it.
	PathPrefixes []string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the multichecker should run the analyzer
// over the package with the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.PathPrefixes) == 0 {
		return true
	}
	for _, p := range a.PathPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions of every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and objects for every expression.
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer names the check that produced it.
	Analyzer string
	// Message describes the violated invariant.
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// Run executes one analyzer over a loaded package and returns its
// findings with //lint:ignore suppressions already applied.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return Suppress(pkg.Fset, pkg.Files, pass.diagnostics), nil
}

// RunAll executes every applicable analyzer over every package and
// returns the surviving findings sorted by position.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := Run(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	if fset != nil {
		sort.SliceStable(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return all[i].Analyzer < all[j].Analyzer
		})
	}
	return all, nil
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)`)

// Suppress drops diagnostics covered by //lint:ignore directives in
// the given files. A directive on line L covers findings on line L
// (trailing comment) and line L+1 (comment above the statement).
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// ignored maps file name -> line -> analyzer names suppressed there.
	ignored := make(map[string]map[int]map[string]bool)
	add := func(pos token.Position, names string) {
		byLine := ignored[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			ignored[pos.Filename] = byLine
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			set := byLine[line]
			if set == nil {
				set = make(map[string]bool)
				byLine[line] = set
			}
			for _, n := range strings.Split(names, ",") {
				set[strings.TrimSpace(n)] = true
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := ignoreRe.FindStringSubmatch(c.Text); m != nil {
					add(fset.Position(c.Pos()), m[1])
				}
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if set := ignored[pos.Filename][pos.Line]; set[d.Analyzer] || set["all"] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
