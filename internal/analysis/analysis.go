// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary, just large enough to
// host the mmfsvet analyzers. The repo is deliberately stdlib-only, so
// instead of vendoring x/tools the framework loads packages itself
// (load.go) and hands each analyzer a Pass with parsed files and full
// type information.
//
// Diagnostics can be suppressed with a directive comment
//
//	//lint:ignore <analyzer> reason
//
// placed either on the flagged line or on the line immediately above
// it. The analyzer name "all" suppresses every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this repository's packages.
// Analyzers use it to recognize first-party code.
const ModulePath = "mmfs"

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// PathPrefixes restricts which packages the multichecker applies
	// the analyzer to (matched as import-path prefixes at path-segment
	// granularity). Empty means every package. Tests bypass it.
	PathPrefixes []string
	// FactTypes declares one prototype per fact type the analyzer may
	// export. An analyzer that calls ExportFact must list its fact
	// types here (the registry self-test enforces gob-encodability).
	FactTypes []Fact
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the multichecker should run the analyzer
// over the package with the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.PathPrefixes) == 0 {
		return true
	}
	for _, p := range a.PathPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions of every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and objects for every expression.
	TypesInfo *types.Info

	facts       *FactStore
	diagnostics []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer names the check that produced it.
	Analyzer string
	// Message describes the violated invariant.
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// RunPass executes one analyzer over one package against a shared
// fact store and returns the raw findings, without suppression.
// Callers that span packages (RunAll, analysistest) apply Suppress
// once over every loaded file, so a //lint:ignore next to a site in a
// dependency package also covers diagnostics that importing packages'
// passes anchor there.
func RunPass(a *Analyzer, pkg *Package, store *FactStore) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		facts:     store,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return pass.diagnostics, nil
}

// Run executes one analyzer over a loaded package in isolation (fresh
// fact store) and returns its findings with //lint:ignore suppressions
// already applied.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	diags, err := RunPass(a, pkg, NewFactStore())
	if err != nil {
		return nil, err
	}
	return Suppress(pkg.Fset, pkg.Files, diags), nil
}

// RunAll executes every applicable analyzer over every package in
// dependency order — so facts exported by a package are visible to
// the packages importing it — and returns the surviving findings
// sorted by position. Suppression is applied globally: an interprocedural
// diagnostic anchored in a dependency's file is covered by the
// //lint:ignore directive in that file, whichever package's pass
// reported it.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	ordered := dependencyOrder(pkgs)
	store := NewFactStore()
	var all []Diagnostic
	var fset *token.FileSet
	var files []*ast.File
	for _, pkg := range ordered {
		fset = pkg.Fset
		files = append(files, pkg.Files...)
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := RunPass(a, pkg, store)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	if fset != nil {
		all = Suppress(fset, files, all)
		sort.SliceStable(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return all[i].Analyzer < all[j].Analyzer
		})
		// Interprocedural analyzers can reach one site from roots in
		// several packages; one diagnostic per (analyzer, site) is
		// enough for a human or CI.
		type siteKey struct {
			analyzer string
			pos      token.Pos
		}
		dedup := all[:0]
		seen := make(map[siteKey]bool, len(all))
		for _, d := range all {
			k := siteKey{d.Analyzer, d.Pos}
			if seen[k] {
				continue
			}
			seen[k] = true
			dedup = append(dedup, d)
		}
		all = dedup
	}
	return all, nil
}

// dependencyOrder sorts packages topologically: every package after
// the first-party packages it imports, ties broken by import path so
// the order is deterministic. Fact exports rely on this.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p := byPath[path]
		if p == nil || state[path] != 0 {
			return
		}
		state[path] = 1
		imps := append([]string(nil), p.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			visit(imp)
		}
		state[path] = 2
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)`)

// Suppress drops diagnostics covered by //lint:ignore directives in
// the given files. A directive on line L covers findings on line L
// (trailing comment) and line L+1 (comment above the statement).
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// ignored maps file name -> line -> analyzer names suppressed there.
	ignored := make(map[string]map[int]map[string]bool)
	add := func(pos token.Position, names string) {
		byLine := ignored[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			ignored[pos.Filename] = byLine
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			set := byLine[line]
			if set == nil {
				set = make(map[string]bool)
				byLine[line] = set
			}
			for _, n := range strings.Split(names, ",") {
				set[strings.TrimSpace(n)] = true
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := ignoreRe.FindStringSubmatch(c.Text); m != nil {
					add(fset.Position(c.Pos()), m[1])
				}
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if set := ignored[pos.Filename][pos.Line]; set[d.Analyzer] || set["all"] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
