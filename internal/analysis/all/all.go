// Package all registers the complete mmfsvet analyzer suite in one
// place, so the multichecker driver (cmd/mmfsvet) and the registry
// self-test agree on what "all analyzers" means. Adding an analyzer
// here is the single step that puts it into `make lint`, CI, and the
// fixture-coverage check.
package all

import (
	"mmfs/internal/analysis"
	"mmfs/internal/analysis/allocpath"
	"mmfs/internal/analysis/atomicguard"
	"mmfs/internal/analysis/blockinglock"
	"mmfs/internal/analysis/boundedwork"
	"mmfs/internal/analysis/deadlineguard"
	"mmfs/internal/analysis/detmap"
	"mmfs/internal/analysis/gojoin"
	"mmfs/internal/analysis/lockguard"
	"mmfs/internal/analysis/noerrdrop"
	"mmfs/internal/analysis/simclock"
	"mmfs/internal/analysis/unitsafety"
	"mmfs/internal/analysis/wireswitch"
)

// Analyzers returns the full suite in reporting order: the model and
// protocol invariants first (PR 1), then the concurrency & determinism
// suite guarding the multi-spindle work, then the interprocedural
// real-time path suite (allocpath, boundedwork).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		unitsafety.Analyzer,
		lockguard.Analyzer,
		wireswitch.Analyzer,
		noerrdrop.Analyzer,
		simclock.Analyzer,
		blockinglock.Analyzer,
		gojoin.Analyzer,
		atomicguard.Analyzer,
		detmap.Analyzer,
		deadlineguard.Analyzer,
		allocpath.Analyzer,
		boundedwork.Analyzer,
	}
}
