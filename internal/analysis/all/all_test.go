package all_test

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmfs/internal/analysis/all"
)

// TestRegistry asserts every registered analyzer is fit for the
// multichecker: named, documented, and covered by at least one fixture
// file under internal/analysis/testdata/src/<name>/.
func TestRegistry(t *testing.T) {
	analyzers := all.Analyzers()
	if len(analyzers) < 12 {
		t.Fatalf("expected the full suite (>=12 analyzers), got %d", len(analyzers))
	}
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" {
			t.Errorf("analyzer with empty Name (doc %q)", a.Doc)
			continue
		}
		if seen[a.Name] {
			t.Errorf("analyzer %s registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run function", a.Name)
		}
		dir := filepath.Join("..", "testdata", "src", a.Name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s has no fixture directory %s: %v", a.Name, dir, err)
			continue
		}
		fixtures := 0
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				fixtures++
			}
		}
		if fixtures == 0 {
			t.Errorf("analyzer %s has no .go fixtures under %s", a.Name, dir)
		}
	}
}

// TestFactTypes asserts the interprocedural analyzers declare their
// fact prototypes and that every declared fact type survives a gob
// round trip — the encodability contract ExportFact enforces at run
// time, checked here before any pass runs.
func TestFactTypes(t *testing.T) {
	mustExport := map[string]bool{
		"blockinglock": true,
		"allocpath":    true,
		"boundedwork":  true,
	}
	for _, a := range all.Analyzers() {
		if mustExport[a.Name] && len(a.FactTypes) == 0 {
			t.Errorf("analyzer %s exports facts but declares no FactTypes", a.Name)
		}
		delete(mustExport, a.Name)
		for _, f := range a.FactTypes {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(f); err != nil {
				t.Errorf("analyzer %s fact %T does not gob-encode: %v", a.Name, f, err)
				continue
			}
			if err := gob.NewDecoder(&buf).Decode(f); err != nil {
				t.Errorf("analyzer %s fact %T does not gob-decode: %v", a.Name, f, err)
			}
		}
	}
	for name := range mustExport {
		t.Errorf("fact-exporting analyzer %s is not registered", name)
	}
}

// TestScopesResolve asserts every PathPrefixes entry is rooted in the
// module, so a typo cannot silently scope an analyzer to nothing.
func TestScopesResolve(t *testing.T) {
	for _, a := range all.Analyzers() {
		for _, p := range a.PathPrefixes {
			if p != "mmfs" && !strings.HasPrefix(p, "mmfs/") {
				t.Errorf("analyzer %s scope %q is not rooted in the module path", a.Name, p)
			}
		}
	}
}
