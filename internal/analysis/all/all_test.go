package all_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmfs/internal/analysis/all"
)

// TestRegistry asserts every registered analyzer is fit for the
// multichecker: named, documented, and covered by at least one fixture
// file under internal/analysis/testdata/src/<name>/.
func TestRegistry(t *testing.T) {
	analyzers := all.Analyzers()
	if len(analyzers) < 10 {
		t.Fatalf("expected the full suite (>=10 analyzers), got %d", len(analyzers))
	}
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" {
			t.Errorf("analyzer with empty Name (doc %q)", a.Doc)
			continue
		}
		if seen[a.Name] {
			t.Errorf("analyzer %s registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run function", a.Name)
		}
		dir := filepath.Join("..", "testdata", "src", a.Name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s has no fixture directory %s: %v", a.Name, dir, err)
			continue
		}
		fixtures := 0
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				fixtures++
			}
		}
		if fixtures == 0 {
			t.Errorf("analyzer %s has no .go fixtures under %s", a.Name, dir)
		}
	}
}

// TestScopesResolve asserts every PathPrefixes entry is rooted in the
// module, so a typo cannot silently scope an analyzer to nothing.
func TestScopesResolve(t *testing.T) {
	for _, a := range all.Analyzers() {
		for _, p := range a.PathPrefixes {
			if p != "mmfs" && !strings.HasPrefix(p, "mmfs/") {
				t.Errorf("analyzer %s scope %q is not rooted in the module path", a.Name, p)
			}
		}
	}
}
