package detmap_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/detmap"
)

func TestDetMap(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer)
}
