// Package detmap guards the repo's determinism contract against Go's
// randomized map iteration order. Seeded replay (fault scenarios, the
// bench baseline, EXP experiment tables) and byte-stable exposition
// (/metrics, wire snapshots, trace JSON) both break the moment a
// `range` over a map feeds an order-sensitive sink without an
// intervening sort.
//
// A map range is flagged when its body
//
//   - emits through fmt Print/Fprint, a Write*/Encode method, or a
//     wire.Encoder — the bytes produced depend on iteration order; or
//   - appends to a slice that a later return statement of the same
//     function exposes, with no sort call between the loop and the
//     return — the caller observes a different order each run.
//
// Order-insensitive bodies (counting, summing, building another map,
// deleting) pass. Fix a finding by collecting the keys, sorting them,
// and ranging over the sorted slice; truly order-free escapes opt out
// with //lint:ignore detmap <reason>.
package detmap

import (
	"go/ast"
	"go/types"
	"strings"

	"mmfs/internal/analysis"
)

// Analyzer flags map iteration whose order escapes the loop.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flag `range` over a map whose iteration order escapes into emitted bytes " +
		"or a returned slice without an intervening sort; determinism requires sorted keys",
	PathPrefixes: []string{analysis.ModulePath},
	Run:          run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		checkRange(pass, fd, rng)
		return true
	})
}

func checkRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	var appended []string // roots of slices appended to in the body
	reported := false
	report := func(sink string) {
		if !reported {
			reported = true
			pass.Reportf(rng.Pos(), "map iteration order escapes into %s; range over sorted keys instead (or //lint:ignore detmap if order truly cannot matter)", sink)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isAppend(pass, call) && len(call.Args) > 0 {
			if root := rootName(call.Args[0]); root != "" {
				appended = append(appended, root)
			}
			return true
		}
		if sink := emissionSink(pass, call); sink != "" {
			report(sink)
		}
		return true
	})
	if reported || len(appended) == 0 {
		return
	}
	// Accumulation: nondeterministic only if a return after the loop
	// exposes the slice and no sort call intervenes.
	if sortedAfter(pass, fd, rng) {
		return
	}
	for _, root := range appended {
		if returnedAfter(fd, rng, root) {
			report("the returned slice " + root)
			return
		}
	}
}

// emissionSink classifies a call inside the loop body that writes
// bytes whose order the map dictates.
func emissionSink(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name() + " output"
	}
	if recv := analysis.Receiver(pass.TypesInfo, call); recv != nil {
		if pkg, typ := analysis.Named(recv); pkg == analysis.ModulePath+"/internal/wire" {
			return "a wire encoding via " + typ + "." + fn.Name()
		}
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return "a stream via " + fn.Name()
		}
	}
	return ""
}

// isAppend reports whether call is the append built-in.
func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsBuiltin(pass.TypesInfo, call, "append")
}

// rootName renders the base identifier of an append target: x for both
// `x` and `x.Field`.
func rootName(e ast.Expr) string {
	return analysis.RootName(e)
}

// sortedAfter reports whether any sort/slices call follows the range
// statement in the function.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
			}
		}
		return true
	})
	return found
}

// returnedAfter reports whether a return statement after the loop
// mentions the identifier root, or the function names root as a
// result.
func returnedAfter(fd *ast.FuncDecl, rng *ast.RangeStmt, root string) bool {
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			for _, name := range r.Names {
				if name.Name == root {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < rng.End() {
			return true
		}
		for _, res := range ret.Results {
			if rootName(res) == root {
				found = true
			}
		}
		return true
	})
	return found
}
