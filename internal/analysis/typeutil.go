package analysis

import (
	"go/ast"
	"go/types"
)

// Named returns the defining package path and name of t's named type,
// looking through one level of pointer. Both are "" for unnamed types;
// the path is "" for universe types like error.
func Named(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// IsNamed reports whether t (possibly *T) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	p, n := Named(t)
	return p == pkgPath && n == name
}

// Callee resolves the function or method a call expression statically
// invokes, or nil for calls through function values, built-ins, and
// type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Receiver returns the static type of the receiver of a method call,
// or nil when call is not a method call (package-qualified functions
// included).
func Receiver(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	return s.Recv()
}

// IsMutex reports whether t (possibly *T) is sync.Mutex or
// sync.RWMutex.
func IsMutex(t types.Type) bool {
	p, n := Named(t)
	return p == "sync" && (n == "Mutex" || n == "RWMutex")
}

// IsFromPackage reports whether t (possibly *T) is any named type
// declared in the package with the given import path (net.Conn,
// *net.TCPConn, ... for "net").
func IsFromPackage(t types.Type, pkgPath string) bool {
	p, _ := Named(t)
	return p == pkgPath
}

// ImportedInterface finds the named interface path.name among pkg's
// direct imports, or nil when the package cannot name it. Analyzers
// use it to test types.Implements against first-party interfaces
// (e.g. disk.Device) without importing the package themselves.
func ImportedInterface(pkg *types.Package, path, name string) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() != path {
			continue
		}
		if tn, ok := imp.Scope().Lookup(name).(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// IsBuiltin reports whether the call invokes the named builtin
// (append, make, new, ...), resolved through the type info rather than
// by identifier spelling so shadowed names do not fool it.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// RootName renders the base identifier of an lvalue-ish expression:
// x for `x`, `x.Field`, and `x[i].Field`; "" when there is none.
func RootName(e ast.Expr) string {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return ""
		}
	}
}
