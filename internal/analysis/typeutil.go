package analysis

import (
	"go/ast"
	"go/types"
)

// Named returns the defining package path and name of t's named type,
// looking through one level of pointer. Both are "" for unnamed types;
// the path is "" for universe types like error.
func Named(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// IsNamed reports whether t (possibly *T) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	p, n := Named(t)
	return p == pkgPath && n == name
}

// Callee resolves the function or method a call expression statically
// invokes, or nil for calls through function values, built-ins, and
// type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Receiver returns the static type of the receiver of a method call,
// or nil when call is not a method call (package-qualified functions
// included).
func Receiver(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	return s.Recv()
}

// IsMutex reports whether t (possibly *T) is sync.Mutex or
// sync.RWMutex.
func IsMutex(t types.Type) bool {
	p, n := Named(t)
	return p == "sync" && (n == "Mutex" || n == "RWMutex")
}
