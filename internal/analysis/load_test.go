package analysis

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" {
		t.Fatal("tests must run inside the module")
	}
	return filepath.Dir(gomod)
}

func TestParseGoList(t *testing.T) {
	t.Run("valid stream", func(t *testing.T) {
		// go list -json emits concatenated objects, not an array.
		out := []byte(`{"ImportPath":"example.com/a","Dir":"/src/a","GoFiles":["a.go"],"Imports":["fmt"]}
{"ImportPath":"fmt","Standard":true,"DepOnly":true}`)
		pkgs, err := parseGoList(out)
		if err != nil {
			t.Fatalf("parseGoList: %v", err)
		}
		if len(pkgs) != 2 {
			t.Fatalf("got %d packages, want 2", len(pkgs))
		}
		a := pkgs["example.com/a"]
		if a == nil || a.Dir != "/src/a" || len(a.Imports) != 1 || a.Imports[0] != "fmt" {
			t.Errorf("package a decoded wrong: %+v", a)
		}
		if f := pkgs["fmt"]; f == nil || !f.Standard || !f.DepOnly {
			t.Errorf("package fmt decoded wrong: %+v", pkgs["fmt"])
		}
	})
	t.Run("malformed json", func(t *testing.T) {
		if _, err := parseGoList([]byte(`{"ImportPath": "x", `)); err == nil {
			t.Fatal("want decode error for truncated JSON, got nil")
		}
	})
	t.Run("missing import path", func(t *testing.T) {
		_, err := parseGoList([]byte(`{"Dir":"/src/a"}`))
		if err == nil || !strings.Contains(err.Error(), "ImportPath") {
			t.Fatalf("want ImportPath error, got %v", err)
		}
	})
}

func TestNewResolverBadPattern(t *testing.T) {
	if _, err := NewResolver(moduleRoot(t), "./does-not-exist/..."); err == nil {
		t.Fatal("want error for a pattern matching nothing, got nil")
	}
}

func TestResolverMissingExportData(t *testing.T) {
	// A resolver scoped to one leaf package has export data only for
	// that package's dependency cone; anything else must fail loudly
	// rather than type-check against the wrong world.
	r, err := NewResolver(moduleRoot(t), "./internal/alloc")
	if err != nil {
		t.Fatalf("NewResolver: %v", err)
	}
	if _, err := r.Import(ModulePath + "/internal/msm"); err == nil {
		t.Fatal("want missing-export-data error for out-of-cone import, got nil")
	}
	if _, err := r.Import(ModulePath + "/internal/alloc"); err != nil {
		t.Errorf("in-cone import failed: %v", err)
	}
}

func TestLoadOutsideModule(t *testing.T) {
	// Module-root detection: Load refuses a directory go list cannot
	// resolve to buildable packages.
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("want error loading an empty non-module directory, got nil")
	}
}

func TestLoadSinglePackage(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./internal/alloc")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != ModulePath+"/internal/alloc" {
		t.Errorf("path = %q", p.Path)
	}
	if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
		t.Error("package not fully loaded")
	}
	if len(p.Imports) == 0 {
		t.Error("Imports not populated; RunAll cannot order passes")
	}
}
