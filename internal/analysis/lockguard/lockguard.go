// Package lockguard enforces the `// guarded by <mutex>` annotation
// convention: a struct field carrying that comment may only be touched
// by methods that visibly acquire the named mutex. The check is a
// syntactic over-approximation — it looks for a <recv>.<mutex>.Lock()
// or .RLock() call anywhere in the method body, it does not prove the
// lock is held at the access.
//
// RWMutex guarding is access-aware: a visible RLock() licenses reads
// of the field, but writes (assignment, including through an index or
// dereference, ++/--, or taking the address) require a visible
// exclusive Lock(). The variant annotation
//
//	// guarded by <mutex> (read)
//
// declares a single-writer field: writes still require the exclusive
// lock, but reads are allowed lock-free (the published-value pattern —
// use it only where a stale read is acceptable).
//
// Methods that run with the lock already held opt out by ending their
// name in "Locked" or by documenting "must hold" in their doc comment;
// individual accesses can be suppressed with //lint:ignore lockguard.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"mmfs/internal/analysis"
)

// Analyzer flags accesses to `// guarded by mu` fields from methods
// that do not visibly hold the mutex (exclusively, for writes).
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flag reads/writes of struct fields annotated `// guarded by <mutex>` " +
		"from methods that neither lock the mutex nor declare that the caller holds it; " +
		"writes require the exclusive lock, `(read)` fields allow lock-free reads",
	Run: run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)(\s*\(read\))?`)

// guard is one field's annotation: the guarding mutex and whether
// lock-free reads are declared acceptable.
type guard struct {
	mutex    string
	readFree bool
}

func run(pass *analysis.Pass) error {
	// guards maps struct type name -> field name -> annotation.
	guards := make(map[string]map[string]guard)
	for _, f := range pass.Files {
		collectGuards(f, guards)
	}
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards records `// guarded by <mutex>` annotations on struct
// fields declared in f.
func collectGuards(f *ast.File, guards map[string]map[string]guard) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				g, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				byField := guards[ts.Name.Name]
				if byField == nil {
					byField = make(map[string]guard)
					guards[ts.Name.Name] = byField
				}
				for _, name := range field.Names {
					byField[name.Name] = g
				}
			}
		}
	}
}

// guardAnnotation extracts the annotation from a field's doc or
// trailing comment.
func guardAnnotation(field *ast.Field) (guard, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return guard{mutex: m[1], readFree: m[2] != ""}, true
		}
	}
	return guard{}, false
}

// checkMethod flags guarded-field accesses in one method.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, guards map[string]map[string]guard) {
	byField := guards[recvTypeName(fd)]
	if byField == nil {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	if fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "must hold") {
		return
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return
	}
	recv := pass.TypesInfo.Defs[names[0]]
	if recv == nil {
		return
	}

	// held collects, per mutex, the strongest visible acquisition in
	// the body: "write" for <recv>.<mutex>.Lock(), "read" for RLock().
	held := make(map[string]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := inner.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
			if sel.Sel.Name == "Lock" {
				held[inner.Sel.Name] = "write"
			} else if held[inner.Sel.Name] == "" {
				held[inner.Sel.Name] = "read"
			}
		}
		return true
	})

	written := writtenSelectors(fd.Body)
	reported := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		g, guarded := byField[sel.Sel.Name]
		if !guarded || reported[sel.Sel.Name] {
			return true
		}
		// Only flag real field accesses, not same-named methods.
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() != types.FieldVal {
			return true
		}
		write := written[sel]
		switch {
		case write && held[g.mutex] == "read":
			reported[sel.Sel.Name] = true
			pass.Reportf(sel.Pos(), "%s writes field %s (guarded by %s) while holding only %s.RLock; writes need the exclusive Lock",
				fd.Name.Name, sel.Sel.Name, g.mutex, g.mutex)
		case write && held[g.mutex] == "":
			reported[sel.Sel.Name] = true
			pass.Reportf(sel.Pos(), "%s writes field %s (guarded by %s) without holding %s; lock it, suffix the method name with Locked, or document that the caller must hold it",
				fd.Name.Name, sel.Sel.Name, g.mutex, g.mutex)
		case !write && held[g.mutex] == "" && !g.readFree:
			reported[sel.Sel.Name] = true
			pass.Reportf(sel.Pos(), "%s accesses field %s (guarded by %s) without holding %s; lock it, suffix the method name with Locked, or document that the caller must hold it",
				fd.Name.Name, sel.Sel.Name, g.mutex, g.mutex)
		}
		return true
	})
}

// writtenSelectors collects the selector expressions that a body
// writes: assignment targets (looking through index and dereference),
// ++/--, and operands of unary & (the address may be written through).
func writtenSelectors(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	written := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				written[v] = true
				return
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return written
}

// recvTypeName returns the bare type name of a method receiver,
// stripping pointers and type parameters.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
