// Package lockguard enforces the `// guarded by <mutex>` annotation
// convention: a struct field carrying that comment may only be touched
// by methods that visibly acquire the named mutex. The check is a
// syntactic over-approximation — it looks for a <recv>.<mutex>.Lock()
// or .RLock() call anywhere in the method body, it does not prove the
// lock is held at the access. Methods that run with the lock already
// held opt out by ending their name in "Locked" or by documenting
// "must hold" in their doc comment; individual accesses can be
// suppressed with //lint:ignore lockguard.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"mmfs/internal/analysis"
)

// Analyzer flags accesses to `// guarded by mu` fields from methods
// that do not visibly hold the mutex.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flag reads/writes of struct fields annotated `// guarded by <mutex>` " +
		"from methods that neither lock the mutex nor declare that the caller holds it",
	Run: run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	// guards maps struct type name -> field name -> guarding mutex
	// field name.
	guards := make(map[string]map[string]string)
	for _, f := range pass.Files {
		collectGuards(f, guards)
	}
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards records `// guarded by <mutex>` annotations on struct
// fields declared in f.
func collectGuards(f *ast.File, guards map[string]map[string]string) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				byField := guards[ts.Name.Name]
				if byField == nil {
					byField = make(map[string]string)
					guards[ts.Name.Name] = byField
				}
				for _, name := range field.Names {
					byField[name.Name] = mutex
				}
			}
		}
	}
}

// guardAnnotation extracts the mutex name from a field's doc or
// trailing comment, or "" when the field is unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkMethod flags guarded-field accesses in one method.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, guards map[string]map[string]string) {
	byField := guards[recvTypeName(fd)]
	if byField == nil {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	if fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "must hold") {
		return
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return
	}
	recv := pass.TypesInfo.Defs[names[0]]
	if recv == nil {
		return
	}

	// held collects the mutexes for which the body contains a visible
	// <recv>.<mutex>.Lock() or .RLock() call.
	held := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := inner.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
			held[inner.Sel.Name] = true
		}
		return true
	})

	reported := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		mutex, guarded := byField[sel.Sel.Name]
		if !guarded || held[mutex] || reported[sel.Sel.Name] {
			return true
		}
		// Only flag real field accesses, not same-named methods.
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() != types.FieldVal {
			return true
		}
		reported[sel.Sel.Name] = true
		pass.Reportf(sel.Pos(), "%s accesses field %s (guarded by %s) without holding %s; lock it, suffix the method name with Locked, or document that the caller must hold it",
			fd.Name.Name, sel.Sel.Name, mutex, mutex)
		return true
	})
}

// recvTypeName returns the bare type name of a method receiver,
// stripping pointers and type parameters.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
