package lockguard_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/lockguard"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, lockguard.Analyzer)
}
