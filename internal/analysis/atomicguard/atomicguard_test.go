package atomicguard_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/atomicguard"
)

func TestAtomicGuard(t *testing.T) {
	analysistest.Run(t, atomicguard.Analyzer)
}
