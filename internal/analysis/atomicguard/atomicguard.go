// Package atomicguard keeps each shared field on exactly one
// synchronization discipline. The obs hot counters are sharded atomics
// precisely so the round loop never takes a lock to bump them; that
// only stays correct if every access to such a field goes through
// sync/atomic. Two mixtures are flagged:
//
//  1. a field that is the target of a sync/atomic function call
//     (atomic.AddUint64(&s.f, 1), LoadInt64(&s.f), ...) anywhere in
//     the package must never be read or written plainly — the plain
//     access races with the atomic ones and the race detector only
//     catches it when both sides run;
//  2. a field whose type is from sync/atomic (atomic.Uint64, ...) or
//     that is atomically accessed must not also carry a
//     `// guarded by <mutex>` annotation — double discipline means
//     readers disagree about which one protects the field.
//
// Typed atomics (atomic.Uint64 et al.) are otherwise safe by
// construction and preferred; the function-call form is what this
// analyzer polices. Suppress a finding with //lint:ignore atomicguard.
package atomicguard

import (
	"go/ast"
	"go/types"
	"regexp"

	"mmfs/internal/analysis"
)

// Analyzer flags mixed atomic/plain/mutex access to the same field.
var Analyzer = &analysis.Analyzer{
	Name: "atomicguard",
	Doc: "flag fields accessed both via sync/atomic and plainly, and atomic fields " +
		"that also carry a `guarded by` mutex annotation; one discipline per field",
	PathPrefixes: []string{analysis.ModulePath},
	Run:          run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// atomicFnRe matches the sync/atomic functions whose first argument
// addresses the field they operate on.
var atomicFnRe = regexp.MustCompile(`^(Add|Load|Store|Swap|CompareAndSwap|And|Or)`)

func run(pass *analysis.Pass) error {
	// atomicFields maps field objects reached via atomic.Xxx(&expr)
	// calls; atomicArgs records those selector nodes so the plain-access
	// walk can skip them.
	atomicFields := make(map[types.Object]bool)
	atomicArgs := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFnRe.MatchString(fn.Name()) {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				atomicFields[s.Obj()] = true
				atomicArgs[sel] = true
			}
			return true
		})
	}

	for _, f := range pass.Files {
		checkStructDecls(pass, f, atomicFields)
	}
	if len(atomicFields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal || !atomicFields[s.Obj()] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; "+
				"this plain access races with it — use the atomic API here too", s.Obj().Name())
			return true
		})
	}
	return nil
}

// checkStructDecls flags fields that pair an atomic discipline with a
// `guarded by` annotation.
func checkStructDecls(pass *analysis.Pass, f *ast.File, atomicFields map[types.Object]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					pkg, _ := analysis.Named(obj.Type())
					if pkg == "sync/atomic" || atomicFields[obj] {
						pass.Reportf(name.Pos(), "field %s is atomic but annotated `guarded by %s`; "+
							"pick one discipline — drop the annotation or make every access take the mutex", name.Name, mutex)
					}
				}
			}
		}
	}
}

// guardAnnotation extracts the mutex name from a field's doc or
// trailing comment, or "" when unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
