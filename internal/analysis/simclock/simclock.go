// Package simclock keeps simulation-driven packages off the wall
// clock. Admission control, service rounds, and playback deadlines are
// all defined in virtual time (internal/sim); a stray time.Now or
// time.Sleep makes those paths nondeterministic and untestable, and in
// the worst case mixes wall-clock instants into virtual deadlines.
// Code that legitimately needs the wall clock (e.g. operational
// logging of real elapsed time) opts out with //lint:ignore simclock.
package simclock

import (
	"go/ast"
	"go/types"

	"mmfs/internal/analysis"
)

// wallClock lists the time-package functions that read or wait on the
// wall clock. time.Duration arithmetic and constants remain free.
var wallClock = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer flags wall-clock calls in packages that must run on the
// injectable virtual clock.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc: "flag time.Now/time.Sleep and friends in simulation-driven packages; " +
		"timed behavior there must use the injectable sim clock for determinism",
	PathPrefixes: []string{
		analysis.ModulePath + "/internal/sim",
		analysis.ModulePath + "/internal/msm",
		analysis.ModulePath + "/internal/server",
		analysis.ModulePath + "/internal/core",
		analysis.ModulePath + "/internal/cache",
		analysis.ModulePath + "/internal/fault",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClock[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a simulation-driven package; use the injectable sim clock (internal/sim) or opt out with //lint:ignore simclock", sel.Sel.Name)
			return true
		})
	}
	return nil
}
