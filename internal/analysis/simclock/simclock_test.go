package simclock_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/simclock"
)

func TestSimClock(t *testing.T) {
	analysistest.Run(t, simclock.Analyzer)
}
