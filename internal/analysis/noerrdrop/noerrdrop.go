// Package noerrdrop flags silently discarded errors on first-party
// code paths. A dropped error from the disk, allocator, or strand
// layers can leave a strand index pointing at sectors that were never
// written — the corruption only surfaces rounds later as a continuity
// violation. Two shapes are flagged: an error value assigned to the
// blank identifier (`_ = err`, `v, _ := f()`), and a bare call
// statement to a first-party function whose results include an error.
// Deliberate best-effort discards opt out with //lint:ignore
// noerrdrop.
package noerrdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"mmfs/internal/analysis"
)

// Analyzer flags discarded errors in first-party packages.
var Analyzer = &analysis.Analyzer{
	Name: "noerrdrop",
	Doc: "flag errors discarded via the blank identifier or via bare calls " +
		"to first-party functions returning an error",
	PathPrefixes: []string{analysis.ModulePath + "/internal"},
	Run:          run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, stmt, errType)
			case *ast.ExprStmt:
				checkBareCall(pass, stmt, errType)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags blank identifiers on the left-hand side whose
// corresponding value is an error.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt, errType types.Type) {
	// Multi-value call: x, _ := f().
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		tuple, ok := pass.TypesInfo.Types[stmt.Rhs[0]].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(stmt.Lhs) {
			return
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && types.Identical(tuple.At(i).Type(), errType) {
				pass.Reportf(lhs.Pos(), "result %d of %s is an error discarded via _; handle it or opt out with //lint:ignore noerrdrop", i+1, exprString(stmt.Rhs[0]))
			}
		}
		return
	}
	// Pairwise: _ = err.
	for i, lhs := range stmt.Lhs {
		if i >= len(stmt.Rhs) || !isBlank(lhs) {
			continue
		}
		if t := pass.TypesInfo.Types[stmt.Rhs[i]].Type; t != nil && types.Identical(t, errType) {
			pass.Reportf(lhs.Pos(), "error discarded via _; handle it or opt out with //lint:ignore noerrdrop")
		}
	}
}

// checkBareCall flags statement-level calls to first-party functions
// whose result list includes an error.
func checkBareCall(pass *analysis.Pass, stmt *ast.ExprStmt, errType types.Type) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := callee(pass.TypesInfo, call)
	if fn == nil || !firstParty(pass, fn.Pkg()) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			pass.Reportf(call.Pos(), "call to %s discards its error result; handle it or opt out with //lint:ignore noerrdrop", fn.Name())
			return
		}
	}
}

// callee resolves the static callee of a call, or nil for builtins,
// conversions, and dynamic calls through function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// firstParty reports whether pkg is the analyzed package itself or
// another package of this module.
func firstParty(pass *analysis.Pass, pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if pkg == pass.Pkg {
		return true
	}
	return pkg.Path() == analysis.ModulePath ||
		strings.HasPrefix(pkg.Path(), analysis.ModulePath+"/")
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exprString renders a short name for the flagged call.
func exprString(e ast.Expr) string {
	if call, ok := e.(*ast.CallExpr); ok {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name
		case *ast.SelectorExpr:
			return fun.Sel.Name
		}
	}
	return "the call"
}
