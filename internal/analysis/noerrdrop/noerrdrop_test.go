package noerrdrop_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/noerrdrop"
)

func TestNoErrDrop(t *testing.T) {
	analysistest.Run(t, noerrdrop.Analyzer)
}
