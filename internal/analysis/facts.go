package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
)

// Fact is a function summary exported by one analyzer pass and
// importable by later passes of the same analyzer over packages that
// depend on the exporting one. This mirrors go/analysis Facts: a fact
// must be a pointer type with gob-encodable exported fields, so a
// future out-of-process driver could serialize summaries next to
// export data. The AFact marker keeps arbitrary values out of the
// store.
type Fact interface{ AFact() }

// factKey identifies one exported fact. Facts are keyed by the
// analyzer name and a stable string rendering of the function
// (FuncKey), not by *types.Func identity: the same function is a
// different object when seen from source during its own pass and from
// export data during an importer's pass.
type factKey struct {
	analyzer string
	fn       string
}

// FactStore holds the facts exported while running a suite of
// analyzers over a dependency-ordered package list. One store is
// shared across all packages of a RunAll invocation; Run uses a fresh
// store per package, which is why intra-package analyzers keep working
// unchanged.
type FactStore struct {
	facts map[factKey]Fact
	// encodable caches gob-encodability per concrete fact type, so the
	// (comparatively slow) round-trip check runs once per type rather
	// than once per function.
	encodable map[string]error
}

// NewFactStore creates an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		facts:     make(map[factKey]Fact),
		encodable: make(map[string]error),
	}
}

// checkEncodable enforces the go/analysis contract that facts are
// gob-serializable, failing fast at export time instead of in a
// hypothetical future driver that actually writes them to disk.
func (s *FactStore) checkEncodable(f Fact) error {
	tname := fmt.Sprintf("%T", f)
	err, seen := s.encodable[tname]
	if !seen {
		err = gob.NewEncoder(&bytes.Buffer{}).Encode(f)
		s.encodable[tname] = err
	}
	if err != nil {
		return fmt.Errorf("fact type %s is not gob-encodable: %v", tname, err)
	}
	return nil
}

// put records f for (analyzer, key), replacing any previous fact.
func (s *FactStore) put(analyzer, key string, f Fact) error {
	if err := s.checkEncodable(f); err != nil {
		return err
	}
	s.facts[factKey{analyzer, key}] = f
	return nil
}

// get retrieves the fact exported for (analyzer, key).
func (s *FactStore) get(analyzer, key string) (Fact, bool) {
	f, ok := s.facts[factKey{analyzer, key}]
	return f, ok
}

// FuncKey renders a function as a stable cross-package identifier:
// pkgpath.Name for package functions, pkgpath.Type.Name for methods.
// Interface methods key on the interface type, which is how the path
// analyzers publish a join over all known implementations.
func FuncKey(fn *types.Func) string {
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, name := Named(sig.Recv().Type()); name != "" {
			key = name + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

// ExportFact publishes a summary for fn, visible to later passes of
// the same analyzer over packages that import this one. Facts must be
// gob-encodable; a violation is a programming error in the analyzer
// and panics rather than silently dropping the summary.
func (p *Pass) ExportFact(fn *types.Func, f Fact) {
	if err := p.facts.put(p.Analyzer.Name, FuncKey(fn), f); err != nil {
		panic(fmt.Sprintf("%s: ExportFact(%s): %v", p.Analyzer.Name, FuncKey(fn), err))
	}
}

// ImportFact retrieves the summary a previous pass of this analyzer
// exported for fn, if any. fn is typically an export-data object from
// an imported package; the string key makes that equivalence work.
func (p *Pass) ImportFact(fn *types.Func) (Fact, bool) {
	return p.facts.get(p.Analyzer.Name, FuncKey(fn))
}
