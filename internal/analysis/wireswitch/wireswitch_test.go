package wireswitch_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/wireswitch"
)

func TestWireSwitch(t *testing.T) {
	analysistest.Run(t, wireswitch.Analyzer)
}
