// Package wireswitch keeps switches over internal/wire protocol
// constants exhaustive. When a new opcode is added to the wire
// protocol, every dispatch switch (the server's handler table, the
// opcode stringer, ...) must either gain a case for it or carry an
// explicit //lint:ignore wireswitch opt-out; a default clause does NOT
// excuse a missing constant, because silently routing a new opcode to
// the default arm is exactly the bug this check exists to catch.
package wireswitch

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mmfs/internal/analysis"
)

// wirePath is the package whose constant-typed switches must stay
// exhaustive.
const wirePath = analysis.ModulePath + "/internal/wire"

// Analyzer flags non-exhaustive switches over internal/wire constant
// types.
var Analyzer = &analysis.Analyzer{
	Name: "wireswitch",
	Doc: "flag switches over internal/wire opcode/message-type constants " +
		"that do not cover every declared constant of the type",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagT := pass.TypesInfo.Types[sw.Tag].Type
			named := wireNamedType(tagT)
			if named == nil {
				return true
			}
			missing := missingConstants(pass, sw, named)
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s.%s misses %s; cover every constant or opt out with //lint:ignore wireswitch",
					named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// wireNamedType returns t as a named type declared in internal/wire,
// or nil.
func wireNamedType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != wirePath {
		return nil
	}
	return named
}

// missingConstants returns the names of declared constants of typ that
// no case clause of sw mentions, sorted by declaration value.
func missingConstants(pass *analysis.Pass, sw *ast.SwitchStmt, typ *types.Named) []string {
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	scope := typ.Obj().Pkg().Scope()
	type missing struct {
		name string
		val  constant.Value
	}
	var miss []missing
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), typ) {
			continue
		}
		if !covered[c.Val().ExactString()] {
			miss = append(miss, missing{name, c.Val()})
		}
	}
	sort.Slice(miss, func(i, j int) bool {
		vi, vj := miss[i].val, miss[j].val
		if vi.Kind() == constant.Int && vj.Kind() == constant.Int {
			return constant.Compare(vi, token.LSS, vj)
		}
		return miss[i].name < miss[j].name
	})
	names := make([]string, len(miss))
	for i, m := range miss {
		names[i] = m.name
	}
	return names
}
