package boundedwork_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/boundedwork"
)

func TestBoundedWork(t *testing.T) {
	analysistest.Run(t, boundedwork.Analyzer)
}
