// Package boundedwork enforces the other half of the real-time
// service contract: every loop reachable from a `// rt:hotpath` root
// must have a statically evident bound. The paper's round length
// (Eq. 15) is a function of n, the admitted stream count; a round
// whose work is not O(admitted state) — a bare `for {}`, a range over
// a map of unbounded population, a range over a channel, or recursion
// back into the round — has no place in the service-time budget that
// admission control certified.
//
// Seeds are unconditional `for` loops, ranges over maps, and ranges
// over channels; loops over slices, arrays, strings, integers, or with
// an explicit condition are taken as bounded (the condition is the
// author's stated bound). Summaries propagate exactly like allocpath's
// — same-package fixpoint, cross-package PathFacts, interface joins —
// and, additionally, same-package call-graph cycles that re-enter a
// hot-path root are reported at the call that closes the cycle.
// Deliberate exceptions carry a reasoned //lint:ignore boundedwork.
package boundedwork

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmfs/internal/analysis"
)

// Analyzer reports potentially unbounded work reachable from
// rt:hotpath roots.
var Analyzer = &analysis.Analyzer{
	Name: "boundedwork",
	Doc: "flag unbounded loops (bare for, map/channel ranges) and recursion " +
		"transitively reachable from // rt:hotpath roots",
	FactTypes: []analysis.Fact{&analysis.PathFact{}},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	return analysis.RunPath(pass, analysis.PathConfig{
		Seeds:         seeds,
		RootCycleWhat: "recursion",
		Advice:        "bound it by admitted state (slice iteration or an explicit condition), or //lint:ignore boundedwork with the design reason",
	})
}

// seeds collects the intrinsically unbounded loops of one body.
func seeds(pass *analysis.Pass, fd *ast.FuncDecl) []analysis.Site {
	info := pass.TypesInfo
	var sites []analysis.Site
	add := func(pos token.Pos, what string) {
		sites = append(sites, analysis.Site{Pos: pos, What: what})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure bodies run in contexts this analyzer cannot
			// attribute; allocpath already flags their creation.
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				add(n.Pos(), "unconditional for loop")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					add(n.Pos(), "range over map")
				case *types.Chan:
					add(n.Pos(), "range over channel")
				}
			}
		}
		return true
	})
	return sites
}
