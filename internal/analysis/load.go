package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding its sources.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records type information for every expression.
	TypesInfo *types.Info
	// Imports lists the package's direct imports; RunAll uses them to
	// order passes so exported facts precede their importers.
	Imports []string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// Resolver type-checks source files against export data produced by
// the go toolchain, so analyzers see exactly the types the compiler
// sees without re-checking the transitive dependency graph from
// source.
type Resolver struct {
	fset     *token.FileSet
	exports  map[string]string // import path -> export data file
	packages map[string]*listPkg
	importer types.Importer
	// srcPkgs are packages the caller type-checked from source
	// (analysistest fixture dependencies); they shadow export data.
	srcPkgs map[string]*types.Package
}

// NewResolver runs `go list -export -deps -json` on the given patterns
// in dir and returns a resolver covering the matched packages and
// their whole dependency graph. go list compiles what it lists, so the
// tree must build.
func NewResolver(dir string, patterns ...string) (*Resolver, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	pkgs, err := parseGoList(out)
	if err != nil {
		return nil, err
	}
	r := &Resolver{
		fset:     token.NewFileSet(),
		exports:  make(map[string]string),
		packages: pkgs,
	}
	for path, p := range pkgs {
		if p.Export != "" {
			r.exports[path] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := r.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	r.importer = importer.ForCompiler(r.fset, "gc", lookup)
	return r, nil
}

// parseGoList decodes the JSON stream `go list -json` emits (one
// object per package, concatenated, not a JSON array).
func parseGoList(out []byte) (map[string]*listPkg, error) {
	pkgs := make(map[string]*listPkg)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.ImportPath == "" {
			return nil, fmt.Errorf("go list: package entry without ImportPath")
		}
		q := p
		pkgs[p.ImportPath] = &q
	}
	return pkgs, nil
}

// AddSourcePackage registers an already type-checked package so later
// Check calls resolve imports of its path from that package instead of
// export data. analysistest uses this to give fixture packages
// source-built dependency packages, exercising cross-package fact flow
// without compiled artifacts.
func (r *Resolver) AddSourcePackage(pkg *types.Package) {
	if r.srcPkgs == nil {
		r.srcPkgs = make(map[string]*types.Package)
	}
	r.srcPkgs[pkg.Path()] = pkg
}

// Import resolves an import path, preferring source-registered
// packages over export data. Resolver is itself the types.Importer
// handed to the checker.
func (r *Resolver) Import(path string) (*types.Package, error) {
	if p := r.srcPkgs[path]; p != nil {
		return p, nil
	}
	return r.importer.Import(path)
}

// ImportFrom implements types.ImporterFrom with the same source-first
// delegation as Import.
func (r *Resolver) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := r.srcPkgs[path]; p != nil {
		return p, nil
	}
	if imp, ok := r.importer.(types.ImporterFrom); ok {
		return imp.ImportFrom(path, dir, mode)
	}
	return r.importer.Import(path)
}

// Fset returns the resolver's shared file set.
func (r *Resolver) Fset() *token.FileSet { return r.fset }

// ParseFile parses one source file with comments into the resolver's
// file set.
func (r *Resolver) ParseFile(path string) (*ast.File, error) {
	return parser.ParseFile(r.fset, path, nil, parser.ParseComments)
}

// Check type-checks the given files as a package with the given import
// path, resolving imports through export data.
func (r *Resolver) Check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: r}
	pkg, err := conf.Check(path, r.fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// load parses and type-checks one listed package from source.
func (r *Resolver) load(lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := r.ParseFile(filepath.Join(lp.Dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := r.Check(lp.ImportPath, files)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      r.fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
		Imports:   lp.Imports,
	}, nil
}

// Load lists the packages matching patterns in dir and returns the
// first-party ones (this module, not stdlib) parsed and type-checked,
// sorted by import path. Test files are not analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	r, err := NewResolver(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*listPkg
	for _, lp := range r.packages {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Module == nil || lp.Module.Path != ModulePath {
			continue
		}
		targets = append(targets, lp)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	var pkgs []*Package
	for _, lp := range targets {
		p, err := r.load(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
