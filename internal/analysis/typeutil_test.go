package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

const typeutilFixture = `package tu

import (
	"net"

	"mmfs/internal/disk"
)

type wrap struct{ c net.Conn }

var (
	conn net.Conn
	w    wrap
	arr  []int
	m    map[int][]int
	dev  disk.Device
)

func f() {
	arr = append(arr, 1)
	_ = len(arr)
	_ = w.c
	_ = m[0]
	_ = conn
	_ = dev
}
`

// checkTypeutilFixture type-checks the snippet above against real
// export data, exercising the helpers exactly as analyzers use them.
func checkTypeutilFixture(t *testing.T) (*Resolver, *Package) {
	t.Helper()
	r, err := NewResolver(moduleRoot(t), "./internal/disk")
	if err != nil {
		t.Fatalf("NewResolver: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tu.go")
	if err := os.WriteFile(path, []byte(typeutilFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := r.ParseFile(path)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, info, err := r.Check(ModulePath+"/fixture/typeutil", []*ast.File{f})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return r, &Package{Path: pkg.Path(), Fset: r.Fset(), Files: []*ast.File{f}, Types: pkg, TypesInfo: info}
}

func TestIsFromPackage(t *testing.T) {
	_, p := checkTypeutilFixture(t)
	scope := p.Types.Scope()
	if !IsFromPackage(scope.Lookup("conn").Type(), "net") {
		t.Error("net.Conn not recognized as from net")
	}
	if IsFromPackage(scope.Lookup("w").Type(), "net") {
		t.Error("local struct claimed to be from net")
	}
	if IsFromPackage(scope.Lookup("arr").Type(), "net") {
		t.Error("unnamed slice claimed to be from net")
	}
}

func TestImportedInterface(t *testing.T) {
	_, p := checkTypeutilFixture(t)
	if ImportedInterface(p.Types, ModulePath+"/internal/disk", "Device") == nil {
		t.Error("disk.Device interface not found through the import graph")
	}
	if ImportedInterface(p.Types, ModulePath+"/internal/disk", "NoSuchType") != nil {
		t.Error("nonexistent type reported as an interface")
	}
	if ImportedInterface(p.Types, ModulePath+"/internal/nosuchpkg", "Device") != nil {
		t.Error("unimported package reported an interface")
	}
}

func TestIsBuiltinAndRootName(t *testing.T) {
	_, p := checkTypeutilFixture(t)
	var appendCall, lenCall *ast.CallExpr
	var sel, idx ast.Expr
	ast.Inspect(p.Files[0], func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "append":
					appendCall = n
				case "len":
					lenCall = n
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "c" {
				sel = n
			}
		case *ast.IndexExpr:
			idx = n
		}
		return true
	})
	if appendCall == nil || lenCall == nil || sel == nil || idx == nil {
		t.Fatal("fixture expressions not found")
	}
	if !IsBuiltin(p.TypesInfo, appendCall, "append") {
		t.Error("append call not recognized")
	}
	if IsBuiltin(p.TypesInfo, appendCall, "len") {
		t.Error("append call misrecognized as len")
	}
	if !IsBuiltin(p.TypesInfo, lenCall, "len") {
		t.Error("len call not recognized")
	}
	if got := RootName(sel); got != "w" {
		t.Errorf("RootName(w.c) = %q, want w", got)
	}
	if got := RootName(idx); got != "m" {
		t.Errorf("RootName(m[0]) = %q, want m", got)
	}
	if got := RootName(ast.NewIdent("arr")); got != "arr" {
		t.Errorf("RootName(arr) = %q, want arr", got)
	}
}
