package deadlineguard_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/deadlineguard"
)

func TestDeadlineGuard(t *testing.T) {
	analysistest.Run(t, deadlineguard.Analyzer)
}
