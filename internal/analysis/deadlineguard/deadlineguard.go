// Package deadlineguard keeps real network I/O deadline-capable. A
// net.Conn Read or Write with no reachable SetDeadline means one
// wedged peer can hold a connection slot (and its goroutine) forever —
// exactly what the server's ReadTimeout/WriteTimeout hardening and the
// client's RPCTimeout exist to prevent, and what a high-fanout HTTP
// edge multiplies by thousands.
//
// Within each function, a conn Read (a Read method on a net type, or a
// net-typed value passed to another package's Read* function such as
// wire.ReadFrame) must be preceded by a SetReadDeadline or SetDeadline
// call on the same expression; writes likewise require SetWriteDeadline
// or SetDeadline. The check is syntactic domination by source position:
// a deadline set under `if timeout > 0` counts — the capability must
// exist on the flow, enabling it stays a configuration decision.
// Helpers whose callers own the deadline opt out with
// //lint:ignore deadlineguard <reason>.
package deadlineguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mmfs/internal/analysis"
)

// Analyzer flags undeadlined net.Conn I/O in the server/client paths.
var Analyzer = &analysis.Analyzer{
	Name: "deadlineguard",
	Doc: "flag net.Conn Read/Write calls (direct or via Read*/Write* helpers) not preceded " +
		"by a SetReadDeadline/SetWriteDeadline/SetDeadline on the same connection in the function",
	PathPrefixes: []string{
		analysis.ModulePath + "/internal/server",
		analysis.ModulePath + "/internal/client",
		analysis.ModulePath + "/cmd",
	},
	Run: run,
}

// ioCall is one conn Read or Write found in a function.
type ioCall struct {
	pos   token.Pos
	conn  string // rendering of the connection expression
	write bool
	desc  string
}

// deadlineSet is one Set*Deadline call.
type deadlineSet struct {
	pos   token.Pos
	conn  string
	read  bool
	write bool
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var ios []ioCall
	var sets []deadlineSet
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if set, ok := deadlineCall(pass, call); ok {
			sets = append(sets, set)
			return true
		}
		if io, ok := connIO(pass, call); ok {
			ios = append(ios, io)
		}
		return true
	})
	for _, io := range ios {
		if covered(io, sets) {
			continue
		}
		verb := "SetReadDeadline"
		if io.write {
			verb = "SetWriteDeadline"
		}
		pass.Reportf(io.pos, "%s on %s has no preceding %s or SetDeadline in this function; "+
			"an undeadlined conn can wedge its goroutine forever — set one, or //lint:ignore deadlineguard if the caller owns the deadline",
			io.desc, io.conn, verb)
	}
}

// covered reports whether a matching deadline set precedes the I/O on
// the same connection expression.
func covered(io ioCall, sets []deadlineSet) bool {
	for _, s := range sets {
		if s.pos >= io.pos || s.conn != io.conn {
			continue
		}
		if (io.write && s.write) || (!io.write && s.read) {
			return true
		}
	}
	return false
}

// deadlineCall classifies conn.SetDeadline/SetReadDeadline/
// SetWriteDeadline calls on net types.
func deadlineCall(pass *analysis.Pass, call *ast.CallExpr) (deadlineSet, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return deadlineSet{}, false
	}
	var read, write bool
	switch sel.Sel.Name {
	case "SetDeadline":
		read, write = true, true
	case "SetReadDeadline":
		read = true
	case "SetWriteDeadline":
		write = true
	default:
		return deadlineSet{}, false
	}
	recv := analysis.Receiver(pass.TypesInfo, call)
	if recv == nil || !isNetType(recv) {
		return deadlineSet{}, false
	}
	return deadlineSet{pos: call.Pos(), conn: types.ExprString(sel.X), read: read, write: write}, true
}

// connIO classifies a call as conn I/O: a Read/Write method on a net
// type, or a cross-package Read*/Write* function taking a net-typed
// argument.
func connIO(pass *analysis.Pass, call *ast.CallExpr) (ioCall, bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ioCall{}, false
	}
	if recv := analysis.Receiver(pass.TypesInfo, call); recv != nil {
		if !isNetType(recv) || (fn.Name() != "Read" && fn.Name() != "Write") {
			return ioCall{}, false
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ioCall{
			pos:   call.Pos(),
			conn:  types.ExprString(sel.X),
			write: fn.Name() == "Write",
			desc:  "conn " + fn.Name(),
		}, true
	}
	read := strings.HasPrefix(fn.Name(), "Read")
	write := strings.HasPrefix(fn.Name(), "Write")
	if !read && !write {
		return ioCall{}, false
	}
	for _, arg := range call.Args {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || !isNetType(t) {
			continue
		}
		return ioCall{
			pos:   call.Pos(),
			conn:  types.ExprString(ast.Unparen(arg)),
			write: write,
			desc:  fn.Name() + " I/O",
		}, true
	}
	return ioCall{}, false
}

// isNetType reports whether t (possibly *T) is a named type from
// package net (net.Conn, net.Listener, *net.TCPConn, ...).
func isNetType(t types.Type) bool {
	return analysis.IsFromPackage(t, "net")
}
