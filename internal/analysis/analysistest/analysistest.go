// Package analysistest runs mmfsvet analyzers over fixture packages
// under internal/analysis/testdata/src/<analyzer>/, mirroring
// golang.org/x/tools/go/analysis/analysistest. Expected findings are
// declared in the fixtures with trailing comments of the form
//
//	// want "regexp" "another regexp"
//
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic; //lint:ignore suppression is applied
// before matching, so fixtures can also prove the escape hatch works.
//
// A fixture directory may contain one level of subdirectories; each is
// type-checked first as a dependency package with the module-rooted
// import path mmfs/fixture/<analyzer>/<subdir>, analyzed against the
// same shared fact store, and made importable by the root fixture.
// That exercises cross-package fact propagation exactly as RunAll's
// dependency-ordered sweep does, with // want comments and
// //lint:ignore directives honored across every fixture file.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"mmfs/internal/analysis"
)

var (
	resolverOnce sync.Once
	resolver     *analysis.Resolver
	resolverErr  error
)

// sharedResolver builds one export-data resolver per test binary,
// rooted at the module directory so fixtures may import any mmfs
// package or stdlib dependency of the module.
func sharedResolver() (*analysis.Resolver, error) {
	resolverOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			resolverErr = fmt.Errorf("go env GOMOD: %w", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			resolverErr = fmt.Errorf("analysistest must run inside the module")
			return
		}
		resolver, resolverErr = analysis.NewResolver(filepath.Dir(gomod))
	})
	return resolver, resolverErr
}

// fixturePathPrefix roots fixture import paths inside the module path,
// so analyzers treating "first-party" specially (fact propagation)
// see fixture dependency packages as in-module.
const fixturePathPrefix = analysis.ModulePath + "/fixture/"

// Run loads testdata/src/<analyzer name> as a fixture package (plus
// one level of dependency subpackages), runs the analyzer over each in
// dependency order with a shared fact store, and matches findings
// against the // want comments. testdata is resolved relative to the
// calling test's directory, i.e. internal/analysis/<name>/../testdata.
func Run(t *testing.T, a *analysis.Analyzer) {
	t.Helper()
	r, err := sharedResolver()
	if err != nil {
		t.Fatalf("loading export data: %v", err)
	}
	dir := filepath.Join("..", "testdata", "src", a.Name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixtures: %v", err)
	}

	store := analysis.NewFactStore()
	var allFiles []*ast.File
	var allDiags []analysis.Diagnostic
	check := func(pkgDir, importPath string) {
		t.Helper()
		files := parseFixtureDir(t, r, pkgDir)
		pkg, info, err := r.Check(importPath, files)
		if err != nil {
			t.Fatalf("type-checking %s: %v", importPath, err)
		}
		r.AddSourcePackage(pkg)
		diags, err := analysis.RunPass(a, &analysis.Package{
			Path:      pkg.Path(),
			Dir:       pkgDir,
			Fset:      r.Fset(),
			Files:     files,
			Types:     pkg,
			TypesInfo: info,
		}, store)
		if err != nil {
			t.Fatalf("running %s over %s: %v", a.Name, importPath, err)
		}
		allFiles = append(allFiles, files...)
		allDiags = append(allDiags, diags...)
	}

	var subdirs []string
	for _, e := range entries {
		if e.IsDir() {
			subdirs = append(subdirs, e.Name())
		}
	}
	sort.Strings(subdirs)
	for _, sub := range subdirs {
		check(filepath.Join(dir, sub), fixturePathPrefix+a.Name+"/"+sub)
	}
	check(dir, fixturePathPrefix+a.Name)

	diags := analysis.Suppress(r.Fset(), allFiles, allDiags)
	wants := collectWants(t, allFiles, r)
	for _, d := range diags {
		pos := r.Fset().Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !consumeWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected finding: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.re)
			}
		}
	}
}

// parseFixtureDir parses the .go files directly inside dir (fatal when
// there are none).
func parseFixtureDir(t *testing.T, r *analysis.Resolver, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixtures: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := r.ParseFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixtures under %s", dir)
	}
	return files
}

// want is one expected-diagnostic pattern.
type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// collectWants parses // want comments into per-line expectations.
func collectWants(t *testing.T, files []*ast.File, r *analysis.Resolver) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := r.Fset().Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range parsePatterns(t, key, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits the tail of a want comment into its quoted
// regexps; both "double" and `backtick` quoting are accepted.
func parsePatterns(t *testing.T, key, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment near %q", key, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", key, s)
		}
		pats = append(pats, s[1:1+end])
		s = s[2+end:]
	}
}

// consumeWant marks the first unmatched want matching msg, reporting
// whether one existed.
func consumeWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
