// Package blockinglock finds calls that may block for an unbounded or
// service-scale time while a sync.Mutex or sync.RWMutex is visibly
// held. Lock sharding (ROADMAP item 4) only pays off if critical
// sections stay short: a blocking call under a lock serializes every
// other goroutine contending for it, and under the virtual clock it
// can stretch one critical section across a whole service round.
//
// "May block" is a per-function summary seeded by leaf operations —
// channel sends/receives, select without default, range over a
// channel, sync.WaitGroup.Wait / sync.Cond.Wait, time.Sleep, net
// Read/Write/Accept (directly or by passing a net.Conn/net.Listener to
// another package's Read*/Write*/Serve* function), timed disk.Device
// data-path calls, and virtual-clock waits (sim.Engine Run/RunUntil/
// Step, msm.Manager RunRound/RunUntilDone/RunFor) — and propagated
// through same-package calls to a fixpoint. Lock extents are tracked
// syntactically per function: x.Lock()/x.RLock() opens one, a matching
// x.Unlock()/x.RUnlock() closes it, and a deferred unlock holds to the
// end of the function. Function literals are independent scopes (a
// goroutine body does not inherit the spawner's locks).
//
// The check is an over-approximation: it does not track lock state
// across call boundaries or distinguish branches. Deliberate designs —
// e.g. a single-ported storage manager that serializes all access
// under one lock — opt out with //lint:ignore blockinglock <reason>.
package blockinglock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mmfs/internal/analysis"
)

// Analyzer flags blocking calls reachable while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "blockinglock",
	Doc: "flag channel ops, net and disk I/O, sleeps, and virtual-clock waits " +
		"reachable while a sync.Mutex/RWMutex is visibly held; critical sections must not block",
	PathPrefixes: []string{
		analysis.ModulePath + "/internal",
		analysis.ModulePath + "/cmd",
	},
	FactTypes: []analysis.Fact{&BlockFact{}},
	Run:       run,
}

// BlockFact is the exported may-block summary of one function: the
// leaf reason its call tree can block. Importing packages charge a
// call to the function with this reason, so msm's critical sections
// see through disk/fault/cache boundaries.
type BlockFact struct{ Reason string }

// AFact marks BlockFact as an exportable fact.
func (*BlockFact) AFact() {}

func run(pass *analysis.Pass) error {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// blocks maps a same-package function to the reason it may block;
	// iterate to a fixpoint so reasons propagate through local calls.
	blocks := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if blocks[fn] != "" {
				continue
			}
			if reason := bodyBlockReason(pass, fd.Body, blocks); reason != "" {
				blocks[fn] = reason
				changed = true
			}
		}
	}

	// Publish the summaries so importing packages can charge calls to
	// these functions with the underlying reason (msm holding its lock
	// across a cache or fault-disk call, for example).
	for fn, reason := range blocks {
		pass.ExportFact(fn, &BlockFact{Reason: reason})
	}

	for _, fd := range decls {
		sweep(pass, fd.Body, blocks)
	}
	return nil
}

// bodyBlockReason returns why the body may block, or "". Function
// literals and defers are separate execution contexts and are skipped.
func bodyBlockReason(pass *analysis.Pass, body *ast.BlockStmt, blocks map[*types.Func]string) string {
	comms := commStmts(body)
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if !comms[n.Pos()] {
				reason = "channel send"
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comms[n.Pos()] {
				reason = "channel receive"
				return false
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				reason = "select"
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); ok {
				reason = "range over channel"
			}
		case *ast.CallExpr:
			reason = callBlockReason(pass, n, blocks)
		}
		return true
	})
	return reason
}

// commStmts collects the positions of channel ops that appear as a
// select comm clause; the select statement itself accounts for their
// blocking, and under a default clause they do not block at all.
func commStmts(body *ast.BlockStmt) map[token.Pos]bool {
	comms := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					comms[m.Pos()] = true
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						comms[m.Pos()] = true
					}
				}
				return true
			})
		}
		return true
	})
	return comms
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// netReadWrite are the blocking entry points of net connections and
// listeners.
var netReadWrite = map[string]bool{"Read": true, "Write": true, "Accept": true}

// simWaits are the virtual-clock waits: methods that advance simulated
// time by running queued events, the analogue of sleeping.
var simWaits = map[string]map[string]bool{
	analysis.ModulePath + "/internal/sim": {"Run": true, "RunUntil": true, "Step": true},
	analysis.ModulePath + "/internal/msm": {"RunRound": true, "RunUntilDone": true, "RunFor": true},
}

// callBlockReason classifies one call, using blocks for same-package
// callees.
func callBlockReason(pass *analysis.Pass, call *ast.CallExpr, blocks map[*types.Func]string) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if recv := analysis.Receiver(pass.TypesInfo, call); recv != nil {
		pkg, typ := analysis.Named(recv)
		switch {
		case pkg == "sync" && name == "Wait" && (typ == "WaitGroup" || typ == "Cond"):
			return fmt.Sprintf("sync.%s.Wait", typ)
		case pkg == "net" && netReadWrite[name]:
			return fmt.Sprintf("net %s", name)
		case simWaits[pkg] != nil && simWaits[pkg][name]:
			return fmt.Sprintf("virtual-clock wait %s.%s", typ, name)
		}
		if isTimedDeviceCall(pass, recv, name) {
			return fmt.Sprintf("timed disk access %s", name)
		}
	}
	if fn.Pkg() == nil {
		return ""
	}
	switch {
	case fn.Pkg().Path() == "time" && name == "Sleep":
		return "time.Sleep"
	case fn.Pkg() == pass.Pkg:
		if r := blocks[fn]; r != "" {
			return fmt.Sprintf("call to %s, which may block (%s)", name, r)
		}
	case hasNetArg(pass, call) && blockingFuncName(name):
		return fmt.Sprintf("net I/O via %s.%s", fn.Pkg().Name(), name)
	case analysis.FirstParty(fn.Pkg().Path()):
		// Cross-package: a may-block fact exported by the callee's own
		// pass (packages are analyzed in dependency order).
		if f, ok := pass.ImportFact(fn); ok {
			if bf, ok := f.(*BlockFact); ok && bf.Reason != "" {
				return fmt.Sprintf("call to %s.%s, which may block (%s)", fn.Pkg().Name(), name, bf.Reason)
			}
		}
	}
	return ""
}

// isTimedDeviceCall reports whether the call is a timed data-path
// method of the disk.Device interface (anything implementing it counts,
// fault wrappers and future striped arrays included).
func isTimedDeviceCall(pass *analysis.Pass, recv types.Type, name string) bool {
	switch name {
	case "Read", "ReadContiguous", "Write":
	default:
		return false
	}
	dev := analysis.ImportedInterface(pass.Pkg, analysis.ModulePath+"/internal/disk", "Device")
	return dev != nil && types.Implements(recv, dev)
}

// hasNetArg reports whether any argument's static type comes from
// package net (net.Conn, net.Listener, concrete conns).
func hasNetArg(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && analysis.IsFromPackage(t, "net") {
			return true
		}
	}
	return false
}

// blockingFuncName reports whether a cross-package function name looks
// like an I/O entry point worth charging to its net-typed argument.
func blockingFuncName(name string) bool {
	for _, prefix := range []string{"Read", "Write", "Serve", "Copy"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// lockEvent is one point of interest in a function body, ordered by
// position.
type lockEvent struct {
	pos     token.Pos
	kind    int    // 0 acquire, 1 release, 2 blocking
	mutex   string // acquire/release: rendering of the mutex expression
	blocked string // blocking: the reason
}

// sweep walks one function body in source order, tracking which
// mutexes are visibly held, and reports blocking calls inside a held
// extent.
func sweep(pass *analysis.Pass, body *ast.BlockStmt, blocks map[*types.Func]string) {
	comms := commStmts(body)
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Independent scope: a closure runs without the spawner's
			// locks (goroutines) or under unknowable ones; recurse
			// separately so its own Lock/blocking pairs are checked.
			sweep(pass, n.Body, blocks)
			return false
		case *ast.DeferStmt:
			// A deferred unlock is represented by never releasing; other
			// deferred calls run at return, outside the linear extent.
			return false
		case *ast.SendStmt:
			if !comms[n.Pos()] {
				events = append(events, lockEvent{pos: n.Pos(), kind: 2, blocked: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comms[n.Pos()] {
				events = append(events, lockEvent{pos: n.Pos(), kind: 2, blocked: "channel receive"})
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				events = append(events, lockEvent{pos: n.Pos(), kind: 2, blocked: "select"})
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Chan); ok {
				events = append(events, lockEvent{pos: n.Pos(), kind: 2, blocked: "range over channel"})
			}
		case *ast.CallExpr:
			if mutex, kind, ok := lockCall(pass, n); ok {
				events = append(events, lockEvent{pos: n.Pos(), kind: kind, mutex: mutex})
				return true
			}
			if reason := callBlockReason(pass, n, blocks); reason != "" {
				events = append(events, lockEvent{pos: n.Pos(), kind: 2, blocked: reason})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]bool)
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.mutex] = true
		case 1:
			delete(held, ev.mutex)
		case 2:
			if len(held) == 0 {
				continue
			}
			names := make([]string, 0, len(held))
			for m := range held {
				names = append(names, m)
			}
			sort.Strings(names)
			pass.Reportf(ev.pos, "%s while holding %s; a critical section must not block — shrink it, or //lint:ignore blockinglock with the design reason",
				ev.blocked, strings.Join(names, ", "))
		}
	}
}

// lockCall classifies x.Lock/RLock/Unlock/RUnlock calls on sync
// mutexes, returning the rendered mutex expression and 0 (acquire) or
// 1 (release).
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (string, int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 0
	case "Unlock", "RUnlock":
		kind = 1
	default:
		return "", 0, false
	}
	recv := analysis.Receiver(pass.TypesInfo, call)
	if recv == nil || !analysis.IsMutex(recv) {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}
