package blockinglock_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/blockinglock"
)

func TestBlockingLock(t *testing.T) {
	analysistest.Run(t, blockinglock.Analyzer)
}
