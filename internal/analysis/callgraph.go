package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared interprocedural layer under the real-time
// path analyzers (allocpath, boundedwork). A function's summary is a
// PathFact: the set of offending sites (allocations, unbounded loops)
// reachable from its body, each carrying the call chain that reaches
// it. Summaries propagate through same-package calls to a fixpoint and
// across package boundaries as exported Facts, so an allocation buried
// in internal/strand is still charged to the msm round loop that can
// reach it.
//
// Roots are declared in source with a doc-comment directive line:
//
//	// rt:hotpath
//
// A root's accumulated sites are reported; a call to a function that
// is itself a root is not descended into (nearest-root attribution:
// every site is reported exactly once, from its closest enclosing
// root). Sites are reported at the offending statement, so the
// //lint:ignore escape hatch is applied where the allocation lives,
// next to the reasoning for it.

// Site is one offending program point in a function's may-reach
// summary: an allocation or a potentially unbounded loop, plus the
// call chain from the summarized function down to it.
type Site struct {
	// Pos locates the offending expression or statement.
	Pos token.Pos
	// What names the construct ("make", "range over map", ...).
	What string
	// Chain lists function display names from the summarized function
	// (first element) down to the one containing the site (last).
	Chain []string
}

// PathFact is the exported per-function summary shared by the path
// analyzers. Root marks rt:hotpath functions so importing packages
// apply nearest-root attribution instead of double-reporting.
type PathFact struct {
	Root  bool
	Sites []Site
}

// AFact marks PathFact as an exportable fact.
func (*PathFact) AFact() {}

// maxPathSites caps one function's summary. The cap exists to bound
// the fixpoint on pathological fan-out; a hot-path function anywhere
// near it has bigger problems than a truncated report.
const maxPathSites = 48

// DeclFunc pairs a parsed function declaration with its type object.
type DeclFunc struct {
	Decl *ast.FuncDecl
	Fn   *types.Func
}

// SourceFuncs returns the package's function declarations that have
// bodies, in source order (file order, then declaration order), so
// fixpoints and reports are deterministic.
func SourceFuncs(pass *Pass) []DeclFunc {
	var out []DeclFunc
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, DeclFunc{Decl: fd, Fn: fn})
		}
	}
	return out
}

// IsHotPathRoot reports whether the declaration carries a
// `// rt:hotpath` doc-comment directive line.
func IsHotPathRoot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "rt:hotpath" {
			return true
		}
	}
	return false
}

// FuncDisplay renders a function for call-chain messages: Type.Name
// for methods, pkg.Name for package functions.
func FuncDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, name := Named(sig.Recv().Type()); name != "" {
			return name + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// FirstParty reports whether the import path belongs to this module.
func FirstParty(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// PathConfig parameterizes the shared reachability engine for one path
// analyzer.
type PathConfig struct {
	// Seeds returns the intrinsic offending sites of one function body
	// (Chain is filled in by the engine).
	Seeds func(pass *Pass, fd *ast.FuncDecl) []Site
	// SkipCall, if non-nil, exempts a call edge from traversal
	// (sanctioned escapes such as the internal/alloc scratch arena).
	SkipCall func(pass *Pass, call *ast.CallExpr, callee *types.Func) bool
	// RootCycleWhat, when non-empty, additionally reports same-package
	// call-graph cycles that re-enter a hot-path root, at the call
	// that closes the cycle.
	RootCycleWhat string
	// Advice closes every diagnostic with the repair options.
	Advice string
}

// callRef is one resolved call edge out of a function body.
type callRef struct {
	callee *types.Func
	pos    token.Pos
}

// RunPath executes the shared engine: seed per-function summaries,
// propagate through calls to a fixpoint, export PathFacts (joining
// method summaries into the first-party interfaces they implement),
// and report every site reachable from a hot-path root.
func RunPath(pass *Pass, cfg PathConfig) error {
	decls := SourceFuncs(pass)

	summaries := make(map[*types.Func]*PathFact, len(decls))
	seen := make(map[*types.Func]map[token.Pos]bool, len(decls))
	calls := make(map[*types.Func][]callRef, len(decls))
	for _, d := range decls {
		sum := &PathFact{Root: IsHotPathRoot(d.Decl)}
		posSet := make(map[token.Pos]bool)
		for _, s := range cfg.Seeds(pass, d.Decl) {
			if posSet[s.Pos] {
				continue
			}
			posSet[s.Pos] = true
			s.Chain = []string{FuncDisplay(d.Fn)}
			sum.Sites = append(sum.Sites, s)
		}
		summaries[d.Fn] = sum
		seen[d.Fn] = posSet
		calls[d.Fn] = collectCalls(pass, cfg, d.Decl.Body)
	}

	// Fixpoint: absorb callee summaries (same-package bodies and
	// imported facts) until no summary grows. Dedup by site position
	// keeps the iteration monotone and terminating even on recursion.
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			sum := summaries[d.Fn]
			for _, c := range calls[d.Fn] {
				var from *PathFact
				if c.callee.Pkg() == pass.Pkg {
					from = summaries[c.callee]
				} else if c.callee.Pkg() != nil && FirstParty(c.callee.Pkg().Path()) {
					if f, ok := pass.facts.get(pass.Analyzer.Name, FuncKey(c.callee)); ok {
						from, _ = f.(*PathFact)
					}
				}
				// Nearest-root attribution: a callee that is itself a
				// hot-path root reports its own sites.
				if from == nil || from.Root {
					continue
				}
				for _, s := range from.Sites {
					if seen[d.Fn][s.Pos] || len(sum.Sites) >= maxPathSites {
						continue
					}
					seen[d.Fn][s.Pos] = true
					chain := make([]string, 0, len(s.Chain)+1)
					chain = append(chain, FuncDisplay(d.Fn))
					chain = append(chain, s.Chain...)
					sum.Sites = append(sum.Sites, Site{Pos: s.Pos, What: s.What, Chain: chain})
					changed = true
				}
			}
		}
	}

	for _, d := range decls {
		sum := summaries[d.Fn]
		if sum.Root || len(sum.Sites) > 0 {
			pass.ExportFact(d.Fn, sum)
		}
	}
	joinInterfaceFacts(pass, summaries)

	reported := make(map[token.Pos]bool)
	for _, d := range decls {
		sum := summaries[d.Fn]
		if !sum.Root {
			continue
		}
		for _, s := range sum.Sites {
			if reported[s.Pos] {
				continue
			}
			reported[s.Pos] = true
			pass.Reportf(s.Pos, "%s on the real-time path, reached via %s — %s",
				s.What, strings.Join(s.Chain, " → "), cfg.Advice)
		}
	}
	if cfg.RootCycleWhat != "" {
		reportRootCycles(pass, cfg, decls, summaries, calls, reported)
	}
	return nil
}

// collectCalls resolves the call edges of one body. Function literals
// are not descended into: their creation is the closure-capture seed,
// and their execution context is not statically known.
func collectCalls(pass *Pass, cfg PathConfig, body *ast.BlockStmt) []callRef {
	var out []callRef
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if cfg.SkipCall != nil && cfg.SkipCall(pass, call, callee) {
			return true
		}
		out = append(out, callRef{callee: callee, pos: call.Pos()})
		return true
	})
	return out
}

// joinInterfaceFacts publishes, for every first-party interface a
// package's concrete types implement, the union of the implementing
// methods' summaries under the interface method's key. Later packages
// calling through the interface (msm through disk.Device, which both
// *disk.Disk and *fault.Disk implement) then see the join of every
// implementation loaded before them in dependency order.
func joinInterfaceFacts(pass *Pass, summaries map[*types.Func]*PathFact) {
	ifaces := firstPartyInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return
	}
	scope := pass.Pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		for _, ifn := range ifaces {
			iface := ifn.Type().Underlying().(*types.Interface)
			impl := types.Type(named)
			if !types.Implements(impl, iface) {
				if !types.Implements(types.NewPointer(named), iface) {
					continue
				}
				impl = types.NewPointer(named)
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, im.Pkg(), im.Name())
				cm, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				var from *PathFact
				if cm.Pkg() == pass.Pkg {
					from = summaries[cm]
				} else if f, ok := pass.facts.get(pass.Analyzer.Name, FuncKey(cm)); ok {
					// Promoted method from an embedded cross-package
					// type (fault.Disk embedding *disk.Disk).
					from, _ = f.(*PathFact)
				}
				if from == nil || (len(from.Sites) == 0 && !from.Root) {
					continue
				}
				key := FuncKey(im)
				joined := &PathFact{}
				if prev, ok := pass.facts.get(pass.Analyzer.Name, key); ok {
					if pf, ok := prev.(*PathFact); ok {
						joined.Root = pf.Root
						joined.Sites = append(joined.Sites, pf.Sites...)
					}
				}
				joined.Root = joined.Root || from.Root
				havePos := make(map[token.Pos]bool, len(joined.Sites))
				for _, s := range joined.Sites {
					havePos[s.Pos] = true
				}
				for _, s := range from.Sites {
					if !havePos[s.Pos] && len(joined.Sites) < maxPathSites {
						havePos[s.Pos] = true
						joined.Sites = append(joined.Sites, s)
					}
				}
				// put cannot fail here: PathFact encodability was
				// proven by the per-function exports above.
				if err := pass.facts.put(pass.Analyzer.Name, key, joined); err != nil {
					panic("analysis: joined fact not encodable: " + err.Error())
				}
			}
		}
	}
}

// firstPartyInterfaces lists the named interface types visible to the
// package: declared in it or exported by a first-party import.
func firstPartyInterfaces(pkg *types.Package) []*types.TypeName {
	var out []*types.TypeName
	collect := func(p *types.Package) {
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && types.IsInterface(named) {
				out = append(out, tn)
			}
		}
	}
	if FirstParty(pkg.Path()) {
		collect(pkg)
	}
	for _, imp := range pkg.Imports() {
		if FirstParty(imp.Path()) {
			collect(imp)
		}
	}
	return out
}

// reportRootCycles flags same-package call cycles that re-enter a
// hot-path root: a round that can recurse into itself has no static
// work bound no matter what its loops look like.
func reportRootCycles(pass *Pass, cfg PathConfig, decls []DeclFunc, summaries map[*types.Func]*PathFact, calls map[*types.Func][]callRef, reported map[token.Pos]bool) {
	for _, root := range decls {
		if !summaries[root.Fn].Root {
			continue
		}
		// Visit every function reachable from the root once (the chain
		// recorded is the first discovery path); any edge from a
		// visited function back to the root closes a cycle.
		var chain []string
		visited := make(map[*types.Func]bool)
		var visit func(fn *types.Func)
		visit = func(fn *types.Func) {
			visited[fn] = true
			chain = append(chain, FuncDisplay(fn))
			for _, c := range calls[fn] {
				if c.callee == root.Fn {
					if !reported[c.pos] {
						reported[c.pos] = true
						pass.Reportf(c.pos, "%s: call re-enters hot-path root %s (%s → %s) — %s",
							cfg.RootCycleWhat, FuncDisplay(root.Fn),
							strings.Join(chain, " → "), FuncDisplay(root.Fn), cfg.Advice)
					}
					continue
				}
				if summaries[c.callee] == nil || visited[c.callee] {
					continue
				}
				visit(c.callee)
			}
			chain = chain[:len(chain)-1]
		}
		visit(root.Fn)
	}
}
