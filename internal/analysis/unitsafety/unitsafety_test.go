package unitsafety_test

import (
	"testing"

	"mmfs/internal/analysis/analysistest"
	"mmfs/internal/analysis/unitsafety"
)

func TestUnitSafety(t *testing.T) {
	analysistest.Run(t, unitsafety.Analyzer)
}
