// Package unitsafety flags conversions that mix the model's float64
// seconds with the simulator's time.Duration nanoseconds. The paper's
// continuity equations (Eqs. 1–18) are stated in seconds, the event
// engine runs on time.Duration, and a raw conversion between the two
// silently mixes units by a factor of 1e9. The only sanctioned
// crossings are the continuity.Seconds and continuity.Duration
// converters (internal/continuity/params.go).
package unitsafety

import (
	"go/ast"
	"go/types"

	"mmfs/internal/analysis"
)

// Analyzer flags direct float64 <-> time.Duration conversions outside
// the blessed converter functions.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "flag raw float64<->time.Duration conversions that bypass " +
		"continuity.Seconds/continuity.Duration and so conflate model " +
		"seconds with nanoseconds",
	PathPrefixes: []string{
		analysis.ModulePath + "/internal/continuity",
		analysis.ModulePath + "/internal/experiments",
		analysis.ModulePath + "/internal/rope",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The converter functions themselves are the sanctioned
			// unit boundary.
			if fd.Recv == nil && (fd.Name.Name == "Seconds" || fd.Name.Name == "Duration") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := pass.TypesInfo.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				argT := pass.TypesInfo.Types[call.Args[0]].Type
				if argT == nil {
					return true
				}
				switch {
				case isDuration(tv.Type) && isFloat(argT):
					pass.Reportf(call.Pos(), "time.Duration built directly from a float64; model seconds must cross through continuity.Duration")
				case isFloat(tv.Type) && isDuration(argT):
					pass.Reportf(call.Pos(), "time.Duration converted directly to float64 (nanoseconds, not model seconds); use continuity.Seconds")
				}
				return true
			})
		}
	}
	return nil
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// isFloat reports whether t is a float64 (or an untyped float
// constant).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Float64 || b.Kind() == types.UntypedFloat
}
