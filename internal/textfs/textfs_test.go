package textfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
)

func newStore(t *testing.T) (*Store, *alloc.Allocator) {
	t.Helper()
	g := disk.Geometry{
		Cylinders: 50, Surfaces: 2, SectorsPerTrack: 16, SectorSize: 512,
		RPM: 3600, MinSeek: 2 * time.Millisecond, MaxSeek: 20 * time.Millisecond,
	}
	d := disk.MustNew(g)
	a, err := alloc.New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(d, a), a
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	data := []byte("the gaps between media blocks hold text files")
	if err := s.Write("readme.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read("readme.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if n, err := s.Size("readme.txt"); err != nil || n != len(data) {
		t.Fatalf("size %d err %v", n, err)
	}
}

func TestMultiExtentFile(t *testing.T) {
	s, _ := newStore(t)
	// 40 KB forces multiple 16-sector extents at 512-byte sectors.
	data := make([]byte, 40<<10)
	rand.New(rand.NewSource(3)).Read(data)
	if err := s.Write("big", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-extent round trip mismatch")
	}
}

func TestOverwriteReplacesAndFrees(t *testing.T) {
	s, a := newStore(t)
	if err := s.Write("f", make([]byte, 20<<10)); err != nil {
		t.Fatal(err)
	}
	bigFree := a.FreeSectors()
	if err := s.Write("f", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if a.FreeSectors() <= bigFree {
		t.Fatal("overwrite did not free the old extents")
	}
	got, _ := s.Read("f")
	if string(got) != "tiny" {
		t.Fatalf("content %q", got)
	}
}

func TestDeleteFreesSectors(t *testing.T) {
	s, a := newStore(t)
	free := a.FreeSectors()
	if err := s.Write("f", make([]byte, 8<<10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if a.FreeSectors() != free {
		t.Fatal("delete leaked sectors")
	}
	if err := s.Delete("f"); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := s.Read("f"); err == nil {
		t.Fatal("read of deleted file accepted")
	}
}

func TestEmptyFileAndEmptyName(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Write("", []byte("x")); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Write("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty file read %v %v", got, err)
	}
}

func TestList(t *testing.T) {
	s, _ := newStore(t)
	for _, n := range []string{"charlie", "alpha", "bravo"} {
		if err := s.Write(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	want := []string{"alpha", "bravo", "charlie"}
	if len(got) != 3 {
		t.Fatalf("list %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list %v, want %v", got, want)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s, a := newStore(t)
	files := map[string][]byte{
		"a.txt": []byte("alpha"),
		"b.bin": make([]byte, 12<<10),
		"c":     {},
	}
	rand.New(rand.NewSource(9)).Read(files["b.bin"])
	for n, d := range files {
		if err := s.Write(n, d); err != nil {
			t.Fatal(err)
		}
	}
	data := s.Marshal()

	// Restore into a fresh store over the same disk/allocator.
	s2 := NewStore(sDisk(s), a)
	if err := s2.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	for n, want := range files {
		got, err := s2.Read(n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("file %q differs after restore", n)
		}
	}
	if err := s2.Unmarshal(data[:3]); err == nil {
		t.Fatal("truncated table accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if err := s2.Unmarshal(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

// sDisk exposes the store's disk for the restore test.
func sDisk(s *Store) *disk.Disk { return s.d.(*disk.Disk) }

// Property: random write/overwrite/delete sequences never lose data:
// reads always match the latest write.
func TestTextFSQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := disk.Geometry{
			Cylinders: 50, Surfaces: 2, SectorsPerTrack: 16, SectorSize: 512,
			RPM: 3600, MinSeek: 2 * time.Millisecond, MaxSeek: 20 * time.Millisecond,
		}
		d := disk.MustNew(g)
		a, err := alloc.New(g, 2)
		if err != nil {
			return false
		}
		s := NewStore(d, a)
		rng := rand.New(rand.NewSource(seed))
		shadow := make(map[string][]byte)
		names := []string{"a", "b", "c", "d"}
		for step := 0; step < 40; step++ {
			n := names[rng.Intn(len(names))]
			switch rng.Intn(3) {
			case 0, 1:
				data := make([]byte, rng.Intn(4096))
				rng.Read(data)
				if err := s.Write(n, data); err != nil {
					return false
				}
				shadow[n] = data
			case 2:
				if _, ok := shadow[n]; ok {
					if err := s.Delete(n); err != nil {
						return false
					}
					delete(shadow, n)
				}
			}
		}
		for n, want := range shadow {
			got, err := s.Read(n)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return s.Len() == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
