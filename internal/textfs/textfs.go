// Package textfs implements conventional (non-real-time) file storage
// inside the multimedia file system, realizing the paper's observation
// that "a common file server can … integrate the functions of both a
// conventional text file server and a multimedia file server by
// employing constrained block allocation for (real-time) media
// strands, and using the gaps between successive blocks of a media
// strand to store text files" (§3).
//
// Text files use the allocator's unconstrained first-fit path, which
// naturally lands in the gaps constrained media allocation leaves
// between media blocks. Text reads and writes are untimed: they are
// best-effort traffic with no continuity requirement.
package textfs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
)

// file is one stored text file.
type file struct {
	name string
	size int
	runs []alloc.Run
}

// Store is a flat namespace of text files sharing the media
// allocator.
type Store struct {
	d     disk.Device
	a     *alloc.Allocator
	files map[string]*file
	// extentSectors caps each extent so files interleave with media
	// gaps instead of demanding large contiguous runs.
	extentSectors int
}

// NewStore creates an empty text-file store over the shared disk and
// allocator.
func NewStore(d disk.Device, a *alloc.Allocator) *Store {
	return &Store{d: d, a: a, files: make(map[string]*file), extentSectors: 16}
}

// Write creates or replaces a file with the given contents.
func (s *Store) Write(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("textfs: empty file name")
	}
	if old, ok := s.files[name]; ok {
		s.release(old)
		delete(s.files, name)
	}
	f := &file{name: name, size: len(data)}
	ss := s.d.Geometry().SectorSize
	remaining := data
	for len(remaining) > 0 {
		want := (len(remaining) + ss - 1) / ss
		if want > s.extentSectors {
			want = s.extentSectors
		}
		run, err := s.allocateExtent(want)
		if err != nil {
			s.release(f)
			return err
		}
		n := run.Sectors * ss
		if n > len(remaining) {
			n = len(remaining)
		}
		if err := s.d.WriteAt(run.LBA, remaining[:n]); err != nil {
			s.a.Free(run)
			s.release(f)
			return err
		}
		f.runs = append(f.runs, run)
		remaining = remaining[n:]
	}
	s.files[name] = f
	return nil
}

// allocateExtent gets up to want sectors, shrinking on fragmentation.
func (s *Store) allocateExtent(want int) (alloc.Run, error) {
	for n := want; n >= 1; n /= 2 {
		if run, err := s.a.Allocate(n); err == nil {
			return run, nil
		}
	}
	return alloc.Run{}, fmt.Errorf("textfs: %w", alloc.ErrNoSpace)
}

// Read returns a file's contents.
func (s *Store) Read(name string) ([]byte, error) {
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("textfs: no such file %q", name)
	}
	ss := s.d.Geometry().SectorSize
	out := make([]byte, 0, f.size)
	remaining := f.size
	for _, run := range f.runs {
		buf, err := s.d.ReadAt(run.LBA, run.Sectors)
		if err != nil {
			return nil, err
		}
		n := run.Sectors * ss
		if n > remaining {
			n = remaining
		}
		out = append(out, buf[:n]...)
		remaining -= n
	}
	return out, nil
}

// Delete removes a file and frees its sectors.
func (s *Store) Delete(name string) error {
	f, ok := s.files[name]
	if !ok {
		return fmt.Errorf("textfs: no such file %q", name)
	}
	s.release(f)
	delete(s.files, name)
	return nil
}

func (s *Store) release(f *file) {
	for _, run := range f.runs {
		s.a.Free(run)
	}
	f.runs = nil
}

// Size reports a file's length in bytes.
func (s *Store) Size(name string) (int, error) {
	f, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("textfs: no such file %q", name)
	}
	return f.size, nil
}

// List names all files, sorted.
func (s *Store) List() []string {
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of files.
func (s *Store) Len() int { return len(s.files) }

// Extents lists the disk runs backing a file; the integrity checker
// uses it. An unknown name yields nil.
func (s *Store) Extents(name string) []alloc.Run {
	f, ok := s.files[name]
	if !ok {
		return nil
	}
	return append([]alloc.Run(nil), f.runs...)
}

const tableMagic = 0x4d4d5446 // "MMTF"

// Marshal serializes the file table for the metadata region.
func (s *Store) Marshal() []byte {
	var w bytes.Buffer
	binary.Write(&w, binary.LittleEndian, uint32(tableMagic))
	binary.Write(&w, binary.LittleEndian, uint32(len(s.files)))
	for _, name := range s.List() {
		f := s.files[name]
		binary.Write(&w, binary.LittleEndian, uint32(len(f.name)))
		w.WriteString(f.name)
		binary.Write(&w, binary.LittleEndian, uint64(f.size))
		binary.Write(&w, binary.LittleEndian, uint32(len(f.runs)))
		for _, r := range f.runs {
			binary.Write(&w, binary.LittleEndian, uint32(r.LBA))
			binary.Write(&w, binary.LittleEndian, uint32(r.Sectors))
		}
	}
	return w.Bytes()
}

// Unmarshal restores the file table.
func (s *Store) Unmarshal(data []byte) error {
	r := bytes.NewReader(data)
	var magic, count uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != tableMagic {
		return fmt.Errorf("textfs: bad table magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	s.files = make(map[string]*file, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := r.Read(name); err != nil {
			return err
		}
		var size uint64
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return err
		}
		var nRuns uint32
		if err := binary.Read(r, binary.LittleEndian, &nRuns); err != nil {
			return err
		}
		f := &file{name: string(name), size: int(size)}
		for j := uint32(0); j < nRuns; j++ {
			var lba, sec uint32
			if err := binary.Read(r, binary.LittleEndian, &lba); err != nil {
				return err
			}
			if err := binary.Read(r, binary.LittleEndian, &sec); err != nil {
				return err
			}
			f.runs = append(f.runs, alloc.Run{LBA: int(lba), Sectors: int(sec)})
		}
		s.files[f.name] = f
	}
	return nil
}
