// Package fault provides a deterministic, seedable fault-injection
// wrapper around the simulated disk. The paper's continuity model
// (§3–§4) assumes a drive that always meets its worst-case service
// time; real drives throw transient read errors, latency spikes, and
// grown media defects that consume exactly the slack the admission
// bound n·α + n·k·β ≤ k·γ reserves. A fault.Disk wraps a disk.Disk
// behind the same disk.Device surface and injects those failures from
// a Scenario, so the storage manager's fault-tolerant service path
// (internal/msm) can be exercised reproducibly: the same seed always
// yields the same fault sequence.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// SectorRange is a half-open range [Start, Start+Count) of LBAs that
// persistently fail — the simulated equivalent of grown media defects.
type SectorRange struct {
	Start int
	Count int
}

// overlaps reports whether the range intersects [lba, lba+n).
func (r SectorRange) overlaps(lba, n int) bool {
	return lba < r.Start+r.Count && r.Start < lba+n
}

// Scenario configures the injected fault mix. The zero value injects
// nothing (Active reports false) and costs nothing: core leaves the
// raw disk in place instead of wrapping it.
type Scenario struct {
	// Seed seeds the deterministic fault stream; runs with equal seeds
	// and equal access sequences see identical faults.
	Seed int64
	// ReadErrorRate is the probability a timed read fails with
	// ErrTransient (a retry may succeed).
	ReadErrorRate float64
	// WriteErrorRate is the probability a timed write fails with
	// ErrTransient.
	WriteErrorRate float64
	// SlowdownRate is the probability a timed access is hit by a
	// latency spike: its service time is multiplied by SlowdownFactor,
	// and the extra virtual time is charged to the caller's round.
	SlowdownRate float64
	// SlowdownFactor scales a spiked access's service time (≥ 1).
	SlowdownFactor float64
	// BadSectors are persistent defects: any timed access overlapping
	// one fails with ErrBadSector no matter how often it is retried.
	BadSectors []SectorRange
	// DieRound, when > 0, kills the whole device after that many
	// virtual service rounds: once the wrapping caller has advanced
	// the round counter past DieRound (the MSM calls AdvanceRound at
	// each round boundary), every timed access fails permanently with
	// ErrDeviceDead. This is the seeded, replayable whole-spindle loss
	// the mirrored-array rebuild experiments script.
	DieRound int
}

// Active reports whether the scenario injects anything at all.
func (s Scenario) Active() bool {
	return s.ReadErrorRate > 0 || s.WriteErrorRate > 0 || s.SlowdownRate > 0 ||
		len(s.BadSectors) > 0 || s.DieRound > 0
}

// Validate reports an error for an unusable scenario.
func (s Scenario) Validate() error {
	check := func(name string, v float64) error {
		if !(v >= 0 && v <= 1) { // also rejects NaN
			return fmt.Errorf("fault: %s rate %g outside [0,1]", name, v)
		}
		return nil
	}
	if err := check("read-error", s.ReadErrorRate); err != nil {
		return err
	}
	if err := check("write-error", s.WriteErrorRate); err != nil {
		return err
	}
	if err := check("slowdown", s.SlowdownRate); err != nil {
		return err
	}
	if s.SlowdownRate > 0 && !(s.SlowdownFactor >= 1 && s.SlowdownFactor <= 1e6) {
		return fmt.Errorf("fault: slowdown factor %g outside [1,1e6]", s.SlowdownFactor)
	}
	for _, r := range s.BadSectors {
		if r.Start < 0 || r.Count < 1 {
			return fmt.Errorf("fault: bad-sector range %d+%d invalid", r.Start, r.Count)
		}
	}
	if s.DieRound < 0 {
		return fmt.Errorf("fault: die round %d negative", s.DieRound)
	}
	return nil
}

// badSector reports whether [lba, lba+n) touches a persistent defect.
func (s Scenario) badSector(lba, n int) bool {
	for _, r := range s.BadSectors {
		if r.overlaps(lba, n) {
			return true
		}
	}
	return false
}

// ParseScenario parses the compact scenario syntax used by the mmfsd
// -fault-scenario flag: comma-separated key=value items.
//
//	seed=42            fault-stream seed (default 1)
//	readerr=0.02       transient read-error probability
//	writeerr=0.01      transient write-error probability
//	slow=0.05x4        5% of accesses take 4× their service time
//	bad=100+50         sectors [100,150) persistently fail (repeatable)
//	die=12             the whole device fails permanently after round 12
//
// The empty string, "off", and "none" parse to the inactive zero
// scenario.
func ParseScenario(spec string) (Scenario, error) {
	sc := Scenario{Seed: 1}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return Scenario{}, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Scenario{}, fmt.Errorf("fault: scenario item %q is not key=value", item)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Scenario{}, fmt.Errorf("fault: seed %q: %v", val, err)
			}
			sc.Seed = n
		case "readerr":
			p, err := parseRate(val)
			if err != nil {
				return Scenario{}, fmt.Errorf("fault: readerr %q: %v", val, err)
			}
			sc.ReadErrorRate = p
		case "writeerr":
			p, err := parseRate(val)
			if err != nil {
				return Scenario{}, fmt.Errorf("fault: writeerr %q: %v", val, err)
			}
			sc.WriteErrorRate = p
		case "slow":
			rate, factor, ok := strings.Cut(val, "x")
			if !ok {
				return Scenario{}, fmt.Errorf("fault: slow %q is not rate x factor", val)
			}
			p, err := parseRate(rate)
			if err != nil {
				return Scenario{}, fmt.Errorf("fault: slow rate %q: %v", rate, err)
			}
			f, err := strconv.ParseFloat(factor, 64)
			if err != nil || !(f >= 1 && f <= 1e6) {
				return Scenario{}, fmt.Errorf("fault: slow factor %q outside [1,1e6]", factor)
			}
			sc.SlowdownRate, sc.SlowdownFactor = p, f
		case "bad":
			start, count, ok := strings.Cut(val, "+")
			if !ok {
				return Scenario{}, fmt.Errorf("fault: bad %q is not start+count", val)
			}
			lo, err := strconv.Atoi(start)
			if err != nil || lo < 0 {
				return Scenario{}, fmt.Errorf("fault: bad start %q", start)
			}
			n, err := strconv.Atoi(count)
			if err != nil || n < 1 {
				return Scenario{}, fmt.Errorf("fault: bad count %q", count)
			}
			sc.BadSectors = append(sc.BadSectors, SectorRange{Start: lo, Count: n})
		case "die":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Scenario{}, fmt.Errorf("fault: die round %q, want a round number >= 1", val)
			}
			sc.DieRound = n
		default:
			return Scenario{}, fmt.Errorf("fault: unknown scenario key %q", key)
		}
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// parseRate parses a probability in [0,1].
func parseRate(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if !(p >= 0 && p <= 1) { // also rejects NaN
		return 0, fmt.Errorf("rate %g outside [0,1]", p)
	}
	return p, nil
}

// String renders the scenario back in ParseScenario's syntax.
func (s Scenario) String() string {
	if !s.Active() {
		return "off"
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	if s.ReadErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("readerr=%g", s.ReadErrorRate))
	}
	if s.WriteErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("writeerr=%g", s.WriteErrorRate))
	}
	if s.SlowdownRate > 0 {
		parts = append(parts, fmt.Sprintf("slow=%gx%g", s.SlowdownRate, s.SlowdownFactor))
	}
	for _, r := range s.BadSectors {
		parts = append(parts, fmt.Sprintf("bad=%d+%d", r.Start, r.Count))
	}
	if s.DieRound > 0 {
		parts = append(parts, fmt.Sprintf("die=%d", s.DieRound))
	}
	return strings.Join(parts, ",")
}
