package fault

import "testing"

// FuzzParseScenario exercises the -fault-scenario grammar: parsing
// must never panic, and any scenario that parses must round-trip
// through String back to an equivalent scenario (same canonical form).
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"",
		"off",
		"none",
		"seed=42",
		"readerr=0.02",
		"writeerr=0.01",
		"slow=0.05x4",
		"bad=100+50",
		"seed=7,readerr=0.05,writeerr=0.01,slow=0.1x4,bad=100+50,bad=900+8",
		"seed=-1,readerr=1,slow=1x1",
		"die=12",
		"seed=3,die=12,readerr=0.1",
		"die=0",
		"die=-1",
		"die=",
		"readerr=2",
		"slow=0.5x",
		"bad=+",
		"seed=,readerr=",
		",,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := ParseScenario(spec)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("ParseScenario(%q) accepted invalid scenario: %v", spec, err)
		}
		canonical := sc.String()
		again, err := ParseScenario(canonical)
		if err != nil {
			t.Fatalf("String() of parsed %q does not reparse: %q: %v", spec, canonical, err)
		}
		if again.String() != canonical {
			t.Fatalf("canonical form unstable: %q -> %q", canonical, again.String())
		}
	})
}
