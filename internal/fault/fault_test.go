package fault

import (
	"errors"
	"testing"
	"time"

	"mmfs/internal/disk"
	"mmfs/internal/obs"
)

func testGeometry() disk.Geometry {
	return disk.Geometry{
		Cylinders:       64,
		Surfaces:        2,
		SectorsPerTrack: 16,
		SectorSize:      512,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         30 * time.Millisecond,
		Heads:           2,
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("seed=7,readerr=0.05,writeerr=0.01,slow=0.1x4,bad=100+50,bad=900+8")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sc.Seed != 7 || sc.ReadErrorRate != 0.05 || sc.WriteErrorRate != 0.01 {
		t.Fatalf("rates wrong: %+v", sc)
	}
	if sc.SlowdownRate != 0.1 || sc.SlowdownFactor != 4 {
		t.Fatalf("slowdown wrong: %+v", sc)
	}
	if len(sc.BadSectors) != 2 || sc.BadSectors[0] != (SectorRange{100, 50}) || sc.BadSectors[1] != (SectorRange{900, 8}) {
		t.Fatalf("bad sectors wrong: %+v", sc.BadSectors)
	}
	if !sc.Active() {
		t.Fatal("scenario should be active")
	}
	// String must round-trip to an equivalent scenario.
	again, err := ParseScenario(sc.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", sc.String(), err)
	}
	if again.String() != sc.String() {
		t.Fatalf("round trip %q != %q", again.String(), sc.String())
	}
}

func TestParseScenarioInactive(t *testing.T) {
	for _, spec := range []string{"", "off", "none", "  "} {
		sc, err := ParseScenario(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		if sc.Active() {
			t.Fatalf("parse %q: should be inactive", spec)
		}
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"key=1",
		"readerr=2",
		"readerr=-0.5",
		"readerr=x",
		"slow=0.5",
		"slow=0.5x0.5",
		"bad=10",
		"bad=-1+5",
		"bad=10+0",
		"seed=abc",
	} {
		if _, err := ParseScenario(spec); err == nil {
			t.Errorf("parse %q: expected error", spec)
		}
	}
}

// TestInactivePassThrough verifies the wrapper is a no-op under the
// zero scenario: identical data, identical service times, zero fault
// stats.
func TestInactivePassThrough(t *testing.T) {
	base := disk.MustNew(testGeometry())
	ref := disk.MustNew(testGeometry())
	fd := New(base, Scenario{})
	payload := make([]byte, 3*512)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := fd.WriteAt(40, payload); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteAt(40, payload); err != nil {
		t.Fatal(err)
	}
	got, tGot, err := fd.Read(0, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, tWant, err := ref.Read(0, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tGot != tWant {
		t.Fatalf("service time altered: %v != %v", tGot, tWant)
	}
	if string(got) != string(want) {
		t.Fatal("data altered")
	}
	if fd.FaultStats() != (Stats{}) {
		t.Fatalf("inactive scenario injected faults: %+v", fd.FaultStats())
	}
}

// TestDeterminism verifies equal seeds and access sequences produce
// identical fault streams.
func TestDeterminism(t *testing.T) {
	run := func() ([]bool, Stats) {
		fd := New(disk.MustNew(testGeometry()), Scenario{Seed: 42, ReadErrorRate: 0.3, SlowdownRate: 0.2, SlowdownFactor: 2})
		var errs []bool
		for i := 0; i < 200; i++ {
			_, _, err := fd.Read(0, (i*3)%1024, 1)
			errs = append(errs, err != nil)
		}
		return errs, fd.FaultStats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream diverged at access %d", i)
		}
	}
	if sa.ReadErrors == 0 {
		t.Fatal("expected some injected read errors at rate 0.3")
	}
}

func TestBadSectorPersistent(t *testing.T) {
	fd := New(disk.MustNew(testGeometry()), Scenario{Seed: 1, BadSectors: []SectorRange{{Start: 10, Count: 4}}})
	for i := 0; i < 5; i++ {
		_, _, err := fd.Read(0, 12, 2)
		if !errors.Is(err, ErrBadSector) {
			t.Fatalf("attempt %d: got %v, want ErrBadSector", i, err)
		}
	}
	// Adjacent-but-disjoint access succeeds.
	if _, _, err := fd.Read(0, 14, 2); err != nil {
		t.Fatalf("disjoint read: %v", err)
	}
	// Writes into the defect fail too.
	if _, err := fd.Write(0, 11, make([]byte, 512)); !errors.Is(err, ErrBadSector) {
		t.Fatal("write into bad range should fail")
	}
	if fd.FaultStats().BadSectors != 6 {
		t.Fatalf("bad sector count %d, want 6", fd.FaultStats().BadSectors)
	}
}

func TestSlowdownChargesVirtualTime(t *testing.T) {
	base := disk.MustNew(testGeometry())
	ref := disk.MustNew(testGeometry())
	fd := New(base, Scenario{Seed: 1, SlowdownRate: 1, SlowdownFactor: 3})
	_, tGot, err := fd.Read(0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, tWant, err := ref.Read(0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tGot != 3*tWant {
		t.Fatalf("spiked time %v, want 3×%v", tGot, tWant)
	}
	st := fd.FaultStats()
	if st.Slowdowns != 1 || st.SpikeTime != 2*tWant {
		t.Fatalf("spike stats %+v, want 1 slowdown of %v", st, 2*tWant)
	}
}

func TestFailNextReadsAndObs(t *testing.T) {
	fd := New(disk.MustNew(testGeometry()), Scenario{Seed: 1, ReadErrorRate: 0.0001})
	reg := obs.NewRegistry()
	fd.SetObs(reg)
	fd.FailNextReads(2)
	for i := 0; i < 2; i++ {
		if _, _, err := fd.Read(0, 0, 1); !errors.Is(err, ErrTransient) {
			t.Fatalf("forced read %d: got %v", i, err)
		}
	}
	if _, _, err := fd.Read(0, 0, 1); err != nil {
		t.Fatalf("after forced failures: %v", err)
	}
	if got := reg.Counter("mmfs_fault_read_errors_total").Value(); got != 2 {
		t.Fatalf("obs counter %d, want 2", got)
	}
}

// TestWriteTransient verifies write-path injection reports the base
// service time alongside the error.
func TestWriteTransient(t *testing.T) {
	fd := New(disk.MustNew(testGeometry()), Scenario{Seed: 3, WriteErrorRate: 1})
	tw, err := fd.Write(0, 50, make([]byte, 512))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v, want ErrTransient", err)
	}
	if tw <= 0 {
		t.Fatal("failed write should still report its service time")
	}
	if fd.FaultStats().WriteErrors != 1 {
		t.Fatalf("write error count %d", fd.FaultStats().WriteErrors)
	}
}

// TestDieRound verifies whole-device death: the device serves normally
// until the caller's round counter passes DieRound, then every timed
// access fails permanently with ErrDeviceDead.
func TestDieRound(t *testing.T) {
	sc, err := ParseScenario("die=3")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sc.DieRound != 3 || !sc.Active() {
		t.Fatalf("die scenario wrong: %+v", sc)
	}
	again, err := ParseScenario(sc.String())
	if err != nil || again.DieRound != 3 {
		t.Fatalf("round trip %q: %+v, %v", sc.String(), again, err)
	}
	fd := New(disk.MustNew(testGeometry()), sc)
	buf := make([]byte, testGeometry().SectorSize)
	// Rounds 1..3: alive.
	for r := 1; r <= 3; r++ {
		fd.AdvanceRound()
		if _, err := fd.ReadInto(0, 0, 1, buf); err != nil {
			t.Fatalf("round %d read: %v", r, err)
		}
	}
	if fd.Dead() {
		t.Fatal("dead before DieRound passed")
	}
	// Round 4 onward: dead, reads and writes alike, forever.
	fd.AdvanceRound()
	if !fd.Dead() {
		t.Fatal("not dead after DieRound passed")
	}
	for i := 0; i < 3; i++ {
		if _, err := fd.ReadInto(0, 0, 1, buf); !errors.Is(err, ErrDeviceDead) {
			t.Fatalf("dead read %d: %v, want ErrDeviceDead", i, err)
		}
	}
	if _, err := fd.Write(0, 0, buf); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("dead write: %v, want ErrDeviceDead", err)
	}
	if st := fd.FaultStats(); st.DeadErrors != 4 {
		t.Fatalf("DeadErrors = %d, want 4", st.DeadErrors)
	}
	// Untimed metadata access stays alive (the wrapper only kills the
	// timed data path, like the other scenario knobs).
	if _, err := fd.ReadAt(0, 1); err != nil {
		t.Fatalf("untimed read after death: %v", err)
	}
}

// TestDieRoundParseErrors rejects non-positive or malformed rounds.
func TestDieRoundParseErrors(t *testing.T) {
	for _, spec := range []string{"die=0", "die=-1", "die=", "die=x"} {
		if _, err := ParseScenario(spec); err == nil {
			t.Errorf("parse %q: expected error", spec)
		}
	}
}
