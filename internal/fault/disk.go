package fault

import (
	"errors"
	"math/rand"
	"time"

	"mmfs/internal/disk"
	"mmfs/internal/obs"
)

// ErrTransient is a read or write failure that a bounded retry may
// clear (the drive's "recovered after retry" class).
var ErrTransient = errors.New("fault: transient error")

// ErrBadSector is a persistent media defect: retrying the same access
// always fails. Callers must degrade or replan, never retry.
var ErrBadSector = errors.New("fault: bad sector")

// ErrDeviceDead is a whole-device failure (Scenario.DieRound): every
// timed access fails, permanently. Like ErrBadSector it is never worth
// retrying; unlike it, the mirror layer can re-steer around it.
var ErrDeviceDead = errors.New("fault: device dead")

// Stats counts injected faults.
type Stats struct {
	ReadErrors  uint64
	WriteErrors uint64
	BadSectors  uint64
	DeadErrors  uint64
	Slowdowns   uint64
	// SpikeTime is the total extra virtual service time latency spikes
	// added on top of the base disk's timing model.
	SpikeTime time.Duration
}

// Disk wraps a simulated disk.Disk behind the disk.Device surface,
// injecting the Scenario's faults into the timed data path. Untimed
// metadata access (ReadAt/WriteAt) and PeekServiceTime (a planning
// estimate, not an access) pass through unmodified. Like the disk it
// wraps, a Disk is not safe for concurrent use.
type Disk struct {
	*disk.Disk
	sc    Scenario
	rng   *rand.Rand
	stats Stats
	// forcedFails makes the next n timed reads fail with ErrTransient
	// regardless of the rates; tests use it to script exact failures.
	forcedFails int
	// round counts the caller's virtual service rounds (the MSM calls
	// AdvanceRound at each round boundary); once it passes
	// Scenario.DieRound the device is dead.
	round int

	readErrs, writeErrs *obs.Counter
	badSectors          *obs.Counter
	slowdowns           *obs.Counter
	spikeNs             *obs.Counter
}

var _ disk.Device = (*Disk)(nil)

// New wraps base with the scenario's fault stream.
func New(base *disk.Disk, sc Scenario) *Disk {
	return &Disk{Disk: base, sc: sc, rng: rand.New(rand.NewSource(sc.Seed))}
}

// Base returns the wrapped disk.
func (d *Disk) Base() *disk.Disk { return d.Disk }

// Scenario returns the active scenario.
func (d *Disk) Scenario() Scenario { return d.sc }

// FaultStats returns a snapshot of the injected-fault counters.
func (d *Disk) FaultStats() Stats { return d.stats }

// FailNextReads forces the next n timed reads to fail with
// ErrTransient, ahead of any probabilistic injection. Tests use it to
// script exact fault placements.
func (d *Disk) FailNextReads(n int) { d.forcedFails = n }

// AdvanceRound advances the virtual round counter driving DieRound
// scenarios; the MSM calls it once per service round.
func (d *Disk) AdvanceRound() { d.round++ }

// Dead reports whether a DieRound scenario has killed the device.
func (d *Disk) Dead() bool { return d.sc.DieRound > 0 && d.round > d.sc.DieRound }

// dieError records and returns the permanent whole-device failure.
func (d *Disk) dieError(read bool) error {
	d.stats.DeadErrors++
	if read {
		d.stats.ReadErrors++
		if d.readErrs != nil {
			d.readErrs.Inc()
		}
	} else {
		d.stats.WriteErrors++
		if d.writeErrs != nil {
			d.writeErrs.Inc()
		}
	}
	return ErrDeviceDead
}

// SetObs mirrors the fault counters into an observability registry.
func (d *Disk) SetObs(reg *obs.Registry) {
	d.readErrs = reg.Counter("mmfs_fault_read_errors_total")
	d.writeErrs = reg.Counter("mmfs_fault_write_errors_total")
	d.badSectors = reg.Counter("mmfs_fault_bad_sector_errors_total")
	d.slowdowns = reg.Counter("mmfs_fault_slowdowns_total")
	d.spikeNs = reg.Counter("mmfs_fault_spike_ns_total")
}

// injectRead applies the fault stream to a completed timed read: the
// base disk already charged t and moved the head (a real drive spends
// the positioning time before discovering the error).
func (d *Disk) injectRead(lba, n int, data []byte, t time.Duration) ([]byte, time.Duration, error) {
	if d.Dead() {
		return nil, t, d.dieError(true)
	}
	if d.sc.badSector(lba, n) {
		d.stats.BadSectors++
		if d.badSectors != nil {
			d.badSectors.Inc()
		}
		return nil, t, ErrBadSector
	}
	if d.forcedFails > 0 {
		d.forcedFails--
		d.stats.ReadErrors++
		if d.readErrs != nil {
			d.readErrs.Inc()
		}
		return nil, t, ErrTransient
	}
	if d.sc.ReadErrorRate > 0 && d.rng.Float64() < d.sc.ReadErrorRate {
		d.stats.ReadErrors++
		if d.readErrs != nil {
			d.readErrs.Inc()
		}
		return nil, t, ErrTransient
	}
	return data, d.maybeSlow(t), nil
}

// maybeSlow applies a latency spike to service time t.
func (d *Disk) maybeSlow(t time.Duration) time.Duration {
	if d.sc.SlowdownRate > 0 && d.rng.Float64() < d.sc.SlowdownRate {
		spiked := time.Duration(float64(t) * d.sc.SlowdownFactor)
		d.stats.Slowdowns++
		d.stats.SpikeTime += spiked - t
		if d.slowdowns != nil {
			d.slowdowns.Inc()
			d.spikeNs.Add(uint64(spiked - t))
		}
		return spiked
	}
	return t
}

// Read performs the base timed read, then injects scenario faults.
func (d *Disk) Read(h, lba, n int) ([]byte, time.Duration, error) {
	data, t, err := d.Disk.Read(h, lba, n)
	if err != nil {
		return nil, t, err
	}
	return d.injectRead(lba, n, data, t)
}

// ReadInto performs the allocation-free base read, then injects
// scenario faults. dst already holds the data when a fault is
// reported; callers treat the read as failed and retry.
//
// rt:hotpath
func (d *Disk) ReadInto(h, lba, n int, dst []byte) (time.Duration, error) {
	t, err := d.Disk.ReadInto(h, lba, n, dst)
	if err != nil {
		return t, err
	}
	_, t, err = d.injectRead(lba, n, dst, t)
	return t, err
}

// ReadContiguous mirrors Read for run-continuation transfers.
func (d *Disk) ReadContiguous(h, lba, n int) ([]byte, time.Duration, error) {
	data, t, err := d.Disk.ReadContiguous(h, lba, n)
	if err != nil {
		return nil, t, err
	}
	return d.injectRead(lba, n, data, t)
}

// Write performs the base timed write, then injects scenario faults.
// The simulated store already holds the data when a fault is reported,
// which mirrors a drive failing on verify rather than on transfer.
func (d *Disk) Write(h, lba int, data []byte) (time.Duration, error) {
	t, err := d.Disk.Write(h, lba, data)
	if err != nil {
		return t, err
	}
	if d.Dead() {
		return t, d.dieError(false)
	}
	n := (len(data) + d.Geometry().SectorSize - 1) / d.Geometry().SectorSize
	if d.sc.badSector(lba, n) {
		d.stats.BadSectors++
		if d.badSectors != nil {
			d.badSectors.Inc()
		}
		return t, ErrBadSector
	}
	if d.sc.WriteErrorRate > 0 && d.rng.Float64() < d.sc.WriteErrorRate {
		d.stats.WriteErrors++
		if d.writeErrs != nil {
			d.writeErrs.Inc()
		}
		return t, ErrTransient
	}
	return d.maybeSlow(t), nil
}
