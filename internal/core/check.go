package core

import (
	"fmt"

	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

// Problem is one inconsistency found by Check.
type Problem struct {
	// Kind is a short category ("leak", "overlap", "unallocated",
	// "dangling-ref", "interest", "range").
	Kind string
	// Detail describes the finding.
	Detail string
}

// String renders the problem.
func (p Problem) String() string { return fmt.Sprintf("%s: %s", p.Kind, p.Detail) }

// Check is the file system's integrity checker (fsck): it verifies
// that every reachable structure — superblock tables, strand media and
// index blocks, text-file extents — is marked allocated, that no two
// structures overlap, that the allocator tracks no unreachable
// sectors, that every rope reference resolves to a registered strand
// within range, and that the interests table matches the ropes. It is
// read-only; callers decide what to do about findings.
func (fs *FS) Check() []Problem {
	var problems []Problem
	total := fs.a.TotalSectors()
	// owner[i] names the structure claiming sector i.
	owner := make([]string, total)

	claim := func(name string, lba, n int) {
		if lba < 0 || n < 0 || lba+n > total {
			problems = append(problems, Problem{Kind: "range",
				Detail: fmt.Sprintf("%s claims sectors [%d,%d) outside the disk", name, lba, lba+n)})
			return
		}
		for i := lba; i < lba+n; i++ {
			if owner[i] != "" {
				problems = append(problems, Problem{Kind: "overlap",
					Detail: fmt.Sprintf("sector %d claimed by both %s and %s", i, owner[i], name)})
				return
			}
			owner[i] = name
			if !fs.a.InUse(i) {
				problems = append(problems, Problem{Kind: "unallocated",
					Detail: fmt.Sprintf("%s uses sector %d but the allocator marks it free", name, i)})
				return
			}
		}
	}

	// Metadata region.
	claim("superblock", 0, 1)
	claim("bitmap", fs.bitmapLBA, fs.bitmapSectors)
	if fs.strandTab.Sectors > 0 {
		claim("strand-table", fs.strandTab.LBA, fs.strandTab.Sectors)
	}
	if fs.ropeTab.Sectors > 0 {
		claim("rope-table", fs.ropeTab.LBA, fs.ropeTab.Sectors)
	}
	if fs.textTab.Sectors > 0 {
		claim("text-table", fs.textTab.LBA, fs.textTab.Sectors)
	}

	// Strands: media blocks and index blocks.
	for _, id := range fs.strands.IDs() {
		s := fs.strands.MustGet(id)
		for _, run := range s.MediaRuns() {
			claim(fmt.Sprintf("strand-%d-media", id), run.LBA, run.Sectors)
		}
		for _, run := range s.MetaRuns() {
			claim(fmt.Sprintf("strand-%d-index", id), run.LBA, run.Sectors)
		}
	}

	// Text files.
	for _, name := range fs.text.List() {
		for _, run := range fs.text.Extents(name) {
			claim(fmt.Sprintf("text-%q", name), run.LBA, run.Sectors)
		}
	}

	// Rope references resolve and stay within their strands.
	truth := make(map[uint64][]strand.ID)
	for _, rid := range fs.ropes.IDs() {
		r, _ := fs.ropes.Get(rid)
		truth[uint64(rid)] = r.Strands()
		for i, iv := range r.Intervals {
			check := func(name string, ref *rope.ComponentRef) {
				if ref == nil || ref.Strand == strand.Nil {
					return
				}
				s, ok := fs.strands.Get(ref.Strand)
				if !ok {
					problems = append(problems, Problem{Kind: "dangling-ref",
						Detail: fmt.Sprintf("rope %d interval %d %s references unknown strand %d", rid, i, name, ref.Strand)})
					return
				}
				// A ref exactly at the strand end is legal: duration
				// rounding at split points can leave a sub-unit
				// residue that plays as a delay. Only refs strictly
				// beyond the strand are corrupt.
				if avail := s.UnitCount(); ref.StartUnit > avail {
					problems = append(problems, Problem{Kind: "range",
						Detail: fmt.Sprintf("rope %d interval %d %s starts at unit %d of strand %d (%d units)", rid, i, name, ref.StartUnit, ref.Strand, avail)})
				}
			}
			check("video", iv.Video)
			check("audio", iv.Audio)
		}
	}

	// Interests match the ropes exactly.
	if err := fs.interests.Audit(truth); err != nil {
		problems = append(problems, Problem{Kind: "interest", Detail: err.Error()})
	}

	// Leak detection: allocated sectors nothing claims.
	leaked := 0
	for i := 0; i < total; i++ {
		if fs.a.InUse(i) && owner[i] == "" {
			leaked++
		}
	}
	if leaked > 0 {
		problems = append(problems, Problem{Kind: "leak",
			Detail: fmt.Sprintf("%d allocated sector(s) unreachable from any structure", leaked)})
	}
	return problems
}
