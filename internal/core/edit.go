package core

import (
	"fmt"
	"time"

	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

// EditResult reports what an editing operation did beyond the interval
// manipulation itself.
type EditResult struct {
	// Smoothed lists the junctions the scattering-maintenance
	// algorithm had to smooth, with their copy counts.
	Smoothed []rope.JunctionReport
	// Reclaimed lists strands the garbage collector removed because
	// the edit dropped the last interest in them.
	Reclaimed []strand.ID
}

// CopiedBlocks sums the blocks copied across all smoothed junctions.
func (er EditResult) CopiedBlocks() int {
	total := 0
	for _, j := range er.Smoothed {
		total += j.Copied
	}
	return total
}

// finishEdit runs the post-edit pipeline on a mutated rope: refresh
// block-level correspondence, smooth junction scattering, and collect
// garbage.
func (fs *FS) finishEdit(r *rope.Rope) (EditResult, error) {
	var res EditResult
	reports, err := fs.editor.SmoothRope(r)
	if err != nil {
		return res, err
	}
	res.Smoothed = reports
	if err := fs.ropes.RefreshCorrespondence(r); err != nil {
		return res, err
	}
	if res.Reclaimed, err = fs.Collect(); err != nil {
		return res, err
	}
	return res, nil
}

// editable fetches a rope and checks edit access.
func (fs *FS) editable(user string, id rope.ID) (*rope.Rope, error) {
	r, ok := fs.ropes.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown rope %d", id)
	}
	if !r.CanEdit(user) {
		return nil, fmt.Errorf("%w: user %q cannot edit rope %d", ErrAccess, user, id)
	}
	return r, nil
}

// Insert implements §4.1's INSERT on a stored rope, then maintains
// scattering across the junctions the insertion created.
func (fs *FS) Insert(user string, base rope.ID, position time.Duration, m rope.Medium, with rope.ID, withStart, withDur time.Duration) (EditResult, error) {
	br, err := fs.editable(user, base)
	if err != nil {
		return EditResult{}, err
	}
	wr, ok := fs.ropes.Get(with)
	if !ok {
		return EditResult{}, fmt.Errorf("core: unknown rope %d", with)
	}
	if !wr.CanPlay(user) {
		return EditResult{}, fmt.Errorf("%w: user %q cannot read rope %d", ErrAccess, user, with)
	}
	if err := fs.ropes.Insert(br, position, m, wr, withStart, withDur); err != nil {
		return EditResult{}, err
	}
	return fs.finishEdit(br)
}

// Replace implements §4.1's REPLACE.
func (fs *FS) Replace(user string, base rope.ID, m rope.Medium, baseStart, baseDur time.Duration, with rope.ID, withStart, withDur time.Duration) (EditResult, error) {
	br, err := fs.editable(user, base)
	if err != nil {
		return EditResult{}, err
	}
	wr, ok := fs.ropes.Get(with)
	if !ok {
		return EditResult{}, fmt.Errorf("core: unknown rope %d", with)
	}
	if !wr.CanPlay(user) {
		return EditResult{}, fmt.Errorf("%w: user %q cannot read rope %d", ErrAccess, user, with)
	}
	if err := fs.ropes.Replace(br, m, baseStart, baseDur, wr, withStart, withDur); err != nil {
		return EditResult{}, err
	}
	return fs.finishEdit(br)
}

// Substring implements §4.1's SUBSTRING, returning the new rope.
func (fs *FS) Substring(user string, base rope.ID, m rope.Medium, start, dur time.Duration) (*rope.Rope, EditResult, error) {
	br, ok := fs.ropes.Get(base)
	if !ok {
		return nil, EditResult{}, fmt.Errorf("core: unknown rope %d", base)
	}
	if !br.CanPlay(user) {
		return nil, EditResult{}, fmt.Errorf("%w: user %q cannot read rope %d", ErrAccess, user, base)
	}
	out, err := fs.ropes.Substring(user, br, m, start, dur)
	if err != nil {
		return nil, EditResult{}, err
	}
	res, err := fs.finishEdit(out)
	return out, res, err
}

// Concate implements §4.1's CONCATE, returning the new rope (Figure
// 10: the junction between the two ropes' strands is where copying may
// occur).
func (fs *FS) Concate(user string, r1, r2 rope.ID) (*rope.Rope, EditResult, error) {
	a, ok := fs.ropes.Get(r1)
	if !ok {
		return nil, EditResult{}, fmt.Errorf("core: unknown rope %d", r1)
	}
	b, ok := fs.ropes.Get(r2)
	if !ok {
		return nil, EditResult{}, fmt.Errorf("core: unknown rope %d", r2)
	}
	if !a.CanPlay(user) || !b.CanPlay(user) {
		return nil, EditResult{}, fmt.Errorf("%w: user %q cannot read ropes %d/%d", ErrAccess, user, r1, r2)
	}
	out, err := fs.ropes.Concate(user, a, b)
	if err != nil {
		return nil, EditResult{}, err
	}
	res, err := fs.finishEdit(out)
	return out, res, err
}

// DeleteRange implements §4.1's DELETE of a media interval.
func (fs *FS) DeleteRange(user string, base rope.ID, m rope.Medium, start, dur time.Duration) (EditResult, error) {
	br, err := fs.editable(user, base)
	if err != nil {
		return EditResult{}, err
	}
	if err := fs.ropes.Delete(br, m, start, dur); err != nil {
		return EditResult{}, err
	}
	return fs.finishEdit(br)
}

// AddTrigger attaches synchronized text at an offset of the rope
// (Figure 8's trigger information).
func (fs *FS) AddTrigger(user string, id rope.ID, at time.Duration, text string) error {
	r, err := fs.editable(user, id)
	if err != nil {
		return err
	}
	return fs.ropes.AddTrigger(r, at, text)
}

// Triggers lists a rope's synchronized-text triggers with their
// resolved rope-relative times.
func (fs *FS) Triggers(user string, id rope.ID) ([]rope.TriggerAt, error) {
	r, ok := fs.ropes.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown rope %d", id)
	}
	if !r.CanPlay(user) {
		return nil, fmt.Errorf("%w: user %q cannot play rope %d", ErrAccess, user, id)
	}
	return fs.ropes.Triggers(r)
}

// DeleteRope removes a whole rope; strands it alone referenced are
// reclaimed by the garbage collector.
func (fs *FS) DeleteRope(user string, id rope.ID) ([]strand.ID, error) {
	r, ok := fs.ropes.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown rope %d", id)
	}
	if !r.CanEdit(user) {
		return nil, fmt.Errorf("%w: user %q cannot delete rope %d", ErrAccess, user, id)
	}
	if err := fs.ropes.Remove(id); err != nil {
		return nil, err
	}
	return fs.Collect()
}
