package core

import (
	"fmt"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

// RecordSpec describes a RECORD request (§4.1: "the file system begins
// recording a new multimedia rope consisting of new media (audio,
// video or both) strands").
type RecordSpec struct {
	// Creator owns the resulting rope.
	Creator string
	// Video is the video capture source; nil records no video.
	Video media.Source
	// Audio is the audio capture source; nil records no audio.
	Audio media.Source
	// SilenceElimination enables §4's silence detection and
	// elimination on the audio strand (homogeneous storage only;
	// heterogeneous blocks carry audio inline).
	SilenceElimination bool
	// Heterogeneous selects §3.3.3's heterogeneous-block storage:
	// both media are combined into composite units and stored in ONE
	// strand, giving implicit inter-media synchronization and one
	// disk access per block, at the cost of combining on storage and
	// separating on retrieval (use media.SplitAV on fetched units).
	// Requires both Video and Audio sources with rates that divide
	// evenly.
	Heterogeneous bool
	// CaptureBuffers is the number of block buffers on each capture
	// device; 0 uses 4.
	CaptureBuffers int
}

// RecordSession is an in-progress RECORD: it holds the admitted MSM
// requests and the strand writers. Drive the manager (RunUntilDone or
// RunRound) to make progress, then call Finish.
type RecordSession struct {
	fs       *FS
	spec     RecordSpec
	vWriter  *strand.Writer
	aWriter  *strand.Writer
	vID, aID strand.ID
	// VideoReq and AudioReq are the MSM request IDs (zero when the
	// medium is absent).
	VideoReq msm.RequestID
	AudioReq msm.RequestID
	finished bool
}

// Record begins recording a new multimedia rope. It derives each
// medium's granularity and scattering from the continuity model,
// verifies the placement policy respects the derived bounds, admits
// the storage requests, and returns the session.
func (fs *FS) Record(spec RecordSpec) (*RecordSession, error) {
	if spec.Video == nil && spec.Audio == nil {
		return nil, fmt.Errorf("core: RECORD needs at least one medium")
	}
	if spec.CaptureBuffers == 0 {
		spec.CaptureBuffers = 4
	}
	s := &RecordSession{fs: fs, spec: spec}
	if spec.Heterogeneous {
		if spec.Video == nil || spec.Audio == nil {
			return nil, fmt.Errorf("core: heterogeneous RECORD needs both media")
		}
		mux, err := media.NewMuxAVSource(spec.Video, spec.Audio)
		if err != nil {
			return nil, err
		}
		if err := s.startMedium(layout.Mixed, mux, fs.opts.VideoDeviceBufferUnits, nil); err != nil {
			s.abort()
			return nil, err
		}
		return s, nil
	}
	if spec.Video != nil {
		if err := s.startMedium(layout.Video, spec.Video, fs.opts.VideoDeviceBufferUnits, nil); err != nil {
			s.abort()
			return nil, err
		}
	}
	if spec.Audio != nil {
		var det *media.SilenceDetector
		if spec.SilenceElimination {
			d := media.DefaultSilenceDetector()
			det = &d
		}
		if err := s.startMedium(layout.Audio, spec.Audio, fs.opts.AudioDeviceBufferUnits, det); err != nil {
			s.abort()
			return nil, err
		}
	}
	return s, nil
}

// startMedium derives parameters, creates the writer, and admits the
// record request for one medium.
func (s *RecordSession) startMedium(m layout.Medium, src media.Source, deviceBufUnits int, det *media.SilenceDetector) error {
	fs := s.fs
	md := continuity.Media{
		Name:     m.String(),
		UnitBits: float64(src.UnitBytes() * 8),
		Rate:     src.Rate(),
	}
	dv, err := continuity.Derive(fs.opts.Arch, deviceBufUnits, md, fs.dev)
	if err != nil {
		return err
	}
	if fs.TargetScattering() > dv.MaxScattering {
		return fmt.Errorf("core: placement scattering %.4fs exceeds continuity bound %.4fs for %v",
			fs.TargetScattering(), dv.MaxScattering, m)
	}
	id := fs.strands.NewID()
	w, err := strand.NewWriter(fs.mdev, fs.a, strand.WriterConfig{
		ID:            id,
		Medium:        m,
		Rate:          src.Rate(),
		UnitBytes:     src.UnitBytes(),
		Granularity:   dv.Granularity,
		Variable:      media.IsVariable(src),
		Constraint:    fs.Constraint(),
		Silence:       det,
		StartCylinder: fs.nextStartCylinder(),
	})
	if err != nil {
		return err
	}
	plan := msm.PlanRecord(fmt.Sprintf("record-%v-%d", m, id), w, src, dv.Granularity, 0,
		fs.TargetScattering(), s.spec.CaptureBuffers)
	req, _, err := fs.mgr.AdmitRecord(plan)
	if err != nil {
		w.Abort()
		return err
	}
	switch m {
	case layout.Audio:
		s.aWriter, s.aID, s.AudioReq = w, id, req
	default:
		// Video and Mixed strands occupy the primary (video) slot.
		s.vWriter, s.vID, s.VideoReq = w, id, req
	}
	return nil
}

// abort releases a partially started session.
func (s *RecordSession) abort() {
	if s.vWriter != nil {
		s.vWriter.Abort()
	}
	if s.aWriter != nil {
		s.aWriter.Abort()
	}
	s.finished = true
}

// Stop issues STOP on the session's requests (halting capture); the
// strands finalize on Finish.
func (s *RecordSession) Stop() error {
	if s.VideoReq != 0 {
		if err := s.fs.mgr.Stop(s.VideoReq); err != nil {
			return err
		}
	}
	if s.AudioReq != 0 {
		if err := s.fs.mgr.Stop(s.AudioReq); err != nil {
			return err
		}
	}
	return nil
}

// Finish closes the strand writers, registers the strands, and creates
// the multimedia rope tying them together with block-level
// correspondence. Call it after the manager has drained the record
// requests (or after Stop).
func (s *RecordSession) Finish() (*rope.Rope, error) {
	if s.finished {
		return nil, fmt.Errorf("core: record session already finished")
	}
	s.finished = true
	fs := s.fs
	var vs, as *strand.Strand
	var err error
	if s.vWriter != nil {
		if vs, err = s.vWriter.Close(); err != nil {
			return nil, err
		}
		fs.strands.Put(vs)
	}
	if s.aWriter != nil {
		if as, err = s.aWriter.Close(); err != nil {
			return nil, err
		}
		fs.strands.Put(as)
	}
	r := fs.ropes.Create(s.spec.Creator)
	iv := rope.Interval{}
	var dur time.Duration
	if vs != nil {
		iv.Video = &rope.ComponentRef{Strand: vs.ID()}
		dur = continuity.Duration(vs.Duration())
	}
	if as != nil {
		iv.Audio = &rope.ComponentRef{Strand: as.ID()}
		if d := continuity.Duration(as.Duration()); d > dur {
			dur = d
		}
	}
	iv.Duration = dur
	if vs != nil && as != nil {
		iv.Corr = []rope.Correspondence{{VideoBlock: 0, AudioBlock: 0}}
	}
	r.Intervals = []rope.Interval{iv}
	fs.ropes.SyncInterests(r)
	return r, nil
}
