package core

import (
	"testing"
	"time"

	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// recordHetero records a heterogeneous-block AV clip.
func recordHetero(t *testing.T, fs *FS, seconds int, seed int64) *rope.Rope {
	t.Helper()
	sess, err := fs.Record(RecordSpec{
		Creator:       "venkat",
		Video:         media.NewVideoSource(30*seconds, 18000, 30, seed),
		Audio:         media.NewAudioSource(15*seconds, 800, 15, 0, 1, seed+1), // 12000 B/s / 30 fps = 400 B per frame
		Heterogeneous: true,
	})
	if err != nil {
		t.Fatalf("heterogeneous record: %v", err)
	}
	fs.Manager().RunUntilDone()
	r, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHeterogeneousRecordPlaySplit(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordHetero(t, fs, 3, 4100)
	if got := r.Length(); got != 3*time.Second {
		t.Fatalf("length %v", got)
	}
	// One strand carries both media.
	if len(r.Strands()) != 1 {
		t.Fatalf("heterogeneous rope references %d strands, want 1", len(r.Strands()))
	}
	s := fs.Strands().MustGet(r.Strands()[0])
	if s.Medium() != layout.Mixed {
		t.Fatalf("medium %v", s.Medium())
	}

	// Playback is a single request: implicit inter-media sync.
	h, err := fs.Play("venkat", r.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.AudioReq != 0 {
		t.Fatal("heterogeneous playback spawned a second request")
	}
	fs.Manager().RunUntilDone()
	if v, _ := fs.PlayViolations(h); v != 0 {
		t.Fatalf("playback violated %d times", v)
	}

	// Retrieval separates the media: every composite unit splits into
	// the stamped frame and its 400-byte audio share.
	units, err := fs.FetchUnits("venkat", r.ID, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 90 {
		t.Fatalf("%d composite units", len(units))
	}
	for i, u := range units {
		frame, audio, err := media.SplitAV(u)
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if err := media.ValidateFrameSeq(frame, uint64(i)); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(audio) != 400 {
			t.Fatalf("unit %d audio share %d bytes, want 400", i, len(audio))
		}
	}
}

func TestHeterogeneousSurvivesRemount(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordHetero(t, fs, 2, 4200)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Open(fs.Disk(), fs.Options())
	if err != nil {
		t.Fatal(err)
	}
	units, err := fs2.FetchUnits("venkat", r.ID, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame, _, err := media.SplitAV(units[10])
	if err != nil {
		t.Fatal(err)
	}
	if err := media.ValidateFrameSeq(frame, 10); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousRequiresBothMedia(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fs.Record(RecordSpec{
		Creator:       "venkat",
		Video:         media.NewVideoSource(30, 18000, 30, 1),
		Heterogeneous: true,
	})
	if err == nil {
		t.Fatal("heterogeneous record without audio accepted")
	}
}

func TestHeterogeneousEditing(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := recordHetero(t, fs, 3, 4300)
	r2 := recordHetero(t, fs, 2, 4400)
	if _, err := fs.Insert("venkat", r1.ID, time.Second, rope.AudioVisual, r2.ID, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.Length() != 4*time.Second {
		t.Fatalf("post-insert length %v", r1.Length())
	}
	h, err := fs.Play("venkat", r1.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	if v, _ := fs.PlayViolations(h); v != 0 {
		t.Fatalf("edited heterogeneous rope violated %d times", v)
	}
}
