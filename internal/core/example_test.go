package core_test

import (
	"fmt"
	"log"
	"time"

	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// Example records a short audio+video rope, plays it back with
// continuity accounting, and edits it — the whole §4.1 interface in a
// dozen lines.
func Example() {
	fs, err := core.Format(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// RECORD two seconds of video plus audio with silence elimination.
	sess, err := fs.Record(core.RecordSpec{
		Creator:            "demo",
		Video:              media.NewVideoSource(60, 18000, 30, 1),
		Audio:              media.NewAudioSource(20, 800, 10, 0.3, 5, 2),
		SilenceElimination: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs.Manager().RunUntilDone() // drive the virtual clock
	r, err := sess.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recorded:", r.Length())

	// PLAY both media; zero violations means every block made its
	// deadline.
	h, err := fs.Play("demo", r.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		log.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	viol, _ := fs.PlayViolations(h)
	fmt.Println("violations:", viol)

	// Copy-free editing: keep only the first second.
	clip, _, err := fs.Substring("demo", r.ID, rope.AudioVisual, 0, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clip:", clip.Length())

	// Output:
	// recorded: 2s
	// violations: 0
	// clip: 1s
}

// ExampleFS_Record_heterogeneous stores both media in one strand of
// composite units (§3.3.3's heterogeneous blocks): one disk access per
// block and implicit synchronization.
func ExampleFS_Record_heterogeneous() {
	fs, err := core.Format(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := fs.Record(core.RecordSpec{
		Creator:       "demo",
		Video:         media.NewVideoSource(30, 18000, 30, 1),
		Audio:         media.NewAudioSource(15, 800, 15, 0, 1, 2),
		Heterogeneous: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	r, err := sess.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strands:", len(r.Strands()))

	units, err := fs.FetchUnits("demo", r.ID, rope.VideoOnly, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	frame, audio, err := media.SplitAV(units[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frame bytes:", len(frame), "audio bytes:", len(audio))

	// Output:
	// strands: 1
	// frame bytes: 18000 audio bytes: 400
}

// ExampleFS_Check shows the integrity checker on a healthy file
// system.
func ExampleFS_Check() {
	fs, err := core.Format(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("problems:", len(fs.Check()))
	// Output:
	// problems: 0
}
