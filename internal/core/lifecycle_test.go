package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// TestRandomLifecycle drives the whole file system through random
// operation sequences — record (CBR, VBR, heterogeneous), every §4.1
// editing operation, text files, triggers, rope deletion, compaction —
// and audits after every operation that
//
//  1. the integrity checker finds nothing,
//  2. every live rope still plays with zero continuity violations
//     (checked on a sample), and
//  3. the metadata survives a Sync/Open remount.
//
// Seeds are fixed so failures reproduce.
func TestRandomLifecycle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runLifecycle(t, seed)
		})
	}
}

func runLifecycle(t *testing.T, seed int64) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var live []rope.ID
	user := "fuzz"

	record := func() {
		kind := rng.Intn(3)
		seconds := 1 + rng.Intn(3)
		spec := RecordSpec{Creator: user}
		switch kind {
		case 0: // homogeneous AV
			spec.Video = media.NewVideoSource(30*seconds, 18000, 30, rng.Int63())
			spec.Audio = media.NewAudioSource(10*seconds, 800, 10, 0.3, 10, rng.Int63())
			spec.SilenceElimination = true
		case 1: // VBR video
			spec.Video = media.NewVBRVideoSource(30*seconds, 18000, 6000, 10, 30, rng.Int63())
		case 2: // heterogeneous
			spec.Video = media.NewVideoSource(30*seconds, 18000, 30, rng.Int63())
			spec.Audio = media.NewAudioSource(15*seconds, 800, 15, 0, 1, rng.Int63())
			spec.Heterogeneous = true
		}
		sess, err := fs.Record(spec)
		if err != nil {
			t.Fatalf("record: %v", err)
		}
		fs.Manager().RunUntilDone()
		r, err := sess.Finish()
		if err != nil {
			t.Fatalf("finish: %v", err)
		}
		live = append(live, r.ID)
	}
	record()
	record()

	pick := func() (*rope.Rope, rope.ID) {
		id := live[rng.Intn(len(live))]
		r, ok := fs.Ropes().Get(id)
		if !ok {
			t.Fatalf("live rope %d vanished", id)
		}
		return r, id
	}
	randRange := func(r *rope.Rope) (time.Duration, time.Duration) {
		if r.Length() < 200*time.Millisecond {
			return 0, r.Length()
		}
		start := time.Duration(rng.Int63n(int64(r.Length() / 2)))
		maxDur := r.Length() - start
		dur := time.Duration(rng.Int63n(int64(maxDur))) + 1
		return start, dur
	}

	audit := func(step int, op string) {
		t.Helper()
		if err := fs.Sync(); err != nil {
			t.Fatalf("step %d (%s): sync: %v", step, op, err)
		}
		if problems := fs.Check(); len(problems) != 0 {
			t.Fatalf("step %d (%s): fsck: %v", step, op, problems)
		}
		// Play one live rope to completion.
		if len(live) > 0 {
			r, id := pick()
			hasV, hasA := r.Components()
			if r.Length() > 0 && (hasV || hasA) {
				m := rope.VideoOnly
				if !hasV {
					m = rope.AudioOnly
				}
				h, err := fs.Play(user, id, m, 0, 0, msm.PlanOptions{ReadAhead: 2, Buffers: 8})
				if err != nil {
					t.Fatalf("step %d (%s): play rope %d: %v", step, op, id, err)
				}
				fs.Manager().RunUntilDone()
				if v, _ := fs.PlayViolations(h); v != 0 {
					t.Fatalf("step %d (%s): rope %d violated %d time(s)", step, op, id, v)
				}
			}
		}
	}

	const steps = 40
	for step := 0; step < steps; step++ {
		var op string
		switch rng.Intn(10) {
		case 0:
			op = "record"
			record()
		case 1:
			op = "insert"
			base, baseID := pick()
			with, _ := pick()
			if with.Length() >= 500*time.Millisecond && base.Length() > 0 {
				pos := time.Duration(rng.Int63n(int64(base.Length() + 1)))
				if _, err := fs.Insert(user, baseID, pos, rope.AudioVisual, with.ID, 0, 500*time.Millisecond); err != nil {
					t.Fatalf("insert: %v", err)
				}
			}
		case 2:
			op = "delete-range"
			base, baseID := pick()
			if base.Length() >= time.Second {
				m := []rope.Medium{rope.AudioVisual, rope.VideoOnly, rope.AudioOnly}[rng.Intn(3)]
				start, dur := randRange(base)
				if err := fs.ropes.Delete(base, m, start, dur); err != nil {
					t.Fatalf("delete range: %v", err)
				}
				if _, err := fs.finishEdit(base); err != nil {
					t.Fatalf("delete finish: %v", err)
				}
				_ = baseID
			}
		case 3:
			op = "substring"
			base, baseID := pick()
			if base.Length() >= 500*time.Millisecond {
				start, dur := randRange(base)
				sub, _, err := fs.Substring(user, baseID, rope.AudioVisual, start, dur)
				if err != nil {
					t.Fatalf("substring: %v", err)
				}
				live = append(live, sub.ID)
			}
		case 4:
			op = "concat"
			_, a := pick()
			_, b := pick()
			cat, _, err := fs.Concate(user, a, b)
			if err != nil {
				t.Fatalf("concat: %v", err)
			}
			live = append(live, cat.ID)
		case 5:
			op = "delete-rope"
			if len(live) > 2 {
				i := rng.Intn(len(live))
				if _, err := fs.DeleteRope(user, live[i]); err != nil {
					t.Fatalf("delete rope: %v", err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		case 6:
			op = "text"
			name := fmt.Sprintf("note-%d", rng.Intn(4))
			if rng.Intn(3) == 0 && fs.Text().Len() > 0 {
				names := fs.Text().List()
				if err := fs.Text().Delete(names[rng.Intn(len(names))]); err != nil {
					t.Fatalf("text delete: %v", err)
				}
			} else {
				data := make([]byte, rng.Intn(8192))
				rng.Read(data)
				if err := fs.Text().Write(name, data); err != nil {
					t.Fatalf("text write: %v", err)
				}
			}
		case 7:
			op = "trigger"
			base, baseID := pick()
			if base.Length() > time.Second {
				at := time.Duration(rng.Int63n(int64(base.Length())))
				if err := fs.AddTrigger(user, baseID, at, fmt.Sprintf("mark-%d", step)); err != nil {
					t.Fatalf("trigger: %v", err)
				}
				if _, err := fs.Triggers(user, baseID); err != nil {
					t.Fatalf("triggers: %v", err)
				}
			}
		case 8:
			op = "compact"
			if rng.Intn(4) == 0 { // occasional: it is a heavy operation
				if _, err := fs.Compact(); err != nil {
					t.Fatalf("compact: %v", err)
				}
			}
		case 9:
			op = "reorganize"
			if len(live) > 0 {
				r, _ := pick()
				strands := r.Strands()
				if len(strands) > 0 {
					target := rng.Intn(fs.Disk().Geometry().Cylinders)
					if _, err := fs.ReorganizeStrand(strands[rng.Intn(len(strands))], target); err != nil {
						t.Fatalf("reorganize: %v", err)
					}
				}
			}
		}
		if step%8 == 0 {
			audit(step, op)
		}
	}
	audit(steps, "final")

	// Full remount: everything must come back identically playable.
	fs2, err := Open(fs.Disk(), fs.Options())
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	if problems := fs2.Check(); len(problems) != 0 {
		t.Fatalf("fsck after remount: %v", problems)
	}
	for _, id := range live {
		r, ok := fs2.Ropes().Get(id)
		if !ok {
			t.Fatalf("rope %d lost across remount", id)
		}
		hasV, hasA := r.Components()
		if r.Length() == 0 || (!hasV && !hasA) {
			continue
		}
		m := rope.VideoOnly
		if !hasV {
			m = rope.AudioOnly
		}
		h, err := fs2.Play(user, id, m, 0, 0, msm.PlanOptions{ReadAhead: 2, Buffers: 8})
		if err != nil {
			t.Fatalf("rope %d after remount: %v", id, err)
		}
		fs2.Manager().RunUntilDone()
		if v, _ := fs2.PlayViolations(h); v != 0 {
			t.Fatalf("rope %d violated %d time(s) after remount", id, v)
		}
	}
}
