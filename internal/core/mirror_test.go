package core

import (
	"testing"

	"mmfs/internal/disk"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// TestOptionsValidation covers the format-time configuration errors:
// a FaultSpindle outside the array must be rejected (not silently
// clamped to spindle 0, which would quietly fault the wrong device),
// as must mirroring over an odd spindle count and a negative rebuild
// rate.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"fault spindle beyond array", Options{Disks: 2, FaultSpindle: 2}},
		{"fault spindle negative", Options{Disks: 4, FaultSpindle: -1}},
		{"fault spindle on single disk", Options{FaultSpindle: 1}},
		{"mirror on odd spindles", Options{Disks: 3, Mirror: true}},
		{"mirror on single disk", Options{Disks: 1, Mirror: true}},
		{"negative rebuild rate", Options{Disks: 2, RebuildRate: -1}},
	}
	for _, tc := range cases {
		if _, err := Format(tc.opts); err == nil {
			t.Errorf("%s: Format accepted %+v", tc.name, tc.opts)
		}
	}
	// The in-range cases must still format.
	if _, err := Format(Options{Disks: 2, FaultSpindle: 1}); err != nil {
		t.Fatalf("in-range fault spindle rejected: %v", err)
	}
}

// TestMirroredFormatRecordPlay formats a mirrored 4-spindle system,
// records and plays a clip, and checks the mirrored layout is really
// underneath: half the striped capacity, duplicated writes.
func TestMirroredFormatRecordPlay(t *testing.T) {
	fs, err := Format(Options{Disks: 4, Mirror: true, RebuildRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	arr := fs.Array()
	if arr == nil || !arr.Mirrored() {
		t.Fatal("mirrored format did not build a mirrored array")
	}
	phys := disk.DefaultGeometry()
	if got := fs.Disk().Geometry().Cylinders; got != phys.Cylinders*2 {
		t.Fatalf("mirrored logical cylinders = %d, want %d (capacity must halve)",
			got, phys.Cylinders*2)
	}
	if got := fs.Manager().RebuildRate(); got != 4 {
		t.Fatalf("RebuildRate option not wired: %d", got)
	}

	r := recordClip(t, fs, "venkat", 4, 700)
	h, err := fs.Play("venkat", r.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	n, err := fs.PlayViolations(h)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("mirrored playback had %d continuity violations", n)
	}
	// Every write is duplicated: both twins of a written pair must have
	// seen sectors.
	wrote := 0
	for i := 0; i < arr.Spindles(); i += 2 {
		w0 := arr.Spindle(i).Stats().SectorsWritten
		w1 := arr.Spindle(i + 1).Stats().SectorsWritten
		if w0 != w1 {
			t.Fatalf("pair %d twins wrote %d vs %d sectors; mirror writes must duplicate", i/2, w0, w1)
		}
		if w0 > 0 {
			wrote++
		}
	}
	if wrote == 0 {
		t.Fatal("no pair saw any writes")
	}
}
