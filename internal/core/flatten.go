package core

import (
	"errors"
	"fmt"

	"mmfs/internal/alloc"
	"mmfs/internal/media"
	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

// Flatten implements §6.2's strand-merging direction: "we are
// investigating mechanisms for merging multiple media strands so as to
// optimize storage utilization". A heavily edited rope accumulates an
// interval list spanning many strands (each with its own index blocks
// and junction hops); Flatten materializes each medium of the rope
// into one fresh, contiguous-chained strand and replaces the interval
// list with a single interval. Strands that thereby lose their last
// interest are reclaimed by the garbage collector.
//
// Flatten trades a one-time copy of the rope's data for permanently
// smaller metadata, zero junctions, and the tightest possible
// scattering — the opposite end of the copying spectrum from §4.2's
// bounded junction smoothing.
func (fs *FS) Flatten(user string, id rope.ID) (EditResult, error) {
	r, err := fs.editable(user, id)
	if err != nil {
		return EditResult{}, err
	}
	var res EditResult
	newIv := rope.Interval{Duration: r.Length()}
	for _, m := range []rope.Medium{rope.VideoOnly, rope.AudioOnly} {
		ref, err := fs.flattenMedium(r, m)
		if err != nil {
			return res, err
		}
		switch m {
		case rope.VideoOnly:
			newIv.Video = ref
		case rope.AudioOnly:
			newIv.Audio = ref
		}
	}
	if newIv.Video == nil && newIv.Audio == nil {
		return res, fmt.Errorf("core: rope %d has no media to flatten", id)
	}
	r.Intervals = []rope.Interval{newIv}
	fs.ropes.SyncInterests(r)
	if err := fs.ropes.RefreshCorrespondence(r); err != nil {
		return res, err
	}
	if res.Reclaimed, err = fs.Collect(); err != nil {
		return res, err
	}
	return res, nil
}

// flattenMedium copies one medium of the rope into a fresh strand and
// returns its component ref, or nil when the medium is absent
// everywhere. Triggers are intentionally not carried over: their block
// anchors belong to the old strands (callers re-attach them from
// Triggers() output if needed).
func (fs *FS) flattenMedium(r *rope.Rope, m rope.Medium) (*rope.ComponentRef, error) {
	// Find a template strand for the medium's parameters.
	var tmpl *strand.Strand
	for _, iv := range r.Intervals {
		if ref := iv.Component(m); ref != nil && ref.Strand != strand.Nil {
			s, ok := fs.strands.Get(ref.Strand)
			if !ok {
				return nil, fmt.Errorf("core: rope %d references unknown strand %d", r.ID, ref.Strand)
			}
			tmpl = s
			break
		}
	}
	if tmpl == nil {
		return nil, nil
	}
	if tmpl.Variable() {
		return nil, fmt.Errorf("core: flatten of variable-rate strands is not supported (strand %d)", tmpl.ID())
	}
	w, err := strand.NewWriter(fs.mdev, fs.a, strand.WriterConfig{
		ID:            fs.strands.NewID(),
		Medium:        tmpl.Medium(),
		Rate:          tmpl.Rate(),
		UnitBytes:     tmpl.UnitBytes(),
		Granularity:   tmpl.Granularity(),
		Constraint:    fs.Constraint(),
		StartCylinder: fs.nextStartCylinder(),
	})
	if err != nil {
		return nil, err
	}
	// Walk the rope's units for this medium, reading through the old
	// strands (gaps come back silence-filled) and appending to the
	// fresh strand.
	units, err := fs.FetchUnits(r.Creator, r.ID, m, 0, 0)
	if err != nil {
		w.Abort()
		return nil, err
	}
	for seq, payload := range units {
		if len(payload) != tmpl.UnitBytes() {
			w.Abort()
			return nil, fmt.Errorf("core: flatten unit %d has %d bytes, template %d", seq, len(payload), tmpl.UnitBytes())
		}
		if _, err := w.Append(media.Unit{Seq: uint64(seq), Payload: payload}); err != nil {
			w.Abort()
			if errors.Is(err, alloc.ErrNoSpace) {
				return nil, fmt.Errorf("core: flatten of rope %d: %w", r.ID, err)
			}
			return nil, err
		}
	}
	s, err := w.Close()
	if err != nil {
		return nil, err
	}
	fs.strands.Put(s)
	return &rope.ComponentRef{Strand: s.ID()}, nil
}

// IntervalCount reports how many intervals a rope currently spans; the
// flattening payoff metric.
func (fs *FS) IntervalCount(id rope.ID) (int, error) {
	r, ok := fs.ropes.Get(id)
	if !ok {
		return 0, fmt.Errorf("core: unknown rope %d", id)
	}
	return len(r.Intervals), nil
}
