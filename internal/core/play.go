package core

import (
	"fmt"
	"time"

	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// PlayHandle names the MSM requests a PLAY spawned: one per medium,
// admitted together and started simultaneously so the block-level
// correspondence keeps the media synchronized.
type PlayHandle struct {
	// VideoReq and AudioReq are the per-medium request IDs (zero
	// when that medium was not requested or is absent).
	VideoReq msm.RequestID
	AudioReq msm.RequestID
}

// Requests lists the non-zero request IDs.
func (h PlayHandle) Requests() []msm.RequestID {
	var out []msm.RequestID
	if h.VideoReq != 0 {
		out = append(out, h.VideoReq)
	}
	if h.AudioReq != 0 {
		out = append(out, h.AudioReq)
	}
	return out
}

// Play implements §4.1's
//
//	PLAY [mmRopeID, interval, media] → requestID
//
// admitting one retrieval request per selected medium over the rope's
// [start, start+dur) range (dur 0 plays to the end). Admission may
// reject the request (ErrAdmissionRejected) without disturbing the
// requests already in service.
func (fs *FS) Play(user string, id rope.ID, m rope.Medium, start, dur time.Duration, opts msm.PlanOptions) (PlayHandle, error) {
	r, ok := fs.ropes.Get(id)
	if !ok {
		return PlayHandle{}, fmt.Errorf("core: unknown rope %d", id)
	}
	if !r.CanPlay(user) {
		return PlayHandle{}, fmt.Errorf("%w: user %q cannot play rope %d", ErrAccess, user, id)
	}
	if dur == 0 {
		dur = r.Length() - start
	}
	hasVideo, hasAudio := r.Components()
	var h PlayHandle
	admit := func(mm rope.Medium) (msm.RequestID, error) {
		plan, err := fs.ropes.CompilePlay(fs.mdev, r, mm, start, dur, opts)
		if err != nil {
			return 0, err
		}
		req, _, err := fs.mgr.AdmitPlay(plan)
		return req, err
	}
	var err error
	wantVideo := (m == rope.AudioVisual || m == rope.VideoOnly) && hasVideo
	wantAudio := (m == rope.AudioVisual || m == rope.AudioOnly) && hasAudio
	if !wantVideo && !wantAudio {
		return PlayHandle{}, fmt.Errorf("core: rope %d has no %v component", id, m)
	}
	if wantVideo {
		if h.VideoReq, err = admit(rope.VideoOnly); err != nil {
			return PlayHandle{}, err
		}
	}
	if wantAudio {
		if h.AudioReq, err = admit(rope.AudioOnly); err != nil {
			if h.VideoReq != 0 {
				// All-or-nothing: do not leave a half-admitted AV
				// request consuming service rounds.
				//lint:ignore noerrdrop best-effort rollback; the admission error takes precedence
				_ = fs.mgr.Stop(h.VideoReq)
			}
			return PlayHandle{}, err
		}
	}
	return h, nil
}

// StopPlay issues STOP on every request of the handle.
func (fs *FS) StopPlay(h PlayHandle) error {
	for _, id := range h.Requests() {
		if err := fs.mgr.Stop(id); err != nil {
			return err
		}
	}
	return nil
}

// PausePlay pauses every request of the handle (§4.1's destructive or
// non-destructive PAUSE).
func (fs *FS) PausePlay(h PlayHandle, destructive bool) error {
	for _, id := range h.Requests() {
		if err := fs.mgr.Pause(id, destructive); err != nil {
			return err
		}
	}
	return nil
}

// ResumePlay resumes every request of the handle; a destructive pause
// re-runs admission and may be rejected.
func (fs *FS) ResumePlay(h PlayHandle) error {
	for _, id := range h.Requests() {
		if _, err := fs.mgr.Resume(id); err != nil {
			return err
		}
	}
	return nil
}

// PlayViolations sums the continuity violations across the handle's
// requests.
func (fs *FS) PlayViolations(h PlayHandle) (int, error) {
	total := 0
	for _, id := range h.Requests() {
		v, err := fs.mgr.Violations(id)
		if err != nil {
			return 0, err
		}
		total += len(v)
	}
	return total, nil
}
