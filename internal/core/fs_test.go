package core

import (
	"testing"
	"time"

	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// recordClip records a 4-second AV clip (120 frames of video, 40 audio
// units) and returns the rope.
func recordClip(t *testing.T, fs *FS, creator string, seconds int, seed int64) *rope.Rope {
	t.Helper()
	frames := 30 * seconds
	aUnits := 10 * seconds
	sess, err := fs.Record(RecordSpec{
		Creator:            creator,
		Video:              media.NewVideoSource(frames, 18000, 30, seed),
		Audio:              media.NewAudioSource(aUnits, 800, 10, 0.3, 4, seed+1),
		SilenceElimination: true,
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	fs.Manager().RunUntilDone()
	r, err := sess.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return r
}

func TestFormatRecordPlay(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 4, 100)
	if got := r.Length(); got != 4*time.Second {
		t.Fatalf("rope length %v, want 4s", got)
	}
	h, err := fs.Play("venkat", r.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	fs.Manager().RunUntilDone()
	n, err := fs.PlayViolations(h)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("AV playback had %d continuity violations", n)
	}
}

func TestEditInsertAndPlay(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := recordClip(t, fs, "venkat", 4, 200)
	r2 := recordClip(t, fs, "venkat", 2, 300)

	// Figure 9's INSERT: splice r2's first second into r1 at t=2s.
	res, err := fs.Insert("venkat", r1.ID, 2*time.Second, rope.AudioVisual, r2.ID, 0, time.Second)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	_ = res
	if got := r1.Length(); got != 5*time.Second {
		t.Fatalf("post-insert length %v, want 5s", got)
	}
	if len(r1.Intervals) < 3 {
		t.Fatalf("insert produced %d intervals, want ≥ 3", len(r1.Intervals))
	}
	h, err := fs.Play("venkat", r1.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	fs.Manager().RunUntilDone()
	if n, _ := fs.PlayViolations(h); n != 0 {
		t.Fatalf("edited rope playback had %d violations", n)
	}
}

func TestSubstringConcatDeleteAndGC(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := recordClip(t, fs, "venkat", 3, 400)
	r2 := recordClip(t, fs, "harrick", 3, 500)

	sub, _, err := fs.Substring("venkat", r1.ID, rope.AudioVisual, time.Second, time.Second)
	if err != nil {
		t.Fatalf("substring: %v", err)
	}
	if sub.Length() != time.Second {
		t.Fatalf("substring length %v", sub.Length())
	}
	cat, _, err := fs.Concate("venkat", sub.ID, r2.ID)
	if err != nil {
		t.Fatalf("concate: %v", err)
	}
	if cat.Length() != 4*time.Second {
		t.Fatalf("concat length %v, want 4s", cat.Length())
	}

	// Strands are shared: deleting r1 must not reclaim its strands
	// while sub still references them.
	strandsBefore := fs.Strands().Len()
	reclaimed, err := fs.DeleteRope("venkat", r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaimed) != 0 {
		t.Fatalf("reclaimed %v while substring still references them", reclaimed)
	}
	if fs.Strands().Len() != strandsBefore {
		t.Fatalf("strand count changed %d → %d", strandsBefore, fs.Strands().Len())
	}

	// Deleting the substring and the concatenation drops the last
	// interests in r1's strands.
	if _, err := fs.DeleteRope("venkat", sub.ID); err != nil {
		t.Fatal(err)
	}
	reclaimed, err = fs.DeleteRope("venkat", cat.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaimed) == 0 {
		t.Fatal("expected r1's strands to be reclaimed after last reference dropped")
	}
	// r2's strands must survive: r2 itself still exists.
	if _, ok := fs.Ropes().Get(r2.ID); !ok {
		t.Fatal("r2 disappeared")
	}
	for _, iv := range r2.Intervals {
		if iv.Video != nil {
			if _, ok := fs.Strands().Get(iv.Video.Strand); !ok {
				t.Fatal("r2's video strand was wrongly reclaimed")
			}
		}
	}
}

func TestSingleMediumDeletePreservesTiming(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 4, 600)
	if _, err := fs.DeleteRange("venkat", r.ID, rope.AudioOnly, time.Second, 2*time.Second); err != nil {
		t.Fatalf("delete audio range: %v", err)
	}
	if r.Length() != 4*time.Second {
		t.Fatalf("single-medium delete changed length to %v", r.Length())
	}
	// The audio plan must still compile (with a delay gap) and play
	// without violations.
	h, err := fs.Play("venkat", r.ID, rope.AudioOnly, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatalf("play audio: %v", err)
	}
	fs.Manager().RunUntilDone()
	if n, _ := fs.PlayViolations(h); n != 0 {
		t.Fatalf("audio playback with gap had %d violations", n)
	}
}

func TestSyncOpenRoundTrip(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 3, 700)
	ropeID := r.ID
	wantLen := r.Length()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	fs2, err := Open(fs.Disk(), fs.Options())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	r2, ok := fs2.Ropes().Get(ropeID)
	if !ok {
		t.Fatal("rope lost across sync/open")
	}
	if r2.Length() != wantLen {
		t.Fatalf("reopened rope length %v, want %v", r2.Length(), wantLen)
	}
	if r2.Creator != "venkat" {
		t.Fatalf("creator %q", r2.Creator)
	}
	// Playback must work identically on the reopened file system.
	h, err := fs2.Play("venkat", ropeID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatalf("play after reopen: %v", err)
	}
	fs2.Manager().RunUntilDone()
	if n, _ := fs2.PlayViolations(h); n != 0 {
		t.Fatalf("reopened playback had %d violations", n)
	}
}

func TestAccessControl(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 2, 800)
	r.PlayAccess = []string{"harrick"}
	r.EditAccess = []string{}

	if _, err := fs.Play("mallory", r.ID, rope.VideoOnly, 0, 0, msm.PlanOptions{}); err == nil {
		t.Fatal("play allowed for user outside PlayAccess")
	}
	if _, err := fs.Play("harrick", r.ID, rope.VideoOnly, 0, 0, msm.PlanOptions{ReadAhead: 2}); err != nil {
		t.Fatalf("play denied for listed user: %v", err)
	}
	fs.Manager().RunUntilDone()
}
