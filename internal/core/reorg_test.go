package core

import (
	"testing"
	"time"

	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

func TestReorganizeStrandPreservesDataAndRopes(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 3, 7700)
	oldVideo := r.Intervals[0].Video.Strand

	relocated, err := fs.ReorganizeStrand(oldVideo, 900)
	if err != nil {
		t.Fatal(err)
	}
	if relocated.ID() == oldVideo {
		t.Fatal("relocation must mint a new strand ID")
	}
	if _, ok := fs.Strands().Get(oldVideo); ok {
		t.Fatal("old strand still registered")
	}
	// The rope now references the relocated strand.
	if r.Intervals[0].Video.Strand != relocated.ID() {
		t.Fatalf("rope still references %d", r.Intervals[0].Video.Strand)
	}
	// Interests moved with it.
	if fs.Ropes().Interests().Count(relocated.ID()) != 1 {
		t.Fatal("interest not transferred")
	}
	if fs.Ropes().Interests().Count(oldVideo) != 0 {
		t.Fatal("stale interest on removed strand")
	}
	// Data survives, and playback is still continuous.
	units, err := fs.FetchUnits("venkat", r.ID, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range units {
		if err := media.ValidateFrameSeq(u, uint64(i)); err != nil {
			t.Fatalf("frame %d after relocation: %v", i, err)
		}
	}
	h, err := fs.Play("venkat", r.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	if v, _ := fs.PlayViolations(h); v != 0 {
		t.Fatalf("post-relocation playback violated %d times", v)
	}
}

func TestReorganizeUnknownStrand(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReorganizeStrand(999, 0); err == nil {
		t.Fatal("unknown strand accepted")
	}
}

func TestCompactConsolidatesFreeSpace(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Churn: several clips, delete alternating ones.
	var ropes []*rope.Rope
	for i := 0; i < 6; i++ {
		ropes = append(ropes, recordClip(t, fs, "venkat", 2, int64(8000+i)))
	}
	for i := 0; i < len(ropes); i += 2 {
		if _, err := fs.DeleteRope("venkat", ropes[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	used := fs.Allocator().TotalSectors() - fs.Allocator().FreeSectors()

	rep, err := fs.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved == 0 {
		t.Fatal("compact moved nothing")
	}
	// Allocation conservation: compaction must not change usage.
	usedAfter := fs.Allocator().TotalSectors() - fs.Allocator().FreeSectors()
	if usedAfter != used {
		t.Fatalf("compact changed usage %d → %d", used, usedAfter)
	}
	// The surviving ropes still play.
	for i := 1; i < len(ropes); i += 2 {
		h, err := fs.Play("venkat", ropes[i].ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
		if err != nil {
			t.Fatalf("rope %d: %v", ropes[i].ID, err)
		}
		fs.Manager().RunUntilDone()
		if v, _ := fs.PlayViolations(h); v != 0 {
			t.Fatalf("rope %d violated %d times after compact", ropes[i].ID, v)
		}
	}
	// And their content is intact.
	units, err := fs.FetchUnits("venkat", ropes[1].ID, rope.VideoOnly, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range units {
		if err := media.ValidateFrameSeq(u, uint64(i)); err != nil {
			t.Fatalf("frame %d after compact: %v", i, err)
		}
	}
}
