// Package core is the top-level multimedia file system facade: it ties
// the disk, the constrained allocator, the strand and rope stores, the
// interests-based garbage collector, the scattering-maintenance
// editor, and the Multimedia Storage Manager into one mountable file
// system with the paper's operation set — RECORD, PLAY, STOP, PAUSE,
// RESUME, INSERT, REPLACE, SUBSTRING, CONCATE, DELETE (§4.1) — plus
// Format/Open/Sync persistence.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mmfs/internal/alloc"
	"mmfs/internal/cache"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/gc"
	"mmfs/internal/msm"
	"mmfs/internal/obs"
	"mmfs/internal/rope"
	"mmfs/internal/strand"
	"mmfs/internal/textfs"
)

// ErrAccess reports an operation denied by a rope's access lists.
var ErrAccess = errors.New("core: access denied")

const (
	superMagic   = 0x4d4d4653 // "MMFS"
	superVersion = 1
	superLBA     = 0
)

// Options configure a file system at format time.
type Options struct {
	// Geometry describes the disk; zero value uses
	// disk.DefaultGeometry.
	Geometry disk.Geometry
	// Arch is the retrieval architecture assumed when deriving
	// granularity and scattering; zero value is pipelined.
	Arch continuity.Config
	// TargetCylinders is the placement policy: successive blocks of
	// a strand stay within this many cylinders, keeping the realized
	// scattering (and the admission-control β) far below the
	// continuity bound. 0 uses 32.
	TargetCylinders int
	// VideoDeviceBufferUnits and AudioDeviceBufferUnits are the
	// display devices' internal buffer sizes in units, from which
	// §3.3.4 derives the storage granularity. Zeros use 6 frames and
	// 8 audio units.
	VideoDeviceBufferUnits int
	AudioDeviceBufferUnits int
	// CacheMB sizes the interval cache in MiB: trailing plays of a
	// strand range are served from the blocks a leading play just
	// fetched, admitting more concurrent streams than the disk-only
	// bound n_max. 0 disables the cache.
	CacheMB int
	// Fault configures deterministic fault injection on the media
	// path (timed strand reads and writes). The zero scenario leaves
	// the raw disk in place — the fault layer costs nothing when off.
	// Metadata access always bypasses injection.
	Fault fault.Scenario
	// FaultPolicy overrides the storage manager's fault-tolerant
	// service policy; nil uses msm.DefaultFaultPolicy.
	FaultPolicy *msm.FaultPolicy
	// Disks is the number of independent spindles (the paper's degree
	// of concurrency p). Values above 1 build a striped disk.Array of
	// identical spindles — Geometry describes one spindle — and the
	// storage manager services one concurrent sub-round per spindle
	// with per-spindle admission control. 0 and 1 mean a single disk.
	Disks int
	// Stripe is the striping unit in cylinders: runs of Stripe
	// consecutive logical cylinders (stripe groups) are dealt
	// round-robin across the spindles, so a placement-constrained
	// strand stays on one spindle while distinct strands spread. Must
	// divide Geometry.Cylinders. 0 picks Cylinders/10 when that
	// divides evenly, else 1. Ignored for a single disk.
	Stripe int
	// FaultSpindle selects which spindle of an array the Fault
	// scenario wraps (a one-degraded-spindle experiment: only streams
	// resident there degrade). Out-of-range values are a configuration
	// error (an experiment naming a spindle the array does not have
	// must fail loudly, not silently degrade spindle 0). With a single
	// disk the scenario wraps the whole media path as before.
	FaultSpindle int
	// Mirror pairs the array's spindles into mirror groups (Disks must
	// be even and >= 2): capacity halves, both twins of a pair hold
	// identical data, and the file system survives the loss of either
	// twin of every pair — reads steer to the survivor, admission
	// shrinks to the surviving capacity, and a replaced spindle is
	// rebuilt online in the service rounds' leftover slack.
	Mirror bool
	// RebuildRate caps the repair chunks (one spindle cylinder each)
	// the online rebuild/rebalance engine copies per service round.
	// 0 uses the storage manager's default.
	RebuildRate int
	// QoSMaxStride enables QoS load shedding when ≥ 2: under overload,
	// standard and best-effort plays are admitted sub-sampled (at
	// power-of-two strides up to this bound) instead of rejected, and a
	// per-round pass promotes/demotes them as measured slack changes.
	// 0 (and 1) keep admission binary accept/reject.
	QoSMaxStride int
	// QoSDefault is the class assigned to PLAY requests that do not
	// name one. The zero value is best-effort; servers that want a
	// friendlier default set Standard.
	QoSDefault continuity.Class
}

func (o Options) withDefaults() (Options, error) {
	if o.Geometry.Cylinders == 0 {
		o.Geometry = disk.DefaultGeometry()
	}
	if o.Arch.Arch == continuity.Concurrent && o.Arch.P < 2 {
		o.Arch.P = o.Geometry.Heads
	}
	if o.TargetCylinders == 0 {
		o.TargetCylinders = 32
	}
	if o.VideoDeviceBufferUnits == 0 {
		o.VideoDeviceBufferUnits = 6
	}
	if o.AudioDeviceBufferUnits == 0 {
		o.AudioDeviceBufferUnits = 8
	}
	if o.Disks < 1 {
		o.Disks = 1
	}
	if o.Disks > 1 && o.Stripe == 0 {
		o.Stripe = o.Geometry.Cylinders / 10
		if o.Stripe == 0 || o.Geometry.Cylinders%o.Stripe != 0 {
			o.Stripe = 1
		}
	}
	if o.FaultSpindle < 0 || o.FaultSpindle >= o.Disks {
		return o, fmt.Errorf("core: fault spindle %d outside the array [0,%d)", o.FaultSpindle, o.Disks)
	}
	if o.Mirror && (o.Disks < 2 || o.Disks%2 != 0) {
		return o, fmt.Errorf("core: mirroring needs an even spindle count >= 2, have %d", o.Disks)
	}
	if o.RebuildRate < 0 {
		return o, fmt.Errorf("core: rebuild rate %d negative", o.RebuildRate)
	}
	return o, nil
}

// FS is a mounted multimedia file system.
type FS struct {
	opts Options
	// d is the metadata/identity store: a single simulated disk, or a
	// striped disk.Array when Options.Disks > 1.
	d disk.Store
	// mdev is the media-path device the strand layer, plan compilers,
	// and storage manager use: the raw disk, or the fault-injection
	// wrapper when a scenario is active. Metadata always uses d.
	mdev      disk.Device
	faultDisk *fault.Disk
	a         *alloc.Allocator
	strands   *strand.Store
	ropes     *rope.Store
	interests *gc.Interests
	collector *gc.Collector
	editor    *rope.Editor
	mgr       *msm.Manager
	dev       continuity.Device
	text      *textfs.Store
	// obsReg and obsRing are the file system's observability registry
	// and service-round trace; they outlive manager replacements
	// (NewManager re-wires the fresh manager into the same registry so
	// counters continue across experiment trials).
	obsReg  *obs.Registry
	obsRing *obs.TraceRing

	// metadata region bookkeeping
	bitmapLBA     int
	bitmapSectors int
	strandTab     alloc.Run
	ropeTab       alloc.Run
	textTab       alloc.Run
	strandTabLen  int
	ropeTabLen    int
	textTabLen    int
	// nextStart rotates strand start cylinders so concurrent strands
	// spread across the disk.
	nextStart int
}

// newStore builds the option-selected disk substrate: a single
// simulated disk, or a striped array of Disks identical spindles.
// With an active fault scenario an array wraps only spindle
// FaultSpindle, so one degraded spindle degrades only the streams
// resident on it; the single-disk path wraps the whole media path in
// build, as before.
func newStore(opts Options) (disk.Store, error) {
	if opts.Disks <= 1 {
		return disk.New(opts.Geometry)
	}
	devs := make([]disk.Device, opts.Disks)
	for i := range devs {
		d, err := disk.New(opts.Geometry)
		if err != nil {
			return nil, err
		}
		if opts.Fault.Active() && i == opts.FaultSpindle {
			devs[i] = fault.New(d, opts.Fault)
		} else {
			devs[i] = d
		}
	}
	if opts.Mirror {
		return disk.NewMirroredArray(devs, opts.Stripe)
	}
	return disk.NewArray(devs, opts.Stripe)
}

// Format creates a fresh file system on a new simulated disk (or
// striped array, when Options.Disks > 1).
func Format(opts Options) (*FS, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	d, err := newStore(opts)
	if err != nil {
		return nil, err
	}
	g := d.Geometry()
	bitmapBytes := (g.TotalSectors() + 63) / 64 * 8
	bitmapSectors := (bitmapBytes + g.SectorSize - 1) / g.SectorSize
	reserved := 1 + bitmapSectors
	a, err := alloc.New(g, reserved)
	if err != nil {
		return nil, err
	}
	fs := build(opts, d, a)
	fs.bitmapLBA = 1
	fs.bitmapSectors = bitmapSectors
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return fs, nil
}

// build wires the subsystems over an existing store and allocator.
func build(opts Options, d disk.Store, a *alloc.Allocator) *FS {
	g := d.Geometry()
	dev := continuity.Device{
		TransferRate: g.TransferRateBits(),
		MaxAccess:    continuity.Seconds(g.MaxAccessTime()),
		MinAccess:    continuity.Seconds(g.MinAccessTime()),
	}
	var mdev disk.Device = d
	var fd *fault.Disk
	if arr, ok := d.(*disk.Array); ok {
		// An array carries its fault wrapper inside (newStore wraps one
		// spindle); recover the handle for FaultDisk and obs wiring.
		for i := 0; i < arr.Spindles(); i++ {
			if w, ok := arr.Spindle(i).(*fault.Disk); ok {
				fd = w
				break
			}
		}
	} else if opts.Fault.Active() {
		if dd, ok := d.(*disk.Disk); ok {
			fd = fault.New(dd, opts.Fault)
			mdev = fd
		}
	}
	ss := strand.NewStore(mdev, a)
	in := gc.New()
	rs := rope.NewStore(ss, in)
	fs := &FS{
		opts:      opts,
		d:         d,
		mdev:      mdev,
		faultDisk: fd,
		a:         a,
		strands:   ss,
		ropes:     rs,
		interests: in,
		collector: gc.NewCollector(ss, in),
		editor:    rope.NewEditor(mdev, a, rs, opts.TargetCylinders),
		mgr:       msm.New(mdev, continuity.AdmissionFor(dev)),
		dev:       dev,
		text:      textfs.NewStore(d, a),
		nextStart: g.Cylinders / 7,
	}
	if opts.Arch.Arch == continuity.Concurrent {
		fs.mgr.SetConcurrency(opts.Arch.P)
	}
	if opts.CacheMB > 0 {
		fs.mgr.SetCache(cache.New(int64(opts.CacheMB) << 20))
	}
	if opts.FaultPolicy != nil {
		fs.mgr.SetFaultPolicy(*opts.FaultPolicy)
	}
	if opts.QoSMaxStride >= 2 {
		fs.mgr.SetQoS(msm.QoSPolicy{MaxStride: opts.QoSMaxStride})
	}
	if opts.RebuildRate > 0 {
		fs.mgr.SetRebuildRate(opts.RebuildRate)
	}
	fs.obsReg = obs.NewRegistry()
	fs.obsRing = obs.NewTraceRing(obs.DefaultTraceRounds)
	fs.wireObs()
	return fs
}

// wireObs connects the current disk, cache, and manager to the file
// system's registry and trace ring.
func (fs *FS) wireObs() {
	fs.d.SetReadLatencyHistogram(fs.obsReg.Histogram("mmfs_disk_read_seconds", obs.LatencyBuckets))
	fs.d.SetWriteLatencyHistogram(fs.obsReg.Histogram("mmfs_disk_write_seconds", obs.LatencyBuckets))
	if fs.faultDisk != nil {
		fs.faultDisk.SetObs(fs.obsReg)
	}
	if c := fs.mgr.Cache(); c != nil {
		c.SetObs(fs.obsReg)
	}
	fs.mgr.SetObs(fs.obsReg, fs.obsRing)
}

// Metrics returns the observability registry every subsystem reports
// into.
func (fs *FS) Metrics() *obs.Registry { return fs.obsReg }

// Trace returns the service-round trace ring.
func (fs *FS) Trace() *obs.TraceRing { return fs.obsRing }

// Open mounts a previously formatted file system from its disk (or
// array; the caller reconstructs the array around its spindles).
func Open(d disk.Store, opts Options) (*FS, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	opts.Geometry = d.Geometry()
	g := d.Geometry()
	sb, err := d.ReadAt(superLBA, 1)
	if err != nil {
		return nil, err
	}
	get32 := func(off int) int { return int(binary.LittleEndian.Uint32(sb[off:])) }
	if uint32(get32(0)) != superMagic {
		return nil, fmt.Errorf("core: bad superblock magic %#x", get32(0))
	}
	if get32(4) != superVersion {
		return nil, fmt.Errorf("core: unsupported version %d", get32(4))
	}
	a, err := alloc.New(g, 0)
	if err != nil {
		return nil, err
	}
	fs := build(opts, d, a)
	fs.bitmapLBA = get32(8)
	fs.bitmapSectors = get32(12)
	fs.strandTab = alloc.Run{LBA: get32(16), Sectors: get32(20)}
	fs.strandTabLen = get32(24)
	fs.ropeTab = alloc.Run{LBA: get32(28), Sectors: get32(32)}
	fs.ropeTabLen = get32(36)
	fs.nextStart = get32(40)
	fs.textTab = alloc.Run{LBA: get32(44), Sectors: get32(48)}
	fs.textTabLen = get32(52)

	bm, err := d.ReadAt(fs.bitmapLBA, fs.bitmapSectors)
	if err != nil {
		return nil, err
	}
	if err := a.UnmarshalBitmap(bm); err != nil {
		return nil, err
	}
	if fs.strandTab.Sectors > 0 {
		data, err := d.ReadAt(fs.strandTab.LBA, fs.strandTab.Sectors)
		if err != nil {
			return nil, err
		}
		if err := fs.strands.Unmarshal(data[:fs.strandTabLen]); err != nil {
			return nil, err
		}
	}
	if fs.ropeTab.Sectors > 0 {
		data, err := d.ReadAt(fs.ropeTab.LBA, fs.ropeTab.Sectors)
		if err != nil {
			return nil, err
		}
		if err := fs.ropes.Unmarshal(data[:fs.ropeTabLen]); err != nil {
			return nil, err
		}
	}
	if fs.textTab.Sectors > 0 {
		data, err := d.ReadAt(fs.textTab.LBA, fs.textTab.Sectors)
		if err != nil {
			return nil, err
		}
		if err := fs.text.Unmarshal(data[:fs.textTabLen]); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Sync persists the metadata: strand table, rope table, allocator
// bitmap, and superblock.
func (fs *FS) Sync() error {
	g := fs.d.Geometry()
	// Release prior table runs, then write fresh ones.
	if fs.strandTab.Sectors > 0 {
		fs.a.Free(fs.strandTab)
		fs.strandTab = alloc.Run{}
	}
	if fs.ropeTab.Sectors > 0 {
		fs.a.Free(fs.ropeTab)
		fs.ropeTab = alloc.Run{}
	}
	if fs.textTab.Sectors > 0 {
		fs.a.Free(fs.textTab)
		fs.textTab = alloc.Run{}
	}
	write := func(data []byte) (alloc.Run, error) {
		n := (len(data) + g.SectorSize - 1) / g.SectorSize
		if n == 0 {
			n = 1
		}
		run, err := fs.a.Allocate(n)
		if err != nil {
			return alloc.Run{}, err
		}
		return run, fs.d.WriteAt(run.LBA, data)
	}
	st := fs.strands.Marshal()
	run, err := write(st)
	if err != nil {
		return err
	}
	fs.strandTab, fs.strandTabLen = run, len(st)
	rt := fs.ropes.Marshal()
	if run, err = write(rt); err != nil {
		return err
	}
	fs.ropeTab, fs.ropeTabLen = run, len(rt)
	tt := fs.text.Marshal()
	if run, err = write(tt); err != nil {
		return err
	}
	fs.textTab, fs.textTabLen = run, len(tt)

	// Bitmap last: it must reflect the table allocations above.
	if err := fs.d.WriteAt(fs.bitmapLBA, fs.a.MarshalBitmap()); err != nil {
		return err
	}
	sb := make([]byte, g.SectorSize)
	put32 := func(off int, v int) { binary.LittleEndian.PutUint32(sb[off:], uint32(v)) }
	put32(0, int(superMagic))
	put32(4, superVersion)
	put32(8, fs.bitmapLBA)
	put32(12, fs.bitmapSectors)
	put32(16, fs.strandTab.LBA)
	put32(20, fs.strandTab.Sectors)
	put32(24, fs.strandTabLen)
	put32(28, fs.ropeTab.LBA)
	put32(32, fs.ropeTab.Sectors)
	put32(36, fs.ropeTabLen)
	put32(40, fs.nextStart)
	put32(44, fs.textTab.LBA)
	put32(48, fs.textTab.Sectors)
	put32(52, fs.textTabLen)
	return fs.d.WriteAt(superLBA, sb)
}

// Text exposes the integrated conventional text-file store, which
// lives in the gaps between media blocks.
func (fs *FS) Text() *textfs.Store { return fs.text }

// Disk exposes the underlying store: the single simulated disk, or
// the striped array when the file system was formatted with Disks > 1.
func (fs *FS) Disk() disk.Store { return fs.d }

// Array exposes the striped array, nil on a single-disk system.
func (fs *FS) Array() *disk.Array {
	if a, ok := fs.d.(*disk.Array); ok {
		return a
	}
	return nil
}

// MediaDevice exposes the media-path device: the raw disk, or the
// fault-injection wrapper when Options.Fault is active. Plan
// compilation and playback must go through it so injected faults reach
// the storage manager.
func (fs *FS) MediaDevice() disk.Device { return fs.mdev }

// FaultDisk exposes the fault-injection wrapper, nil when injection is
// off.
func (fs *FS) FaultDisk() *fault.Disk { return fs.faultDisk }

// Allocator exposes the block allocator.
func (fs *FS) Allocator() *alloc.Allocator { return fs.a }

// Manager exposes the storage manager; callers drive virtual time
// through it (RunRound / RunUntilDone).
func (fs *FS) Manager() *msm.Manager { return fs.mgr }

// NewManager replaces the storage manager with a fresh one (new
// virtual clock, empty request table) over the same disk and stored
// data. Experiments use it to run independent playback trials against
// one recorded data set.
func (fs *FS) NewManager() *msm.Manager {
	fs.mgr = msm.New(fs.mdev, continuity.AdmissionFor(fs.dev))
	if fs.opts.Arch.Arch == continuity.Concurrent {
		fs.mgr.SetConcurrency(fs.opts.Arch.P)
	}
	if fs.opts.CacheMB > 0 {
		fs.mgr.SetCache(cache.New(int64(fs.opts.CacheMB) << 20))
	}
	if fs.opts.FaultPolicy != nil {
		fs.mgr.SetFaultPolicy(*fs.opts.FaultPolicy)
	}
	if fs.opts.QoSMaxStride >= 2 {
		fs.mgr.SetQoS(msm.QoSPolicy{MaxStride: fs.opts.QoSMaxStride})
	}
	if fs.opts.RebuildRate > 0 {
		fs.mgr.SetRebuildRate(fs.opts.RebuildRate)
	}
	fs.wireObs()
	return fs.mgr
}

// Strands exposes the strand registry.
func (fs *FS) Strands() *strand.Store { return fs.strands }

// Ropes exposes the rope registry.
func (fs *FS) Ropes() *rope.Store { return fs.ropes }

// Editor exposes the scattering-maintenance editor.
func (fs *FS) Editor() *rope.Editor { return fs.editor }

// Device reports the disk characteristics the continuity model sees.
func (fs *FS) Device() continuity.Device { return fs.dev }

// Options reports the mounted options.
func (fs *FS) Options() Options { return fs.opts }

// TargetScattering is the placement policy's scattering parameter in
// seconds: the access time of a TargetCylinders-distant block.
func (fs *FS) TargetScattering() float64 {
	return continuity.Seconds(fs.d.Geometry().AccessTime(fs.opts.TargetCylinders))
}

// Constraint is the allocator constraint implementing the placement
// policy.
func (fs *FS) Constraint() alloc.Constraint {
	return alloc.Constraint{MinCylinders: 1, MaxCylinders: fs.opts.TargetCylinders}
}

// nextStartCylinder rotates strand start positions across the disk.
func (fs *FS) nextStartCylinder() int {
	c := fs.nextStart
	fs.nextStart = (fs.nextStart + fs.d.Geometry().Cylinders/5 + 13) % fs.d.Geometry().Cylinders
	return c
}

// Collect runs the garbage collector, reclaiming unreferenced strands.
// Cached blocks of reclaimed strands are dropped: their sectors may be
// reallocated and rewritten.
func (fs *FS) Collect() ([]strand.ID, error) {
	ids, err := fs.collector.Collect()
	if c := fs.mgr.Cache(); c != nil {
		for _, id := range ids {
			c.InvalidateStrand(id)
		}
	}
	return ids, err
}

// Occupancy reports the allocated fraction of the disk.
func (fs *FS) Occupancy() float64 { return fs.a.Occupancy() }
