package core

import (
	"testing"
	"time"

	"mmfs/internal/media"
	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

func TestFetchUnitsFillsGapsWithSilence(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 3, 9100)
	// Blank the middle second of audio; the fetch must return
	// silence-filled units of the right size for that second.
	if _, err := fs.DeleteRange("venkat", r.ID, rope.AudioOnly, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	units, err := fs.FetchUnits("venkat", r.ID, rope.AudioOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 30 { // 3 s at 10 units/s
		t.Fatalf("%d audio units", len(units))
	}
	fill := strand.SilenceFill(1 /* layout.Audio */)
	for i := 10; i < 20; i++ {
		if len(units[i]) != 800 {
			t.Fatalf("gap unit %d has %d bytes", i, len(units[i]))
		}
		for _, b := range units[i] {
			if b != fill {
				t.Fatalf("gap unit %d not silence-filled", i)
			}
		}
	}
}

func TestFetchUnitsSubRange(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 3, 9200)
	// Fetch frames 30..59 (the second second).
	units, err := fs.FetchUnits("venkat", r.ID, rope.VideoOnly, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 30 {
		t.Fatalf("%d units", len(units))
	}
	for i, u := range units {
		if err := media.ValidateFrameSeq(u, uint64(30+i)); err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
	}
}

func TestFetchUnitsErrors(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 2, 9300)
	if _, err := fs.FetchUnits("venkat", r.ID, rope.AudioVisual, 0, 0); err == nil {
		t.Fatal("AV fetch accepted (must be one medium)")
	}
	if _, err := fs.FetchUnits("venkat", 999, rope.VideoOnly, 0, 0); err == nil {
		t.Fatal("unknown rope accepted")
	}
	r.PlayAccess = []string{"nobody"}
	if _, err := fs.FetchUnits("mallory", r.ID, rope.VideoOnly, 0, 0); err == nil {
		t.Fatal("access control bypassed")
	}
}
