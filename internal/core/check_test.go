package core

import (
	"testing"
	"time"

	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

// checkClean asserts a freshly exercised file system passes fsck.
func checkClean(t *testing.T, fs *FS) {
	t.Helper()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if problems := fs.Check(); len(problems) != 0 {
		for _, p := range problems {
			t.Logf("  %s", p)
		}
		t.Fatalf("fsck found %d problem(s)", len(problems))
	}
}

func TestCheckCleanAfterLifecycle(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, fs)

	// Record, edit, delete, text files, GC, reorganize — then fsck.
	r1 := recordClip(t, fs, "venkat", 3, 6100)
	r2 := recordClip(t, fs, "venkat", 2, 6200)
	checkClean(t, fs)

	if _, err := fs.Insert("venkat", r1.ID, time.Second, rope.AudioVisual, r2.ID, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	checkClean(t, fs)

	if err := fs.Text().Write("note", []byte("in the gaps")); err != nil {
		t.Fatal(err)
	}
	sub, _, err := fs.Substring("venkat", r1.ID, rope.VideoOnly, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.DeleteRope("venkat", r2.ID); err != nil {
		t.Fatal(err)
	}
	checkClean(t, fs)

	if _, err := fs.Compact(); err != nil {
		t.Fatal(err)
	}
	checkClean(t, fs)

	if _, err := fs.DeleteRope("venkat", sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.DeleteRope("venkat", r1.ID); err != nil {
		t.Fatal(err)
	}
	checkClean(t, fs)
}

func TestCheckDetectsLeak(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Allocate sectors no structure owns.
	if _, err := fs.Allocator().Allocate(8); err != nil {
		t.Fatal(err)
	}
	problems := fs.Check()
	found := false
	for _, p := range problems {
		if p.Kind == "leak" {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak not detected: %v", problems)
	}
}

func TestCheckDetectsDanglingRef(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 2, 6300)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a reference.
	r.Intervals[0].Video.Strand = strand.ID(4242)
	problems := fs.Check()
	found := false
	for _, p := range problems {
		if p.Kind == "dangling-ref" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dangling reference not detected: %v", problems)
	}
}

func TestCheckDetectsUnallocatedUse(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 2, 6400)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Free a media run behind the file system's back.
	s := fs.Strands().MustGet(r.Intervals[0].Video.Strand)
	runs := s.MediaRuns()
	fs.Allocator().Free(runs[0])
	problems := fs.Check()
	found := false
	for _, p := range problems {
		if p.Kind == "unallocated" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unallocated use not detected: %v", problems)
	}
}
