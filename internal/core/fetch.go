package core

import (
	"fmt"
	"math"
	"time"

	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

// FetchUnits retrieves one medium of a rope's [start, start+dur) range
// as raw unit payloads, untimed (the data path for editors and
// network transfer, not the continuity-bearing playback path).
// Intervals where the medium is absent yield silence-filled units at
// the medium's unit size and rate.
func (fs *FS) FetchUnits(user string, id rope.ID, m rope.Medium, start, dur time.Duration) ([][]byte, error) {
	if m == rope.AudioVisual {
		return nil, fmt.Errorf("core: fetch one medium at a time")
	}
	r, ok := fs.ropes.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown rope %d", id)
	}
	if !r.CanPlay(user) {
		return nil, fmt.Errorf("%w: user %q cannot play rope %d", ErrAccess, user, id)
	}
	if dur == 0 {
		dur = r.Length() - start
	}
	part, err := fs.ropes.Slice(r, m, start, dur)
	if err != nil {
		return nil, err
	}
	// Find the medium's template strand for unit size/rate of gaps.
	var tmpl *strand.Strand
	for _, iv := range part {
		if ref := iv.Component(m); ref != nil && ref.Strand != strand.Nil {
			if s, ok := fs.strands.Get(ref.Strand); ok {
				tmpl = s
				break
			}
		}
	}
	if tmpl == nil {
		return nil, fmt.Errorf("core: rope %d has no %v component in range", id, m)
	}
	fill := strand.SilenceFill(tmpl.Medium())
	var out [][]byte
	for _, iv := range part {
		ref := iv.Component(m)
		if ref == nil || ref.Strand == strand.Nil {
			n := int(math.Round(iv.Duration.Seconds() * tmpl.Rate()))
			for i := 0; i < n; i++ {
				u := make([]byte, tmpl.UnitBytes())
				for j := range u {
					u[j] = fill
				}
				out = append(out, u)
			}
			continue
		}
		s, ok := fs.strands.Get(ref.Strand)
		if !ok {
			return nil, fmt.Errorf("core: rope %d references unknown strand %d", id, ref.Strand)
		}
		rd := strand.NewReader(fs.mdev, s)
		n := uint64(math.Round(iv.Duration.Seconds() * s.Rate()))
		if avail := s.UnitCount() - ref.StartUnit; n > avail {
			n = avail
		}
		for u := uint64(0); u < n; u++ {
			payload, err := rd.Unit(ref.StartUnit + u)
			if err != nil {
				return nil, err
			}
			out = append(out, payload)
		}
	}
	return out, nil
}
