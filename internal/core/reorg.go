package core

import (
	"fmt"

	"mmfs/internal/alloc"
	"mmfs/internal/layout"
	"mmfs/internal/strand"
)

// This file implements §6.2's storage reorganization: "When it becomes
// impossible to place new media strands in such a way that their
// scattering bounds are satisfied, the storage of existing media
// strands on the disk may have to be reorganized." ReorganizeStrand
// relocates one strand's blocks into a fresh policy-compliant chain;
// Compact packs every strand against a moving frontier, consolidating
// the free space that fragmentation has scattered.

// ReorganizeStrand relocates the strand's media blocks into a new
// constrained chain starting near startCylinder, rewrites every rope
// reference to point at the relocated strand, and frees the old
// blocks. It returns the relocated strand. Strands are immutable, so
// relocation necessarily mints a new strand ID.
//
// The payloads are staged in memory and the old placement freed
// *before* re-placement — reorganization exists precisely for disks
// too fragmented to hold two copies of a chain at once. A block that
// still finds no constrained placement falls back to unconstrained
// (nearest-free) placement rather than failing: data is never lost,
// and a later Compact pass can improve its position.
func (fs *FS) ReorganizeStrand(id strand.ID, startCylinder int) (*strand.Strand, error) {
	old, ok := fs.strands.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: reorganize of unknown strand %d", id)
	}
	rd := strand.NewReader(fs.mdev, old)
	g := fs.d.Geometry()

	// Stage every payload, then release the old strand's space.
	type staged struct {
		payload []byte
		silent  bool
	}
	blocks := make([]staged, old.NumBlocks())
	for b := range blocks {
		payload, silent, err := rd.BlockPayload(b)
		if err != nil {
			return nil, err
		}
		blocks[b] = staged{payload: payload, silent: silent}
	}
	meta := strand.BuildMeta{
		ID:          fs.strands.NewID(),
		Medium:      old.Medium(),
		Rate:        old.Rate(),
		UnitBytes:   old.UnitBytes(),
		Granularity: old.Granularity(),
		UnitCount:   old.UnitCount(),
		Variable:    old.Variable(),
	}
	if err := fs.strands.Remove(id); err != nil {
		return nil, err
	}

	var entries []layout.PrimaryEntry
	var prev alloc.Run
	havePrev := false
	for _, blk := range blocks {
		if blk.silent {
			entries = append(entries, layout.SilenceEntry())
			continue
		}
		nsec := (len(blk.payload) + g.SectorSize - 1) / g.SectorSize
		var run alloc.Run
		var err error
		if !havePrev {
			run, err = fs.a.AllocateNearCylinder(startCylinder, nsec)
		} else {
			run, err = fs.a.AllocateConstrained(prev, nsec, fs.Constraint())
			if err != nil {
				// Fragmentation fallback: place unconstrained near
				// the chain rather than lose the block.
				run, err = fs.a.AllocateNearCylinder(g.CylinderOf(prev.LBA), nsec)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: reorganize strand %d: %w", id, err)
		}
		if err := fs.d.WriteAt(run.LBA, blk.payload); err != nil {
			fs.a.Free(run)
			return nil, err
		}
		entries = append(entries, layout.PrimaryEntry{Sector: uint32(run.LBA), SectorCount: uint32(run.Sectors)})
		prev = run
		havePrev = true
	}
	relocated, err := fs.strands.BuildFromEntries(meta, entries)
	if err != nil {
		return nil, err
	}
	fs.ropes.ReplaceStrandRefs(id, relocated.ID())
	return relocated, nil
}

// CompactReport summarizes a Compact run.
type CompactReport struct {
	// Moved is the number of strands relocated.
	Moved int
	// SectorsMoved is the media payload relocated, in sectors.
	SectorsMoved int
	// LargestFreeRunBefore and After measure consolidation in
	// sectors.
	LargestFreeRunBefore int
	LargestFreeRunAfter  int
}

// Compact relocates every strand toward the start of the disk,
// weaving the constrained chains of successive strands into each
// other's scattering gaps (each chain is re-placed from cylinder 0 and
// takes the first policy-compliant holes), packing media at the front
// and consolidating free space at the end — the reorganization §6.2
// calls for when constrained allocation starts failing on a
// fragmented disk.
func (fs *FS) Compact() (CompactReport, error) {
	rep := CompactReport{LargestFreeRunBefore: fs.largestFreeRun()}
	for _, id := range fs.strands.IDs() {
		moved, err := fs.ReorganizeStrand(id, 0)
		if err != nil {
			return rep, err
		}
		rep.Moved++
		for _, run := range moved.MediaRuns() {
			rep.SectorsMoved += run.Sectors
		}
	}
	rep.LargestFreeRunAfter = fs.largestFreeRun()
	return rep, nil
}

// largestFreeRun scans the allocator for the longest contiguous free
// extent, the fragmentation metric reorganization improves.
func (fs *FS) largestFreeRun() int {
	best, run := 0, 0
	total := fs.a.TotalSectors()
	for i := 0; i < total; i++ {
		if fs.a.InUse(i) {
			run = 0
			continue
		}
		run++
		if run > best {
			best = run
		}
	}
	return best
}
