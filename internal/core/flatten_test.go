package core

import (
	"bytes"
	"testing"
	"time"

	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

func TestFlattenMergesIntervalsAndReclaims(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := recordClip(t, fs, "venkat", 4, 5500)
	other := recordClip(t, fs, "venkat", 2, 5600)

	// Chop the rope up: several inserts and a delete.
	for _, pos := range []time.Duration{time.Second, 3 * time.Second, 5 * time.Second} {
		if _, err := fs.Insert("venkat", base.ID, pos, rope.AudioVisual, other.ID, 0, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.DeleteRange("venkat", base.ID, rope.AudioVisual, 2*time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	lengthBefore := base.Length()
	before, _ := fs.IntervalCount(base.ID)
	if before < 4 {
		t.Fatalf("editing produced only %d intervals", before)
	}
	// Capture the exact pre-flatten content.
	wantVideo, err := fs.FetchUnits("venkat", base.ID, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Retire `other` so only shared references keep its strands alive.
	if _, err := fs.DeleteRope("venkat", other.ID); err != nil {
		t.Fatal(err)
	}
	strandsBefore := fs.Strands().Len()

	res, err := fs.Flatten("venkat", base.ID)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	after, _ := fs.IntervalCount(base.ID)
	if after != 1 {
		t.Fatalf("flatten left %d intervals", after)
	}
	if base.Length() != lengthBefore {
		t.Fatalf("flatten changed length %v → %v", lengthBefore, base.Length())
	}
	if len(res.Reclaimed) == 0 {
		t.Fatal("flatten reclaimed nothing despite exclusive old strands")
	}
	if fs.Strands().Len() >= strandsBefore {
		t.Fatalf("strand count %d → %d; merging should shrink it", strandsBefore, fs.Strands().Len())
	}

	// Content identical.
	gotVideo, err := fs.FetchUnits("venkat", base.ID, rope.VideoOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotVideo) != len(wantVideo) {
		t.Fatalf("unit count %d → %d", len(wantVideo), len(gotVideo))
	}
	for i := range gotVideo {
		if !bytes.Equal(gotVideo[i], wantVideo[i]) {
			t.Fatalf("unit %d differs after flatten", i)
		}
	}

	// Playback clean, fsck clean.
	h, err := fs.Play("venkat", base.ID, rope.AudioVisual, 0, 0, msm.PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	if v, _ := fs.PlayViolations(h); v != 0 {
		t.Fatalf("flattened playback violated %d times", v)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if problems := fs.Check(); len(problems) != 0 {
		t.Fatalf("fsck after flatten: %v", problems)
	}
}

func TestFlattenPreservesGapsAsSilence(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := recordClip(t, fs, "venkat", 3, 5700)
	if _, err := fs.DeleteRange("venkat", r.ID, rope.AudioOnly, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Flatten("venkat", r.ID); err != nil {
		t.Fatal(err)
	}
	units, err := fs.FetchUnits("venkat", r.ID, rope.AudioOnly, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 30 {
		t.Fatalf("%d audio units", len(units))
	}
	// The middle second reads as silence fill.
	for i := 10; i < 20; i++ {
		for _, b := range units[i] {
			if b != 128 {
				t.Fatalf("gap unit %d not silence after flatten", i)
			}
		}
	}
}

func TestFlattenRejectsVariableRate(t *testing.T) {
	fs, err := Format(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := fs.Record(RecordSpec{
		Creator: "venkat",
		Video:   media.NewVBRVideoSource(60, 8192, 2048, 10, 30, 5800),
	})
	if err != nil {
		t.Fatal(err)
	}
	fs.Manager().RunUntilDone()
	r, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Flatten("venkat", r.ID); err == nil {
		t.Fatal("flatten of VBR strand accepted")
	}
}
