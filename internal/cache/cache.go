// Package cache implements an interval-caching block cache shared
// across play requests. When a trailing play of a strand range runs
// within a bounded distance of a leading play, the trailing stream is
// served from the blocks the leader just fetched instead of from the
// disk: the cache pins each block the leader produces until its
// follower consumes it, forming an *interval* between the two streams.
// Capacity not held by interval pins acts as a plain LRU block cache.
//
// The bound on the leader/follower distance is the cache capacity
// itself: a stream may only become a follower while every block
// between its position and its leader's is still resident, and a
// chain's pins can never exceed the capacity (a leader whose follower
// falls too far behind simply fails to insert, the follower misses,
// and the manager demotes it back through full admission).
//
// The cache is not safe for concurrent use; the storage manager's
// round loop (and the server above it) serialize access.
package cache

import (
	"mmfs/internal/alloc"
	"mmfs/internal/obs"
	"mmfs/internal/strand"
)

// Result classifies a Get.
type Result int

const (
	// Miss: the block is not resident and no leader will produce it;
	// the caller must fetch from disk (or demote the stream).
	Miss Result = iota
	// Hit: the block was served from memory at zero disk cost.
	Hit
	// Wait: the block is not yet produced by the stream's leader; the
	// caller should retry after the leader makes progress rather than
	// touch the disk.
	Wait
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case Wait:
		return "wait"
	}
	return "miss"
}

// blockKey identifies one cached media block.
type blockKey struct {
	sid   strand.ID
	index int
}

// entry is one resident block. An entry is either pinned for exactly
// one claimant stream (the next follower that will consume it), or it
// sits on the LRU list.
type entry struct {
	key        blockKey
	data       []byte
	claimant   *stream // non-nil ⇒ pinned, off the LRU list
	prev, next *entry  // LRU links (nil when pinned)
}

// stream is one open play position over a strand. pos is the next
// block index the stream will produce (leader fetching from disk) or
// consume (follower reading from the cache); leader/follower link the
// interval chain L ← F1 ← F2 ordered by descending pos.
type stream struct {
	id               uint64
	sid              strand.ID
	pos              int
	end              int
	rate             float64
	leader, follower *stream
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses, Waits uint64
	Inserts, Evictions  uint64
	Adoptions           uint64
	// Bytes/PinnedBytes/Capacity describe residency; PinnedBytes ≤
	// Bytes ≤ Capacity always holds.
	Bytes, PinnedBytes, Capacity int64
	// Streams is the number of open play positions; Intervals the
	// number of leader←follower links among them.
	Streams, Intervals int
}

// Cache is the interval cache.
type Cache struct {
	capacity int64
	bytes    int64
	pinned   int64
	entries  map[blockKey]*entry
	streams  map[uint64]*stream
	// intervals counts leader←follower links, maintained incrementally
	// by Adopt/CloseStream so the hot path never walks the stream map.
	intervals int
	// LRU list of unpinned entries, head = most recent.
	head, tail *entry
	stats      Stats
	// obs mirrors the Stats counters into an observability registry;
	// all fields nil when SetObs was never called.
	obsHits, obsMisses, obsWaits      *obs.Counter
	obsInserts, obsEvictions          *obs.Counter
	obsAdoptions                      *obs.Counter
	obsBytes, obsPinned, obsIntervals *obs.Gauge
}

// obsInc bumps an optional observability counter.
func obsInc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// New creates a cache with the given capacity in bytes.
func New(capacity int64) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[blockKey]*entry),
		streams:  make(map[uint64]*stream),
	}
}

// Capacity reports the configured capacity in bytes.
func (c *Cache) Capacity() int64 { return c.capacity }

// SetObs mirrors the cache's counters into an observability registry
// (hit/miss/wait lookups, inserts, evictions, interval adoptions, and
// residency gauges). Call once, at wiring time.
func (c *Cache) SetObs(reg *obs.Registry) {
	c.obsHits = reg.Counter("mmfs_cache_hits_total")
	c.obsMisses = reg.Counter("mmfs_cache_misses_total")
	c.obsWaits = reg.Counter("mmfs_cache_waits_total")
	c.obsInserts = reg.Counter("mmfs_cache_inserts_total")
	c.obsEvictions = reg.Counter("mmfs_cache_evictions_total")
	c.obsAdoptions = reg.Counter("mmfs_cache_adoptions_total")
	c.obsBytes = reg.Gauge("mmfs_cache_bytes")
	c.obsPinned = reg.Gauge("mmfs_cache_pinned_bytes")
	c.obsIntervals = reg.Gauge("mmfs_cache_intervals")
	reg.Gauge("mmfs_cache_capacity_bytes").Set(c.capacity)
}

// syncGauges refreshes the residency gauges after a mutation.
func (c *Cache) syncGauges() {
	if c.obsBytes == nil {
		return
	}
	c.obsBytes.Set(c.bytes)
	c.obsPinned.Set(c.pinned)
	c.obsIntervals.Set(int64(c.intervals))
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Bytes, s.PinnedBytes, s.Capacity = c.bytes, c.pinned, c.capacity
	s.Streams = len(c.streams)
	s.Intervals = c.intervals
	return s
}

// OpenStream registers a play position: the stream will touch strand
// blocks [first, end) at the given playback rate (blocks/second class;
// only equality between streams matters). Reopening an id replaces the
// previous registration.
func (c *Cache) OpenStream(id uint64, sid strand.ID, first, end int, rate float64) {
	if _, ok := c.streams[id]; ok {
		c.CloseStream(id)
	}
	//lint:ignore allocpath one stream record per open play, retained until CloseStream
	c.streams[id] = &stream{id: id, sid: sid, pos: first, end: end, rate: rate}
}

// candidateLeader finds the stream a new follower at [first, …) on sid
// would trail: the hindmost follower-free stream at or ahead of first
// with a compatible rate, provided every gap block [first, leader.pos)
// is resident. Choosing the hindmost minimizes the gap (and therefore
// the pins), and chains followers L ← F1 ← F2 instead of fanning out.
func (c *Cache) candidateLeader(sid strand.ID, first int, rate float64, self *stream) *stream {
	var best *stream
	//lint:ignore boundedwork the streams map is bounded by admission control (Eq. 17's n_max)
	for _, t := range c.streams {
		if t == self || t.sid != sid || t.follower != nil {
			continue
		}
		if t.pos < first || !rateCompatible(t.rate, rate) {
			continue
		}
		if best == nil || t.pos < best.pos || (t.pos == best.pos && t.id < best.id) {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	// The trailing gap must be fully resident; a larger gap is a
	// superset of this one, so no further-ahead candidate can pass
	// where the hindmost fails.
	for i := first; i < best.pos; i++ {
		if _, ok := c.entries[blockKey{sid, i}]; !ok {
			return nil
		}
	}
	return best
}

// rateCompatible reports whether a follower at rate rf can trail a
// leader at rate rl: the rates must match, or the follower would drift
// into (faster) or away from (slower) its leader.
func rateCompatible(rl, rf float64) bool {
	d := rl - rf
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*rl
}

// Adoptable reports whether a new stream over [first, …) of sid at the
// given rate would find a leader right now. It has no side effects;
// admission control uses it to decide cache-served admission before
// the stream exists.
func (c *Cache) Adoptable(sid strand.ID, first int, rate float64) bool {
	if c == nil || c.capacity <= 0 {
		return false
	}
	return c.candidateLeader(sid, first, rate, nil) != nil
}

// Adopt attaches the open stream to a leader, pinning the gap blocks
// for it. It reports false when no leader qualifies (the stream then
// runs disk-bound). Between an Adoptable check and the matching Adopt
// the cache must not be mutated; the manager's serial admission path
// guarantees this.
func (c *Cache) Adopt(id uint64) bool {
	if c.capacity <= 0 {
		return false
	}
	s := c.streams[id]
	if s == nil || s.leader != nil {
		return false
	}
	l := c.candidateLeader(s.sid, s.pos, s.rate, s)
	if l == nil {
		return false
	}
	for i := s.pos; i < l.pos; i++ {
		e := c.entries[blockKey{s.sid, i}]
		if e.claimant == nil {
			c.lruRemove(e)
			e.claimant = s
			c.pinned += int64(len(e.data))
		}
		// Already claimed by another chain's follower: leave the
		// claim; the block is resident either way.
	}
	s.leader, l.follower = l, s
	c.intervals++
	c.stats.Adoptions++
	obsInc(c.obsAdoptions)
	c.syncGauges()
	return true
}

// Get serves the stream's read of the given block. A Hit advances the
// stream's position and hands down (or releases) the block's pin. A
// Wait means the block is not yet produced by the leader; a Miss means
// the stream has fallen off the cache and must be demoted to disk.
//
// rt:hotpath
func (c *Cache) Get(id uint64, index int) ([]byte, Result) {
	s := c.streams[id]
	if s == nil {
		c.stats.Misses++
		obsInc(c.obsMisses)
		return nil, Miss
	}
	// Never read at or past the leader's position, even if the block
	// is resident (it may be pinned for the leader-as-follower one
	// level up the chain, and consuming it would reorder the chain).
	if s.leader != nil && index >= s.leader.pos {
		c.stats.Waits++
		obsInc(c.obsWaits)
		return nil, Wait
	}
	e := c.entries[blockKey{s.sid, index}]
	if e == nil {
		c.stats.Misses++
		obsInc(c.obsMisses)
		return nil, Miss
	}
	c.consume(s, e)
	if index >= s.pos {
		s.pos = index + 1
	}
	c.stats.Hits++
	obsInc(c.obsHits)
	c.syncGauges()
	return e.data, Hit
}

// Peek classifies what Get would return, with no side effects. The
// manager's idle-time scan uses it to skip Wait-blocked streams.
//
// rt:hotpath
func (c *Cache) Peek(id uint64, index int) Result {
	s := c.streams[id]
	if s == nil {
		return Miss
	}
	if s.leader != nil && index >= s.leader.pos {
		return Wait
	}
	if c.entries[blockKey{s.sid, index}] == nil {
		return Miss
	}
	return Hit
}

// consume handles the pin of a block the stream has read or skipped:
// a claim held for this stream transfers to its own follower (the next
// consumer in the chain) or, at the chain tail, unpins to the LRU.
func (c *Cache) consume(s *stream, e *entry) {
	if e.claimant != s {
		if e.claimant == nil {
			c.lruMoveFront(e)
		}
		return
	}
	if f := s.follower; f != nil && e.key.index >= f.pos && e.key.index < f.end {
		e.claimant = f
		return
	}
	e.claimant = nil
	c.pinned -= int64(len(e.data))
	c.lruPushFront(e)
}

// Put records a block the stream fetched from disk, making it
// available to followers (pinned if one needs it) or to the plain LRU.
// The stream's position advances past the block either way.
//
// rt:hotpath
func (c *Cache) Put(id uint64, index int, data []byte) {
	s := c.streams[id]
	if s == nil {
		return
	}
	if index >= s.pos {
		s.pos = index + 1
	}
	size := int64(len(data))
	if size == 0 || size > c.capacity {
		return
	}
	key := blockKey{s.sid, index}
	if e := c.entries[key]; e != nil {
		// Copy into the entry-owned buffer: callers (the msm round
		// loop) recycle their read buffer the next service slot.
		e.data = alloc.CopyBytes(e.data, data)
		c.claimOrTouch(s, e)
		return
	}
	// Make room by evicting unpinned LRU entries; if the pins leave no
	// room the insert is skipped (the follower will miss and demote).
	for c.bytes+size > c.capacity {
		if !c.evictOne() {
			return
		}
	}
	//lint:ignore allocpath one entry per cache insert; the cache exists to retain blocks
	e := &entry{key: key}
	e.data = alloc.CopyBytes(nil, data)
	c.entries[key] = e
	c.bytes += size
	c.stats.Inserts++
	obsInc(c.obsInserts)
	c.lruPushFront(e)
	c.claimOrTouch(s, e)
	c.syncGauges()
}

// claimOrTouch pins the (resident) entry for the producing stream's
// follower if that follower still needs it, else refreshes its LRU
// position.
func (c *Cache) claimOrTouch(s *stream, e *entry) {
	f := s.follower
	needs := f != nil && e.key.index >= f.pos && e.key.index < f.end
	switch {
	case e.claimant == nil && needs:
		c.lruRemove(e)
		e.claimant = f
		c.pinned += int64(len(e.data))
	case e.claimant == nil:
		c.lruMoveFront(e)
	}
}

// Produced advances the stream's position past a block that was
// serviced without touching the cache (silence blocks cost no disk
// time and are regenerated on read, so caching them is pure waste).
//
// rt:hotpath
func (c *Cache) Produced(id uint64, index int) {
	s := c.streams[id]
	if s == nil {
		return
	}
	if e := c.entries[blockKey{s.sid, index}]; e != nil && e.claimant == s {
		c.consume(s, e)
	}
	if index >= s.pos {
		s.pos = index + 1
	}
}

// CloseStream removes a play position: every block pinned for it is
// handed down to its follower or released to the LRU, and the chain is
// spliced around it (the follower now trails the closed stream's
// leader; the interval survives exactly when the gap blocks remain
// resident, which they do — they were pinned for the follower). Safe
// to call for unknown ids.
func (c *Cache) CloseStream(id uint64) {
	s := c.streams[id]
	if s == nil {
		return
	}
	delete(c.streams, id)
	//lint:ignore boundedwork the entries map is bounded by the configured cache capacity
	for _, e := range c.entries {
		if e.claimant == s {
			if f := s.follower; f != nil && e.key.index >= f.pos && e.key.index < f.end {
				e.claimant = f
				continue
			}
			e.claimant = nil
			c.pinned -= int64(len(e.data))
			c.lruPushFront(e)
		}
	}
	// Splicing the chain removes exactly one link when the closed
	// stream participated in any: its own (leader non-nil) or its
	// follower's (which now trails s.leader, non-nil or not).
	if s.leader != nil || s.follower != nil {
		c.intervals--
	}
	if s.follower != nil {
		s.follower.leader = s.leader
	}
	if s.leader != nil {
		s.leader.follower = s.follower
	}
	s.leader, s.follower = nil, nil
}

// InvalidateStrand drops every cached block of a strand (the garbage
// collector reclaimed it, so the sectors may be rewritten). Streams
// over the strand are left open; their next Get misses and the manager
// demotes them.
func (c *Cache) InvalidateStrand(sid strand.ID) {
	for k, e := range c.entries {
		if k.sid == sid {
			c.removeEntry(e)
		}
	}
}

// removeEntry unlinks and forgets an entry regardless of pin state.
func (c *Cache) removeEntry(e *entry) {
	if e.claimant != nil {
		e.claimant = nil
		c.pinned -= int64(len(e.data))
	} else {
		c.lruRemove(e)
	}
	c.bytes -= int64(len(e.data))
	delete(c.entries, e.key)
}

// evictOne drops the least recently used unpinned entry; false when
// only pinned entries remain.
func (c *Cache) evictOne() bool {
	e := c.tail
	if e == nil {
		return false
	}
	c.removeEntry(e)
	c.stats.Evictions++
	obsInc(c.obsEvictions)
	return true
}

// --- intrusive LRU list (head = most recently used) ---

func (c *Cache) lruPushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) lruRemove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) lruMoveFront(e *entry) {
	if c.head == e {
		return
	}
	c.lruRemove(e)
	c.lruPushFront(e)
}
