package cache

import (
	"fmt"
	"testing"

	"mmfs/internal/strand"
)

const blockSize = 1024

func block(i int) []byte {
	b := make([]byte, blockSize)
	b[0] = byte(i)
	return b
}

// checkInvariants verifies the structural invariants after every
// mutation a test makes: byte accounting, pinned ⊆ resident, pinned ≤
// bytes ≤ capacity, LRU list consistency, and claimants being open
// streams positioned at or before their claimed blocks.
func checkInvariants(t *testing.T, c *Cache) {
	t.Helper()
	var bytes, pinned int64
	onLRU := map[blockKey]bool{}
	for e := c.head; e != nil; e = e.next {
		if e.claimant != nil {
			t.Fatalf("pinned entry %v on LRU list", e.key)
		}
		if e.next == nil && c.tail != e {
			t.Fatalf("LRU tail mismatch")
		}
		onLRU[e.key] = true
	}
	for k, e := range c.entries {
		if e.key != k {
			t.Fatalf("entry key %v filed under %v", e.key, k)
		}
		bytes += int64(len(e.data))
		if e.claimant != nil {
			pinned += int64(len(e.data))
			if c.streams[e.claimant.id] != e.claimant {
				t.Fatalf("entry %v claimed by closed stream %d", k, e.claimant.id)
			}
			if e.key.index < e.claimant.pos {
				t.Fatalf("entry %v pinned for stream %d already past it (pos %d)",
					k, e.claimant.id, e.claimant.pos)
			}
		} else if !onLRU[k] {
			t.Fatalf("unpinned entry %v not on LRU list", k)
		}
	}
	if bytes != c.bytes || pinned != c.pinned {
		t.Fatalf("accounting: have bytes=%d pinned=%d, recomputed %d/%d",
			c.bytes, c.pinned, bytes, pinned)
	}
	if pinned > c.bytes || c.bytes > c.capacity {
		t.Fatalf("capacity invariant violated: pinned=%d bytes=%d capacity=%d",
			pinned, c.bytes, c.capacity)
	}
}

func TestIntervalFormationAndConsumption(t *testing.T) {
	c := New(16 * blockSize)
	sid := strand.ID(7)
	c.OpenStream(1, sid, 0, 100, 10)
	for i := 0; i < 4; i++ {
		c.Put(1, i, block(i))
		checkInvariants(t, c)
	}

	// A second play of the same range adopts the leader; the 4-block
	// gap gets pinned for it.
	if !c.Adoptable(sid, 0, 10) {
		t.Fatal("follower not adoptable despite resident gap")
	}
	c.OpenStream(2, sid, 0, 100, 10)
	if !c.Adopt(2) {
		t.Fatal("Adopt failed after Adoptable")
	}
	checkInvariants(t, c)
	if got := c.Stats().Intervals; got != 1 {
		t.Fatalf("intervals = %d, want 1", got)
	}
	if c.pinned != 4*blockSize {
		t.Fatalf("pinned = %d, want %d", c.pinned, 4*blockSize)
	}

	// The follower consumes the gap: hits, pins released.
	for i := 0; i < 4; i++ {
		data, res := c.Get(2, i)
		if res != Hit || data[0] != byte(i) {
			t.Fatalf("Get(2, %d) = %v", i, res)
		}
		checkInvariants(t, c)
	}
	if c.pinned != 0 {
		t.Fatalf("pinned = %d after consumption, want 0", c.pinned)
	}

	// At the leader's position the follower must wait, not miss.
	if _, res := c.Get(2, 4); res != Wait {
		t.Fatalf("Get at leader position = %v, want Wait", res)
	}
	// Leader produces; follower is unblocked.
	c.Put(1, 4, block(4))
	checkInvariants(t, c)
	if c.pinned != blockSize {
		t.Fatalf("produced block not pinned for follower: pinned=%d", c.pinned)
	}
	if _, res := c.Get(2, 4); res != Hit {
		t.Fatalf("Get after production = %v, want Hit", res)
	}
	checkInvariants(t, c)
}

func TestChainedFollowersHandDownPins(t *testing.T) {
	c := New(16 * blockSize)
	sid := strand.ID(3)
	c.OpenStream(1, sid, 0, 50, 10)
	for i := 0; i < 3; i++ {
		c.Put(1, i, block(i))
	}
	c.OpenStream(2, sid, 0, 50, 10)
	if !c.Adopt(2) {
		t.Fatal("first follower not adopted")
	}
	// The second follower must chain behind the hindmost stream (2),
	// not fan out behind the leader.
	c.OpenStream(3, sid, 0, 50, 10)
	if !c.Adopt(3) {
		t.Fatal("second follower not adopted")
	}
	checkInvariants(t, c)
	if c.streams[3].leader != c.streams[2] {
		t.Fatal("follower 3 should trail follower 2")
	}

	// Stream 2 consuming a block hands its pin to stream 3 (still
	// pinned), and only stream 3's consumption releases it.
	before := c.pinned
	if _, res := c.Get(2, 0); res != Hit {
		t.Fatal("stream 2 should hit")
	}
	checkInvariants(t, c)
	if c.pinned != before {
		t.Fatalf("pin released too early: %d -> %d", before, c.pinned)
	}
	if _, res := c.Get(3, 0); res != Hit {
		t.Fatal("stream 3 should hit")
	}
	checkInvariants(t, c)
	if c.pinned != before-blockSize {
		t.Fatalf("pin not released at chain tail: %d", c.pinned)
	}
	// Stream 3 may not overtake stream 2.
	if _, res := c.Get(3, 1); res != Wait {
		t.Fatal("stream 3 should wait for stream 2")
	}
}

func TestPinsNeverExceedCapacity(t *testing.T) {
	const cap = 8
	c := New(cap * blockSize)
	sid := strand.ID(1)
	c.OpenStream(1, sid, 0, 1000, 10)
	c.Put(1, 0, block(0))
	c.OpenStream(2, sid, 0, 1000, 10)
	if !c.Adopt(2) {
		t.Fatal("adopt")
	}
	// The leader races far ahead while the follower never consumes:
	// inserts beyond capacity are refused rather than growing the pin
	// set, and the invariant holds throughout.
	for i := 1; i < 4*cap; i++ {
		c.Put(1, i, block(i))
		checkInvariants(t, c)
	}
	if c.pinned > c.capacity {
		t.Fatalf("pinned %d exceeds capacity %d", c.pinned, c.capacity)
	}
	// The follower drains what was pinned, then misses on the refused
	// inserts — the manager would demote it here.
	i := 0
	for ; ; i++ {
		data, res := c.Get(2, i)
		checkInvariants(t, c)
		if res != Hit {
			break
		}
		if data[0] != byte(i) {
			t.Fatalf("block %d corrupt", i)
		}
	}
	if i == 0 {
		t.Fatal("follower should consume the pinned prefix")
	}
	if _, res := c.Get(2, i); res != Miss {
		t.Fatalf("expected Miss after pinned prefix, got %v", res)
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New(3 * blockSize)
	sid := strand.ID(9)
	c.OpenStream(1, sid, 0, 100, 10)
	c.Put(1, 0, block(0))
	c.Put(1, 1, block(1))
	c.Put(1, 2, block(2))
	// Touch block 0 so block 1 becomes the LRU victim.
	c.OpenStream(2, sid, 0, 100, 10)
	if _, res := c.Get(2, 0); res != Hit {
		t.Fatal("expected hit on block 0")
	}
	c.Put(1, 3, block(3))
	checkInvariants(t, c)
	if c.Peek(2, 1) != Miss {
		t.Fatal("block 1 should have been evicted first")
	}
	for _, want := range []int{0, 2, 3} {
		if c.Peek(2, want) != Hit {
			t.Fatalf("block %d should be resident", want)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestCloseStreamSplicesChain(t *testing.T) {
	c := New(32 * blockSize)
	sid := strand.ID(4)
	c.OpenStream(1, sid, 0, 50, 10)
	for i := 0; i < 6; i++ {
		c.Put(1, i, block(i))
	}
	c.OpenStream(2, sid, 0, 50, 10)
	if !c.Adopt(2) {
		t.Fatal("adopt 2")
	}
	for i := 0; i < 2; i++ {
		if _, res := c.Get(2, i); res != Hit {
			t.Fatal("hit")
		}
	}
	c.OpenStream(3, sid, 0, 50, 10)
	if !c.Adopt(3) {
		t.Fatal("adopt 3")
	}
	checkInvariants(t, c)

	// Closing the middle stream hands its pins to its follower and
	// splices the chain: 3 now trails 1 directly.
	c.CloseStream(2)
	checkInvariants(t, c)
	if c.streams[3].leader != c.streams[1] {
		t.Fatal("chain not spliced around closed stream")
	}
	if c.streams[1].follower != c.streams[3] {
		t.Fatal("leader's follower not updated")
	}
	// Stream 3 can now consume everything up to the leader's position.
	for i := 0; i < 6; i++ {
		if _, res := c.Get(3, i); res != Hit {
			t.Fatalf("Get(3, %d) after splice: %v", i, res)
		}
		checkInvariants(t, c)
	}
	if _, res := c.Get(3, 6); res != Wait {
		t.Fatal("stream 3 should wait on spliced leader")
	}

	// Closing the leader leaves 3 leaderless: residual blocks hit from
	// plain LRU, then a Miss (demotion point), never a Wait.
	c.CloseStream(1)
	checkInvariants(t, c)
	c.Put(1, 99, block(99)) // unknown stream: must be a no-op
	if _, res := c.Get(3, 6); res != Miss {
		t.Fatal("leaderless stream past residency should miss")
	}
}

func TestInvalidateStrandDropsPinnedBlocks(t *testing.T) {
	c := New(32 * blockSize)
	sidA, sidB := strand.ID(1), strand.ID(2)
	c.OpenStream(1, sidA, 0, 50, 10)
	c.OpenStream(10, sidB, 0, 50, 10)
	for i := 0; i < 4; i++ {
		c.Put(1, i, block(i))
		c.Put(10, i, block(i))
	}
	c.OpenStream(2, sidA, 0, 50, 10)
	if !c.Adopt(2) {
		t.Fatal("adopt")
	}
	c.InvalidateStrand(sidA)
	checkInvariants(t, c)
	if c.pinned != 0 {
		t.Fatalf("pinned = %d after invalidate", c.pinned)
	}
	if _, res := c.Get(2, 0); res != Miss {
		t.Fatal("invalidated block should miss")
	}
	if c.Peek(11, 0) != Miss {
		t.Fatal("unknown stream should miss")
	}
	// The other strand is untouched.
	c.OpenStream(11, sidB, 0, 50, 10)
	if !c.Adoptable(sidB, 0, 10) {
		t.Fatal("strand B should still be adoptable")
	}
}

func TestAdoptionRefusedCases(t *testing.T) {
	c := New(8 * blockSize)
	sid := strand.ID(5)
	if c.Adoptable(sid, 0, 10) {
		t.Fatal("empty cache adoptable")
	}
	c.OpenStream(1, sid, 0, 100, 10)
	for i := 0; i < 12; i++ {
		c.Put(1, i, block(i))
	}
	// The leader outran the capacity: the gap from 0 is no longer
	// resident, so a new play from the start must run disk-bound.
	if c.Adoptable(sid, 0, 10) {
		t.Fatal("adoptable despite evicted gap")
	}
	// …but a play starting inside the resident window can follow.
	if !c.Adoptable(sid, 8, 10) {
		t.Fatal("not adoptable inside resident window")
	}
	// Rate mismatch breaks the interval (FF/slow-motion play).
	if c.Adoptable(sid, 8, 20) {
		t.Fatal("adoptable across rate mismatch")
	}
	// A zero-capacity cache never adopts.
	z := New(0)
	z.OpenStream(1, sid, 0, 10, 10)
	if z.Adoptable(sid, 0, 10) || z.Adopt(1) {
		t.Fatal("zero-capacity cache adopted")
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := New(4 * blockSize)
	sid := strand.ID(6)
	c.OpenStream(1, sid, 0, 10, 10)
	c.Put(1, 0, block(0))
	c.OpenStream(2, sid, 0, 10, 10)
	if !c.Adopt(2) {
		t.Fatal("adopt")
	}
	if _, res := c.Get(2, 0); res != Hit {
		t.Fatal("hit")
	}
	if _, res := c.Get(2, 1); res != Wait {
		t.Fatal("wait")
	}
	c.CloseStream(1)
	if _, res := c.Get(2, 1); res != Miss {
		t.Fatal("miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Waits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Adoptions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Streams != 1 || st.Intervals != 0 {
		t.Fatalf("population stats = %+v", st)
	}
	for i, want := range []string{"miss", "hit", "wait"} {
		if got := fmt.Sprint(Result(i)); got != want {
			t.Fatalf("Result(%d) = %q", i, got)
		}
	}
}
