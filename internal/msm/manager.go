package msm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/cache"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/sim"
)

// ErrAdmissionRejected reports that accepting the request would
// violate the real-time constraints of the already-admitted requests.
var ErrAdmissionRejected = errors.New("msm: admission rejected")

// ServiceOrder selects the order requests are serviced within a round.
type ServiceOrder int

const (
	// ArrivalOrder is the paper's baseline: "round-robin servicing of
	// requests in the order in which they are received" (§6.2), which
	// forces admission control to assume the maximum seek between
	// requests.
	ArrivalOrder ServiceOrder = iota
	// ScanOrder implements §6.2's proposed improvement: servicing
	// requests "in the order that minimizes … the separations between
	// blocks" — a C-SCAN sweep over the cylinders of each request's
	// next block, cutting the switch overhead well below the
	// worst-case seek the admission formulas charge.
	ScanOrder
)

// String names the order.
func (o ServiceOrder) String() string {
	if o == ScanOrder {
		return "scan"
	}
	return "arrival"
}

// TransitionPolicy selects how the manager grows k when an admission
// raises it.
type TransitionPolicy int

const (
	// Stepwise is the paper's algorithm: k grows by one per round
	// under the transient-safe bound (Eq. 18), guaranteeing
	// continuity during the transition.
	Stepwise TransitionPolicy = iota
	// NaiveJump switches directly from k_old to k_new; the paper
	// shows this can cause transient discontinuities ("the time
	// spent to transfer k_new blocks may exceed the playback
	// duration of k_old blocks"). Provided for the EXP-TR
	// experiment.
	NaiveJump
)

// Stats counts manager activity.
type Stats struct {
	Rounds          uint64
	BlocksFetched   uint64
	BlocksWritten   uint64
	SilenceBlocks   uint64
	IdleTime        time.Duration
	TransitionSteps uint64
	// CacheHits is the subset of BlocksFetched served from the
	// interval cache at zero disk time.
	CacheHits uint64
	// Demotions counts cache-served requests whose interval broke and
	// that went back through full admission.
	Demotions uint64
	// Violations is the total number of continuity violations recorded
	// across all requests (each one is also in the per-request lists).
	Violations uint64
	// Retries counts block reads re-attempted within a round after a
	// transient disk fault, each charged against the round's slack.
	Retries uint64
	// DegradedBlocks counts blocks delivered as zero-fill because
	// faults exhausted the retry budget (graceful degradation).
	DegradedBlocks uint64
	// FaultStops counts requests stopped after ConsecFailLimit
	// consecutive degraded deliveries (the escalation tier).
	FaultStops uint64
	// Promotions counts QoS promotions: a load-shed stream stepped
	// back toward full rate by freed capacity.
	Promotions uint64
	// LoadDemotions counts QoS load-shed demotions: admission-time
	// shedding for a higher-class candidate plus round-pass demotions
	// under rising load.
	LoadDemotions uint64
	// ShedBlocks counts plan blocks skipped (never fetched) by
	// load-shed sub-sampling; the retained neighbor covers their
	// display time.
	ShedBlocks uint64
	// RebuildBlocks counts repair chunks (one spindle cylinder each)
	// copied by the online rebuild/rebalance engine, every one charged
	// against a round's measured slack.
	RebuildBlocks uint64
}

// FaultPolicy configures the manager's fault-tolerant service path.
// Only faults injected by internal/fault trigger it; a broken plan is
// still a programming error that kills the request.
type FaultPolicy struct {
	// MaxRetries bounds the in-round re-reads of one block after a
	// transient fault. Retries are additionally bounded by the round's
	// measured slack (k·γ − n·α − n·k·β of virtual time): an attempt
	// whose estimated service time exceeds the remaining slack is not
	// made, and the block degrades instead.
	MaxRetries int
	// ConsecFailLimit escalates degradation: a request whose last
	// ConsecFailLimit block deliveries were all degraded is stopped
	// (it is chewing through the shared slack every round and its
	// output is unusable anyway). 0 disables escalation. The counter
	// resets on every clean read and on Resume.
	ConsecFailLimit int
}

// DefaultFaultPolicy is the policy managers start with: two retries
// per block, escalation after eight consecutive degraded deliveries.
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{MaxRetries: 2, ConsecFailLimit: 8}
}

// Manager is the Multimedia Storage Manager: it owns the disk, the
// virtual clock, and the active request table, and services requests
// in rounds of k blocks per request.
type Manager struct {
	d      disk.Device
	clock  sim.Clock
	adm    continuity.Admission
	k      int
	policy TransitionPolicy
	// concurrency is the number of disk heads used in parallel per
	// request (the paper's p); 1 for sequential/pipelined
	// architectures.
	concurrency int
	order       ServiceOrder
	reqs        []*request
	nextID      RequestID
	stats       Stats
	// cache, when set, serves trailing plays of a strand range from
	// the blocks a leading play just fetched (interval caching).
	cache *cache.Cache
	// inDemote guards processDemotions against re-entry from the
	// transition rounds a demotion's re-admission runs.
	inDemote bool
	// ft is the fault-tolerant service policy; retrySlack is the
	// round's remaining retry budget in virtual time, recomputed from
	// Eq. 18's slack at the top of every round and consumed by each
	// retry's actual service time.
	ft         FaultPolicy
	retrySlack time.Duration
	// Per-round scratch storage, reused to keep the service loop
	// allocation-free (the round loop is the hot path). Service-time
	// scratch (the degraded-block marks and the block-payload buffer)
	// lives on the lanes, which parallel sub-rounds own exclusively.
	scratchAct []*request
	scratchAdm []continuity.Request
	sorter     scanSorter
	// serial is the lane that services every request on a single
	// device, and the striped round's serial phase; its virtual time
	// writes through to the manager clock.
	serial *lane
	// array, lanes and laneWG drive the striped parallel round when d
	// is a disk.Array of degree > 1: one lane — and one goroutine per
	// round, joined before the round closes — per spindle.
	array         *disk.Array
	lanes         []*lane
	laneWG        sync.WaitGroup
	scratchSerial []*request
	// obs, when set, receives per-round trace records and mirrors the
	// counters into a metrics registry (see obs.go).
	obs *roundObs
	// qos enables load-driven graceful degradation (see qos.go); the
	// zero policy keeps admission binary. inQoS guards the per-round
	// class pass against re-entry from an admission negotiation's
	// transition rounds; scratchQoS is the promotion queue's arena.
	qos        QoSPolicy
	inQoS      bool
	scratchQoS []*request
	// advancers are the fault layers wrapping the device(s); RunRound
	// ticks their virtual round counters so die=<round> scenarios fire
	// exactly on round boundaries (see rebuild.go).
	advancers []roundAdvancer
	// kTarget, when above k, grows the blocks-per-round by one per
	// round — the §3.4 stepwise transition applied to a re-steer: a
	// dead spindle's streams absorbed by the surviving twin can push
	// that spindle's population past what the current k sustains.
	kTarget int
	// rb drives the online rebuild/rebalance engine (see rebuild.go).
	rb repairCtl
}

// New creates a manager over the disk with the given admission
// controller. Concurrency defaults to 1 head and the fault policy to
// DefaultFaultPolicy (it only engages on injected faults, so it is
// safe always-on).
func New(d disk.Device, adm continuity.Admission) *Manager {
	m := &Manager{d: d, adm: adm, k: 1, concurrency: 1, nextID: 1, ft: DefaultFaultPolicy()}
	m.serial = &lane{m: m, spindle: -1, clk: &m.clock}
	if a, ok := d.(*disk.Array); ok && a.Spindles() > 1 {
		m.array = a
		g := a.Spindle(0).Geometry()
		for i := 0; i < a.Spindles(); i++ {
			ln := &lane{
				m: m, spindle: i,
				spc: g.SectorsPerCylinder(), cyls: g.Cylinders,
			}
			ln.runFn = ln.run
			m.lanes = append(m.lanes, ln)
		}
	}
	m.rb.rate = DefaultRebuildRate
	m.probeAdvancers()
	return m
}

// SetFaultPolicy overrides the fault-tolerant service policy.
// Negative fields are clamped to zero (zero MaxRetries degrades on the
// first fault; zero ConsecFailLimit never escalates).
func (m *Manager) SetFaultPolicy(p FaultPolicy) {
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.ConsecFailLimit < 0 {
		p.ConsecFailLimit = 0
	}
	m.ft = p
}

// FaultPolicy reports the fault-tolerant service policy in use.
func (m *Manager) FaultPolicy() FaultPolicy { return m.ft }

// RetrySlack reports the round retry budget remaining: Eq. 18's
// measured slack at the top of the round minus the service time of the
// retries performed since.
func (m *Manager) RetrySlack() time.Duration { return m.retrySlack }

// SetPolicy selects the k-transition policy.
func (m *Manager) SetPolicy(p TransitionPolicy) { m.policy = p }

// SetServiceOrder selects the within-round service order.
func (m *Manager) SetServiceOrder(o ServiceOrder) { m.order = o }

// SetConcurrency sets the number of disk heads fetched in parallel per
// request (clamped to the disk's head count).
func (m *Manager) SetConcurrency(p int) {
	if p < 1 {
		p = 1
	}
	if p > m.d.Heads() {
		p = m.d.Heads()
	}
	m.concurrency = p
}

// Now reports the current virtual time.
func (m *Manager) Now() time.Duration { return m.clock.Now() }

// K reports the current blocks-per-round.
func (m *Manager) K() int { return m.k }

// ForceK overrides the blocks-per-round; experiments use it to search
// for the minimal feasible k independently of the admission formulas.
func (m *Manager) ForceK(k int) {
	if k < 1 {
		k = 1
	}
	m.k = k
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Admission returns the admission controller in use.
func (m *Manager) Admission() continuity.Admission { return m.adm }

// SetCache installs an interval cache; nil disables caching. Intended
// at manager construction, before requests are admitted.
func (m *Manager) SetCache(c *cache.Cache) { m.cache = c }

// Cache returns the interval cache, nil when disabled.
func (m *Manager) Cache() *cache.Cache { return m.cache }

// admissionSet lists the requests currently charged by admission
// control: active and non-destructively paused disk-bound ones (their
// resources remain allocated). Cache-served followers perform no disk
// work, so the cache-aware controller excludes them (they are counted
// separately by CacheServed).
func (m *Manager) admissionSet() []continuity.Request {
	out := m.scratchAdm[:0]
	for _, r := range m.reqs {
		if r.done || r.cacheServed {
			continue
		}
		if r.pause != nil && r.pause.destructive {
			continue
		}
		out = alloc.Append(out, r.effAdm())
	}
	m.scratchAdm = out
	return out
}

// ActiveRequests reports how many disk-bound requests admission
// control is currently carrying.
func (m *Manager) ActiveRequests() int { return len(m.admissionSet()) }

// CacheServed reports how many live requests are currently served from
// the interval cache instead of the disk.
func (m *Manager) CacheServed() int {
	n := 0
	for _, r := range m.reqs {
		if r.cacheServed && !r.done {
			n++
		}
	}
	return n
}

// admit runs the admission decision and k transition for a candidate,
// returning the decision. On acceptance the caller appends the
// request. A cacheServed candidate (one the interval cache can fully
// serve) is admitted at the current k without charging disk time —
// Eq. 18 is evaluated over the disk-bound population only.
//
// spindle is the candidate's home spindle on a striped array — the one
// holding its first media block — or negative when unknown (records,
// repositioned plays), in which case the candidate must fit on every
// spindle. Over an array, Eq. 18 is evaluated per spindle against the
// spindle-resident population (continuity.Striped), so the aggregate
// admitted load can reach p times the single-spindle n_max. On a
// single device spindle is ignored.
func (m *Manager) admit(spindle int, candidate continuity.Request, cacheServed bool) (continuity.Decision, error) {
	dec := m.decideAdmit(spindle, candidate, cacheServed)
	m.noteAdmission(dec.Admitted, dec.CacheServed)
	if !dec.Admitted {
		//lint:ignore allocpath admission rejection wraps the reason once, on the error path
		return dec, fmt.Errorf("%w: %s", ErrAdmissionRejected, dec.Reason)
	}
	if dec.CacheServed {
		return dec, nil
	}
	switch m.policy {
	case Stepwise:
		// Larger k means larger rounds: renegotiate every stream's
		// buffer grant to the §3.3.2 provisioning (2k for pipelined
		// retrieval) before the transition rounds run, so the
		// stepwise growth can actually accumulate the read-ahead
		// each longer round needs.
		if dec.K > m.k {
			m.growPlayBuffers(2 * dec.K)
		}
		// One round at each intermediate k before the new request
		// begins to be serviced (§3.4's transparent transition).
		for _, step := range dec.Steps {
			m.k = step
			m.stats.TransitionSteps++
			if m.obs != nil {
				m.obs.transitions.Inc()
			}
			//lint:ignore boundedwork transition rounds re-enter the round loop a bounded len(dec.Steps) times; inDemote blocks deeper nesting
			m.RunRound()
		}
	case NaiveJump:
		if dec.K > m.k {
			m.k = dec.K
		}
	}
	if dec.K > m.k {
		m.k = dec.K
	}
	return dec, nil
}

// decideAdmit evaluates the admission decision for a candidate without
// side effects: no transition rounds, no counters. The QoS negotiation
// uses it to probe shed/degrade combinations before committing.
func (m *Manager) decideAdmit(spindle int, candidate continuity.Request, cacheServed bool) continuity.Decision {
	if m.array != nil && !cacheServed {
		st := continuity.Striped{A: m.adm, P: len(m.lanes)}
		return st.Admit(m.spindleAdmissionSets(), spindle, m.k, candidate)
	}
	ca := continuity.CacheAware{A: m.adm}
	return ca.Admit(m.admissionSet(), m.k, candidate, cacheServed)
}

// growPlayBuffers raises every live play request's buffer grant to at
// least n blocks.
func (m *Manager) growPlayBuffers(n int) {
	for _, r := range m.reqs {
		if r.done || r.kind != Play {
			continue
		}
		if r.play.plan.Buffers < n {
			r.play.plan.Buffers = n
		}
	}
}

// AdmitPlay admits and registers a PLAY request. The request begins
// receiving service in the next round. When an interval cache is
// installed and a leading play of the same strand range can feed this
// one, the request is admitted cache-served: it charges no disk time,
// so the total population may exceed Eq. 17's n_max.
func (m *Manager) AdmitPlay(plan PlayPlan) (RequestID, continuity.Decision, error) {
	if err := plan.Validate(); err != nil {
		return 0, continuity.Decision{}, err
	}
	sid, first, end, eligible := planCacheRange(plan)
	eligible = eligible && m.cache != nil
	cacheServed := eligible && m.cache.Adoptable(sid, first, plan.Admission.Rate)
	var dec continuity.Decision
	var err error
	if m.qosEnabled() && !cacheServed {
		// Class-ordered negotiation: full rate, then shedding lower
		// classes, then sub-sampled admission of the candidate itself.
		dec, err = m.admitClassed(m.planSpindle(plan), plan.Admission, plan.Class)
	} else {
		dec, err = m.admit(m.planSpindle(plan), plan.Admission, cacheServed)
	}
	if err != nil {
		return 0, dec, err
	}
	stride := dec.Stride
	if stride < 1 {
		stride = 1
	}
	ra := plan.ReadAhead
	if ra < 1 {
		ra = 1
	}
	if ra > plan.Buffers {
		ra = plan.Buffers
	}
	if ra > len(plan.Blocks) {
		ra = len(plan.Blocks)
	}
	if m.policy == Stepwise && plan.Buffers < 2*m.k {
		// The request joins a system already running at k; provision
		// it for those rounds.
		plan.Buffers = 2 * m.k
	}
	ps := &playState{plan: plan, readAhead: ra, stride: stride}
	ps.deadlines = make([]time.Duration, len(plan.Blocks)+1)
	var sum time.Duration
	for i, b := range plan.Blocks {
		ps.deadlines[i] = sum
		sum += b.Duration
	}
	ps.deadlines[len(plan.Blocks)] = sum
	if eligible {
		ps.cacheEligible, ps.cacheSID, ps.cacheEnd = true, sid, end
	}
	r := &request{id: m.newID(), kind: Play, name: plan.Name, adm: plan.Admission, play: ps, class: plan.Class}
	m.reqs = append(m.reqs, r)
	if m.obs != nil {
		m.obs.classAdmitted[r.class].Inc()
		m.obs.effRate.Observe(plan.Admission.Rate / float64(stride))
	}
	if eligible && stride == 1 {
		// Register the play position: disk-bound eligible requests
		// become potential leaders (their fetches feed the cache). A
		// load-shed stream cannot lead — its skipped blocks would
		// starve any follower — so it joins the cache only if promoted
		// back to full rate.
		m.cache.OpenStream(uint64(r.id), sid, first, end, plan.Admission.Rate)
		ps.cacheOpen = true
		if dec.CacheServed {
			if m.cache.Adopt(uint64(r.id)) {
				r.cacheServed = true
			} else {
				// Cannot happen: nothing mutates the cache between the
				// Adoptable check and here. Recover through the
				// demotion path rather than crash.
				r.cacheServed = true
				r.needsDemote = true
			}
		}
	}
	return r.id, dec, nil
}

// AdmitRecord admits and registers a RECORD request. Capture starts
// immediately (virtual now); the first block becomes writable one
// block-duration later.
func (m *Manager) AdmitRecord(plan RecordPlan) (RequestID, continuity.Decision, error) {
	if err := plan.Validate(); err != nil {
		return 0, continuity.Decision{}, err
	}
	dec, err := m.admit(-1, plan.Admission, false)
	if err != nil {
		return 0, dec, err
	}
	blockDur := continuity.Duration(float64(plan.UnitsPerBlock) / plan.Source.Rate())
	total := 0
	if plan.TotalUnits > 0 {
		total = int((plan.TotalUnits + uint64(plan.UnitsPerBlock) - 1) / uint64(plan.UnitsPerBlock))
	}
	rs := &recordState{plan: plan, start: m.clock.Now(), blockDur: blockDur, totalBlks: total}
	r := &request{id: m.newID(), kind: Record, name: plan.Name, adm: plan.Admission, rec: rs}
	m.reqs = append(m.reqs, r)
	return r.id, dec, nil
}

func (m *Manager) newID() RequestID {
	id := m.nextID
	m.nextID++
	return id
}

// find returns the request or an error.
func (m *Manager) find(id RequestID) (*request, error) {
	for _, r := range m.reqs {
		if r.id == id {
			return r, nil
		}
	}
	return nil, fmt.Errorf("msm: unknown request %d", id)
}

// Stop halts a request (§4.1's STOP): a play request is dropped; a
// record request stops capturing (the caller closes the writer). The
// request leaves the admission set.
func (m *Manager) Stop(id RequestID) error {
	r, err := m.find(id)
	if err != nil {
		return err
	}
	r.done = true
	// A stopped leader's followers are spliced to its own leader (or
	// left to drain the pinned backlog and demote).
	m.closeCacheStream(r)
	return nil
}

// Pause suspends a request (§4.1): destructive pauses release the
// request's admission slot (a later Resume re-runs admission);
// non-destructive pauses keep resources allocated.
func (m *Manager) Pause(id RequestID, destructive bool) error {
	r, err := m.find(id)
	if err != nil {
		return err
	}
	if r.done {
		return fmt.Errorf("msm: pause of finished request %d", id)
	}
	if r.pause != nil {
		return fmt.Errorf("msm: request %d already paused", id)
	}
	r.pause = &pauseState{at: m.clock.Now(), destructive: destructive}
	// A paused producer stops feeding its followers either way; close
	// its cache stream so they demote instead of waiting forever. A
	// paused cache-served request re-enters the cache on resume.
	m.closeCacheStream(r)
	r.needsDemote = false
	return nil
}

// Resume restarts a paused request, shifting its deadlines by the
// pause duration. Resuming a destructively paused request re-runs
// admission control and may be rejected.
func (m *Manager) Resume(id RequestID) (continuity.Decision, error) {
	r, err := m.find(id)
	if err != nil {
		return continuity.Decision{}, err
	}
	if r.pause == nil {
		return continuity.Decision{}, fmt.Errorf("msm: resume of running request %d", id)
	}
	var dec continuity.Decision
	if r.pause.destructive {
		// A destructively paused request gave up its slot; try to come
		// back as a cache-served follower first, else through full
		// admission.
		cacheServed := false
		if r.kind == Play && m.cache != nil && r.play.cacheEligible && r.play.nextFetch < len(r.play.plan.Blocks) {
			b := r.play.plan.Blocks[r.play.nextFetch]
			cacheServed = m.cache.Adoptable(r.play.cacheSID, b.Index, r.adm.Rate)
		}
		sp := -1
		if s, ok := m.requestSpindle(r); ok {
			sp = s
		}
		dec, err = m.admit(sp, r.adm, cacheServed)
		if err != nil {
			return dec, err
		}
		r.cacheServed = dec.CacheServed
	}
	shift := m.clock.Now() - r.pause.at
	switch r.kind {
	case Play:
		if r.play.started {
			r.play.startTime += shift
		}
	case Record:
		r.rec.start += shift
	}
	r.pause = nil
	// A resume is an operator-visible fresh start: give the request a
	// clean run at the escalation threshold.
	r.consecFails = 0
	m.reopenCacheStream(r)
	if r.cacheServed && (!r.play.cacheOpen || !m.cache.Adopt(uint64(r.id))) {
		// The adoption the admission was based on is gone; resolve
		// through demotion at the next round.
		r.needsDemote = true
	}
	return dec, nil
}

// SetBuffers renegotiates the number of display-device block buffers
// of a play request. The MRS grows buffer grants when admission raises
// k (the §3.3.2 provisioning rule ties buffering to k); shrinking
// below the current occupancy is clamped at the next fetch rather than
// discarding data.
func (m *Manager) SetBuffers(id RequestID, buffers int) error {
	r, err := m.find(id)
	if err != nil {
		return err
	}
	if r.kind != Play {
		return fmt.Errorf("msm: SetBuffers on %v request %d", r.kind, id)
	}
	if buffers < 1 {
		return fmt.Errorf("msm: SetBuffers(%d) on request %d", buffers, id)
	}
	r.play.plan.Buffers = buffers
	return nil
}

// Violations returns the request's recorded continuity violations.
func (m *Manager) Violations(id RequestID) ([]Violation, error) {
	r, err := m.find(id)
	if err != nil {
		return nil, err
	}
	switch r.kind {
	case Play:
		return append([]Violation(nil), r.play.violations...), nil
	default:
		return append([]Violation(nil), r.rec.violations...), nil
	}
}

// Progress summarizes the request's state.
func (m *Manager) Progress(id RequestID) (Progress, error) {
	r, err := m.find(id)
	if err != nil {
		return Progress{}, err
	}
	p := Progress{ID: r.id, Kind: r.kind, Name: r.name, Done: r.done, Paused: r.pause != nil}
	switch r.kind {
	case Play:
		p.Violations = len(r.play.violations)
		p.BlocksServed = r.play.nextFetch
		p.BlocksTotal = len(r.play.plan.Blocks)
		p.StartTime = r.play.startTime
		p.CacheHits = r.play.cacheHits
		p.CacheServed = r.cacheServed
		p.DegradedBlocks = r.play.degraded
		p.ConsecFaults = r.consecFails
		p.Class = r.class
		p.Stride = strideOf(r.play)
		p.ShedBlocks = r.play.shed
		p.EffectiveRate = r.adm.Rate / float64(strideOf(r.play))
	default:
		p.Violations = len(r.rec.violations)
		p.BlocksServed = r.rec.nextWrite
		p.BlocksTotal = r.rec.totalBlks
		p.StartTime = r.rec.start
	}
	return p, nil
}

// active lists requests that can still need service, into scratch
// storage valid until the next call.
func (m *Manager) active() []*request {
	out := m.scratchAct[:0]
	for _, r := range m.reqs {
		if !r.done && r.pause == nil && !r.demoting {
			out = alloc.Append(out, r)
		}
	}
	m.scratchAct = out
	return out
}

// RunRound services one round: each active request in turn receives up
// to k blocks of transfer. If no request had work, the clock advances
// to the next time one will. It reports false when no active request
// remains.
//
// rt:hotpath
func (m *Manager) RunRound() bool {
	m.processDemotions()
	m.classPass()
	m.tickFaultRounds()
	if m.kTarget > m.k {
		// One step of a re-steer k transition (see resteerTransition):
		// the same one-k-per-round growth the paper's admission
		// transition uses, so continuity holds while the absorbed
		// population's rounds lengthen.
		m.k++
		m.stats.TransitionSteps++
		if m.obs != nil {
			m.obs.transitions.Inc()
		}
	}
	act := m.active()
	if len(act) == 0 {
		return m.runRepairOnlyRound()
	}
	m.stats.Rounds++
	// Refill the retry budget: the slack Eq. 18's worst-case charging
	// leaves unused in this round is what fault retries may spend.
	// (The striped round refines this to per-spindle budgets below.)
	m.retrySlack = continuity.Duration(m.adm.SlackSeconds(m.admissionSet(), m.k))
	if m.obs != nil {
		defer m.recordRound(m.clock.Now(), m.k, len(m.admissionSet()), m.CacheServed(), len(act))
	}
	worked := false
	if len(m.lanes) > 1 {
		worked = m.runStripedRound(act)
	} else {
		m.serial.retrySlack = m.retrySlack
		if m.order == ScanOrder {
			m.scanSort(act)
		}
		for _, r := range act {
			if m.serial.serviceRequest(r, m.k) {
				worked = true
			}
		}
		m.serial.flushStats()
		m.retrySlack = m.serial.retrySlack
	}
	if !worked {
		next, ok := m.nextWorkTime()
		if !ok {
			// Requests remain (e.g. display draining) but the disk
			// has nothing left to do for them; finish them.
			m.finishDrained()
			return len(m.active()) > 0
		}
		if next > m.clock.Now() {
			m.stats.IdleTime += next - m.clock.Now()
			m.clock.AdvanceTo(next)
		}
	}
	m.finishDrained()
	return true
}

// RunUntilDone services rounds until no active request remains. Paused
// requests do not hold it open.
func (m *Manager) RunUntilDone() {
	for m.RunRound() {
	}
}

// RunFor services rounds until the virtual clock passes the deadline
// or no active request remains.
func (m *Manager) RunFor(d time.Duration) {
	deadline := m.clock.Now() + d
	for m.clock.Now() < deadline {
		if !m.RunRound() {
			return
		}
	}
}

// finishDrained marks play requests done once fully fetched and record
// requests done once their source is exhausted and flushed.
func (m *Manager) finishDrained() {
	for _, r := range m.reqs {
		if r.done || r.pause != nil {
			continue
		}
		switch r.kind {
		case Play:
			if r.play.nextFetch >= len(r.play.plan.Blocks) {
				r.done = true
				// A finished leader's remaining pins stay with its
				// follower; the chain is spliced around it.
				m.closeCacheStream(r)
			}
		case Record:
			if r.rec.exhausted {
				r.done = true
			}
		}
	}
}

// closeCacheStream withdraws the request's play position from the
// interval cache (no-op when it has none).
func (m *Manager) closeCacheStream(r *request) {
	if m.cache == nil || r.kind != Play || !r.play.cacheOpen {
		return
	}
	m.cache.CloseStream(uint64(r.id))
	r.play.cacheOpen = false
}

// reopenCacheStream re-registers an eligible play's position after a
// pause or demotion closed it, making it a potential leader again.
func (m *Manager) reopenCacheStream(r *request) {
	if m.cache == nil || r.kind != Play {
		return
	}
	ps := r.play
	if !ps.cacheEligible || ps.cacheOpen || ps.nextFetch >= len(ps.plan.Blocks) {
		return
	}
	b := ps.plan.Blocks[ps.nextFetch]
	m.cache.OpenStream(uint64(r.id), ps.cacheSID, b.Index, ps.cacheEnd, r.adm.Rate)
	ps.cacheOpen = true
}

// processDemotions resolves requests whose interval broke (cache miss
// while cache-served): each one first tries to adopt a new leader, and
// failing that goes back through full disk admission — Eq. 18 with its
// stepwise transition rounds, exactly as a fresh request would. When
// even that fails the request is destructively paused rather than
// allowed to violate the admitted population's continuity.
func (m *Manager) processDemotions() {
	if m.cache == nil || m.inDemote {
		return
	}
	m.inDemote = true
	//lint:ignore allocpath the deferred reset captures only the receiver; escape analysis keeps it on the stack
	defer func() { m.inDemote = false }()
	for _, r := range m.reqs {
		if !r.needsDemote || r.done || r.pause != nil {
			continue
		}
		r.needsDemote = false
		m.stats.Demotions++
		if m.obs != nil {
			m.obs.demotions.Inc()
		}
		m.closeCacheStream(r)
		m.reopenCacheStream(r)
		if r.play.cacheOpen && m.cache.Adopt(uint64(r.id)) {
			continue // found a new leader; still cache-served
		}
		// Full admission as a disk-bound stream. The transition rounds
		// recurse into RunRound; r.demoting keeps this request out of
		// them (it has no admission slot yet).
		r.demoting = true
		sp := -1
		if s, ok := m.requestSpindle(r); ok {
			sp = s
		}
		_, err := m.admit(sp, r.adm, false)
		r.demoting = false
		if err != nil {
			r.cacheServed = false
			m.closeCacheStream(r)
			//lint:ignore allocpath a destructive pause is a rare terminal event; its state is retained
			r.pause = &pauseState{at: m.clock.Now(), destructive: true}
			continue
		}
		r.cacheServed = false
	}
}

// nextCylinder reports the disk cylinder the request's next transfer
// touches; ok is false when it cannot be known (pure delays, record
// requests, or nothing left).
func (m *Manager) nextCylinder(r *request) (int, bool) {
	if r.kind != Play {
		return 0, false
	}
	ps := r.play
	g := m.d.Geometry()
	for j := ps.nextFetch; j < len(ps.plan.Blocks); j++ {
		b := ps.plan.Blocks[j]
		if b.Reader == nil {
			continue
		}
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil || e.Silent() {
			continue
		}
		return g.CylinderOf(int(e.Sector)), true
	}
	return 0, false
}

// scanSorter sorts a round's requests by precomputed sweep key; a
// persistent instance avoids the per-round closure and reflection
// allocations of sort.SliceStable.
type scanSorter struct {
	reqs []*request
	keys []int
}

func (s *scanSorter) Len() int           { return len(s.reqs) }
func (s *scanSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *scanSorter) Swap(i, j int) {
	s.reqs[i], s.reqs[j] = s.reqs[j], s.reqs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// scanSort reorders the round's requests as a C-SCAN sweep: ascending
// next-block cylinder starting from the head's current position,
// wrapping. Requests without a known position keep their arrival order
// at the end of the sweep. Keys are computed once per request into the
// manager's scratch storage, and the typical small round (n ≤ 16) is
// ordered by a stable insertion sort with no sort.Interface traffic.
//
// rt:hotpath
func (m *Manager) scanSort(act []*request) {
	head := m.d.HeadCylinder(0)
	nc := m.d.Geometry().Cylinders
	keys := m.sorter.keys[:0]
	for _, r := range act {
		k := 2 * nc // after every positioned request
		if cyl, ok := m.nextCylinder(r); ok {
			k = cyl - head
			if k < 0 {
				k += nc
			}
		}
		keys = alloc.Append(keys, k)
	}
	m.sorter.keys = keys
	if len(act) <= 16 {
		for i := 1; i < len(act); i++ {
			k, r := keys[i], act[i]
			j := i - 1
			for j >= 0 && keys[j] > k {
				keys[j+1], act[j+1] = keys[j], act[j]
				j--
			}
			keys[j+1], act[j+1] = k, r
		}
		return
	}
	m.sorter.reqs = act
	sort.Stable(&m.sorter)
	m.sorter.reqs = nil
}

// isFault reports whether a read error came from the fault-injection
// layer (retryable or degradable) rather than a broken plan. A dead
// device is degradable but — like a bad sector — never retried; the
// mirror layer re-steers the next round's reads to the twin.
func isFault(err error) bool {
	return errors.Is(err, fault.ErrTransient) || errors.Is(err, fault.ErrBadSector) ||
		errors.Is(err, fault.ErrDeviceDead)
}

// deadline is the display start time of plan block j.
func (ps *playState) deadline(j int) time.Duration {
	return ps.startTime + ps.deadlines[j]
}

// occupancyAt is the number of fetched blocks not yet fully displayed
// at virtual time now.
func (ps *playState) occupancyAt(now time.Duration) int {
	if !ps.started {
		return ps.nextFetch
	}
	return ps.nextFetch - ps.releasedBlocks(now-ps.startTime)
}

// releasedBlocks counts the fetched blocks whose display has completed
// by elapsed: the smallest i with deadlines[i+1] > elapsed. Blocks are
// released when their display completes — block i at offset
// deadlines[i+1]. (Open-coded binary search: this runs several times
// per serviced block, and the sort.Search closure was a measurable
// share of the round loop.)
func (ps *playState) releasedBlocks(elapsed time.Duration) int {
	lo, hi := 0, ps.nextFetch
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps.deadlines[mid+1] > elapsed {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// nextWorkTime finds the earliest virtual time at which any active
// request will have work; ok is false when none will. It iterates the
// request table directly rather than materializing active().
func (m *Manager) nextWorkTime() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, r := range m.reqs {
		if r.done || r.pause != nil || r.demoting {
			continue
		}
		switch r.kind {
		case Play:
			ps := r.play
			if ps.nextFetch >= len(ps.plan.Blocks) {
				continue
			}
			// A Wait-blocked follower has no work of its own: its
			// leader's next fetch (which advances the clock) or its
			// own demotion will unblock it.
			if r.cacheServed && !m.cachedCanWork(r) {
				continue
			}
			if !ps.started || ps.occupancyAt(m.clock.Now()) < ps.plan.Buffers {
				best, found = noteEarliest(best, found, m.clock.Now())
				continue
			}
			// Next buffer release: the oldest unreleased block
			// finishes display.
			released := ps.releasedBlocks(m.clock.Now() - ps.startTime)
			best, found = noteEarliest(best, found, ps.startTime+ps.deadlines[released+1])
		case Record:
			rs := r.rec
			if rs.exhausted || (rs.totalBlks > 0 && rs.nextWrite >= rs.totalBlks) {
				continue
			}
			best, found = noteEarliest(best, found, rs.start+time.Duration(rs.nextWrite+1)*rs.blockDur)
		}
	}
	return best, found
}

// noteEarliest folds candidate time t into the running minimum. (A
// plain function, not a closure: nextWorkTime runs every idle round
// and a capturing closure would be a per-call heap allocation.)
func noteEarliest(best time.Duration, found bool, t time.Duration) (time.Duration, bool) {
	if !found || t < best {
		return t, true
	}
	return best, found
}

// cachedCanWork reports whether a cache-served request's next block is
// serviceable now (resident, silent, or a miss that triggers
// demotion) as opposed to waiting on its leader.
func (m *Manager) cachedCanWork(r *request) bool {
	ps := r.play
	b := ps.plan.Blocks[ps.nextFetch]
	e, err := b.Reader.Strand().Block(b.Index)
	if err != nil || e.Silent() {
		return true
	}
	return m.cache.Peek(uint64(r.id), b.Index) != cache.Wait
}
