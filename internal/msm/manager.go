package msm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/sim"
)

// ErrAdmissionRejected reports that accepting the request would
// violate the real-time constraints of the already-admitted requests.
var ErrAdmissionRejected = errors.New("msm: admission rejected")

// ServiceOrder selects the order requests are serviced within a round.
type ServiceOrder int

const (
	// ArrivalOrder is the paper's baseline: "round-robin servicing of
	// requests in the order in which they are received" (§6.2), which
	// forces admission control to assume the maximum seek between
	// requests.
	ArrivalOrder ServiceOrder = iota
	// ScanOrder implements §6.2's proposed improvement: servicing
	// requests "in the order that minimizes … the separations between
	// blocks" — a C-SCAN sweep over the cylinders of each request's
	// next block, cutting the switch overhead well below the
	// worst-case seek the admission formulas charge.
	ScanOrder
)

// String names the order.
func (o ServiceOrder) String() string {
	if o == ScanOrder {
		return "scan"
	}
	return "arrival"
}

// TransitionPolicy selects how the manager grows k when an admission
// raises it.
type TransitionPolicy int

const (
	// Stepwise is the paper's algorithm: k grows by one per round
	// under the transient-safe bound (Eq. 18), guaranteeing
	// continuity during the transition.
	Stepwise TransitionPolicy = iota
	// NaiveJump switches directly from k_old to k_new; the paper
	// shows this can cause transient discontinuities ("the time
	// spent to transfer k_new blocks may exceed the playback
	// duration of k_old blocks"). Provided for the EXP-TR
	// experiment.
	NaiveJump
)

// Stats counts manager activity.
type Stats struct {
	Rounds          uint64
	BlocksFetched   uint64
	BlocksWritten   uint64
	SilenceBlocks   uint64
	IdleTime        time.Duration
	TransitionSteps uint64
}

// Manager is the Multimedia Storage Manager: it owns the disk, the
// virtual clock, and the active request table, and services requests
// in rounds of k blocks per request.
type Manager struct {
	d      *disk.Disk
	clock  sim.Clock
	adm    continuity.Admission
	k      int
	policy TransitionPolicy
	// concurrency is the number of disk heads used in parallel per
	// request (the paper's p); 1 for sequential/pipelined
	// architectures.
	concurrency int
	order       ServiceOrder
	reqs        []*request
	nextID      RequestID
	stats       Stats
}

// New creates a manager over the disk with the given admission
// controller. Concurrency defaults to 1 head.
func New(d *disk.Disk, adm continuity.Admission) *Manager {
	return &Manager{d: d, adm: adm, k: 1, concurrency: 1, nextID: 1}
}

// SetPolicy selects the k-transition policy.
func (m *Manager) SetPolicy(p TransitionPolicy) { m.policy = p }

// SetServiceOrder selects the within-round service order.
func (m *Manager) SetServiceOrder(o ServiceOrder) { m.order = o }

// SetConcurrency sets the number of disk heads fetched in parallel per
// request (clamped to the disk's head count).
func (m *Manager) SetConcurrency(p int) {
	if p < 1 {
		p = 1
	}
	if p > m.d.Heads() {
		p = m.d.Heads()
	}
	m.concurrency = p
}

// Now reports the current virtual time.
func (m *Manager) Now() time.Duration { return m.clock.Now() }

// K reports the current blocks-per-round.
func (m *Manager) K() int { return m.k }

// ForceK overrides the blocks-per-round; experiments use it to search
// for the minimal feasible k independently of the admission formulas.
func (m *Manager) ForceK(k int) {
	if k < 1 {
		k = 1
	}
	m.k = k
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Admission returns the admission controller in use.
func (m *Manager) Admission() continuity.Admission { return m.adm }

// admissionSet lists the requests currently counted by admission
// control: active and non-destructively paused ones (their resources
// remain allocated).
func (m *Manager) admissionSet() []continuity.Request {
	var out []continuity.Request
	for _, r := range m.reqs {
		if r.done {
			continue
		}
		if r.pause != nil && r.pause.destructive {
			continue
		}
		out = append(out, r.adm)
	}
	return out
}

// ActiveRequests reports how many requests admission control is
// currently carrying.
func (m *Manager) ActiveRequests() int { return len(m.admissionSet()) }

// admit runs the admission decision and k transition for a candidate,
// returning the decision. On acceptance the caller appends the request.
func (m *Manager) admit(candidate continuity.Request) (continuity.Decision, error) {
	dec := m.adm.Admit(m.admissionSet(), m.k, candidate)
	if !dec.Admitted {
		return dec, fmt.Errorf("%w: %s", ErrAdmissionRejected, dec.Reason)
	}
	switch m.policy {
	case Stepwise:
		// Larger k means larger rounds: renegotiate every stream's
		// buffer grant to the §3.3.2 provisioning (2k for pipelined
		// retrieval) before the transition rounds run, so the
		// stepwise growth can actually accumulate the read-ahead
		// each longer round needs.
		if dec.K > m.k {
			m.growPlayBuffers(2 * dec.K)
		}
		// One round at each intermediate k before the new request
		// begins to be serviced (§3.4's transparent transition).
		for _, step := range dec.Steps {
			m.k = step
			m.stats.TransitionSteps++
			m.RunRound()
		}
	case NaiveJump:
		if dec.K > m.k {
			m.k = dec.K
		}
	}
	if dec.K > m.k {
		m.k = dec.K
	}
	return dec, nil
}

// growPlayBuffers raises every live play request's buffer grant to at
// least n blocks.
func (m *Manager) growPlayBuffers(n int) {
	for _, r := range m.reqs {
		if r.done || r.kind != Play {
			continue
		}
		if r.play.plan.Buffers < n {
			r.play.plan.Buffers = n
		}
	}
}

// AdmitPlay admits and registers a PLAY request. The request begins
// receiving service in the next round.
func (m *Manager) AdmitPlay(plan PlayPlan) (RequestID, continuity.Decision, error) {
	if err := plan.Validate(); err != nil {
		return 0, continuity.Decision{}, err
	}
	dec, err := m.admit(plan.Admission)
	if err != nil {
		return 0, dec, err
	}
	ra := plan.ReadAhead
	if ra < 1 {
		ra = 1
	}
	if ra > plan.Buffers {
		ra = plan.Buffers
	}
	if ra > len(plan.Blocks) {
		ra = len(plan.Blocks)
	}
	if m.policy == Stepwise && plan.Buffers < 2*m.k {
		// The request joins a system already running at k; provision
		// it for those rounds.
		plan.Buffers = 2 * m.k
	}
	ps := &playState{plan: plan, readAhead: ra}
	ps.deadlines = make([]time.Duration, len(plan.Blocks)+1)
	var sum time.Duration
	for i, b := range plan.Blocks {
		ps.deadlines[i] = sum
		sum += b.Duration
	}
	ps.deadlines[len(plan.Blocks)] = sum
	r := &request{id: m.newID(), kind: Play, name: plan.Name, adm: plan.Admission, play: ps}
	m.reqs = append(m.reqs, r)
	return r.id, dec, nil
}

// AdmitRecord admits and registers a RECORD request. Capture starts
// immediately (virtual now); the first block becomes writable one
// block-duration later.
func (m *Manager) AdmitRecord(plan RecordPlan) (RequestID, continuity.Decision, error) {
	if err := plan.Validate(); err != nil {
		return 0, continuity.Decision{}, err
	}
	dec, err := m.admit(plan.Admission)
	if err != nil {
		return 0, dec, err
	}
	blockDur := continuity.Duration(float64(plan.UnitsPerBlock) / plan.Source.Rate())
	total := 0
	if plan.TotalUnits > 0 {
		total = int((plan.TotalUnits + uint64(plan.UnitsPerBlock) - 1) / uint64(plan.UnitsPerBlock))
	}
	rs := &recordState{plan: plan, start: m.clock.Now(), blockDur: blockDur, totalBlks: total}
	r := &request{id: m.newID(), kind: Record, name: plan.Name, adm: plan.Admission, rec: rs}
	m.reqs = append(m.reqs, r)
	return r.id, dec, nil
}

func (m *Manager) newID() RequestID {
	id := m.nextID
	m.nextID++
	return id
}

// find returns the request or an error.
func (m *Manager) find(id RequestID) (*request, error) {
	for _, r := range m.reqs {
		if r.id == id {
			return r, nil
		}
	}
	return nil, fmt.Errorf("msm: unknown request %d", id)
}

// Stop halts a request (§4.1's STOP): a play request is dropped; a
// record request stops capturing (the caller closes the writer). The
// request leaves the admission set.
func (m *Manager) Stop(id RequestID) error {
	r, err := m.find(id)
	if err != nil {
		return err
	}
	r.done = true
	return nil
}

// Pause suspends a request (§4.1): destructive pauses release the
// request's admission slot (a later Resume re-runs admission);
// non-destructive pauses keep resources allocated.
func (m *Manager) Pause(id RequestID, destructive bool) error {
	r, err := m.find(id)
	if err != nil {
		return err
	}
	if r.done {
		return fmt.Errorf("msm: pause of finished request %d", id)
	}
	if r.pause != nil {
		return fmt.Errorf("msm: request %d already paused", id)
	}
	r.pause = &pauseState{at: m.clock.Now(), destructive: destructive}
	return nil
}

// Resume restarts a paused request, shifting its deadlines by the
// pause duration. Resuming a destructively paused request re-runs
// admission control and may be rejected.
func (m *Manager) Resume(id RequestID) (continuity.Decision, error) {
	r, err := m.find(id)
	if err != nil {
		return continuity.Decision{}, err
	}
	if r.pause == nil {
		return continuity.Decision{}, fmt.Errorf("msm: resume of running request %d", id)
	}
	var dec continuity.Decision
	if r.pause.destructive {
		dec, err = m.admit(r.adm)
		if err != nil {
			return dec, err
		}
	}
	shift := m.clock.Now() - r.pause.at
	switch r.kind {
	case Play:
		if r.play.started {
			r.play.startTime += shift
		}
	case Record:
		r.rec.start += shift
	}
	r.pause = nil
	return dec, nil
}

// SetBuffers renegotiates the number of display-device block buffers
// of a play request. The MRS grows buffer grants when admission raises
// k (the §3.3.2 provisioning rule ties buffering to k); shrinking
// below the current occupancy is clamped at the next fetch rather than
// discarding data.
func (m *Manager) SetBuffers(id RequestID, buffers int) error {
	r, err := m.find(id)
	if err != nil {
		return err
	}
	if r.kind != Play {
		return fmt.Errorf("msm: SetBuffers on %v request %d", r.kind, id)
	}
	if buffers < 1 {
		return fmt.Errorf("msm: SetBuffers(%d) on request %d", buffers, id)
	}
	r.play.plan.Buffers = buffers
	return nil
}

// Violations returns the request's recorded continuity violations.
func (m *Manager) Violations(id RequestID) ([]Violation, error) {
	r, err := m.find(id)
	if err != nil {
		return nil, err
	}
	switch r.kind {
	case Play:
		return append([]Violation(nil), r.play.violations...), nil
	default:
		return append([]Violation(nil), r.rec.violations...), nil
	}
}

// Progress summarizes the request's state.
func (m *Manager) Progress(id RequestID) (Progress, error) {
	r, err := m.find(id)
	if err != nil {
		return Progress{}, err
	}
	p := Progress{ID: r.id, Kind: r.kind, Name: r.name, Done: r.done, Paused: r.pause != nil}
	switch r.kind {
	case Play:
		p.Violations = len(r.play.violations)
		p.BlocksServed = r.play.nextFetch
		p.BlocksTotal = len(r.play.plan.Blocks)
		p.StartTime = r.play.startTime
	default:
		p.Violations = len(r.rec.violations)
		p.BlocksServed = r.rec.nextWrite
		p.BlocksTotal = r.rec.totalBlks
		p.StartTime = r.rec.start
	}
	return p, nil
}

// active lists requests that can still need service.
func (m *Manager) active() []*request {
	var out []*request
	for _, r := range m.reqs {
		if !r.done && r.pause == nil {
			out = append(out, r)
		}
	}
	return out
}

// RunRound services one round: each active request in turn receives up
// to k blocks of transfer. If no request had work, the clock advances
// to the next time one will. It reports false when no active request
// remains.
func (m *Manager) RunRound() bool {
	act := m.active()
	if len(act) == 0 {
		return false
	}
	m.stats.Rounds++
	if m.order == ScanOrder {
		m.scanSort(act)
	}
	worked := false
	for _, r := range act {
		if m.serviceRequest(r, m.k) {
			worked = true
		}
	}
	if !worked {
		next, ok := m.nextWorkTime()
		if !ok {
			// Requests remain (e.g. display draining) but the disk
			// has nothing left to do for them; finish them.
			m.finishDrained()
			return len(m.active()) > 0
		}
		if next > m.clock.Now() {
			m.stats.IdleTime += next - m.clock.Now()
			m.clock.AdvanceTo(next)
		}
	}
	m.finishDrained()
	return true
}

// RunUntilDone services rounds until no active request remains. Paused
// requests do not hold it open.
func (m *Manager) RunUntilDone() {
	for m.RunRound() {
	}
}

// RunFor services rounds until the virtual clock passes the deadline
// or no active request remains.
func (m *Manager) RunFor(d time.Duration) {
	deadline := m.clock.Now() + d
	for m.clock.Now() < deadline {
		if !m.RunRound() {
			return
		}
	}
}

// finishDrained marks play requests done once fully fetched and record
// requests done once their source is exhausted and flushed.
func (m *Manager) finishDrained() {
	for _, r := range m.reqs {
		if r.done || r.pause != nil {
			continue
		}
		switch r.kind {
		case Play:
			if r.play.nextFetch >= len(r.play.plan.Blocks) {
				r.done = true
			}
		case Record:
			if r.rec.exhausted {
				r.done = true
			}
		}
	}
}

// nextCylinder reports the disk cylinder the request's next transfer
// touches; ok is false when it cannot be known (pure delays, record
// requests, or nothing left).
func (m *Manager) nextCylinder(r *request) (int, bool) {
	if r.kind != Play {
		return 0, false
	}
	ps := r.play
	g := m.d.Geometry()
	for j := ps.nextFetch; j < len(ps.plan.Blocks); j++ {
		b := ps.plan.Blocks[j]
		if b.Reader == nil {
			continue
		}
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil || e.Silent() {
			continue
		}
		return g.CylinderOf(int(e.Sector)), true
	}
	return 0, false
}

// scanSort reorders the round's requests as a C-SCAN sweep: ascending
// next-block cylinder starting from the head's current position,
// wrapping. Requests without a known position keep their arrival order
// at the end of the sweep.
func (m *Manager) scanSort(act []*request) {
	head := m.d.HeadCylinder(0)
	nc := m.d.Geometry().Cylinders
	keyOf := func(r *request) int {
		cyl, ok := m.nextCylinder(r)
		if !ok {
			return 2 * nc // after every positioned request
		}
		d := cyl - head
		if d < 0 {
			d += nc
		}
		return d
	}
	sort.SliceStable(act, func(i, j int) bool { return keyOf(act[i]) < keyOf(act[j]) })
}

// serviceRequest transfers up to k blocks for the request; reports
// whether any disk work happened.
func (m *Manager) serviceRequest(r *request, k int) bool {
	switch r.kind {
	case Play:
		return m.servicePlay(r, k)
	default:
		return m.serviceRecord(r, k)
	}
}

// servicePlay fetches up to k blocks for a play request, respecting
// the display-buffer regulation, recording arrival-vs-deadline
// violations, and starting the display once the read-ahead is
// satisfied. With concurrency p > 1, up to p blocks are fetched in
// parallel on distinct heads, all arriving when the slowest completes.
func (m *Manager) servicePlay(r *request, k int) bool {
	ps := r.play
	fetched := 0
	for fetched < k {
		if ps.nextFetch >= len(ps.plan.Blocks) {
			break
		}
		if ps.started && m.occupancy(ps) >= ps.plan.Buffers {
			break // regulation: never overflow the display subsystem
		}
		// Determine the parallel batch size.
		batch := m.concurrency
		if batch > k-fetched {
			batch = k - fetched
		}
		if rem := len(ps.plan.Blocks) - ps.nextFetch; batch > rem {
			batch = rem
		}
		if ps.started {
			if room := ps.plan.Buffers - m.occupancy(ps); batch > room {
				batch = room
			}
		}
		var maxT time.Duration
		first := ps.nextFetch
		for i := 0; i < batch; i++ {
			b := ps.plan.Blocks[first+i]
			if b.Reader == nil {
				// Pure delay block (an interval whose medium is
				// absent): consumes playback time, no disk work.
				continue
			}
			_, t, silent, err := b.Reader.ReadBlock(i%m.d.Heads(), b.Index)
			if err != nil {
				// A broken plan is a programming error in the layers
				// above; record it as a violation at this block and
				// stop the request.
				ps.violations = append(ps.violations, Violation{Block: first + i, Deadline: m.clock.Now(), Actual: m.clock.Now()})
				r.done = true
				return true
			}
			if silent {
				m.stats.SilenceBlocks++
			}
			if t > maxT {
				maxT = t
			}
		}
		m.clock.Advance(maxT)
		arrival := m.clock.Now()
		for i := 0; i < batch; i++ {
			j := first + i
			ps.nextFetch++
			m.stats.BlocksFetched++
			if ps.started {
				if dl := ps.deadline(j); arrival > dl {
					ps.violations = append(ps.violations, Violation{Block: j, Deadline: dl, Actual: arrival})
				}
			}
		}
		ps.fetchDone = arrival
		fetched += batch
		if !ps.started && ps.nextFetch >= ps.readAhead {
			ps.started = true
			ps.startTime = arrival
		}
	}
	return fetched > 0
}

// deadline is the display start time of plan block j.
func (ps *playState) deadline(j int) time.Duration {
	return ps.startTime + ps.deadlines[j]
}

// occupancy is the number of fetched blocks not yet fully displayed.
func (m *Manager) occupancy(ps *playState) int {
	if !ps.started {
		return ps.nextFetch
	}
	elapsed := m.clock.Now() - ps.startTime
	// Blocks are released when their display completes: block i at
	// offset deadlines[i+1].
	released := sort.Search(ps.nextFetch, func(i int) bool {
		return ps.deadlines[i+1] > elapsed
	})
	return ps.nextFetch - released
}

// serviceRecord writes up to k captured blocks for a record request,
// recording buffer-overflow violations.
func (m *Manager) serviceRecord(r *request, k int) bool {
	rs := r.rec
	wrote := 0
	for wrote < k {
		if rs.exhausted {
			break
		}
		if rs.totalBlks > 0 && rs.nextWrite >= rs.totalBlks {
			rs.exhausted = true
			break
		}
		// Block b completes capture at start + (b+1)·blockDur.
		ready := rs.start + time.Duration(rs.nextWrite+1)*rs.blockDur
		if m.clock.Now() < ready {
			break // not yet captured
		}
		var flushTime time.Duration
		full := true
		for u := 0; u < rs.plan.UnitsPerBlock; u++ {
			unit, ok := rs.plan.Source.Next()
			if !ok {
				full = false
				break
			}
			t, err := rs.plan.Writer.Append(unit)
			if err != nil {
				rs.violations = append(rs.violations, Violation{Block: rs.nextWrite, Deadline: m.clock.Now(), Actual: m.clock.Now()})
				rs.exhausted = true
				return true
			}
			flushTime += t
		}
		if !full {
			rs.exhausted = true
			if rs.plan.Writer.UnitsWritten()%uint64(rs.plan.UnitsPerBlock) == 0 {
				break // nothing partial pending
			}
		}
		m.clock.Advance(flushTime)
		finish := m.clock.Now()
		// Overflow deadline: the capture device has Buffers block
		// buffers, so block b must be on disk before block b+Buffers
		// finishes capture.
		dl := rs.start + time.Duration(rs.nextWrite+rs.plan.Buffers+1)*rs.blockDur
		if finish > dl {
			rs.violations = append(rs.violations, Violation{Block: rs.nextWrite, Deadline: dl, Actual: finish})
		}
		rs.nextWrite++
		m.stats.BlocksWritten++
		wrote++
		if !full {
			break
		}
	}
	return wrote > 0
}

// nextWorkTime finds the earliest virtual time at which any active
// request will have disk work; ok is false when none will.
func (m *Manager) nextWorkTime() (time.Duration, bool) {
	var best time.Duration
	found := false
	note := func(t time.Duration) {
		if !found || t < best {
			best, found = t, true
		}
	}
	for _, r := range m.active() {
		switch r.kind {
		case Play:
			ps := r.play
			if ps.nextFetch >= len(ps.plan.Blocks) {
				continue
			}
			if !ps.started || m.occupancy(ps) < ps.plan.Buffers {
				note(m.clock.Now())
				continue
			}
			// Next buffer release: the oldest unreleased block
			// finishes display.
			elapsed := m.clock.Now() - ps.startTime
			released := sort.Search(ps.nextFetch, func(i int) bool {
				return ps.deadlines[i+1] > elapsed
			})
			note(ps.startTime + ps.deadlines[released+1])
		case Record:
			rs := r.rec
			if rs.exhausted || (rs.totalBlks > 0 && rs.nextWrite >= rs.totalBlks) {
				continue
			}
			note(rs.start + time.Duration(rs.nextWrite+1)*rs.blockDur)
		}
	}
	return best, found
}
