package msm

import (
	"testing"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

// mirroredRig bundles the substrate for mirrored-array manager tests:
// p spindles in p/2 mirror pairs behind one disk.Array, with the
// allocator and strand store working in the (halved) logical address
// space.
type mirroredRig struct {
	raw []*disk.Disk // physical spindles (under any fault wrapper)
	arr *disk.Array
	a   *alloc.Allocator
	st  *strand.Store
	m   *Manager
	dev continuity.Device
	p   int
	sc  int // stripe cylinders
}

// newMirroredRig builds a p-spindle mirrored array with the given
// stripe. When faultSpindle ≥ 0 and the scenario is active, that one
// spindle is wrapped in fault injection.
func newMirroredRig(t *testing.T, p, stripe, faultSpindle int, sc fault.Scenario) *mirroredRig {
	t.Helper()
	g := disk.DefaultGeometry()
	devs := make([]disk.Device, p)
	raw := make([]*disk.Disk, p)
	for i := range devs {
		raw[i] = disk.MustNew(g)
		if i == faultSpindle && sc.Active() {
			devs[i] = fault.New(raw[i], sc)
		} else {
			devs[i] = raw[i]
		}
	}
	arr := disk.MustNewMirroredArray(devs, stripe)
	a, err := alloc.New(arr.Geometry(), 64)
	if err != nil {
		t.Fatal(err)
	}
	lg := arr.Geometry()
	dev := continuity.Device{
		TransferRate: lg.TransferRateBits(),
		MaxAccess:    continuity.Seconds(lg.MaxAccessTime()),
		MinAccess:    continuity.Seconds(lg.MinAccessTime()),
	}
	return &mirroredRig{
		raw: raw, arr: arr, a: a,
		st:  strand.NewStore(arr, a),
		m:   New(arr, continuity.AdmissionFor(dev)),
		dev: dev, p: p, sc: stripe,
	}
}

func (r *mirroredRig) scattering() float64 {
	return continuity.Seconds(r.arr.Geometry().AccessTime(targetCylinders))
}

// recordPreferring writes a synthetic video strand whose blocks the
// balanced steering reads from exactly the given spindle: the strand
// is placed in stripe-group slot (spindle%2 + 2*within) of mirror pair
// spindle/2, and slot parity decides the preferred twin. The data
// itself lands on both twins of the pair.
func (r *mirroredRig) recordPreferring(t *testing.T, spindle, within, frames int, seed int64) *strand.Strand {
	t.Helper()
	mg := r.arr.MirrorGroups()
	pair, slot := spindle/2, spindle%2+2*within
	group := slot*mg + pair
	w, err := strand.NewWriter(r.arr, r.a, strand.WriterConfig{
		ID:            r.st.NewID(),
		Medium:        layout.Video,
		Rate:          30,
		UnitBytes:     18000,
		Granularity:   3,
		Constraint:    alloc.Constraint{MinCylinders: 1, MaxCylinders: targetCylinders},
		StartCylinder: group * r.sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVideoSource(frames, 18000, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	r.st.Put(s)
	for i := 0; i < s.NumBlocks(); i++ {
		e, err := s.Block(i)
		if err != nil {
			t.Fatal(err)
		}
		if sp, one := r.arr.SpindleRange(int(e.Sector), int(e.SectorCount)); !one || sp != spindle {
			t.Fatalf("strand block %d steered to spindle %d (one=%v), want %d", i, sp, one, spindle)
		}
	}
	return s
}

func (r *mirroredRig) play(t *testing.T, s *strand.Strand, buffers int) RequestID {
	t.Helper()
	plan, err := PlanStrandPlay(r.arr, s, PlanOptions{ReadAhead: 1, Buffers: buffers, Scattering: r.scattering()})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := r.m.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestMirroredDegradedService kills one twin mid-run (a scripted
// die=<round> scenario) while all four spindles carry streams. The
// victim spindle's stream must be absorbed by the surviving twin — a
// bounded burst of degraded blocks while the health machine converges,
// then clean service — and every stream must run to completion with no
// fault stop. Streams on the untouched pair must not be disturbed at
// all. The parallel lanes make this the degraded-mode race test: run
// with -race it also proves the health/steering single-owner
// discipline.
func TestMirroredDegradedService(t *testing.T) {
	const p, stripe, victim = 4, 120, 1
	rig := newMirroredRig(t, p, stripe, victim, fault.Scenario{Seed: 7, DieRound: 6})

	// One stream preferring each spindle; the victim's twin (spindle 0)
	// will carry two streams after the re-steer.
	ids := make([]RequestID, p)
	strandsOf := make([]*strand.Strand, p)
	for sp := 0; sp < p; sp++ {
		strandsOf[sp] = rig.recordPreferring(t, sp, 0, 150, int64(9300+sp))
	}
	for sp := 0; sp < p; sp++ {
		ids[sp] = rig.play(t, strandsOf[sp], 64)
	}
	rig.m.RunUntilDone()

	for sp, id := range ids {
		pr, err := rig.m.Progress(id)
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Done || pr.BlocksServed != pr.BlocksTotal {
			t.Fatalf("spindle %d's stream incomplete: %d/%d done=%v",
				sp, pr.BlocksServed, pr.BlocksTotal, pr.Done)
		}
		if sp == victim {
			// The death round degrades at most the in-flight k-window,
			// and the health thresholds take a few more failed reads to
			// trip; after the re-steer the twin serves it cleanly.
			if pr.DegradedBlocks == 0 {
				t.Fatalf("victim stream saw no degradation — die scenario never fired: %+v", pr)
			}
			if pr.DegradedBlocks > 2*deadAfterErrsBudget {
				t.Fatalf("victim stream degraded %d blocks; re-steer never took over", pr.DegradedBlocks)
			}
			if pr.Violations != pr.DegradedBlocks {
				t.Fatalf("victim stream: %d violations beyond its %d degraded deliveries",
					pr.Violations, pr.DegradedBlocks)
			}
			continue
		}
		if pr.Violations != 0 || pr.DegradedBlocks != 0 {
			t.Fatalf("spindle %d's stream disturbed by the victim: %d violations, %d degraded",
				sp, pr.Violations, pr.DegradedBlocks)
		}
	}
	st := rig.m.Stats()
	if st.FaultStops != 0 {
		t.Fatalf("a stream was aborted instead of re-steered: %+v", st)
	}
	if s := rig.arr.SpindleState(victim); s == disk.Healthy {
		t.Fatalf("victim spindle still Healthy after dying: %v", s)
	}
	// The survivor absorbed the victim's reads on top of its own.
	if rig.raw[0].Stats().SectorsRead <= rig.raw[2].Stats().SectorsRead {
		t.Fatalf("surviving twin read %d sectors, untouched spindle read %d; no absorption visible",
			rig.raw[0].Stats().SectorsRead, rig.raw[2].Stats().SectorsRead)
	}
}

// deadAfterErrsBudget mirrors the disk package's deadAfterErrs
// threshold for the degraded-burst bound above (the victim stream can
// degrade one k-window per round while the strikes accumulate).
const deadAfterErrsBudget = 8

// TestMirroredRebuildRestoresService kills a twin, replaces it, runs
// the online rebuild to completion in otherwise idle rounds, and
// verifies the rebuilt spindle serves a replay cleanly — including the
// blocks only it would be steered to.
func TestMirroredRebuildRestoresService(t *testing.T) {
	const p, stripe, victim = 4, 120, 1
	rig := newMirroredRig(t, p, stripe, victim, fault.Scenario{Seed: 7, DieRound: 3})

	s := rig.recordPreferring(t, victim, 0, 150, 9400)
	id := rig.play(t, s, 64)
	rig.m.RunUntilDone()
	if pr, _ := rig.m.Progress(id); !pr.Done {
		t.Fatalf("pre-rebuild play incomplete: %+v", pr)
	}

	// Replace the dead device and rebuild it from the twin.
	if err := rig.m.Rebuild(victim); err != nil {
		t.Fatal(err)
	}
	if !rig.m.RepairActive() {
		t.Fatal("rebuild did not start")
	}
	rig.m.RunUntilDone() // repair-only rounds drive the copy
	if rig.m.RepairActive() {
		done, total := rig.m.RepairProgress()
		t.Fatalf("rebuild stalled at %d/%d", done, total)
	}
	if got := rig.arr.SpindleState(victim); got != disk.Healthy {
		t.Fatalf("rebuilt spindle state = %v, want healthy", got)
	}
	if rig.m.Stats().RebuildBlocks == 0 {
		t.Fatal("no rebuild chunks were charged to rounds")
	}

	// The replacement device must now serve the replay's steered share.
	rig.arr.RefreshSteering()
	id2 := rig.play(t, s, 64)
	rig.m.RunUntilDone()
	pr, err := rig.m.Progress(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Done || pr.Violations != 0 || pr.DegradedBlocks != 0 {
		t.Fatalf("post-rebuild replay: done=%v violations=%d degraded=%d",
			pr.Done, pr.Violations, pr.DegradedBlocks)
	}
}

// TestMirroredHotAddRebalance doubles a 2-spindle mirrored array to 4
// spindles online, rebalances, and verifies (a) existing data replays
// violation-free afterwards and (b) the new pair actually serves part
// of it — the ROADMAP's hot-add rebalance, driven through the manager.
func TestMirroredHotAddRebalance(t *testing.T) {
	const stripe = 60
	rig := newMirroredRig(t, 2, stripe, -1, fault.Scenario{})

	// Two strands in adjacent slots: after doubling, odd groups move to
	// the new pair.
	s0 := rig.recordPreferring(t, 0, 0, 150, 9500)
	s1 := rig.recordPreferring(t, 1, 0, 150, 9501)
	id0, id1 := rig.play(t, s0, 64), rig.play(t, s1, 64)
	rig.m.RunUntilDone()
	for _, id := range []RequestID{id0, id1} {
		if pr, _ := rig.m.Progress(id); !pr.Done || pr.Violations != 0 {
			t.Fatalf("pre-rebalance play: %+v", pr)
		}
	}

	g := disk.DefaultGeometry()
	if err := rig.m.AddMirrorPair(disk.MustNew(g), disk.MustNew(g)); err != nil {
		t.Fatal(err)
	}
	if got := rig.m.StripeSpindles(); got != 4 {
		t.Fatalf("lanes did not grow with the array: StripeSpindles = %d", got)
	}
	if err := rig.m.StartRebalance(); err != nil {
		t.Fatal(err)
	}
	rig.m.RunUntilDone()
	if rig.m.RepairActive() {
		done, total := rig.m.RepairProgress()
		t.Fatalf("rebalance stalled at %d/%d", done, total)
	}

	// Replays must be clean, and the hot-added pair must carry its
	// remapped share of the groups.
	id0, id1 = rig.play(t, s0, 64), rig.play(t, s1, 64)
	rig.m.RunUntilDone()
	for _, id := range []RequestID{id0, id1} {
		pr, err := rig.m.Progress(id)
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Done || pr.Violations != 0 || pr.DegradedBlocks != 0 {
			t.Fatalf("post-rebalance replay: %+v", pr)
		}
	}
	if rig.raw[0].Stats().SectorsRead == 0 {
		t.Fatal("original pair served nothing after the rebalance")
	}
	if got := rig.m.Stats().RebuildBlocks; got == 0 {
		t.Fatal("rebalance copied no chunks")
	}
	newReads := false
	for sp := 2; sp < 4; sp++ {
		if rig.arr.Spindle(sp).Stats().SectorsRead > 0 {
			newReads = true
		}
	}
	if !newReads {
		t.Fatal("hot-added pair served no reads after the rebalance")
	}
}
