// Package msm implements the Multimedia Storage Manager — the lower
// layer of the paper's prototype (§5.2): "determination of granularity
// and scattering of strands, enforcing admission control to service
// multiple requests simultaneously, and maintenance of scattering
// while editing". It services the active requests in round-robin
// rounds of k blocks each (§3.4) over the simulated disk and virtual
// clock, detecting any continuity violation (a block arriving after
// its playback deadline, or a recording buffer overflowing).
package msm

import (
	"fmt"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

// RequestID names an active request; the file system hands it to
// clients, which use it for STOP/PAUSE/RESUME (§4.1: "The file system
// assigns a unique requestID to each request").
type RequestID uint64

// Kind distinguishes retrieval from storage requests.
type Kind int

const (
	// Play is a retrieval (PLAY) request.
	Play Kind = iota
	// Record is a storage (RECORD) request.
	Record
)

// String names the kind.
func (k Kind) String() string {
	if k == Play {
		return "play"
	}
	return "record"
}

// PlannedBlock is one media block in a playback plan. Plans are
// compiled above the MSM (from a strand or from a rope's interval
// list), so a single PLAY request may cross strand boundaries.
type PlannedBlock struct {
	// Reader retrieves the block; nil only for pure-delay blocks.
	Reader *strand.Reader
	// Index is the block number within the reader's strand.
	Index int
	// Duration is the block's playback duration on the display
	// device.
	Duration time.Duration
}

// PlayPlan is everything the MSM needs to service one PLAY request.
type PlayPlan struct {
	// Name labels the request in diagnostics.
	Name string
	// Blocks is the ordered block sequence to retrieve and display.
	Blocks []PlannedBlock
	// Admission describes the request to the admission controller.
	Admission continuity.Request
	// Buffers is the number of block buffers on the display device;
	// the MSM never reads more than Buffers blocks ahead of the
	// display (§3.4: regulation "so as not to overflow the buffering
	// available in the display subsystem").
	Buffers int
	// ReadAhead is the number of blocks prefetched before playback
	// starts (the anti-jitter delay of §3.3.1). It is clamped to
	// Buffers and to the plan length.
	ReadAhead int
	// Class is the request's QoS class. It only matters when the
	// manager has QoS enabled (SetQoS): under overload, standard and
	// best-effort plays may then be admitted load-shed instead of
	// rejected, and are demoted before higher classes when load rises.
	Class continuity.Class
}

// Validate reports an error for an unusable plan.
func (p PlayPlan) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("msm: play plan %q has no blocks", p.Name)
	}
	if p.Buffers < 1 {
		return fmt.Errorf("msm: play plan %q has %d buffers", p.Name, p.Buffers)
	}
	for i, b := range p.Blocks {
		if b.Duration <= 0 {
			return fmt.Errorf("msm: play plan %q block %d has duration %v", p.Name, i, b.Duration)
		}
	}
	return p.Admission.Validate()
}

// RecordPlan is everything the MSM needs to service one RECORD
// request.
type RecordPlan struct {
	// Name labels the request in diagnostics.
	Name string
	// Writer receives the captured units.
	Writer *strand.Writer
	// Source produces the units being recorded.
	Source media.Source
	// UnitsPerBlock is the storage granularity q.
	UnitsPerBlock int
	// TotalUnits bounds the recording; 0 records until the source
	// ends.
	TotalUnits uint64
	// Admission describes the request to the admission controller.
	Admission continuity.Request
	// Buffers is the number of block buffers on the capture device;
	// a block whose write has not completed by the time Buffers
	// further blocks have been captured is an overflow violation.
	Buffers int
}

// Validate reports an error for an unusable plan.
func (p RecordPlan) Validate() error {
	if p.Writer == nil || p.Source == nil {
		return fmt.Errorf("msm: record plan %q missing writer or source", p.Name)
	}
	if p.UnitsPerBlock < 1 {
		return fmt.Errorf("msm: record plan %q units/block %d", p.Name, p.UnitsPerBlock)
	}
	if p.Buffers < 1 {
		return fmt.Errorf("msm: record plan %q has %d buffers", p.Name, p.Buffers)
	}
	return p.Admission.Validate()
}

// Cause classifies a continuity violation.
type Cause int

const (
	// CauseLate is the classic continuity violation: the block arrived
	// after its display deadline (or a capture buffer overflowed).
	CauseLate Cause = iota
	// CauseDegraded marks a block delivered as zero-fill after disk
	// faults exhausted the round's retry budget; the stream stays
	// admitted (graceful degradation instead of an aborted play).
	CauseDegraded
	// CauseLoadShed marks the moment rising load demoted the stream to
	// a coarser sub-sampling stride (QoS load shedding). One violation
	// records each quality-change event; the individual skipped blocks
	// are counted (Stats.ShedBlocks), not listed.
	CauseLoadShed
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseDegraded:
		return "degraded"
	case CauseLoadShed:
		return "load-shed"
	}
	return "late"
}

// Violation records one continuity failure.
type Violation struct {
	// Block is the plan index (play) or block number (record).
	Block int
	// Deadline is when the block was needed (display start, or the
	// capture buffer deadline).
	Deadline time.Duration
	// Actual is when the block actually arrived (read completed) or
	// was written.
	Actual time.Duration
	// Cause classifies the violation (late vs degraded delivery).
	Cause Cause
}

// Lateness is how far past the deadline the block was.
func (v Violation) Lateness() time.Duration { return v.Actual - v.Deadline }

// request is the MSM's per-request state.
type request struct {
	id    RequestID
	kind  Kind
	name  string
	adm   continuity.Request
	play  *playState
	rec   *recordState
	done  bool
	pause *pauseState
	// cacheServed marks a request admitted as an interval-cache
	// follower: it charges no disk time and is excluded from the
	// admission set until demoted.
	cacheServed bool
	// needsDemote is set when a cache-served request misses (its
	// interval broke); processDemotions resolves it at the top of the
	// next round.
	needsDemote bool
	// demoting excludes the request from service while its own
	// demotion re-runs admission (whose transition rounds recurse into
	// RunRound).
	demoting bool
	// consecFails counts consecutive degraded block deliveries; it
	// resets on every clean disk read and on Resume, and reaching
	// FaultPolicy.ConsecFailLimit escalates degradation to a stop.
	consecFails int
	// class is the request's QoS class (plays only; records are
	// always charged at full rate).
	class continuity.Class
}

// playState tracks a PLAY request.
type playState struct {
	plan      PlayPlan
	nextFetch int           // next plan index to read
	started   bool          // playback (display) has begun
	startTime time.Duration // display start
	readAhead int
	// deadlines[i] is the display start time of plan block i, filled
	// as playback starts (and shifted by pauses).
	deadlines  []time.Duration
	violations []Violation
	// fetchDone is when the last fetched block's read completed.
	fetchDone time.Duration
	// Interval-cache state: a plan is cacheEligible when it reads one
	// strand at consecutive block indices (see planCacheRange);
	// cacheOpen tracks whether the manager currently holds a cache
	// stream for it.
	cacheEligible bool
	cacheOpen     bool
	cacheSID      strand.ID
	cacheEnd      int
	cacheHits     int
	// degraded counts the blocks delivered as zero-fill because disk
	// faults exhausted the retry budget.
	degraded int
	// QoS load-shed state: stride > 1 means the stream is sub-sampled
	// (§3.3.2's skipping machinery run at 1× display time) — only
	// every stride-th plan block counted from strideBase is fetched,
	// the retained neighbor covering the skipped blocks' display
	// time. strideBase re-anchors to nextFetch on every promote or
	// demote so the pattern stays aligned with the play position; shed
	// counts the blocks skipped this way.
	stride     int
	strideBase int
	shed       int
}

// recordState tracks a RECORD request.
type recordState struct {
	plan       RecordPlan
	start      time.Duration // capture start
	blockDur   time.Duration
	nextWrite  int // next block number to push to the writer
	totalBlks  int // total blocks the source will produce
	violations []Violation
	exhausted  bool
}

// pauseState remembers a paused request.
type pauseState struct {
	at          time.Duration
	destructive bool
}

// Progress summarizes a request for clients.
type Progress struct {
	ID         RequestID
	Kind       Kind
	Name       string
	Done       bool
	Paused     bool
	Violations int
	// BlocksServed is blocks fetched (play) or written (record).
	BlocksServed int
	// BlocksTotal is the plan length in blocks.
	BlocksTotal int
	// StartTime is when display/capture began (virtual time).
	StartTime time.Duration
	// CacheHits is blocks served from the interval cache (play only).
	CacheHits int
	// CacheServed reports the request is currently an interval-cache
	// follower charging no disk time.
	CacheServed bool
	// DegradedBlocks is blocks delivered as zero-fill after disk
	// faults exhausted the retry budget (play only).
	DegradedBlocks int
	// ConsecFaults is the current consecutive-degradation count toward
	// the escalation threshold; Resume resets it.
	ConsecFaults int
	// Class is the request's QoS class.
	Class continuity.Class
	// Stride is the current QoS sub-sampling stride: 1 is full rate,
	// s > 1 means only every s-th block is fetched (load shedding).
	Stride int
	// ShedBlocks is blocks skipped by load-shed sub-sampling.
	ShedBlocks int
	// EffectiveRate is the stream's current delivered unit rate,
	// Admission.Rate divided by the stride.
	EffectiveRate float64
}

// planCacheRange reports the strand block range a play plan covers
// when it is interval-cache eligible: every block read from the same
// strand at consecutive indices. FF/REW skip plans, cross-strand rope
// plans, and plans with pure-delay blocks are ineligible.
func planCacheRange(plan PlayPlan) (sid strand.ID, first, end int, ok bool) {
	var st *strand.Strand
	for i, b := range plan.Blocks {
		if b.Reader == nil {
			return 0, 0, 0, false
		}
		if i == 0 {
			st = b.Reader.Strand()
			first = b.Index
			continue
		}
		if b.Reader.Strand() != st || b.Index != first+i {
			return 0, 0, 0, false
		}
	}
	if st == nil {
		return 0, 0, 0, false
	}
	return st.ID(), first, first + len(plan.Blocks), true
}
