package msm

import (
	"errors"
	"sort"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/cache"
	"mmfs/internal/continuity"
	"mmfs/internal/fault"
	"mmfs/internal/sim"
)

// This file implements the paper's concurrent retrieval architecture
// (§3.1, degree p) inside the service round: over a disk.Array the
// round splits into one sub-round per spindle, serviced concurrently by
// per-spindle lanes and joined before the round closes. Each lane owns
// its spindle exclusively for the round — its requests' next blocks all
// live on that spindle — runs its own C-SCAN sweep over the spindle's
// local cylinders, charges service time to a private virtual-time
// cursor, and spends a private Eq. 18 retry-slack budget computed over
// the spindle-resident admission set. After the join the manager's
// clock advances to the slowest lane's cursor (the sub-rounds overlap
// in virtual time), lane counters merge in spindle order so totals stay
// deterministic, and whatever could not be parallelized — records,
// cache-coupled plays, boundary-crossing fetches — is serviced serially
// at the joined clock.
//
// Shared state discipline: during the parallel phase a lane touches
// only (a) its own scratch arenas, (b) its requests' private state, (c)
// its spindle's device state via array routing, and (d) the atomic obs
// counters. The interval cache is NOT thread-safe, so any request with
// an open cache stream is kept off the lanes and serviced in the serial
// phase.

// laneStats accumulates a lane's contribution to the manager counters;
// the manager merges them after the join (Stats itself is not safe for
// concurrent writes).
type laneStats struct {
	blocksFetched  uint64
	blocksWritten  uint64
	silenceBlocks  uint64
	cacheHits      uint64
	retries        uint64
	degradedBlocks uint64
	faultStops     uint64
	violations     uint64
	shedBlocks     uint64
}

// lane is one spindle's service context. The manager also keeps one
// "serial" lane (spindle -1) whose time writes through to the shared
// clock; it services single-disk rounds and the striped round's serial
// phase, so every request is serviced by lane code either way.
type lane struct {
	m *Manager
	// spindle is the lane's spindle index, -1 for the serial lane.
	spindle int
	// clk, when set, makes now/advance write through to the manager's
	// clock (the serial lane). Parallel lanes advance the private
	// cursor at; the manager joins the cursors into the clock.
	clk *sim.Clock
	at  time.Duration
	// retrySlack is the lane's round retry budget: Eq. 18's measured
	// slack over the spindle-resident admission set.
	retrySlack time.Duration
	// Per-lane scratch arenas (the satellite fix: round scratch was
	// manager-global, which parallel sub-rounds would race on).
	reqs     []*request
	admSet   []continuity.Request
	deg      []bool
	blockBuf []byte
	sorter   scanSorter
	// local spindle shape, cached so the sweep does not re-derive it
	// per round.
	spc  int // sectors per local cylinder
	cyls int // local cylinders
	// runFn is the pre-bound method value spawned each round: `go
	// ln.run()` would wrap the receiver in a fresh one-shot closure
	// (one heap allocation per lane per round); `go ln.runFn()` spawns
	// the funcval bound once at construction.
	runFn func()
	// worked reports whether any request transferred this round.
	worked bool
	// premium reports whether the round's partition assigned the lane
	// any premium-class stream; the rebuild engine halves its budget on
	// such lanes (repair yields to the strictest service class).
	premium bool
	stats   laneStats
}

func (ln *lane) now() time.Duration {
	if ln.clk != nil {
		return ln.clk.Now()
	}
	return ln.at
}

func (ln *lane) advance(d time.Duration) {
	if ln.clk != nil {
		ln.clk.Advance(d)
		return
	}
	ln.at += d
}

// flushStats merges the lane's counters into the manager's and resets
// them; called after the join, in spindle order.
func (ln *lane) flushStats() {
	s := &ln.m.stats
	s.BlocksFetched += ln.stats.blocksFetched
	s.BlocksWritten += ln.stats.blocksWritten
	s.SilenceBlocks += ln.stats.silenceBlocks
	s.CacheHits += ln.stats.cacheHits
	s.Retries += ln.stats.retries
	s.DegradedBlocks += ln.stats.degradedBlocks
	s.FaultStops += ln.stats.faultStops
	s.Violations += ln.stats.violations
	s.ShedBlocks += ln.stats.shedBlocks
	ln.stats = laneStats{}
}

// run services the lane's sub-round: a C-SCAN sweep over the spindle's
// requests, k blocks each. It is the body of the per-spindle round
// goroutine; the manager joins every lane through laneWG before the
// round closes.
//
// rt:hotpath
func (ln *lane) run() {
	defer ln.m.laneWG.Done()
	if ln.m.order == ScanOrder {
		ln.scanSort()
	}
	for _, r := range ln.reqs {
		// Partition invariant: lane requests are disk-bound plays with
		// no open cache stream, so servicePlay never touches the
		// (single-threaded) interval cache here.
		if ln.servicePlay(r, ln.m.k) {
			ln.worked = true
		}
	}
}

// scanSort orders the lane's requests as a C-SCAN sweep over the
// spindle's local cylinders, starting from its actuator's position.
//
// rt:hotpath
func (ln *lane) scanSort() {
	head := ln.m.array.Spindle(ln.spindle).HeadCylinder(0)
	nc := ln.cyls
	keys := ln.sorter.keys[:0]
	for _, r := range ln.reqs {
		k := 2 * nc // after every positioned request
		if cyl, ok := ln.nextLocalCylinder(r); ok {
			k = cyl - head
			if k < 0 {
				k += nc
			}
		}
		keys = alloc.Append(keys, k)
	}
	ln.sorter.keys = keys
	if len(ln.reqs) <= 16 {
		for i := 1; i < len(ln.reqs); i++ {
			k, r := keys[i], ln.reqs[i]
			j := i - 1
			for j >= 0 && keys[j] > k {
				keys[j+1], ln.reqs[j+1] = keys[j], ln.reqs[j]
				j--
			}
			keys[j+1], ln.reqs[j+1] = k, r
		}
		return
	}
	ln.sorter.reqs = ln.reqs
	sort.Stable(&ln.sorter)
	ln.sorter.reqs = nil
}

// nextLocalCylinder reports the spindle-local cylinder of the request's
// next transfer; ok is false when it cannot be known.
func (ln *lane) nextLocalCylinder(r *request) (int, bool) {
	ps := r.play
	for j := ps.nextFetch; j < len(ps.plan.Blocks); j++ {
		b := ps.plan.Blocks[j]
		if b.Reader == nil {
			continue
		}
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil || e.Silent() {
			continue
		}
		_, local := ln.m.array.Locate(int(e.Sector))
		return local / ln.spc, true
	}
	return 0, false
}

// serviceRequest transfers up to k blocks for the request; reports
// whether any work happened.
//
// rt:hotpath
func (ln *lane) serviceRequest(r *request, k int) bool {
	switch {
	case r.kind == Play && r.cacheServed:
		return ln.serviceCached(r, k)
	case r.kind == Play:
		return ln.servicePlay(r, k)
	default:
		return ln.serviceRecord(r, k)
	}
}

// serviceCached serves a cache-served follower: blocks come from the
// interval cache at zero disk time (silence blocks are regenerated
// directly from the strand, also free). Display-buffer regulation and
// deadline bookkeeping are identical to the disk path. A Wait (the
// leader has not produced the block yet) simply ends this request's
// turn; a Miss marks the interval broken and the demotion runs at the
// top of the next round. Cache-served requests only ever reach the
// serial lane.
func (ln *lane) serviceCached(r *request, k int) bool {
	m := ln.m
	ps := r.play
	id := uint64(r.id)
	served := 0
	for served < k {
		if ps.nextFetch >= len(ps.plan.Blocks) {
			break
		}
		if ps.started && ps.occupancyAt(ln.now()) >= ps.plan.Buffers {
			break // regulation: never overflow the display subsystem
		}
		b := ps.plan.Blocks[ps.nextFetch]
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil {
			ln.violate(&ps.violations, Violation{Block: ps.nextFetch, Deadline: ln.now(), Actual: ln.now()})
			r.done = true
			m.closeCacheStream(r)
			return true
		}
		if e.Silent() {
			// Silence blocks cost no disk time on the disk path
			// either; regenerate directly and advance the position.
			if _, _, _, rerr := b.Reader.ReadBlockInto(0, b.Index, &ln.blockBuf); rerr != nil {
				ln.violate(&ps.violations, Violation{Block: ps.nextFetch, Deadline: ln.now(), Actual: ln.now()})
				r.done = true
				m.closeCacheStream(r)
				return true
			}
			m.cache.Produced(id, b.Index)
			ln.stats.silenceBlocks++
		} else {
			_, res := m.cache.Get(id, b.Index)
			switch res {
			case cache.Wait:
				return served > 0
			case cache.Miss:
				r.needsDemote = true
				return served > 0
			case cache.Hit:
			}
			ps.cacheHits++
			ln.stats.cacheHits++
		}
		arrival := ln.now()
		j := ps.nextFetch
		ps.nextFetch++
		ln.stats.blocksFetched++
		if ps.started {
			if dl := ps.deadline(j); arrival > dl {
				ln.violate(&ps.violations, Violation{Block: j, Deadline: dl, Actual: arrival})
			}
		}
		ps.fetchDone = arrival
		served++
		if !ps.started && ps.nextFetch >= ps.readAhead {
			ps.started = true
			ps.startTime = arrival
		}
	}
	return served > 0
}

// servicePlay fetches up to k blocks for a play request, respecting
// the display-buffer regulation, recording arrival-vs-deadline
// violations, and starting the display once the read-ahead is
// satisfied. With concurrency p > 1, up to p blocks are fetched in
// parallel on distinct heads, all arriving when the slowest completes.
//
// rt:hotpath
func (ln *lane) servicePlay(r *request, k int) bool {
	m := ln.m
	ps := r.play
	fetched := 0
	for fetched < k {
		// Load-shed sub-sampling: advance for free past the blocks the
		// stride drops. The retained neighbor already covers their
		// display time (it repeats on screen), so they occupy no buffer,
		// cost no disk time, and can never be late.
		if ps.stride > 1 {
			for ps.nextFetch < len(ps.plan.Blocks) && (ps.nextFetch-ps.strideBase)%ps.stride != 0 {
				ps.nextFetch++
				ps.shed++
				ln.stats.shedBlocks++
				if m.obs != nil {
					m.obs.shedBlocks.Inc()
				}
			}
		}
		if ps.nextFetch >= len(ps.plan.Blocks) {
			break
		}
		if ps.started && ps.occupancyAt(ln.now()) >= ps.plan.Buffers {
			break // regulation: never overflow the display subsystem
		}
		// Determine the parallel batch size. A load-shed stream fetches
		// one block at a time: its plan is only valid at every
		// stride-th index, so a contiguous multi-head batch would pull
		// in blocks the stride skips.
		batch := m.concurrency
		if ps.stride > 1 {
			batch = 1
		}
		if batch > k-fetched {
			batch = k - fetched
		}
		if rem := len(ps.plan.Blocks) - ps.nextFetch; batch > rem {
			batch = rem
		}
		if ps.started {
			if room := ps.plan.Buffers - ps.occupancyAt(ln.now()); batch > room {
				batch = room
			}
		}
		var maxT time.Duration
		first := ps.nextFetch
		deg := alloc.Zeroed(ln.deg, batch)
		ln.deg = deg
		for i := 0; i < batch; i++ {
			b := ps.plan.Blocks[first+i]
			if b.Reader == nil {
				// Pure delay block (an interval whose medium is
				// absent): consumes playback time, no disk work.
				continue
			}
			if ps.cacheOpen {
				// Consult the cache before the timed disk read: a
				// block still resident (pinned by an interval or
				// retained by the LRU from an earlier play) costs
				// zero disk time. (Serial lane only: open cache
				// streams never ride a parallel lane.)
				if _, res := m.cache.Get(uint64(r.id), b.Index); res == cache.Hit {
					ps.cacheHits++
					ln.stats.cacheHits++
					continue
				}
			}
			h := i % m.d.Heads()
			data, t, silent, err := b.Reader.ReadBlockInto(h, b.Index, &ln.blockBuf)
			if err != nil && isFault(err) {
				data, t, silent, err = ln.retryRead(b, h, t, err)
			}
			if err != nil {
				if !isFault(err) {
					// A broken plan is a programming error in the layers
					// above; record it as a violation at this block and
					// stop the request.
					ln.violate(&ps.violations, Violation{Block: first + i, Deadline: ln.now(), Actual: ln.now()})
					r.done = true
					m.closeCacheStream(r)
					return true
				}
				// Graceful degradation: the retry budget is exhausted
				// (or the sector is a persistent defect), so a
				// zero-filled block stands in for the unreadable data —
				// the display glitches for one block instead of the
				// play aborting. The zero-fill is never cached: a
				// following stream misses here and falls back to disk
				// through the demotion path.
				deg[i] = true
				if ps.cacheOpen {
					m.cache.Produced(uint64(r.id), b.Index)
				}
				if t > maxT {
					maxT = t
				}
				continue
			}
			r.consecFails = 0
			if silent {
				ln.stats.silenceBlocks++
				if ps.cacheOpen {
					// Silence is regenerated on read, never cached.
					m.cache.Produced(uint64(r.id), b.Index)
				}
			} else if ps.cacheOpen {
				// Feed the interval cache: a follower's pin, or plain
				// LRU residency for future adoptions.
				m.cache.Put(uint64(r.id), b.Index, data)
			}
			if t > maxT {
				maxT = t
			}
		}
		ln.advance(maxT)
		arrival := ln.now()
		for i := 0; i < batch; i++ {
			j := first + i
			ps.nextFetch++
			ln.stats.blocksFetched++
			if deg[i] {
				ln.degradeBlock(r, j, arrival)
				continue
			}
			if ps.started {
				if dl := ps.deadline(j); arrival > dl {
					ln.violate(&ps.violations, Violation{Block: j, Deadline: dl, Actual: arrival})
				}
			}
		}
		if m.ft.ConsecFailLimit > 0 && r.consecFails >= m.ft.ConsecFailLimit {
			// Escalation: every recent delivery degraded, so the
			// stream's output is unusable and its retries are eating
			// the shared slack round after round. Stop it; its slot
			// returns to the admission pool.
			ln.stats.faultStops++
			if m.obs != nil {
				m.obs.faultStops.Inc()
			}
			r.done = true
			m.closeCacheStream(r)
			return true
		}
		ps.fetchDone = arrival
		fetched += batch
		if !ps.started && ps.nextFetch >= ps.readAhead {
			ps.started = true
			ps.startTime = arrival
		}
	}
	return fetched > 0
}

// retryRead re-attempts a faulted block read, bounded by the policy's
// MaxRetries and by the lane's remaining slack: an attempt is made
// only while its estimated service time fits the budget, and each
// attempt's actual service time is deducted. The returned t is the
// total time across all attempts (the caller's batch charges it to the
// lane cursor); persistent defects (ErrBadSector) are never retried.
func (ln *lane) retryRead(b PlannedBlock, h int, t0 time.Duration, err0 error) ([]byte, time.Duration, bool, error) {
	m := ln.m
	total, err := t0, err0
	for attempt := 0; attempt < m.ft.MaxRetries; attempt++ {
		if !errors.Is(err, fault.ErrTransient) {
			break
		}
		est, perr := b.Reader.PeekBlockTime(h, b.Index)
		if perr != nil || est > ln.retrySlack {
			break
		}
		data, t, silent, rerr := b.Reader.ReadBlockInto(h, b.Index, &ln.blockBuf)
		total += t
		if t >= ln.retrySlack {
			ln.retrySlack = 0
		} else {
			ln.retrySlack -= t
		}
		ln.stats.retries++
		if m.obs != nil {
			m.obs.retries.Inc()
		}
		if rerr == nil {
			return data, total, silent, nil
		}
		err = rerr
	}
	return nil, total, false, err
}

// degradeBlock records one zero-fill delivery: a Degraded violation at
// the block, the per-request and lane counters, and the consecutive-
// failure count the escalation threshold watches.
func (ln *lane) degradeBlock(r *request, j int, arrival time.Duration) {
	ps := r.play
	dl := arrival
	if ps.started {
		dl = ps.deadline(j)
	}
	ln.violate(&ps.violations, Violation{Block: j, Deadline: dl, Actual: arrival, Cause: CauseDegraded})
	ps.degraded++
	r.consecFails++
	ln.stats.degradedBlocks++
	if ln.m.obs != nil {
		ln.m.obs.degraded.Inc()
	}
}

// violate records one continuity violation on a request and in the
// lane counter the manager folds into the published total.
func (ln *lane) violate(dst *[]Violation, v Violation) {
	//lint:ignore allocpath violations are rare by design and must be retained for the caller's report
	*dst = append(*dst, v)
	ln.stats.violations++
}

// serviceRecord writes up to k captured blocks for a record request,
// recording buffer-overflow violations. Record requests only ever
// reach the serial lane: their write path touches allocator and
// strand-writer state no lane partition protects.
func (ln *lane) serviceRecord(r *request, k int) bool {
	rs := r.rec
	wrote := 0
	for wrote < k {
		if rs.exhausted {
			break
		}
		if rs.totalBlks > 0 && rs.nextWrite >= rs.totalBlks {
			rs.exhausted = true
			break
		}
		// Block b completes capture at start + (b+1)·blockDur.
		ready := rs.start + time.Duration(rs.nextWrite+1)*rs.blockDur
		if ln.now() < ready {
			break // not yet captured
		}
		var flushTime time.Duration
		full := true
		for u := 0; u < rs.plan.UnitsPerBlock; u++ {
			unit, ok := rs.plan.Source.Next()
			if !ok {
				full = false
				break
			}
			t, err := rs.plan.Writer.Append(unit)
			if err != nil {
				ln.violate(&rs.violations, Violation{Block: rs.nextWrite, Deadline: ln.now(), Actual: ln.now()})
				rs.exhausted = true
				return true
			}
			flushTime += t
		}
		if !full {
			rs.exhausted = true
			if rs.plan.Writer.UnitsWritten()%uint64(rs.plan.UnitsPerBlock) == 0 {
				break // nothing partial pending
			}
		}
		ln.advance(flushTime)
		finish := ln.now()
		// Overflow deadline: the capture device has Buffers block
		// buffers, so block b must be on disk before block b+Buffers
		// finishes capture.
		dl := rs.start + time.Duration(rs.nextWrite+rs.plan.Buffers+1)*rs.blockDur
		if finish > dl {
			ln.violate(&rs.violations, Violation{Block: rs.nextWrite, Deadline: dl, Actual: finish})
		}
		rs.nextWrite++
		ln.stats.blocksWritten++
		wrote++
		if !full {
			break
		}
	}
	return wrote > 0
}

// runStripedRound services one round over a striped array: partition
// the active requests onto per-spindle lanes, spawn one goroutine per
// spindle, join, advance the clock to the slowest lane, then service
// the serial leftovers. Reports whether any request transferred.
//
// rt:hotpath
func (m *Manager) runStripedRound(act []*request) bool {
	t0 := m.clock.Now()
	// Re-steer around health changes before partitioning: the steer
	// table is frozen for the round (lanes read it concurrently), and a
	// change means some streams now share a surviving twin's sub-round,
	// which may need a larger k there.
	if m.array.RefreshSteering() {
		m.resteerTransition()
	}
	serial := m.scratchSerial[:0]
	for _, ln := range m.lanes {
		ln.reqs = ln.reqs[:0]
		ln.premium = false
	}
	for _, r := range act {
		if sp, ok := m.laneSpindle(r); ok {
			m.lanes[sp].reqs = alloc.Append(m.lanes[sp].reqs, r)
			if r.class == continuity.Premium {
				m.lanes[sp].premium = true
			}
		} else {
			serial = alloc.Append(serial, r)
		}
	}
	m.scratchSerial = serial

	// Per-spindle Eq. 18 retry budgets over the spindle-resident
	// admission sets; the manager-level budget reported by RetrySlack
	// (and charged by the serial phase) is the most constrained lane's.
	m.fillSpindleAdmissionSets()
	minSlack := time.Duration(-1)
	for _, ln := range m.lanes {
		ln.at = t0
		ln.worked = false
		ln.retrySlack = continuity.Duration(m.adm.SlackSeconds(ln.admSet, m.k))
		if minSlack < 0 || ln.retrySlack < minSlack {
			minSlack = ln.retrySlack
		}
	}

	// One goroutine per spindle per round, joined before the round
	// closes: laneWG.Add happens-before each spawn, lane.run defers
	// laneWG.Done, and the Wait below blocks until every sub-round has
	// finished. The spawn goes through the pre-bound funcval so the
	// steady-state round allocates nothing.
	m.laneWG.Add(len(m.lanes))
	for _, ln := range m.lanes {
		//lint:ignore gojoin runFn is lane.run bound at construction; it defers laneWG.Done and the Wait below joins it
		go ln.runFn()
	}
	m.laneWG.Wait()

	// Join the sub-rounds: the round spans the slowest lane, counters
	// merge in spindle order so totals are deterministic.
	worked := false
	maxAt := t0
	for _, ln := range m.lanes {
		if ln.worked {
			worked = true
		}
		if ln.at > maxAt {
			maxAt = ln.at
		}
		ln.flushStats()
		if ln.retrySlack < minSlack {
			minSlack = ln.retrySlack
		}
	}
	if maxAt > m.clock.Now() {
		m.clock.AdvanceTo(maxAt)
	}
	m.retrySlack = minSlack

	// Serial phase at the joined clock: records, cache-coupled plays,
	// and fetch windows the stripe map splits across spindles.
	if len(serial) > 0 {
		m.serial.retrySlack = m.retrySlack
		if m.order == ScanOrder {
			m.scanSort(serial)
		}
		for _, r := range serial {
			if m.serial.serviceRequest(r, m.k) {
				worked = true
			}
		}
		m.serial.flushStats()
		m.retrySlack = m.serial.retrySlack
	}
	// Online repair rides the leftover slack after every stream has
	// been serviced (see rebuild.go).
	return m.repairRound(worked)
}

// laneSpindle reports the spindle whose lane can service request r this
// round: r must be a disk-bound play with no open cache stream, and
// every media block in its next-k fetch window must lie on that one
// spindle without crossing a stripe-group boundary. ok=false routes r
// to the serial phase.
//
// rt:hotpath
func (m *Manager) laneSpindle(r *request) (int, bool) {
	if r.kind != Play || r.cacheServed || r.play.cacheOpen {
		return 0, false
	}
	ps := r.play
	end := ps.nextFetch + m.k
	if end > len(ps.plan.Blocks) {
		end = len(ps.plan.Blocks)
	}
	sp := -1
	for j := ps.nextFetch; j < end; j++ {
		b := ps.plan.Blocks[j]
		if b.Reader == nil {
			continue
		}
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil {
			return 0, false
		}
		if e.Silent() {
			continue
		}
		s, one := m.array.SpindleRange(int(e.Sector), int(e.SectorCount))
		if !one || (sp >= 0 && s != sp) {
			return 0, false
		}
		sp = s
	}
	if sp < 0 {
		// No disk work in the window (pure delay / silence): the serial
		// phase advances it for free.
		return 0, false
	}
	return sp, true
}

// requestSpindle reports the spindle an admitted request is currently
// resident on — the one holding its next media block. ok is false for
// records, drained plays, and anything else without a knowable
// position; admission charges those to every spindle.
func (m *Manager) requestSpindle(r *request) (int, bool) {
	if m.array == nil || r.kind != Play {
		return 0, false
	}
	ps := r.play
	for j := ps.nextFetch; j < len(ps.plan.Blocks); j++ {
		b := ps.plan.Blocks[j]
		if b.Reader == nil {
			continue
		}
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil || e.Silent() {
			continue
		}
		sp, _ := m.array.Locate(int(e.Sector))
		return sp, true
	}
	return 0, false
}

// planSpindle reports the home spindle of a play plan — the spindle
// holding its first media block — or -1 when unknown (then admission
// must clear every spindle).
func (m *Manager) planSpindle(plan PlayPlan) int {
	if m.array == nil {
		return -1
	}
	for _, b := range plan.Blocks {
		if b.Reader == nil {
			continue
		}
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil || e.Silent() {
			continue
		}
		sp, _ := m.array.Locate(int(e.Sector))
		return sp
	}
	return -1
}

// fillSpindleAdmissionSets rebuilds every lane's admission set — the
// disk-bound requests resident on its spindle — into the lanes' scratch
// arenas. Requests with unknown placement are charged to every spindle
// (conservative: Eq. 18 must hold wherever they might land).
//
// rt:hotpath
func (m *Manager) fillSpindleAdmissionSets() {
	for _, ln := range m.lanes {
		ln.admSet = ln.admSet[:0]
	}
	for _, r := range m.reqs {
		if r.done || r.cacheServed {
			continue
		}
		if r.pause != nil && r.pause.destructive {
			continue
		}
		if sp, ok := m.requestSpindle(r); ok {
			m.lanes[sp].admSet = alloc.Append(m.lanes[sp].admSet, r.effAdm())
		} else {
			for _, ln := range m.lanes {
				ln.admSet = alloc.Append(ln.admSet, r.effAdm())
			}
		}
	}
}

// spindleAdmissionSets builds the per-spindle admission sets as fresh
// slices for the Striped admission controller (a per-request control
// event, so the allocations are off the hot path).
func (m *Manager) spindleAdmissionSets() [][]continuity.Request {
	m.fillSpindleAdmissionSets()
	//lint:ignore allocpath admission is a per-request control event, not per-round work
	sets := make([][]continuity.Request, len(m.lanes))
	for i, ln := range m.lanes {
		//lint:ignore allocpath admission is a per-request control event, not per-round work
		sets[i] = append([]continuity.Request(nil), ln.admSet...)
	}
	return sets
}

// StripeSpindles reports the array's spindle count, 1 when the manager
// drives a single device.
func (m *Manager) StripeSpindles() int {
	if m.array == nil {
		return 1
	}
	return m.array.Spindles()
}
