package msm

import (
	"errors"
	"testing"
	"time"

	"mmfs/internal/cache"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/strand"
)

// cacheRigK computes the steady blocks-per-round for a saturated
// homogeneous population of n template requests. Pinning k there up
// front (ForceK) keeps admissions step-free, so no transition rounds
// fast-forward virtual time mid-test and the population really is
// concurrent.
func cacheRigK(t *testing.T, a continuity.Admission, tmpl continuity.Request, n int) int {
	t.Helper()
	reqs := make([]continuity.Request, n)
	for i := range reqs {
		reqs[i] = tmpl
	}
	k, ok := a.KTransient(reqs)
	if !ok {
		t.Fatalf("no feasible k for n=%d", n)
	}
	return k
}

// admitStaggered admits n plays of the strand, one every stagger of
// virtual time, and returns the admitted IDs plus the cache-served and
// rejected counts.
func admitStaggered(t *testing.T, rig *testRig, s *strand.Strand, n int, stagger time.Duration) (ids []RequestID, cached int, rejected int) {
	t.Helper()
	for i := 0; i < n; i++ {
		plan, err := PlanStrandPlay(rig.d, s, PlanOptions{
			ReadAhead:  2,
			Buffers:    4,
			Scattering: rig.scattering(),
		})
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		id, dec, err := rig.m.AdmitPlay(plan)
		if err != nil {
			rejected++
		} else {
			ids = append(ids, id)
			if dec.CacheServed {
				cached++
			}
		}
		rig.m.RunFor(stagger)
	}
	return ids, cached, rejected
}

// TestCacheAdmitsFollowersPastNMax drives the acceptance scenario at
// the manager level: with an interval cache, n_max + 2 staggered plays
// of one strand are all admitted (one disk-bound leader, the rest
// cache-served followers) and complete violation-free; without the
// cache the identical sequence is cut off at n_max.
func TestCacheAdmitsFollowersPastNMax(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	tmpl := continuity.Request{
		Name: "video", Granularity: 3, UnitBits: 18000 * 8, Rate: 30,
		Scattering: rig.scattering(),
	}
	nmax := rig.m.Admission().NMax(tmpl)
	if nmax < 2 {
		t.Fatalf("degenerate n_max = %d", nmax)
	}
	want := nmax + 2
	k := cacheRigK(t, rig.m.Admission(), tmpl, nmax)
	s := rig.recordVideo(t, 600, 18000, 3, 30, 77)

	rig.m = New(rig.d, continuity.AdmissionFor(rig.dev))
	rig.m.SetCache(cache.New(16 << 20))
	rig.m.ForceK(k)
	ids, cached, rejected := admitStaggered(t, rig, s, want, 400*time.Millisecond)
	if len(ids) != want || rejected != 0 {
		t.Fatalf("admitted %d of %d (rejected %d) with cache", len(ids), want, rejected)
	}
	if cached != want-1 {
		t.Fatalf("cache-served %d of %d admissions, want all but the leader", cached, want)
	}
	if got := rig.m.ActiveRequests(); got != 1 {
		t.Fatalf("disk-bound requests = %d, want 1 (the leader)", got)
	}
	if got := rig.m.CacheServed(); got != want-1 {
		t.Fatalf("CacheServed() = %d, want %d", got, want-1)
	}
	rig.m.RunUntilDone()
	for _, id := range ids {
		v, err := rig.m.Violations(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != 0 {
			t.Fatalf("request %d: %d violations, first %+v", id, len(v), v[0])
		}
		p, err := rig.m.Progress(id)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Done || p.BlocksServed != p.BlocksTotal {
			t.Fatalf("request %d incomplete: %+v", id, p)
		}
	}
	st := rig.m.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if st.Demotions != 0 {
		t.Fatalf("unexpected demotions: %d", st.Demotions)
	}

	// Control: the identical sequence without a cache stops at n_max.
	rig.m = New(rig.d, continuity.AdmissionFor(rig.dev))
	rig.m.ForceK(k)
	ids, cached, rejected = admitStaggered(t, rig, s, want, 400*time.Millisecond)
	if len(ids) != nmax || rejected != want-nmax {
		t.Fatalf("admitted %d without cache, want n_max = %d", len(ids), nmax)
	}
	if cached != 0 {
		t.Fatalf("cache-served admissions without a cache: %d", cached)
	}
}

// TestFollowerDemotedWhenLeaderStops breaks the interval mid-play: the
// follower drains the blocks pinned for it, then misses and is demoted
// through full admission to a disk-bound stream, finishing the play
// violation-free.
func TestFollowerDemotedWhenLeaderStops(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 300, 18000, 3, 30, 78)
	rig.m = New(rig.d, continuity.AdmissionFor(rig.dev))
	rig.m.SetCache(cache.New(16 << 20))

	ids, cached, rejected := admitStaggered(t, rig, s, 2, 400*time.Millisecond)
	if len(ids) != 2 || cached != 1 || rejected != 0 {
		t.Fatalf("setup: ids=%d cached=%d rejected=%d", len(ids), cached, rejected)
	}
	leader, follower := ids[0], ids[1]
	rig.m.RunFor(1 * time.Second)
	if err := rig.m.Stop(leader); err != nil {
		t.Fatal(err)
	}
	rig.m.RunUntilDone()

	st := rig.m.Stats()
	if st.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", st.Demotions)
	}
	if got := rig.m.CacheServed(); got != 0 {
		t.Fatalf("CacheServed() = %d after demotion", got)
	}
	v, err := rig.m.Violations(follower)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("follower had %d violations after demotion, first %+v", len(v), v[0])
	}
	p, err := rig.m.Progress(follower)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done || p.BlocksServed != p.BlocksTotal {
		t.Fatalf("follower incomplete after demotion: %+v", p)
	}
	if p.CacheHits == 0 || p.CacheHits == p.BlocksTotal {
		t.Fatalf("follower cache hits = %d of %d, want a strict mix (cache then disk)", p.CacheHits, p.BlocksTotal)
	}
	if p.CacheServed {
		t.Fatal("follower still reported cache-served")
	}
}

// TestFollowerDemotedToPauseWhenDiskSaturated exercises the last rung
// of the demotion ladder: the disk carries a full n_max population
// (the leader among them) when the leader pauses; the follower drains
// its pins, misses, cannot be re-admitted disk-bound, and is
// destructively paused rather than allowed to violate the admitted
// population. Once the disk drains it resumes through admission and
// finishes.
func TestFollowerDemotedToPauseWhenDiskSaturated(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	tmpl := continuity.Request{
		Name: "video", Granularity: 3, UnitBits: 18000 * 8, Rate: 30,
		Scattering: rig.scattering(),
	}
	nmax := rig.m.Admission().NMax(tmpl)
	if nmax < 2 {
		t.Fatalf("degenerate n_max = %d", nmax)
	}
	k := cacheRigK(t, rig.m.Admission(), tmpl, nmax)
	// Long ropes: every admitted play is re-provisioned to 2k buffers,
	// so rounds move ~2k blocks of virtual time per stream and short
	// ropes would finish during the staggered admissions.
	lead := rig.recordVideo(t, 900, 18000, 3, 30, 200)
	others := make([]*strand.Strand, nmax-1)
	for i := range others {
		others[i] = rig.recordVideo(t, 600, 18000, 3, 30, int64(201+i))
	}

	rig.m = New(rig.d, continuity.AdmissionFor(rig.dev))
	rig.m.SetCache(cache.New(32 << 20))
	rig.m.ForceK(k)

	ids, cached, rejected := admitStaggered(t, rig, lead, 2, 400*time.Millisecond)
	if len(ids) != 2 || cached != 1 || rejected != 0 {
		t.Fatalf("setup: ids=%v cached=%d rejected=%d", ids, cached, rejected)
	}
	leader, follower := ids[0], ids[1]
	for i, s := range others {
		ids2, _, rej := admitStaggered(t, rig, s, 1, 200*time.Millisecond)
		if len(ids2) != 1 || rej != 0 {
			t.Fatalf("saturating admission %d rejected", i)
		}
	}
	if got := rig.m.ActiveRequests(); got != nmax {
		t.Fatalf("disk-bound = %d, want n_max = %d", got, nmax)
	}
	if got := rig.m.CacheServed(); got != 1 {
		t.Fatalf("CacheServed() = %d, want 1", got)
	}

	// The paused leader keeps its admission slot (non-destructive), so
	// the demoted follower faces a full disk and must pause. Pause
	// before the leader can finish prefetching its rope.
	if err := rig.m.Pause(leader, false); err != nil {
		t.Fatal(err)
	}
	rig.m.RunFor(3 * time.Second)
	if d := rig.m.Stats().Demotions; d != 1 {
		t.Fatalf("demotions = %d, want 1", d)
	}
	if got := rig.m.CacheServed(); got != 0 {
		t.Fatalf("CacheServed() = %d after failed demotion", got)
	}
	p, err := rig.m.Progress(follower)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Paused || p.Done {
		t.Fatalf("follower should be destructively paused, got %+v", p)
	}

	// Drain the disk, then the paused follower comes back through
	// admission and completes.
	if _, err := rig.m.Resume(leader); err != nil {
		t.Fatalf("resume leader: %v", err)
	}
	rig.m.RunUntilDone()
	if _, err := rig.m.Resume(follower); err != nil {
		t.Fatalf("resume follower after drain: %v", err)
	}
	rig.m.RunUntilDone()
	p, err = rig.m.Progress(follower)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done || p.BlocksServed != p.BlocksTotal {
		t.Fatalf("follower incomplete after resume: %+v", p)
	}
}

// TestCacheRejectionIsCleanError keeps the error contract: with the
// cache enabled but unable to help (distinct strands), the n_max+1-th
// admission still reports ErrAdmissionRejected.
func TestCacheRejectionIsCleanError(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	tmpl := continuity.Request{
		Name: "video", Granularity: 3, UnitBits: 18000 * 8, Rate: 30,
		Scattering: rig.scattering(),
	}
	nmax := rig.m.Admission().NMax(tmpl)
	k := cacheRigK(t, rig.m.Admission(), tmpl, nmax)
	strands := make([]*strand.Strand, nmax+1)
	for i := range strands {
		strands[i] = rig.recordVideo(t, 120, 18000, 3, 30, int64(300+i))
	}
	rig.m = New(rig.d, continuity.AdmissionFor(rig.dev))
	rig.m.SetCache(cache.New(16 << 20))
	rig.m.ForceK(k)
	for i, s := range strands {
		plan, err := PlanStrandPlay(rig.d, s, PlanOptions{
			ReadAhead: 2, Buffers: 4, Scattering: rig.scattering(),
		})
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = rig.m.AdmitPlay(plan)
		if i < nmax && err != nil {
			t.Fatalf("admission %d: %v", i, err)
		}
		if i == nmax && !errors.Is(err, ErrAdmissionRejected) {
			t.Fatalf("admission %d: err = %v, want ErrAdmissionRejected", i, err)
		}
	}
}
