package msm

import (
	"testing"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
)

// qosTestManager builds a manager on the default geometry with QoS
// enabled at the given stride bound.
func qosTestManager(maxStride int) *Manager {
	g := disk.DefaultGeometry()
	dev := continuity.Device{
		TransferRate: g.TransferRateBits(),
		MaxAccess:    continuity.Seconds(g.MaxAccessTime()),
		MinAccess:    continuity.Seconds(g.MinAccessTime()),
	}
	m := New(disk.MustNew(g), continuity.AdmissionFor(dev))
	m.SetQoS(QoSPolicy{MaxStride: maxStride})
	return m
}

// qosTmpl is the admission template the white-box QoS tests charge
// their synthetic plays at.
func qosTmpl(m *Manager) continuity.Request {
	g := disk.DefaultGeometry()
	return continuity.Request{
		Name: "video", Granularity: 3, UnitBits: 18000 * 8, Rate: 30,
		Scattering: continuity.Seconds(g.AccessTime(32)),
	}
}

// addSyntheticPlay injects a live disk-bound play directly into the
// manager's request table — the ordering passes only look at class,
// id, stride, and the admission request, so no plan or disk I/O is
// needed.
func addSyntheticPlay(m *Manager, id RequestID, class continuity.Class, stride int) *request {
	r := &request{
		id: id, kind: Play, class: class, adm: qosTmpl(m),
		play: &playState{stride: stride},
	}
	m.reqs = append(m.reqs, r)
	return r
}

func TestShedVictimOrdering(t *testing.T) {
	type play struct {
		id          RequestID
		class       continuity.Class
		stride      int
		done        bool
		cacheServed bool
	}
	cases := []struct {
		name  string
		plays []play
		cand  continuity.Class
		want  RequestID // 0 = no victim
	}{
		{
			name: "lowest class first",
			plays: []play{
				{id: 1, class: continuity.Standard, stride: 1},
				{id: 2, class: continuity.BestEffort, stride: 1},
				{id: 3, class: continuity.Standard, stride: 1},
			},
			cand: continuity.Premium,
			want: 2,
		},
		{
			name: "admission-order tiebreak: latest admitted demoted first",
			plays: []play{
				{id: 1, class: continuity.BestEffort, stride: 1},
				{id: 2, class: continuity.BestEffort, stride: 1},
				{id: 3, class: continuity.BestEffort, stride: 1},
			},
			cand: continuity.Standard,
			want: 3,
		},
		{
			name: "only strictly lower classes are shed",
			plays: []play{
				{id: 1, class: continuity.Standard, stride: 1},
				{id: 2, class: continuity.Standard, stride: 1},
			},
			cand: continuity.Standard,
			want: 0,
		},
		{
			name: "premium is never a victim",
			plays: []play{
				{id: 1, class: continuity.Premium, stride: 1},
				{id: 2, class: continuity.Premium, stride: 1},
			},
			cand: continuity.Premium,
			want: 0,
		},
		{
			name: "streams at the stride cap are exhausted",
			plays: []play{
				{id: 1, class: continuity.BestEffort, stride: 8},
				{id: 2, class: continuity.BestEffort, stride: 4},
			},
			cand: continuity.Premium,
			want: 2,
		},
		{
			name: "all at cap leaves no victim",
			plays: []play{
				{id: 1, class: continuity.BestEffort, stride: 8},
				{id: 2, class: continuity.Standard, stride: 8},
			},
			cand: continuity.Premium,
			want: 0,
		},
		{
			name: "done and cache-served streams are skipped",
			plays: []play{
				{id: 1, class: continuity.BestEffort, stride: 1, done: true},
				{id: 2, class: continuity.BestEffort, stride: 1, cacheServed: true},
				{id: 3, class: continuity.Standard, stride: 1},
			},
			cand: continuity.Premium,
			want: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := qosTestManager(8)
			for _, p := range tc.plays {
				r := addSyntheticPlay(m, p.id, p.class, p.stride)
				r.done = p.done
				r.cacheServed = p.cacheServed
			}
			v := m.shedVictim(tc.cand)
			switch {
			case tc.want == 0 && v != nil:
				t.Fatalf("want no victim, got id %d (class %v)", v.id, v.class)
			case tc.want != 0 && v == nil:
				t.Fatalf("want victim id %d, got none", tc.want)
			case tc.want != 0 && v.id != tc.want:
				t.Fatalf("want victim id %d, got id %d (class %v)", tc.want, v.id, v.class)
			}
		})
	}
}

func TestPromotesBefore(t *testing.T) {
	mk := func(id RequestID, c continuity.Class) *request {
		return &request{id: id, class: c}
	}
	cases := []struct {
		name string
		a, b *request
		want bool
	}{
		{"higher class first", mk(9, continuity.Standard), mk(1, continuity.BestEffort), true},
		{"lower class later", mk(1, continuity.BestEffort), mk(9, continuity.Standard), false},
		{"same class: earlier admission first", mk(1, continuity.Standard), mk(2, continuity.Standard), true},
		{"same class: later admission later", mk(2, continuity.Standard), mk(1, continuity.Standard), false},
		{"premium ahead of standard", mk(5, continuity.Premium), mk(4, continuity.Standard), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := promotesBefore(tc.a, tc.b); got != tc.want {
				t.Fatalf("promotesBefore(id%d/%v, id%d/%v) = %v, want %v",
					tc.a.id, tc.a.class, tc.b.id, tc.b.class, got, tc.want)
			}
		})
	}
}

// TestClassPassDemotionOrder overloads the manager (k forced below the
// population's transient bound) and checks the demote loop's class
// priority: no standard stream loses quality while a best-effort
// stream still has stride headroom, and premium is never touched.
func TestClassPassDemotionOrder(t *testing.T) {
	m := qosTestManager(8)
	m.ForceK(1) // far below any feasible k for this population
	addSyntheticPlay(m, 1, continuity.Premium, 1)
	addSyntheticPlay(m, 2, continuity.Standard, 1)
	addSyntheticPlay(m, 3, continuity.BestEffort, 1)
	addSyntheticPlay(m, 4, continuity.BestEffort, 1)
	m.classPass()

	for _, r := range m.reqs {
		if r.class == continuity.Premium && strideOf(r.play) != 1 {
			t.Fatalf("premium stream demoted to stride %d", r.play.stride)
		}
		if r.class == continuity.Standard && strideOf(r.play) > 1 {
			// A standard stream may only degrade once every
			// best-effort stream is at the cap.
			for _, o := range m.reqs {
				if o.class == continuity.BestEffort && strideOf(o.play) < m.QoS().MaxStride {
					t.Fatalf("standard demoted to %d while best-effort id %d at stride %d has headroom",
						r.play.stride, o.id, o.play.stride)
				}
			}
		}
	}
	if m.Stats().LoadDemotions == 0 {
		t.Fatal("infeasible set triggered no demotions")
	}
	for _, r := range m.reqs {
		if r.class == continuity.BestEffort && strideOf(r.play) == 1 {
			t.Fatalf("best-effort id %d untouched under overload", r.id)
		}
	}
}

// TestClassPassPremiumOnlyNeverDemotes pins an all-premium population
// into overload: the pass must leave every stride alone and record no
// demotions — at worst the pre-pass violation exposure remains.
func TestClassPassPremiumOnlyNeverDemotes(t *testing.T) {
	m := qosTestManager(8)
	m.ForceK(1)
	for id := RequestID(1); id <= 4; id++ {
		addSyntheticPlay(m, id, continuity.Premium, 1)
	}
	m.classPass()
	for _, r := range m.reqs {
		if strideOf(r.play) != 1 {
			t.Fatalf("premium id %d demoted to stride %d", r.id, r.play.stride)
		}
	}
	if got := m.Stats().LoadDemotions; got != 0 {
		t.Fatalf("%d demotions in an all-premium set", got)
	}
}

// TestClassPassMonotoneRecovery gives a lightly loaded manager a set
// of degraded streams: the promote pass must only ever lower strides
// (never deepen one), and with ample slack it restores everyone to
// full rate.
func TestClassPassMonotoneRecovery(t *testing.T) {
	m := qosTestManager(8)
	m.ForceK(64) // generous round: the small set is easily feasible
	addSyntheticPlay(m, 1, continuity.Standard, 4)
	addSyntheticPlay(m, 2, continuity.BestEffort, 8)
	before := map[RequestID]int{}
	for _, r := range m.reqs {
		before[r.id] = strideOf(r.play)
	}
	m.classPass()
	for _, r := range m.reqs {
		if got := strideOf(r.play); got > before[r.id] {
			t.Fatalf("id %d stride rose %d -> %d during recovery", r.id, before[r.id], got)
		}
		if got := strideOf(r.play); got != 1 {
			t.Fatalf("id %d stuck at stride %d with ample slack", r.id, got)
		}
	}
	if got := m.Stats().Promotions; got != 2 {
		t.Fatalf("%d promotions, want 2", got)
	}
	if got := m.Stats().LoadDemotions; got != 0 {
		t.Fatalf("%d demotions under light load", got)
	}
}

// TestQoSStatsPerClass checks the per-class population snapshot used
// by the STATS wire reply and the metrics gauges.
func TestQoSStatsPerClass(t *testing.T) {
	m := qosTestManager(8)
	addSyntheticPlay(m, 1, continuity.Premium, 1)
	addSyntheticPlay(m, 2, continuity.Standard, 1)
	addSyntheticPlay(m, 3, continuity.Standard, 2)
	addSyntheticPlay(m, 4, continuity.BestEffort, 8)
	done := addSyntheticPlay(m, 5, continuity.BestEffort, 1)
	done.done = true

	qs := m.QoSStats()
	if qs[continuity.Premium].Active != 1 || qs[continuity.Premium].Degraded != 0 {
		t.Fatalf("premium stats %+v", qs[continuity.Premium])
	}
	if qs[continuity.Standard].Active != 2 || qs[continuity.Standard].Degraded != 1 {
		t.Fatalf("standard stats %+v", qs[continuity.Standard])
	}
	if qs[continuity.BestEffort].Active != 1 || qs[continuity.BestEffort].Degraded != 1 {
		t.Fatalf("best-effort stats %+v", qs[continuity.BestEffort])
	}
	// Mean effective rates: premium 30, standard (30 + 15)/2, one
	// best-effort at 30/8.
	if got := qs[continuity.Premium].EffectiveRate; got != 30 {
		t.Fatalf("premium effective rate %v", got)
	}
	if got := qs[continuity.Standard].EffectiveRate; got != 22.5 {
		t.Fatalf("standard effective rate %v", got)
	}
	if got := qs[continuity.BestEffort].EffectiveRate; got != 3.75 {
		t.Fatalf("best-effort effective rate %v", got)
	}
}
