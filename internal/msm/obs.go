package msm

import (
	"fmt"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/obs"
)

// roundObs holds the manager's observability handles plus the
// cumulative snapshot the per-round deltas are computed against.
// Rounds can nest (a demotion's re-admission runs transition rounds
// inside RunRound); delta-since-last-record accounting keeps the trace
// exact under nesting — inner rounds record first, the outer round
// records the remainder — at the cost of trace entries appearing in
// completion order.
type roundObs struct {
	ring *obs.TraceRing

	rounds, blocks, written  *obs.Counter
	diskBusyNs               *obs.Counter
	cacheHits, violations    *obs.Counter
	admAccepted, admRejected *obs.Counter
	admCacheServed           *obs.Counter
	demotions, transitions   *obs.Counter
	retries, degraded        *obs.Counter
	faultStops               *obs.Counter

	kGauge, activeGauge, cacheServedGauge *obs.Gauge
	retrySlackGauge                       *obs.Gauge

	// QoS: per-class admission/promotion/demotion counters, per-class
	// live and degraded stream gauges, the load-shed skip counter, and
	// the effective-rate histogram sampled at every admission,
	// promotion, and demotion.
	classAdmitted  [continuity.NumClasses]*obs.Counter
	promotions     [continuity.NumClasses]*obs.Counter
	classDemotions [continuity.NumClasses]*obs.Counter
	classActive    [continuity.NumClasses]*obs.Gauge
	classDegraded  [continuity.NumClasses]*obs.Gauge
	shedBlocks     *obs.Counter
	effRate        *obs.Histogram

	// Mirror resilience: per-spindle health gauges (values are the
	// disk.SpindleState enum; registered only over a mirrored array),
	// the rebuild/rebalance progress gauge in permille (gauges are
	// integers), and the copied repair-chunk counter.
	spindleState  []*obs.Gauge
	rebuildRatio  *obs.Gauge
	rebuildBlocks *obs.Counter

	// last* are the cumulative values already attributed to recorded
	// rounds.
	lastBlocks, lastWritten  uint64
	lastHits, lastViol       uint64
	lastRetries, lastDegrade uint64
	lastRebuild              uint64
	lastBusy                 time.Duration
}

// SetObs wires the manager to an observability registry and service-
// round trace ring (either may be shared with previous managers over
// the same disk: counters continue, deltas re-anchor to the current
// cumulative state). ring may be nil to record metrics without a
// trace.
func (m *Manager) SetObs(reg *obs.Registry, ring *obs.TraceRing) {
	o := &roundObs{
		ring:             ring,
		rounds:           reg.Counter("mmfs_rounds_total"),
		blocks:           reg.Counter("mmfs_blocks_fetched_total"),
		written:          reg.Counter("mmfs_blocks_written_total"),
		diskBusyNs:       reg.Counter("mmfs_disk_busy_ns_total"),
		cacheHits:        reg.Counter("mmfs_round_cache_hits_total"),
		violations:       reg.Counter("mmfs_violations_total"),
		admAccepted:      reg.Counter("mmfs_admission_accepted_total"),
		admRejected:      reg.Counter("mmfs_admission_rejected_total"),
		admCacheServed:   reg.Counter("mmfs_admission_cache_served_total"),
		demotions:        reg.Counter("mmfs_demotions_total"),
		transitions:      reg.Counter("mmfs_transition_steps_total"),
		retries:          reg.Counter("mmfs_retries_total"),
		degraded:         reg.Counter("mmfs_degraded_blocks_total"),
		faultStops:       reg.Counter("mmfs_fault_stops_total"),
		kGauge:           reg.Gauge("mmfs_k"),
		activeGauge:      reg.Gauge("mmfs_active_requests"),
		cacheServedGauge: reg.Gauge("mmfs_cache_served_requests"),
		retrySlackGauge:  reg.Gauge("mmfs_retry_slack_ns"),
		shedBlocks:       reg.Counter("mmfs_qos_shed_blocks_total"),
		effRate:          reg.Histogram("mmfs_qos_effective_rate_units", qosRateBuckets()),
		rebuildRatio:     reg.Gauge("mmfs_rebuild_done_permille"),
		rebuildBlocks:    reg.Counter("mmfs_rebuild_blocks_total"),
	}
	if m.array != nil && m.array.Mirrored() {
		for i := 0; i < m.array.Spindles(); i++ {
			o.spindleState = append(o.spindleState,
				reg.Gauge(fmt.Sprintf("mmfs_spindle_state{spindle=%q}", fmt.Sprint(i))))
		}
	}
	for c := 0; c < continuity.NumClasses; c++ {
		label := continuity.Class(c).String()
		o.classAdmitted[c] = reg.Counter(fmt.Sprintf("mmfs_qos_admitted_total{class=%q}", label))
		o.promotions[c] = reg.Counter(fmt.Sprintf("mmfs_qos_promotions_total{class=%q}", label))
		o.classDemotions[c] = reg.Counter(fmt.Sprintf("mmfs_qos_demotions_total{class=%q}", label))
		o.classActive[c] = reg.Gauge(fmt.Sprintf("mmfs_qos_streams{class=%q}", label))
		o.classDegraded[c] = reg.Gauge(fmt.Sprintf("mmfs_qos_degraded_streams{class=%q}", label))
	}
	// Anchor the deltas: work done before SetObs is not re-attributed.
	o.lastBlocks, o.lastWritten = m.stats.BlocksFetched, m.stats.BlocksWritten
	o.lastHits, o.lastViol = m.stats.CacheHits, m.stats.Violations
	o.lastRetries, o.lastDegrade = m.stats.Retries, m.stats.DegradedBlocks
	o.lastRebuild = m.stats.RebuildBlocks
	o.lastBusy = m.d.Stats().BusyTime()
	o.kGauge.Set(int64(m.k))
	m.obs = o
}

// recordRound attributes everything since the previous record to one
// completed service round and appends its trace entry.
//
// rt:hotpath
func (m *Manager) recordRound(start time.Duration, kAtStart, active, cacheServed, streamsServed int) {
	o := m.obs
	if o == nil {
		return
	}
	busy := m.d.Stats().BusyTime()
	tr := obs.RoundTrace{
		Round:         m.stats.Rounds,
		Start:         int64(start),
		K:             kAtStart,
		Active:        active,
		CacheServed:   cacheServed,
		StreamsServed: streamsServed,
		BlocksRead:    m.stats.BlocksFetched - o.lastBlocks,
		DiskBusyNs:    int64(busy - o.lastBusy),
		CacheHits:     m.stats.CacheHits - o.lastHits,
		Violations:    m.stats.Violations - o.lastViol,
		Retries:       m.stats.Retries - o.lastRetries,
		Degraded:      m.stats.DegradedBlocks - o.lastDegrade,
		RetrySlackNs:  int64(m.retrySlack),
		RebuildBlocks: m.stats.RebuildBlocks - o.lastRebuild,
	}
	o.rounds.Inc()
	o.blocks.Add(tr.BlocksRead)
	o.written.Add(m.stats.BlocksWritten - o.lastWritten)
	o.diskBusyNs.Add(uint64(tr.DiskBusyNs))
	o.cacheHits.Add(tr.CacheHits)
	o.violations.Add(tr.Violations)
	o.kGauge.Set(int64(m.k))
	o.activeGauge.Set(int64(active))
	o.cacheServedGauge.Set(int64(cacheServed))
	o.retrySlackGauge.Set(int64(m.retrySlack))
	if m.qosEnabled() {
		var act, deg [continuity.NumClasses]int64
		for _, r := range m.reqs {
			if r.kind != Play || r.done {
				continue
			}
			act[r.class]++
			if r.play.stride > 1 {
				deg[r.class]++
			}
		}
		for c := 0; c < continuity.NumClasses; c++ {
			o.classActive[c].Set(act[c])
			o.classDegraded[c].Set(deg[c])
		}
	}
	for i, g := range o.spindleState {
		g.Set(int64(m.array.SpindleState(i)))
	}
	if o.rebuildRatio != nil {
		if done, total := m.RepairProgress(); total > 0 {
			o.rebuildRatio.Set(int64(done) * 1000 / int64(total))
		} else {
			o.rebuildRatio.Set(0)
		}
	}
	o.lastBlocks, o.lastWritten = m.stats.BlocksFetched, m.stats.BlocksWritten
	o.lastHits, o.lastViol = m.stats.CacheHits, m.stats.Violations
	o.lastRetries, o.lastDegrade = m.stats.Retries, m.stats.DegradedBlocks
	o.lastRebuild = m.stats.RebuildBlocks
	o.lastBusy = busy
	if o.ring != nil {
		o.ring.Append(tr)
	}
}

// noteAdmission counts an admission decision.
func (m *Manager) noteAdmission(admitted, cacheServed bool) {
	o := m.obs
	if o == nil {
		return
	}
	switch {
	case admitted && cacheServed:
		o.admAccepted.Inc()
		o.admCacheServed.Inc()
	case admitted:
		o.admAccepted.Inc()
	default:
		o.admRejected.Inc()
	}
}
