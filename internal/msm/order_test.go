package msm

import (
	"testing"

	"mmfs/internal/layout"
	"mmfs/internal/media"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/strand"
)

func TestServiceOrderString(t *testing.T) {
	if ArrivalOrder.String() != "arrival" || ScanOrder.String() != "scan" {
		t.Fatal("order names")
	}
}

// TestScanOrderReducesSeekTime verifies the C-SCAN sweep services
// requests in ascending-cylinder order regardless of arrival order.
func TestScanOrderReducesSeekTime(t *testing.T) {
	run := func(order ServiceOrder) disk.Stats {
		rig := newRig(t, disk.DefaultGeometry())
		// Five strands in widely separated regions, admitted in a
		// zig-zag order so arrival-order servicing sweeps the
		// actuator back and forth every round. k = 1 makes switch
		// seeks dominate the round.
		var strands []*strand.Strand
		for i, startCyl := range []int{100, 350, 600, 850, 1100} {
			strands = append(strands, rig.recordVideoAt(t, 60, 18000, 3, 30, int64(7000+i), startCyl))
		}
		zig := []*strand.Strand{strands[0], strands[4], strands[1], strands[3], strands[2]}
		mgr := New(rig.d, continuity.AdmissionFor(rig.dev))
		mgr.SetPolicy(NaiveJump)
		mgr.SetServiceOrder(order)
		mgr.ForceK(1)
		rig.d.ResetStats()
		for _, s := range zig {
			plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 1, Buffers: 64, Scattering: rig.scattering()})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := mgr.AdmitPlay(plan); err != nil {
				t.Fatal(err)
			}
			mgr.ForceK(1)
		}
		mgr.RunUntilDone()
		return rig.d.Stats()
	}
	arrival := run(ArrivalOrder)
	scan := run(ScanOrder)
	if scan.SeekTime >= arrival.SeekTime {
		t.Fatalf("scan seek time %v not below arrival %v", scan.SeekTime, arrival.SeekTime)
	}
	// Both transfer the same data.
	if scan.SectorsRead != arrival.SectorsRead {
		t.Fatalf("sectors read differ: %d vs %d", scan.SectorsRead, arrival.SectorsRead)
	}
}

// recordVideoAt is recordVideo with an explicit start cylinder.
func (r *testRig) recordVideoAt(t *testing.T, frames, frameBytes, gran int, rate float64, seed int64, startCyl int) *strand.Strand {
	t.Helper()
	w, err := strand.NewWriter(r.d, r.a, strand.WriterConfig{
		ID:            r.st.NewID(),
		Medium:        layout.Video,
		Rate:          rate,
		UnitBytes:     frameBytes,
		Granularity:   gran,
		Constraint:    r.constraint(),
		StartCylinder: startCyl,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVideoSource(frames, frameBytes, rate, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	r.st.Put(s)
	return s
}

func TestNextCylinderSkipsDelaysAndSilence(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 30, 18000, 3, 30, 7100)
	mgr := New(rig.d, continuity.AdmissionFor(rig.dev))
	expanded, err := ExpandInterval(rig.d, s, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	// A plan starting with a pure delay: nextCylinder must look
	// through it to the first real block.
	blocks := append([]PlannedBlock{{Reader: nil, Duration: expanded[0].Duration}}, expanded...)
	plan, err := PlanBlocksPlay(rig.d, "delayed", blocks, continuity.Request{
		Name: "d", Granularity: 3, UnitBits: 18000 * 8, Rate: 30, Scattering: rig.scattering(),
	}, PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := mgr.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mgr.find(id)
	if err != nil {
		t.Fatal(err)
	}
	cyl, ok := mgr.nextCylinder(r)
	if !ok {
		t.Fatal("nextCylinder found nothing despite real blocks")
	}
	e, _ := s.Block(0)
	if want := rig.d.Geometry().CylinderOf(int(e.Sector)); cyl != want {
		t.Fatalf("next cylinder %d, want %d", cyl, want)
	}
	mgr.RunUntilDone()
}

func TestScanSortStableForUnknownPositions(t *testing.T) {
	// Record requests have no known next cylinder; they keep arrival
	// order at the end of the sweep and the round still completes.
	rig := newRig(t, disk.DefaultGeometry())
	rig.m.SetServiceOrder(ScanOrder)
	s := rig.recordVideo(t, 30, 18000, 3, 30, 7200)
	_ = s
	if rig.m.Stats().Rounds == 0 {
		t.Fatal("no rounds serviced")
	}
}
