package msm

import (
	"testing"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

func TestFastForwardNoSkipDoublesPace(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 120, 18000, 3, 30, 50)

	normal := playOnce(t, rig, s, PlanOptions{ReadAhead: 2})
	ff := playOnce(t, rig, s, PlanOptions{ReadAhead: 2, Speed: 2, Buffers: 8})
	if normal.viol != 0 || ff.viol != 0 {
		t.Fatalf("violations %d/%d", normal.viol, ff.viol)
	}
	// 2× playback finishes in roughly half the virtual time.
	ratio := float64(normal.elapsed) / float64(ff.elapsed)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("speedup ratio %.2f, want ≈ 2", ratio)
	}
}

func TestFastForwardSkipHalvesFetches(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 120, 18000, 3, 30, 51)
	normal := playOnce(t, rig, s, PlanOptions{ReadAhead: 2})
	skip := playOnce(t, rig, s, PlanOptions{ReadAhead: 2, Speed: 2, Skip: true})
	if skip.viol != 0 {
		t.Fatalf("skip playback violated %d", skip.viol)
	}
	if skip.blocks*2 != normal.blocks {
		t.Fatalf("skip fetched %d blocks, normal %d (want half)", skip.blocks, normal.blocks)
	}
}

type playResult struct {
	viol    int
	blocks  int
	elapsed time.Duration
}

func playOnce(t *testing.T, rig *testRig, s *strand.Strand, opts PlanOptions) playResult {
	t.Helper()
	if opts.Scattering == 0 {
		opts.Scattering = rig.scattering()
	}
	mgr := New(rig.d, continuity.AdmissionFor(rig.dev))
	plan, err := PlanStrandPlay(rig.d, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	start := mgr.Now()
	id, _, err := mgr.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	mgr.RunUntilDone()
	v, _ := mgr.Violations(id)
	prog, _ := mgr.Progress(id)
	return playResult{viol: len(v), blocks: prog.BlocksServed, elapsed: mgr.Now() - start}
}

func TestRecordBufferOverflowDetected(t *testing.T) {
	// A deliberately slow disk with a single capture buffer must
	// overflow: block b+1 finishes capture before block b's write
	// lands.
	g := disk.DefaultGeometry()
	g.SectorsPerTrack = 8 // ~7.9 Mbit/s: slower than the 4.3 Mbit/s video? keep close
	g.RPM = 1200          // 2.6 Mbit/s — slower than the source
	rig := newRig(t, g)
	w, err := strand.NewWriter(rig.d, rig.a, strand.WriterConfig{
		ID: rig.st.NewID(), Medium: layout.Video, Rate: 30, UnitBytes: 18000, Granularity: 3,
		Constraint: rig.constraint(),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVideoSource(60, 18000, 30, 52)
	plan := PlanRecord("slow", w, src, 3, 60, rig.scattering(), 1)
	// Admission would reject this (correctly); bypass it to observe
	// the overflow the admission control exists to prevent.
	mgr := New(rig.d, continuity.Admission{MaxAccess: 0.001, TransferRate: 1e12})
	id, _, err := mgr.AdmitRecord(plan)
	if err != nil {
		t.Fatalf("bypass admission: %v", err)
	}
	mgr.RunUntilDone()
	v, _ := mgr.Violations(id)
	if len(v) == 0 {
		t.Fatal("no overflow detected on an oversubscribed recorder")
	}
}

func TestConcurrentFetchUsesHeads(t *testing.T) {
	g := disk.ArrayGeometry(4)
	rig := newRig(t, g)
	s := rig.recordVideo(t, 120, 18000, 3, 30, 53)
	mgr := New(rig.d, continuity.AdmissionFor(rig.dev))
	mgr.SetConcurrency(4)
	plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 4, Buffers: 8, Scattering: rig.scattering()})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := mgr.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	mgr.RunUntilDone()
	if v, _ := mgr.Violations(id); len(v) != 0 {
		t.Fatalf("concurrent playback violated %d", len(v))
	}
	prog, _ := mgr.Progress(id)
	if prog.BlocksServed != 40 {
		t.Fatalf("served %d blocks", prog.BlocksServed)
	}
}

func TestSetBuffers(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 30, 18000, 3, 30, 54)
	plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2, Scattering: rig.scattering()})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.m.SetBuffers(id, 32); err != nil {
		t.Fatal(err)
	}
	if err := rig.m.SetBuffers(id, 0); err == nil {
		t.Fatal("zero buffers accepted")
	}
	if err := rig.m.SetBuffers(999, 4); err == nil {
		t.Fatal("unknown request accepted")
	}
	rig.m.RunUntilDone()
}

func TestStopHaltsService(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 300, 18000, 3, 30, 55)
	plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2, Scattering: rig.scattering()})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	rig.m.RunRound()
	if err := rig.m.Stop(id); err != nil {
		t.Fatal(err)
	}
	prog, _ := rig.m.Progress(id)
	if !prog.Done {
		t.Fatal("stopped request not done")
	}
	if prog.BlocksServed >= prog.BlocksTotal {
		t.Fatal("stop happened after completion?")
	}
	if rig.m.ActiveRequests() != 0 {
		t.Fatal("stopped request still in admission set")
	}
}

func TestRopeStylePlanWithDelayBlocks(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 30, 18000, 3, 30, 56)
	expanded, err := ExpandInterval(rig.d, s, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Sandwich a one-second pure delay between two copies of the
	// strand (an interval whose medium is absent).
	blocks := append([]PlannedBlock{}, expanded...)
	blocks = append(blocks, PlannedBlock{Reader: nil, Duration: time.Second})
	blocks = append(blocks, expanded...)
	plan, err := PlanBlocksPlay(rig.d, "gap", blocks, continuity.Request{
		Name: "gap", Granularity: 3, UnitBits: 18000 * 8, Rate: 30, Scattering: rig.scattering(),
	}, PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	before := rig.m.Now()
	rig.m.RunUntilDone()
	if v, _ := rig.m.Violations(id); len(v) != 0 {
		t.Fatalf("gap playback violated %d", len(v))
	}
	// Total playback spans 1s + 1s gap + 1s (minus pipelining).
	if elapsed := rig.m.Now() - before; elapsed < 2500*time.Millisecond {
		t.Fatalf("elapsed %v, want ≥ 2.5s", elapsed)
	}
}

func TestExpandIntervalPartialEdges(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 30, 18000, 3, 30, 57)
	// Units 2..10: covers blocks 0..3 with partial edges.
	blocks, err := ExpandInterval(rig.d, s, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("%d blocks", len(blocks))
	}
	var total time.Duration
	for _, b := range blocks {
		total += b.Duration
	}
	want := continuity.Duration(9.0 / 30)
	if total != want {
		t.Fatalf("total duration %v, want %v", total, want)
	}
	// First block covers 1 unit (unit 2), last covers 2 (units 9,10).
	if blocks[0].Duration != continuity.Duration(1.0/30) {
		t.Fatalf("first block %v", blocks[0].Duration)
	}
	if blocks[3].Duration != continuity.Duration(2.0/30) {
		t.Fatalf("last block %v", blocks[3].Duration)
	}
	if _, err := ExpandInterval(rig.d, s, 25, 10); err == nil {
		t.Fatal("interval past end accepted")
	}
}

func TestPlanValidation(t *testing.T) {
	if err := (PlayPlan{}).Validate(); err == nil {
		t.Fatal("empty plan accepted")
	}
	if err := (RecordPlan{}).Validate(); err == nil {
		t.Fatal("empty record plan accepted")
	}
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 6, 18000, 3, 30, 58)
	blocks, _ := ExpandInterval(rig.d, s, 0, 6)
	p := PlayPlan{Name: "x", Blocks: blocks, Buffers: 0,
		Admission: continuity.Request{Granularity: 3, UnitBits: 8, Rate: 30}}
	if err := p.Validate(); err == nil {
		t.Fatal("zero buffers accepted")
	}
	p.Buffers = 2
	p.Blocks = append([]PlannedBlock{}, blocks...)
	p.Blocks[0].Duration = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero-duration block accepted")
	}
}

// constraint exposes the test rig's placement constraint.
func (r *testRig) constraint() alloc.Constraint {
	return alloc.Constraint{MinCylinders: 1, MaxCylinders: targetCylinders}
}
