package msm

import (
	"errors"
	"fmt"
	"time"

	"mmfs/internal/disk"
)

// This file is the manager half of surviving a whole-spindle loss: it
// ticks the fault layer's round clocks (so scripted die=<round>
// scenarios fire on round boundaries), renegotiates k when the mirror
// layer re-steers a dead spindle's streams onto the surviving twin,
// and drives the disk layer's rebuild/rebalance cursor in the slack
// each service round leaves over — Eq. 18 reserves k·γ − n·α − n·k·β
// of every round for worst-case positioning that rarely happens, and
// the repair engine spends what the retries did not.

// DefaultRebuildRate caps the repair chunks (one spindle cylinder
// each) copied per round when no caller overrides SetRebuildRate. The
// slack budget is the real limiter in loaded rounds; the rate cap
// bounds repair-only rounds so the virtual clock advances in humane
// steps.
const DefaultRebuildRate = 8

// repairFailLimit aborts a repair after this many consecutive chunk
// errors (the copy source failing too means the pair is beyond this
// engine's help).
const repairFailLimit = 8

// maxResteerK caps the k a steering change may request; a surviving
// twin whose absorbed population is infeasible even at this k keeps
// the old k and honestly shows violations instead.
const maxResteerK = 64

// repairCtl is the manager-side rebuild/rebalance engine state.
type repairCtl struct {
	// rate caps chunks copied per round (SetRebuildRate).
	rate int
	// buf is the chunk copy buffer (one spindle cylinder), allocated
	// when a repair starts so steady rounds stay allocation-free.
	buf []byte
	// fails counts consecutive chunk errors toward repairFailLimit.
	fails int
}

// roundAdvancer is the fault layer's virtual round clock (fault.Disk
// implements it); the manager ticks every one once per service round.
type roundAdvancer interface{ AdvanceRound() }

// probeAdvancers collects the fault layers wrapping the manager's
// device(s). Called at construction and again after a spindle
// replacement (the factory-fresh device has no fault layer; the dead
// one's clock no longer matters).
func (m *Manager) probeAdvancers() {
	m.advancers = m.advancers[:0]
	if m.array != nil {
		for i := 0; i < m.array.Spindles(); i++ {
			if ra, ok := m.array.Spindle(i).(roundAdvancer); ok {
				m.advancers = append(m.advancers, ra)
			}
		}
		return
	}
	if ra, ok := m.d.(roundAdvancer); ok {
		m.advancers = append(m.advancers, ra)
	}
}

// tickFaultRounds advances every fault layer's round counter; runs at
// the top of every round so die=<round> kills land on round
// boundaries, deterministically.
//
// rt:hotpath
func (m *Manager) tickFaultRounds() {
	for _, ra := range m.advancers {
		ra.AdvanceRound()
	}
}

// SetRebuildRate caps the repair chunks copied per round (minimum 1).
func (m *Manager) SetRebuildRate(n int) {
	if n < 1 {
		n = 1
	}
	m.rb.rate = n
}

// RebuildRate reports the per-round repair chunk cap.
func (m *Manager) RebuildRate() int { return m.rb.rate }

// RepairActive reports whether a rebuild or rebalance is running.
func (m *Manager) RepairActive() bool {
	return m.array != nil && m.array.RepairActive()
}

// RepairProgress reports the running repair's chunk cursor (0, 0 when
// none is active).
func (m *Manager) RepairProgress() (done, total int) {
	if m.array == nil {
		return 0, 0
	}
	return m.array.RepairProgress()
}

// Rebuild brings failed spindle target back online: a factory-fresh
// disk of the twin's geometry replaces it (the operator declaring the
// drive failed — Dead or merely Suspect, since a Suspect drive the
// steering has already routed around may never collect enough strikes
// to die), then the online rebuild starts copying the twin's cylinders
// in the rounds' leftover slack. The daemon's REBUILD op maps here.
func (m *Manager) Rebuild(target int) error {
	if m.array == nil || !m.array.Mirrored() {
		return errors.New("msm: rebuild requires a mirrored array")
	}
	if target < 0 || target >= m.array.Spindles() {
		return fmt.Errorf("msm: rebuild spindle %d out of range [0,%d)", target, m.array.Spindles())
	}
	switch m.array.SpindleState(target) {
	case disk.Healthy:
		return fmt.Errorf("msm: spindle %d is healthy; nothing to rebuild", target)
	case disk.Rebuilding:
		return fmt.Errorf("msm: spindle %d is already rebuilding", target)
	}
	fresh, err := disk.New(m.array.Spindle(m.array.Twin(target)).Geometry())
	if err != nil {
		return err
	}
	if err := m.array.ReplaceSpindle(target, fresh); err != nil {
		return err
	}
	return m.StartRebuild(target)
}

// StartRebuild starts the online rebuild of spindle target (already
// replaced with a working device) from its mirror twin.
func (m *Manager) StartRebuild(target int) error {
	if m.array == nil || !m.array.Mirrored() {
		return errors.New("msm: rebuild requires a mirrored array")
	}
	if err := m.array.StartRebuild(target); err != nil {
		return err
	}
	m.rb.fails = 0
	m.ensureRepairBuf()
	m.probeAdvancers()
	return nil
}

// AddMirrorPair hot-adds a mirror pair to the array and grows the
// per-spindle service lanes (and the per-spindle admission tables that
// size with them) to match. The new pair holds no data until
// StartRebalance migrates stripe groups onto it.
func (m *Manager) AddMirrorPair(d0, d1 disk.Device) error {
	if m.array == nil || !m.array.Mirrored() {
		return errors.New("msm: hot-add requires a mirrored array")
	}
	if err := m.array.AddMirrorPair(d0, d1); err != nil {
		return err
	}
	g := m.array.Spindle(0).Geometry()
	for i := len(m.lanes); i < m.array.Spindles(); i++ {
		ln := &lane{
			m: m, spindle: i,
			spc: g.SectorsPerCylinder(), cyls: g.Cylinders,
		}
		ln.runFn = ln.run
		m.lanes = append(m.lanes, ln)
	}
	m.probeAdvancers()
	return nil
}

// StartRebalance starts the online rebalance that spreads existing
// stripe groups onto hot-added mirror pairs (disk.AddMirrorPair).
func (m *Manager) StartRebalance() error {
	if m.array == nil || !m.array.Mirrored() {
		return errors.New("msm: rebalance requires a mirrored array")
	}
	if err := m.array.StartRebalance(); err != nil {
		return err
	}
	m.rb.fails = 0
	m.ensureRepairBuf()
	m.probeAdvancers()
	return nil
}

// ensureRepairBuf sizes the chunk buffer to one spindle cylinder.
func (m *Manager) ensureRepairBuf() {
	need := m.array.RepairBufferSectors() * m.array.Spindle(0).Geometry().SectorSize
	if cap(m.rb.buf) < need {
		m.rb.buf = make([]byte, need)
	}
	m.rb.buf = m.rb.buf[:need]
}

// resteerTransition renegotiates k after a steering change: a dead
// spindle's streams now share the surviving twin's sub-round, so that
// spindle's population may need more blocks per round than the current
// k provides (the same reason fresh admissions can raise k). The
// growth is applied one k per round by RunRound — §3.4's stepwise
// transition — and the buffer grants are raised up front so the
// read-ahead can absorb the transition rounds.
func (m *Manager) resteerTransition() {
	m.fillSpindleAdmissionSets()
	need := m.k
	for _, ln := range m.lanes {
		k := need
		for k <= maxResteerK && m.adm.SlackSeconds(ln.admSet, k) < 0 {
			k++
		}
		if k > maxResteerK {
			// Infeasible at any bounded k: the absorbed population
			// exceeds the surviving spindle's n_max. Keep the old k and
			// let the violations show; admission already refuses new
			// load against the shrunken capacity.
			continue
		}
		if k > need {
			need = k
		}
	}
	if need > m.k {
		m.growPlayBuffers(2 * need)
		if need > m.kTarget {
			m.kTarget = need
		}
	}
}

// repairRound runs the slack-charged repair step after a striped
// round's stream service; reports whether the round did any work.
//
// rt:hotpath
func (m *Manager) repairRound(streamWorked bool) bool {
	if m.array == nil || !m.array.RepairActive() {
		return streamWorked
	}
	spent, copied := m.repairStep(m.repairBudget())
	if copied > 0 && !streamWorked {
		// The copies were the round's only transfers; with no stream
		// round to hide inside, they consume real time.
		m.clock.Advance(spent)
	}
	return streamWorked || copied > 0
}

// repairBudget is the virtual time this round's repair step may
// spend: the leftover Eq. 18 retry slack of the lane the copies load.
// A rebuild reads only the target's twin, so that lane's leftover
// governs; a rebalance touches arbitrary spindles, so the most
// constrained lane's leftover (the manager-level budget) governs.
// Lanes that carried premium streams this round yield half — repair is
// background work and the strictest class keeps its full margin.
//
// rt:hotpath
func (m *Manager) repairBudget() time.Duration {
	if t := m.array.RebuildTarget(); t >= 0 {
		ln := m.lanes[m.array.Twin(t)]
		b := ln.retrySlack
		if ln.premium {
			b /= 2
		}
		return b
	}
	b := m.retrySlack
	for _, ln := range m.lanes {
		if ln.premium {
			b /= 2
			break
		}
	}
	return b
}

// repairIdleBudget is the budget of a repair-only round: effectively
// unbounded, the rate cap is the limiter.
const repairIdleBudget = time.Duration(1) << 62

// repairStep copies repair chunks while their estimated service time
// fits the budget, up to the per-round rate cap. Returns the virtual
// time spent and the chunks copied.
//
// rt:hotpath
func (m *Manager) repairStep(budget time.Duration) (spent time.Duration, copied int) {
	a := m.array
	for copied < m.rb.rate {
		est, ok := a.PeekRepairChunk()
		if !ok {
			break // repair finished (or nothing left to copy)
		}
		if est > budget-spent {
			break // the next chunk does not fit this round's slack
		}
		t, done, err := a.RepairChunk(m.rb.buf)
		spent += t
		if err != nil {
			m.rb.fails++
			if m.rb.fails >= repairFailLimit {
				// The copy source is failing too: stop spending slack
				// on a pair this engine cannot save. A rebuild target
				// drops back to Dead; a rebalance keeps its progress.
				a.AbortRepair()
				m.rb.fails = 0
			}
			break
		}
		m.rb.fails = 0
		copied++
		m.stats.RebuildBlocks++
		if m.obs != nil {
			m.obs.rebuildBlocks.Inc()
		}
		if done {
			break
		}
	}
	return spent, copied
}

// runRepairOnlyRound keeps a rebuild/rebalance progressing when no
// active request remains: the spindles are otherwise idle, so the
// round copies up to the rate cap and the clock advances by exactly
// the time spent.
func (m *Manager) runRepairOnlyRound() bool {
	if m.array == nil || !m.array.RepairActive() {
		return false
	}
	m.stats.Rounds++
	start := m.clock.Now()
	spent, copied := m.repairStep(repairIdleBudget)
	m.clock.Advance(spent)
	if m.obs != nil {
		m.recordRound(start, m.k, 0, 0, 0)
	}
	// spent > 0 with copied == 0 is the error path: keep rounds coming
	// until the fail limit aborts the repair.
	return copied > 0 || spent > 0
}
